// Concurrency tests for the analytics engine: the memo cache must serve
// every experiment correctly when hammered from many goroutines (the
// `msgscope serve` report API does exactly this). Run with -race.
package msgscope_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"msgscope"
)

// TestConcurrentRender hammers Render for every experiment from many
// goroutines with no priming, so the first calls race into the
// single-flight cache fill. Every caller must observe the same rendering,
// and that rendering must match an uncached re-derivation.
func TestConcurrentRender(t *testing.T) {
	res := apiFixture(t)
	ids := msgscope.Experiments()

	const goroutines = 16
	const rounds = 3
	outs := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := make([]string, len(ids))
			for round := 0; round < rounds; round++ {
				for i, id := range ids {
					out := res.Render(id)
					if round == 0 {
						mine[i] = out
					} else if out != mine[i] {
						mine[i] = "UNSTABLE: " + id
					}
				}
			}
			outs[g] = mine
		}()
	}
	wg.Wait()

	for i, id := range ids {
		want := outs[0][i]
		if strings.TrimSpace(want) == "" {
			t.Errorf("%s: empty rendering", id)
		}
		for g := 1; g < goroutines; g++ {
			if outs[g][i] != want {
				t.Errorf("%s: goroutine %d saw a different rendering", id, g)
			}
		}
	}

	// Cached renderings must equal a fresh, cache-bypassing derivation.
	// (Skip table3: LDA is seeded and deterministic but expensive.)
	for i, id := range ids {
		if id == "table3" {
			continue
		}
		if got := res.Recompute(id); got != outs[0][i] {
			t.Errorf("%s: cached rendering differs from recomputation", id)
		}
	}
}

// TestConcurrentFigureExports writes the CSV and SVG bundles from several
// goroutines at once into distinct directories; all copies must agree.
func TestConcurrentFigureExports(t *testing.T) {
	res := apiFixture(t)
	const writers = 4
	dirs := make([]string, 2*writers)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("out%d", i))
	}

	var wg sync.WaitGroup
	errs := make([]error, 2*writers)
	for i := 0; i < writers; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			errs[i] = res.SaveFigureCSVs(dirs[i])
		}()
		go func() {
			defer wg.Done()
			errs[writers+i] = res.SaveFigureSVGs(dirs[writers+i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("export %d: %v", i, err)
		}
	}

	for _, id := range msgscope.FigureIDs() {
		want, err := os.ReadFile(filepath.Join(dirs[0], id+".csv"))
		if err != nil {
			t.Fatalf("reading %s.csv: %v", id, err)
		}
		if len(want) == 0 {
			t.Errorf("%s.csv is empty", id)
		}
		for i := 1; i < writers; i++ {
			got, err := os.ReadFile(filepath.Join(dirs[i], id+".csv"))
			if err != nil {
				t.Fatalf("reading copy %d of %s.csv: %v", i, id, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s.csv: copy %d differs", id, i)
			}
		}
		svg, err := os.ReadFile(filepath.Join(dirs[writers], id+".svg"))
		if err != nil {
			t.Fatalf("reading %s.svg: %v", id, err)
		}
		if !bytes.Contains(svg, []byte("<svg")) {
			t.Errorf("%s.svg does not look like SVG", id)
		}
	}
}

// TestFigureAccessors covers the cached single-figure endpoints.
func TestFigureAccessors(t *testing.T) {
	res := apiFixture(t)
	if got := msgscope.FigureIDs(); len(got) != 9 || got[0] != "fig1" || got[8] != "fig9" {
		t.Fatalf("FigureIDs = %v", got)
	}
	data, err := res.FigureCSV("fig2")
	if err != nil {
		t.Fatalf("FigureCSV: %v", err)
	}
	if !bytes.HasPrefix(data, []byte("platform,")) {
		t.Errorf("fig2 CSV header missing: %.40s", data)
	}
	again, err := res.FigureCSV("FIG2") // case-insensitive, cache hit
	if err != nil || !bytes.Equal(again, data) {
		t.Errorf("cached FigureCSV differs (err=%v)", err)
	}
	svg, err := res.FigureSVG("fig2")
	if err != nil || !strings.Contains(svg, "<svg") {
		t.Errorf("FigureSVG: err=%v", err)
	}
	if _, err := res.FigureCSV("fig42"); err == nil {
		t.Error("unknown figure CSV did not error")
	}
	if _, err := res.FigureSVG("table2"); err == nil {
		t.Error("non-figure SVG did not error")
	}
}
