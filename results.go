package msgscope

import (
	"fmt"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/report"
	"msgscope/internal/store"
)

// Platforms lists the messaging platforms in the paper's order.
func Platforms() []string {
	out := make([]string, len(platform.All))
	for i, p := range platform.All {
		out[i] = p.String()
	}
	return out
}

func parsePlatform(name string) (platform.Platform, error) {
	return platform.ParsePlatform(name)
}

// DiscoveryPoint is one day of Figure 1: tweet shares observed, unique
// URLs, and never-before-seen URLs.
type DiscoveryPoint struct {
	Day    int
	All    int
	Unique int
	New    int
}

// Discovery returns the per-day discovery series of one platform
// ("WhatsApp", "Telegram", or "Discord").
func (r *Result) Discovery(platformName string) ([]DiscoveryPoint, error) {
	p, err := parsePlatform(platformName)
	if err != nil {
		return nil, err
	}
	f := r.figure("fig1").(report.Fig1Result)
	out := make([]DiscoveryPoint, r.ds.Days)
	for d := 0; d < r.ds.Days; d++ {
		out[d] = DiscoveryPoint{
			Day:    d,
			All:    int(f.All[p].At(d)),
			Unique: int(f.Unique[p].At(d)),
			New:    int(f.New[p].At(d)),
		}
	}
	return out, nil
}

// GroupSummary is one discovered group URL and its observed lifecycle.
type GroupSummary struct {
	Platform     string
	Code         string
	URL          string
	FirstSeen    time.Time
	TweetCount   int
	Joined       bool
	Revoked      bool
	LifetimeDays float64 // discovery to last alive probe (revoked URLs)
	Members      int     // at first alive observation
	Title        string
}

// Groups returns summaries of all discovered groups on a platform.
func (r *Result) Groups(platformName string) ([]GroupSummary, error) {
	p, err := parsePlatform(platformName)
	if err != nil {
		return nil, err
	}
	list := r.ds.GroupsOf(p)
	var out []GroupSummary
	for i, n := 0, list.Len(); i < n; i++ {
		g := list.At(i)
		gs := GroupSummary{
			Platform:   g.Platform.String(),
			Code:       g.Code,
			URL:        g.Canonical,
			FirstSeen:  g.FirstSeen,
			TweetCount: g.Tweets,
			Joined:     g.Joined,
		}
		var lastAlive time.Time
		list.Obs(i).Each(func(o store.Observation) bool {
			if !o.Alive {
				gs.Revoked = true
				return false
			}
			if gs.Members == 0 {
				gs.Members = o.Members
				gs.Title = o.Title
			}
			lastAlive = o.At
			return true
		})
		if gs.Revoked && !lastAlive.IsZero() {
			gs.LifetimeDays = lastAlive.Sub(g.FirstSeen).Hours() / 24
		}
		out = append(out, gs)
	}
	return out, nil
}

// PIIExposure is one platform's PII summary (Table 4).
type PIIExposure struct {
	Platform      string
	MembersSeen   int
	CreatorsSeen  int
	PhonesExposed int
	PhoneShare    float64
	LinkedExposed int
	LinkedShare   float64
}

// PII returns the per-platform exposure summary.
func (r *Result) PII() []PIIExposure {
	t4 := r.table4()
	out := make([]PIIExposure, len(t4.Report.Exposures))
	for i, e := range t4.Report.Exposures {
		out[i] = PIIExposure{
			Platform:      e.Platform.String(),
			MembersSeen:   e.MembersSeen,
			CreatorsSeen:  e.CreatorsSeen,
			PhonesExposed: e.PhonesExposed,
			PhoneShare:    e.PhoneShare,
			LinkedExposed: e.LinkedExposed,
			LinkedShare:   e.LinkedShare,
		}
	}
	return out
}

// LinkedAccount is one row of Table 5.
type LinkedAccount struct {
	Platform string // Twitch, Steam, ...
	Users    int
	Share    float64
}

// LinkedAccounts returns the Discord linked-account breakdown.
func (r *Result) LinkedAccounts() []LinkedAccount {
	t5 := r.table5()
	out := make([]LinkedAccount, len(t5.Rows))
	for i, row := range t5.Rows {
		out[i] = LinkedAccount{Platform: row.Platform, Users: row.Users, Share: row.Share}
	}
	return out
}

// Topic is one extracted LDA topic.
type Topic struct {
	Share float64 // fraction of tweets with this dominant topic
	Words []string
}

// Topics fits LDA over one platform's English tweets and returns the
// topics sorted by share (the Table 3 analysis, parameterized).
func (r *Result) Topics(platformName string, k, iterations int) ([]Topic, error) {
	p, err := parsePlatform(platformName)
	if err != nil {
		return nil, err
	}
	t3 := report.Table3(r.ds, report.Table3Config{
		Topics:     k,
		Iterations: iterations,
		Seed:       r.study.Cfg.Seed,
		MaxTweets:  4000,
		Sampler:    r.study.Cfg.LDASampler,
	})
	sums, ok := t3.Topics[p]
	if !ok {
		return nil, fmt.Errorf("msgscope: no English tweets for %s", platformName)
	}
	out := make([]Topic, len(sums))
	for i, s := range sums {
		out[i] = Topic{Share: s.Share, Words: s.Words}
	}
	return out, nil
}

// MessageStats summarizes joined-group messaging on one platform.
type MessageStats struct {
	Platform    string
	Messages    int
	ActiveUsers int
	Top1Share   float64 // messages contributed by the top 1% of users
	TypeShares  map[string]float64
}

// Messaging returns per-platform message statistics (Figures 8-9).
func (r *Result) Messaging() []MessageStats {
	f8 := r.figure("fig8").(report.Fig8Result)
	f9 := r.figure("fig9").(report.Fig9Result)
	t2 := r.table2()
	out := make([]MessageStats, 0, len(platform.All))
	for i, p := range platform.All {
		ms := MessageStats{
			Platform:    p.String(),
			Messages:    t2.Rows[i].Messages,
			ActiveUsers: f9.ActiveUsers[p],
			Top1Share:   f9.Top1Share[p],
			TypeShares:  map[string]float64{},
		}
		for _, kv := range f8.Types[p].Sorted() {
			ms.TypeShares[kv.K] = f8.Types[p].Share(kv.K)
		}
		out = append(out, ms)
	}
	return out
}
