// Toxicity scan: the paper's Section 8 future work — collect message
// bodies from joined groups and score them for toxic content (here with a
// lexicon scorer standing in for Google's Perspective API). Focused
// collection narrows the join sample to groups whose titles match chosen
// keywords, another future-work item.
//
//	go run ./examples/toxicity-scan
package main

import (
	"context"
	"fmt"
	"log"

	"msgscope"
)

func main() {
	// Broad sample first: every platform's baseline toxicity.
	broad, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:                5,
		Scale:               0.008,
		GenerateMessageText: true,
		MaxMessagesPerGroup: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Broad sample ==")
	fmt.Println(broad.Render("toxicity"))

	// Focused collection: only groups advertising adult content, where
	// the lexicon should fire far more often.
	focused, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:                5,
		Scale:               0.008,
		GenerateMessageText: true,
		MaxMessagesPerGroup: 3000,
		TopicKeywords:       []string{"girls", "hentai", "nude", "fuck", "pussy", "boobs"},
		JoinWhatsApp:        5, JoinTelegram: 8, JoinDiscord: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Focused sample (adult-content group titles) ==")
	fmt.Println(focused.Render("toxicity"))
}
