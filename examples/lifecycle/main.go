// Lifecycle: track how group URLs discovered on Twitter live and die — the
// paper's Figures 5 and 6. Prints per-platform revocation shares, an ASCII
// sparkline of daily discoveries, and the most ephemeral groups.
//
//	go run ./examples/lifecycle
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"msgscope"
)

func main() {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:  7,
		Scale: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range msgscope.Platforms() {
		series, err := res.Discovery(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s new URLs/day: %s\n", p, sparkline(series))
	}
	fmt.Println()
	fmt.Println(res.Render("fig5"))
	fmt.Println(res.Render("fig6"))

	// The most ephemeral platform: Discord invites auto-expire.
	groups, err := res.Groups("Discord")
	if err != nil {
		log.Fatal(err)
	}
	var revoked int
	for _, g := range groups {
		if g.Revoked {
			revoked++
		}
	}
	fmt.Printf("Discord: %d of %d discovered invites revoked during the window\n",
		revoked, len(groups))

	// Longest-lived revoked groups.
	sort.Slice(groups, func(i, j int) bool { return groups[i].LifetimeDays > groups[j].LifetimeDays })
	fmt.Println("longest-lived revoked Discord invites:")
	shown := 0
	for _, g := range groups {
		if !g.Revoked || shown >= 5 {
			continue
		}
		fmt.Printf("  %s lived %.0f days, %d members, shared in %d tweets\n",
			g.URL, g.LifetimeDays, g.Members, g.TweetCount)
		shown++
	}
}

var blocks = []rune(" ▁▂▃▄▅▆▇█")

func sparkline(pts []msgscope.DiscoveryPoint) string {
	max := 1
	for _, p := range pts {
		if p.New > max {
			max = p.New
		}
	}
	out := make([]rune, len(pts))
	for i, p := range pts {
		out[i] = blocks[p.New*(len(blocks)-1)/max]
	}
	return string(out)
}
