// Topic modeling: rediscover what the shared groups are about from the
// tweets alone, as the paper does with LDA for Table 3 — cryptocurrency and
// money-making schemes on WhatsApp, sex and channel ads on Telegram, gaming
// and hentai on Discord.
//
//	go run ./examples/topic-modeling
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"msgscope"
)

func main() {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:  99,
		Scale: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	const k, iterations = 8, 150
	for _, p := range msgscope.Platforms() {
		topics, err := res.Topics(p, k, iterations)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d LDA topics over English tweets ==\n", p, k)
		for i, t := range topics {
			if i >= 5 {
				break
			}
			fmt.Printf("  %4.1f%%  %s\n", t.Share*100, strings.Join(t.Words, ", "))
		}
		fmt.Println()
	}
}
