// Cross-discovery: the paper's Section 8 future work — extend group
// discovery beyond Twitter to a second social network. Runs the same study
// twice, with and without the secondary source, and shows how many public
// groups a Twitter-only study never sees.
//
//	go run ./examples/cross-discovery
package main

import (
	"context"
	"fmt"
	"log"

	"msgscope"
)

func main() {
	ctx := context.Background()
	base := msgscope.Options{Seed: 31, Scale: 0.01, Days: 14}

	twitterOnly, err := msgscope.Run(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	withSocial := base
	withSocial.SocialDiscovery = true
	both, err := msgscope.Run(ctx, withSocial)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Twitter-only study ==")
	for _, p := range msgscope.Platforms() {
		groups, err := twitterOnly.Groups(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %5d groups discovered\n", p, len(groups))
	}

	fmt.Println()
	fmt.Println("== With the secondary discovery source ==")
	for _, p := range msgscope.Platforms() {
		groups, err := both.Groups(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %5d groups discovered\n", p, len(groups))
	}

	fmt.Println()
	fmt.Println(both.Render("crosssource"))
	fmt.Println("Groups in the social-only column are invisible to any study")
	fmt.Println("that relies on Twitter alone — the paper's stated motivation")
	fmt.Println("for expanding collection to other networks.")
}
