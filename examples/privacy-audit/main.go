// Privacy audit: reproduce the paper's Section 6 — which platforms leak
// personally identifiable information, and how much. WhatsApp exposes every
// member's (and even non-joined groups' creators') phone numbers, Telegram
// only opt-in phones (~0.7%), and Discord linked third-party accounts for
// ~30% of users (Tables 4 and 5).
//
//	go run ./examples/privacy-audit
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"msgscope"
)

func main() {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:  1337,
		Scale: 0.01,
		// Join more Telegram rooms than the scaled default so the rare
		// 0.68% phone opt-ins become visible.
		JoinWhatsApp: 10,
		JoinTelegram: 12,
		JoinDiscord:  8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== PII exposure per platform (Table 4) ==")
	for _, e := range res.PII() {
		fmt.Printf("%-9s: %d members + %d creators observed\n",
			e.Platform, e.MembersSeen, e.CreatorsSeen)
		switch {
		case e.PhonesExposed > 0:
			fmt.Printf("           phone numbers exposed for %d users (%.2f%%)\n",
				e.PhonesExposed, e.PhoneShare*100)
		case e.LinkedExposed > 0:
			fmt.Printf("           linked accounts exposed for %d users (%.2f%%)\n",
				e.LinkedExposed, e.LinkedShare*100)
		default:
			fmt.Println("           no phone or account linkage observed")
		}
	}

	fmt.Println()
	fmt.Println("== Discord linked accounts (Table 5) ==")
	for _, l := range res.LinkedAccounts() {
		bar := strings.Repeat("#", int(l.Share*100))
		fmt.Printf("%-18s %5d (%5.2f%%) %s\n", l.Platform, l.Users, l.Share*100, bar)
	}

	fmt.Println()
	fmt.Println(res.Render("table4"))
}
