// Quickstart: run the full 38-day study at small scale and print the
// dataset overview (Table 2) plus the discovery headline (Figure 1).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"msgscope"
)

func main() {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:  42,
		Scale: 0.01, // 1% of the paper's volumes: finishes in seconds
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())
	fmt.Println(res.Render("table2"))
	fmt.Println(res.Render("fig1"))
}
