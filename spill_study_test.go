package msgscope_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msgscope"
)

// Study-level spill gates: a memory budget must never change what a run
// collects or reports — only where cold rows live — including across a
// crash and resume that re-maps pinned segments from the manifest.

// countSegFiles returns how many sealed segment files dir holds.
func countSegFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill dir: %v", err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// TestMemBudgetRunMatchesUnbudgeted runs the same study with no budget and
// with a budget small enough that every family spills repeatedly, and
// requires byte-identical artifacts: dataset JSONL, order-sensitive
// figures, summary.
func TestMemBudgetRunMatchesUnbudgeted(t *testing.T) {
	ctx := context.Background()
	opts := msgscope.Options{Seed: 42, Scale: 0.01, Days: 3, SearchEveryHours: 6}

	plain, err := msgscope.Run(ctx, opts)
	if err != nil {
		t.Fatalf("unbudgeted run: %v", err)
	}
	base := collectArtifacts(t, plain)

	bopts := opts
	bopts.MemBudget = 1 << 16 // 64 KiB: far below the corpus, spills constantly
	bopts.SpillDir = t.TempDir()
	budgeted, err := msgscope.Run(ctx, bopts)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	if n := countSegFiles(t, bopts.SpillDir); n == 0 {
		t.Fatal("budgeted run sealed no segments; the differential is vacuous")
	}
	compareArtifacts(t, "budgeted-vs-unbudgeted", base, collectArtifacts(t, budgeted))
}

// TestMemBudgetCrashResume kills a budgeted, checkpointed run at boundary
// and mid-phase points, resumes it (the manifest's pinned segments re-map
// instead of re-ingesting), and requires the final artifacts to match an
// uninterrupted unbudgeted run.
func TestMemBudgetCrashResume(t *testing.T) {
	ctx := context.Background()
	opts := msgscope.Options{Seed: 42, Scale: 0.01, Days: 3, SearchEveryHours: 6}

	plain, err := msgscope.Run(ctx, opts)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	base := collectArtifacts(t, plain)

	for _, kp := range []killPoint{{0, "drain"}, {1, "monitor"}, {2, "search-12"}, {2, "join"}} {
		t.Run(kp.String(), func(t *testing.T) {
			dir := t.TempDir()
			kopts := opts
			kopts.MemBudget = 1 << 16
			kopts.CheckpointDir = dir
			if _, err := msgscope.RunWithHook(ctx, kopts, killAt(kp)); !errors.Is(err, msgscope.ErrHalted) {
				t.Fatalf("killed run at %s: err = %v, want ErrHalted", kp, err)
			}
			res, err := msgscope.Resume(ctx, dir)
			if err != nil {
				t.Fatalf("resuming from kill at %s: %v", kp, err)
			}
			compareArtifacts(t, "budget-resumed-vs-plain", base, collectArtifacts(t, res))
			if n := countSegFiles(t, filepath.Join(dir, "segments")); n == 0 {
				t.Errorf("resumed run left no segments in %s", filepath.Join(dir, "segments"))
			}
		})
	}
}
