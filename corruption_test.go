package msgscope_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"msgscope"
	"msgscope/internal/checkpoint"
)

// corruptionOpts is the small study the corruption tests kill and tamper
// with.
var corruptionOpts = msgscope.Options{Seed: 42, Scale: 0.01, Days: 3, SearchEveryHours: 6}

// makeKilledCheckpoint produces a checkpoint directory left behind by a
// run killed at a day boundary.
func makeKilledCheckpoint(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	opts := corruptionOpts
	opts.CheckpointDir = dir
	if _, err := msgscope.RunWithHook(context.Background(), opts, killAt(killPoint{1, "drain"})); !errors.Is(err, msgscope.ErrHalted) {
		t.Fatalf("killed run: err = %v, want ErrHalted", err)
	}
	return dir
}

// TestResumeRejectsCorruptManifest tampers with a killed run's manifest in
// every way a crash or bitrot can, and requires Resume to fail with a
// clear error — truncation, bit flips, and emptiness must surface
// ErrCorrupt; a stale or tampered options hash must surface
// ErrOptionsMismatch. A silent partial resume is never acceptable.
func TestResumeRejectsCorruptManifest(t *testing.T) {
	ctx := context.Background()
	tamper := []struct {
		name string
		want error
		mut  func(t *testing.T, dir string)
	}{
		{"truncated", checkpoint.ErrCorrupt, func(t *testing.T, dir string) {
			path := filepath.Join(dir, checkpoint.ManifestFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", checkpoint.ErrCorrupt, func(t *testing.T, dir string) {
			path := filepath.Join(dir, checkpoint.ManifestFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"emptied", checkpoint.ErrCorrupt, func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, checkpoint.ManifestFile), nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-options-hash", checkpoint.ErrOptionsMismatch, func(t *testing.T, dir string) {
			m, err := checkpoint.Read(dir)
			if err != nil {
				t.Fatal(err)
			}
			m.OptionsHash = "0000000000000000000000000000000000000000000000000000000000000000"
			if err := checkpoint.Write(dir, m); err != nil {
				t.Fatal(err)
			}
		}},
		{"tampered-options", checkpoint.ErrOptionsMismatch, func(t *testing.T, dir string) {
			// A validly re-checksummed manifest whose stored options no
			// longer hash to the recorded options hash: the run it would
			// resume is not the run that was checkpointed.
			m, err := checkpoint.Read(dir)
			if err != nil {
				t.Fatal(err)
			}
			m.Options = []byte(`{"Seed":43,"Scale":0.01,"Days":3,"SearchEveryHours":6}`)
			if err := checkpoint.Write(dir, m); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			dir := makeKilledCheckpoint(t)
			tc.mut(t, dir)
			res, err := msgscope.Resume(ctx, dir)
			if res != nil {
				t.Fatal("Resume returned a result from a corrupt checkpoint")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Resume error = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("missing-manifest", func(t *testing.T) {
		dir := makeKilledCheckpoint(t)
		if err := os.Remove(filepath.Join(dir, checkpoint.ManifestFile)); err != nil {
			t.Fatal(err)
		}
		if res, err := msgscope.Resume(ctx, dir); err == nil || res != nil {
			t.Fatalf("Resume of a manifest-less directory: res=%v err=%v, want error", res, err)
		}
	})
}

// TestResumeRejectsDamagedLogs damages the record logs under a valid
// manifest: a log shorter than the manifest's recorded prefix must abort
// the resume with a clear error (the durable record stream is gone), while
// extra bytes past the recorded prefix — exactly what a crash mid-append
// leaves — must be truncated away and the resume must still complete with
// byte-identical output.
func TestResumeRejectsDamagedLogs(t *testing.T) {
	ctx := context.Background()

	logName := func(t *testing.T, dir string) string {
		t.Helper()
		m, err := checkpoint.Read(dir)
		if err != nil {
			t.Fatal(err)
		}
		for name, st := range m.Logs {
			if st.Bytes > 0 {
				return name
			}
		}
		t.Fatal("no non-empty record log in the checkpoint")
		return ""
	}

	t.Run("truncated-log", func(t *testing.T) {
		dir := makeKilledCheckpoint(t)
		name := logName(t, dir)
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if res, err := msgscope.Resume(ctx, dir); err == nil || res != nil {
			t.Fatalf("Resume with a truncated %s: res=%v err=%v, want error", name, res, err)
		}
	})

	t.Run("crash-tail-truncated-away", func(t *testing.T) {
		full, err := msgscope.Run(ctx, corruptionOpts)
		if err != nil {
			t.Fatal(err)
		}
		base := collectArtifacts(t, full)

		dir := makeKilledCheckpoint(t)
		name := logName(t, dir)
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("{\"garbage\": tr"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := msgscope.Resume(ctx, dir)
		if err != nil {
			t.Fatalf("Resume over a crash tail: %v", err)
		}
		compareArtifacts(t, "resumed-over-crash-tail", base, collectArtifacts(t, res))
	})
}
