package msgscope

import "msgscope/internal/core"

// Test-only exports: the resume matrix drives runs through step hooks to
// kill them at precise pipeline boundaries.
var (
	RunWithHook    = runWithHook
	ResumeWithHook = resumeWithHook
	HashOptions    = hashOptions
)

// ErrHalted is what a step hook returns to abort a run at a boundary.
var ErrHalted = core.ErrHalted

// FaultEpoch and BreakerStats read checkpointed-and-restored pipeline
// state off a result, so the chaos kill/resume tests can assert it matches
// the uninterrupted run exactly.
func FaultEpoch(r *Result) uint64                         { return r.study.FaultEpoch() }
func BreakerStats(r *Result) map[string]core.BreakerStats { return r.study.BreakerStats() }
