// Package msgscope reproduces the measurement study "Demystifying the
// Messaging Platforms' Ecosystem Through the Lens of Twitter" (IMC 2020)
// over a fully simulated ecosystem: a synthetic Twitter (Search + Streaming
// APIs) and synthetic WhatsApp, Telegram, and Discord services run on
// loopback HTTP, and the complete collection pipeline — URL-pattern
// discovery, daily metadata monitoring, group joining, message collection,
// topic modeling, and PII analysis — measures them exactly the way the
// paper's tooling measured the real platforms.
//
// Quick start:
//
//	res, err := msgscope.Run(ctx, msgscope.Options{Seed: 42, Scale: 0.02})
//	if err != nil { ... }
//	fmt.Println(res.Render("table2"))
//
// Experiment IDs follow the paper: table1..table5, fig1..fig9. See
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package msgscope

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"msgscope/internal/analysis/lda"
	"msgscope/internal/checkpoint"
	"msgscope/internal/core"
	"msgscope/internal/faults"
	"msgscope/internal/join"
	"msgscope/internal/par"
	"msgscope/internal/prof"
	"msgscope/internal/report"
	"msgscope/internal/store"
)

// Options configures a study run. The zero value runs the paper's 38-day
// methodology at 2% volume scale with paper-proportional join targets.
type Options struct {
	// Seed makes the whole run reproducible.
	Seed uint64
	// Scale multiplies workload volumes (1.0 = the paper's scale: 2.2M
	// tweets, 351K group URLs, 8.2M messages).
	Scale float64
	// Days is the collection window (default 38, as in the paper).
	Days int
	// JoinWhatsApp, JoinTelegram, JoinDiscord override the join-phase
	// sample sizes (paper: 416, 100, 100). Zero means paper-proportional
	// at the configured scale.
	JoinWhatsApp, JoinTelegram, JoinDiscord int
	// MaxMessagesPerGroup bounds history collection per joined group
	// (0 = unlimited).
	MaxMessagesPerGroup int
	// GenerateMessageText makes collected messages carry bodies (the
	// analyses only need types and authors, so this defaults off).
	GenerateMessageText bool
	// MonitorEveryDays sets the metadata probe cadence (default 1 =
	// daily, as in the paper).
	MonitorEveryDays int
	// SearchEveryHours sets the Search API polling cadence (default 1 =
	// hourly, as in the paper).
	SearchEveryHours int
	// TopicKeywords restricts the join phase to groups whose monitored
	// title matches one of the keywords (focused collection; Section 8
	// future work).
	TopicKeywords []string
	// SocialDiscovery enables the secondary discovery source: a simulated
	// second social network whose public feed is polled alongside the
	// Twitter APIs (Section 8 future work).
	SocialDiscovery bool
	// LDASampler picks the Gibbs kernel for the Table 3 topic analysis:
	// "dense" (the exact-conditional reference chain), "sparse" (the
	// s/r/q bucket decomposition), "alias" (the alias-table
	// Metropolis–Hastings sampler, ~3x faster than dense at the paper's
	// K=10), or "" for the package default. Collection is unaffected;
	// only the derived topics change chain (all samplers target the same
	// posterior and are parity-gated in tests).
	LDASampler string
	// SearchWorkers bounds the hourly Search API fan-out (0 = one worker
	// per tracked URL pattern, 1 = serial). The collected dataset is
	// identical at any setting; only wall-clock time changes.
	SearchWorkers int
	// CollectWorkers bounds the join-phase per-group message collection
	// fan-out (0 = default bound, 1 = serial). Same determinism guarantee
	// as SearchWorkers.
	CollectWorkers int
	// Faults, when non-nil, injects deterministic failures — 500s, dropped
	// connections, malformed bodies, rate-limit bursts, scheduled outage
	// windows — into every simulated service. The same options and plan
	// yield identical output at any worker count; groups whose requests
	// exhaust the retry budget are deferred and re-queued, never silently
	// dropped (see GroupOutcomes).
	Faults *FaultPlan
	// ProfilePhases records per-phase allocation deltas (bytes, objects,
	// GC cycles) during the run, readable afterwards via
	// Result.ProfilePhases. Off by default: the recorder costs a few
	// microseconds per phase boundary when enabled and nothing when not.
	ProfilePhases bool
	// CheckpointDir, when non-empty, makes the run resumable: a manifest
	// plus append-only record logs are persisted there at every pipeline
	// boundary, and Resume continues a killed run from the last boundary
	// with byte-identical final output. The directory also stores the
	// serialized options, so Resume needs no other input.
	CheckpointDir string
	// MemBudget, when positive, caps the live heap bytes of the spillable
	// column families: cold rows are sealed into immutable mmap-backed
	// segment files and served from the page cache instead of the heap.
	// Output is byte-identical at any budget — only peak memory changes —
	// so the field is excluded from the checkpoint options hash (it cannot
	// change a run's data).
	MemBudget int64
	// SpillDir overrides where a budgeted run keeps its segment files
	// (default: CheckpointDir/segments when checkpointing, else a temp
	// directory).
	SpillDir string
}

// FaultPlan configures deterministic fault injection for a run. Rates are
// per-request probabilities in [0, 1]; windows are half-open [From, To)
// intervals of virtual study time. The zero value injects nothing.
type FaultPlan = faults.Plan

// FaultWindow is a half-open [From, To) window of virtual time, used for
// scheduled outages and rate-limit bursts in a FaultPlan.
type FaultWindow = faults.Window

// PhaseStat is one pipeline phase's allocation tally (see
// Options.ProfilePhases).
type PhaseStat = prof.PhaseStat

// StageStat is one analysis stage's wall-clock tally (see
// Result.ProfileStages).
type StageStat = prof.StageStat

// RuntimeSample is a point-in-time snapshot of the process's memory
// counters (live heap, cumulative allocations, GC cycles, pause total).
type RuntimeSample = prof.Sample

// Result is a completed study with its collected dataset. The dataset is
// frozen, so every experiment output is memoized: Render, FigureCSV, and
// FigureSVG compute each artifact once and serve it from cache after that,
// safely under concurrent use (e.g. HTTP handlers).
type Result struct {
	study *core.Study
	ds    report.Dataset
	memo  memoCache
}

// Run executes the full methodology and returns the collected dataset.
func Run(ctx context.Context, opts Options) (*Result, error) {
	return runWithHook(ctx, opts, nil)
}

// Resume continues a study previously started with Options.CheckpointDir
// and killed before completion. The run's options are reconstructed from
// the checkpoint manifest (validated against its options hash), the
// dataset collected so far is replayed from the record logs, and the
// pipeline continues from the last durable boundary. The returned result
// is byte-identical — dataset JSONL, figures, tables — to the one an
// uninterrupted run would have produced.
func Resume(ctx context.Context, dir string) (*Result, error) {
	return resumeWithHook(ctx, dir, nil)
}

// buildConfig maps Options onto the core configuration, computing the
// checkpoint options hash and payload when checkpointing is on. Run and
// Resume share it so a resumed study is wired exactly like the original.
func buildConfig(opts Options) (core.Config, error) {
	sampler, err := lda.ParseSampler(opts.LDASampler)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Seed:                  opts.Seed,
		Scale:                 opts.Scale,
		Days:                  opts.Days,
		MaxMessagesPerGroup:   opts.MaxMessagesPerGroup,
		GenerateMessageText:   opts.GenerateMessageText,
		MonitorEveryDays:      opts.MonitorEveryDays,
		SearchEveryHours:      opts.SearchEveryHours,
		JoinTitleKeywords:     opts.TopicKeywords,
		EnableSocialDiscovery: opts.SocialDiscovery,
		LDASampler:            sampler,
		SearchWorkers:         opts.SearchWorkers,
		CollectWorkers:        opts.CollectWorkers,
		Faults:                opts.Faults,
		CheckpointDir:         opts.CheckpointDir,
		MemBudget:             opts.MemBudget,
		SpillDir:              opts.SpillDir,
		Join: join.Targets{
			WhatsApp: opts.JoinWhatsApp,
			Telegram: opts.JoinTelegram,
			Discord:  opts.JoinDiscord,
		},
	}
	if opts.ProfilePhases {
		cfg.Prof = prof.NewRecorder()
	}
	if opts.CheckpointDir != "" {
		hash, err := hashOptions(opts)
		if err != nil {
			return core.Config{}, err
		}
		payload, err := json.Marshal(opts)
		if err != nil {
			return core.Config{}, fmt.Errorf("msgscope: encoding options: %w", err)
		}
		cfg.OptionsHash = hash
		cfg.OptionsPayload = payload
	}
	return cfg, nil
}

// hashOptions fingerprints the determinism-relevant options: fields that
// cannot change a run's data — worker counts, profiling, the checkpoint
// location itself — are excluded, so a resume may move the directory or
// adjust parallelism without invalidating the checkpoint.
func hashOptions(opts Options) (string, error) {
	opts.CheckpointDir = ""
	opts.SearchWorkers = 0
	opts.CollectWorkers = 0
	opts.ProfilePhases = false
	opts.MemBudget = 0
	opts.SpillDir = ""
	b, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("msgscope: hashing options: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func runWithHook(ctx context.Context, opts Options, hook func(day int, step string) error) (*Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.StepHook = hook
	s, err := core.NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Run(ctx); err != nil {
		return nil, err
	}
	return &Result{study: s, ds: s.Dataset()}, nil
}

func resumeWithHook(ctx context.Context, dir string, hook func(day int, step string) error) (*Result, error) {
	m, err := checkpoint.Read(dir)
	if err != nil {
		return nil, err
	}
	if len(m.Options) == 0 {
		return nil, fmt.Errorf("%w: manifest carries no options", checkpoint.ErrCorrupt)
	}
	var opts Options
	if err := json.Unmarshal(m.Options, &opts); err != nil {
		return nil, fmt.Errorf("%w: decoding options: %v", checkpoint.ErrCorrupt, err)
	}
	hash, err := hashOptions(opts)
	if err != nil {
		return nil, err
	}
	if hash != m.OptionsHash {
		return nil, fmt.Errorf("%w: manifest records %q, stored options hash to %q",
			checkpoint.ErrOptionsMismatch, m.OptionsHash, hash)
	}
	opts.CheckpointDir = dir
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.StepHook = hook
	s, err := core.ResumeStudy(cfg, dir, m)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Run(ctx); err != nil {
		return nil, err
	}
	return &Result{study: s, ds: s.Dataset()}, nil
}

// ProfilePhases returns the per-phase allocation stats recorded during
// the run. Nil unless Options.ProfilePhases was set.
func (r *Result) ProfilePhases() []PhaseStat { return r.study.ProfilePhases() }

// ProfileStages returns the wall time spent in each analysis stage —
// "lda", "aggregate", "figures" — while experiments were computed from
// this result. Nil unless Options.ProfilePhases was set; stages appear
// only after the experiments that exercise them have been rendered.
func (r *Result) ProfileStages() []StageStat { return r.study.ProfileStages() }

// Runtime samples the process's current memory counters — cheap enough
// for an HTTP status endpoint, but it briefly stops the world, so don't
// poll it in a tight loop.
func Runtime() RuntimeSample { return prof.TakeSample() }

// Experiments lists the supported experiment IDs in paper order.
func Experiments() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var experiments = map[string]func(*Result) string{
	"table1": func(*Result) string { return report.Table1() },
	"table2": func(r *Result) string { return report.Table2(r.ds).Render() },
	"table3": func(r *Result) string {
		return report.Table3(r.ds, report.Table3Config{
			Seed: r.study.Cfg.Seed, Iterations: 120, MaxTweets: 4000,
			Sampler: r.study.Cfg.LDASampler,
		}).Render()
	},
	"table4": func(r *Result) string { return report.Table4(r.ds).Render() },
	"table5": func(r *Result) string { return report.Table5(r.ds).Render() },
	"fig1":   func(r *Result) string { return report.Fig1(r.ds).Render() },
	"fig2":   func(r *Result) string { return report.Fig2(r.ds).Render() },
	"fig3":   func(r *Result) string { return report.Fig3(r.ds).Render() },
	"fig4":   func(r *Result) string { return report.Fig4(r.ds).Render() },
	"fig5":   func(r *Result) string { return report.Fig5(r.ds).Render() },
	"fig6":   func(r *Result) string { return report.Fig6(r.ds).Render() },
	"fig7":   func(r *Result) string { return report.Fig7(r.ds).Render() },
	"fig8":   func(r *Result) string { return report.Fig8(r.ds).Render() },
	"fig9":   func(r *Result) string { return report.Fig9(r.ds).Render() },
	// Section 5's unnumbered analyses.
	"creators":  func(r *Result) string { return report.Creators(r.ds).Render() },
	"countries": func(r *Result) string { return report.Countries(r.ds).Render() },
	// Section 8 future work: toxic-content prevalence (needs message
	// text collection, Options.GenerateMessageText).
	"toxicity": func(r *Result) string { return report.Toxicity(r.ds).Render() },
	// Section 8 future work: the second discovery source (needs
	// Options.SocialDiscovery).
	"crosssource": func(r *Result) string { return report.CrossSource(r.ds).Render() },
}

// Render returns one of the paper's tables or figures from the run's
// dataset. Valid IDs are listed by Experiments. The first call computes
// the experiment; later calls (from any goroutine) return the cached
// rendering.
func (r *Result) Render(experiment string) string {
	id := strings.ToLower(experiment)
	if _, ok := experiments[id]; !ok {
		return fmt.Sprintf("unknown experiment %q (valid: %s)",
			experiment, strings.Join(Experiments(), ", "))
	}
	return cached(r, "render/"+id, func() string { return r.Recompute(id) })
}

// Recompute re-derives an experiment from the raw dataset, bypassing the
// cache (the cold path; useful for benchmarking the derivation itself).
func (r *Result) Recompute(experiment string) string {
	id := strings.ToLower(experiment)
	fn, ok := experiments[id]
	if !ok {
		return fmt.Sprintf("unknown experiment %q (valid: %s)",
			experiment, strings.Join(Experiments(), ", "))
	}
	// Deriving a figure counts toward the "figures" analysis stage; the
	// first one also triggers the shared aggregation pass, which shows up
	// under its own "aggregate" stage (nested inside this one).
	if r.ds.Prof != nil && strings.HasPrefix(id, "fig") {
		defer r.ds.Prof.StartStage("figures")()
	}
	return fn(r)
}

// RenderAll regenerates every table and figure, computing independent
// experiments in parallel (each lands in the cache, so a later Render of
// any single ID is free).
func (r *Result) RenderAll() string {
	ids := Experiments()
	outs := make([]string, len(ids))
	tasks := make([]func() error, len(ids))
	for i, id := range ids {
		tasks[i] = func() error {
			outs[i] = r.Render(id)
			return nil
		}
	}
	par.Do(0, tasks)
	var sb strings.Builder
	for _, out := range outs {
		sb.WriteString(out)
		sb.WriteString("\n")
	}
	return sb.String()
}

// Summary reports headline counts: discovered URLs, tweets, messages, and
// pipeline counters.
func (r *Result) Summary() string {
	t2 := r.table2()
	cs := r.study.CollectorStats()
	ms := r.study.MonitorStats()
	js := r.study.JoinStats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "collected: %d tweets (%d users), %d group URLs, %d control tweets\n",
		t2.Total.Tweets, t2.Total.TweetUsers, t2.Total.GroupURLs, cs.ControlTweets)
	fmt.Fprintf(&sb, "sources: search=%d stream=%d rate-limit-hits=%d\n",
		cs.SearchTweets, cs.StreamTweets, cs.RateLimitHits)
	if cs.SocialPosts > 0 {
		fmt.Fprintf(&sb, "secondary source: %d posts, %d groups discovered only there\n",
			cs.SocialPosts, cs.SocialNew)
	}
	fmt.Fprintf(&sb, "monitoring: %d probes (%d alive, %d revoked)\n",
		ms.Probes, ms.AliveProbes, ms.RevokedProbes)
	fmt.Fprintf(&sb, "joined: %d groups (%d dead invites skipped, %d flood waits); %d messages from %d users\n",
		js.Joined, js.DeadInvites, js.FloodWaits, t2.Total.Messages, t2.Total.MessageUsers)
	// The raw injected-fault total is omitted on purpose: the HTTP
	// transport transparently re-sends requests whose connection died on a
	// timeout fault, so the injector's counters depend on connection reuse
	// (see Study.FaultCounts). The deferral accounting below is exact and
	// deterministic.
	if r.study.Cfg.Faults != nil {
		fmt.Fprintf(&sb, "faults: deferred %d probes, %d joins/collections, %d search queries (retry budget exhausted; re-queued)\n",
			ms.Deferred, js.Deferred, cs.SearchDeferred)
	}
	return sb.String()
}

// GroupOutcomes classifies every discovered group URL by how the run left
// it: last observed alive, observed revoked, deferred (some pipeline stage
// exhausted its retry budget and re-queued the group), or lost (neither
// observed nor deferred). The fault harness's accounting invariant is
// Alive + Revoked + Deferred + Lost == Discovered with Lost == 0: faults
// may delay a group's data, but never silently drop the group.
type GroupOutcomes struct {
	Discovered int
	Alive      int
	Revoked    int
	Deferred   int
	Lost       int
}

// GroupOutcomes tallies the final state of every discovered group.
func (r *Result) GroupOutcomes() GroupOutcomes {
	var out GroupOutcomes
	list := r.ds.Store.Groups()
	for i, n := 0, list.Len(); i < n; i++ {
		g := list.At(i)
		out.Discovered++
		obs := list.Obs(i)
		switch {
		case g.Deferred:
			out.Deferred++
		case obs.Len() > 0:
			if last, _ := obs.Last(); last.Alive {
				out.Alive++
			} else {
				out.Revoked++
			}
		default:
			out.Lost++
		}
	}
	return out
}

// SaveDataset writes the collected dataset as JSONL files under dir.
func (r *Result) SaveDataset(dir string) error {
	return r.ds.Store.Save(dir)
}

// SaveFigureCSVs writes each figure's underlying data as CSV under dir
// (fig1.csv … fig9.csv), plot-ready in long format. Figures are computed
// in parallel and cached, so a later FigureCSV or SaveFigureSVGs call
// reuses them.
func (r *Result) SaveFigureCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := report.FigureIDs()
	tasks := make([]func() error, len(ids))
	for i, id := range ids {
		tasks[i] = func() error {
			data, err := r.FigureCSV(id)
			if err != nil {
				return fmt.Errorf("msgscope: writing %s.csv: %w", id, err)
			}
			return os.WriteFile(filepath.Join(dir, id+".csv"), data, 0o644)
		}
	}
	return par.Do(0, tasks)
}

// SaveFigureSVGs renders every figure as an SVG chart under dir
// (fig1.svg … fig9.svg), computing uncached figures in parallel.
func (r *Result) SaveFigureSVGs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := report.FigureIDs()
	tasks := make([]func() error, len(ids))
	for i, id := range ids {
		tasks[i] = func() error {
			svg, err := r.FigureSVG(id)
			if err != nil {
				return fmt.Errorf("msgscope: writing %s.svg: %w", id, err)
			}
			return os.WriteFile(filepath.Join(dir, id+".svg"), []byte(svg), 0o644)
		}
	}
	return par.Do(0, tasks)
}

// SourceRecall reports, over all collected tweets, the fraction each API
// would have recovered alone (search-only, stream-only) and the overlap
// seen by both — the discrepancy that makes the paper merge the two.
func (r *Result) SourceRecall() (search, stream, both float64) {
	tweets := r.ds.Tweets()
	if tweets.Len() == 0 {
		return 0, 0, 0
	}
	var nSearch, nStream, nBoth int
	for i, n := 0, tweets.Len(); i < n; i++ {
		t := tweets.At(i)
		hasSearch := t.Source&store.SourceSearch != 0
		hasStream := t.Source&store.SourceStream != 0
		if hasSearch {
			nSearch++
		}
		if hasStream {
			nStream++
		}
		if hasSearch && hasStream {
			nBoth++
		}
	}
	n := float64(tweets.Len())
	return float64(nSearch) / n, float64(nStream) / n, float64(nBoth) / n
}
