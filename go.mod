module msgscope

go 1.23
