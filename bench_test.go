// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §4 for the experiment index). Each benchmark runs the relevant
// analysis slice over a shared end-to-end study fixture and reports the
// headline numbers via b.Log, so `go test -bench=. -benchmem -v` both
// measures the analysis cost and prints the reproduced rows/series.
package msgscope_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"msgscope"
)

// benchFixture is the shared study run: 38 simulated days at 1% of the
// paper's volumes, built once per benchmark binary.
var (
	benchOnce sync.Once
	benchRes  *msgscope.Result
	benchErr  error
)

func fixture(b *testing.B) *msgscope.Result {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = msgscope.Run(context.Background(), msgscope.Options{
			Seed:  42,
			Scale: 0.01,
			Days:  38,
		})
	})
	if benchErr != nil {
		b.Fatalf("building bench fixture: %v", benchErr)
	}
	return benchRes
}

// benchExperiment measures re-deriving one experiment from the dataset.
func benchExperiment(b *testing.B, id string) {
	res := fixture(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Render(id)
	}
	b.StopTimer()
	b.Log("\n" + out)
}

// BenchmarkRender_ColdCache re-derives Figure 6 from the raw dataset every
// iteration, bypassing the memo cache — the cost an experiment pays once.
func BenchmarkRender_ColdCache(b *testing.B) {
	res := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Recompute("fig6")
	}
}

// BenchmarkRender_WarmCache serves the same figure from the memo cache —
// the cost every later caller pays. Compare against Render_ColdCache.
func BenchmarkRender_WarmCache(b *testing.B) {
	res := fixture(b)
	res.Render("fig6") // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Render("fig6")
	}
}

// BenchmarkRenderAll_Warm measures the parallel fan-out over all 18
// experiments once the cache is primed (assembly + lookups only).
func BenchmarkRenderAll_Warm(b *testing.B) {
	res := fixture(b)
	res.RenderAll() // prime the cache, computing experiments in parallel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.RenderAll()
	}
}

func BenchmarkTable1_Characteristics(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2_DatasetOverview(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3_LDATopics(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4_PIIExposure(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable5_DiscordLinks(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkFig1_DiscoveryPerDay(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2_TweetsPerURL(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3_TweetFeatures(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4_Languages(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5_Staleness(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6_Revocation(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7_Members(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8_MessageTypes(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9_MessageVolumes(b *testing.B)    { benchExperiment(b, "fig9") }

// Section 5's unnumbered analyses: group creators and creator countries.
func BenchmarkSec5_GroupCreators(b *testing.B)  { benchExperiment(b, "creators") }
func BenchmarkSec5_GroupCountries(b *testing.B) { benchExperiment(b, "countries") }

// BenchmarkExt_CrossSourceDiscovery runs the future-work second discovery
// source end-to-end and reports how many groups a Twitter-only study misses.
func BenchmarkExt_CrossSourceDiscovery(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res, err := msgscope.Run(context.Background(), msgscope.Options{
			Seed:            13,
			Scale:           0.004,
			Days:            10,
			SocialDiscovery: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		out = res.Render("crosssource")
	}
	b.StopTimer()
	b.Log("\n" + out)
}

// BenchmarkExt_Toxicity runs the future-work toxicity scoring end-to-end.
func BenchmarkExt_Toxicity(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res, err := msgscope.Run(context.Background(), msgscope.Options{
			Seed:                14,
			Scale:               0.004,
			Days:                10,
			GenerateMessageText: true,
			MaxMessagesPerGroup: 3000,
		})
		if err != nil {
			b.Fatal(err)
		}
		out = res.Render("toxicity")
	}
	b.StopTimer()
	b.Log("\n" + out)
}

// BenchmarkPipeline_EndToEnd measures a full (small) study run: world
// generation, HTTP services, discovery, monitoring, joining, collection.
func BenchmarkPipeline_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := msgscope.Run(context.Background(), msgscope.Options{
			Seed:  uint64(100 + i),
			Scale: 0.002,
			Days:  8,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkAblation_DiscoverySources quantifies why the paper merges the
// Search and Streaming APIs: per-source recall over the merged dataset.
func BenchmarkAblation_DiscoverySources(b *testing.B) {
	res := fixture(b)
	b.ResetTimer()
	var line string
	for i := 0; i < b.N; i++ {
		search, stream, both := res.SourceRecall()
		line = fmt.Sprintf("recall: search-only=%.3f stream-only=%.3f merged=1.000 overlap=%.3f",
			search, stream, both)
	}
	b.StopTimer()
	b.Log(line)
}

// BenchmarkAblation_ProbeCadence sweeps the metadata probe cadence: probing
// every N days instead of daily inflates the dead-at-first-observation
// share (most visibly on Discord with its 1-day invite expiry).
func BenchmarkAblation_ProbeCadence(b *testing.B) {
	for _, cadence := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("every%dd", cadence), func(b *testing.B) {
			var line string
			for i := 0; i < b.N; i++ {
				res, err := msgscope.Run(context.Background(), msgscope.Options{
					Seed:             7,
					Scale:            0.002,
					Days:             12,
					MonitorEveryDays: cadence,
				})
				if err != nil {
					b.Fatal(err)
				}
				line = res.Render("fig6")
			}
			b.StopTimer()
			b.Log("\n" + line)
		})
	}
}

// BenchmarkAblation_SearchCadence sweeps the Search API polling cadence.
// The paper polled hourly; the 7-day search window means sparser polling
// keeps search recall high — the slack that made hourly polling a choice,
// not a requirement.
func BenchmarkAblation_SearchCadence(b *testing.B) {
	for _, hours := range []int{1, 6, 24} {
		b.Run(fmt.Sprintf("every%dh", hours), func(b *testing.B) {
			var line string
			for i := 0; i < b.N; i++ {
				res, err := msgscope.Run(context.Background(), msgscope.Options{
					Seed:             17,
					Scale:            0.002,
					Days:             10,
					SearchEveryHours: hours,
				})
				if err != nil {
					b.Fatal(err)
				}
				search, stream, _ := res.SourceRecall()
				line = fmt.Sprintf("cadence %dh: search-recall=%.3f stream-recall=%.3f",
					hours, search, stream)
			}
			b.StopTimer()
			b.Log(line)
		})
	}
}

// BenchmarkAblation_LDATopicCount sweeps K, mirroring the paper's check
// that politics topics do not appear even at K=50.
func BenchmarkAblation_LDATopicCount(b *testing.B) {
	res := fixture(b)
	for _, k := range []int{5, 10, 25, 50} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var topics []msgscope.Topic
			for i := 0; i < b.N; i++ {
				var err error
				topics, err = res.Topics("Telegram", k, 60)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if len(topics) > 0 {
				b.Logf("k=%d: top topic %.1f%% %v", k, topics[0].Share*100, topics[0].Words)
			}
		})
	}
}

// BenchmarkAblation_JoinSample sweeps the join-phase sample size, showing
// how stable the Figure 8/9 shapes are in the number of joined groups.
func BenchmarkAblation_JoinSample(b *testing.B) {
	for _, n := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("join%d", n), func(b *testing.B) {
			var line string
			for i := 0; i < b.N; i++ {
				res, err := msgscope.Run(context.Background(), msgscope.Options{
					Seed:         21,
					Scale:        0.002,
					Days:         10,
					JoinWhatsApp: n, JoinTelegram: n, JoinDiscord: n,
				})
				if err != nil {
					b.Fatal(err)
				}
				line = res.Render("fig8")
			}
			b.StopTimer()
			b.Log("\n" + line)
		})
	}
}
