package msgscope_test

import (
	"context"
	"testing"

	"msgscope"
)

// TestSerialAndParallelRunsRenderIdentically is the determinism contract
// of the parallel collection pipeline: at the same seed, a run with every
// fan-out forced serial and a run with the default parallel fan-outs must
// produce byte-identical report output. The order-sensitive experiments
// are the interesting ones — Table 3's LDA subsamples a collection-order
// prefix of the tweet slice, and Figures 8/9 walk the message slice — so
// any ingest-order divergence shows up here.
func TestSerialAndParallelRunsRenderIdentically(t *testing.T) {
	ctx := context.Background()
	base := msgscope.Options{Seed: 42, Scale: 0.01, Days: 10}

	serialOpts := base
	serialOpts.SearchWorkers, serialOpts.CollectWorkers = 1, 1
	serial, err := msgscope.Run(ctx, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := msgscope.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig6", "fig8", "fig9"} {
		if s, p := serial.Render(id), parallel.Render(id); s != p {
			t.Errorf("%s diverges between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
}
