package msgscope_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"msgscope"
	"msgscope/internal/analysis/lda"
	"msgscope/internal/analysis/textproc"
	"msgscope/internal/core"
	"msgscope/internal/faults"
)

// TestSerialAndParallelRunsRenderIdentically is the determinism contract
// of the parallel collection pipeline: at the same seed, a run with every
// fan-out forced serial and a run with the default parallel fan-outs must
// produce byte-identical report output. The order-sensitive experiments
// are the interesting ones — Table 3's LDA subsamples a collection-order
// prefix of the tweet slice, and Figures 8/9 walk the message slice — so
// any ingest-order divergence shows up here.
func TestSerialAndParallelRunsRenderIdentically(t *testing.T) {
	ctx := context.Background()
	base := msgscope.Options{Seed: 42, Scale: 0.01, Days: 10}

	serialOpts := base
	serialOpts.SearchWorkers, serialOpts.CollectWorkers = 1, 1
	serial, err := msgscope.Run(ctx, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := msgscope.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig6", "fig8", "fig9"} {
		if s, p := serial.Render(id), parallel.Render(id); s != p {
			t.Errorf("%s diverges between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
}

// TestLDAWorkerCountInvariance is the analysis-phase half of the
// determinism contract: both parallel Gibbs samplers — the sparse s/r/q
// decomposition and the alias-table Metropolis–Hastings chain — must
// produce a byte-identical fitted model at any worker count, because
// Table 3's topics must not depend on the machine it ran on. The corpus
// goes through the production tokenizer path so the test pins the whole
// text→topics chain, not just the sampler.
func TestLDAWorkerCountInvariance(t *testing.T) {
	words := []string{
		"join", "group", "whatsapp", "telegram", "discord", "invite", "link",
		"crypto", "signal", "free", "news", "chat", "deal", "click", "earn",
		"video", "game", "music", "live", "today",
	}
	var texts []string
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for d := 0; d < 600; d++ {
		var s string
		for w, n := 0, 6+next(10); w < n; w++ {
			s += words[next(len(words))] + " "
		}
		texts = append(texts, s+fmt.Sprintf("tag%d", next(50)))
	}
	corpus := textproc.NewCorpus(textproc.NewTokenizer(), texts)

	// fingerprint captures everything Table 3 and the extensions read off
	// a fitted model: exact per-document assignments, topic shares, and
	// ranked word summaries. (The Model struct itself records the worker
	// count in its config, so models fitted at different widths are
	// compared by their observable state.)
	fingerprint := func(sampler lda.Sampler, workers int) any {
		m := lda.Fit(corpus, lda.Config{
			Topics: 10, Iterations: 60, Seed: 42, Workers: workers, Sampler: sampler,
		})
		docs := make([]int, 600)
		for d := range docs {
			docs[d] = m.DocTopic(d)
		}
		return []any{docs, m.TopicShares(), m.Summaries(10), m.Perplexity()}
	}
	for _, sampler := range []lda.Sampler{lda.SamplerSparse, lda.SamplerAlias} {
		want := fingerprint(sampler, 1)
		for _, workers := range []int{4, 16} {
			if got := fingerprint(sampler, workers); !reflect.DeepEqual(got, want) {
				t.Errorf("lda.Fit(%s) with %d workers diverges from the serial fit", sampler, workers)
			}
		}
	}
}

// TestRaceHammerFloodBurstBreakers drives 16 message-collection workers
// into a rate-limit burst that opens every platform's shared circuit
// breaker mid-collection. Run under -race (`make race`), it exercises the
// contended paths of the retry layer — concurrent breaker open/close
// transitions, shared virtual-clock advances from the waiters, and the
// injector's atomic fault counters — and asserts the burst was actually
// absorbed: the run completes, breakers both opened and closed, and
// rate-limit waits were recorded.
func TestRaceHammerFloodBurstBreakers(t *testing.T) {
	start := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	days := 3
	s, err := core.NewStudy(core.Config{
		Seed:           9,
		Scale:          0.01,
		Days:           days,
		JoinDay:        1, // join before the burst; collection runs into it
		CollectWorkers: 16,
		Faults: &faults.Plan{
			Seed: 9,
			FloodBursts: []faults.Window{
				{From: start.Add(time.Duration(days) * 24 * time.Hour),
					To: start.Add(time.Duration(days)*24*time.Hour + 5*time.Minute)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run under flood burst failed: %v", err)
	}
	js := s.JoinStats()
	if js.Joined == 0 {
		t.Fatal("no groups joined; the burst was never exercised")
	}
	if js.FloodWaits == 0 {
		t.Fatal("no flood waits recorded; the burst missed the collection phase")
	}
	var opens, closes int64
	for _, bs := range s.BreakerStats() {
		opens += bs.Opens
		closes += bs.Closes
	}
	if opens == 0 || closes == 0 {
		t.Fatalf("breakers never cycled under the burst: opens=%d closes=%d", opens, closes)
	}
}
