package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/twitter"
)

// runServe stands the four simulated services up on local ports with a
// real-time-scaled virtual clock, so the APIs can be explored with curl:
//
//	msgscope serve -seed 42 -scale 0.01 -speedup 3600
//
// At speedup 3600, one real second is one virtual hour; the full 38-day
// study window elapses in about 15 minutes. The Twitter service publishes
// tweets continuously as virtual time passes.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 0.01, "workload scale")
	speedup := fs.Float64("speedup", 3600, "virtual seconds per real second")
	addr := fs.String("addr", "127.0.0.1:0", "base listen address (port 0 picks four free ports)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world := simworld.New(simworld.DefaultConfig(*seed, *scale))
	clock := simclock.NewScaled(world.Cfg.Start, *speedup)
	twSvc := twitter.NewService(world, clock, twitter.DefaultServiceConfig())

	services := []struct {
		name    string
		handler http.Handler
	}{
		{"twitter", twSvc.Handler()},
		{"whatsapp", whatsapp.NewService(world, clock).Handler()},
		{"telegram", telegram.NewService(world, clock, telegram.DefaultServiceConfig()).Handler()},
		{"discord", discord.NewService(world, clock, discord.DefaultServiceConfig()).Handler()},
	}
	for _, svc := range services {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return fmt.Errorf("listening for %s: %w", svc.name, err)
		}
		fmt.Printf("%-9s http://%s\n", svc.name, ln.Addr())
		srv := &http.Server{Handler: svc.handler}
		go srv.Serve(ln)
		defer srv.Close()
	}
	fmt.Printf("virtual clock: start %s, speedup %.0fx\n", world.Cfg.Start.Format("2006-01-02"), *speedup)
	fmt.Println("example: curl '<twitter>/1.1/search/tweets.json?q=discord.gg'")
	fmt.Println("Ctrl-C to stop; tweets publish continuously as virtual time passes.")

	// Publish tweets as virtual time advances.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				twSvc.PublishUpTo(clock.Now())
			}
		}
	}()
	<-stop
	close(done)
	fmt.Println("\nshutting down")
	return nil
}
