package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"msgscope"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/twitter"
)

// runServe stands the four simulated services up on local ports with a
// real-time-scaled virtual clock, so the APIs can be explored with curl:
//
//	msgscope serve -seed 42 -scale 0.01 -speedup 3600
//
// At speedup 3600, one real second is one virtual hour; the full 38-day
// study window elapses in about 15 minutes. The Twitter service publishes
// tweets continuously as virtual time passes.
//
// With -report (on by default) it also runs a study at the same seed and
// serves the experiment results over HTTP. The Result memoizes every
// experiment, so the first GET of an ID computes it and every later GET —
// including concurrent ones — is served from cache:
//
//	curl '<report>/experiments'
//	curl '<report>/experiment/table2'
//	curl '<report>/figure/fig6.csv'
//	curl '<report>/figure/fig6.svg'
//	curl '<report>/report'
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 0.01, "workload scale")
	speedup := fs.Float64("speedup", 3600, "virtual seconds per real second")
	addr := fs.String("addr", "127.0.0.1:0", "base listen address (port 0 picks four free ports)")
	reportAPI := fs.Bool("report", true, "run a study and serve cached experiment results")
	days := fs.Int("days", 8, "collection window for the -report study")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world := simworld.New(simworld.DefaultConfig(*seed, *scale))
	clock := simclock.NewScaled(world.Cfg.Start, *speedup)
	twSvc := twitter.NewService(world, clock, twitter.DefaultServiceConfig())

	services := []struct {
		name    string
		handler http.Handler
	}{
		{"twitter", twSvc.Handler()},
		{"whatsapp", whatsapp.NewService(world, clock).Handler()},
		{"telegram", telegram.NewService(world, clock, telegram.DefaultServiceConfig()).Handler()},
		{"discord", discord.NewService(world, clock, discord.DefaultServiceConfig()).Handler()},
	}
	for _, svc := range services {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return fmt.Errorf("listening for %s: %w", svc.name, err)
		}
		fmt.Printf("%-9s http://%s\n", svc.name, ln.Addr())
		srv := &http.Server{Handler: svc.handler}
		go srv.Serve(ln)
		defer srv.Close()
	}
	fmt.Printf("virtual clock: start %s, speedup %.0fx\n", world.Cfg.Start.Format("2006-01-02"), *speedup)
	fmt.Println("example: curl '<twitter>/1.1/search/tweets.json?q=discord.gg'")

	if *reportAPI {
		fmt.Printf("running %d-day study for the report API (seed %d, scale %g)...\n",
			*days, *seed, *scale)
		res, err := msgscope.Run(context.Background(), msgscope.Options{
			Seed: *seed, Scale: *scale, Days: *days, ProfilePhases: true,
		})
		if err != nil {
			return fmt.Errorf("report study: %w", err)
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return fmt.Errorf("listening for report: %w", err)
		}
		fmt.Printf("%-9s http://%s  (/experiments /experiment/{id} /report /figure/{id}.csv /figure/{id}.svg /profile)\n",
			"report", ln.Addr())
		srv := &http.Server{Handler: reportMux(res)}
		go srv.Serve(ln)
		defer srv.Close()
	}
	fmt.Println("Ctrl-C to stop; tweets publish continuously as virtual time passes.")

	// Publish tweets as virtual time advances.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				twSvc.PublishUpTo(clock.Now())
			}
		}
	}()
	<-stop
	close(done)
	fmt.Println("\nshutting down")
	return nil
}

// reportMux serves the study's experiment results. Every endpoint reads
// through the Result's memo cache, so concurrent requests for the same
// artifact share one computation and repeats are cache hits.
func reportMux(res *msgscope.Result) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, strings.Join(msgscope.Experiments(), "\n"))
	})
	mux.HandleFunc("GET /experiment/{id}", func(w http.ResponseWriter, r *http.Request) {
		out := res.Render(r.PathValue("id"))
		if strings.HasPrefix(out, "unknown experiment") {
			http.Error(w, out, http.StatusNotFound)
			return
		}
		fmt.Fprint(w, out)
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, res.RenderAll())
	})
	mux.HandleFunc("GET /profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Runtime msgscope.RuntimeSample `json:"runtime"`
			Phases  []msgscope.PhaseStat   `json:"phases,omitempty"`
			Stages  []msgscope.StageStat   `json:"stages,omitempty"`
		}{Runtime: msgscope.Runtime(), Phases: res.ProfilePhases(), Stages: res.ProfileStages()})
	})
	mux.HandleFunc("GET /figure/{file}", func(w http.ResponseWriter, r *http.Request) {
		file := r.PathValue("file")
		switch {
		case strings.HasSuffix(file, ".csv"):
			data, err := res.FigureCSV(strings.TrimSuffix(file, ".csv"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/csv")
			w.Write(data)
		case strings.HasSuffix(file, ".svg"):
			svg, err := res.FigureSVG(strings.TrimSuffix(file, ".svg"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "image/svg+xml")
			fmt.Fprint(w, svg)
		default:
			http.Error(w, "want /figure/{id}.csv or /figure/{id}.svg", http.StatusNotFound)
		}
	})
	return mux
}
