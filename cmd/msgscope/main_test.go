package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudySmall(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"run", "-seed", "4", "-scale", "0.002", "-days", "4",
		"-exp", "table2,fig6", "-out", filepath.Join(dir, "ds")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ds", "tweets.jsonl")); err != nil {
		t.Fatalf("dataset not saved: %v", err)
	}
}

func TestRunStudyBadExperiment(t *testing.T) {
	// Unknown experiment IDs are reported inline, not as an error.
	if err := run([]string{"run", "-scale", "0.002", "-days", "2", "-exp", "nope"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGen(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"gen", "-seed", "2", "-scale", "0.002", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"world_groups.jsonl", "world_tweets.jsonl"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty: %v", f, err)
		}
	}
}

func TestRunGenRequiresOut(t *testing.T) {
	if err := run([]string{"gen"}); err == nil {
		t.Fatal("gen without -out accepted")
	}
}
