// Command msgscope runs the simulated reproduction of "Demystifying the
// Messaging Platforms' Ecosystem Through the Lens of Twitter" (IMC 2020).
//
// Usage:
//
//	msgscope run    [-seed N] [-scale F] [-days N] [-out DIR] [-exp id,...]
//	msgscope report [-seed N] [-scale F] -exp table2,fig1,...  (alias of run)
//	msgscope list
//
// `run` executes the full 38-day methodology — discovery via the simulated
// Twitter APIs, daily monitoring, joining, message collection — then prints
// the requested tables/figures (default: all) and optionally saves the
// dataset as JSONL under -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"msgscope"
	"msgscope/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "msgscope:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		fmt.Println("experiments:", strings.Join(msgscope.Experiments(), " "))
		return nil
	case "run", "report":
		return runStudy(args[1:])
	case "serve":
		return runServe(args[1:])
	case "gen":
		return runGen(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  msgscope run    [-seed N] [-scale F] [-days N] [-fault-rate F] [-lda-sampler NAME] [-out DIR] [-exp id,...] [-summary]
  msgscope run    [-checkpoint DIR | -resume DIR] [-mem-budget SIZE] ...
  msgscope report [-seed N] [-scale F] -exp table2,fig1,...
  msgscope serve  [-seed N] [-scale F] [-speedup X] [-addr HOST:PORT]
  msgscope gen    [-seed N] [-scale F] -out DIR
  msgscope list`)
}

// parseBytes parses a byte size with an optional k/m/g/t suffix (binary
// units), e.g. "8g", "512m", "1048576".
func parseBytes(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	shift := 0
	switch {
	case strings.HasSuffix(t, "k"):
		shift, t = 10, t[:len(t)-1]
	case strings.HasSuffix(t, "m"):
		shift, t = 20, t[:len(t)-1]
	case strings.HasSuffix(t, "g"):
		shift, t = 30, t[:len(t)-1]
	case strings.HasSuffix(t, "t"):
		shift, t = 40, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 8g, 512m, or a byte count)", s)
	}
	if n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n << shift, nil
}

func runStudy(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 0.02, "workload scale (1.0 = paper scale)")
	days := fs.Int("days", 38, "collection window in days")
	out := fs.String("out", "", "directory to save the JSONL dataset (optional)")
	exp := fs.String("exp", "", "comma-separated experiment IDs (default: all)")
	summary := fs.Bool("summary", true, "print pipeline summary")
	maxMsgs := fs.Int("max-messages", 0, "cap messages collected per joined group (0 = unlimited)")
	joinWA := fs.Int("join-wa", 0, "WhatsApp groups to join (0 = scaled paper default)")
	joinTG := fs.Int("join-tg", 0, "Telegram groups to join (0 = scaled paper default)")
	joinDC := fs.Int("join-dc", 0, "Discord servers to join (0 = scaled paper default)")
	text := fs.Bool("text", false, "collect message bodies (needed for the toxicity experiment)")
	topics := fs.String("topics", "", "comma-separated title keywords for focused collection")
	csvDir := fs.String("csv", "", "directory to write per-figure CSV data (optional)")
	svgDir := fs.String("svg", "", "directory to render per-figure SVG charts (optional)")
	socialSrc := fs.Bool("social", false, "enable the secondary discovery source (crosssource experiment)")
	ldaSampler := fs.String("lda-sampler", "", "LDA Gibbs kernel for the table3 analysis: dense, sparse or alias (default: package routing)")
	faultRate := fs.Float64("fault-rate", 0, "per-request probability of an injected server error (plus timeouts and malformed bodies at a quarter of the rate); 0 disables fault injection")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocs/heap profile to this file at exit")
	traceFile := fs.String("trace", "", "write a runtime execution trace to this file")
	profPhases := fs.Bool("prof-phases", false, "record and print per-phase allocation stats")
	ckptDir := fs.String("checkpoint", "", "directory to checkpoint the run into at every phase boundary (makes it resumable)")
	resumeDir := fs.String("resume", "", "resume an interrupted run from this checkpoint directory (run options come from its manifest; other study flags are ignored)")
	memBudget := fs.String("mem-budget", "", "live-heap byte budget for the column store, e.g. 8g or 512m; cold rows spill to mmap-backed segment files (empty = never spill)")
	spillDir := fs.String("spill-dir", "", "directory for spilled segment files (default: under -checkpoint, else a temp dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resumeDir != "" && *ckptDir != "" {
		return fmt.Errorf("-resume and -checkpoint are mutually exclusive (a resumed run keeps checkpointing into its own directory)")
	}

	profFiles, err := prof.StartFiles(prof.FileConfig{
		CPUProfile: *cpuProfile,
		MemProfile: *memProfile,
		Trace:      *traceFile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := profFiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "msgscope:", err)
		}
	}()

	opts := msgscope.Options{
		Seed:                *seed,
		Scale:               *scale,
		Days:                *days,
		MaxMessagesPerGroup: *maxMsgs,
		JoinWhatsApp:        *joinWA,
		JoinTelegram:        *joinTG,
		JoinDiscord:         *joinDC,
		GenerateMessageText: *text,
		SocialDiscovery:     *socialSrc,
		LDASampler:          *ldaSampler,
		ProfilePhases:       *profPhases,
	}
	if *topics != "" {
		opts.TopicKeywords = strings.Split(*topics, ",")
	}
	if *faultRate > 0 {
		opts.Faults = &msgscope.FaultPlan{
			Seed:          *seed,
			ErrorRate:     *faultRate,
			TimeoutRate:   *faultRate / 4,
			MalformedRate: *faultRate / 4,
		}
	}
	opts.CheckpointDir = *ckptDir
	opts.SpillDir = *spillDir
	if *memBudget != "" {
		b, err := parseBytes(*memBudget)
		if err != nil {
			return fmt.Errorf("-mem-budget: %w", err)
		}
		opts.MemBudget = b
	}
	var res *msgscope.Result
	if *resumeDir != "" {
		res, err = msgscope.Resume(context.Background(), *resumeDir)
	} else {
		res, err = msgscope.Run(context.Background(), opts)
	}
	if err != nil {
		return err
	}
	if *summary {
		fmt.Println(res.Summary())
	}
	if *profPhases {
		fmt.Println("per-phase allocations:")
		for _, ps := range res.ProfilePhases() {
			fmt.Printf("  %-8s %4d captures  %12d bytes  %10d objects  %3d gc cycles\n",
				ps.Phase, ps.Captures, ps.AllocBytes, ps.AllocObjects, ps.GCCycles)
		}
	}
	if *exp == "" {
		fmt.Print(res.RenderAll())
	} else {
		for _, id := range strings.Split(*exp, ",") {
			fmt.Println(res.Render(strings.TrimSpace(id)))
		}
	}
	if *profPhases {
		if stages := res.ProfileStages(); len(stages) > 0 {
			fmt.Println("analysis stages:")
			for _, st := range stages {
				fmt.Printf("  %-10s %4d calls  %12s wall\n", st.Stage, st.Calls, st.Wall)
			}
		}
	}
	if *out != "" {
		if err := res.SaveDataset(*out); err != nil {
			return fmt.Errorf("saving dataset: %w", err)
		}
		fmt.Println("dataset saved to", *out)
	}
	if *csvDir != "" {
		if err := res.SaveFigureCSVs(*csvDir); err != nil {
			return fmt.Errorf("saving figure CSVs: %w", err)
		}
		fmt.Println("figure CSVs saved to", *csvDir)
	}
	if *svgDir != "" {
		if err := res.SaveFigureSVGs(*svgDir); err != nil {
			return fmt.Errorf("rendering figure SVGs: %w", err)
		}
		fmt.Println("figure SVGs rendered to", *svgDir)
	}
	return nil
}
