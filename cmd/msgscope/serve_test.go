package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"msgscope"
)

// TestReportMux exercises every report-API endpoint against a small study.
func TestReportMux(t *testing.T) {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed: 5, Scale: 0.002, Days: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reportMux(res))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/experiments"); code != 200 || !strings.Contains(body, "table2") {
		t.Errorf("/experiments: code=%d body=%.60s", code, body)
	}
	if code, body := get("/experiment/table2"); code != 200 || !strings.Contains(body, "Table 2") {
		t.Errorf("/experiment/table2: code=%d body=%.60s", code, body)
	}
	if code, _ := get("/experiment/nope"); code != 404 {
		t.Errorf("/experiment/nope: code=%d, want 404", code)
	}
	if code, body := get("/figure/fig2.csv"); code != 200 || !strings.HasPrefix(body, "platform,") {
		t.Errorf("/figure/fig2.csv: code=%d body=%.60s", code, body)
	}
	if code, body := get("/figure/fig2.svg"); code != 200 || !strings.Contains(body, "<svg") {
		t.Errorf("/figure/fig2.svg: code=%d body=%.60s", code, body)
	}
	if code, _ := get("/figure/fig42.csv"); code != 404 {
		t.Errorf("/figure/fig42.csv: code=%d, want 404", code)
	}
	if code, _ := get("/figure/fig2.png"); code != 404 {
		t.Errorf("/figure/fig2.png: code=%d, want 404", code)
	}
	if code, body := get("/report"); code != 200 || !strings.Contains(body, "Table 2") {
		t.Errorf("/report: code=%d len=%d", code, len(body))
	}
}
