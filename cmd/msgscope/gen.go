package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/simworld"
	"msgscope/internal/store"
)

// genGroup is the ground-truth group dump record.
type genGroup struct {
	Platform     string    `json:"platform"`
	Code         string    `json:"code"`
	URL          string    `json:"url"`
	Title        string    `json:"title"`
	Lang         string    `json:"lang"`
	Topic        string    `json:"topic"`
	CreatedAt    time.Time `json:"created_at"`
	FirstShareAt time.Time `json:"first_share_at"`
	RevokedAt    time.Time `json:"revoked_at,omitempty"`
	IsChannel    bool      `json:"is_channel,omitempty"`
	BaseMembers  int       `json:"base_members"`
	Channels     int       `json:"channels"`
}

// genTweet is the ground-truth tweet dump record.
type genTweet struct {
	ID        uint64    `json:"id"`
	AuthorID  string    `json:"author_id"`
	CreatedAt time.Time `json:"created_at"`
	Lang      string    `json:"lang"`
	Text      string    `json:"text"`
	GroupCode string    `json:"group_code"`
	Platform  string    `json:"platform"`
}

// runGen generates a world and dumps its ground truth as JSONL — useful for
// feeding the standalone analysis tools (e.g. ldatopics) or inspecting what
// the collection pipeline is measured against.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 0.01, "workload scale")
	out := fs.String("out", "", "output directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	world := simworld.New(simworld.DefaultConfig(*seed, *scale))

	var groups []genGroup
	for _, p := range platform.All {
		for _, g := range world.Groups[p] {
			groups = append(groups, genGroup{
				Platform:     p.String(),
				Code:         g.Code,
				URL:          g.URL,
				Title:        g.Title,
				Lang:         g.Lang,
				Topic:        g.Topic.Label,
				CreatedAt:    g.CreatedAt,
				FirstShareAt: g.FirstShareAt,
				RevokedAt:    g.RevokedAt,
				IsChannel:    g.IsChannel,
				BaseMembers:  g.BaseMembers,
				Channels:     g.Channels,
			})
		}
	}
	if err := writeJSONL(filepath.Join(*out, "world_groups.jsonl"), groups); err != nil {
		return err
	}

	var tweets []genTweet
	for _, day := range world.TweetsByDay {
		for _, tw := range day {
			tweets = append(tweets, genTweet{
				ID:        tw.ID,
				AuthorID:  tw.AuthorID,
				CreatedAt: tw.CreatedAt,
				Lang:      tw.Lang,
				Text:      tw.Text,
				GroupCode: tw.Group.Code,
				Platform:  tw.Group.Platform.String(),
			})
		}
	}
	if err := writeJSONL(filepath.Join(*out, "world_tweets.jsonl"), tweets); err != nil {
		return err
	}
	fmt.Printf("wrote %d groups and %d tweets to %s\n", len(groups), len(tweets), *out)
	return nil
}

func writeJSONL[T any](path string, items []T) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.WriteJSONL(f, items); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
