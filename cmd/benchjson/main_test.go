package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: msgscope/internal/core
cpu: Example CPU @ 2.50GHz
BenchmarkStudyRun/serial-8   	       2	1000000000 ns/op	190000000 B/op	 1700000 allocs/op
BenchmarkStudyRun/parallel-8 	       2	 500000000 ns/op	191000000 B/op	 1710000 allocs/op
BenchmarkHourlySearch-8      	     100	  10000000 ns/op	  200000 B/op	    3000 allocs/op
BenchmarkStoreIngest/tweets-8	       2	 225000000 ns/op	       301.0 liveB/rec	      2250 ns/rec	54000000 B/op	  310000 allocs/op
PASS
ok  	msgscope/internal/core	5.000s
`

func TestParseBench(t *testing.T) {
	doc, err := parseBench(strings.NewReader(sampleOutput), false)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Package != "msgscope/internal/core" || doc.CPU != "Example CPU @ 2.50GHz" {
		t.Errorf("header fields: pkg=%q cpu=%q", doc.Package, doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkStudyRun/serial" || b.NsPerOp != 1e9 ||
		b.BytesPerOp != 190000000 || b.AllocsPerOp != 1700000 {
		t.Errorf("first benchmark parsed as %+v", b)
	}
	if got := doc.Derived["BenchmarkStudyRun_speedup"]; got != "2.00x" {
		t.Errorf("speedup = %q, want 2.00x", got)
	}
	// ReportMetric columns land in the metrics map, standard columns don't.
	ing := doc.Benchmarks[3]
	if ing.Name != "BenchmarkStoreIngest/tweets" || ing.CPUs != 0 {
		t.Fatalf("ingest benchmark parsed as %+v", ing)
	}
	if ing.Metrics["liveB/rec"] != 301.0 || ing.Metrics["ns/rec"] != 2250 {
		t.Errorf("custom metrics = %v", ing.Metrics)
	}
	if ing.BytesPerOp != 54000000 || ing.AllocsPerOp != 310000 {
		t.Errorf("standard columns after metrics = %+v", ing)
	}
}

const matrixOutput = `goos: linux
goarch: amd64
pkg: msgscope/internal/core
BenchmarkStudyRun/serial   	       2	1000000000 ns/op
BenchmarkStudyRun/parallel 	       2	 900000000 ns/op
BenchmarkStudyRun/serial-4 	       2	1000000000 ns/op
BenchmarkStudyRun/parallel-4	       2	 250000000 ns/op
PASS
`

func TestParseBenchMatrix(t *testing.T) {
	doc, err := parseBench(strings.NewReader(matrixOutput), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	// -cpu 1 lines carry no suffix (go test omits "-1"); -cpu 4 lines do.
	if b := doc.Benchmarks[0]; b.Name != "BenchmarkStudyRun/serial" || b.CPUs != 0 {
		t.Errorf("cpu-1 line parsed as %+v", b)
	}
	if b := doc.Benchmarks[2]; b.Name != "BenchmarkStudyRun/serial" || b.CPUs != 4 {
		t.Errorf("cpu-4 line parsed as %+v", b)
	}
	if got := doc.Derived["BenchmarkStudyRun_speedup"]; got != "1.11x" {
		t.Errorf("1-cpu speedup = %q, want 1.11x", got)
	}
	if got := doc.Derived["BenchmarkStudyRun_speedup[cpu=4]"]; got != "4.00x" {
		t.Errorf("4-cpu speedup = %q, want 4.00x", got)
	}
}

func TestBestOfKeepsFastestRun(t *testing.T) {
	// go test -count=3 repeats every benchmark; the recorded row must be
	// the fastest repetition, whole-row (its metrics come along with it).
	in := `BenchmarkLDAFit/alias/serial	 6	 180000000 ns/op	 60.0 tok/s
BenchmarkLDAFit/alias/serial	 6	 160000000 ns/op	 67.5 tok/s
BenchmarkLDAFit/alias/serial-2	 6	 175000000 ns/op	 61.7 tok/s
BenchmarkLDAFit/alias/serial	 6	 170000000 ns/op	 63.5 tok/s
PASS
`
	doc, err := parseBench(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (cpu=1 collapsed, cpu=2 kept)", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.CPUs != 0 || b.NsPerOp != 160000000 || b.Metrics["tok/s"] != 67.5 {
		t.Errorf("best cpu=1 row = %+v, want the 160ms/67.5tok/s repetition", b)
	}
	if b2 := doc.Benchmarks[1]; b2.CPUs != 2 || b2.NsPerOp != 175000000 {
		t.Errorf("cpu=2 row = %+v, want untouched 175ms", b2)
	}
}

func TestRegressionsGate(t *testing.T) {
	base := []benchmark{
		{Name: "BenchmarkStudyRun/serial", NsPerOp: 1e9, AllocsPerOp: 1_000_000},
		{Name: "BenchmarkHourlySearch", NsPerOp: 1e7, AllocsPerOp: 3000},
		{Name: "BenchmarkRemoved", NsPerOp: 5e6, AllocsPerOp: 10},
	}

	// Within tolerance (+10% ns, equal allocs): no findings.
	ok := []benchmark{
		{Name: "BenchmarkStudyRun/serial", NsPerOp: 1.1e9, AllocsPerOp: 1_000_000},
		{Name: "BenchmarkHourlySearch", NsPerOp: 0.9e7, AllocsPerOp: 3000},
		{Name: "BenchmarkAdded", NsPerOp: 1e6, AllocsPerOp: 1}, // not in baseline: ignored
	}
	if regs := regressions(base, ok, 0.20); len(regs) != 0 {
		t.Errorf("within-tolerance run flagged: %v", regs)
	}

	// Synthetic >20% regressions in both dimensions must be caught.
	bad := []benchmark{
		{Name: "BenchmarkStudyRun/serial", NsPerOp: 1.5e9, AllocsPerOp: 1_000_000},
		{Name: "BenchmarkHourlySearch", NsPerOp: 1e7, AllocsPerOp: 4000},
	}
	regs := regressions(base, bad, 0.20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "ns/op") || !strings.Contains(joined, "allocs/op") {
		t.Errorf("regression messages missing dimensions: %v", regs)
	}
}

func TestRegressionsGateCustomMetrics(t *testing.T) {
	base := []benchmark{
		{Name: "BenchmarkStoreIngest/tweets", NsPerOp: 1e8,
			Metrics: map[string]float64{"liveB/rec": 300, "ns/rec": 2200}},
		{Name: "BenchmarkStoreIngest/tweets", CPUs: 4, NsPerOp: 1e8,
			Metrics: map[string]float64{"liveB/rec": 300}},
	}

	// Within tolerance, and a metric only the fresh side has: no findings.
	ok := []benchmark{
		{Name: "BenchmarkStoreIngest/tweets", NsPerOp: 1e8,
			Metrics: map[string]float64{"liveB/rec": 330, "ns/rec": 2100, "new/rec": 9}},
	}
	if regs := regressions(base, ok, 0.20); len(regs) != 0 {
		t.Errorf("within-tolerance metrics flagged: %v", regs)
	}

	// +50% liveB/rec must be caught; the cpu=4 row is matched separately.
	bad := []benchmark{
		{Name: "BenchmarkStoreIngest/tweets", NsPerOp: 1e8,
			Metrics: map[string]float64{"liveB/rec": 450, "ns/rec": 2200}},
		{Name: "BenchmarkStoreIngest/tweets", CPUs: 4, NsPerOp: 1e8,
			Metrics: map[string]float64{"liveB/rec": 290}},
	}
	regs := regressions(base, bad, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "liveB/rec") {
		t.Fatalf("got %v, want one liveB/rec regression", regs)
	}
}

func TestRegressionsGateThroughputMetrics(t *testing.T) {
	base := []benchmark{
		{Name: "BenchmarkLDAFit/alias/serial", NsPerOp: 1e8,
			Metrics: map[string]float64{"tok/s": 70e6}},
	}

	// A "/s" metric is higher-is-better: growth is an improvement, not a
	// regression.
	faster := []benchmark{
		{Name: "BenchmarkLDAFit/alias/serial", NsPerOp: 1e8,
			Metrics: map[string]float64{"tok/s": 100e6}},
	}
	if regs := regressions(base, faster, 0.20); len(regs) != 0 {
		t.Errorf("throughput improvement flagged: %v", regs)
	}

	// A >20% throughput drop must be caught.
	slower := []benchmark{
		{Name: "BenchmarkLDAFit/alias/serial", NsPerOp: 1e8,
			Metrics: map[string]float64{"tok/s": 50e6}},
	}
	regs := regressions(base, slower, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "tok/s") {
		t.Fatalf("got %v, want one tok/s regression", regs)
	}
}

func TestResolveBaselinePicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resolveBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("resolveBaseline = %q, want BENCH_10.json", got)
	}

	// A direct file path is used as-is.
	file := filepath.Join(dir, "BENCH_2.json")
	if got, err := resolveBaseline(file); err != nil || got != file {
		t.Errorf("resolveBaseline(file) = %q, %v", got, err)
	}

	if _, err := resolveBaseline(t.TempDir()); err == nil {
		t.Error("empty directory accepted as baseline source")
	}
}
