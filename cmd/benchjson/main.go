// Command benchjson converts `go test -bench` text output (read on stdin)
// into a JSON document, so benchmark runs can be checked in and diffed.
// When both BenchmarkStudyRun/serial and /parallel are present it also
// records their wall-clock ratio — the pipeline's parallel speedup.
//
// Custom benchmark metrics emitted via b.ReportMetric (ns/rec, liveB/rec,
// …) are parsed into each benchmark's "metrics" map alongside the standard
// ns/op, B/op and allocs/op columns.
//
// With -cpus, benchjson runs the suite itself instead of reading stdin:
// it execs `go test -run '^$' -bench <pattern> -benchmem -cpu <list>` over
// the named packages, so one invocation produces a GOMAXPROCS matrix. Each
// result records its CPU count in the "cpus" field; -scale forwards a
// workload multiplier to the child via MSGSCOPE_BENCH_SCALE. With -count N
// each benchmark runs N times and the fastest row per configuration is
// recorded — the min over repetitions is the noise floor, which keeps
// recorded baselines comparable across runs on a shared host.
//
// With -compare, the fresh run is additionally diffed against the newest
// checked-in BENCH_*.json and the command exits non-zero when any
// benchmark regressed by more than the tolerance in ns/op, allocs/op or a
// shared custom metric — the allocation-regression gate `make ci` runs.
//
// Usage:
//
//	go test ./internal/core -run '^$' -bench 'StudyRun' -benchmem | benchjson -o BENCH.json
//	go test ./internal/core -run '^$' -bench 'StudyRun' -benchmem | benchjson -compare .
//	benchjson -cpus 1,4,8 -bench 'StudyRun|StoreIngest' -o BENCH.json ./internal/core ./internal/store
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"msgscope/internal/prof"
)

// benchmark is one parsed result line. CPUs is the GOMAXPROCS the line ran
// under — recorded only in -cpus matrix mode, where the same benchmark
// appears once per CPU count; 0 means single-configuration mode, where the
// -N name suffix is trimmed instead.
type benchmark struct {
	Name        string             `json:"name"`
	CPUs        int                `json:"cpus,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Tool       string            `json:"tool"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPU        string            `json:"cpu,omitempty"`
	Cores      int               `json:"cores"`
	CPUMatrix  []int             `json:"cpu_matrix,omitempty"`
	BenchScale float64           `json:"bench_scale,omitempty"`
	Package    string            `json:"package,omitempty"`
	Benchmarks []benchmark       `json:"benchmarks"`
	Derived    map[string]string `json:"derived,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkStudyRun/serial-8   2   1202147830 ns/op   1932900 B/op   17860 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline BENCH_*.json file, or a directory holding them (the highest-numbered one is used); exits non-zero on regression")
	tol := flag.Float64("tol", 0.20, "allowed fractional regression in ns/op, allocs/op and custom metrics before -compare fails")
	cpus := flag.String("cpus", "", "comma-separated GOMAXPROCS list (e.g. 1,4,8): run the benchmarks under each count instead of reading stdin; positional args name the packages")
	benchPat := flag.String("bench", "", "benchmark pattern for -cpus mode (required with -cpus)")
	scale := flag.Float64("scale", 0, "workload multiplier forwarded to the child as MSGSCOPE_BENCH_SCALE (only with -cpus)")
	benchtime := flag.String("benchtime", "", "passed through as go test -benchtime (only with -cpus)")
	count := flag.Int("count", 1, "repetitions per benchmark (go test -count, only with -cpus); the fastest run per configuration is recorded")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of this conversion to file")
	memprofile := flag.String("memprofile", "", "write a heap profile of this conversion to file")
	flag.Parse()

	files, err := prof.StartFiles(prof.FileConfig{CPUProfile: *cpuprofile, MemProfile: *memprofile})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer files.Stop()

	var doc document
	if *cpus != "" {
		doc, err = runMatrix(*cpus, *benchPat, *benchtime, *scale, *count, flag.Args())
	} else {
		doc, err = parseBench(os.Stdin, false)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		files.Stop()
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *compare != "" {
		path, err := resolveBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err := loadDocument(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regs := regressions(base.Benchmarks, doc.Benchmarks, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regressions vs %s (tolerance %.0f%%):\n", path, *tol*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			files.Stop()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s (tolerance %.0f%%)\n", path, *tol*100)
	}
}

// runMatrix execs the benchmark suite under each GOMAXPROCS in cpuList
// (via go test's native -cpu flag) and parses the combined output with CPU
// counts preserved. The child's stdout is mirrored to stderr so long runs
// show progress.
func runMatrix(cpuList, pattern, benchtime string, scale float64, count int, pkgs []string) (document, error) {
	var doc document
	if pattern == "" {
		return doc, fmt.Errorf("-cpus requires -bench")
	}
	if len(pkgs) == 0 {
		return doc, fmt.Errorf("-cpus requires package arguments")
	}
	var matrix []int
	for _, f := range strings.Split(cpuList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return doc, fmt.Errorf("bad -cpus entry %q", f)
		}
		matrix = append(matrix, n)
	}
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-cpu", cpuList}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if count > 1 {
		args = append(args, "-count", strconv.Itoa(count))
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	cmd.Env = os.Environ()
	if scale > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("MSGSCOPE_BENCH_SCALE=%g", scale))
	}
	if err := cmd.Run(); err != nil {
		return doc, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	doc, err := parseBench(strings.NewReader(buf.String()), true)
	doc.CPUMatrix = matrix
	doc.BenchScale = scale
	return doc, err
}

// parseBench reads `go test -bench` output and builds the JSON document.
// In matrix mode the trailing "-<GOMAXPROCS>" of each name is parsed into
// the CPUs field (the same benchmark appears once per count); otherwise it
// is trimmed, so names are stable across machines.
func parseBench(r io.Reader, matrix bool) (document, error) {
	doc := document{
		Tool:      "benchjson",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var b benchmark
		if matrix {
			b.Name, b.CPUs = splitProcSuffix(m[1])
		} else {
			b.Name = trimProcSuffix(m[1])
		}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				b.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				// ReportMetric columns (ns/rec, liveB/rec, …).
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					continue
				}
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64, 2)
				}
				b.Metrics[unit] = f
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	doc.Benchmarks = bestOf(doc.Benchmarks)
	doc.Derived = speedups(doc.Benchmarks)
	return doc, nil
}

// bestOf collapses repeated runs of the same configuration (go test -count N)
// to the single fastest row. On a shared or frequency-scaling host the
// minimum over repetitions is the standard estimator of a benchmark's true
// cost; keeping the whole winning row (rather than a per-column min) keeps
// ns/op, allocs and rate metrics mutually consistent.
func bestOf(bs []benchmark) []benchmark {
	idx := make(map[string]int, len(bs))
	out := bs[:0:0]
	for _, b := range bs {
		k := benchKey(b)
		if i, ok := idx[k]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i] = b
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, b)
	}
	return out
}

// resolveBaseline maps the -compare argument to a concrete baseline file:
// a file path is used as-is; a directory is searched for BENCH_*.json and
// the highest-numbered one wins (the newest checked-in baseline).
func resolveBaseline(arg string) (string, error) {
	fi, err := os.Stat(arg)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return arg, nil
	}
	matches, err := filepath.Glob(filepath.Join(arg, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline found in %s", arg)
	}
	return best, nil
}

func loadDocument(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// benchKey identifies a benchmark configuration across runs: matrix-mode
// results are distinct per CPU count, single-configuration results by name
// alone.
func benchKey(b benchmark) string {
	if b.CPUs > 0 {
		return fmt.Sprintf("%s[cpu=%d]", b.Name, b.CPUs)
	}
	return b.Name
}

// regressions diffs the fresh benchmarks against the baseline and reports
// every shared configuration whose ns/op, allocs/op or a shared custom
// metric moved the wrong way by more than tol (fractional). Custom metrics
// denominated per record or operation (ns/rec, liveB/rec) are
// lower-is-better, so growth is a regression; rate metrics whose unit ends
// in "/s" (tok/s) are higher-is-better throughputs, so a drop is the
// regression. Benchmarks present on only one side are ignored: baselines
// and fresh runs may cover different subsets.
func regressions(base, fresh []benchmark, tol float64) []string {
	byName := make(map[string]benchmark, len(base))
	for _, b := range base {
		byName[benchKey(b)] = b
	}
	var out []string
	for _, f := range fresh {
		b, ok := byName[benchKey(f)]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+tol) {
			out = append(out, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%)",
				benchKey(f), b.NsPerOp, f.NsPerOp, (f.NsPerOp/b.NsPerOp-1)*100))
		}
		if b.AllocsPerOp > 0 && float64(f.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			out = append(out, fmt.Sprintf("%s: allocs/op %d -> %d (+%.1f%%)",
				benchKey(f), b.AllocsPerOp, f.AllocsPerOp,
				(float64(f.AllocsPerOp)/float64(b.AllocsPerOp)-1)*100))
		}
		for unit, bv := range b.Metrics {
			fv, ok := f.Metrics[unit]
			if !ok || bv <= 0 {
				continue
			}
			if strings.HasSuffix(unit, "/s") {
				if fv < bv*(1-tol) {
					out = append(out, fmt.Sprintf("%s: %s %.2f -> %.2f (%.1f%%)",
						benchKey(f), unit, bv, fv, (fv/bv-1)*100))
				}
			} else if fv > bv*(1+tol) {
				out = append(out, fmt.Sprintf("%s: %s %.2f -> %.2f (+%.1f%%)",
					benchKey(f), unit, bv, fv, (fv/bv-1)*100))
			}
		}
	}
	sort.Strings(out)
	return out
}

// trimProcSuffix drops go test's trailing "-<GOMAXPROCS>" from a benchmark
// name, so names are stable across machines.
func trimProcSuffix(name string) string {
	s, _ := splitProcSuffix(name)
	return s
}

// splitProcSuffix separates go test's trailing "-<GOMAXPROCS>" from a
// benchmark name, returning 0 when the name has none.
func splitProcSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 0
	}
	return name[:i], n
}

// speedups derives serial/parallel wall-clock ratios for every benchmark
// that has both sub-modes, per CPU count in matrix mode.
func speedups(bs []benchmark) map[string]string {
	ns := map[string]float64{}
	for _, b := range bs {
		ns[benchKey(b)] = b.NsPerOp
	}
	out := map[string]string{}
	for _, b := range bs {
		var cpuTag string
		if b.CPUs > 0 {
			cpuTag = fmt.Sprintf("[cpu=%d]", b.CPUs)
		}
		base, ok := strings.CutSuffix(b.Name, "/serial")
		if !ok {
			continue
		}
		parallel, ok := ns[base+"/parallel"+cpuTag]
		if !ok || parallel == 0 {
			continue
		}
		out[base+"_speedup"+cpuTag] = fmt.Sprintf("%.2fx", b.NsPerOp/parallel)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
