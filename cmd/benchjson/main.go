// Command benchjson converts `go test -bench` text output (read on stdin)
// into a JSON document, so benchmark runs can be checked in and diffed.
// When both BenchmarkStudyRun/serial and /parallel are present it also
// records their wall-clock ratio — the pipeline's parallel speedup.
//
// Usage:
//
//	go test ./internal/core -run '^$' -bench 'StudyRun' -benchmem | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchmark is one parsed result line.
type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type document struct {
	Tool       string            `json:"tool"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPU        string            `json:"cpu,omitempty"`
	Cores      int               `json:"cores"`
	Package    string            `json:"package,omitempty"`
	Benchmarks []benchmark       `json:"benchmarks"`
	Derived    map[string]string `json:"derived,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkStudyRun/serial-8   2   1202147830 ns/op   1932900 B/op   17860 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := document{
		Tool:      "benchjson",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := benchmark{Name: trimProcSuffix(m[1])}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				b.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}

	doc.Derived = speedups(doc.Benchmarks)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcSuffix drops go test's trailing "-<GOMAXPROCS>" from a benchmark
// name, so names are stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups derives serial/parallel wall-clock ratios for every benchmark
// that has both sub-modes.
func speedups(bs []benchmark) map[string]string {
	ns := map[string]float64{}
	for _, b := range bs {
		ns[b.Name] = b.NsPerOp
	}
	out := map[string]string{}
	for name, serial := range ns {
		base, ok := strings.CutSuffix(name, "/serial")
		if !ok {
			continue
		}
		parallel, ok := ns[base+"/parallel"]
		if !ok || parallel == 0 {
			continue
		}
		out[base+"_speedup"] = fmt.Sprintf("%.2fx", serial/parallel)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
