// Command benchjson converts `go test -bench` text output (read on stdin)
// into a JSON document, so benchmark runs can be checked in and diffed.
// When both BenchmarkStudyRun/serial and /parallel are present it also
// records their wall-clock ratio — the pipeline's parallel speedup.
//
// With -compare, the fresh run is additionally diffed against the newest
// checked-in BENCH_*.json and the command exits non-zero when any
// benchmark regressed by more than the tolerance in ns/op or allocs/op —
// the allocation-regression gate `make ci` runs.
//
// Usage:
//
//	go test ./internal/core -run '^$' -bench 'StudyRun' -benchmem | benchjson -o BENCH.json
//	go test ./internal/core -run '^$' -bench 'StudyRun' -benchmem | benchjson -compare .
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"msgscope/internal/prof"
)

// benchmark is one parsed result line.
type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type document struct {
	Tool       string            `json:"tool"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPU        string            `json:"cpu,omitempty"`
	Cores      int               `json:"cores"`
	Package    string            `json:"package,omitempty"`
	Benchmarks []benchmark       `json:"benchmarks"`
	Derived    map[string]string `json:"derived,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkStudyRun/serial-8   2   1202147830 ns/op   1932900 B/op   17860 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline BENCH_*.json file, or a directory holding them (the highest-numbered one is used); exits non-zero on regression")
	tol := flag.Float64("tol", 0.20, "allowed fractional regression in ns/op and allocs/op before -compare fails")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of this conversion to file")
	memprofile := flag.String("memprofile", "", "write a heap profile of this conversion to file")
	flag.Parse()

	files, err := prof.StartFiles(prof.FileConfig{CPUProfile: *cpuprofile, MemProfile: *memprofile})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer files.Stop()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *compare != "" {
		path, err := resolveBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err := loadDocument(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regs := regressions(base.Benchmarks, doc.Benchmarks, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regressions vs %s (tolerance %.0f%%):\n", path, *tol*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			files.Stop()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s (tolerance %.0f%%)\n", path, *tol*100)
	}
}

// parseBench reads `go test -bench` output and builds the JSON document.
func parseBench(r io.Reader) (document, error) {
	doc := document{
		Tool:      "benchjson",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := benchmark{Name: trimProcSuffix(m[1])}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				b.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	doc.Derived = speedups(doc.Benchmarks)
	return doc, nil
}

// resolveBaseline maps the -compare argument to a concrete baseline file:
// a file path is used as-is; a directory is searched for BENCH_*.json and
// the highest-numbered one wins (the newest checked-in baseline).
func resolveBaseline(arg string) (string, error) {
	fi, err := os.Stat(arg)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return arg, nil
	}
	matches, err := filepath.Glob(filepath.Join(arg, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline found in %s", arg)
	}
	return best, nil
}

func loadDocument(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// regressions diffs the fresh benchmarks against the baseline and reports
// every shared benchmark whose ns/op or allocs/op grew by more than tol
// (fractional). Benchmarks present on only one side are ignored: baselines
// and fresh runs may cover different subsets.
func regressions(base, fresh []benchmark, tol float64) []string {
	byName := make(map[string]benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var out []string
	for _, f := range fresh {
		b, ok := byName[f.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+tol) {
			out = append(out, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%)",
				f.Name, b.NsPerOp, f.NsPerOp, (f.NsPerOp/b.NsPerOp-1)*100))
		}
		if b.AllocsPerOp > 0 && float64(f.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			out = append(out, fmt.Sprintf("%s: allocs/op %d -> %d (+%.1f%%)",
				f.Name, b.AllocsPerOp, f.AllocsPerOp,
				(float64(f.AllocsPerOp)/float64(b.AllocsPerOp)-1)*100))
		}
	}
	sort.Strings(out)
	return out
}

// trimProcSuffix drops go test's trailing "-<GOMAXPROCS>" from a benchmark
// name, so names are stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups derives serial/parallel wall-clock ratios for every benchmark
// that has both sub-modes.
func speedups(bs []benchmark) map[string]string {
	ns := map[string]float64{}
	for _, b := range bs {
		ns[b.Name] = b.NsPerOp
	}
	out := map[string]string{}
	for name, serial := range ns {
		base, ok := strings.CutSuffix(name, "/serial")
		if !ok {
			continue
		}
		parallel, ok := ns[base+"/parallel"]
		if !ok || parallel == 0 {
			continue
		}
		out[base+"_speedup"] = fmt.Sprintf("%.2fx", serial/parallel)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
