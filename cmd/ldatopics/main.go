// Command ldatopics fits an LDA topic model (collapsed Gibbs sampling) over
// a text corpus and prints the topics — the standalone version of the
// paper's Table 3 analysis. Input is one document per line (plain text) or
// a tweets.jsonl file written by `msgscope run -out`.
//
// Usage:
//
//	ldatopics -k 10 -iters 200 [-sampler alias] [-lang en] [-jsonl] [-platform WhatsApp] FILE
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"msgscope/internal/analysis/lda"
	"msgscope/internal/analysis/textproc"
	"msgscope/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldatopics:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 10, "number of topics")
	iters := flag.Int("iters", 200, "Gibbs iterations")
	seed := flag.Uint64("seed", 1, "sampler seed")
	topN := flag.Int("top", 10, "terms to print per topic")
	jsonl := flag.Bool("jsonl", false, "input is a tweets.jsonl dataset file")
	lang := flag.String("lang", "en", "language filter for -jsonl input (empty = all)")
	plat := flag.String("platform", "", "platform filter for -jsonl input (WhatsApp/Telegram/Discord)")
	samplerName := flag.String("sampler", "", "Gibbs kernel: dense, sparse or alias (default: package routing)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file, got %d", flag.NArg())
	}
	sampler, err := lda.ParseSampler(*samplerName)
	if err != nil {
		return err
	}

	texts, err := loadTexts(flag.Arg(0), *jsonl, *lang, *plat)
	if err != nil {
		return err
	}
	if len(texts) == 0 {
		return fmt.Errorf("no documents after filtering")
	}
	corpus := textproc.NewCorpus(textproc.NewTokenizer(), texts)
	model := lda.Fit(corpus, lda.Config{Topics: *k, Iterations: *iters, Seed: *seed, Sampler: sampler})
	fmt.Printf("%d documents, %d vocabulary, %d topics, perplexity %.1f\n",
		len(corpus.Docs), corpus.Vocab.Size(), *k, model.Perplexity())
	for _, s := range model.Summaries(*topN) {
		fmt.Println(s)
	}
	return nil
}

func loadTexts(path string, jsonl bool, lang, plat string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if jsonl {
		recs, err := store.ReadJSONL[store.TweetRecord](f)
		if err != nil {
			return nil, err
		}
		var texts []string
		for _, r := range recs {
			if lang != "" && r.Lang != lang {
				continue
			}
			if plat != "" && r.Platform.String() != plat {
				continue
			}
			texts = append(texts, r.Text)
		}
		return texts, nil
	}
	var texts []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			texts = append(texts, line)
		}
	}
	return texts, sc.Err()
}
