package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadTextsPlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.txt")
	if err := os.WriteFile(path, []byte("bitcoin trading signals\n\ncrypto wallet profit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	texts, err := loadTexts(path, false, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 2 {
		t.Fatalf("loaded %d texts, want 2 (blank lines skipped)", len(texts))
	}
}

func TestLoadTextsJSONLFiltered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tweets.jsonl")
	data := `{"id":1,"lang":"en","text":"bitcoin now","platform":1,"group_code":"a"}
{"id":2,"lang":"ja","text":"ゲーム","platform":2,"group_code":"b"}
{"id":3,"lang":"en","text":"crypto later","platform":2,"group_code":"c"}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	texts, err := loadTexts(path, true, "en", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 2 {
		t.Fatalf("lang filter: %d texts, want 2", len(texts))
	}
	texts, err = loadTexts(path, true, "en", "Discord")
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 1 || texts[0] != "crypto later" {
		t.Fatalf("platform filter wrong: %v", texts)
	}
}

func TestLoadTextsMissingFile(t *testing.T) {
	if _, err := loadTexts("/no/such/file", false, "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
