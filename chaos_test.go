package msgscope_test

import (
	"context"
	"testing"
	"time"

	"msgscope"
)

// chaosStart mirrors the simulated study's start instant (simworld's
// default, the paper's April 8 2020).
var chaosStart = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

// chaosPlans is the fault matrix: a clean run, a lightly faulty run, and a
// heavily faulty run with a scheduled platform outage spanning a daily
// sweep plus a rate-limit burst spanning the join phase.
func chaosPlans() map[string]*msgscope.FaultPlan {
	return map[string]*msgscope.FaultPlan{
		"clean": nil,
		"light": {Seed: 7, ErrorRate: 0.01},
		"heavy": {
			Seed:          7,
			ErrorRate:     0.10,
			TimeoutRate:   0.02,
			MalformedRate: 0.02,
			OutageWindows: []msgscope.FaultWindow{
				{From: chaosStart.Add(47*time.Hour + 30*time.Minute), To: chaosStart.Add(48*time.Hour + 30*time.Minute)},
			},
			FloodBursts: []msgscope.FaultWindow{
				{From: chaosStart.Add(72 * time.Hour), To: chaosStart.Add(72*time.Hour + 2*time.Minute)},
			},
		},
	}
}

// TestChaosMatrixDeterministicAndLossless runs the study under each fault
// plan twice — once with every fan-out forced serial, once with the default
// parallel fan-outs — and asserts the two contracts of the fault harness:
//
//  1. Determinism survives faults: the rendered reports are byte-identical
//     at any worker count, because fault decisions are pure functions of
//     (plan seed, phase epoch, request key, attempt), never of timing.
//  2. Nothing is silently lost: every discovered group ends the run
//     observed alive, observed revoked, or deferred with a stage reason —
//     the outcome counts sum to the discovered count with zero lost.
func TestChaosMatrixDeterministicAndLossless(t *testing.T) {
	ctx := context.Background()
	renders := []string{"table2", "table3", "fig1", "fig6", "fig8", "fig9"}
	for name, plan := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			base := msgscope.Options{Seed: 7, Scale: 0.01, Days: 4, Faults: plan}
			serialOpts := base
			serialOpts.SearchWorkers, serialOpts.CollectWorkers = 1, 1
			serial, err := msgscope.Run(ctx, serialOpts)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := msgscope.Run(ctx, base)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}

			for _, id := range renders {
				if s, p := serial.Render(id), parallel.Render(id); s != p {
					t.Errorf("%s diverges between serial and parallel runs under plan %q:\n--- serial ---\n%s\n--- parallel ---\n%s",
						id, name, s, p)
				}
			}

			so, po := serial.GroupOutcomes(), parallel.GroupOutcomes()
			if so != po {
				t.Errorf("group outcomes diverge: serial %+v, parallel %+v", so, po)
			}
			for mode, o := range map[string]msgscope.GroupOutcomes{"serial": so, "parallel": po} {
				if o.Discovered == 0 {
					t.Fatalf("%s run discovered no groups", mode)
				}
				if o.Lost != 0 {
					t.Errorf("%s run silently lost %d groups: %+v", mode, o.Lost, o)
				}
				if sum := o.Alive + o.Revoked + o.Deferred + o.Lost; sum != o.Discovered {
					t.Errorf("%s run outcome accounting broken: %d+%d+%d+%d != %d",
						mode, o.Alive, o.Revoked, o.Deferred, o.Lost, o.Discovered)
				}
			}
		})
	}
}
