package msgscope_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"msgscope"
)

// chaosStart mirrors the simulated study's start instant (simworld's
// default, the paper's April 8 2020).
var chaosStart = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

// chaosPlans is the fault matrix: a clean run, a lightly faulty run, and a
// heavily faulty run with a scheduled platform outage spanning a daily
// sweep plus a rate-limit burst spanning the join phase.
func chaosPlans() map[string]*msgscope.FaultPlan {
	return map[string]*msgscope.FaultPlan{
		"clean": nil,
		"light": {Seed: 7, ErrorRate: 0.01},
		"heavy": {
			Seed:          7,
			ErrorRate:     0.10,
			TimeoutRate:   0.02,
			MalformedRate: 0.02,
			OutageWindows: []msgscope.FaultWindow{
				{From: chaosStart.Add(47*time.Hour + 30*time.Minute), To: chaosStart.Add(48*time.Hour + 30*time.Minute)},
			},
			FloodBursts: []msgscope.FaultWindow{
				{From: chaosStart.Add(72 * time.Hour), To: chaosStart.Add(72*time.Hour + 2*time.Minute)},
			},
		},
	}
}

// TestChaosMatrixDeterministicAndLossless runs the study under each fault
// plan twice — once with every fan-out forced serial, once with the default
// parallel fan-outs — and asserts the two contracts of the fault harness:
//
//  1. Determinism survives faults: the rendered reports are byte-identical
//     at any worker count, because fault decisions are pure functions of
//     (plan seed, phase epoch, request key, attempt), never of timing.
//  2. Nothing is silently lost: every discovered group ends the run
//     observed alive, observed revoked, or deferred with a stage reason —
//     the outcome counts sum to the discovered count with zero lost.
func TestChaosMatrixDeterministicAndLossless(t *testing.T) {
	ctx := context.Background()
	renders := []string{"table2", "table3", "fig1", "fig6", "fig8", "fig9"}
	for name, plan := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			base := msgscope.Options{Seed: 7, Scale: 0.01, Days: 4, Faults: plan}
			serialOpts := base
			serialOpts.SearchWorkers, serialOpts.CollectWorkers = 1, 1
			serial, err := msgscope.Run(ctx, serialOpts)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := msgscope.Run(ctx, base)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}

			for _, id := range renders {
				if s, p := serial.Render(id), parallel.Render(id); s != p {
					t.Errorf("%s diverges between serial and parallel runs under plan %q:\n--- serial ---\n%s\n--- parallel ---\n%s",
						id, name, s, p)
				}
			}

			so, po := serial.GroupOutcomes(), parallel.GroupOutcomes()
			if so != po {
				t.Errorf("group outcomes diverge: serial %+v, parallel %+v", so, po)
			}
			for mode, o := range map[string]msgscope.GroupOutcomes{"serial": so, "parallel": po} {
				if o.Discovered == 0 {
					t.Fatalf("%s run discovered no groups", mode)
				}
				if o.Lost != 0 {
					t.Errorf("%s run silently lost %d groups: %+v", mode, o.Lost, o)
				}
				if sum := o.Alive + o.Revoked + o.Deferred + o.Lost; sum != o.Discovered {
					t.Errorf("%s run outcome accounting broken: %d+%d+%d+%d != %d",
						mode, o.Alive, o.Revoked, o.Deferred, o.Lost, o.Discovered)
				}
			}
		})
	}
}

// TestChaosKillResumeByteIdentity crosses the fault matrix with the
// crash-kill matrix: runs under the light and heavy plans are killed at
// boundaries inside the trouble — the daily sweep that falls inside the
// heavy plan's outage window (hour 47:30–48:30), the search hour in the
// middle of it, the day boundary before the join phase, and the join
// boundary right after the flood burst — then resumed and required to be
// byte-identical to the uninterrupted run.
//
// Beyond the output bytes, the test asserts the restored *mechanism*
// state: the fault injector's epoch (which decides every future fault
// draw) and the per-host circuit-breaker open/close counters must end at
// the uninterrupted run's exact values. The runs are serial (workers=1)
// so breaker transitions are deterministic and exact equality is fair.
func TestChaosKillResumeByteIdentity(t *testing.T) {
	ctx := context.Background()
	kills := []killPoint{{1, "search-24"}, {1, "monitor"}, {2, "drain"}, {2, "join"}}
	for _, name := range []string{"light", "heavy"} {
		plan := chaosPlans()[name]
		t.Run(name, func(t *testing.T) {
			opts := msgscope.Options{
				Seed: 7, Scale: 0.01, Days: 4, Faults: plan,
				SearchWorkers: 1, CollectWorkers: 1,
			}
			baseline, err := msgscope.Run(ctx, opts)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			base := collectArtifacts(t, baseline)
			baseOutcomes := baseline.GroupOutcomes()
			baseEpoch := msgscope.FaultEpoch(baseline)
			baseBreakers := msgscope.BreakerStats(baseline)
			if baseEpoch == 0 {
				t.Fatal("fault plan never advanced the injector epoch")
			}

			for _, kp := range kills {
				t.Run(kp.String(), func(t *testing.T) {
					dir := t.TempDir()
					kopts := opts
					kopts.CheckpointDir = dir
					if _, err := msgscope.RunWithHook(ctx, kopts, killAt(kp)); !errors.Is(err, msgscope.ErrHalted) {
						t.Fatalf("killed run at %s: err = %v, want ErrHalted", kp, err)
					}
					res, err := msgscope.Resume(ctx, dir)
					if err != nil {
						t.Fatalf("resuming from kill at %s: %v", kp, err)
					}
					compareArtifacts(t, "resumed-vs-uninterrupted", base, collectArtifacts(t, res))
					if got := res.GroupOutcomes(); got != baseOutcomes {
						t.Errorf("group outcomes diverge after resume: %+v, want %+v", got, baseOutcomes)
					}
					if got := msgscope.FaultEpoch(res); got != baseEpoch {
						t.Errorf("fault epoch after resume = %d, want %d", got, baseEpoch)
					}
					if got := msgscope.BreakerStats(res); !reflect.DeepEqual(got, baseBreakers) {
						t.Errorf("breaker counters after resume = %v, want %v", got, baseBreakers)
					}
				})
			}
		})
	}
}
