package twitter

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"msgscope/internal/retry"
)

// TestSearchPermanent500ExhaustsBudget is the regression test for the bug
// the retry layer replaced: a search endpoint that fails on every attempt
// must burn exactly the configured attempt budget and surface a retryable
// exhaustion error — not retry forever and not give up after one try.
func TestSearchPermanent500ExhaustsBudget(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "upstream exploded", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	_, err := c.Search(context.Background(), "t.me", 0, 3)
	if err == nil {
		t.Fatal("permanent 500 produced no error")
	}
	if !errors.Is(err, retry.ErrExhausted) {
		t.Fatalf("error does not wrap retry.ErrExhausted: %v", err)
	}
	if got, want := hits.Load(), int64(c.Retry.MaxAttempts); got != want {
		t.Fatalf("server saw %d requests, want exactly the attempt budget %d", got, want)
	}
	if st := c.Retry.Stats(); st.Exhausted != 1 || st.Retries != int64(c.Retry.MaxAttempts-1) {
		t.Fatalf("unexpected retry stats: %+v", st)
	}
}

// TestSearchRecoversFromTransient500s verifies the flip side: failures
// below the budget are absorbed and the caller sees clean data.
func TestSearchRecoversFromTransient500s(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"statuses":[]}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	if _, err := c.Search(context.Background(), "t.me", 0, 1); err != nil {
		t.Fatalf("two transient 500s should be absorbed: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two failures + one success)", got)
	}
}
