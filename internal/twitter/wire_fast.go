package twitter

import (
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/simworld"
)

// This file is the allocation-light twin of wire.go: an append-style
// encoder and a cursor decoder for the v1.1 status shape. Both are
// differential-tested against the encoding/json versions in wire.go
// (which remain the executable specification of the wire format) — the
// service may answer with either and the client accepts either.

var (
	wireDays   = [...]string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	wireMonths = [...]string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
)

func appendPad2(dst []byte, v int) []byte {
	return append(dst, byte('0'+v/10), byte('0'+v%10))
}

// appendCreatedAt appends t in createdAtFormat, matching time.Format
// byte for byte.
func appendCreatedAt(dst []byte, t time.Time) []byte {
	year, month, day := t.Date()
	hh, mm, ss := t.Clock()
	dst = append(dst, wireDays[t.Weekday()]...)
	dst = append(dst, ' ')
	dst = append(dst, wireMonths[month-1]...)
	dst = append(dst, ' ')
	dst = appendPad2(dst, day)
	dst = append(dst, ' ')
	dst = appendPad2(dst, hh)
	dst = append(dst, ':')
	dst = appendPad2(dst, mm)
	dst = append(dst, ':')
	dst = appendPad2(dst, ss)
	dst = append(dst, ' ')
	_, off := t.Zone()
	sign := byte('+')
	if off < 0 {
		sign = '-'
		off = -off
	}
	dst = append(dst, sign)
	dst = appendPad2(dst, off/3600)
	dst = appendPad2(dst, (off%3600)/60)
	dst = append(dst, ' ')
	dst = appendPad2(dst, year/100)
	return appendPad2(dst, year%100)
}

// parseCreatedAt decodes createdAtFormat at fixed offsets, falling back
// to time.Parse for anything that doesn't look machine-generated. The
// result is already UTC-normalized (as decodeStatus does).
func parseCreatedAt(b []byte) (time.Time, error) {
	// "Mon Jan 02 15:04:05 -0700 2006" — 30 bytes, fixed layout.
	if len(b) != 30 || b[3] != ' ' || b[7] != ' ' || b[10] != ' ' ||
		b[13] != ':' || b[16] != ':' || b[19] != ' ' || b[25] != ' ' {
		return parseCreatedAtSlow(b)
	}
	month := -1
	for i, m := range wireMonths {
		if string(b[4:7]) == m {
			month = i + 1
			break
		}
	}
	num := func(lo, hi int) (int, bool) {
		v := 0
		for _, c := range b[lo:hi] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		return v, true
	}
	day, ok1 := num(8, 10)
	hh, ok2 := num(11, 13)
	mm, ok3 := num(14, 16)
	ss, ok4 := num(17, 19)
	zh, ok5 := num(21, 23)
	zm, ok6 := num(23, 25)
	year, ok7 := num(26, 30)
	sign := b[20]
	if month < 0 || !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) ||
		(sign != '+' && sign != '-') {
		return parseCreatedAtSlow(b)
	}
	off := zh*3600 + zm*60
	if sign == '-' {
		off = -off
	}
	t := time.Date(year, time.Month(month), day, hh, mm, ss, 0, time.UTC)
	if off != 0 {
		t = t.Add(-time.Duration(off) * time.Second)
	}
	return t, nil
}

func parseCreatedAtSlow(b []byte) (time.Time, error) {
	t, err := time.Parse(createdAtFormat, string(b))
	if err != nil {
		return time.Time{}, err
	}
	return t.UTC(), nil
}

// appendTweet appends the v1.1 JSON encoding of tw, byte-identical to
// json.Marshal(encodeTweet(tw)).
func appendTweet(dst []byte, tw *simworld.Tweet) []byte {
	dst = append(dst, `{"id":`...)
	dst = jsonx.AppendUint(dst, tw.ID)
	dst = append(dst, `,"id_str":"`...)
	dst = jsonx.AppendUint(dst, tw.ID)
	dst = append(dst, `","created_at":"`...)
	dst = appendCreatedAt(dst, tw.CreatedAt)
	dst = append(dst, `","text":`...)
	dst = jsonx.AppendString(dst, tw.Text)
	dst = append(dst, `,"lang":`...)
	dst = jsonx.AppendString(dst, tw.Lang)
	dst = append(dst, `,"user":{"id_str":`...)
	dst = jsonx.AppendString(dst, tw.AuthorID)
	dst = append(dst, `,"screen_name":`...)
	dst = jsonx.AppendString(dst, tw.AuthorID)
	dst = append(dst, `},"entities":`...)
	dst = appendEntities(dst, tw.Text)
	if tw.Retweet {
		dst = append(dst, `,"retweeted_status":{"id_str":"`...)
		dst = jsonx.AppendUint(dst, tw.ID)
		dst = append(dst, `"}`...)
	}
	return append(dst, '}')
}

// appendEntities scans text for #hashtag and @mention tokens exactly
// like encodeTweet's strings.Fields loop, but without materializing the
// fields slice. Nil slices marshal as null under encoding/json, so
// empty entity lists are rendered as null here too.
func appendEntities(dst []byte, text string) []byte {
	var hashtags, mentions int
	forEachField(text, func(tok string) {
		if len(tok) > 1 {
			switch tok[0] {
			case '#':
				hashtags++
			case '@':
				mentions++
			}
		}
	})
	dst = append(dst, `{"hashtags":`...)
	if hashtags == 0 {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		first := true
		forEachField(text, func(tok string) {
			if len(tok) > 1 && tok[0] == '#' {
				if !first {
					dst = append(dst, ',')
				}
				first = false
				dst = append(dst, `{"text":`...)
				dst = jsonx.AppendString(dst, tok[1:])
				dst = append(dst, '}')
			}
		})
		dst = append(dst, ']')
	}
	dst = append(dst, `,"user_mentions":`...)
	if mentions == 0 {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		first := true
		forEachField(text, func(tok string) {
			if len(tok) > 1 && tok[0] == '@' {
				if !first {
					dst = append(dst, ',')
				}
				first = false
				name := tok[1:]
				if len(name) > 0 && name[len(name)-1] == ':' {
					name = name[:len(name)-1]
				}
				dst = append(dst, `{"screen_name":`...)
				dst = jsonx.AppendString(dst, name)
				dst = append(dst, '}')
			}
		})
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// forEachField calls fn for each whitespace-separated token of s, with
// strings.Fields splitting semantics (unicode.IsSpace separators; the
// tweet texts are ASCII so the ASCII space set suffices and is checked
// by the differential tests).
func forEachField(s string, fn func(tok string)) {
	i := 0
	for i < len(s) {
		for i < len(s) && asciiSpace(s[i]) {
			i++
		}
		start := i
		for i < len(s) && !asciiSpace(s[i]) {
			i++
		}
		if i > start {
			fn(s[start:i])
		}
	}
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// parseStatus decodes one v1.1 status object from the decoder cursor
// straight into a Status: entity arrays become counts, lang and user ID
// are interned, and only the text is copied. Semantics mirror
// decodeStatus (including the RT mention decrement).
func parseStatus(d *jsonx.Dec, in *ids.Interner) (Status, error) {
	var st Status
	var mentions int
	var retweeted bool
	err := d.Obj(func(key []byte) error {
		switch string(key) {
		case "id":
			v, err := d.Uint()
			st.ID = v
			return err
		case "created_at":
			b, err := d.StrBytes()
			if err != nil {
				return err
			}
			st.CreatedAt, err = parseCreatedAt(b)
			return err
		case "text":
			s, err := d.Str()
			st.Text = s
			return err
		case "lang":
			b, err := d.StrBytes()
			if err != nil {
				return err
			}
			st.Lang = in.InternBytes(b)
			return nil
		case "user":
			return d.Obj(func(k2 []byte) error {
				if string(k2) == "id_str" {
					b, err := d.StrBytes()
					if err != nil {
						return err
					}
					st.UserID = in.InternBytes(b)
					return nil
				}
				return d.Skip()
			})
		case "entities":
			return d.Obj(func(k2 []byte) error {
				switch string(k2) {
				case "hashtags":
					if d.Null() {
						return nil
					}
					return d.Arr(func() error {
						st.Hashtags++
						return d.Skip()
					})
				case "user_mentions":
					if d.Null() {
						return nil
					}
					return d.Arr(func() error {
						mentions++
						return d.Skip()
					})
				}
				return d.Skip()
			})
		case "retweeted_status":
			if d.Null() {
				return nil
			}
			retweeted = true
			return d.Skip()
		}
		return d.Skip()
	})
	if err != nil {
		return Status{}, err
	}
	if retweeted && mentions > 0 {
		mentions--
	}
	st.Mentions = mentions
	st.IsRetweet = retweeted
	return st, nil
}

// parseSearchStatuses decodes a search response body, appending decoded
// statuses to dst and returning the next_results cursor (empty when the
// last page was reached).
func parseSearchStatuses(body []byte, dst []Status, in *ids.Interner) ([]Status, string, error) {
	var d jsonx.Dec
	d.Reset(body)
	var next string
	err := d.Obj(func(key []byte) error {
		switch string(key) {
		case "statuses":
			return d.Arr(func() error {
				st, err := parseStatus(&d, in)
				if err != nil {
					return err
				}
				dst = append(dst, st)
				return nil
			})
		case "search_metadata":
			return d.Obj(func(k2 []byte) error {
				if string(k2) == "next_results" {
					s, err := d.Str()
					next = s
					return err
				}
				return d.Skip()
			})
		}
		return d.Skip()
	})
	if err != nil {
		return dst, "", err
	}
	if err := d.End(); err != nil {
		return dst, "", err
	}
	return dst, next, nil
}
