package twitter

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/simworld"
)

// worldTweets gathers a representative corpus straight from a generated
// world: every tweet the service could ever serve flows from here, so
// holding the fast encoder equal to encoding/json over this corpus (plus
// the synthetic edge cases) holds the wire format fixed.
func worldTweets(t *testing.T) []*simworld.Tweet {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(7, 0.02))
	var all []*simworld.Tweet
	for _, day := range w.TweetsByDay {
		all = append(all, day...)
	}
	for _, day := range w.ControlByDay {
		all = append(all, day...)
	}
	if len(all) < 100 {
		t.Fatalf("world too small: %d tweets", len(all))
	}
	return all
}

func syntheticTweets() []*simworld.Tweet {
	at := time.Date(2019, 4, 1, 13, 37, 42, 0, time.UTC)
	return []*simworld.Tweet{
		{ID: 1, CreatedAt: at, Text: "", Lang: "en", AuthorID: "u1"},
		{ID: 18446744073709551615, CreatedAt: at, Text: "#only #tags", Lang: "es", AuthorID: "u2"},
		{ID: 3, CreatedAt: at, Text: "@m1: @m2 mixed #t http://a.b/c?d=e&f=<g>", Lang: "pt", AuthorID: "u3", Retweet: true},
		{ID: 4, CreatedAt: at.In(time.FixedZone("X", -3*3600-1800)), Text: "RT @x: body", Lang: "en", AuthorID: "u4", Retweet: true},
		{ID: 5, CreatedAt: at, Text: "  leading  and   trailing  ", Lang: "en", AuthorID: "u5"},
		{ID: 6, CreatedAt: at, Text: "# @ bare sigils", Lang: "en", AuthorID: "u6"},
		{ID: 7, CreatedAt: at, Text: "quote \" and \\ backslash\ttab", Lang: "en", AuthorID: "u7"},
	}
}

// TestAppendTweetMatchesEncodingJSON holds the fast encoder
// byte-identical to json.Marshal over the wire.go structs.
func TestAppendTweetMatchesEncodingJSON(t *testing.T) {
	tweets := append(worldTweets(t), syntheticTweets()...)
	var buf []byte
	for _, tw := range tweets {
		want, err := json.Marshal(encodeTweet(tw))
		if err != nil {
			t.Fatal(err)
		}
		buf = appendTweet(buf[:0], tw)
		if !bytes.Equal(buf, want) {
			t.Fatalf("tweet %d:\n got %s\nwant %s", tw.ID, buf, want)
		}
	}
}

// TestParseStatusMatchesDecodeStatus holds the fast parser equal to the
// encoding/json + decodeStatus pipeline over the same corpus.
func TestParseStatusMatchesDecodeStatus(t *testing.T) {
	tweets := append(worldTweets(t), syntheticTweets()...)
	in := ids.NewInterner()
	var d jsonx.Dec
	for _, tw := range tweets {
		raw, err := json.Marshal(encodeTweet(tw))
		if err != nil {
			t.Fatal(err)
		}
		var j tweetJSON
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		want, err := decodeStatus(j)
		if err != nil {
			t.Fatal(err)
		}
		d.Reset(raw)
		got, err := parseStatus(&d, in)
		if err != nil {
			t.Fatalf("parseStatus(%s): %v", raw, err)
		}
		if err := d.End(); err != nil {
			t.Fatalf("trailing data after %s: %v", raw, err)
		}
		if got != want {
			t.Fatalf("tweet %d:\n got %+v\nwant %+v", tw.ID, got, want)
		}
	}
}

func TestParseCreatedAtRoundTrip(t *testing.T) {
	times := []time.Time{
		time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2019, 6, 15, 12, 30, 45, 0, time.FixedZone("E", 5*3600+1800)),
		time.Date(2019, 6, 15, 12, 30, 45, 0, time.FixedZone("W", -7*3600)),
	}
	for _, at := range times {
		wire := appendCreatedAt(nil, at)
		if want := at.Format(createdAtFormat); string(wire) != want {
			t.Fatalf("appendCreatedAt = %q, want %q", wire, want)
		}
		got, err := parseCreatedAt(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(at) {
			t.Fatalf("parseCreatedAt(%s) = %v, want %v", wire, got, at)
		}
		if got.Location() != time.UTC {
			t.Fatalf("parseCreatedAt(%s) not UTC-normalized", wire)
		}
	}
	if _, err := parseCreatedAt([]byte("not a timestamp, wrong")); err == nil {
		t.Fatal("garbage timestamp accepted")
	}
}

// TestParseSearchStatusesMalformed: truncated bodies (the fault
// injector's signature) must error, not hang or succeed.
func TestParseSearchStatusesMalformed(t *testing.T) {
	in := ids.NewInterner()
	for _, body := range []string{
		`{"truncated`,
		`{"statuses":[{"id":1`,
		`{"statuses":[]}, trailing`,
		``,
	} {
		if _, _, err := parseSearchStatuses([]byte(body), nil, in); err == nil {
			t.Errorf("body %q parsed without error", body)
		}
	}
}

func TestParseSearchStatusesNextResults(t *testing.T) {
	in := ids.NewInterner()
	body := []byte(`{"statuses":[],"search_metadata":{"next_results":"?max_id=9&q=x","max_id_str":"9"}}` + "\n")
	sts, next, err := parseSearchStatuses(body, nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 0 || next != "?max_id=9&q=x" {
		t.Fatalf("got %d statuses, next %q", len(sts), next)
	}
}
