package twitter

import (
	"testing"
	"time"

	"msgscope/internal/simworld"
)

func mkTweet(text string, hashtags, mentions int, rt bool) *simworld.Tweet {
	return &simworld.Tweet{
		ID:        123456789,
		AuthorID:  "user-1",
		CreatedAt: time.Date(2020, 4, 9, 15, 4, 5, 0, time.UTC),
		Text:      text,
		Lang:      "en",
		Hashtags:  hashtags,
		Mentions:  mentions,
		Retweet:   rt,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tw := mkTweet("@alice @bob join https://t.me/x #crypto #btc", 2, 2, false)
	st, err := decodeStatus(encodeTweet(tw))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != tw.ID || st.Text != tw.Text || st.Lang != tw.Lang || st.UserID != tw.AuthorID {
		t.Fatalf("round trip lost fields: %+v", st)
	}
	if !st.CreatedAt.Equal(tw.CreatedAt) {
		t.Fatalf("timestamp %v != %v", st.CreatedAt, tw.CreatedAt)
	}
	if st.Hashtags != 2 || st.Mentions != 2 || st.IsRetweet {
		t.Fatalf("entities wrong: %+v", st)
	}
}

func TestEncodeRetweetMentionAccounting(t *testing.T) {
	// "RT @handle:" contributes a wire mention entity that must not count
	// as a deliberate mention after decoding.
	tw := mkTweet("RT @someone: great group https://discord.gg/x", 0, 0, true)
	st, err := decodeStatus(encodeTweet(tw))
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsRetweet {
		t.Fatal("retweet flag lost")
	}
	if st.Mentions != 0 {
		t.Fatalf("RT prefix counted as %d mentions", st.Mentions)
	}
}

func TestEncodeEntitiesFromText(t *testing.T) {
	tw := mkTweet("#a no mentions here", 1, 0, false)
	j := encodeTweet(tw)
	if len(j.Entities.Hashtags) != 1 || j.Entities.Hashtags[0].Text != "a" {
		t.Fatalf("hashtag entities wrong: %+v", j.Entities.Hashtags)
	}
	if len(j.Entities.UserMentions) != 0 {
		t.Fatalf("spurious mentions: %+v", j.Entities.UserMentions)
	}
}

func TestDecodeBadTimestamp(t *testing.T) {
	j := encodeTweet(mkTweet("x", 0, 0, false))
	j.CreatedAt = "not a time"
	if _, err := decodeStatus(j); err == nil {
		t.Fatal("bad created_at accepted")
	}
}
