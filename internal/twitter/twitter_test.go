package twitter

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/urlpat"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	svc   *Service
	srv   *httptest.Server
	cli   *Client
}

func newFixture(t *testing.T, cfg ServiceConfig) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(8, 0.002))
	clock := simclock.New(w.Cfg.Start)
	svc := NewService(w, clock, cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &fixture{world: w, clock: clock, svc: svc, srv: srv, cli: NewClient(srv.URL)}
}

func perfect() ServiceConfig {
	cfg := DefaultServiceConfig()
	cfg.SearchMissP = 0
	cfg.StreamDropP = 0
	return cfg
}

func (f *fixture) publishDays(days int) int {
	return f.advanceAndPublish(time.Duration(days) * 24 * time.Hour)
}

func (f *fixture) advanceAndPublish(d time.Duration) int {
	f.clock.Advance(d)
	return f.svc.PublishUpTo(f.clock.Now())
}

func TestPublishUpToIsIncremental(t *testing.T) {
	f := newFixture(t, perfect())
	n1 := f.publishDays(2)
	n2 := f.advanceAndPublish(0) // no time passed, nothing new
	if n2 != 0 {
		t.Fatalf("republished %d tweets", n2)
	}
	n3 := f.publishDays(1)
	if n1 == 0 || n3 == 0 {
		t.Fatalf("no tweets published: %d %d", n1, n3)
	}
	want := 0
	for d := 0; d < 3; d++ {
		want += len(f.world.TweetsByDay[d])
	}
	pub, _ := f.svc.PublishedCounts()
	if pub != want {
		t.Fatalf("published %d, want %d", pub, want)
	}
}

func TestSearchFindsPatternTweets(t *testing.T) {
	f := newFixture(t, perfect())
	f.publishDays(1)
	got, err := f.cli.Search(context.Background(), "discord.gg", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("search returned nothing")
	}
	for _, st := range got {
		if !urlpat.Matches(st.Text) {
			t.Fatalf("status %q does not match any pattern", st.Text)
		}
	}
	// Newest first.
	for i := 1; i < len(got); i++ {
		if got[i].ID > got[i-1].ID {
			t.Fatal("search results not newest-first")
		}
	}
}

func TestSearchPaginationComplete(t *testing.T) {
	f := newFixture(t, perfect())
	f.publishDays(3)
	got, err := f.cli.Search(context.Background(), "t.me", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for d := 0; d < 3; d++ {
		for _, tw := range f.world.TweetsByDay[d] {
			if urlpatContains(tw.Text, "t.me") {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("search returned %d, want %d", len(got), want)
	}
	seen := map[uint64]bool{}
	for _, st := range got {
		if seen[st.ID] {
			t.Fatalf("duplicate status %d across pages", st.ID)
		}
		seen[st.ID] = true
	}
}

func urlpatContains(text, host string) bool {
	for _, u := range urlpat.Extract(text) {
		_ = u
	}
	return len(text) > 0 && containsStr(text, host+"/")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSearchSinceID(t *testing.T) {
	f := newFixture(t, perfect())
	f.publishDays(1)
	first, err := f.cli.Search(context.Background(), "chat.whatsapp.com", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Skip("no WhatsApp tweets on day 0")
	}
	maxID := first[0].ID
	f.publishDays(1)
	second, err := f.cli.Search(context.Background(), "chat.whatsapp.com", maxID, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range second {
		if st.ID <= maxID {
			t.Fatalf("since_id violated: %d <= %d", st.ID, maxID)
		}
	}
}

func TestSearchSevenDayWindow(t *testing.T) {
	f := newFixture(t, perfect())
	f.publishDays(10)
	got, err := f.cli.Search(context.Background(), "t.me", 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	horizon := f.clock.Now().Add(-7 * 24 * time.Hour)
	for _, st := range got {
		if st.CreatedAt.Before(horizon) {
			t.Fatalf("status from %v outside the 7-day window", st.CreatedAt)
		}
	}
}

func TestSearchMissesAreDeterministic(t *testing.T) {
	cfg := perfect()
	cfg.SearchMissP = 0.2
	f := newFixture(t, cfg)
	f.publishDays(2)
	a, err := f.cli.Search(context.Background(), "discord.gg", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.cli.Search(context.Background(), "discord.gg", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("index misses vary between queries: %d vs %d", len(a), len(b))
	}
	published, _ := f.svc.PublishedCounts()
	if len(a) >= published {
		t.Fatal("no misses despite SearchMissP")
	}
}

func TestSearchRateLimit(t *testing.T) {
	cfg := perfect()
	cfg.SearchRateLimit = 3
	cfg.SearchRateWindow = 15 * time.Minute
	f := newFixture(t, cfg)
	f.publishDays(1)
	ctx := context.Background()
	var rl error
	for i := 0; i < 6; i++ {
		if _, err := f.cli.Search(ctx, "t.me", 0, 1); err != nil {
			rl = err
			break
		}
	}
	if !errors.Is(rl, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", rl)
	}
	f.clock.Advance(20 * time.Minute)
	if _, err := f.cli.Search(ctx, "t.me", 0, 1); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestFilterStreamDeliversMatching(t *testing.T) {
	f := newFixture(t, perfect())
	ctx := context.Background()
	st, err := f.cli.OpenFilterStream(ctx, []string{"discord.gg", "discord.com"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f.publishDays(1)
	waitFor(t, func() bool { return st.Received() >= f.svc.QueuedFor(st.SubID()) && st.Received() > 0 })
	got := st.Drain()
	for _, s := range got {
		if !containsStr(s.Text, "discord.") {
			t.Fatalf("stream delivered non-matching status %q", s.Text)
		}
	}
	want := 0
	for _, tw := range f.world.TweetsByDay[0] {
		if containsStr(tw.Text, "discord.") {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("stream delivered %d, want %d", len(got), want)
	}
}

func TestSampleStreamDeliversControl(t *testing.T) {
	f := newFixture(t, perfect())
	ctx := context.Background()
	st, err := f.cli.OpenSampleStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f.publishDays(1)
	waitFor(t, func() bool { return st.Received() >= len(f.world.ControlByDay[0]) })
	got := st.Drain()
	if len(got) != len(f.world.ControlByDay[0]) {
		t.Fatalf("sample stream delivered %d, want %d", len(got), len(f.world.ControlByDay[0]))
	}
}

func TestStreamDropsAreCounted(t *testing.T) {
	cfg := perfect()
	cfg.StreamDropP = 0.3
	f := newFixture(t, cfg)
	ctx := context.Background()
	st, err := f.cli.OpenFilterStream(ctx, []string{"t.me"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f.publishDays(2)
	waitFor(t, func() bool { return st.Received() >= f.svc.QueuedFor(st.SubID()) })
	if f.svc.DroppedFor(st.SubID()) == 0 {
		t.Fatal("no drops recorded despite StreamDropP")
	}
}

func TestStreamCloseIdempotent(t *testing.T) {
	f := newFixture(t, perfect())
	st, err := f.cli.OpenSampleStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close()
}

func TestEntityCountsMatchGenerator(t *testing.T) {
	f := newFixture(t, perfect())
	f.publishDays(1)
	got, err := f.cli.Search(context.Background(), "t.me", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]*simworld.Tweet{}
	for _, tw := range f.world.TweetsByDay[0] {
		byID[tw.ID] = tw
	}
	checked := 0
	for _, st := range got {
		tw := byID[st.ID]
		if tw == nil {
			continue
		}
		if st.Hashtags != tw.Hashtags {
			t.Fatalf("tweet %d: %d hashtags on wire, world has %d (%q)",
				st.ID, st.Hashtags, tw.Hashtags, tw.Text)
		}
		if st.Mentions != tw.Mentions {
			t.Fatalf("tweet %d: %d mentions on wire, world has %d (%q)",
				st.ID, st.Mentions, tw.Mentions, tw.Text)
		}
		if st.IsRetweet != tw.Retweet {
			t.Fatalf("tweet %d: retweet flag mismatch", st.ID)
		}
		if st.Lang != tw.Lang {
			t.Fatalf("tweet %d: lang %q vs %q", st.ID, st.Lang, tw.Lang)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no statuses cross-checked")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSearchRetriesTransientErrors(t *testing.T) {
	cfg := perfect()
	cfg.TransientErrorP = 0.3
	f := newFixture(t, cfg)
	f.publishDays(1)
	// With 30% failure and 4 attempts per page, multi-page searches should
	// still succeed nearly always.
	for i := 0; i < 5; i++ {
		if _, err := f.cli.Search(context.Background(), "t.me", 0, 20); err != nil {
			t.Fatalf("search attempt %d failed despite retries: %v", i, err)
		}
	}
}
