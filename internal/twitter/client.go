package twitter

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"msgscope/internal/faults"
	"msgscope/internal/httpx"
	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/retry"
)

// ErrRateLimited is returned by Search when the API budget is exhausted;
// the caller keeps the statuses gathered so far and retries on its next
// scheduled poll (the search window provides seven days of slack).
var ErrRateLimited = errors.New("twitter: rate limited")

// Client talks to the simulated Twitter API over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry is the shared retry policy for search page fetches. Streams
	// bypass it: a broken stream is surfaced to the driver, not retried.
	Retry *retry.Policy
	// interner deduplicates the bounded vocabularies every status
	// carries (language tags, author IDs) across this client's lifetime.
	interner *ids.Interner
}

// NewClient returns a Client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		HTTP:     httpx.NewClient(),
		Retry:    retry.New(0),
		interner: ids.NewInterner(),
	}
}

// Search runs one query against the Search API, following next_results
// pagination up to maxPages. It returns the statuses newest-first. A
// rate-limit mid-pagination returns the pages already fetched together with
// ErrRateLimited.
func (c *Client) Search(ctx context.Context, query string, sinceID uint64, maxPages int) ([]Status, error) {
	var out []Status
	params := url.Values{}
	params.Set("q", query)
	params.Set("count", "100")
	if sinceID > 0 {
		params.Set("since_id", strconv.FormatUint(sinceID, 10))
	}
	next := "/1.1/search/tweets.json?" + params.Encode()
	for page := 0; page < maxPages && next != ""; page++ {
		grown, nextResults, err := c.searchPage(ctx, next, out)
		out = grown
		if err != nil {
			return out, err
		}
		if nextResults == "" {
			break
		}
		np, err := url.ParseQuery(strings.TrimPrefix(nextResults, "?"))
		if err != nil {
			return out, fmt.Errorf("twitter: bad next_results: %w", err)
		}
		np.Set("count", "100")
		if sinceID > 0 {
			// next_results preserves only q and max_id; keep the since_id
			// floor or later pages walk the whole 7-day window again.
			np.Set("since_id", strconv.FormatUint(sinceID, 10))
		}
		next = "/1.1/search/tweets.json?" + np.Encode()
	}
	return out, nil
}

// searchPage fetches and decodes one search page through the shared retry
// policy: transport errors, 5xx ("over capacity"), and undecodable bodies
// are transient; 429 maps to ErrRateLimited so the caller keeps the pages
// gathered so far and resumes on its next scheduled poll. Decoded
// statuses are appended to dst; the grown slice is returned with the
// next_results cursor.
func (c *Client) searchPage(ctx context.Context, path string, dst []Status) ([]Status, string, error) {
	var nextResults string
	err := c.Retry.Do("GET "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			bp := jsonx.GetBuf()
			body, err := jsonx.ReadInto(bp, resp.Body)
			resp.Body.Close()
			if err != nil {
				jsonx.PutBuf(bp)
				return retry.Retry(fmt.Errorf("twitter: reading search response: %w", err))
			}
			// Parse appends into dst's backing past len(dst); a failed
			// attempt leaves dst itself untouched, so the retry starts
			// clean from the same length.
			grown, next, perr := parseSearchStatuses(body, dst, c.interner)
			jsonx.PutBuf(bp)
			if perr != nil {
				return retry.Retry(fmt.Errorf("twitter: decoding search response: %w", perr))
			}
			dst, nextResults = grown, next
			return retry.Ok()
		case resp.StatusCode == http.StatusTooManyRequests:
			httpx.Drain(resp)
			return retry.Fail(ErrRateLimited)
		case resp.StatusCode >= 500:
			httpx.Drain(resp)
			return retry.Retry(fmt.Errorf("twitter: search status %d", resp.StatusCode))
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return retry.Fail(fmt.Errorf("twitter: search status %d: %s", resp.StatusCode, body))
		}
	})
	return dst, nextResults, err
}

// Stream is a live connection to a streaming endpoint. Statuses are
// buffered internally; the consumer drains them with Drain.
type Stream struct {
	cancel context.CancelFunc

	mu     sync.Mutex
	buf    []Status
	err    error
	closed bool

	interner *ids.Interner

	received atomic.Int64
	subID    atomic.Int64
	started  chan struct{}
	done     chan struct{}
	// progress holds one pending "new status consumed" signal. The buffer
	// of one lets the consumer post without blocking while guaranteeing a
	// waiter that checks counters and then selects never misses a wakeup.
	progress chan struct{}
}

// OpenFilterStream connects to /1.1/statuses/filter.json with the given
// track terms and starts consuming in the background.
func (c *Client) OpenFilterStream(ctx context.Context, track []string) (*Stream, error) {
	params := url.Values{}
	params.Set("track", strings.Join(track, ","))
	return c.openStream(ctx, "/1.1/statuses/filter.json?"+params.Encode())
}

// OpenSampleStream connects to the 1% sample stream.
func (c *Client) OpenSampleStream(ctx context.Context) (*Stream, error) {
	return c.openStream(ctx, "/1.1/statuses/sample.json")
}

func (c *Client) openStream(ctx context.Context, path string) (*Stream, error) {
	ctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		cancel:   cancel,
		interner: c.interner,
		started:  make(chan struct{}),
		done:     make(chan struct{}),
		progress: make(chan struct{}, 1),
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("twitter: stream status %d: %s", resp.StatusCode, body)
	}
	if id, err := strconv.Atoi(resp.Header.Get("X-Sim-Subscription")); err == nil {
		st.subID.Store(int64(id))
	}
	close(st.started)
	go st.consume(resp.Body)
	return st, nil
}

func (st *Stream) consume(body io.ReadCloser) {
	defer close(st.done)
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var d jsonx.Dec
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // keep-alive
		}
		d.Reset(line)
		s, err := parseStatus(&d, st.interner)
		if err == nil {
			err = d.End()
		}
		if err != nil {
			st.setErr(fmt.Errorf("twitter: bad stream line: %w", err))
			return
		}
		st.mu.Lock()
		st.buf = append(st.buf, s)
		st.mu.Unlock()
		st.received.Add(1)
		select {
		case st.progress <- struct{}{}:
		default: // a signal is already pending; the waiter will recheck
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
		st.setErr(err)
	}
}

func (st *Stream) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// Drain returns and clears the buffered statuses.
func (st *Stream) Drain() []Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.buf
	st.buf = nil
	return out
}

// Received reports how many statuses this stream has consumed in total.
func (st *Stream) Received() int { return int(st.received.Load()) }

// Progress signals each consumed status (coalesced: at most one pending
// signal). Waiters must re-check Received after each receive.
func (st *Stream) Progress() <-chan struct{} { return st.progress }

// Done is closed when the consumer goroutine exits (connection closed or
// first error).
func (st *Stream) Done() <-chan struct{} { return st.done }

// SubID is the server-side subscription ID (for driver quiescing).
func (st *Stream) SubID() int { return int(st.subID.Load()) }

// Err returns the first consumption error, if any.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Close tears the connection down and waits for the consumer to finish.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		<-st.done
		return
	}
	st.closed = true
	st.mu.Unlock()
	st.cancel()
	<-st.done
}
