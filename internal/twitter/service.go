// Package twitter simulates the two Twitter APIs the study collects from —
// the Search API (seven-day window, paginated, rate limited) and the
// Streaming API (filtered real-time delivery plus the 1% sample stream) —
// and provides the client stack that consumes them. The service serves a
// simworld over real HTTP; the collection pipeline only ever sees the wire
// format, exactly as the authors' tooling did.
//
// Fidelity knobs reproduce the discrepancies the paper reports between the
// two APIs (Section 3.1): the search index misses a fraction of tweets, and
// streaming connections drop a fraction of matching tweets, so merging both
// sources recovers more than either alone.
package twitter

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/jsonx"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// ServiceConfig tunes the simulated API's imperfections.
type ServiceConfig struct {
	// SearchMissP is the fraction of tweets the search index never
	// returns (deterministic per tweet).
	SearchMissP float64
	// StreamDropP is the fraction of matching tweets a streaming
	// connection fails to deliver (deterministic per tweet/connection).
	StreamDropP float64
	// SearchPageSize is the maximum statuses per search response.
	SearchPageSize int
	// SearchRateLimit is the token budget per SearchRateWindow.
	SearchRateLimit  int
	SearchRateWindow time.Duration
	// TransientErrorP injects HTTP 503s on search requests (deterministic
	// in the request sequence), exercising client retry logic.
	TransientErrorP float64
}

// DefaultServiceConfig mirrors Twitter's v1.1 limits with mild
// inter-API discrepancy.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		SearchMissP:      0.04,
		StreamDropP:      0.03,
		SearchPageSize:   100,
		SearchRateLimit:  450,
		SearchRateWindow: 15 * time.Minute,
	}
}

// Service is the simulated Twitter backend.
type Service struct {
	cfg   ServiceConfig
	world *simworld.World
	clock simclock.Clock

	// Faults, when set, injects failures into search requests (streams are
	// exempt: a mid-stream abort would lose queued events the quiesce
	// accounting has already promised to the driver).
	Faults *faults.Injector

	mu         sync.Mutex
	published  []*simworld.Tweet // platform tweets published so far
	control    []*simworld.Tweet // control (sample-stream) tweets
	pubCur     cursor            // next world tweet to publish
	ctlCur     cursor
	nextSubID  int
	subs       map[int]*subscriber
	rlTokens   float64
	rlLastFill time.Time
	reqSeq     uint64 // search request counter, drives fault injection
}

// cursor walks the world's per-day tweet slices in publication order.
type cursor struct{ day, idx int }

type subscriber struct {
	id      int
	sample  bool     // sample stream (control) vs filter stream
	tracks  []string // filter terms (substring match, like track=)
	ch      chan *simworld.Tweet
	queued  int // events enqueued for this subscriber (post-drop)
	dropped int
	closed  bool
}

// NewService builds a Service over the world.
func NewService(world *simworld.World, clock simclock.Clock, cfg ServiceConfig) *Service {
	return &Service{
		cfg:        cfg,
		world:      world,
		clock:      clock,
		subs:       map[int]*subscriber{},
		rlTokens:   float64(cfg.SearchRateLimit),
		rlLastFill: clock.Now(),
	}
}

// PublishUpTo pushes all world tweets with CreatedAt <= now into the
// published set and streams, returning how many platform tweets were
// published by this call. The driver calls it after advancing the clock.
// Within each day the world's tweets are time-sorted, so a (day, idx)
// cursor publishes each tweet exactly once in order.
func (s *Service) PublishUpTo(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.advanceCursor(&s.pubCur, s.world.TweetsByDay, &s.published, false, now)
	s.advanceCursor(&s.ctlCur, s.world.ControlByDay, &s.control, true, now)
	return n
}

func (s *Service) advanceCursor(cur *cursor, byDay [][]*simworld.Tweet,
	out *[]*simworld.Tweet, control bool, now time.Time) int {
	n := 0
	for cur.day < len(byDay) {
		tweets := byDay[cur.day]
		for cur.idx < len(tweets) {
			tw := tweets[cur.idx]
			if tw.CreatedAt.After(now) {
				return n
			}
			*out = append(*out, tw)
			s.fanOut(tw, control)
			cur.idx++
			n++
		}
		cur.day++
		cur.idx = 0
	}
	return n
}

func (s *Service) fanOut(tw *simworld.Tweet, control bool) {
	for _, sub := range s.subs {
		if sub.closed || sub.sample != control {
			continue
		}
		if !control && !matchesTracks(tw.Text, sub.tracks) {
			continue
		}
		if s.cfg.StreamDropP > 0 && dropHash(tw.ID, uint64(sub.id)) < s.cfg.StreamDropP {
			sub.dropped++
			continue
		}
		select {
		case sub.ch <- tw:
			sub.queued++
		default:
			// Slow consumer: Twitter disconnects laggards; we count the
			// loss instead so the study driver can observe it.
			sub.dropped++
		}
	}
}

func matchesTracks(text string, tracks []string) bool {
	for _, t := range tracks {
		if strings.Contains(text, t) {
			return true
		}
	}
	return false
}

// dropHash maps (tweet, subscriber) to [0,1) deterministically.
func dropHash(id, salt uint64) float64 {
	h := id ^ salt*0x9E3779B97F4A7C15
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h%1_000_000) / 1_000_000
}

// missHash decides search-index misses, deterministic per tweet.
func missHash(id uint64) float64 { return dropHash(id, 0x5EA4C4) }

// QueuedFor reports how many events have been enqueued to the subscriber
// with the given ID (post-drop). The study driver uses it to quiesce:
// advance clock → PublishUpTo → wait until the client consumed QueuedFor.
func (s *Service) QueuedFor(subID int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[subID]; ok {
		return sub.queued
	}
	return 0
}

// DroppedFor reports how many events were dropped for a subscriber.
func (s *Service) DroppedFor(subID int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[subID]; ok {
		return sub.dropped
	}
	return 0
}

// RequestState is the service's mutable request-side state, carried by a
// study checkpoint. The published-tweet cursors and stream subscriptions
// are not part of it: a resume re-derives the former by replaying
// PublishUpTo to the checkpoint clock before any stream opens, and fresh
// stream connections re-claim the same subscriber IDs a fresh run would.
type RequestState struct {
	RateTokens   float64
	RateLastFill time.Time
	ReqSeq       uint64
}

// RequestState snapshots the search rate limiter and request sequence.
func (s *Service) RequestState() RequestState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RequestState{RateTokens: s.rlTokens, RateLastFill: s.rlLastFill, ReqSeq: s.reqSeq}
}

// RestoreRequestState installs a checkpointed request state.
func (s *Service) RestoreRequestState(st RequestState) {
	s.mu.Lock()
	s.rlTokens = st.RateTokens
	s.rlLastFill = st.RateLastFill
	s.reqSeq = st.ReqSeq
	s.mu.Unlock()
}

// PublishedCounts returns (platform tweets, control tweets) published.
func (s *Service) PublishedCounts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.published), len(s.control)
}

// Handler returns the HTTP mux serving the simulated API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/1.1/search/tweets.json", s.handleSearch)
	mux.HandleFunc("/1.1/statuses/filter.json", s.handleFilter)
	mux.HandleFunc("/1.1/statuses/sample.json", s.handleSample)
	return mux
}

// --- Search API ---

func (s *Service) takeSearchToken() (ok bool, retryAfter time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	elapsed := now.Sub(s.rlLastFill)
	if elapsed > 0 {
		refill := float64(s.cfg.SearchRateLimit) * float64(elapsed) / float64(s.cfg.SearchRateWindow)
		s.rlTokens += refill
		if s.rlTokens > float64(s.cfg.SearchRateLimit) {
			s.rlTokens = float64(s.cfg.SearchRateLimit)
		}
		s.rlLastFill = now
	}
	if s.rlTokens >= 1 {
		s.rlTokens--
		return true, 0
	}
	return false, s.cfg.SearchRateWindow / time.Duration(s.cfg.SearchRateLimit)
}

func (s *Service) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.Faults.Intercept(w, r, "", func(w http.ResponseWriter) {
		// Twitter's native rate-limit shape, so the client's existing 429
		// handling (advance the cursor window) covers injected floods too.
		w.Header().Set("Retry-After", "2")
		http.Error(w, `{"errors":[{"code":88,"message":"Rate limit exceeded"}]}`, http.StatusTooManyRequests)
	}) {
		return
	}
	if s.cfg.TransientErrorP > 0 {
		s.mu.Lock()
		s.reqSeq++
		fail := dropHash(s.reqSeq, 0x5E41C3) < s.cfg.TransientErrorP
		s.mu.Unlock()
		if fail {
			http.Error(w, `{"errors":[{"code":130,"message":"Over capacity"}]}`,
				http.StatusServiceUnavailable)
			return
		}
	}
	if ok, retry := s.takeSearchToken(); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())+1))
		http.Error(w, `{"errors":[{"code":88,"message":"Rate limit exceeded"}]}`, http.StatusTooManyRequests)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `{"errors":[{"code":25,"message":"Query parameters are missing"}]}`, http.StatusBadRequest)
		return
	}
	count := s.cfg.SearchPageSize
	if c := r.URL.Query().Get("count"); c != "" {
		if v, err := strconv.Atoi(c); err == nil && v > 0 && v < count {
			count = v
		}
	}
	var maxID, sinceID uint64
	if v := r.URL.Query().Get("max_id"); v != "" {
		maxID, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := r.URL.Query().Get("since_id"); v != "" {
		sinceID, _ = strconv.ParseUint(v, 10, 64)
	}

	now := s.clock.Now()
	horizon := now.Add(-7 * 24 * time.Hour) // the Search API's 7-day window

	s.mu.Lock()
	// Newest-first scan, filtered to the window, the query, the index,
	// and the pagination cursor.
	var page []*simworld.Tweet
	var nextMax uint64
	for i := len(s.published) - 1; i >= 0; i-- {
		tw := s.published[i]
		if tw.CreatedAt.Before(horizon) {
			break
		}
		if maxID != 0 && tw.ID > maxID {
			continue
		}
		if tw.ID <= sinceID {
			continue
		}
		if !strings.Contains(tw.Text, q) {
			continue
		}
		if missHash(tw.ID) < s.cfg.SearchMissP {
			continue // never indexed
		}
		if len(page) == count {
			nextMax = page[len(page)-1].ID - 1
			break
		}
		page = append(page, tw)
	}
	s.mu.Unlock()

	// Append-encoded into a pooled buffer, byte-identical to the
	// json.NewEncoder(searchResponse{...}) rendering this replaced (the
	// differential tests in wire_fast_test.go hold the two shapes equal).
	bp := jsonx.GetBuf()
	defer jsonx.PutBuf(bp)
	buf := append((*bp)[:0], `{"statuses":[`...)
	for i, tw := range page {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendTweet(buf, tw)
	}
	buf = append(buf, `],"search_metadata":{`...)
	if nextMax != 0 {
		buf = append(buf, `"next_results":`...)
		buf = jsonx.AppendString(buf, "?max_id="+strconv.FormatUint(nextMax, 10)+"&q="+q)
		buf = append(buf, `,"max_id_str":"`...)
		buf = strconv.AppendUint(buf, nextMax, 10)
		buf = append(buf, '"')
	}
	buf = append(buf, '}', '}', '\n')
	*bp = buf
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}

// --- Streaming APIs ---

func (s *Service) handleFilter(w http.ResponseWriter, r *http.Request) {
	track := r.URL.Query().Get("track")
	if track == "" {
		http.Error(w, `{"errors":[{"code":38,"message":"track parameter missing"}]}`, http.StatusBadRequest)
		return
	}
	s.serveStream(w, r, false, strings.Split(track, ","))
}

func (s *Service) handleSample(w http.ResponseWriter, r *http.Request) {
	s.serveStream(w, r, true, nil)
}

func (s *Service) serveStream(w http.ResponseWriter, r *http.Request, sample bool, tracks []string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := &subscriber{
		sample: sample,
		tracks: tracks,
		ch:     make(chan *simworld.Tweet, 1<<16),
	}
	s.mu.Lock()
	s.nextSubID++
	sub.id = s.nextSubID
	s.subs[sub.id] = sub
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		sub.closed = true
		delete(s.subs, sub.id)
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Transfer-Encoding", "chunked")
	w.Header().Set("X-Sim-Subscription", strconv.Itoa(sub.id))
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	keepAlive := time.NewTicker(200 * time.Millisecond)
	defer keepAlive.Stop()
	var buf []byte // per-connection scratch, reused for every event
	for {
		select {
		case <-ctx.Done():
			return
		case tw := <-sub.ch:
			buf = appendTweet(buf[:0], tw)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
		case <-keepAlive.C:
			// Blank keep-alive line, as the real streaming API sends.
			if _, err := fmt.Fprint(w, "\r\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
