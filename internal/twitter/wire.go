package twitter

import (
	"strconv"
	"strings"
	"time"

	"msgscope/internal/simworld"
)

// createdAtFormat is Twitter's v1.1 timestamp layout.
const createdAtFormat = "Mon Jan 02 15:04:05 -0700 2006"

// tweetJSON is the subset of the v1.1 status object the pipeline consumes.
type tweetJSON struct {
	ID        uint64       `json:"id"`
	IDStr     string       `json:"id_str"`
	CreatedAt string       `json:"created_at"`
	Text      string       `json:"text"`
	Lang      string       `json:"lang"`
	User      userJSON     `json:"user"`
	Entities  entitiesJSON `json:"entities"`
	Retweeted *retweetRef  `json:"retweeted_status,omitempty"`
}

type userJSON struct {
	IDStr      string `json:"id_str"`
	ScreenName string `json:"screen_name"`
}

type entitiesJSON struct {
	Hashtags     []hashtagJSON `json:"hashtags"`
	UserMentions []mentionJSON `json:"user_mentions"`
}

type hashtagJSON struct {
	Text string `json:"text"`
}

type mentionJSON struct {
	ScreenName string `json:"screen_name"`
}

type retweetRef struct {
	IDStr string `json:"id_str"`
}

type searchResponse struct {
	Statuses       []tweetJSON `json:"statuses"`
	SearchMetadata struct {
		NextResults string `json:"next_results,omitempty"`
		MaxIDStr    string `json:"max_id_str,omitempty"`
	} `json:"search_metadata"`
}

// encodeTweet renders a world tweet in the v1.1 wire shape. Hashtag and
// mention entities are extracted from the text the same way Twitter's
// ingestion does, so entity counts agree with the composed text.
func encodeTweet(tw *simworld.Tweet) tweetJSON {
	j := tweetJSON{
		ID:        tw.ID,
		IDStr:     strconv.FormatUint(tw.ID, 10),
		CreatedAt: tw.CreatedAt.Format(createdAtFormat),
		Text:      tw.Text,
		Lang:      tw.Lang,
		User:      userJSON{IDStr: tw.AuthorID, ScreenName: tw.AuthorID},
	}
	for _, tok := range strings.Fields(tw.Text) {
		switch {
		case len(tok) > 1 && tok[0] == '#':
			j.Entities.Hashtags = append(j.Entities.Hashtags, hashtagJSON{Text: tok[1:]})
		case len(tok) > 1 && tok[0] == '@':
			j.Entities.UserMentions = append(j.Entities.UserMentions,
				mentionJSON{ScreenName: strings.TrimSuffix(tok[1:], ":")})
		}
	}
	if tw.Retweet {
		j.Retweeted = &retweetRef{IDStr: j.IDStr}
	}
	return j
}

// Status is the client-side decoded tweet handed to the pipeline.
type Status struct {
	ID        uint64
	CreatedAt time.Time
	Text      string
	Lang      string
	UserID    string
	Hashtags  int
	Mentions  int
	IsRetweet bool
}

// decodeStatus converts the wire object into the pipeline's Status.
func decodeStatus(j tweetJSON) (Status, error) {
	at, err := time.Parse(createdAtFormat, j.CreatedAt)
	if err != nil {
		return Status{}, err
	}
	mentions := len(j.Entities.UserMentions)
	if j.Retweeted != nil && mentions > 0 {
		// The RT @user: prefix counts as a mention entity on the wire but
		// not as a deliberate mention in the paper's Figure 3 sense.
		mentions--
	}
	return Status{
		ID:        j.ID,
		CreatedAt: at.UTC(),
		Text:      j.Text,
		Lang:      j.Lang,
		UserID:    j.User.IDStr,
		Hashtags:  len(j.Entities.Hashtags),
		Mentions:  mentions,
		IsRetweet: j.Retweeted != nil,
	}, nil
}
