// Package faults injects deterministic failures into the simulated
// platform services: transient 500s, aborted connections, malformed
// bodies, rate-limit (flood) bursts, and scheduled outage windows on the
// virtual clock. Every decision is a pure function of (plan seed, request
// key, retry attempt, phase epoch), so the same seed and plan produce the
// same faults no matter how many workers race the requests — the property
// the determinism-under-faults tests rely on.
package faults

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"msgscope/internal/simclock"
)

// Window is a half-open interval [From, To) on the virtual clock.
type Window struct {
	From time.Time
	To   time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

// Plan configures fault injection. The zero value injects nothing.
type Plan struct {
	// Seed decorrelates fault draws from the world seed.
	Seed uint64
	// ErrorRate is the probability of an injected HTTP 500 per attempt.
	ErrorRate float64
	// TimeoutRate is the probability of an aborted connection per attempt
	// (the simulation's stand-in for a hang: the client sees a transport
	// error immediately instead of sleeping through a real timeout).
	TimeoutRate float64
	// MalformedRate is the probability of a truncated response body.
	MalformedRate float64
	// FloodBursts are windows during which every covered request is
	// answered with the platform's native rate-limit response
	// (429/FLOOD_WAIT).
	FloodBursts []Window
	// OutageWindows are windows during which every covered request is
	// answered 503, simulating a platform-wide outage.
	OutageWindows []Window
}

// Kind classifies one injected fault.
type Kind int

// Fault kinds. None means the request proceeds normally.
const (
	None Kind = iota
	ServerError
	Timeout
	Malformed
	Flood
	Outage
	numKinds
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ServerError:
		return "server-error"
	case Timeout:
		return "timeout"
	case Malformed:
		return "malformed"
	case Flood:
		return "flood"
	case Outage:
		return "outage"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AttemptHeader carries the retry layer's attempt counter so the injector
// can draw an independent fault decision per attempt (a permanently
// faulted key would otherwise never pass retries).
const AttemptHeader = "X-Fault-Attempt"

// Mark stamps a request with its retry attempt number.
func Mark(req *http.Request, attempt int) {
	req.Header.Set(AttemptHeader, strconv.Itoa(attempt))
}

// Counts is a snapshot of injected faults by kind.
type Counts struct {
	ServerErrors int64
	Timeouts     int64
	Malformed    int64
	Floods       int64
	Outages      int64
}

// Total sums all injected faults.
func (c Counts) Total() int64 {
	return c.ServerErrors + c.Timeouts + c.Malformed + c.Floods + c.Outages
}

// Injector is the per-run fault source the services consult. A nil
// *Injector is valid and injects nothing, so services need no guards.
type Injector struct {
	plan  Plan
	clock simclock.Clock
	epoch atomic.Uint64
	n     [numKinds]atomic.Int64
}

// NewInjector builds an injector for the plan; a nil plan yields a nil
// injector (inject nothing).
func NewInjector(plan *Plan, clock simclock.Clock) *Injector {
	if plan == nil {
		return nil
	}
	return &Injector{plan: *plan, clock: clock}
}

// NextEpoch advances the phase epoch. The study driver calls it at every
// phase boundary (each hourly search, daily sweep, the join, the final
// collection) so repeated requests — e.g. the same group probed every
// day — draw fresh fault decisions each phase instead of failing forever.
func (in *Injector) NextEpoch() {
	if in == nil {
		return
	}
	in.epoch.Add(1)
}

// Epoch returns the current phase epoch, for checkpointing.
func (in *Injector) Epoch() uint64 {
	if in == nil {
		return 0
	}
	return in.epoch.Load()
}

// CountsMap snapshots the injection counters under stable names for a
// checkpoint.
func (in *Injector) CountsMap() map[string]int64 {
	if in == nil {
		return nil
	}
	m := make(map[string]int64, int(numKinds)-1)
	for k := None + 1; k < numKinds; k++ {
		m[k.String()] = in.n[k].Load()
	}
	return m
}

// Restore reinstates the phase epoch and injection counters from a
// checkpoint. The epoch is the only injector state that shapes future
// draws, so restoring it makes post-resume fault decisions identical to
// the uninterrupted run's.
func (in *Injector) Restore(epoch uint64, counts map[string]int64) {
	if in == nil {
		return
	}
	in.epoch.Store(epoch)
	for k := None + 1; k < numKinds; k++ {
		in.n[k].Store(counts[k.String()])
	}
}

// Counts returns how many faults have been injected so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return Counts{
		ServerErrors: in.n[ServerError].Load(),
		Timeouts:     in.n[Timeout].Load(),
		Malformed:    in.n[Malformed].Load(),
		Floods:       in.n[Flood].Load(),
		Outages:      in.n[Outage].Load(),
	}
}

// Decide returns the fault (or None) for one request attempt. The result
// depends only on the plan, the virtual clock, the key, the attempt, and
// the current epoch — never on goroutine scheduling.
func (in *Injector) Decide(key string, attempt int) Kind {
	if in == nil {
		return None
	}
	now := in.clock.Now()
	for _, w := range in.plan.OutageWindows {
		if w.Contains(now) {
			return Outage
		}
	}
	for _, w := range in.plan.FloodBursts {
		if w.Contains(now) {
			return Flood
		}
	}
	u := in.draw(key, attempt)
	switch {
	case u < in.plan.ErrorRate:
		return ServerError
	case u < in.plan.ErrorRate+in.plan.TimeoutRate:
		return Timeout
	case u < in.plan.ErrorRate+in.plan.TimeoutRate+in.plan.MalformedRate:
		return Malformed
	}
	return None
}

// draw hashes (seed, epoch, key, attempt) to [0,1).
func (in *Injector) draw(key string, attempt int) float64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	mix(in.plan.Seed)
	mix(in.epoch.Load())
	mix(uint64(attempt))
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix-style finalizer for uniformity.
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h%1_000_000) / 1_000_000
}

// Intercept decides and, when a fault applies, writes the fault response,
// reporting true so the handler returns early. The request key is the
// method, the request URI, and the account header (never the host: test
// servers bind random ports, and any port-dependent decision would break
// run-to-run byte identity). flood writes the platform's native
// rate-limit response; a nil flood falls back to a generic 429.
func (in *Injector) Intercept(w http.ResponseWriter, r *http.Request, acctHeader string, flood func(http.ResponseWriter)) bool {
	if in == nil {
		return false
	}
	key := r.Method + " " + r.URL.RequestURI()
	if acctHeader != "" {
		key += " " + r.Header.Get(acctHeader)
	}
	attempt, _ := strconv.Atoi(r.Header.Get(AttemptHeader))
	kind := in.Decide(key, attempt)
	if kind == None {
		return false
	}
	in.n[kind].Add(1)
	switch kind {
	case ServerError:
		http.Error(w, "injected server error", http.StatusInternalServerError)
	case Timeout:
		// Abort the connection without writing a response: the client sees
		// a transport error, the virtual-time analogue of a hung request —
		// no goroutine ever sleeps.
		panic(http.ErrAbortHandler)
	case Malformed:
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"truncated`)
	case Flood:
		if flood != nil {
			flood(w)
		} else {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "injected rate limit", http.StatusTooManyRequests)
		}
	case Outage:
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
	}
	return true
}
