package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msgscope/internal/simclock"
)

var t0 = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

func TestWindowContainsHalfOpen(t *testing.T) {
	w := Window{From: t0, To: t0.Add(time.Hour)}
	if !w.Contains(t0) {
		t.Error("From should be inside")
	}
	if !w.Contains(t0.Add(59 * time.Minute)) {
		t.Error("interior point should be inside")
	}
	if w.Contains(t0.Add(time.Hour)) {
		t.Error("To should be outside (half-open)")
	}
	if w.Contains(t0.Add(-time.Nanosecond)) {
		t.Error("point before From should be outside")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in != NewInjector(nil, simclock.New(t0)) {
		t.Fatal("nil plan must yield nil injector")
	}
	in.NextEpoch()
	if in.Decide("GET /x", 0) != None {
		t.Error("nil injector must decide None")
	}
	if in.Counts().Total() != 0 {
		t.Error("nil injector must count zero")
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	if in.Intercept(rec, req, "", nil) {
		t.Error("nil injector must not intercept")
	}
}

func TestDecideIsDeterministicPerKeyAttemptEpoch(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(&Plan{Seed: 7, ErrorRate: 0.2, TimeoutRate: 0.1, MalformedRate: 0.1}, simclock.New(t0))
	}
	a, b := mk(), mk()
	keys := []string{"GET /1.1/search/tweets.json?q=a", "POST /api/join", "GET /invite/XYZ j0"}
	for _, k := range keys {
		for attempt := 0; attempt < 5; attempt++ {
			if got, want := a.Decide(k, attempt), b.Decide(k, attempt); got != want {
				t.Fatalf("Decide(%q,%d) nondeterministic: %v vs %v", k, attempt, got, want)
			}
		}
	}
	// Different attempts must be able to draw different outcomes: over many
	// keys, at least one key must have a fault on attempt 0 and None later.
	recovered := 0
	for i := 0; i < 200; i++ {
		k := "GET /probe/" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		if a.Decide(k, 0) != None {
			for attempt := 1; attempt < 4; attempt++ {
				if a.Decide(k, attempt) == None {
					recovered++
					break
				}
			}
		}
	}
	if recovered == 0 {
		t.Error("no faulted key ever recovered on a later attempt; attempt not mixed into draw")
	}
}

func TestEpochChangesDraws(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, ErrorRate: 0.5}, simclock.New(t0))
	const key = "GET /web/abc"
	before := make([]Kind, 50)
	for i := range before {
		before[i] = in.Decide(key, i)
	}
	in.NextEpoch()
	same := 0
	for i := range before {
		if in.Decide(key, i) == before[i] {
			same++
		}
	}
	if same == len(before) {
		t.Error("epoch bump did not change any draw")
	}
}

func TestRateBandsRoughlyCalibrated(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3, ErrorRate: 0.25}, simclock.New(t0))
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.Decide("GET /k/"+strings.Repeat("q", i%13)+string(rune('a'+i%26)), i/26) == ServerError {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("ErrorRate 0.25 drew %.3f over %d trials", frac, n)
	}
}

func TestWindowsOverrideRates(t *testing.T) {
	clock := simclock.New(t0)
	in := NewInjector(&Plan{
		Seed:          9,
		FloodBursts:   []Window{{From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour)}},
		OutageWindows: []Window{{From: t0.Add(90 * time.Minute), To: t0.Add(95 * time.Minute)}},
	}, clock)
	if got := in.Decide("GET /x", 0); got != None {
		t.Fatalf("outside windows: got %v, want None", got)
	}
	clock.Advance(time.Hour)
	if got := in.Decide("GET /x", 0); got != Flood {
		t.Fatalf("inside flood burst: got %v, want Flood", got)
	}
	clock.Advance(30 * time.Minute)
	if got := in.Decide("GET /x", 0); got != Outage {
		t.Fatalf("outage window overlapping flood: got %v, want Outage (outage wins)", got)
	}
	clock.Advance(time.Hour)
	if got := in.Decide("GET /x", 0); got != None {
		t.Fatalf("past both windows: got %v, want None", got)
	}
}

// interceptOn forces a deterministic fault of the wanted kind by scanning
// keys until one draws it.
func interceptOn(t *testing.T, in *Injector, want Kind, acct string, flood func(http.ResponseWriter)) *httptest.ResponseRecorder {
	t.Helper()
	for i := 0; i < 10000; i++ {
		path := "/probe/" + strings.Repeat("z", i%11) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if in.Decide("GET "+path+map[bool]string{true: " " + acct, false: ""}[acct != ""], 0) != want {
			continue
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		if acct != "" {
			req.Header.Set("X-Acct", acct)
		}
		hdr := ""
		if acct != "" {
			hdr = "X-Acct"
		}
		if !in.Intercept(rec, req, hdr, flood) {
			t.Fatalf("Decide said %v but Intercept declined", want)
		}
		return rec
	}
	t.Fatalf("no key drew %v in 10000 tries", want)
	return nil
}

func TestInterceptResponses(t *testing.T) {
	in := NewInjector(&Plan{Seed: 11, ErrorRate: 0.15, MalformedRate: 0.15}, simclock.New(t0))

	rec := interceptOn(t, in, ServerError, "", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("ServerError wrote %d", rec.Code)
	}

	rec = interceptOn(t, in, Malformed, "acct0", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("Malformed wrote %d", rec.Code)
	}
	if body, _ := io.ReadAll(rec.Result().Body); string(body) != `{"truncated` {
		t.Errorf("Malformed body = %q", body)
	}

	c := in.Counts()
	if c.ServerErrors != 1 || c.Malformed != 1 || c.Total() != 2 {
		t.Errorf("counts = %+v", c)
	}
}

func TestInterceptFloodUsesCallbackOrFallback(t *testing.T) {
	clock := simclock.New(t0)
	in := NewInjector(&Plan{Seed: 2, FloodBursts: []Window{{From: t0, To: t0.Add(time.Hour)}}}, clock)

	// Native callback.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/messages", nil)
	called := false
	if !in.Intercept(rec, req, "", func(w http.ResponseWriter) {
		called = true
		w.WriteHeader(420)
		io.WriteString(w, `{"error":"FLOOD_WAIT_30","retry_after":30}`)
	}) {
		t.Fatal("flood burst not intercepted")
	}
	if !called || rec.Code != 420 {
		t.Errorf("native flood callback: called=%v code=%d", called, rec.Code)
	}

	// Generic fallback.
	rec = httptest.NewRecorder()
	if !in.Intercept(rec, httptest.NewRequest("GET", "/other", nil), "", nil) {
		t.Fatal("flood burst not intercepted")
	}
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Errorf("generic flood: code=%d Retry-After=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if in.Counts().Floods != 2 {
		t.Errorf("Floods = %d, want 2", in.Counts().Floods)
	}
}

func TestInterceptOutageAndTimeout(t *testing.T) {
	clock := simclock.New(t0)
	in := NewInjector(&Plan{Seed: 4, OutageWindows: []Window{{From: t0, To: t0.Add(time.Minute)}}}, clock)
	rec := httptest.NewRecorder()
	if !in.Intercept(rec, httptest.NewRequest("GET", "/x", nil), "", nil) {
		t.Fatal("outage not intercepted")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("outage wrote %d", rec.Code)
	}

	clock.Advance(time.Hour)
	in2 := NewInjector(&Plan{Seed: 4, TimeoutRate: 0.3}, clock)
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Errorf("timeout fault panicked with %v, want http.ErrAbortHandler", r)
			}
		}()
		interceptOn(t, in2, Timeout, "", nil)
	}()
	if in2.Counts().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", in2.Counts().Timeouts)
	}
}

func TestInterceptKeyIncludesAccountHeader(t *testing.T) {
	// Two accounts hitting the same path must draw independent decisions:
	// with ErrorRate 0.5 some account pair must disagree on some path.
	in := NewInjector(&Plan{Seed: 6, ErrorRate: 0.5}, simclock.New(t0))
	disagree := false
	for i := 0; i < 100 && !disagree; i++ {
		path := "GET /invite/" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if in.Decide(path+" j0", 0) != in.Decide(path+" j1", 0) {
			disagree = true
		}
	}
	if !disagree {
		t.Error("account header never changed the decision; key ignores account")
	}
}

func TestMarkSetsAttemptHeader(t *testing.T) {
	req := httptest.NewRequest("GET", "/x", nil)
	Mark(req, 3)
	if got := req.Header.Get(AttemptHeader); got != "3" {
		t.Errorf("attempt header = %q, want 3", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", ServerError: "server-error", Timeout: "timeout",
		Malformed: "malformed", Flood: "flood", Outage: "outage", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
