package ids

import "sync/atomic"

// tableBlockShift sizes the handle table's string blocks (1024 entries).
// Blocks are fixed-size arrays so a handle's slot never moves: growing the
// table appends a new block instead of reallocating existing strings.
const tableBlockShift = 10

type tableBlock [1 << tableBlockShift]string

// Table interns strings from a bounded vocabulary to dense uint32 handles,
// so columnar record layouts can store a 4-byte handle where a 16-byte
// string header (plus its heap data) used to live. Handles are assigned in
// first-sight order starting at 0.
//
// Concurrency contract: Handle (interning) requires external
// synchronization — the store interns under the owning family's lock, so
// the table never needs its own writer lock. Lookup is safe concurrently
// with interning: the block directory is swapped atomically and a slot is
// written exactly once, before the handle is published to any reader
// (publication happens via the family lock's release/acquire ordering).
type Table struct {
	byStr  map[string]uint32
	blocks atomic.Pointer[[]*tableBlock]
	n      uint32
}

// NewTable returns an empty handle table.
func NewTable() *Table {
	t := &Table{byStr: make(map[string]uint32, 64)}
	blocks := make([]*tableBlock, 0, 4)
	t.blocks.Store(&blocks)
	return t
}

// Handle returns the handle of s, interning it on first sight. The hit
// path performs zero allocations. Callers must serialize Handle calls on
// the same table (see the type comment).
func (t *Table) Handle(s string) uint32 {
	if h, ok := t.byStr[s]; ok {
		return h
	}
	h := t.n
	blocks := *t.blocks.Load()
	if int(h)>>tableBlockShift == len(blocks) {
		// Appending into spare capacity reuses the shared backing array;
		// that is safe because the new directory slot was never visible to
		// any reader (their slice headers end before it). Only a full
		// directory forces a copy.
		grown := blocks
		if len(blocks) == cap(blocks) {
			grown = make([]*tableBlock, len(blocks), cap(blocks)*2+1)
			copy(grown, blocks)
		}
		grown = append(grown, new(tableBlock))
		t.blocks.Store(&grown)
		blocks = grown
	}
	blocks[h>>tableBlockShift][h&(1<<tableBlockShift-1)] = s
	t.byStr[s] = h
	t.n = h + 1
	return h
}

// Lookup returns the string behind a handle previously returned by Handle.
// Safe to call concurrently with interning.
func (t *Table) Lookup(h uint32) string {
	blocks := *t.blocks.Load()
	return blocks[h>>tableBlockShift][h&(1<<tableBlockShift-1)]
}

// Len reports the number of distinct strings interned.
func (t *Table) Len() int { return int(t.n) }
