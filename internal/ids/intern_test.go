package ids

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerCanonicalizes(t *testing.T) {
	it := NewInterner()
	a := it.Intern("user-123")
	b := it.Intern(string([]byte("user-123"))) // force a distinct backing array
	if a != b {
		t.Fatalf("values differ: %q %q", a, b)
	}
	c := it.InternBytes([]byte("user-123"))
	if c != a {
		t.Fatalf("InternBytes returned %q, want %q", c, a)
	}
	if got := it.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if it.InternBytes([]byte("other")) != "other" {
		t.Fatal("miss path returned wrong value")
	}
	if got := it.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	var wg sync.WaitGroup
	const workers = 8
	results := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, 0, 100)
			for i := 0; i < 100; i++ {
				out = append(out, it.Intern(fmt.Sprintf("id-%d", i%25)))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d slot %d: %q != %q", w, i, results[w][i], results[0][i])
			}
		}
	}
	if got := it.Len(); got != 25 {
		t.Fatalf("Len = %d, want 25", got)
	}
}

// TestInternerAllocs is the hard regression bound from ISSUE 4: the hit
// path must not allocate — for string inputs or for byte-slice lookups.
func TestInternerAllocs(t *testing.T) {
	it := NewInterner()
	it.Intern("telegram-group-code")
	b := []byte("telegram-group-code")

	if allocs := testing.AllocsPerRun(200, func() {
		if it.Intern("telegram-group-code") == "" {
			t.Fail()
		}
	}); allocs != 0 {
		t.Errorf("Intern hit path: %.1f allocs/run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if it.InternBytes(b) == "" {
			t.Fail()
		}
	}); allocs != 0 {
		t.Errorf("InternBytes hit path: %.1f allocs/run, want 0", allocs)
	}
}
