package ids

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestBase62RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 61, 62, 12345, 1<<32 - 1, 1<<63 + 17, ^uint64(0)}
	for _, n := range cases {
		s := Base62(n)
		got, err := ParseBase62(s)
		if err != nil {
			t.Fatalf("ParseBase62(%q): %v", s, err)
		}
		if got != n {
			t.Fatalf("round trip %d -> %q -> %d", n, s, got)
		}
	}
}

func TestBase62RoundTripProperty(t *testing.T) {
	f := func(n uint64) bool {
		got, err := ParseBase62(Base62(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseBase62Invalid(t *testing.T) {
	for _, s := range []string{"", "abc-def", "hello world", "!!"} {
		if _, err := ParseBase62(s); err == nil {
			t.Errorf("ParseBase62(%q) succeeded, want error", s)
		}
	}
}

func TestParseBase62Overflow(t *testing.T) {
	if _, err := ParseBase62("zzzzzzzzzzzzzzzz"); err == nil {
		t.Error("16 z's should overflow uint64")
	}
}

func TestCodeLengthAndCharset(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 8, 22} {
		c := Code(rng, n)
		if len(c) != n {
			t.Fatalf("Code length %d, want %d", len(c), n)
		}
		for i := 0; i < len(c); i++ {
			b := c[i]
			if !(b >= '0' && b <= '9' || b >= 'A' && b <= 'Z' || b >= 'a' && b <= 'z') {
				t.Fatalf("Code byte %q outside base62 alphabet", b)
			}
		}
	}
}

func TestSnowflakeTimeRoundTrip(t *testing.T) {
	at := time.Date(2020, 4, 20, 12, 34, 56, 789e6, time.UTC)
	for _, epoch := range []int64{TwitterEpochMS, DiscordEpochMS} {
		id := Snowflake(epoch, at, 42)
		got := SnowflakeTime(epoch, id)
		if !got.Equal(at.Truncate(time.Millisecond)) {
			t.Fatalf("epoch %d: got %v want %v", epoch, got, at)
		}
	}
}

func TestSnowflakeMonotonicInTime(t *testing.T) {
	a := Snowflake(DiscordEpochMS, time.UnixMilli(DiscordEpochMS+1000), 5)
	b := Snowflake(DiscordEpochMS, time.UnixMilli(DiscordEpochMS+2000), 1)
	if a >= b {
		t.Fatalf("later timestamp should dominate sequence: %d >= %d", a, b)
	}
}

func TestSnowflakePreEpochClamps(t *testing.T) {
	id := Snowflake(DiscordEpochMS, time.UnixMilli(0), 7)
	if id>>22 != 0 {
		t.Fatalf("pre-epoch time should clamp to 0, got ms=%d", id>>22)
	}
}

func TestSequenceDistinct(t *testing.T) {
	seq := NewSequence(TwitterEpochMS)
	at := time.Date(2020, 4, 10, 0, 0, 0, 0, time.UTC)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := seq.Next(at)
		if seen[id] {
			t.Fatalf("duplicate snowflake %d at i=%d", id, i)
		}
		seen[id] = true
	}
}

func TestForkIndependentStreams(t *testing.T) {
	a1 := Fork(9, "a").Uint64()
	a2 := Fork(9, "a").Uint64()
	b := Fork(9, "b").Uint64()
	if a1 != a2 {
		t.Fatal("same label should reproduce the stream")
	}
	if a1 == b {
		t.Fatal("different labels should give different streams")
	}
	if Fork(10, "a").Uint64() == a1 {
		t.Fatal("different seeds should give different streams")
	}
}
