package ids

import (
	"strconv"
	"sync"
	"testing"
)

func TestTableHandlesAreDenseAndStable(t *testing.T) {
	tab := NewTable()
	if h := tab.Handle("en"); h != 0 {
		t.Fatalf("first handle = %d, want 0", h)
	}
	if h := tab.Handle("pt"); h != 1 {
		t.Fatalf("second handle = %d, want 1", h)
	}
	if h := tab.Handle("en"); h != 0 {
		t.Fatalf("re-intern moved the handle: %d", h)
	}
	if got := tab.Lookup(1); got != "pt" {
		t.Fatalf("Lookup(1) = %q", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestTableSurvivesBlockGrowth(t *testing.T) {
	tab := NewTable()
	const n = 5 * (1 << tableBlockShift)
	for i := 0; i < n; i++ {
		if h := tab.Handle("v" + strconv.Itoa(i)); h != uint32(i) {
			t.Fatalf("handle(%d) = %d", i, h)
		}
	}
	for i := 0; i < n; i++ {
		if got := tab.Lookup(uint32(i)); got != "v"+strconv.Itoa(i) {
			t.Fatalf("Lookup(%d) = %q", i, got)
		}
	}
}

func TestTableHitPathAllocFree(t *testing.T) {
	tab := NewTable()
	tab.Handle("whatsapp")
	allocs := testing.AllocsPerRun(100, func() {
		if tab.Handle("whatsapp") != 0 {
			t.Fatal("handle changed")
		}
		if tab.Lookup(0) != "whatsapp" {
			t.Fatal("lookup wrong")
		}
	})
	if allocs > 0 {
		t.Errorf("hit path allocated %.1f objects/op, want 0", allocs)
	}
}

// TestTableConcurrentLookupDuringIntern exercises the contract the store
// relies on: one goroutine interning (externally serialized) while readers
// look up already-published handles. Run under -race this proves the block
// directory swap is safe.
func TestTableConcurrentLookupDuringIntern(t *testing.T) {
	tab := NewTable()
	var published sync.Map // handle -> string, written before readers probe
	const n = 3 * (1 << tableBlockShift)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				published.Range(func(k, v any) bool {
					if got := tab.Lookup(k.(uint32)); got != v.(string) {
						t.Errorf("Lookup(%d) = %q, want %q", k, got, v)
						return false
					}
					return true
				})
			}
		}()
	}
	for i := 0; i < n; i++ {
		s := "c" + strconv.Itoa(i)
		h := tab.Handle(s)
		published.Store(h, s)
	}
	close(stop)
	wg.Wait()
}
