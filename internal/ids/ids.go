// Package ids provides deterministic identifier generation for the
// simulated ecosystem: base62 invite codes, Twitter- and Discord-style
// snowflake IDs (which encode creation timestamps, a property the Discord
// crawler exploits to recover guild creation dates), and forkable seeded
// random number generators so every subsystem draws from an independent but
// reproducible stream.
package ids

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"
)

const base62Alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// Base62 encodes n as a base62 string (empty input 0 encodes to "0").
func Base62(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [11]byte // 62^11 > 2^64
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = base62Alphabet[n%62]
		n /= 62
	}
	return string(buf[i:])
}

// ParseBase62 decodes a base62 string produced by Base62.
func ParseBase62(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("ids: empty base62 string")
	}
	var n uint64
	for _, c := range []byte(s) {
		d := strings.IndexByte(base62Alphabet, c)
		if d < 0 {
			return 0, fmt.Errorf("ids: invalid base62 byte %q", c)
		}
		nn := n*62 + uint64(d)
		if nn < n {
			return 0, fmt.Errorf("ids: base62 overflow in %q", s)
		}
		n = nn
	}
	return n, nil
}

// Code returns a fixed-length invite-code-like token (alphanumeric,
// case-sensitive) drawn from rng. WhatsApp invite IDs are ~22 chars,
// Discord codes 8-10, Telegram joinchat hashes ~16.
func Code(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = base62Alphabet[rng.IntN(62)]
	}
	return string(b)
}

// Snowflake epochs, in milliseconds since the Unix epoch.
const (
	TwitterEpochMS = 1288834974657 // 2010-11-04T01:42:54.657Z
	DiscordEpochMS = 1420070400000 // 2015-01-01T00:00:00.000Z
)

// Snowflake packs a timestamp and a sequence number into a 64-bit ID using
// the Twitter/Discord layout: 42 bits of milliseconds-since-epoch, then 22
// low bits (worker+process+sequence, collapsed here into one counter).
func Snowflake(epochMS int64, t time.Time, seq uint32) uint64 {
	ms := t.UnixMilli() - epochMS
	if ms < 0 {
		ms = 0
	}
	return uint64(ms)<<22 | uint64(seq&0x3FFFFF)
}

// SnowflakeTime recovers the timestamp embedded in a snowflake ID.
func SnowflakeTime(epochMS int64, id uint64) time.Time {
	ms := int64(id>>22) + epochMS
	return time.UnixMilli(ms).UTC()
}

// Sequence hands out monotonically increasing snowflakes for one epoch. It
// is not safe for concurrent use; the world generator is single-threaded.
type Sequence struct {
	epochMS int64
	seq     uint32
}

// NewSequence returns a Sequence for the given epoch.
func NewSequence(epochMS int64) *Sequence { return &Sequence{epochMS: epochMS} }

// Next returns a fresh snowflake for time t.
func (s *Sequence) Next(t time.Time) uint64 {
	s.seq++
	return Snowflake(s.epochMS, t, s.seq)
}

// Fork derives an independent deterministic RNG from a parent seed and a
// label. Subsystems each fork their own stream so that adding draws in one
// subsystem does not perturb any other.
func Fork(seed uint64, label string) *rand.Rand {
	// FNV-1a over the label, mixed with the seed.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return rand.New(rand.NewPCG(seed, h))
}
