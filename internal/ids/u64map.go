package ids

// U64Map is a compact open-addressing hash table from uint64 keys to
// uint32 values, built for the store's dedup indexes (tweet ID → row,
// post ID → seen). A Go map[uint64]uint32 costs ~50+ bytes per entry once
// bucket headers, overflow pointers, and load slack are counted; this
// table keeps two flat power-of-two slices (12 bytes per slot) filled to
// at most 90%, i.e. ~13 bytes per entry just before a growth and ~7 right
// after — small enough that a 10M+-tweet dedup index stays in the
// hundreds of megabytes of headroom the paper-scale runs budget.
//
// The probe sequence is robin-hood linear probing: an inserted entry
// displaces any resident entry that is closer to its ideal slot than the
// incoming one is to its own, which caps probe-length variance and keeps
// lookups short even at 90% load. The table never deletes — the study
// only ever accumulates seen IDs — which is what makes the scheme this
// simple (no tombstones).
//
// The zero key is stored out of band (hasZero/zeroVal): slot emptiness is
// encoded as key==0, so key 0 cannot live in the slots themselves.
//
// U64Map is not safe for concurrent use; the store guards it with the
// owning family's lock, exactly as it guarded the Go map it replaces.
type U64Map struct {
	keys []uint64
	vals []uint32
	n    int // entries resident in keys/vals (excludes the zero key)

	hasZero bool
	zeroVal uint32
}

// u64MapMinSlots keeps tiny tables from growing on every insert.
const u64MapMinSlots = 16

// NewU64Map returns a table pre-sized for hint entries (hint may be 0).
func NewU64Map(hint int) *U64Map {
	slots := u64MapMinSlots
	// Size so hint entries fit under the 90% ceiling.
	for slots*9 < hint*10 {
		slots *= 2
	}
	return &U64Map{
		keys: make([]uint64, slots),
		vals: make([]uint32, slots),
	}
}

// mix64 is the SplitMix64 finalizer: snowflake IDs share high bits and
// stride in low bits, so slot selection needs every input bit to disturb
// every output bit.
func mix64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Len reports the number of stored entries.
func (m *U64Map) Len() int {
	if m.hasZero {
		return m.n + 1
	}
	return m.n
}

// Get returns the value stored under key.
func (m *U64Map) Get(key uint64) (uint32, bool) {
	if key == 0 {
		return m.zeroVal, m.hasZero
	}
	mask := uint64(len(m.keys) - 1)
	i := mix64(key) & mask
	var dist uint64
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		// Empty slot, or a resident closer to home than we are: under
		// robin-hood ordering our key cannot live further down the chain.
		if k == 0 || probeDist(k, i, mask) < dist {
			return 0, false
		}
		i = (i + 1) & mask
		dist++
	}
}

// Put stores val under key, overwriting any previous value.
func (m *U64Map) Put(key uint64, val uint32) {
	if key == 0 {
		m.hasZero = true
		m.zeroVal = val
		return
	}
	// Grow at 90% occupancy, before the insert that would cross it.
	if (m.n+1)*10 > len(m.keys)*9 {
		m.grow()
	}
	m.insert(key, val)
}

// probeDist is how far slot i is from key k's ideal slot.
func probeDist(k uint64, i, mask uint64) uint64 {
	return (i - (mix64(k) & mask)) & mask
}

// insert places (key, val) with robin-hood displacement. Caller has
// ensured a free slot exists and key != 0.
func (m *U64Map) insert(key uint64, val uint32) {
	mask := uint64(len(m.keys) - 1)
	i := mix64(key) & mask
	var dist uint64
	for {
		k := m.keys[i]
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		}
		if k == key {
			m.vals[i] = val
			return
		}
		if d := probeDist(k, i, mask); d < dist {
			// The resident is richer (closer to home): it yields the slot
			// and the displaced entry continues probing from here.
			m.keys[i], key = key, m.keys[i]
			m.vals[i], val = val, m.vals[i]
			dist = d
		}
		i = (i + 1) & mask
		dist++
	}
}

// grow doubles the backing slots and reinserts every resident entry.
func (m *U64Map) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, len(oldKeys)*2)
	m.vals = make([]uint32, len(oldVals)*2)
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			m.insert(k, oldVals[i])
		}
	}
}

// HeapBytes reports the table's backing-array footprint.
func (m *U64Map) HeapBytes() int64 {
	return int64(cap(m.keys))*8 + int64(cap(m.vals))*4
}

// Compact rebuilds the table keeping only the entries whose key satisfies
// keep, into backing slices sized for the survivors. The table never
// supports deletion in place (robin-hood without tombstones); a caller
// that retires a key range wholesale — e.g. a dedup window sliding past a
// horizon — rebuilds instead, paying one pass for a table sized to what
// remains. Compact allocates only the two new backing slices.
func (m *U64Map) Compact(keep func(key uint64) bool) {
	survivors := 0
	for _, k := range m.keys {
		if k != 0 && keep(k) {
			survivors++
		}
	}
	slots := u64MapMinSlots
	for slots*9 < survivors*10 {
		slots *= 2
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, slots)
	m.vals = make([]uint32, slots)
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 && keep(k) {
			m.insert(k, oldVals[i])
		}
	}
	if m.hasZero && !keep(0) {
		m.hasZero = false
		m.zeroVal = 0
	}
}
