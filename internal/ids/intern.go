package ids

import "sync"

// internShards is a power of two so the shard index is a cheap mask.
const internShards = 16

// Interner deduplicates strings drawn from a bounded vocabulary (user
// IDs, group codes, language tags, message types, country codes) so hot
// decode paths allocate each distinct value once and map keys compare
// against a single backing array.
//
// Lifetime: an Interner never evicts. Tie its lifetime to the unit of
// work whose vocabulary it caches (a client, a study run) — a
// process-global interner would grow without bound across runs.
//
// Safe for concurrent use; the hit path takes only a shard RLock and
// performs zero allocations (including for InternBytes lookups, which
// rely on Go's map[string] byte-slice lookup optimization).
type Interner struct {
	shards [internShards]internShard
}

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	it := &Interner{}
	for i := range it.shards {
		it.shards[i].m = make(map[string]string, 64)
	}
	return it
}

func internHash(b []byte) uint32 {
	// FNV-1a; the inputs are short identifier-like strings.
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

func internHashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Intern returns the canonical copy of s, storing s itself on first
// sight.
func (it *Interner) Intern(s string) string {
	sh := &it.shards[internHashString(s)&(internShards-1)]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	c, ok = sh.m[s]
	if !ok {
		sh.m[s] = s
		c = s
	}
	sh.mu.Unlock()
	return c
}

// InternBytes returns the canonical string for b, copying b only the
// first time it is seen. The hit path does not allocate.
func (it *Interner) InternBytes(b []byte) string {
	sh := &it.shards[internHash(b)&(internShards-1)]
	sh.mu.RLock()
	c, ok := sh.m[string(b)] // no alloc: map lookup special case
	sh.mu.RUnlock()
	if ok {
		return c
	}
	s := string(b)
	sh.mu.Lock()
	c, ok = sh.m[s]
	if !ok {
		sh.m[s] = s
		c = s
	}
	sh.mu.Unlock()
	return c
}

// Len reports the number of distinct strings interned (diagnostics).
func (it *Interner) Len() int {
	n := 0
	for i := range it.shards {
		sh := &it.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
