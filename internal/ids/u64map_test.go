package ids

import (
	"math/rand"
	"testing"
)

// TestU64MapDifferential drives the compact table and a builtin map with
// the same randomized operation stream and checks they agree after every
// step — the correctness oracle the ISSUE requires for swapping the
// store's dedup maps.
func TestU64MapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewU64Map(0)
	ref := make(map[uint64]uint32)

	// Keys drawn from a small-ish space so overwrites happen, plus the
	// zero key and adversarial near-collision runs.
	const ops = 200_000
	for i := 0; i < ops; i++ {
		var k uint64
		switch rng.Intn(10) {
		case 0:
			k = 0 // out-of-band slot
		case 1, 2:
			k = uint64(rng.Intn(64)) // hot overwrite zone
		case 3:
			k = 1 << uint(rng.Intn(64)) // sparse high-bit keys
		default:
			k = rng.Uint64() >> uint(rng.Intn(32))
		}
		if rng.Intn(3) == 0 {
			got, ok := m.Get(k)
			want, wantOK := ref[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, got, ok, want, wantOK)
			}
		} else {
			v := uint32(rng.Int31())
			m.Put(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, m.Len(), len(ref))
		}
	}

	// Full sweep: every reference entry must be retrievable.
	for k, want := range ref {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
	// And a sample of absent keys must stay absent.
	for i := 0; i < 10_000; i++ {
		k := rng.Uint64() | 1<<63
		if _, seen := ref[k]; seen {
			continue
		}
		if _, ok := m.Get(k); ok {
			t.Fatalf("Get(%d) found a key that was never inserted", k)
		}
	}
}

func TestU64MapSequentialKeys(t *testing.T) {
	// Snowflake-style dense sequential IDs are the store's real workload;
	// they stress the probe sequence more than random keys do.
	m := NewU64Map(1000)
	const n = 500_000
	for i := uint64(1); i <= n; i++ {
		m.Put(i, uint32(i%1000))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := m.Get(i)
		if !ok || v != uint32(i%1000) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := m.Get(n + 1); ok {
		t.Fatal("found key past the inserted range")
	}
}

func TestU64MapPresize(t *testing.T) {
	m := NewU64Map(100)
	if got := len(m.keys); got < 112 { // 100/0.9 rounded up to a power of two
		t.Fatalf("NewU64Map(100) allocated %d slots; wants room for 100 under 90%% load", got)
	}
	m2 := NewU64Map(0)
	if len(m2.keys) != u64MapMinSlots {
		t.Fatalf("NewU64Map(0) allocated %d slots, want %d", len(m2.keys), u64MapMinSlots)
	}
}

func BenchmarkU64MapPut(b *testing.B) {
	m := NewU64Map(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i)+1, uint32(i))
	}
}

func BenchmarkU64MapGetHit(b *testing.B) {
	const n = 1 << 20
	m := NewU64Map(n)
	for i := uint64(1); i <= n; i++ {
		m.Put(i, uint32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i%n) + 1)
	}
}

// TestU64MapCompactDifferential rebuilds the table under a keep predicate
// and checks it against a builtin-map oracle: survivors keep their values,
// dropped keys are gone, and the backing shrinks to survivor size.
func TestU64MapCompactDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewU64Map(0)
	ref := make(map[uint64]uint32)
	for i := 0; i < 100_000; i++ {
		k := rng.Uint64() >> uint(rng.Intn(24))
		v := uint32(rng.Int31())
		m.Put(k, v)
		ref[k] = v
	}
	m.Put(0, 99)
	ref[0] = 99
	grown := m.HeapBytes()

	keep := func(k uint64) bool { return k%4 == 0 }
	m.Compact(keep)
	for k, v := range ref {
		if !keep(k) {
			delete(ref, k)
			continue
		}
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("after Compact: Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("after Compact: Len = %d, want %d", m.Len(), len(ref))
	}
	for i := 0; i < 10_000; i++ {
		k := rng.Uint64()
		if _, kept := ref[k]; kept {
			continue
		}
		if _, ok := m.Get(k); ok {
			t.Fatalf("Compact kept key %d it should have dropped", k)
		}
	}
	if shrunk := m.HeapBytes(); shrunk*2 > grown {
		t.Errorf("Compact to 1/4 of the keys only shrank %d -> %d bytes", grown, shrunk)
	}

	// Dropping the zero key goes through the out-of-band slot.
	m.Compact(func(k uint64) bool { return k != 0 })
	if _, ok := m.Get(0); ok {
		t.Error("Compact kept the zero key despite keep(0) == false")
	}

	// Inserts after a compact keep working (the robin-hood invariants
	// survive the rebuild).
	m.Put(12345, 1)
	if v, ok := m.Get(12345); !ok || v != 1 {
		t.Errorf("Put after Compact: Get = (%d,%v), want (1,true)", v, ok)
	}
}

// TestU64MapCompactAllocs pins Compact's allocation contract: the two new
// backing slices and nothing per entry. Each run keeps everything, so the
// rebuild is full-size every time.
func TestU64MapCompactAllocs(t *testing.T) {
	m := NewU64Map(4096)
	for i := uint64(1); i <= 4096; i++ {
		m.Put(i, uint32(i))
	}
	keepAll := func(uint64) bool { return true }
	allocs := testing.AllocsPerRun(20, func() {
		m.Compact(keepAll)
	})
	if allocs > 2 {
		t.Errorf("Compact allocated %.1f objects/op, want <= 2 (the backing slices)", allocs)
	}
	if m.Len() != 4096 {
		t.Fatalf("keep-all Compact lost entries: Len = %d", m.Len())
	}
}
