// Package retry is the one retry/backoff policy shared by every platform
// client in the pipeline: capped exponential backoff with deterministic
// jitter, Retry-After honoring for rate limits, an optional per-host
// circuit breaker, and waits that go through the virtual clock (or a
// tally) so no retry path ever sleeps wall-clock time.
//
// Jitter is drawn from a hash of (policy seed, request key, attempt)
// rather than a shared RNG stream: concurrent workers retrying different
// requests would otherwise interleave draws nondeterministically, and
// jittered waits advance the shared virtual clock during the join phase,
// where the clock is data-visible. Request keys must never include the
// host (test servers bind random ports).
package retry

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"msgscope/internal/simclock"
)

// ErrExhausted marks an error returned after the retry budget ran out.
// The platform error is wrapped alongside it, so errors.Is matches both.
var ErrExhausted = errors.New("retry: budget exhausted")

// Class classifies one attempt's outcome.
type Class int

// Outcome classes.
const (
	// Success: the operation completed; stop.
	Success Class = iota
	// Transient: a retryable failure (5xx, transport error, malformed
	// body); back off and retry up to MaxAttempts.
	Transient
	// Throttle: a rate-limit response; wait out RetryAfter (plus a pad)
	// and retry up to MaxWaits. Throttles do not consume attempts — a
	// flood burst is not a server failure.
	Throttle
	// Fatal: a definitive answer (dead invite, auth failure); stop
	// immediately and surface the error.
	Fatal
)

// Outcome is one attempt's result.
type Outcome struct {
	Class      Class
	Err        error
	RetryAfter time.Duration // Throttle only; 0 = unknown
}

// Ok reports a successful attempt.
func Ok() Outcome { return Outcome{Class: Success} }

// Retry reports a transient failure.
func Retry(err error) Outcome { return Outcome{Class: Transient, Err: err} }

// Throttled reports a rate-limit with the advertised wait.
func Throttled(after time.Duration, err error) Outcome {
	return Outcome{Class: Throttle, Err: err, RetryAfter: after}
}

// Fail reports a permanent failure.
func Fail(err error) Outcome { return Outcome{Class: Fatal, Err: err} }

// Waiter absorbs retry waits. Implementations either advance the virtual
// clock (join/collect phases, where waiting out a flood is part of the
// methodology) or just tally the wait (search/monitor phases, where the
// driver owns the clock and a mid-phase advance would shift data-visible
// horizons).
type Waiter interface {
	Wait(d time.Duration)
}

// AdvanceWaiter advances a simulated clock by each wait — the virtual
// analogue of sleeping.
type AdvanceWaiter struct {
	Clock *simclock.Sim
}

// Wait advances the clock by d.
func (w AdvanceWaiter) Wait(d time.Duration) {
	if d > 0 {
		w.Clock.Advance(d)
	}
}

// TallyWaiter counts waits without letting time pass. It is the default:
// phases that must not move the clock still record how long they would
// have waited.
type TallyWaiter struct {
	n     atomic.Int64
	total atomic.Int64
}

// Wait records d.
func (w *TallyWaiter) Wait(d time.Duration) {
	w.n.Add(1)
	w.total.Add(int64(d))
}

// Waits returns how many waits were absorbed.
func (w *TallyWaiter) Waits() int64 { return w.n.Load() }

// Total returns the summed durations absorbed.
func (w *TallyWaiter) Total() time.Duration { return time.Duration(w.total.Load()) }

// Breaker is a per-host circuit breaker shared by every client of one
// service. It never rejects a request — rejection would make outcomes
// depend on which worker tripped it first — it only *delays*: while open,
// each attempt first waits Cooldown (through the policy's Waiter), which
// in clock-advancing phases fast-forwards past the trouble.
type Breaker struct {
	Threshold int           // consecutive failures that open the breaker
	Cooldown  time.Duration // delay per attempt while open

	mu     sync.Mutex
	consec int
	open   bool
	opens  atomic.Int64
	closes atomic.Int64
}

// NewBreaker returns a breaker opening after threshold consecutive
// failures and delaying cooldown per attempt until a success closes it.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

// delay returns how long the next attempt must wait before running.
func (b *Breaker) delay() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		return b.Cooldown
	}
	return 0
}

// record feeds one attempt's result into the breaker state.
func (b *Breaker) record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.open {
			b.open = false
			b.closes.Add(1)
		}
		b.consec = 0
		return
	}
	b.consec++
	if !b.open && b.consec >= b.Threshold {
		b.open = true
		b.opens.Add(1)
	}
}

// Reset force-closes the breaker and clears the failure streak. The study
// driver calls it at phase boundaries: the streak at the end of a parallel
// phase depends on worker scheduling, and must not leak into the next
// (possibly serial, clock-advancing) phase. The cumulative Opens/Closes
// counters survive.
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.open = false
	b.consec = 0
	b.mu.Unlock()
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	return b.opens.Load()
}

// Closes returns how many times the breaker has closed after opening.
func (b *Breaker) Closes() int64 {
	if b == nil {
		return 0
	}
	return b.closes.Load()
}

// CountersMap snapshots the breaker's cumulative counters for a
// checkpoint. The open/consec streak is deliberately not captured: the
// driver resets it at every phase boundary, and checkpoints are only
// taken at boundaries, so the streak is always zero there.
func (b *Breaker) CountersMap() map[string]int64 {
	if b == nil {
		return nil
	}
	return map[string]int64{"opens": b.opens.Load(), "closes": b.closes.Load()}
}

// RestoreCounters reinstates the cumulative counters from a checkpoint.
func (b *Breaker) RestoreCounters(m map[string]int64) {
	if b == nil {
		return
	}
	b.opens.Store(m["opens"])
	b.closes.Store(m["closes"])
}

// Stats is a snapshot of one policy's counters.
type Stats struct {
	Attempts  int64 // operations attempted (including retries)
	Retries   int64 // transient retries performed
	Throttles int64 // rate-limit waits performed
	Exhausted int64 // calls that ran out of budget
}

// Policy is the shared retry policy. Fields may be tuned after New but
// must not change while calls are in flight.
type Policy struct {
	// MaxAttempts bounds tries per call for transient failures.
	MaxAttempts int
	// MaxWaits bounds rate-limit waits per call. Phases whose waiter
	// cannot advance the clock set this low: a clock-windowed flood burst
	// never ends while the clock is frozen.
	MaxWaits int
	// BaseDelay seeds the exponential backoff and pads Retry-After waits.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step.
	MaxDelay time.Duration
	// Seed decorrelates jitter across clients.
	Seed uint64
	// Waiter absorbs every wait (backoff, Retry-After, breaker cooldown).
	Waiter Waiter
	// Breaker, when set, is consulted before each attempt and fed every
	// result. Clients of the same host share one.
	Breaker *Breaker

	attempts  atomic.Int64
	retries   atomic.Int64
	throttles atomic.Int64
	exhausted atomic.Int64
}

// New returns a policy with the pipeline defaults and a TallyWaiter.
func New(seed uint64) *Policy {
	return &Policy{
		MaxAttempts: 4,
		MaxWaits:    200,
		BaseDelay:   500 * time.Millisecond,
		MaxDelay:    60 * time.Second,
		Seed:        seed,
		Waiter:      &TallyWaiter{},
	}
}

// Stats returns a snapshot of the counters.
func (p *Policy) Stats() Stats {
	return Stats{
		Attempts:  p.attempts.Load(),
		Retries:   p.retries.Load(),
		Throttles: p.throttles.Load(),
		Exhausted: p.exhausted.Load(),
	}
}

// StatsMap snapshots the policy's counters under stable names for a
// checkpoint.
func (p *Policy) StatsMap() map[string]int64 {
	return map[string]int64{
		"attempts":  p.attempts.Load(),
		"retries":   p.retries.Load(),
		"throttles": p.throttles.Load(),
		"exhausted": p.exhausted.Load(),
	}
}

// RestoreStats reinstates the counters from a checkpoint.
func (p *Policy) RestoreStats(m map[string]int64) {
	p.attempts.Store(m["attempts"])
	p.retries.Store(m["retries"])
	p.throttles.Store(m["throttles"])
	p.exhausted.Store(m["exhausted"])
}

func (p *Policy) wait(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Waiter != nil {
		p.Waiter.Wait(d)
	}
}

// Backoff returns the jittered wait before the given retry attempt
// (attempt 1 is the first retry): full jitter over [d/2, d) where d
// doubles from BaseDelay up to MaxDelay, drawn deterministically from
// (seed, key, attempt).
func (p *Policy) Backoff(key string, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(jitterHash(p.Seed, key, attempt)%uint64(half))
}

func jitterHash(seed uint64, key string, attempt int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64) ^ seed
	h ^= uint64(attempt)
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h
}

// Do runs op until it succeeds, fails permanently, or exhausts the
// budget. op receives the attempt number (0-based) so it can stamp
// requests via faults.Mark. Exhaustion errors wrap both ErrExhausted and
// the last platform error.
func (p *Policy) Do(key string, op func(attempt int) Outcome) error {
	attempt, waits := 0, 0
	for {
		if d := p.Breaker.delay(); d > 0 {
			p.wait(d)
		}
		p.attempts.Add(1)
		out := op(attempt)
		switch out.Class {
		case Success:
			p.Breaker.record(true)
			return nil
		case Fatal:
			// A definitive answer means the service is healthy.
			p.Breaker.record(true)
			return out.Err
		case Transient:
			p.Breaker.record(false)
			attempt++
			if attempt >= p.MaxAttempts {
				p.exhausted.Add(1)
				return fmt.Errorf("%w: %s failed %d attempts: %w", ErrExhausted, key, attempt, out.Err)
			}
			p.retries.Add(1)
			p.wait(p.Backoff(key, attempt))
		case Throttle:
			p.Breaker.record(false)
			waits++
			if waits > p.MaxWaits {
				p.exhausted.Add(1)
				return fmt.Errorf("%w: %s throttled %d times: %w", ErrExhausted, key, waits, out.Err)
			}
			p.throttles.Add(1)
			d := out.RetryAfter
			if d <= 0 {
				d = p.BaseDelay
			}
			// Pad the advertised wait: token buckets refill continuously,
			// and retrying at the exact boundary loses to rounding.
			p.wait(d + p.BaseDelay)
		default:
			return fmt.Errorf("retry: %s: invalid outcome class %d", key, out.Class)
		}
	}
}

// ParseRetryAfter reads a Retry-After header as a duration (0 when absent
// or unparseable; only the delta-seconds form is supported).
func ParseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}
