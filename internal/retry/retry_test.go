package retry

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"msgscope/internal/simclock"
)

var t0 = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

func TestDoSucceedsFirstTry(t *testing.T) {
	p := New(1)
	calls := 0
	if err := p.Do("GET /ok", func(int) Outcome { calls++; return Ok() }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	s := p.Stats()
	if s.Attempts != 1 || s.Retries != 0 || s.Exhausted != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := New(1)
	calls := 0
	err := p.Do("GET /flaky", func(attempt int) Outcome {
		if attempt != calls {
			t.Errorf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return Retry(errors.New("boom"))
		}
		return Ok()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if s := p.Stats(); s.Retries != 2 {
		t.Errorf("Retries = %d, want 2", s.Retries)
	}
}

func TestDoExhaustsTransientBudget(t *testing.T) {
	p := New(1)
	boom := errors.New("permanent 500")
	calls := 0
	err := p.Do("GET /dead", func(int) Outcome { calls++; return Retry(boom) })
	if calls != p.MaxAttempts {
		t.Errorf("calls = %d, want %d", calls, p.MaxAttempts)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Errorf("err %v does not wrap ErrExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err %v does not wrap the platform error", err)
	}
	if s := p.Stats(); s.Exhausted != 1 {
		t.Errorf("Exhausted = %d, want 1", s.Exhausted)
	}
}

func TestDoFatalStopsImmediately(t *testing.T) {
	p := New(1)
	dead := errors.New("invite revoked")
	calls := 0
	err := p.Do("GET /gone", func(int) Outcome { calls++; return Fail(dead) })
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, dead) || errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v", err)
	}
}

func TestDoThrottleWaitsAndRetries(t *testing.T) {
	p := New(1)
	w := &TallyWaiter{}
	p.Waiter = w
	floods := 0
	err := p.Do("POST /join", func(int) Outcome {
		if floods < 2 {
			floods++
			return Throttled(30*time.Second, errors.New("FLOOD_WAIT_30"))
		}
		return Ok()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Throttles != 2 {
		t.Errorf("Throttles = %d, want 2", s.Throttles)
	}
	// Each wait is RetryAfter + BaseDelay pad.
	if want := 2 * (30*time.Second + p.BaseDelay); w.Total() != want {
		t.Errorf("waited %v, want %v", w.Total(), want)
	}
	if w.Waits() != 2 {
		t.Errorf("Waits = %d, want 2", w.Waits())
	}
}

func TestDoThrottleExhaustsMaxWaits(t *testing.T) {
	p := New(1)
	p.MaxWaits = 3
	flood := errors.New("still flooded")
	calls := 0
	err := p.Do("GET /burst", func(int) Outcome { calls++; return Throttled(time.Second, flood) })
	if calls != p.MaxWaits+1 {
		t.Errorf("calls = %d, want %d", calls, p.MaxWaits+1)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, flood) {
		t.Errorf("err = %v", err)
	}
}

func TestDoThrottleZeroRetryAfterUsesBaseDelay(t *testing.T) {
	p := New(1)
	w := &TallyWaiter{}
	p.Waiter = w
	first := true
	if err := p.Do("GET /x", func(int) Outcome {
		if first {
			first = false
			return Throttled(0, errors.New("429 no header"))
		}
		return Ok()
	}); err != nil {
		t.Fatal(err)
	}
	if want := p.BaseDelay + p.BaseDelay; w.Total() != want {
		t.Errorf("waited %v, want %v", w.Total(), want)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := New(42)
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.BaseDelay
		for i := 1; i < attempt && d < p.MaxDelay; i++ {
			d *= 2
		}
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
		got := p.Backoff("GET /k", attempt)
		if got < d/2 || got >= d {
			t.Errorf("attempt %d: backoff %v outside [%v,%v)", attempt, got, d/2, d)
		}
		if got != p.Backoff("GET /k", attempt) {
			t.Errorf("attempt %d: backoff not deterministic", attempt)
		}
	}
	// Different keys and seeds decorrelate.
	if p.Backoff("GET /a", 1) == p.Backoff("GET /b", 1) && p.Backoff("GET /a", 2) == p.Backoff("GET /b", 2) {
		t.Error("jitter identical across keys on consecutive attempts")
	}
	q := New(43)
	if p.Backoff("GET /a", 1) == q.Backoff("GET /a", 1) && p.Backoff("GET /a", 2) == q.Backoff("GET /a", 2) {
		t.Error("jitter identical across seeds on consecutive attempts")
	}
}

func TestAdvanceWaiterAdvancesSimClock(t *testing.T) {
	clock := simclock.New(t0)
	w := AdvanceWaiter{Clock: clock}
	w.Wait(90 * time.Second)
	if got := clock.Now(); !got.Equal(t0.Add(90 * time.Second)) {
		t.Errorf("clock = %v, want +90s", got)
	}
	w.Wait(0) // must not panic (Sim panics on non-positive Advance)
	w.Wait(-time.Second)
	if got := clock.Now(); !got.Equal(t0.Add(90 * time.Second)) {
		t.Errorf("clock moved on non-positive wait: %v", got)
	}
}

func TestBreakerOpensDelaysAndCloses(t *testing.T) {
	b := NewBreaker(3, 30*time.Second)
	p := New(1)
	p.Breaker = b
	w := &TallyWaiter{}
	p.Waiter = w

	boom := errors.New("down")
	// 3 transient failures in one call open the breaker (MaxAttempts 4).
	p.MaxAttempts = 4
	if err := p.Do("GET /down", func(attempt int) Outcome {
		if attempt < 3 {
			return Retry(boom)
		}
		return Ok()
	}); err != nil {
		t.Fatal(err)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	// The final (successful) attempt ran while open, so it paid the
	// cooldown delay, then closed the breaker.
	if b.Closes() != 1 {
		t.Errorf("Closes = %d, want 1", b.Closes())
	}
	if b.delay() != 0 {
		t.Error("breaker still delaying after close")
	}
	var sawCooldown bool
	// TallyWaiter recorded backoffs + one 30s cooldown; the cooldown is the
	// only wait ≥ 30s (backoffs cap at BaseDelay*4 = 2s here).
	if w.Total() >= 30*time.Second {
		sawCooldown = true
	}
	if !sawCooldown {
		t.Errorf("no cooldown delay observed; total waited %v", w.Total())
	}
}

func TestBreakerResetClosesWithoutCountingClose(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	b.record(false)
	b.record(false)
	if b.Opens() != 1 || b.delay() != time.Minute {
		t.Fatalf("breaker should be open: opens=%d delay=%v", b.Opens(), b.delay())
	}
	b.Reset()
	if b.delay() != 0 {
		t.Error("Reset left breaker open")
	}
	if b.Closes() != 0 {
		t.Error("Reset must not count as a close transition")
	}
	// Streak cleared: one more failure must not reopen.
	b.record(false)
	if b.Opens() != 1 {
		t.Error("single failure after Reset reopened breaker")
	}
}

func TestNilBreakerSafe(t *testing.T) {
	var b *Breaker
	if b.delay() != 0 {
		t.Error("nil delay")
	}
	b.record(true)
	b.record(false)
	b.Reset()
	if b.Opens() != 0 || b.Closes() != 0 {
		t.Error("nil counters")
	}
}

func TestBreakerSuccessClearsStreak(t *testing.T) {
	b := NewBreaker(3, time.Second)
	b.record(false)
	b.record(false)
	b.record(true)
	b.record(false)
	b.record(false)
	if b.Opens() != 0 {
		t.Error("success did not clear the consecutive-failure streak")
	}
}

func TestDoInvalidOutcomeClass(t *testing.T) {
	p := New(1)
	err := p.Do("GET /bad", func(int) Outcome { return Outcome{Class: Class(42)} })
	if err == nil {
		t.Fatal("want error for invalid class")
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		v    string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"1.5", 1500 * time.Millisecond},
		{"-3", 0},
		{"soon", 0},
	} {
		h := http.Header{}
		if tc.v != "" {
			h.Set("Retry-After", tc.v)
		}
		if got := ParseRetryAfter(h); got != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestStatsCountAcrossCalls(t *testing.T) {
	p := New(9)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("GET /n/%d", i)
		_ = p.Do(key, func(attempt int) Outcome {
			if attempt == 0 && i%2 == 0 {
				return Retry(errors.New("transient"))
			}
			return Ok()
		})
	}
	s := p.Stats()
	if s.Retries != 3 {
		t.Errorf("Retries = %d, want 3", s.Retries)
	}
	if s.Attempts != 8 {
		t.Errorf("Attempts = %d, want 8", s.Attempts)
	}
}
