// Package checkpoint defines the on-disk run manifest that makes a study
// resumable. A checkpoint directory holds append-only JSONL record logs
// (owned by internal/store) plus one manifest.json written atomically at
// every phase boundary. The manifest is the linearization point: a resume
// trusts exactly the log prefixes the manifest records and truncates
// anything a crash appended after it.
//
// The manifest file wraps the manifest payload with a SHA-256 checksum:
//
//	{"checksum":"<hex sha256 of payload>","manifest":{...}}
//
// so a truncated or bit-flipped file is always rejected with a clear
// error, never silently resumed from. Writes go through a temp file,
// fsync, rename, and a directory fsync, so a crash mid-write leaves the
// previous manifest intact.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current manifest format version. A manifest written by a
// different version is rejected (the format is internal to one build).
const Version = 1

// ManifestFile is the manifest's file name inside a checkpoint directory.
const ManifestFile = "manifest.json"

// Sentinel errors a resume can branch on.
var (
	// ErrCorrupt wraps any integrity failure: unparsable file, missing or
	// mismatched checksum, wrong version.
	ErrCorrupt = errors.New("checkpoint: corrupt manifest")
	// ErrOptionsMismatch is returned by callers validating OptionsHash
	// against a rebuilt configuration.
	ErrOptionsMismatch = errors.New("checkpoint: options hash mismatch")
)

// LogState pins one record log's durable prefix: a resume truncates the
// file to Bytes and must read exactly Records lines from it.
type LogState struct {
	Bytes   int64 `json:"bytes"`
	Records int64 `json:"records"`
}

// CollectorState is the collector's cursor and counter state.
type CollectorState struct {
	// SinceIDs holds the per-search-term since_id cursors.
	SinceIDs map[string]uint64 `json:"since_ids"`
	// SocialID is the secondary-network polling cursor.
	SocialID uint64 `json:"social_id"`
	// Stats holds the collector's counters by stable name.
	Stats map[string]int64 `json:"stats"`
}

// JoinerState is the join phase's progress: which groups were joined, in
// join order (collection iterates this order), and the WhatsApp account
// rotation cursor.
type JoinerState struct {
	// Joined maps a platform name to joined group codes in join order.
	Joined map[string][]string `json:"joined,omitempty"`
	// WACursor counts joins on the active WhatsApp account; WAAccount is
	// its index in the pool.
	WACursor  int              `json:"wa_cursor"`
	WAAccount int              `json:"wa_account"`
	Stats     map[string]int64 `json:"stats"`
}

// TwitterState is the Twitter service's mutable request-side state. The
// published-tweet cursors are re-derived by replaying PublishUpTo to the
// checkpoint clock; only the search rate limiter and the request sequence
// need to be carried.
type TwitterState struct {
	RateTokens           float64 `json:"rate_tokens"`
	RateLastFillUnixNano int64   `json:"rate_last_fill"`
	ReqSeq               uint64  `json:"req_seq"`
}

// AccountJoin is one (group, time) membership entry of a platform account.
type AccountJoin struct {
	Code       string `json:"code"`
	AtUnixNano int64  `json:"at"`
}

// AccountState is one messaging-platform account's mutable server-side
// state. Banned is WhatsApp-only; Budget/LastRefill are the Telegram and
// Discord flood buckets.
type AccountState struct {
	Name               string        `json:"name"`
	Banned             bool          `json:"banned,omitempty"`
	Budget             float64       `json:"budget,omitempty"`
	LastRefillUnixNano int64         `json:"last_refill,omitempty"`
	Joined             []AccountJoin `json:"joined,omitempty"`
}

// SpillSegment pins one sealed column-segment file (internal/store
// segment format) by name within the spill directory.
type SpillSegment struct {
	Name  string `json:"name"`
	Rows  int64  `json:"rows"`
	Bytes int64  `json:"bytes"`
}

// SpillFamily pins one record family's sealed prefix: the first Rows rows
// live in Segments, in order.
type SpillFamily struct {
	Rows     int64          `json:"rows"`
	Segments []SpillSegment `json:"segments"`
}

// SpillState pins the store's spill tier at a checkpoint, so a resume
// re-maps the sealed segments instead of re-ingesting their rows. Only the
// append-only families appear here; observation segments are rebuilt from
// the event log (see internal/store DESIGN.md §16).
type SpillState struct {
	Budget   int64                  `json:"budget"`
	Families map[string]SpillFamily `json:"families,omitempty"`
}

// Manifest is one checkpoint: everything a resume needs beyond the record
// logs themselves.
type Manifest struct {
	Version     int    `json:"version"`
	OptionsHash string `json:"options_hash"`
	// Options carries the caller's run options verbatim (opaque to this
	// package), so `msgscope run -resume DIR` needs no other flags.
	Options json.RawMessage `json:"options,omitempty"`

	// Seq numbers checkpoints within a run; Day and Step locate the
	// completed pipeline step ("drain", "monitor", "join", "done").
	Seq  int    `json:"seq"`
	Day  int    `json:"day"`
	Step string `json:"step"`
	// ClockUnixNano is the simulated clock at the boundary.
	ClockUnixNano int64 `json:"clock"`
	// PublishedUpToUnixNano is the horizon through which tweets had been
	// published — and fanned out to the live streams — at the boundary. It
	// can trail ClockUnixNano: the join phase advances the clock (flood
	// waits) without publishing. A resume must publish only up to this
	// horizon before reopening streams, so the tweets in between are
	// delivered to the fresh subscriptions exactly as the uninterrupted
	// run delivered them.
	PublishedUpToUnixNano int64 `json:"published_up_to"`

	// Logs pins each record log's durable prefix by file name.
	Logs map[string]LogState `json:"logs"`

	// Spill pins the store's sealed column segments (nil when the run has
	// no memory budget; omitted so pre-spill manifests decode unchanged).
	Spill *SpillState `json:"spill,omitempty"`

	Collector    CollectorState   `json:"collector"`
	MonitorStats map[string]int64 `json:"monitor_stats"`
	Joiner       JoinerState      `json:"joiner"`

	Twitter TwitterState `json:"twitter"`
	// Accounts maps a platform name ("whatsapp", "telegram", "discord")
	// to its account states, sorted by name.
	Accounts map[string][]AccountState `json:"accounts,omitempty"`

	// FaultEpoch is the injector's phase counter; FaultCounts its
	// per-kind tallies.
	FaultEpoch  uint64           `json:"fault_epoch"`
	FaultCounts map[string]int64 `json:"fault_counts,omitempty"`
	// Breakers holds per-host circuit-breaker lifetime counters
	// ({"opens","closes"}); the live open/consecutive-failure state is
	// not carried because every phase boundary resets it.
	Breakers map[string]map[string]int64 `json:"breakers,omitempty"`
	// Policies holds per-client retry-policy counters
	// ({"attempts","retries","throttles","exhausted"}) by stable client
	// name.
	Policies map[string]map[string]int64 `json:"policies,omitempty"`
}

// envelope is the checksum wrapper actually stored on disk.
type envelope struct {
	Checksum string          `json:"checksum"`
	Manifest json.RawMessage `json:"manifest"`
}

// Write atomically replaces dir's manifest with m: the payload is written
// to a temp file in dir, fsynced, renamed over ManifestFile, and the
// directory entry is fsynced. After Write returns, a crash at any point
// leaves either the old or the new manifest readable, never a torn one.
func Write(dir string, m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		Checksum: hex.EncodeToString(sum[:]),
		Manifest: payload,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: encoding envelope: %w", err)
	}
	f, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(dir, ManifestFile))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing manifest: %w", werr)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read loads and verifies dir's manifest. Any integrity failure —
// unreadable JSON, missing or mismatched checksum, truncation, version
// skew — returns an error wrapping ErrCorrupt.
func Read(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, ManifestFile), err)
	}
	return m, nil
}

// Decode parses and verifies one manifest envelope. It is the fuzzed
// surface: every corruption must surface as an error wrapping ErrCorrupt,
// never as a silently partial manifest.
func Decode(data []byte) (*Manifest, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Checksum == "" || len(env.Manifest) == 0 {
		return nil, fmt.Errorf("%w: missing checksum or payload", ErrCorrupt)
	}
	want, err := hex.DecodeString(env.Checksum)
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("%w: malformed checksum", ErrCorrupt)
	}
	sum := sha256.Sum256(env.Manifest)
	if !hmacEqual(sum[:], want) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(env.Manifest, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, m.Version, Version)
	}
	if m.Step == "" {
		return nil, fmt.Errorf("%w: missing step", ErrCorrupt)
	}
	return &m, nil
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
