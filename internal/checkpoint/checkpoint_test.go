package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleManifest populates every field, so round-trip and corruption tests
// exercise the full surface.
func sampleManifest() *Manifest {
	return &Manifest{
		Version:               Version,
		OptionsHash:           "a8f5f167f44f4964e6c998dee827110c",
		Options:               json.RawMessage(`{"Seed":42,"Scale":0.01,"Days":3}`),
		Seq:                   7,
		Day:                   2,
		Step:                  "drain",
		ClockUnixNano:         1586304000000000000,
		PublishedUpToUnixNano: 1586300400000000000,
		Logs: map[string]LogState{
			"log.tweets.jsonl": {Bytes: 81235, Records: 412},
			"log.events.jsonl": {Bytes: 932, Records: 14},
		},
		Collector: CollectorState{
			SinceIDs: map[string]uint64{"chat.whatsapp.com": 99182, "t.me": 88231},
			SocialID: 123,
			Stats:    map[string]int64{"search_tweets": 310, "stream_tweets": 102},
		},
		MonitorStats: map[string]int64{"probes": 512, "alive_probes": 488},
		Joiner: JoinerState{
			Joined:    map[string][]string{"telegram": {"abc", "def"}},
			WACursor:  3,
			WAAccount: 1,
			Stats:     map[string]int64{"attempted": 5, "joined": 2},
		},
		Twitter: TwitterState{RateTokens: 17.5, RateLastFillUnixNano: 1586303999000000000, ReqSeq: 4412},
		Accounts: map[string][]AccountState{
			"whatsapp": {{Name: "wa-0", Banned: true, Joined: []AccountJoin{{Code: "abc", AtUnixNano: 1}}}},
			"telegram": {{Name: "tg-0", Budget: 3.25, LastRefillUnixNano: 2}},
		},
		FaultEpoch:  19,
		FaultCounts: map[string]int64{"server-error": 12, "timeout": 3},
		Breakers:    map[string]map[string]int64{"twitter": {"opens": 1, "closes": 1}},
		Policies:    map[string]map[string]int64{"collector": {"attempts": 900, "retries": 12}},
	}
}

// encode wraps m in a valid checksum envelope, the way Write stores it.
func encode(t testing.TB, m *Manifest) []byte {
	t.Helper()
	payload, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{Checksum: hex.EncodeToString(sum[:]), Manifest: payload})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleManifest()
	if err := Write(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWriteReplacesAtomically overwrites an existing manifest and checks
// no temp file debris survives a successful write.
func TestWriteReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	first := sampleManifest()
	if err := Write(dir, first); err != nil {
		t.Fatal(err)
	}
	second := sampleManifest()
	second.Seq, second.Step = 8, "monitor"
	if err := Write(dir, second); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 8 || got.Step != "monitor" {
		t.Errorf("read seq=%d step=%q after overwrite, want 8/monitor", got.Seq, got.Step)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != ManifestFile {
			t.Errorf("leftover file %q after Write", e.Name())
		}
	}
}

// TestDecodeRejectsTruncation cuts the stored envelope at every length and
// requires a clear ErrCorrupt, never a silently partial manifest.
func TestDecodeRejectsTruncation(t *testing.T) {
	data := encode(t, sampleManifest())
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode(data[:%d]) = %v, want ErrCorrupt", i, err)
		}
	}
}

// TestDecodeRejectsBitFlips flips one bit in every byte of the stored
// envelope. The payload is covered by the checksum and the checksum by its
// own syntax, so no single flip may yield a valid manifest.
func TestDecodeRejectsBitFlips(t *testing.T) {
	data := encode(t, sampleManifest())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d (%q): err = %v, want ErrCorrupt", i, data[i], err)
		}
	}
}

// TestDecodeRejectsSplicedPayload keeps a valid checksum but swaps in a
// different (well-formed) payload: the checksum mismatch must be caught.
func TestDecodeRejectsSplicedPayload(t *testing.T) {
	good := sampleManifest()
	payload, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	tampered := sampleManifest()
	tampered.Day = 0 // an attacker-or-bitrot rewind
	spliced, err := json.Marshal(tampered)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(envelope{Checksum: hex.EncodeToString(sum[:]), Manifest: spliced})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("spliced payload: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	m := sampleManifest()
	m.Version = Version + 1
	if _, err := Decode(encode(t, m)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsMissingStep(t *testing.T) {
	m := sampleManifest()
	m.Step = ""
	if _, err := Decode(encode(t, m)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing step: err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read of truncated file: err = %v, want ErrCorrupt", err)
	}
}

// FuzzManifestDecode fuzzes the resume entry point. Invariants: Decode
// either fails wrapping ErrCorrupt (a clear rejection) or returns a
// manifest that survives a re-encode/re-decode round trip byte-exactly —
// there is no third outcome where corrupt input yields usable state.
func FuzzManifestDecode(f *testing.F) {
	valid := encode(f, sampleManifest())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"checksum":"00","manifest":{}}`))
	f.Add([]byte(`{"checksum":"zz","manifest":{"version":1,"step":"drain"}}`))
	minimal, _ := json.Marshal(&Manifest{Version: Version, Step: "init"})
	sum := sha256.Sum256(minimal)
	env, _ := json.Marshal(envelope{Checksum: hex.EncodeToString(sum[:]), Manifest: minimal})
	f.Add(env)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		payload, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		sum := sha256.Sum256(payload)
		env, err := json.Marshal(envelope{Checksum: hex.EncodeToString(sum[:]), Manifest: payload})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Decode(env)
		if err != nil {
			t.Fatalf("re-decoding accepted manifest: %v", err)
		}
		payload2, err := json.Marshal(m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(payload2) != string(payload) {
			t.Fatalf("round trip not stable:\nfirst  %s\nsecond %s", payload, payload2)
		}
	})
}
