// Package jsonx provides allocation-light JSON helpers for the hot
// encode/decode paths of the simulated services and their clients.
//
// The append-style encoder produces output byte-identical to
// encoding/json with its default options (HTML escaping on), so
// handlers can switch between the two without changing the wire format.
// The cursor decoder walks a []byte in place: object keys and string
// values are surfaced as transient sub-slices of the input (valid only
// until the next decoder call) so callers can intern or convert without
// an intermediate string allocation. Malformed input yields an error,
// never a panic — the fault injector serves truncated bodies on purpose
// and the retry layer depends on a clean error surface.
package jsonx

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// ---------------------------------------------------------------------------
// Buffer pool

const maxPooledBuf = 1 << 20 // don't retain >1MB scratch buffers

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a reusable byte buffer with length 0. Release it with
// PutBuf when no data reachable from it is retained.
func GetBuf() *[]byte {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutBuf returns a buffer to the pool. Oversized buffers are dropped so
// one huge response does not pin memory forever.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	bufPool.Put(bp)
}

// ReadInto reads r to EOF appending into (*bp)[:0], growing *bp as
// needed, and returns the filled slice. The grown backing array stays in
// *bp so a pooled buffer keeps its capacity for the next use.
func ReadInto(bp *[]byte, r io.Reader) ([]byte, error) {
	b := (*bp)[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err != nil {
			*bp = b
			if err == io.EOF {
				return b, nil
			}
			return b, err
		}
	}
}

// ---------------------------------------------------------------------------
// Encoder

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string literal (including the
// surrounding quotes), using the same escaping rules as encoding/json
// with HTML escaping enabled: ", \, control characters, <, >, &, and
// U+2028/U+2029 are escaped; invalid UTF-8 becomes U+FFFD.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeASCII[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// control chars, <, >, &
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// safeASCII marks ASCII bytes that need no escaping under
// encoding/json's default (HTML-escaping) encoder.
var safeASCII = func() (t [utf8.RuneSelf]bool) {
	for i := 0x20; i < utf8.RuneSelf; i++ {
		t[i] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// AppendUint appends the decimal representation of v.
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendInt appends the decimal representation of v.
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// ---------------------------------------------------------------------------
// Decoder

// Dec is a cursor over a complete JSON document held in memory. The
// zero value is empty; point it at input with Reset. Methods advance the
// cursor and return typed errors on malformed input. Byte slices
// returned by ObjEach keys and StrBytes alias either the input or an
// internal scratch buffer and are only valid until the next call.
type Dec struct {
	b       []byte
	i       int
	scratch []byte
}

// Reset points the decoder at b and rewinds it.
func (d *Dec) Reset(b []byte) {
	d.b = b
	d.i = 0
}

var (
	errUnexpectedEnd = errors.New("jsonx: unexpected end of input")
)

func (d *Dec) errAt(what string) error {
	if d.i >= len(d.b) {
		return errUnexpectedEnd
	}
	return fmt.Errorf("jsonx: %s at offset %d (%q)", what, d.i, d.b[d.i])
}

func (d *Dec) ws() {
	for d.i < len(d.b) {
		switch d.b[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *Dec) expect(c byte) error {
	d.ws()
	if d.i >= len(d.b) || d.b[d.i] != c {
		return d.errAt("expected '" + string(c) + "'")
	}
	d.i++
	return nil
}

// More reports whether any non-whitespace input remains.
func (d *Dec) More() bool {
	d.ws()
	return d.i < len(d.b)
}

// End verifies only whitespace remains after the decoded value.
func (d *Dec) End() error {
	if d.More() {
		return d.errAt("trailing data")
	}
	return nil
}

// Obj decodes an object, calling field for each key. The key slice is
// transient. field must consume exactly one value.
func (d *Dec) Obj(field func(key []byte) error) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == '}' {
		d.i++
		return nil
	}
	for {
		d.ws()
		key, err := d.strBytes()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		d.ws()
		if d.i >= len(d.b) {
			return errUnexpectedEnd
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case '}':
			d.i++
			return nil
		default:
			return d.errAt("expected ',' or '}'")
		}
	}
}

// Arr decodes an array, calling elem once per element. elem must
// consume exactly one value.
func (d *Dec) Arr(elem func() error) error {
	if err := d.expect('['); err != nil {
		return err
	}
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == ']' {
		d.i++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		d.ws()
		if d.i >= len(d.b) {
			return errUnexpectedEnd
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case ']':
			d.i++
			return nil
		default:
			return d.errAt("expected ',' or ']'")
		}
	}
}

// strBytes decodes a string literal, returning a transient byte view.
func (d *Dec) strBytes() ([]byte, error) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.i
	for d.i < len(d.b) {
		c := d.b[d.i]
		if c == '"' {
			s := d.b[start:d.i]
			d.i++
			return s, nil
		}
		if c == '\\' {
			return d.strBytesSlow(start)
		}
		if c < 0x20 {
			return nil, d.errAt("control character in string")
		}
		d.i++
	}
	return nil, errUnexpectedEnd
}

// strBytesSlow handles strings containing escapes, unescaping into the
// decoder's scratch buffer. d.i points at the first backslash; start is
// the offset just after the opening quote.
func (d *Dec) strBytesSlow(start int) ([]byte, error) {
	d.scratch = append(d.scratch[:0], d.b[start:d.i]...)
	for d.i < len(d.b) {
		c := d.b[d.i]
		switch {
		case c == '"':
			d.i++
			return d.scratch, nil
		case c == '\\':
			d.i++
			if d.i >= len(d.b) {
				return nil, errUnexpectedEnd
			}
			switch e := d.b[d.i]; e {
			case '"', '\\', '/':
				d.scratch = append(d.scratch, e)
				d.i++
			case 'b':
				d.scratch = append(d.scratch, '\b')
				d.i++
			case 'f':
				d.scratch = append(d.scratch, '\f')
				d.i++
			case 'n':
				d.scratch = append(d.scratch, '\n')
				d.i++
			case 'r':
				d.scratch = append(d.scratch, '\r')
				d.i++
			case 't':
				d.scratch = append(d.scratch, '\t')
				d.i++
			case 'u':
				r, err := d.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					if d.i+1 < len(d.b) && d.b[d.i] == '\\' && d.b[d.i+1] == 'u' {
						save := d.i
						d.i++ // past '\\'; hex4 steps past the 'u'
						r2, err := d.hex4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							r = dec
						} else {
							d.i = save
							r = utf8.RuneError
						}
					} else {
						r = utf8.RuneError
					}
				}
				d.scratch = utf8.AppendRune(d.scratch, r)
			default:
				return nil, d.errAt("invalid escape")
			}
		case c < 0x20:
			return nil, d.errAt("control character in string")
		default:
			d.scratch = append(d.scratch, c)
			d.i++
		}
	}
	return nil, errUnexpectedEnd
}

// hex4 consumes four hex digits after "\u" (d.i points at the 'u').
func (d *Dec) hex4() (rune, error) {
	d.i++ // past 'u'
	if d.i+4 > len(d.b) {
		return 0, errUnexpectedEnd
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := d.b[d.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, d.errAt("invalid \\u escape")
		}
	}
	d.i += 4
	return r, nil
}

// StrBytes decodes a string value as a transient byte view — intern or
// copy before the next decoder call if the value must be retained.
func (d *Dec) StrBytes() ([]byte, error) {
	return d.strBytes()
}

// Str decodes a string value into a freshly allocated string.
func (d *Dec) Str() (string, error) {
	b, err := d.strBytes()
	return string(b), err
}

// Uint decodes a non-negative integer value.
func (d *Dec) Uint() (uint64, error) {
	d.ws()
	start := d.i
	for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
		d.i++
	}
	if d.i == start {
		return 0, d.errAt("expected digit")
	}
	if c := d.peek(); c == '.' || c == 'e' || c == 'E' {
		return 0, d.errAt("expected integer")
	}
	// Inline digit fold: strconv.ParseUint would heap-allocate the
	// string conversion because its error paths retain the argument.
	var v uint64
	for _, c := range d.b[start:d.i] {
		digit := uint64(c - '0')
		if v > (^uint64(0)-digit)/10 {
			d.i = start
			return 0, d.errAt("integer overflow")
		}
		v = v*10 + digit
	}
	return v, nil
}

// Int decodes a (possibly negative) integer value.
func (d *Dec) Int() (int64, error) {
	d.ws()
	neg := false
	if d.i < len(d.b) && d.b[d.i] == '-' {
		neg = true
		d.i++
	}
	u, err := d.Uint()
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(u), nil
	}
	return int64(u), nil
}

// Bool decodes true or false.
func (d *Dec) Bool() (bool, error) {
	d.ws()
	if d.hasPrefix("true") {
		d.i += 4
		return true, nil
	}
	if d.hasPrefix("false") {
		d.i += 5
		return false, nil
	}
	return false, d.errAt("expected bool")
}

// Null consumes a null value if one is next and reports whether it did.
func (d *Dec) Null() bool {
	d.ws()
	if d.hasPrefix("null") {
		d.i += 4
		return true
	}
	return false
}

func (d *Dec) hasPrefix(s string) bool {
	if d.i+len(s) > len(d.b) {
		return false
	}
	return string(d.b[d.i:d.i+len(s)]) == s
}

func (d *Dec) peek() byte {
	if d.i < len(d.b) {
		return d.b[d.i]
	}
	return 0
}

// Skip consumes one value of any type.
func (d *Dec) Skip() error {
	d.ws()
	if d.i >= len(d.b) {
		return errUnexpectedEnd
	}
	switch c := d.b[d.i]; {
	case c == '{':
		return d.Obj(func([]byte) error { return d.Skip() })
	case c == '[':
		return d.Arr(func() error { return d.Skip() })
	case c == '"':
		_, err := d.strBytes()
		return err
	case c == 't' || c == 'f':
		_, err := d.Bool()
		return err
	case c == 'n':
		if d.Null() {
			return nil
		}
		return d.errAt("expected null")
	case c == '-' || (c >= '0' && c <= '9'):
		return d.skipNumber()
	default:
		return d.errAt("unexpected value")
	}
}

func (d *Dec) skipNumber() error {
	start := d.i
	bad := func() error { d.i = start; return d.errAt("malformed number") }
	if d.peek() == '-' {
		d.i++
	}
	switch c := d.peek(); {
	case c == '0':
		d.i++
	case c >= '1' && c <= '9':
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	default:
		return bad()
	}
	if d.peek() == '.' {
		d.i++
		if c := d.peek(); c < '0' || c > '9' {
			return bad()
		}
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	}
	if c := d.peek(); c == 'e' || c == 'E' {
		d.i++
		if c := d.peek(); c == '+' || c == '-' {
			d.i++
		}
		if c := d.peek(); c < '0' || c > '9' {
			return bad()
		}
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	}
	return nil
}
