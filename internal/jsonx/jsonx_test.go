package jsonx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAppendStringMatchesEncodingJSON proves the append encoder is
// byte-identical to encoding/json's default (HTML-escaping) string
// encoder across representative and adversarial inputs.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain ascii words",
		`quote " backslash \ slash /`,
		"tabs\tnewlines\ncarriage\rreturns",
		"control \x00 \x01 \x1f chars",
		"html <b>&amp;</b> specials",
		"unicode: héllo wörld ☺ 日本語",
		"line sep \u2028 para sep \u2029 end",
		"invalid utf8: \xff\xfe ok",
		"mixed < \xffX> tail",
		strings.Repeat("a", 300),
		"https://t.me/joinchat/AbCd_123?x=1&y=<2>",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendNumbers(t *testing.T) {
	if got := string(AppendUint(nil, 18446744073709551615)); got != "18446744073709551615" {
		t.Errorf("AppendUint = %s", got)
	}
	if got := string(AppendInt(nil, -42)); got != "-42" {
		t.Errorf("AppendInt = %s", got)
	}
}

// TestDecRoundTrip decodes a document produced by encoding/json and
// checks every field arrives intact.
func TestDecRoundTrip(t *testing.T) {
	type inner struct {
		Name string `json:"name"`
		N    int64  `json:"n"`
	}
	doc := struct {
		ID    uint64   `json:"id"`
		Text  string   `json:"text"`
		Flag  bool     `json:"flag"`
		Tags  []string `json:"tags"`
		Sub   inner    `json:"sub"`
		Extra any      `json:"extra"`
	}{
		ID:   9007199254740993,
		Text: "body with \"escapes\" and   and ünicode",
		Flag: true,
		Tags: []string{"a", "b<c>", ""},
		Sub:  inner{Name: "x&y", N: -77},
		Extra: map[string]any{
			"nested": []any{1.5, nil, true, "s"},
		},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	var d Dec
	d.Reset(raw)
	var (
		id          uint64
		text        string
		flag        bool
		tags        []string
		subName     string
		subN        int64
		sawExtra    bool
	)
	err = d.Obj(func(key []byte) error {
		switch string(key) {
		case "id":
			var e error
			id, e = d.Uint()
			return e
		case "text":
			var e error
			text, e = d.Str()
			return e
		case "flag":
			var e error
			flag, e = d.Bool()
			return e
		case "tags":
			return d.Arr(func() error {
				s, e := d.Str()
				tags = append(tags, s)
				return e
			})
		case "sub":
			return d.Obj(func(k2 []byte) error {
				switch string(k2) {
				case "name":
					var e error
					subName, e = d.Str()
					return e
				case "n":
					var e error
					subN, e = d.Int()
					return e
				}
				return d.Skip()
			})
		case "extra":
			sawExtra = true
			return d.Skip()
		}
		return d.Skip()
	})
	if err != nil {
		t.Fatalf("Obj: %v", err)
	}
	if err := d.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	if id != doc.ID || text != doc.Text || flag != doc.Flag {
		t.Errorf("scalars: id=%d text=%q flag=%v", id, text, flag)
	}
	if len(tags) != 3 || tags[1] != "b<c>" {
		t.Errorf("tags = %q", tags)
	}
	if subName != "x&y" || subN != -77 {
		t.Errorf("sub = %q %d", subName, subN)
	}
	if !sawExtra {
		t.Error("extra not visited")
	}
}

// TestDecMalformed feeds the decoder the same shapes the fault injector
// produces (truncated bodies) plus assorted garbage: every one must
// return an error, never panic or succeed.
func TestDecMalformed(t *testing.T) {
	cases := []string{
		`{"truncated`, // exactly what faults.Malformed writes
		``,
		`{`,
		`{"a"`,
		`{"a":`,
		`{"a":1`,
		`{"a":1,`,
		`[1,2`,
		`[1,,2]`,
		`{"a":1}trailing`,
		`"unterminated`,
		`"bad \q escape"`,
		`{"a":tru}`,
		`{"a":nul}`,
		`{"a":--1}`,
		`{"a":1e}`,
		`{1:2}`,
		`{"a":1 "b":2}`,
	}
	for _, in := range cases {
		var d Dec
		d.Reset([]byte(in))
		if err := d.Skip(); err == nil {
			if err2 := d.End(); err2 == nil {
				t.Errorf("input %q: decoded without error", in)
			}
		}
	}
}

// TestDecEscapes covers the slow unescape path, including surrogate
// pairs and lone surrogates.
func TestDecEscapes(t *testing.T) {
	cases := map[string]string{
		`"a\nb\tc\\d\"e\/f"`: "a\nb\tc\\d\"e/f",
		`"\u0041\u00e9"`:      "A\u00e9",
		`"\ud83d\ude00"`:      "\U0001f600",
		`"\ud83d"`:            "\ufffd",
		`"\u2028"`:            "\u2028",
		`"pre\b\fpost"`:       "pre\b\fpost",
	}
	for in, want := range cases {
		var d Dec
		d.Reset([]byte(in))
		got, err := d.Str()
		if err != nil {
			t.Errorf("Str(%s): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Str(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestReadInto(t *testing.T) {
	bp := GetBuf()
	defer PutBuf(bp)
	payload := strings.Repeat("xyz", 5000)
	got, err := ReadInto(bp, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("ReadInto: %d bytes, want %d", len(got), len(payload))
	}
	// Reuse: the second read must reuse the grown buffer.
	got2, err := ReadInto(bp, strings.NewReader("short"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "short" {
		t.Fatalf("ReadInto reuse: %q", got2)
	}
}

// TestUintNoAlloc pins the hot integer decode to zero allocations.
func TestUintNoAlloc(t *testing.T) {
	in := []byte(`1234567890123456789`)
	var d Dec
	allocs := testing.AllocsPerRun(200, func() {
		d.Reset(in)
		if _, err := d.Uint(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Uint allocates %.1f times per run, want 0", allocs)
	}
}
