package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecorderAttributesPhases(t *testing.T) {
	r := NewRecorder()
	r.Reset()

	// Allocate something attributable, then capture it.
	sink = make([]byte, 1<<20)
	r.Capture("alpha")
	sink = make([]byte, 1<<20)
	r.Capture("beta")
	sink = make([]byte, 1<<20)
	r.Capture("alpha")

	phases := r.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	if phases[0].Phase != "alpha" || phases[1].Phase != "beta" {
		t.Fatalf("order = %q, %q", phases[0].Phase, phases[1].Phase)
	}
	if phases[0].Captures != 2 || phases[1].Captures != 1 {
		t.Fatalf("captures = %d, %d", phases[0].Captures, phases[1].Captures)
	}
	if phases[0].AllocBytes < 2<<20 {
		t.Errorf("alpha bytes = %d, want >= 2MiB", phases[0].AllocBytes)
	}
	if phases[1].AllocBytes < 1<<20 {
		t.Errorf("beta bytes = %d, want >= 1MiB", phases[1].AllocBytes)
	}
	if phases[0].AllocObjects == 0 {
		t.Error("alpha objects = 0")
	}
}

var sink []byte

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Reset()
	r.Capture("x") // must not panic
	if got := r.Phases(); got != nil {
		t.Fatalf("nil recorder Phases = %v", got)
	}
}

func TestCaptureAllocs(t *testing.T) {
	r := NewRecorder()
	r.Reset()
	r.Capture("warm")
	allocs := testing.AllocsPerRun(100, func() {
		r.Capture("warm")
	})
	// One map-free, histogram-free metrics.Read per call: steady state
	// must be allocation-free.
	if allocs > 0 {
		t.Errorf("Capture allocates %.1f per run, want 0", allocs)
	}
}

func TestTakeSample(t *testing.T) {
	s := TakeSample()
	if s.TotalAllocBytes == 0 || s.Mallocs == 0 {
		t.Fatalf("empty sample: %+v", s)
	}
}

func TestFilesCapture(t *testing.T) {
	dir := t.TempDir()
	cfg := FileConfig{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "run.trace"),
	}
	f, err := StartFiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sink = append(sink[:0], make([]byte, 128)...)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty", p)
		}
	}
	// Second Stop is a no-op.
	if err := f.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestNoopFiles(t *testing.T) {
	f, err := StartFiles(FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilF *Files
	if err := nilF.Stop(); err != nil {
		t.Fatal(err)
	}
}
