// Package prof is the opt-in profiling layer of the pipeline: pprof
// file capture for commands, a cheap runtime-metrics sampler, and a
// per-phase allocation recorder the core study drives at its phase
// boundaries. Everything is off (and free) by default — a nil *Recorder
// is a valid receiver whose Capture is a no-op, so the hot loop carries
// no conditionals and no overhead unless profiling was requested.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// File capture (pprof / trace)

// FileConfig names the profile artifacts to write. Empty fields disable
// the corresponding capture.
type FileConfig struct {
	CPUProfile string // pprof CPU profile, started immediately
	MemProfile string // pprof heap profile, written at Stop
	Trace      string // runtime execution trace, started immediately
}

// Files is an in-flight file capture session.
type Files struct {
	cfg     FileConfig
	cpuFile *os.File
	trFile  *os.File
}

// StartFiles begins CPU profiling and/or tracing per cfg. Call Stop to
// finish captures and write the heap profile. A zero cfg yields a valid
// no-op session.
func StartFiles(cfg FileConfig) (*Files, error) {
	f := &Files{cfg: cfg}
	if cfg.CPUProfile != "" {
		file, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		f.cpuFile = file
	}
	if cfg.Trace != "" {
		file, err := os.Create(cfg.Trace)
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		if err := trace.Start(file); err != nil {
			file.Close()
			f.Stop()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		f.trFile = file
	}
	return f, nil
}

// Stop ends the CPU profile and trace (if running) and writes the heap
// profile (if configured). Safe to call once on any session, including
// partially started ones.
func (f *Files) Stop() error {
	if f == nil {
		return nil
	}
	var firstErr error
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.cpuFile = nil
	}
	if f.trFile != nil {
		trace.Stop()
		if err := f.trFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.trFile = nil
	}
	if f.cfg.MemProfile != "" {
		file, err := os.Create(f.cfg.MemProfile)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("prof: mem profile: %w", err)
			}
		} else {
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: mem profile: %w", err)
			}
			if err := file.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		f.cfg.MemProfile = ""
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Runtime-metrics sampler

// Sample is a point-in-time snapshot of the runtime's memory counters.
type Sample struct {
	HeapAllocBytes  uint64        // live heap bytes
	TotalAllocBytes uint64        // cumulative allocated bytes
	Mallocs         uint64        // cumulative allocated objects
	GCCycles        uint32        // completed GC cycles
	GCPauseTotal    time.Duration // cumulative stop-the-world pause
}

// TakeSample reads the runtime's memory statistics. It stops the world
// briefly — call it at coarse boundaries (run start/end, HTTP probes),
// not in per-request paths.
func TakeSample() Sample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Sample{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		GCCycles:        ms.NumGC,
		GCPauseTotal:    time.Duration(ms.PauseTotalNs),
	}
}

// ---------------------------------------------------------------------------
// Per-phase allocation recorder

// PhaseStat aggregates the allocation deltas attributed to one named
// pipeline phase across all its Capture calls.
type PhaseStat struct {
	Phase        string
	Captures     int    // number of windows attributed to this phase
	AllocBytes   uint64 // bytes allocated during those windows
	AllocObjects uint64 // objects allocated during those windows
	GCCycles     uint64 // GC cycles completed during those windows
}

// recorder metric set: cheap to read (no histogram, no stop-the-world).
var recMetricNames = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// Recorder attributes allocation activity to named pipeline phases. The
// core study calls Capture(phase) when a phase's work completes; the
// delta of the runtime's cumulative counters since the previous Capture
// is credited to that phase. Reads use runtime/metrics with a fixed,
// histogram-free sample set, so a Capture costs microseconds and
// allocates nothing after the first call.
//
// A nil *Recorder is valid: Capture and Reset are no-ops, Phases
// returns nil. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    [len(recMetricNames)]uint64
	primed  bool
	order   []string
	stats   map[string]*PhaseStat

	stageOrder []string
	stages     map[string]*StageStat
}

// NewRecorder returns an empty recorder. The first Capture (or an
// explicit Reset) establishes the baseline reading.
func NewRecorder() *Recorder {
	r := &Recorder{stats: make(map[string]*PhaseStat)}
	r.samples = make([]metrics.Sample, len(recMetricNames))
	for i, name := range recMetricNames {
		r.samples[i].Name = name
	}
	return r
}

func (r *Recorder) readLocked() (vals [len(recMetricNames)]uint64) {
	metrics.Read(r.samples)
	for i := range r.samples {
		if r.samples[i].Value.Kind() == metrics.KindUint64 {
			vals[i] = r.samples[i].Value.Uint64()
		}
	}
	return vals
}

// Reset establishes a fresh baseline without attributing the elapsed
// window to any phase (call at run start).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.last = r.readLocked()
	r.primed = true
}

// Capture attributes everything allocated since the previous Capture
// (or Reset) to phase. The first call on an unprimed recorder only
// establishes the baseline.
func (r *Recorder) Capture(phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.readLocked()
	if !r.primed {
		r.last = now
		r.primed = true
		return
	}
	st := r.stats[phase]
	if st == nil {
		st = &PhaseStat{Phase: phase}
		r.stats[phase] = st
		r.order = append(r.order, phase)
	}
	st.Captures++
	st.AllocBytes += now[0] - r.last[0]
	st.AllocObjects += now[1] - r.last[1]
	st.GCCycles += now[2] - r.last[2]
	r.last = now
}

// ---------------------------------------------------------------------------
// Analysis-stage wall timer

// StageStat aggregates the wall time spent in one named analysis stage
// (e.g. "lda", "aggregate", "figures") across all its timed sections.
// Unlike PhaseStat's allocation windows — which assume one phase runs at a
// time — stage sections time themselves independently, so they are safe
// under the engine's parallel experiment fan-out.
type StageStat struct {
	Stage string
	Calls int
	Wall  time.Duration
}

// StartStage begins timing one section of the named analysis stage and
// returns the function that ends it. A nil receiver returns a no-op, so
// callers can time unconditionally:
//
//	defer r.StartStage("aggregate")()
func (r *Recorder) StartStage(stage string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.stages == nil {
			r.stages = make(map[string]*StageStat)
		}
		st := r.stages[stage]
		if st == nil {
			st = &StageStat{Stage: stage}
			r.stages[stage] = st
			r.stageOrder = append(r.stageOrder, stage)
		}
		st.Calls++
		st.Wall += d
	}
}

// Stages returns the per-stage wall totals in first-finish order. Nil
// receivers and recorders without timed stages return nil.
func (r *Recorder) Stages() []StageStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StageStat, 0, len(r.stageOrder))
	for _, name := range r.stageOrder {
		out = append(out, *r.stages[name])
	}
	return out
}

// Phases returns the per-phase totals in first-capture order.
func (r *Recorder) Phases() []PhaseStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseStat, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.stats[name])
	}
	return out
}
