package prof

import (
	"runtime"
	"testing"
)

func TestRSSMetrics(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RSS metrics read /proc; linux only")
	}
	rss := RSSBytes()
	peak := PeakRSSBytes()
	if rss <= 0 {
		t.Fatalf("RSSBytes() = %d, want > 0", rss)
	}
	if peak < rss {
		t.Fatalf("PeakRSSBytes() = %d below current RSS %d", peak, rss)
	}
	if live := HeapLiveBytes(); live <= 0 {
		t.Fatalf("HeapLiveBytes() = %d, want > 0", live)
	}
	// ResetPeakRSS may be denied (e.g. sandboxed); both outcomes are
	// valid — only a successful reset must leave a sane watermark.
	if ResetPeakRSS() {
		if p := PeakRSSBytes(); p <= 0 {
			t.Fatalf("PeakRSSBytes() = %d after reset, want > 0", p)
		}
	}
}
