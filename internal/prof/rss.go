package prof

// Process-level memory metrics for the spill benchmarks: the Go heap
// counters cannot see mmap-backed segments or page-cache residency, so the
// memory-budget acceptance gate reads the kernel's view of the process
// (peak RSS) next to the runtime's view of the live heap. Linux-only by
// nature; other platforms report zero and the benchmarks skip the gate.

import (
	"bytes"
	"os"
	"runtime/metrics"
	"strconv"
)

// PeakRSSBytes reports the process's peak resident set size (VmHWM from
// /proc/self/status), or 0 where unavailable.
func PeakRSSBytes() int64 {
	return procStatusKB("VmHWM:") * 1024
}

// RSSBytes reports the process's current resident set size (VmRSS), or 0
// where unavailable.
func RSSBytes() int64 {
	return procStatusKB("VmRSS:") * 1024
}

func procStatusKB(field string) int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	i := bytes.Index(data, []byte(field))
	if i < 0 {
		return 0
	}
	line := data[i+len(field):]
	if j := bytes.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	line = bytes.TrimSuffix(bytes.TrimSpace(line), []byte(" kB"))
	n, err := strconv.ParseInt(string(bytes.TrimSpace(line)), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ResetPeakRSS clears the kernel's peak-RSS watermark (writes "5" to
// /proc/self/clear_refs), so a benchmark can measure the peak of one
// region rather than of the process lifetime. Reports whether the reset
// took effect; callers fall back to whole-process peaks when it did not.
func ResetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// HeapLiveBytes reports the bytes occupied by live heap objects
// (/memory/classes/heap/objects from runtime/metrics) — the number the
// spill budget actually constrains, next to the RSS the kernel sees.
func HeapLiveBytes() int64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}
