package discord

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/simworld"
)

func TestAppendInviteResponseMatchesEncodingJSON(t *testing.T) {
	g := &simworld.Group{GuildID: 712345678901234567, Title: `Crypto <Signals> & "Friends"`, CreatorIdx: 41}
	for _, withCounts := range []bool{false, true} {
		resp := map[string]any{
			"code": "abc123",
			"guild": map[string]any{
				"id":   strconv.FormatUint(g.GuildID, 10),
				"name": g.Title,
			},
			"inviter": map[string]any{
				"id":       strconv.Itoa(g.CreatorIdx + 1),
				"username": "creator41",
			},
		}
		if withCounts {
			resp["approximate_member_count"] = 512
			resp["approximate_presence_count"] = 37
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(resp); err != nil {
			t.Fatal(err)
		}
		got := appendInviteResponse(nil, "abc123", g, withCounts, 512, 37)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("with_counts=%v:\n got %s\nwant %s", withCounts, got, want.Bytes())
		}
	}
}

func TestAppendMessageOutMatchesEncodingJSON(t *testing.T) {
	type msgOut struct {
		ID     string `json:"id"`
		Author struct {
			ID       string `json:"id"`
			Username string `json:"username"`
		} `json:"author"`
		Timestamp string `json:"timestamp"`
		MsgType   string `json:"x_type"`
		Content   string `json:"content,omitempty"`
	}
	cases := []struct {
		mid, uid uint64
		username string
		sentAt   time.Time
		msgType  string
		content  string
	}{
		{1, 2, "ana", time.Date(2019, 4, 1, 13, 37, 42, 0, time.UTC), "text", "hello <all> & \"co\""},
		{18446744073709551615, 3, "bob", time.Date(2020, 12, 31, 23, 59, 59, 123000000, time.UTC), "url", "https://x.y/z?a=1&b=2"},
		{7, 8, "cleo", time.Date(2019, 6, 15, 0, 0, 0, 987654321, time.UTC), "image", ""},
		{9, 10, "dan", time.Date(2019, 6, 15, 6, 30, 0, 100, time.UTC), "text", "tiny frac"},
	}
	for _, tc := range cases {
		var m msgOut
		m.ID = strconv.FormatUint(tc.mid, 10)
		m.Author.ID = strconv.FormatUint(tc.uid, 10)
		m.Author.Username = tc.username
		m.Timestamp = tc.sentAt.Format(time.RFC3339Nano)
		m.MsgType = tc.msgType
		m.Content = tc.content
		want, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got := appendMessageOut(nil, tc.mid, tc.uid, tc.username, tc.sentAt, tc.msgType, tc.content)
		if !bytes.Equal(got, want) {
			t.Errorf("message %d:\n got %s\nwant %s", tc.mid, got, want)
		}
	}
}

func TestAppendRFC3339NanoMatchesFormat(t *testing.T) {
	times := []time.Time{
		time.Date(2019, 4, 1, 13, 37, 42, 0, time.UTC),
		time.Date(2019, 4, 1, 13, 37, 42, 500000000, time.UTC),
		time.Date(2019, 4, 1, 13, 37, 42, 1, time.UTC),
		time.Date(999, 1, 1, 0, 0, 0, 0, time.UTC), // 3-digit year: fallback path
		time.Date(2019, 4, 1, 13, 37, 42, 0, time.FixedZone("X", 5*3600)),
	}
	for _, at := range times {
		want := `"` + at.Format(time.RFC3339Nano) + `"`
		if got := appendRFC3339Nano(nil, at); string(got) != want {
			t.Errorf("appendRFC3339Nano(%v) = %s, want %s", at, got, want)
		}
	}
}

func TestParseMessagePageRoundTrip(t *testing.T) {
	sent := time.Date(2019, 4, 1, 13, 37, 42, 123000000, time.UTC)
	body := append(appendMessageOut([]byte(`[`), 101, 202, "ana", sent, "text", "oi"), ',')
	body = append(appendMessageOut(body, 103, 204, "bob", sent.Add(time.Second), "join", ""), ']', '\n')
	in := ids.NewInterner()
	got, count, err := parseMessagePage(body, in)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || len(got) != 2 {
		t.Fatalf("count=%d len=%d", count, len(got))
	}
	want := []Message{
		{ID: 101, AuthorID: 202, Author: "ana", SentAt: sent, Type: "text", Content: "oi"},
		{ID: 103, AuthorID: 204, Author: "bob", SentAt: sent.Add(time.Second), Type: "join"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("message %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	// A null page (nil slice server-side) is zero messages.
	if msgs, count, err := parseMessagePage([]byte("null\n"), in); err != nil || count != 0 || msgs != nil {
		t.Fatalf("null page: msgs=%v count=%d err=%v", msgs, count, err)
	}
}

func TestParseMessagePageMalformed(t *testing.T) {
	in := ids.NewInterner()
	for _, body := range []string{`{"truncated`, `[{"id":"1"`, `[] extra`, ``, `[{"id":"x"}]`} {
		if _, _, err := parseMessagePage([]byte(body), in); err == nil {
			t.Errorf("body %q parsed without error", body)
		}
	}
}

func TestParseRFC3339Fallbacks(t *testing.T) {
	for _, s := range []string{
		"2019-04-01T13:37:42Z",
		"2019-04-01T13:37:42.5Z",
		"2019-04-01T13:37:42.000000001Z",
		"2019-04-01T13:37:42+05:30",
	} {
		want, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parseRFC3339([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("parseRFC3339(%s) = %v, want %v", s, got, want)
		}
	}
	if _, err := parseRFC3339([]byte("garbage")); err == nil {
		t.Error("garbage timestamp accepted")
	}
}
