package discord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/httpx"
	"msgscope/internal/ids"
	"msgscope/internal/retry"
)

// Sentinel errors.
var (
	ErrUnknownInvite = errors.New("discord: unknown invite")    // expired or revoked
	ErrGuildCap      = errors.New("discord: guild cap reached") // 100 guilds per account
	ErrBotForbidden  = errors.New("discord: bots cannot join")  // bot join restriction
	ErrMissingAccess = errors.New("discord: missing access")    // not a member
	ErrRateLimited   = errors.New("discord: rate limited")
)

// Invite is the metadata of one invite, fetchable without joining.
type Invite struct {
	Code      string
	GuildID   uint64
	GuildName string
	Members   int // approximate_member_count
	Online    int // approximate_presence_count
	InviterID string
	CreatedAt time.Time // decoded from the guild snowflake
}

// Client drives the REST API for one account.
type Client struct {
	BaseURL string
	Account string
	HTTP    *http.Client
	// Retry is the shared retry policy: 429s wait out the advertised
	// retry_after through the policy's Waiter, 5xx back off, API error
	// codes surface immediately as sentinels.
	Retry *retry.Policy
}

// NewClient returns a client bound to an account. Prefix the account name
// with "bot:" to act as a bot application (which may not join guilds).
func NewClient(baseURL, account string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Account: account,
		HTTP:    httpx.NewClient(),
		Retry:   retry.New(accountSeed(account)),
	}
}

// accountSeed hashes the account name (FNV-1a) into a jitter seed.
func accountSeed(account string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(account); i++ {
		h ^= uint64(account[i])
		h *= 1099511628211
	}
	return h
}

func (c *Client) do(ctx context.Context, method, path string, v any) error {
	return c.Retry.Do(method+" "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-DC-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if v == nil {
				io.Copy(io.Discard, resp.Body)
				return retry.Ok()
			}
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				return retry.Retry(fmt.Errorf("discord: decoding response: %w", err))
			}
			return retry.Ok()
		}
		var e struct {
			Message    string  `json:"message"`
			Code       int     `json:"code"`
			RetryAfter float64 `json:"retry_after"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		io.Copy(io.Discard, resp.Body)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			return retry.Throttled(time.Duration(e.RetryAfter*float64(time.Second)), ErrRateLimited)
		case e.Code == 10006:
			return retry.Fail(ErrUnknownInvite)
		case e.Code == 30001:
			return retry.Fail(ErrGuildCap)
		case e.Code == 20001:
			return retry.Fail(ErrBotForbidden)
		case e.Code == 50001:
			return retry.Fail(ErrMissingAccess)
		case resp.StatusCode >= 500:
			return retry.Retry(fmt.Errorf("discord: status %d: %s", resp.StatusCode, e.Message))
		default:
			return retry.Fail(fmt.Errorf("discord: status %d code %d: %s", resp.StatusCode, e.Code, e.Message))
		}
	})
}

type inviteJSON struct {
	Code  string `json:"code"`
	Guild struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	} `json:"guild"`
	Inviter struct {
		ID string `json:"id"`
	} `json:"inviter"`
	Members int `json:"approximate_member_count"`
	Online  int `json:"approximate_presence_count"`
}

func decodeInvite(j inviteJSON) (Invite, error) {
	gid, err := strconv.ParseUint(j.Guild.ID, 10, 64)
	if err != nil {
		return Invite{}, fmt.Errorf("discord: bad guild id %q", j.Guild.ID)
	}
	return Invite{
		Code:      j.Code,
		GuildID:   gid,
		GuildName: j.Guild.Name,
		Members:   j.Members,
		Online:    j.Online,
		InviterID: j.Inviter.ID,
		CreatedAt: ids.SnowflakeTime(ids.DiscordEpochMS, gid),
	}, nil
}

// ProbeInvite fetches invite metadata (with counts) without joining.
func (c *Client) ProbeInvite(ctx context.Context, code string) (Invite, error) {
	var j inviteJSON
	if err := c.do(ctx, http.MethodGet, "/api/v9/invites/"+url.PathEscape(code)+"?with_counts=true", &j); err != nil {
		return Invite{}, err
	}
	return decodeInvite(j)
}

// Join accepts an invite, joining its guild.
func (c *Client) Join(ctx context.Context, code string) (Invite, error) {
	var j inviteJSON
	if err := c.do(ctx, http.MethodPost, "/api/v9/invites/"+url.PathEscape(code), &j); err != nil {
		return Invite{}, err
	}
	gid, err := strconv.ParseUint(j.Guild.ID, 10, 64)
	if err != nil {
		return Invite{}, fmt.Errorf("discord: bad guild id %q", j.Guild.ID)
	}
	return Invite{Code: j.Code, GuildID: gid, GuildName: j.Guild.Name,
		CreatedAt: ids.SnowflakeTime(ids.DiscordEpochMS, gid)}, nil
}

// Channel is one guild text channel.
type Channel struct {
	ID   uint64
	Name string
}

// Channels lists a joined guild's channels.
func (c *Client) Channels(ctx context.Context, guildID uint64) ([]Channel, error) {
	var out []struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v9/guilds/"+strconv.FormatUint(guildID, 10)+"/channels", &out); err != nil {
		return nil, err
	}
	chs := make([]Channel, len(out))
	for i, ch := range out {
		id, err := strconv.ParseUint(ch.ID, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("discord: bad channel id %q", ch.ID)
		}
		chs[i] = Channel{ID: id, Name: ch.Name}
	}
	return chs, nil
}

// Message is one channel message.
type Message struct {
	ID       uint64
	AuthorID uint64
	Author   string
	SentAt   time.Time
	Type     string
	Content  string
}

// MessagePager walks a channel's history backwards via the `before`
// snowflake cursor. The cursor survives rate-limit errors, so the caller
// can wait and call Next again without losing position.
type MessagePager struct {
	c      *Client
	chID   uint64
	before uint64
	done   bool
}

// MessagePager returns a pager over the channel's full history.
func (c *Client) MessagePager(channelID uint64) *MessagePager {
	return &MessagePager{c: c, chID: channelID}
}

// MessagePagerBefore returns a pager anchored at the given snowflake
// cursor instead of the service clock's now, so the history window does not
// shift when concurrent collectors advance virtual time.
func (c *Client) MessagePagerBefore(channelID, before uint64) *MessagePager {
	return &MessagePager{c: c, chID: channelID, before: before}
}

// Done reports whether the history is exhausted.
func (p *MessagePager) Done() bool { return p.done }

// Next fetches one page (newest remaining first).
func (p *MessagePager) Next(ctx context.Context) ([]Message, error) {
	if p.done {
		return nil, nil
	}
	path := "/api/v9/channels/" + strconv.FormatUint(p.chID, 10) + "/messages?limit=100"
	if p.before != 0 {
		path += "&before=" + strconv.FormatUint(p.before, 10)
	}
	var page []struct {
		ID     string `json:"id"`
		Author struct {
			ID       string `json:"id"`
			Username string `json:"username"`
		} `json:"author"`
		Timestamp string `json:"timestamp"`
		MsgType   string `json:"x_type"`
		Content   string `json:"content"`
	}
	if err := p.c.do(ctx, http.MethodGet, path, &page); err != nil {
		return nil, err
	}
	out := make([]Message, 0, len(page))
	for _, m := range page {
		id, err := strconv.ParseUint(m.ID, 10, 64)
		if err != nil {
			return out, fmt.Errorf("discord: bad message id %q", m.ID)
		}
		aid, err := strconv.ParseUint(m.Author.ID, 10, 64)
		if err != nil {
			return out, fmt.Errorf("discord: bad author id %q", m.Author.ID)
		}
		at, err := time.Parse(time.RFC3339Nano, m.Timestamp)
		if err != nil {
			return out, fmt.Errorf("discord: bad timestamp %q", m.Timestamp)
		}
		out = append(out, Message{
			ID:       id,
			AuthorID: aid,
			Author:   m.Author.Username,
			SentAt:   at.UTC(),
			Type:     m.MsgType,
			Content:  m.Content,
		})
		p.before = id
	}
	if len(page) < 100 {
		p.done = true
	}
	return out, nil
}

// Messages pages backwards through a channel's entire history, up to
// maxMessages (0 = unlimited).
func (c *Client) Messages(ctx context.Context, channelID uint64, maxMessages int) ([]Message, error) {
	var out []Message
	p := c.MessagePager(channelID)
	for !p.Done() {
		page, err := p.Next(ctx)
		if err != nil {
			return out, err
		}
		for _, m := range page {
			out = append(out, m)
			if maxMessages > 0 && len(out) >= maxMessages {
				return out, nil
			}
		}
	}
	return out, nil
}

// Profile is a user profile with connected accounts.
type Profile struct {
	UserID   uint64
	Username string
	Linked   []string // connected platform names
}

// UserProfile fetches a user's profile; the connected_accounts list is the
// linked-account exposure of Table 5.
func (c *Client) UserProfile(ctx context.Context, userID uint64) (Profile, error) {
	var out struct {
		User struct {
			ID       string `json:"id"`
			Username string `json:"username"`
		} `json:"user"`
		Connected []struct {
			Type string `json:"type"`
		} `json:"connected_accounts"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v9/users/"+strconv.FormatUint(userID, 10)+"/profile", &out); err != nil {
		return Profile{}, err
	}
	p := Profile{Username: out.User.Username}
	p.UserID, _ = strconv.ParseUint(out.User.ID, 10, 64)
	for _, c := range out.Connected {
		p.Linked = append(p.Linked, c.Type)
	}
	return p, nil
}
