package discord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/httpx"
	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/retry"
)

// Sentinel errors.
var (
	ErrUnknownInvite = errors.New("discord: unknown invite")    // expired or revoked
	ErrGuildCap      = errors.New("discord: guild cap reached") // 100 guilds per account
	ErrBotForbidden  = errors.New("discord: bots cannot join")  // bot join restriction
	ErrMissingAccess = errors.New("discord: missing access")    // not a member
	ErrRateLimited   = errors.New("discord: rate limited")
)

// Invite is the metadata of one invite, fetchable without joining.
type Invite struct {
	Code      string
	GuildID   uint64
	GuildName string
	Members   int // approximate_member_count
	Online    int // approximate_presence_count
	InviterID string
	CreatedAt time.Time // decoded from the guild snowflake
}

// Client drives the REST API for one account.
type Client struct {
	BaseURL string
	Account string
	HTTP    *http.Client
	// Retry is the shared retry policy: 429s wait out the advertised
	// retry_after through the policy's Waiter, 5xx back off, API error
	// codes surface immediately as sentinels.
	Retry *retry.Policy
	// interner deduplicates repeated vocabulary (usernames, message
	// types) for this client's lifetime.
	interner *ids.Interner
}

// NewClient returns a client bound to an account. Prefix the account name
// with "bot:" to act as a bot application (which may not join guilds).
func NewClient(baseURL, account string) *Client {
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		Account:  account,
		HTTP:     httpx.NewClient(),
		Retry:    retry.New(accountSeed(account)),
		interner: ids.NewInterner(),
	}
}

// accountSeed hashes the account name (FNV-1a) into a jitter seed.
func accountSeed(account string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(account); i++ {
		h ^= uint64(account[i])
		h *= 1099511628211
	}
	return h
}

func (c *Client) do(ctx context.Context, method, path string, v any) error {
	if v == nil {
		return c.doParse(ctx, method, path, nil)
	}
	return c.doParse(ctx, method, path, func(body []byte) error {
		return json.Unmarshal(body, v)
	})
}

// doParse performs one authenticated call through the retry policy,
// reading 200 bodies into a pooled buffer handed to parse. parse must
// not retain the slice; a parse error makes the attempt transient.
// Error bodies keep the encoding/json path — they are rare and carry
// the sentinel mapping.
func (c *Client) doParse(ctx context.Context, method, path string, parse func(body []byte) error) error {
	return c.Retry.Do(method+" "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-DC-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if parse == nil {
				io.Copy(io.Discard, resp.Body)
				return retry.Ok()
			}
			bp := jsonx.GetBuf()
			body, err := jsonx.ReadInto(bp, io.LimitReader(resp.Body, 16<<20))
			if err != nil {
				jsonx.PutBuf(bp)
				return retry.Retry(fmt.Errorf("discord: reading response: %w", err))
			}
			err = parse(body)
			jsonx.PutBuf(bp)
			if err != nil {
				return retry.Retry(fmt.Errorf("discord: decoding response: %w", err))
			}
			return retry.Ok()
		}
		var e struct {
			Message    string  `json:"message"`
			Code       int     `json:"code"`
			RetryAfter float64 `json:"retry_after"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		io.Copy(io.Discard, resp.Body)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			return retry.Throttled(time.Duration(e.RetryAfter*float64(time.Second)), ErrRateLimited)
		case e.Code == 10006:
			return retry.Fail(ErrUnknownInvite)
		case e.Code == 30001:
			return retry.Fail(ErrGuildCap)
		case e.Code == 20001:
			return retry.Fail(ErrBotForbidden)
		case e.Code == 50001:
			return retry.Fail(ErrMissingAccess)
		case resp.StatusCode >= 500:
			return retry.Retry(fmt.Errorf("discord: status %d: %s", resp.StatusCode, e.Message))
		default:
			return retry.Fail(fmt.Errorf("discord: status %d code %d: %s", resp.StatusCode, e.Code, e.Message))
		}
	})
}

type inviteJSON struct {
	Code  string `json:"code"`
	Guild struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	} `json:"guild"`
	Inviter struct {
		ID string `json:"id"`
	} `json:"inviter"`
	Members int `json:"approximate_member_count"`
	Online  int `json:"approximate_presence_count"`
}

func decodeInvite(j inviteJSON) (Invite, error) {
	gid, err := strconv.ParseUint(j.Guild.ID, 10, 64)
	if err != nil {
		return Invite{}, fmt.Errorf("discord: bad guild id %q", j.Guild.ID)
	}
	return Invite{
		Code:      j.Code,
		GuildID:   gid,
		GuildName: j.Guild.Name,
		Members:   j.Members,
		Online:    j.Online,
		InviterID: j.Inviter.ID,
		CreatedAt: ids.SnowflakeTime(ids.DiscordEpochMS, gid),
	}, nil
}

// ProbeInvite fetches invite metadata (with counts) without joining.
func (c *Client) ProbeInvite(ctx context.Context, code string) (Invite, error) {
	var j inviteJSON
	if err := c.do(ctx, http.MethodGet, "/api/v9/invites/"+url.PathEscape(code)+"?with_counts=true", &j); err != nil {
		return Invite{}, err
	}
	return decodeInvite(j)
}

// Join accepts an invite, joining its guild.
func (c *Client) Join(ctx context.Context, code string) (Invite, error) {
	var j inviteJSON
	if err := c.do(ctx, http.MethodPost, "/api/v9/invites/"+url.PathEscape(code), &j); err != nil {
		return Invite{}, err
	}
	gid, err := strconv.ParseUint(j.Guild.ID, 10, 64)
	if err != nil {
		return Invite{}, fmt.Errorf("discord: bad guild id %q", j.Guild.ID)
	}
	return Invite{Code: j.Code, GuildID: gid, GuildName: j.Guild.Name,
		CreatedAt: ids.SnowflakeTime(ids.DiscordEpochMS, gid)}, nil
}

// Channel is one guild text channel.
type Channel struct {
	ID   uint64
	Name string
}

// Channels lists a joined guild's channels.
func (c *Client) Channels(ctx context.Context, guildID uint64) ([]Channel, error) {
	var out []struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v9/guilds/"+strconv.FormatUint(guildID, 10)+"/channels", &out); err != nil {
		return nil, err
	}
	chs := make([]Channel, len(out))
	for i, ch := range out {
		id, err := strconv.ParseUint(ch.ID, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("discord: bad channel id %q", ch.ID)
		}
		chs[i] = Channel{ID: id, Name: ch.Name}
	}
	return chs, nil
}

// Message is one channel message.
type Message struct {
	ID       uint64
	AuthorID uint64
	Author   string
	SentAt   time.Time
	Type     string
	Content  string
}

// MessagePager walks a channel's history backwards via the `before`
// snowflake cursor. The cursor survives rate-limit errors, so the caller
// can wait and call Next again without losing position.
type MessagePager struct {
	c      *Client
	chID   uint64
	before uint64
	done   bool
}

// MessagePager returns a pager over the channel's full history.
func (c *Client) MessagePager(channelID uint64) *MessagePager {
	return &MessagePager{c: c, chID: channelID}
}

// MessagePagerBefore returns a pager anchored at the given snowflake
// cursor instead of the service clock's now, so the history window does not
// shift when concurrent collectors advance virtual time.
func (c *Client) MessagePagerBefore(channelID, before uint64) *MessagePager {
	return &MessagePager{c: c, chID: channelID, before: before}
}

// Done reports whether the history is exhausted.
func (p *MessagePager) Done() bool { return p.done }

// Next fetches one page (newest remaining first).
func (p *MessagePager) Next(ctx context.Context) ([]Message, error) {
	if p.done {
		return nil, nil
	}
	path := "/api/v9/channels/" + strconv.FormatUint(p.chID, 10) + "/messages?limit=100"
	if p.before != 0 {
		path += "&before=" + strconv.FormatUint(p.before, 10)
	}
	var out []Message
	var count int
	err := p.c.doParse(ctx, http.MethodGet, path, func(body []byte) error {
		var perr error
		out, count, perr = parseMessagePage(body, p.c.interner)
		return perr
	})
	if err != nil {
		return nil, err
	}
	for _, m := range out {
		p.before = m.ID
	}
	if count < 100 {
		p.done = true
	}
	return out, nil
}

// parseMessagePage decodes one channel-messages page. Snowflake IDs are
// folded straight from the quoted digit strings, usernames and message
// types are interned, content is copied. A null body (empty history)
// decodes as zero messages, matching encoding/json on a nil slice.
func parseMessagePage(body []byte, in *ids.Interner) ([]Message, int, error) {
	var d jsonx.Dec
	d.Reset(body)
	if d.Null() {
		return nil, 0, d.End()
	}
	var out []Message
	count := 0
	err := d.Arr(func() error {
		var m Message
		count++
		if err := d.Obj(func(key []byte) error {
			switch string(key) {
			case "id":
				b, err := d.StrBytes()
				if err != nil {
					return err
				}
				m.ID, err = foldU64(b)
				return err
			case "author":
				return d.Obj(func(k2 []byte) error {
					switch string(k2) {
					case "id":
						b, err := d.StrBytes()
						if err != nil {
							return err
						}
						m.AuthorID, err = foldU64(b)
						return err
					case "username":
						b, err := d.StrBytes()
						if err != nil {
							return err
						}
						m.Author = in.InternBytes(b)
						return nil
					}
					return d.Skip()
				})
			case "timestamp":
				b, err := d.StrBytes()
				if err != nil {
					return err
				}
				m.SentAt, err = parseRFC3339(b)
				return err
			case "x_type":
				b, err := d.StrBytes()
				if err != nil {
					return err
				}
				m.Type = in.InternBytes(b)
				return nil
			case "content":
				s, err := d.Str()
				m.Content = s
				return err
			}
			return d.Skip()
		}); err != nil {
			return err
		}
		out = append(out, m)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, count, d.End()
}

// foldU64 parses an unsigned decimal from b without going through a
// string (strconv would retain a copy on its error paths).
func foldU64(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("discord: empty number")
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("discord: bad number %q", b)
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("discord: number overflow %q", b)
		}
		v = v*10 + d
	}
	return v, nil
}

// parseRFC3339 decodes the service's RFC3339Nano timestamps at fixed
// offsets ("2006-01-02T15:04:05[.fff…]Z"), falling back to time.Parse
// for offsets or unusual shapes. Results are UTC.
func parseRFC3339(b []byte) (time.Time, error) {
	if len(b) < 20 || b[4] != '-' || b[7] != '-' || b[10] != 'T' ||
		b[13] != ':' || b[16] != ':' || b[len(b)-1] != 'Z' {
		t, err := time.Parse(time.RFC3339Nano, string(b))
		if err != nil {
			return time.Time{}, fmt.Errorf("discord: bad timestamp %q", b)
		}
		return t.UTC(), nil
	}
	num := func(lo, hi int) (int, bool) {
		v := 0
		for _, c := range b[lo:hi] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		return v, true
	}
	year, ok1 := num(0, 4)
	month, ok2 := num(5, 7)
	day, ok3 := num(8, 10)
	hh, ok4 := num(11, 13)
	mm, ok5 := num(14, 16)
	ss, ok6 := num(17, 19)
	nsec := 0
	okf := true
	if len(b) > 20 {
		if b[19] != '.' {
			okf = false
		} else {
			frac := b[20 : len(b)-1]
			if len(frac) == 0 || len(frac) > 9 {
				okf = false
			} else {
				v, ok := num(20, len(b)-1)
				if !ok {
					okf = false
				} else {
					for i := len(frac); i < 9; i++ {
						v *= 10
					}
					nsec = v
				}
			}
		}
	}
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && okf) || month < 1 || month > 12 {
		t, err := time.Parse(time.RFC3339Nano, string(b))
		if err != nil {
			return time.Time{}, fmt.Errorf("discord: bad timestamp %q", b)
		}
		return t.UTC(), nil
	}
	return time.Date(year, time.Month(month), day, hh, mm, ss, nsec, time.UTC), nil
}

// Messages pages backwards through a channel's entire history, up to
// maxMessages (0 = unlimited).
func (c *Client) Messages(ctx context.Context, channelID uint64, maxMessages int) ([]Message, error) {
	var out []Message
	p := c.MessagePager(channelID)
	for !p.Done() {
		page, err := p.Next(ctx)
		if err != nil {
			return out, err
		}
		for _, m := range page {
			out = append(out, m)
			if maxMessages > 0 && len(out) >= maxMessages {
				return out, nil
			}
		}
	}
	return out, nil
}

// Profile is a user profile with connected accounts.
type Profile struct {
	UserID   uint64
	Username string
	Linked   []string // connected platform names
}

// UserProfile fetches a user's profile; the connected_accounts list is the
// linked-account exposure of Table 5.
func (c *Client) UserProfile(ctx context.Context, userID uint64) (Profile, error) {
	var out struct {
		User struct {
			ID       string `json:"id"`
			Username string `json:"username"`
		} `json:"user"`
		Connected []struct {
			Type string `json:"type"`
		} `json:"connected_accounts"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v9/users/"+strconv.FormatUint(userID, 10)+"/profile", &out); err != nil {
		return Profile{}, err
	}
	p := Profile{Username: out.User.Username}
	p.UserID, _ = strconv.ParseUint(out.User.ID, 10, 64)
	for _, c := range out.Connected {
		p.Linked = append(p.Linked, c.Type)
	}
	return p, nil
}
