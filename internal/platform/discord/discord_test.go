package discord

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	srv   *httptest.Server
}

func newFixture(t *testing.T, cfg ServiceConfig) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(5, 0.004))
	clock := simclock.New(w.Cfg.Start)
	clock.Advance(10 * 24 * time.Hour)
	svc := NewService(w, clock, cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &fixture{world: w, clock: clock, srv: srv}
}

func (f *fixture) pick(t *testing.T, pred func(*simworld.Group) bool) *simworld.Group {
	t.Helper()
	for _, g := range f.world.Groups[platform.Discord] {
		if pred(g) {
			return g
		}
	}
	t.Fatal("no matching Discord group in fixture")
	return nil
}

func (f *fixture) alive(g *simworld.Group) bool {
	return f.world.AliveAt(g, f.clock.Now().Add(48*time.Hour)) &&
		g.FirstShareAt.Before(f.clock.Now())
}

func TestInviteMetadataAndSnowflakeDate(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, f.alive)
	c := NewClient(f.srv.URL, "acct")
	inv, err := c.ProbeInvite(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if inv.GuildName != g.Title || inv.GuildID != g.GuildID {
		t.Fatalf("invite wrong: %+v", inv)
	}
	if inv.Members != f.world.MembersAt(g, f.clock.Now()) {
		t.Fatalf("member count %d", inv.Members)
	}
	// The crawler recovers the creation date from the snowflake.
	if d := inv.CreatedAt.Sub(g.CreatedAt); d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("snowflake date %v, want %v", inv.CreatedAt, g.CreatedAt)
	}
}

func TestInviteExpired(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		return !g.RevokedAt.IsZero() && g.RevokedAt.Before(f.clock.Now())
	})
	c := NewClient(f.srv.URL, "acct")
	if _, err := c.ProbeInvite(context.Background(), g.Code); !errors.Is(err, ErrUnknownInvite) {
		t.Fatalf("err = %v, want ErrUnknownInvite", err)
	}
}

func TestInviteProbeIsPublic(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, f.alive)
	c := NewClient(f.srv.URL, "") // no account at all
	if _, err := c.ProbeInvite(context.Background(), g.Code); err != nil {
		t.Fatalf("public invite probe failed: %v", err)
	}
}

func TestBotsCannotJoin(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, f.alive)
	bot := NewClient(f.srv.URL, "bot:crawler")
	if _, err := bot.Join(context.Background(), g.Code); !errors.Is(err, ErrBotForbidden) {
		t.Fatalf("err = %v, want ErrBotForbidden", err)
	}
}

func TestJoinChannelsMessagesProfiles(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		return f.alive(g) && f.clock.Now().Sub(g.CreatedAt) < 20*24*time.Hour
	})
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	inv, err := c.Join(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	chs, err := c.Channels(ctx, inv.GuildID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) != g.Channels {
		t.Fatalf("%d channels, want %d", len(chs), g.Channels)
	}
	var total int
	var anyAuthor uint64
	for _, ch := range chs {
		msgs, err := c.Messages(ctx, ch.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(msgs)
		for _, m := range msgs {
			if m.SentAt.Before(g.CreatedAt) {
				t.Fatal("message predates guild creation")
			}
			anyAuthor = m.AuthorID
		}
	}
	want := len(f.world.Messages(g, g.CreatedAt, f.clock.Now()))
	if total < want-5 || total > want {
		t.Fatalf("collected %d messages across channels, world has %d", total, want)
	}
	if anyAuthor != 0 {
		prof, err := c.UserProfile(ctx, anyAuthor)
		if err != nil {
			t.Fatal(err)
		}
		if prof.UserID != anyAuthor {
			t.Fatalf("profile user %d, want %d", prof.UserID, anyAuthor)
		}
	}
}

func TestProfileUnknownUser(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	c := NewClient(f.srv.URL, "acct")
	if _, err := c.UserProfile(context.Background(), 999999999); err == nil {
		t.Fatal("unknown user profile should fail")
	}
}

func TestGuildCap(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	joined := 0
	var capErr error
	for _, g := range f.world.Groups[platform.Discord] {
		if !f.world.AliveAt(g, f.clock.Now()) {
			continue
		}
		_, err := c.Join(ctx, g.Code)
		switch {
		case err == nil:
			joined++
		case errors.Is(err, ErrGuildCap):
			capErr = err
		case errors.Is(err, ErrRateLimited):
			f.clock.Advance(time.Minute)
		default:
			t.Fatal(err)
		}
		if capErr != nil {
			break
		}
	}
	if capErr == nil {
		t.Skipf("fixture too small to hit the guild cap (joined %d)", joined)
	}
	if joined != 100 {
		t.Fatalf("cap hit after %d joins, want exactly 100", joined)
	}
}

func TestRateLimit429(t *testing.T) {
	f := newFixture(t, ServiceConfig{Budget: 2, Window: time.Minute})
	g := f.pick(t, f.alive)
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	var rlErr error
	for i := 0; i < 5; i++ {
		if _, err := c.Join(ctx, g.Code); err != nil {
			rlErr = err
			break
		}
	}
	if !errors.Is(rlErr, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", rlErr)
	}
	f.clock.Advance(time.Minute)
	if _, err := c.Join(ctx, g.Code); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestMessagePagerPagination(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		if !f.alive(g) {
			return false
		}
		n := len(f.world.Messages(g, g.CreatedAt, f.clock.Now()))
		return n > 300 && n < 20000
	})
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	inv, err := c.Join(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	chs, err := c.Channels(ctx, inv.GuildID)
	if err != nil {
		t.Fatal(err)
	}
	// Page the busiest channel so the history spans multiple pages.
	world := f.world.Messages(g, g.CreatedAt, f.clock.Now())
	perChannel := map[int]int{}
	for _, m := range world {
		perChannel[m.Channel]++
	}
	busiest, most := 0, -1
	for ch, n := range perChannel {
		if n > most {
			busiest, most = ch, n
		}
	}
	if most < 150 {
		t.Skipf("busiest channel has only %d messages", most)
	}
	pager := c.MessagePager(chs[busiest].ID)
	pages := 0
	seen := map[uint64]bool{}
	for !pager.Done() {
		page, err := pager.Next(ctx)
		if errors.Is(err, ErrRateLimited) {
			f.clock.Advance(time.Minute)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for i := 1; i < len(page); i++ {
			if page[i].SentAt.After(page[i-1].SentAt) {
				t.Fatal("page not newest-first")
			}
		}
		for _, m := range page {
			if seen[m.ID] {
				t.Fatalf("message %d served twice across pages", m.ID)
			}
			seen[m.ID] = true
		}
	}
	if pages < 2 {
		t.Fatalf("expected multi-page history, got %d pages", pages)
	}
}
