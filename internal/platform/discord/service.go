// Package discord simulates the Discord REST API surfaces the study used:
// the invite endpoint (metadata with approximate member/presence counts,
// readable without joining; expired invites 404 with code 10006), guild
// joining under the 100-guild account cap (bots may not join by
// themselves), channel listings, paginated message history, and user
// profiles exposing connected accounts — the linked-account PII channel of
// Table 5. Guild creation dates are recoverable from snowflake IDs, which
// is exactly how the crawler obtains them.
package discord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"msgscope/internal/checkpoint"
	"msgscope/internal/faults"
	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// ServiceConfig tunes rate limiting.
type ServiceConfig struct {
	Budget int // requests per Window per account
	Window time.Duration
}

// DefaultServiceConfig approximates Discord's per-route buckets with one
// coarse per-account bucket.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{Budget: 240, Window: time.Minute}
}

// Service simulates the Discord REST API.
type Service struct {
	cfg   ServiceConfig
	world *simworld.World
	clock simclock.Clock

	// Faults, when set, injects failures into every surface.
	Faults *faults.Injector

	mu       sync.Mutex
	accounts map[string]*account
	channels map[uint64]channelRef // channel id -> (group, index)
	userIdx  map[uint64]int        // user id -> pool index
	guilds   map[uint64]*simworld.Group

	// rateBody is the 429 response body, rendered once: rate-limit
	// rejections are too frequent to re-encode the same object each time.
	rateBody []byte
}

type channelRef struct {
	group *simworld.Group
	idx   int
}

type account struct {
	joined     map[string]time.Time // invite code -> join time
	budget     float64
	lastRefill time.Time
}

// NewService builds the service over the world.
func NewService(world *simworld.World, clock simclock.Clock, cfg ServiceConfig) *Service {
	s := &Service{
		cfg:      cfg,
		world:    world,
		clock:    clock,
		accounts: map[string]*account{},
		channels: map[uint64]channelRef{},
		userIdx:  map[uint64]int{},
		guilds:   map[uint64]*simworld.Group{},
	}
	for _, g := range world.Groups[platform.Discord] {
		s.guilds[g.GuildID] = g
	}
	s.rateBody, _ = json.Marshal(map[string]any{"message": "You are being rate limited.", "retry_after": 1.5, "global": false})
	s.rateBody = append(s.rateBody, '\n')
	return s
}

// AccountStates snapshots every account's rate bucket and guild memberships
// for a checkpoint, sorted by name (and joins by code) for stable output.
// The channel and user-index caches are not captured: both are lazily
// repopulated by the same deterministic requests that filled them.
func (s *Service) AccountStates() []checkpoint.AccountState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]checkpoint.AccountState, 0, len(s.accounts))
	for name, a := range s.accounts {
		st := checkpoint.AccountState{
			Name:               name,
			Budget:             a.budget,
			LastRefillUnixNano: a.lastRefill.UnixNano(),
			Joined:             make([]checkpoint.AccountJoin, 0, len(a.joined)),
		}
		for code, at := range a.joined {
			st.Joined = append(st.Joined, checkpoint.AccountJoin{Code: code, AtUnixNano: at.UnixNano()})
		}
		sort.Slice(st.Joined, func(i, j int) bool { return st.Joined[i].Code < st.Joined[j].Code })
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreAccounts rebuilds account state from a checkpoint. Accounts are
// otherwise lazily created with a full budget on first sighting, so restore
// must pre-create them with their exact bucket position.
func (s *Service) RestoreAccounts(states []checkpoint.AccountState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range states {
		a := &account{
			joined:     make(map[string]time.Time, len(st.Joined)),
			budget:     st.Budget,
			lastRefill: time.Unix(0, st.LastRefillUnixNano).UTC(),
		}
		for _, j := range st.Joined {
			a.joined[j.Code] = time.Unix(0, j.AtUnixNano).UTC()
		}
		s.accounts[st.Name] = a
	}
}

// Handler returns the HTTP mux (API v9 paths; account via X-DC-Account).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v9/invites/{code}", s.faulty(s.handleInvite))
	mux.HandleFunc("POST /api/v9/invites/{code}", s.faulty(s.handleJoin))
	mux.HandleFunc("GET /api/v9/guilds/{gid}/channels", s.faulty(s.handleChannels))
	mux.HandleFunc("GET /api/v9/channels/{cid}/messages", s.faulty(s.handleMessages))
	mux.HandleFunc("GET /api/v9/users/{uid}/profile", s.faulty(s.handleProfile))
	return mux
}

// faulty runs fault interception before the handler. Injected floods use
// Discord's native 429 body so client handling matches organic buckets.
func (s *Service) faulty(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Faults.Intercept(w, r, "X-DC-Account", func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write(s.rateBody)
		}) {
			return
		}
		h(w, r)
	}
}

func (s *Service) group(code string) *simworld.Group {
	return s.world.GroupByCode(platform.Discord, code)
}

func apiError(w http.ResponseWriter, status, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"message": msg, "code": code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// rateLimit authenticates (if authed is true) and charges the bucket; it
// reports whether the request may proceed.
func (s *Service) rateLimit(w http.ResponseWriter, r *http.Request) (*account, bool) {
	name := r.Header.Get("X-DC-Account")
	if name == "" {
		apiError(w, http.StatusUnauthorized, 0, "401: Unauthorized")
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[name]
	if !ok {
		a = &account{
			joined:     map[string]time.Time{},
			budget:     float64(s.cfg.Budget),
			lastRefill: s.clock.Now(),
		}
		s.accounts[name] = a
	}
	now := s.clock.Now()
	if el := now.Sub(a.lastRefill); el > 0 {
		a.budget += float64(s.cfg.Budget) * float64(el) / float64(s.cfg.Window)
		if a.budget > float64(s.cfg.Budget) {
			a.budget = float64(s.cfg.Budget)
		}
		a.lastRefill = now
	}
	if a.budget < 1 {
		w.Header().Set("X-RateLimit-Remaining", "0")
		w.Header().Set("X-RateLimit-Reset-After", "1.5")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write(s.rateBody)
		return nil, false
	}
	a.budget--
	w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(int(a.budget)))
	return a, true
}

// handleInvite serves invite metadata without requiring membership — the
// endpoint is public (no account, no rate bucket), which is what made the
// paper's daily probing of 227K invites feasible. Expired invites return
// 404 with Discord's "Unknown Invite" code 10006.
func (s *Service) handleInvite(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil || !s.world.AliveAt(g, now) {
		apiError(w, http.StatusNotFound, 10006, "Unknown Invite")
		return
	}
	withCounts := r.URL.Query().Get("with_counts") == "true"
	var members, online int
	if withCounts {
		members = s.world.MembersAt(g, now)
		online = s.world.OnlineAt(g, now)
	}
	bp := jsonx.GetBuf()
	buf := appendInviteResponse((*bp)[:0], code, g, withCounts, members, online)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendInviteResponse renders the invite metadata byte-identically to
// the former writeJSON(map[string]any{...}) call; encoding/json sorts
// the map keys, so the approximate_* counts lead when present.
func appendInviteResponse(dst []byte, code string, g *simworld.Group, withCounts bool, members, online int) []byte {
	dst = append(dst, '{')
	if withCounts {
		dst = append(dst, `"approximate_member_count":`...)
		dst = jsonx.AppendInt(dst, int64(members))
		dst = append(dst, `,"approximate_presence_count":`...)
		dst = jsonx.AppendInt(dst, int64(online))
		dst = append(dst, ',')
	}
	dst = append(dst, `"code":`...)
	dst = jsonx.AppendString(dst, code)
	dst = append(dst, `,"guild":{"id":"`...)
	dst = jsonx.AppendUint(dst, g.GuildID)
	dst = append(dst, `","name":`...)
	dst = jsonx.AppendString(dst, g.Title)
	dst = append(dst, `},"inviter":{"id":"`...)
	dst = jsonx.AppendInt(dst, int64(g.CreatorIdx+1))
	dst = append(dst, `","username":"creator`...)
	dst = jsonx.AppendInt(dst, int64(g.CreatorIdx))
	dst = append(dst, '"', '}', '}')
	return append(dst, '\n')
}

// handleJoin accepts an invite. Bot accounts (names with a "bot:" prefix)
// may not join on their own — the restriction that forced the study to use
// a regular user account.
func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	name := r.Header.Get("X-DC-Account")
	if len(name) >= 4 && name[:4] == "bot:" {
		apiError(w, http.StatusForbidden, 20001, "Bots cannot use this endpoint")
		return
	}
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil || !s.world.AliveAt(g, now) {
		apiError(w, http.StatusNotFound, 10006, "Unknown Invite")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := a.joined[code]; !dup && len(a.joined) >= 100 {
		apiError(w, http.StatusBadRequest, 30001, "Maximum number of guilds reached (100)")
		return
	}
	a.joined[code] = now
	writeJSON(w, map[string]any{
		"code":  code,
		"guild": map[string]any{"id": strconv.FormatUint(g.GuildID, 10), "name": g.Title},
	})
}

func (s *Service) memberOfGuild(a *account, g *simworld.Group) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := a.joined[g.Code]
	return ok
}

// channelID derives a stable channel snowflake and registers it.
func (s *Service) channelID(g *simworld.Group, idx int) uint64 {
	cid := ids.Snowflake(ids.DiscordEpochMS, g.CreatedAt.Add(time.Duration(idx)*time.Minute),
		uint32(g.GuildID&0x3FF)<<8|uint32(idx))
	s.mu.Lock()
	s.channels[cid] = channelRef{group: g, idx: idx}
	s.mu.Unlock()
	return cid
}

func (s *Service) handleChannels(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	gid, err := strconv.ParseUint(r.PathValue("gid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	g := s.guilds[gid]
	s.mu.Unlock()
	if g == nil {
		apiError(w, http.StatusNotFound, 10004, "Unknown Guild")
		return
	}
	if !s.memberOfGuild(a, g) {
		apiError(w, http.StatusForbidden, 50001, "Missing Access")
		return
	}
	out := make([]map[string]any, g.Channels)
	for i := 0; i < g.Channels; i++ {
		out[i] = map[string]any{
			"id":   strconv.FormatUint(s.channelID(g, i), 10),
			"name": fmt.Sprintf("general-%d", i),
			"type": 0, // GUILD_TEXT
		}
	}
	writeJSON(w, out)
}

// handleMessages pages a channel's history newest-first via the `before`
// snowflake cursor, exactly like GET /channels/{id}/messages.
func (s *Service) handleMessages(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	cid, err := strconv.ParseUint(r.PathValue("cid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	ref, found := s.channels[cid]
	s.mu.Unlock()
	if !found {
		apiError(w, http.StatusNotFound, 10003, "Unknown Channel")
		return
	}
	g := ref.group
	if !s.memberOfGuild(a, g) {
		apiError(w, http.StatusForbidden, 50001, "Missing Access")
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = min(n, 100)
		}
	}
	until := s.clock.Now()
	if v := r.URL.Query().Get("before"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
			return
		}
		until = ids.SnowflakeTime(ids.DiscordEpochMS, id)
	}

	// Walk backwards day by day until the page fills, append-encoding
	// each message straight into a pooled buffer. An empty page must
	// render as null: the old code marshalled a nil []msgOut slice.
	bp := jsonx.GetBuf()
	buf := (*bp)[:0]
	buf = append(buf, '[')
	n := 0
	cursor := until
	for n < limit && cursor.After(g.CreatedAt) {
		from := cursor.Add(-24 * time.Hour)
		if from.Before(g.CreatedAt) {
			from = g.CreatedAt
		}
		msgs := s.world.Messages(g, from, cursor)
		for i := len(msgs) - 1; i >= 0 && n < limit; i-- {
			m := msgs[i]
			if m.Channel != ref.idx {
				continue
			}
			u := s.world.UserByIdx(platform.Discord, m.AuthorIdx)
			s.mu.Lock()
			s.userIdx[u.ID] = m.AuthorIdx
			s.mu.Unlock()
			// The world's Seq uniquely identifies a message within its
			// millisecond, so snowflakes are collision-free and stable
			// across paginated fetches.
			mid := ids.Snowflake(ids.DiscordEpochMS, m.SentAt, m.Seq)
			if n > 0 {
				buf = append(buf, ',')
			}
			buf = appendMessageOut(buf, mid, u.ID, u.Name, m.SentAt, m.Type.String(), m.Text)
			n++
		}
		cursor = from
	}
	w.Header().Set("Content-Type", "application/json")
	if n == 0 {
		buf = append(buf[:0], `null`...)
	} else {
		buf = append(buf, ']')
	}
	buf = append(buf, '\n')
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendMessageOut renders one history message byte-identically to the
// json.Marshal encoding of the former msgOut struct.
func appendMessageOut(dst []byte, mid, uid uint64, username string, sentAt time.Time, msgType, content string) []byte {
	dst = append(dst, `{"id":"`...)
	dst = jsonx.AppendUint(dst, mid)
	dst = append(dst, `","author":{"id":"`...)
	dst = jsonx.AppendUint(dst, uid)
	dst = append(dst, `","username":`...)
	dst = jsonx.AppendString(dst, username)
	dst = append(dst, `},"timestamp":`...)
	dst = appendRFC3339Nano(dst, sentAt)
	dst = append(dst, `,"x_type":`...)
	dst = jsonx.AppendString(dst, msgType)
	if content != "" {
		dst = append(dst, `,"content":`...)
		dst = jsonx.AppendString(dst, content)
	}
	return append(dst, '}')
}

// appendRFC3339Nano appends the quoted Format(time.RFC3339Nano)
// rendering of t. The day-to-day path is UTC with a 4-digit year;
// anything else falls back to Format.
func appendRFC3339Nano(dst []byte, t time.Time) []byte {
	year, month, day := t.Date()
	if t.Location() != time.UTC || year < 1000 || year > 9999 {
		dst = append(dst, '"')
		dst = t.AppendFormat(dst, time.RFC3339Nano)
		return append(dst, '"')
	}
	hh, mm, ss := t.Clock()
	dst = append(dst, '"')
	dst = append(dst, byte('0'+year/1000), byte('0'+year/100%10), byte('0'+year/10%10), byte('0'+year%10), '-')
	dst = append(dst, byte('0'+int(month)/10), byte('0'+int(month)%10), '-')
	dst = append(dst, byte('0'+day/10), byte('0'+day%10), 'T')
	dst = append(dst, byte('0'+hh/10), byte('0'+hh%10), ':')
	dst = append(dst, byte('0'+mm/10), byte('0'+mm%10), ':')
	dst = append(dst, byte('0'+ss/10), byte('0'+ss%10))
	if ns := t.Nanosecond(); ns != 0 {
		var frac [9]byte
		for i := 8; i >= 0; i-- {
			frac[i] = byte('0' + ns%10)
			ns /= 10
		}
		end := 9
		for end > 0 && frac[end-1] == '0' {
			end--
		}
		dst = append(dst, '.')
		dst = append(dst, frac[:end]...)
	}
	return append(dst, 'Z', '"')
}

// handleProfile exposes a user's profile with connected accounts — the PII
// leak of Table 5. Only users previously observed (e.g. as message authors)
// resolve; others 404.
func (s *Service) handleProfile(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.rateLimit(w, r); !ok {
		return
	}
	uid, err := strconv.ParseUint(r.PathValue("uid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	idx, found := s.userIdx[uid]
	s.mu.Unlock()
	if !found {
		apiError(w, http.StatusNotFound, 10013, "Unknown User")
		return
	}
	u := s.world.UserByIdx(platform.Discord, idx)
	conns := make([]map[string]string, len(u.Linked))
	for i, l := range u.Linked {
		conns[i] = map[string]string{"type": l, "name": u.Name}
	}
	writeJSON(w, map[string]any{
		"user":               map[string]string{"id": strconv.FormatUint(u.ID, 10), "username": u.Name},
		"connected_accounts": conns,
	})
}
