// Package discord simulates the Discord REST API surfaces the study used:
// the invite endpoint (metadata with approximate member/presence counts,
// readable without joining; expired invites 404 with code 10006), guild
// joining under the 100-guild account cap (bots may not join by
// themselves), channel listings, paginated message history, and user
// profiles exposing connected accounts — the linked-account PII channel of
// Table 5. Guild creation dates are recoverable from snowflake IDs, which
// is exactly how the crawler obtains them.
package discord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/ids"
	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// ServiceConfig tunes rate limiting.
type ServiceConfig struct {
	Budget int // requests per Window per account
	Window time.Duration
}

// DefaultServiceConfig approximates Discord's per-route buckets with one
// coarse per-account bucket.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{Budget: 240, Window: time.Minute}
}

// Service simulates the Discord REST API.
type Service struct {
	cfg   ServiceConfig
	world *simworld.World
	clock simclock.Clock

	// Faults, when set, injects failures into every surface.
	Faults *faults.Injector

	mu       sync.Mutex
	accounts map[string]*account
	channels map[uint64]channelRef // channel id -> (group, index)
	userIdx  map[uint64]int        // user id -> pool index
	guilds   map[uint64]*simworld.Group
}

type channelRef struct {
	group *simworld.Group
	idx   int
}

type account struct {
	joined     map[string]time.Time // invite code -> join time
	budget     float64
	lastRefill time.Time
}

// NewService builds the service over the world.
func NewService(world *simworld.World, clock simclock.Clock, cfg ServiceConfig) *Service {
	s := &Service{
		cfg:      cfg,
		world:    world,
		clock:    clock,
		accounts: map[string]*account{},
		channels: map[uint64]channelRef{},
		userIdx:  map[uint64]int{},
		guilds:   map[uint64]*simworld.Group{},
	}
	for _, g := range world.Groups[platform.Discord] {
		s.guilds[g.GuildID] = g
	}
	return s
}

// Handler returns the HTTP mux (API v9 paths; account via X-DC-Account).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v9/invites/{code}", s.faulty(s.handleInvite))
	mux.HandleFunc("POST /api/v9/invites/{code}", s.faulty(s.handleJoin))
	mux.HandleFunc("GET /api/v9/guilds/{gid}/channels", s.faulty(s.handleChannels))
	mux.HandleFunc("GET /api/v9/channels/{cid}/messages", s.faulty(s.handleMessages))
	mux.HandleFunc("GET /api/v9/users/{uid}/profile", s.faulty(s.handleProfile))
	return mux
}

// faulty runs fault interception before the handler. Injected floods use
// Discord's native 429 body so client handling matches organic buckets.
func (s *Service) faulty(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Faults.Intercept(w, r, "X-DC-Account", func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"message": "You are being rate limited.", "retry_after": 1.5, "global": false})
		}) {
			return
		}
		h(w, r)
	}
}

func (s *Service) group(code string) *simworld.Group {
	return s.world.GroupByCode(platform.Discord, code)
}

func apiError(w http.ResponseWriter, status, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"message": msg, "code": code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// rateLimit authenticates (if authed is true) and charges the bucket; it
// reports whether the request may proceed.
func (s *Service) rateLimit(w http.ResponseWriter, r *http.Request) (*account, bool) {
	name := r.Header.Get("X-DC-Account")
	if name == "" {
		apiError(w, http.StatusUnauthorized, 0, "401: Unauthorized")
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[name]
	if !ok {
		a = &account{
			joined:     map[string]time.Time{},
			budget:     float64(s.cfg.Budget),
			lastRefill: s.clock.Now(),
		}
		s.accounts[name] = a
	}
	now := s.clock.Now()
	if el := now.Sub(a.lastRefill); el > 0 {
		a.budget += float64(s.cfg.Budget) * float64(el) / float64(s.cfg.Window)
		if a.budget > float64(s.cfg.Budget) {
			a.budget = float64(s.cfg.Budget)
		}
		a.lastRefill = now
	}
	if a.budget < 1 {
		w.Header().Set("X-RateLimit-Remaining", "0")
		w.Header().Set("X-RateLimit-Reset-After", "1.5")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{"message": "You are being rate limited.", "retry_after": 1.5, "global": false})
		return nil, false
	}
	a.budget--
	w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(int(a.budget)))
	return a, true
}

// handleInvite serves invite metadata without requiring membership — the
// endpoint is public (no account, no rate bucket), which is what made the
// paper's daily probing of 227K invites feasible. Expired invites return
// 404 with Discord's "Unknown Invite" code 10006.
func (s *Service) handleInvite(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil || !s.world.AliveAt(g, now) {
		apiError(w, http.StatusNotFound, 10006, "Unknown Invite")
		return
	}
	resp := map[string]any{
		"code": code,
		"guild": map[string]any{
			"id":   strconv.FormatUint(g.GuildID, 10),
			"name": g.Title,
		},
		"inviter": map[string]any{
			"id":       strconv.Itoa(g.CreatorIdx + 1),
			"username": fmt.Sprintf("creator%d", g.CreatorIdx),
		},
	}
	if r.URL.Query().Get("with_counts") == "true" {
		resp["approximate_member_count"] = s.world.MembersAt(g, now)
		resp["approximate_presence_count"] = s.world.OnlineAt(g, now)
	}
	writeJSON(w, resp)
}

// handleJoin accepts an invite. Bot accounts (names with a "bot:" prefix)
// may not join on their own — the restriction that forced the study to use
// a regular user account.
func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	name := r.Header.Get("X-DC-Account")
	if len(name) >= 4 && name[:4] == "bot:" {
		apiError(w, http.StatusForbidden, 20001, "Bots cannot use this endpoint")
		return
	}
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil || !s.world.AliveAt(g, now) {
		apiError(w, http.StatusNotFound, 10006, "Unknown Invite")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := a.joined[code]; !dup && len(a.joined) >= 100 {
		apiError(w, http.StatusBadRequest, 30001, "Maximum number of guilds reached (100)")
		return
	}
	a.joined[code] = now
	writeJSON(w, map[string]any{
		"code":  code,
		"guild": map[string]any{"id": strconv.FormatUint(g.GuildID, 10), "name": g.Title},
	})
}

func (s *Service) memberOfGuild(a *account, g *simworld.Group) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := a.joined[g.Code]
	return ok
}

// channelID derives a stable channel snowflake and registers it.
func (s *Service) channelID(g *simworld.Group, idx int) uint64 {
	cid := ids.Snowflake(ids.DiscordEpochMS, g.CreatedAt.Add(time.Duration(idx)*time.Minute),
		uint32(g.GuildID&0x3FF)<<8|uint32(idx))
	s.mu.Lock()
	s.channels[cid] = channelRef{group: g, idx: idx}
	s.mu.Unlock()
	return cid
}

func (s *Service) handleChannels(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	gid, err := strconv.ParseUint(r.PathValue("gid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	g := s.guilds[gid]
	s.mu.Unlock()
	if g == nil {
		apiError(w, http.StatusNotFound, 10004, "Unknown Guild")
		return
	}
	if !s.memberOfGuild(a, g) {
		apiError(w, http.StatusForbidden, 50001, "Missing Access")
		return
	}
	out := make([]map[string]any, g.Channels)
	for i := 0; i < g.Channels; i++ {
		out[i] = map[string]any{
			"id":   strconv.FormatUint(s.channelID(g, i), 10),
			"name": fmt.Sprintf("general-%d", i),
			"type": 0, // GUILD_TEXT
		}
	}
	writeJSON(w, out)
}

// handleMessages pages a channel's history newest-first via the `before`
// snowflake cursor, exactly like GET /channels/{id}/messages.
func (s *Service) handleMessages(w http.ResponseWriter, r *http.Request) {
	a, ok := s.rateLimit(w, r)
	if !ok {
		return
	}
	cid, err := strconv.ParseUint(r.PathValue("cid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	ref, found := s.channels[cid]
	s.mu.Unlock()
	if !found {
		apiError(w, http.StatusNotFound, 10003, "Unknown Channel")
		return
	}
	g := ref.group
	if !s.memberOfGuild(a, g) {
		apiError(w, http.StatusForbidden, 50001, "Missing Access")
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = min(n, 100)
		}
	}
	until := s.clock.Now()
	if v := r.URL.Query().Get("before"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
			return
		}
		until = ids.SnowflakeTime(ids.DiscordEpochMS, id)
	}

	// Walk backwards day by day until the page fills.
	type msgOut struct {
		ID        string `json:"id"`
		Author    author `json:"author"`
		Timestamp string `json:"timestamp"`
		MsgType   string `json:"x_type"` // attachment class, simplified
		Content   string `json:"content,omitempty"`
	}
	var page []msgOut
	cursor := until
	for len(page) < limit && cursor.After(g.CreatedAt) {
		from := cursor.Add(-24 * time.Hour)
		if from.Before(g.CreatedAt) {
			from = g.CreatedAt
		}
		msgs := s.world.Messages(g, from, cursor)
		for i := len(msgs) - 1; i >= 0 && len(page) < limit; i-- {
			m := msgs[i]
			if m.Channel != ref.idx {
				continue
			}
			u := s.world.UserByIdx(platform.Discord, m.AuthorIdx)
			s.mu.Lock()
			s.userIdx[u.ID] = m.AuthorIdx
			s.mu.Unlock()
			// The world's Seq uniquely identifies a message within its
			// millisecond, so snowflakes are collision-free and stable
			// across paginated fetches.
			mid := ids.Snowflake(ids.DiscordEpochMS, m.SentAt, m.Seq)
			page = append(page, msgOut{
				ID:        strconv.FormatUint(mid, 10),
				Author:    author{ID: strconv.FormatUint(u.ID, 10), Username: u.Name},
				Timestamp: m.SentAt.Format(time.RFC3339Nano),
				MsgType:   m.Type.String(),
				Content:   m.Text,
			})
		}
		cursor = from
	}
	writeJSON(w, page)
}

type author struct {
	ID       string `json:"id"`
	Username string `json:"username"`
}

// handleProfile exposes a user's profile with connected accounts — the PII
// leak of Table 5. Only users previously observed (e.g. as message authors)
// resolve; others 404.
func (s *Service) handleProfile(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.rateLimit(w, r); !ok {
		return
	}
	uid, err := strconv.ParseUint(r.PathValue("uid"), 10, 64)
	if err != nil {
		apiError(w, http.StatusBadRequest, 50035, "Invalid Form Body")
		return
	}
	s.mu.Lock()
	idx, found := s.userIdx[uid]
	s.mu.Unlock()
	if !found {
		apiError(w, http.StatusNotFound, 10013, "Unknown User")
		return
	}
	u := s.world.UserByIdx(platform.Discord, idx)
	conns := make([]map[string]string, len(u.Linked))
	for i, l := range u.Linked {
		conns[i] = map[string]string{"type": l, "name": u.Name}
	}
	writeJSON(w, map[string]any{
		"user":               map[string]string{"id": strconv.FormatUint(u.ID, 10), "username": u.Name},
		"connected_accounts": conns,
	})
}
