package whatsapp

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"msgscope/internal/ids"
)

func TestAppendMessagesResponseMatchesEncodingJSON(t *testing.T) {
	cases := [][]messageJSON{
		{},
		{
			{Author: "+55 11 91234-0001", UserID: 9, SentMS: 1554087000123, Type: "text", Text: "bom dia <grupo> & \"todos\""},
			{Author: "+91 98765 43210", UserID: 18446744073709551615, SentMS: 0, Type: "url", Text: "https://chat.example/x?a=1&b=2"},
			{Author: "+1 555 0100", UserID: 3, SentMS: -7, Type: "image"},
		},
	}
	for _, msgs := range cases {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(map[string]any{"messages": msgs}); err != nil {
			t.Fatal(err)
		}
		got := appendMessagesResponse(nil, msgs)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("messages response:\n got %s\nwant %s", got, want.Bytes())
		}
	}
}

func TestAppendMembersResponseMatchesEncodingJSON(t *testing.T) {
	cases := [][]memberJSON{
		{},
		{
			{Phone: "+55 11 91234-0001", UserID: 1, Country: "BR"},
			{Phone: "+91 98765 43210", UserID: 2, Country: "IN"},
		},
	}
	for _, members := range cases {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(map[string]any{"members": members}); err != nil {
			t.Fatal(err)
		}
		got := appendMembersResponse(nil, members)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("members response:\n got %s\nwant %s", got, want.Bytes())
		}
	}
}

func TestParseMessagesRoundTrip(t *testing.T) {
	msgs := []messageJSON{
		{Author: "+55 11 91234-0001", UserID: 9, SentMS: 1554087000123, Type: "text", Text: "oi"},
		{Author: "+55 11 91234-0002", UserID: 10, SentMS: 1554087000456, Type: "join"},
	}
	body := appendMessagesResponse(nil, msgs)
	in := ids.NewInterner()
	got, err := parseMessages(body, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		want := Message{
			AuthorPhone: msgs[i].Author,
			UserID:      msgs[i].UserID,
			SentAt:      time.UnixMilli(msgs[i].SentMS).UTC(),
			Type:        msgs[i].Type,
			Text:        msgs[i].Text,
		}
		if m != want {
			t.Errorf("message %d:\n got %+v\nwant %+v", i, m, want)
		}
	}
}

func TestParseMembersRoundTrip(t *testing.T) {
	members := []memberJSON{
		{Phone: "+55 11 91234-0001", UserID: 1, Country: "BR"},
		{Phone: "+234 80 1234 5678", UserID: 2, Country: "NG"},
	}
	body := appendMembersResponse(nil, members)
	in := ids.NewInterner()
	got, err := parseMembers(body, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("got %d members, want %d", len(got), len(members))
	}
	for i, m := range got {
		want := Member{Phone: members[i].Phone, UserID: members[i].UserID, Country: members[i].Country}
		if m != want {
			t.Errorf("member %d:\n got %+v\nwant %+v", i, m, want)
		}
	}
}

func TestParseMalformedBodies(t *testing.T) {
	in := ids.NewInterner()
	for _, body := range []string{`{"truncated`, `{"messages":[{"author":"x"`, ``, `{"messages":[]} extra`} {
		if _, err := parseMessages([]byte(body), in); err == nil {
			t.Errorf("parseMessages(%q) parsed without error", body)
		}
		if _, err := parseMembers([]byte(body), in); err == nil && body != `{"messages":[{"author":"x"` && body != `{"messages":[]} extra` {
			t.Errorf("parseMembers(%q) parsed without error", body)
		}
	}
	if _, err := parseMembers([]byte(`{"members":[{"phone":"x"`), in); err == nil {
		t.Error("truncated members body parsed without error")
	}
}
