package whatsapp

import (
	"testing"

	"msgscope/internal/store"
)

// FuzzScrapeLanding hammers the landing-page scraper with arbitrary HTML —
// the exact input surface the fault injector's malformed-body fault
// truncates mid-page. The scraper must never panic, and every accepted
// page must satisfy the structural invariants the monitor relies on.
func FuzzScrapeLanding(f *testing.F) {
	f.Add(`<html><head><meta property="og:title" content="Family group"/></head>` +
		`<body data-members="42" data-creator-phone="+55119999" data-creator-cc="BR"></body></html>`)
	f.Add(`<html><body class="revoked">Invite revoked</body></html>`)
	f.Add(`<meta property="og:title" content="x &amp; y"/>`)
	f.Add(`<meta property="og:title" content="unterminated`)
	f.Add(`{"truncated`)
	f.Add(`data-members="not-a-number" <meta property="og:title" content="t"/>`)
	f.Fuzz(func(t *testing.T, page string) {
		l, err := scrapeLanding(page)
		if err != nil {
			// Rejected pages carry no data.
			if l != (Landing{}) {
				t.Fatalf("error with non-zero landing: %+v", l)
			}
			return
		}
		if !l.Alive {
			// A revoked page yields status only, never metadata.
			if l.Title != "" || l.Members != 0 || l.CreatorPhone != "" || l.CreatorCountry != "" {
				t.Fatalf("revoked landing carries metadata: %+v", l)
			}
			return
		}
		if l.Title == "" {
			t.Fatal("alive landing accepted without a title")
		}
		// Privacy invariant: whatever creator phone the page yields, the
		// store-side transforms must accept it — a 64-hex one-way digest
		// and a stable dedup key — so no input can force plaintext storage.
		if l.CreatorPhone != "" {
			if h := store.HashPhone(l.CreatorPhone); len(h) != 64 || h == l.CreatorPhone {
				t.Fatalf("phone hash not a 64-hex digest: %q", h)
			}
			_ = store.PhoneKey(l.CreatorPhone)
		}
	})
}
