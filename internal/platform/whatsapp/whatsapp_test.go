package whatsapp

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	srv   *httptest.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(3, 0.01))
	clock := simclock.New(w.Cfg.Start)
	// Park the clock mid-study so early groups have lived and some died.
	clock.Advance(10 * 24 * time.Hour)
	svc := NewService(w, clock)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &fixture{world: w, clock: clock, srv: srv}
}

// aliveGroup finds a group alive at the clock's current time and already
// shared (discovered).
func (f *fixture) aliveGroup(t *testing.T) *simworld.Group {
	t.Helper()
	now := f.clock.Now()
	for _, g := range f.world.Groups[platform.WhatsApp] {
		if f.world.AliveAt(g, now.Add(48*time.Hour)) && g.FirstShareAt.Before(now) {
			return g
		}
	}
	t.Fatal("no alive WhatsApp group in fixture")
	return nil
}

func (f *fixture) deadGroup(t *testing.T) *simworld.Group {
	t.Helper()
	now := f.clock.Now()
	for _, g := range f.world.Groups[platform.WhatsApp] {
		if !g.RevokedAt.IsZero() && g.RevokedAt.Before(now) {
			return g
		}
	}
	t.Fatal("no dead WhatsApp group in fixture")
	return nil
}

func TestLandingPageScrape(t *testing.T) {
	f := newFixture(t)
	g := f.aliveGroup(t)
	c := NewClient(f.srv.URL, "acct")
	l, err := c.ProbeInvite(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Alive {
		t.Fatal("landing page reports revoked for alive group")
	}
	if l.Title != g.Title {
		t.Fatalf("scraped title %q, want %q", l.Title, g.Title)
	}
	if l.CreatorPhone != g.CreatorPhone {
		t.Fatalf("scraped phone %q, want %q", l.CreatorPhone, g.CreatorPhone)
	}
	if l.CreatorCountry != g.CreatorCountry {
		t.Fatalf("scraped country %q, want %q", l.CreatorCountry, g.CreatorCountry)
	}
	if want := f.world.MembersAt(g, f.clock.Now()); l.Members != want {
		t.Fatalf("scraped members %d, want %d", l.Members, want)
	}
}

func TestLandingPageRevoked(t *testing.T) {
	f := newFixture(t)
	g := f.deadGroup(t)
	c := NewClient(f.srv.URL, "acct")
	l, err := c.ProbeInvite(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if l.Alive {
		t.Fatal("revoked group reported alive")
	}
}

func TestLandingPageUnknownCode(t *testing.T) {
	f := newFixture(t)
	c := NewClient(f.srv.URL, "acct")
	_, err := c.ProbeInvite(context.Background(), "NoSuchCode123")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestJoinAndMembership(t *testing.T) {
	f := newFixture(t)
	g := f.aliveGroup(t)
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()

	if _, err := c.Info(ctx, g.Code); !errors.Is(err, ErrNotMember) {
		t.Fatalf("pre-join Info err = %v, want ErrNotMember", err)
	}
	joinedAt, err := c.Join(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !joinedAt.Equal(f.clock.Now()) {
		t.Fatalf("joinedAt %v, want %v", joinedAt, f.clock.Now())
	}
	info, err := c.Info(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CreatedAt.Equal(g.CreatedAt.Truncate(time.Millisecond)) {
		t.Fatalf("creation date %v, want %v", info.CreatedAt, g.CreatedAt)
	}
	members, err := c.Members(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) == 0 {
		t.Fatal("no members returned")
	}
	for _, m := range members {
		if m.Phone == "" {
			t.Fatal("member without exposed phone (WhatsApp exposes all)")
		}
	}
}

func TestJoinRevoked(t *testing.T) {
	f := newFixture(t)
	g := f.deadGroup(t)
	c := NewClient(f.srv.URL, "acct")
	if _, err := c.Join(context.Background(), g.Code); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
}

func TestMessagesOnlyAfterJoin(t *testing.T) {
	f := newFixture(t)
	g := f.aliveGroup(t)
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	joinedAt, err := c.Join(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(3 * 24 * time.Hour)
	msgs, err := c.Messages(ctx, g.Code, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.SentAt.Before(joinedAt) {
			t.Fatalf("message at %v predates join %v", m.SentAt, joinedAt)
		}
	}
	// The group had history before the join that must not be visible:
	// the world holds messages from its creation, the API returns none.
	pre := f.world.Messages(g, g.CreatedAt, joinedAt)
	if len(pre) > 0 && len(msgs) >= len(pre)+len(f.world.Messages(g, joinedAt, f.clock.Now()))+1 {
		t.Fatal("pre-join history leaked")
	}
}

func TestJoinCapBansAccount(t *testing.T) {
	f := newFixture(t)
	c := NewClient(f.srv.URL, "greedy")
	ctx := context.Background()
	joined, banned := 0, false
	for _, g := range f.world.Groups[platform.WhatsApp] {
		if !f.world.AliveAt(g, f.clock.Now()) {
			continue
		}
		_, err := c.Join(ctx, g.Code)
		switch {
		case err == nil:
			joined++
		case errors.Is(err, ErrBanned):
			banned = true
		default:
			t.Fatal(err)
		}
		if banned {
			break
		}
	}
	if !banned {
		t.Skipf("fixture too small to hit the join cap (joined %d)", joined)
	}
	if joined < 250 || joined > 300 {
		t.Fatalf("ban after %d joins, want between 250 and 300", joined)
	}
}

func TestScrapeLandingMalformed(t *testing.T) {
	if _, err := scrapeLanding("<html><body>garbage</body></html>"); err == nil {
		t.Fatal("malformed landing page should error")
	}
}
