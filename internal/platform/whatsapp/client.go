package whatsapp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/httpx"
	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/retry"
)

// Landing is the metadata scraped off an invite landing page without
// joining the group — exactly the fields Section 3.2 lists: title, size,
// creator phone number and its country code.
type Landing struct {
	Alive          bool
	Title          string
	Members        int
	CreatorPhone   string
	CreatorCountry string
}

// Sentinel errors for join and probe outcomes.
var (
	ErrRevoked   = errors.New("whatsapp: invite revoked")
	ErrNotFound  = errors.New("whatsapp: invite not found")
	ErrBanned    = errors.New("whatsapp: account banned")
	ErrNotMember = errors.New("whatsapp: not a member")
)

// Client scrapes landing pages and drives the web-client API for one
// account.
type Client struct {
	BaseURL string
	Account string
	HTTP    *http.Client
	// Retry is the shared retry policy: throttles wait out the Retry-After
	// header through the policy's Waiter, transient failures back off,
	// sentinels surface immediately.
	Retry *retry.Policy
	// interner deduplicates repeated vocabulary (author phones, message
	// types, countries) for this client's lifetime.
	interner *ids.Interner
}

// NewClient returns a client bound to an account name. The retry jitter
// seed derives from the account so accounts decorrelate.
func NewClient(baseURL, account string) *Client {
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		Account:  account,
		HTTP:     httpx.NewClient(),
		Retry:    retry.New(accountSeed(account)),
		interner: ids.NewInterner(),
	}
}

// accountSeed hashes the account name (FNV-1a) into a jitter seed.
func accountSeed(account string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(account); i++ {
		h ^= uint64(account[i])
		h *= 1099511628211
	}
	return h
}

// ProbeInvite fetches and scrapes the landing page of an invite code.
// WhatsApp has no API for this, so it parses the HTML the way the study's
// automation did.
func (c *Client) ProbeInvite(ctx context.Context, code string) (Landing, error) {
	path := "/invite/" + code
	var l Landing
	err := c.Retry.Do("GET "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-WA-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			httpx.Drain(resp)
			return retry.Fail(ErrNotFound)
		case resp.StatusCode == http.StatusOK:
			bp := jsonx.GetBuf()
			body, err := jsonx.ReadInto(bp, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if err != nil {
				jsonx.PutBuf(bp)
				return retry.Retry(err)
			}
			l, err = scrapeLanding(string(body))
			jsonx.PutBuf(bp)
			if err != nil {
				// A half-rendered page (e.g. injected truncation) is
				// transient; the next attempt re-fetches.
				return retry.Retry(err)
			}
			return retry.Ok()
		case resp.StatusCode == http.StatusTooManyRequests:
			after := retry.ParseRetryAfter(resp.Header)
			httpx.Drain(resp)
			return retry.Throttled(after, errors.New("whatsapp: rate limited"))
		case resp.StatusCode >= 500:
			httpx.Drain(resp)
			return retry.Retry(fmt.Errorf("whatsapp: landing status %d", resp.StatusCode))
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return retry.Fail(fmt.Errorf("whatsapp: landing status %d: %s", resp.StatusCode, body))
		}
	})
	return l, err
}

// scrapeLanding parses the landing-page HTML.
func scrapeLanding(page string) (Landing, error) {
	if strings.Contains(page, `class="revoked"`) {
		return Landing{Alive: false}, nil
	}
	l := Landing{Alive: true}
	var ok bool
	if l.Title, ok = attr(page, "og:title", "content"); !ok || l.Title == "" {
		return Landing{}, fmt.Errorf("whatsapp: landing page missing title")
	}
	if v, ok := dataAttr(page, "data-members"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Landing{}, fmt.Errorf("whatsapp: bad member count %q", v)
		}
		l.Members = n
	}
	l.CreatorPhone, _ = dataAttr(page, "data-creator-phone")
	l.CreatorCountry, _ = dataAttr(page, "data-creator-cc")
	return l, nil
}

// attr extracts content="..." from the meta tag with property=name.
func attr(page, property, key string) (string, bool) {
	i := strings.Index(page, `property="`+property+`"`)
	if i < 0 {
		return "", false
	}
	rest := page[i:]
	j := strings.Index(rest, key+`="`)
	if j < 0 {
		return "", false
	}
	rest = rest[j+len(key)+2:]
	k := strings.IndexByte(rest, '"')
	if k < 0 {
		return "", false
	}
	return htmlUnescape(rest[:k]), true
}

// dataAttr extracts a data-* attribute value.
func dataAttr(page, name string) (string, bool) {
	i := strings.Index(page, name+`="`)
	if i < 0 {
		return "", false
	}
	rest := page[i+len(name)+2:]
	k := strings.IndexByte(rest, '"')
	if k < 0 {
		return "", false
	}
	return htmlUnescape(rest[:k]), true
}

// htmlUnescaper is hoisted to package scope: strings.NewReplacer builds
// its replacement trie on construction, which is too expensive to repeat
// per scraped attribute.
var htmlUnescaper = strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'", "&middot;", "·")

func htmlUnescape(s string) string {
	return htmlUnescaper.Replace(s)
}

// Join joins a group; the service enforces the per-account cap.
func (c *Client) Join(ctx context.Context, code string) (time.Time, error) {
	path := "/client/join/" + code
	var joined time.Time
	err := c.Retry.Do("POST "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-WA-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var out struct {
				JoinedAtMS int64 `json:"joined_at_ms"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return retry.Retry(fmt.Errorf("whatsapp: decoding join response: %w", err))
			}
			joined = time.UnixMilli(out.JoinedAtMS).UTC()
			return retry.Ok()
		case resp.StatusCode == http.StatusGone:
			return retry.Fail(ErrRevoked)
		case resp.StatusCode == http.StatusNotFound:
			return retry.Fail(ErrNotFound)
		case resp.StatusCode == http.StatusForbidden:
			return retry.Fail(ErrBanned)
		case resp.StatusCode == http.StatusTooManyRequests:
			return retry.Throttled(retry.ParseRetryAfter(resp.Header), errors.New("whatsapp: rate limited"))
		case resp.StatusCode >= 500:
			return retry.Retry(fmt.Errorf("whatsapp: join status %d", resp.StatusCode))
		default:
			return retry.Fail(fmt.Errorf("whatsapp: join status %d", resp.StatusCode))
		}
	})
	return joined, err
}

// Message is one synced group message.
type Message struct {
	AuthorPhone string
	UserID      uint64
	SentAt      time.Time
	Type        string
	Text        string
}

// Messages syncs messages of a joined group since the given time (zero =
// since join; WhatsApp never returns pre-join history).
func (c *Client) Messages(ctx context.Context, code string, since time.Time) ([]Message, error) {
	return c.MessagesUntil(ctx, code, since, time.Time{})
}

// MessagesUntil is Messages with an explicit upper bound on the sync window
// (zero until = the service's current time). Pinning the bound keeps the
// returned message set independent of virtual-clock advances made by
// concurrent collectors.
func (c *Client) MessagesUntil(ctx context.Context, code string, since, until time.Time) ([]Message, error) {
	u := "/client/messages/" + code
	q := url.Values{}
	if !since.IsZero() {
		q.Set("since_ms", strconv.FormatInt(since.UnixMilli(), 10))
	}
	if !until.IsZero() {
		q.Set("until_ms", strconv.FormatInt(until.UnixMilli(), 10))
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var msgs []Message
	err := c.getParse(ctx, u, func(body []byte) error {
		var perr error
		msgs, perr = parseMessages(body, c.interner)
		return perr
	})
	if err != nil {
		return nil, err
	}
	return msgs, nil
}

// parseMessages decodes a /client/messages body. Author phones, message
// types and countries recur across the sync window, so they are
// interned; text bodies are copied.
func parseMessages(body []byte, in *ids.Interner) ([]Message, error) {
	var d jsonx.Dec
	d.Reset(body)
	var msgs []Message
	err := d.Obj(func(key []byte) error {
		if string(key) != "messages" {
			return d.Skip()
		}
		return d.Arr(func() error {
			var m Message
			var sentMS int64
			if err := d.Obj(func(k2 []byte) error {
				switch string(k2) {
				case "author":
					b, err := d.StrBytes()
					if err != nil {
						return err
					}
					m.AuthorPhone = in.InternBytes(b)
					return nil
				case "user_id":
					v, err := d.Uint()
					m.UserID = v
					return err
				case "sent_ms":
					v, err := d.Int()
					sentMS = v
					return err
				case "type":
					b, err := d.StrBytes()
					if err != nil {
						return err
					}
					m.Type = in.InternBytes(b)
					return nil
				case "text":
					s, err := d.Str()
					m.Text = s
					return err
				}
				return d.Skip()
			}); err != nil {
				return err
			}
			m.SentAt = time.UnixMilli(sentMS).UTC()
			msgs = append(msgs, m)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return msgs, d.End()
}

// Member is one group member with the PII WhatsApp exposes to members.
type Member struct {
	Phone   string
	UserID  uint64
	Country string
}

// Members lists the members of a joined group.
func (c *Client) Members(ctx context.Context, code string) ([]Member, error) {
	var ms []Member
	err := c.getParse(ctx, "/client/members/"+code, func(body []byte) error {
		var perr error
		ms, perr = parseMembers(body, c.interner)
		return perr
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}

// parseMembers decodes a /client/members body, interning the small
// country vocabulary. Phones are unique per member and copied.
func parseMembers(body []byte, in *ids.Interner) ([]Member, error) {
	var d jsonx.Dec
	d.Reset(body)
	var ms []Member
	err := d.Obj(func(key []byte) error {
		if string(key) != "members" {
			return d.Skip()
		}
		return d.Arr(func() error {
			var m Member
			if err := d.Obj(func(k2 []byte) error {
				switch string(k2) {
				case "phone":
					s, err := d.Str()
					m.Phone = s
					return err
				case "user_id":
					v, err := d.Uint()
					m.UserID = v
					return err
				case "country":
					b, err := d.StrBytes()
					if err != nil {
						return err
					}
					m.Country = in.InternBytes(b)
					return nil
				}
				return d.Skip()
			}); err != nil {
				return err
			}
			ms = append(ms, m)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return ms, d.End()
}

// GroupInfo is member-visible group metadata.
type GroupInfo struct {
	Title     string
	CreatedAt time.Time
	Members   int
}

// Info fetches member-visible metadata, including the creation date.
func (c *Client) Info(ctx context.Context, code string) (GroupInfo, error) {
	var out struct {
		Title     string `json:"title"`
		CreatedMS int64  `json:"created_ms"`
		Members   int    `json:"members"`
	}
	if err := c.getJSON(ctx, "/client/groupinfo/"+code, &out); err != nil {
		return GroupInfo{}, err
	}
	return GroupInfo{Title: out.Title, CreatedAt: time.UnixMilli(out.CreatedMS).UTC(), Members: out.Members}, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	return c.getParse(ctx, path, func(body []byte) error {
		return json.Unmarshal(body, v)
	})
}

// getParse performs one authenticated GET through the retry policy,
// reading 200 bodies into a pooled buffer handed to parse. parse must
// not retain the slice; a parse error makes the attempt transient.
func (c *Client) getParse(ctx context.Context, path string, parse func(body []byte) error) error {
	return c.Retry.Do("GET "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-WA-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			bp := jsonx.GetBuf()
			body, err := jsonx.ReadInto(bp, io.LimitReader(resp.Body, 16<<20))
			if err != nil {
				jsonx.PutBuf(bp)
				return retry.Retry(fmt.Errorf("whatsapp: reading response: %w", err))
			}
			err = parse(body)
			jsonx.PutBuf(bp)
			if err != nil {
				return retry.Retry(fmt.Errorf("whatsapp: decoding response: %w", err))
			}
			return retry.Ok()
		case resp.StatusCode == http.StatusForbidden:
			io.Copy(io.Discard, resp.Body)
			return retry.Fail(ErrNotMember)
		case resp.StatusCode == http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			return retry.Fail(ErrNotFound)
		case resp.StatusCode == http.StatusTooManyRequests:
			return retry.Throttled(retry.ParseRetryAfter(resp.Header), errors.New("whatsapp: rate limited"))
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, resp.Body)
			return retry.Retry(fmt.Errorf("whatsapp: status %d", resp.StatusCode))
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return retry.Fail(fmt.Errorf("whatsapp: status %d: %s", resp.StatusCode, body))
		}
	})
}
