// Package whatsapp simulates the two WhatsApp surfaces the study scraped:
// public invite landing pages (readable without joining — and leaking the
// group creator's phone number, the paper's headline PII finding) and the
// web-client backend used to join groups and sync messages. WhatsApp has no
// data API, so the client side of this package is a scraper, not an API
// client.
package whatsapp

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"msgscope/internal/checkpoint"
	"msgscope/internal/faults"
	"msgscope/internal/jsonx"
	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// Service simulates WhatsApp's invite landing pages and web client.
type Service struct {
	world *simworld.World
	clock simclock.Clock

	// Faults, when set, injects failures into every surface.
	Faults *faults.Injector

	mu       sync.Mutex
	accounts map[string]*account
}

type account struct {
	joined  map[string]time.Time // invite code -> join time
	joinCap int
	banned  bool
}

// NewService builds the service over the world.
func NewService(world *simworld.World, clock simclock.Clock) *Service {
	return &Service{world: world, clock: clock, accounts: map[string]*account{}}
}

// Handler returns the HTTP mux: GET /invite/{code} is the public landing
// page; /client/* is the authenticated web-client API (account via the
// X-WA-Account header).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /invite/{code}", s.faulty(s.handleInvite))
	mux.HandleFunc("POST /client/join/{code}", s.faulty(s.handleJoin))
	mux.HandleFunc("GET /client/messages/{code}", s.faulty(s.handleMessages))
	mux.HandleFunc("GET /client/members/{code}", s.faulty(s.handleMembers))
	mux.HandleFunc("GET /client/groupinfo/{code}", s.faulty(s.handleGroupInfo))
	return mux
}

// faulty runs fault interception before the handler. WhatsApp has no API,
// so an injected flood is plain HTTP throttling with a Retry-After header.
func (s *Service) faulty(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Faults.Intercept(w, r, "X-WA-Account", func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", "2")
			jsonError(w, http.StatusTooManyRequests, "rate limited")
		}) {
			return
		}
		h(w, r)
	}
}

func (s *Service) group(code string) *simworld.Group {
	return s.world.GroupByCode(platform.WhatsApp, code)
}

// handleInvite renders the public landing page. Revoked invites render a
// distinct revocation notice (HTTP 200, as on the real site).
func (s *Service) handleInvite(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if g == nil {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `<html><body><h1>Couldn't find this page</h1></body></html>`)
		return
	}
	if !s.world.AliveAt(g, now) {
		fmt.Fprint(w, `<html><head><title>WhatsApp Group Invite</title></head>`+
			`<body><div class="revoked">This invite link was revoked</div>`+
			`<p>Ask a group admin for a new link.</p></body></html>`)
		return
	}
	members := s.world.MembersAt(g, now)
	fmt.Fprintf(w, `<html><head><title>WhatsApp Group Invite</title>
<meta property="og:title" content="%s"/>
<meta property="og:description" content="WhatsApp Group Invite"/>
</head><body>
<div class="group-info" data-members="%d" data-creator-phone="%s" data-creator-cc="%s">
<h2 class="group-title">%s</h2>
<p class="group-size">Group &middot; %d participants</p>
<p class="group-creator">Created by %s</p>
<a class="join-btn" href="/client/join/%s">Join Chat</a>
</div></body></html>`,
		html.EscapeString(g.Title), members, g.CreatorPhone, g.CreatorCountry,
		html.EscapeString(g.Title), members, g.CreatorPhone, code)
}

func (s *Service) auth(r *http.Request) (string, bool) {
	acct := r.Header.Get("X-WA-Account")
	return acct, acct != ""
}

func (s *Service) accountState(name string) *account {
	a, ok := s.accounts[name]
	if !ok {
		// Join cap "between 250 and 300" per the paper; deterministic
		// per-account jitter.
		capJitter := 0
		for i := 0; i < len(name); i++ {
			capJitter = (capJitter*31 + int(name[i])) % 51
		}
		a = &account{joined: map[string]time.Time{}, joinCap: 250 + capJitter}
		s.accounts[name] = a
	}
	return a
}

// AccountStates snapshots every account's mutable state for a study
// checkpoint, sorted by account name (join entries by code). The join cap
// is not carried: it is a pure function of the account name.
func (s *Service) AccountStates() []checkpoint.AccountState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]checkpoint.AccountState, 0, len(s.accounts))
	for name, a := range s.accounts {
		st := checkpoint.AccountState{Name: name, Banned: a.banned}
		for code, at := range a.joined {
			st.Joined = append(st.Joined, checkpoint.AccountJoin{Code: code, AtUnixNano: at.UnixNano()})
		}
		sort.Slice(st.Joined, func(i, j int) bool { return st.Joined[i].Code < st.Joined[j].Code })
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreAccounts installs checkpointed account states; accounts absent
// from the snapshot stay lazily default-initialized, exactly as a fresh
// run would first see them.
func (s *Service) RestoreAccounts(states []checkpoint.AccountState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range states {
		a := s.accountState(st.Name)
		a.banned = st.Banned
		for _, j := range st.Joined {
			a.joined[j.Code] = time.Unix(0, j.AtUnixNano).UTC()
		}
	}
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	acctName, ok := s.auth(r)
	if !ok {
		jsonError(w, http.StatusUnauthorized, "missing X-WA-Account")
		return
	}
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil {
		jsonError(w, http.StatusNotFound, "unknown invite")
		return
	}
	if !s.world.AliveAt(g, now) {
		jsonError(w, http.StatusGone, "invite revoked")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.accountState(acctName)
	if a.banned {
		jsonError(w, http.StatusForbidden, "account banned")
		return
	}
	if _, dup := a.joined[code]; dup {
		writeJSON(w, map[string]any{"ok": true, "already": true})
		return
	}
	if len(a.joined) >= a.joinCap {
		// Exceeding the empirical group limit gets accounts banned.
		a.banned = true
		jsonError(w, http.StatusForbidden, "account banned: too many groups")
		return
	}
	a.joined[code] = now
	writeJSON(w, map[string]any{"ok": true, "joined_at_ms": now.UnixMilli()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// membership returns the join time, enforcing that the account is a member.
func (s *Service) membership(w http.ResponseWriter, r *http.Request, code string) (time.Time, bool) {
	acctName, ok := s.auth(r)
	if !ok {
		jsonError(w, http.StatusUnauthorized, "missing X-WA-Account")
		return time.Time{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[acctName]
	if !ok {
		jsonError(w, http.StatusForbidden, "not a member")
		return time.Time{}, false
	}
	at, ok := a.joined[code]
	if !ok {
		jsonError(w, http.StatusForbidden, "not a member")
		return time.Time{}, false
	}
	return at, true
}

// messageJSON is the wire shape of one synced message.
type messageJSON struct {
	Author string `json:"author"` // member phone number (exposed PII)
	UserID uint64 `json:"user_id"`
	SentMS int64  `json:"sent_ms"`
	Type   string `json:"type"`
	Text   string `json:"text,omitempty"`
}

// handleMessages syncs group messages. WhatsApp only delivers history from
// the join time onward, regardless of the requested window.
func (s *Service) handleMessages(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	joinedAt, ok := s.membership(w, r, code)
	if !ok {
		return
	}
	g := s.group(code)
	if g == nil {
		jsonError(w, http.StatusNotFound, "unknown group")
		return
	}
	now := s.clock.Now()
	if v := r.URL.Query().Get("until_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			if t := time.UnixMilli(ms).UTC(); t.Before(now) {
				now = t
			}
		}
	}
	from := joinedAt
	if v := r.URL.Query().Get("since_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			if t := time.UnixMilli(ms).UTC(); t.After(from) {
				from = t
			}
		}
	}
	msgs := s.world.Messages(g, from, now)
	out := make([]messageJSON, len(msgs))
	for i, m := range msgs {
		u := s.world.UserByIdx(platform.WhatsApp, m.AuthorIdx)
		out[i] = messageJSON{
			Author: u.Phone,
			UserID: u.ID,
			SentMS: m.SentAt.UnixMilli(),
			Type:   m.Type.String(),
			Text:   m.Text,
		}
	}
	bp := jsonx.GetBuf()
	buf := appendMessagesResponse((*bp)[:0], out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendMessagesResponse renders the sync response byte-identically to
// json.NewEncoder(w).Encode(map[string]any{"messages": out}).
func appendMessagesResponse(dst []byte, msgs []messageJSON) []byte {
	dst = append(dst, `{"messages":[`...)
	for i := range msgs {
		if i > 0 {
			dst = append(dst, ',')
		}
		m := &msgs[i]
		dst = append(dst, `{"author":`...)
		dst = jsonx.AppendString(dst, m.Author)
		dst = append(dst, `,"user_id":`...)
		dst = jsonx.AppendUint(dst, m.UserID)
		dst = append(dst, `,"sent_ms":`...)
		dst = jsonx.AppendInt(dst, m.SentMS)
		dst = append(dst, `,"type":`...)
		dst = jsonx.AppendString(dst, m.Type)
		if m.Text != "" {
			dst = append(dst, `,"text":`...)
			dst = jsonx.AppendString(dst, m.Text)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return append(dst, '\n')
}

// memberJSON is one group member as the client sees it: the phone number is
// always visible to fellow members.
type memberJSON struct {
	Phone   string `json:"phone"`
	UserID  uint64 `json:"user_id"`
	Country string `json:"country"`
}

func (s *Service) handleMembers(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	if _, ok := s.membership(w, r, code); !ok {
		return
	}
	g := s.group(code)
	if g == nil {
		jsonError(w, http.StatusNotFound, "unknown group")
		return
	}
	idxs := s.world.MemberIdx(g, s.clock.Now())
	out := make([]memberJSON, len(idxs))
	for i, idx := range idxs {
		u := s.world.UserByIdx(platform.WhatsApp, idx)
		out[i] = memberJSON{Phone: u.Phone, UserID: u.ID, Country: u.Country}
	}
	bp := jsonx.GetBuf()
	buf := appendMembersResponse((*bp)[:0], out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendMembersResponse renders the member list byte-identically to the
// former writeJSON(map[string]any{"members": out}) call.
func appendMembersResponse(dst []byte, members []memberJSON) []byte {
	dst = append(dst, `{"members":[`...)
	for i := range members {
		if i > 0 {
			dst = append(dst, ',')
		}
		m := &members[i]
		dst = append(dst, `{"phone":`...)
		dst = jsonx.AppendString(dst, m.Phone)
		dst = append(dst, `,"user_id":`...)
		dst = jsonx.AppendUint(dst, m.UserID)
		dst = append(dst, `,"country":`...)
		dst = jsonx.AppendString(dst, m.Country)
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return append(dst, '\n')
}

// handleGroupInfo exposes metadata visible to members, including the group
// creation date (unavailable from the landing page).
func (s *Service) handleGroupInfo(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	if _, ok := s.membership(w, r, code); !ok {
		return
	}
	g := s.group(code)
	if g == nil {
		jsonError(w, http.StatusNotFound, "unknown group")
		return
	}
	writeJSON(w, map[string]any{
		"title":         g.Title,
		"created_ms":    g.CreatedAt.UnixMilli(),
		"creator_phone": g.CreatorPhone,
		"members":       s.world.MembersAt(g, s.clock.Now()),
	})
}
