package platform

import "testing"

func TestStringRoundTrip(t *testing.T) {
	for _, p := range All {
		got, err := ParsePlatform(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v failed: %v %v", p, got, err)
		}
	}
	if _, err := ParsePlatform("MySpace"); err == nil {
		t.Fatal("unknown platform parsed")
	}
}

func TestMessageTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, mt := range MessageTypes {
		s := mt.String()
		if s == "" || seen[s] {
			t.Fatalf("message type %d has empty or duplicate name %q", mt, s)
		}
		seen[s] = true
	}
	if Service.String() != "other" {
		t.Fatalf("Service renders as %q, want \"other\" (the paper's label)", Service.String())
	}
}

func TestCharacteristicsComplete(t *testing.T) {
	chars := Characteristics()
	for _, p := range All {
		c, ok := chars[p]
		if !ok {
			t.Fatalf("no characteristics for %v", p)
		}
		if c.InitialRelease == "" || c.UserBase == "" || c.MaxMembers == "" {
			t.Fatalf("incomplete characteristics for %v: %+v", p, c)
		}
	}
}

func TestLimits(t *testing.T) {
	if l := LimitsFor(WhatsApp); l.MaxGroupMembers != 257 || !l.HistoryFromJoin {
		t.Fatalf("WhatsApp limits wrong: %+v", l)
	}
	if l := LimitsFor(Discord); l.MaxJoinedGroups != 100 || l.HistoryFromJoin {
		t.Fatalf("Discord limits wrong: %+v", l)
	}
	if l := LimitsFor(Telegram); l.MaxGroupMembers != 200000 {
		t.Fatalf("Telegram limits wrong: %+v", l)
	}
}
