// Package platform defines the vocabulary shared across the three messaging
// platforms the study covers: platform identities, message types, and the
// static characteristics table (the paper's Table 1).
package platform

import "fmt"

// Platform identifies one of the three messaging platforms.
type Platform int

// The three platforms, in the paper's presentation order.
const (
	WhatsApp Platform = iota
	Telegram
	Discord
)

// All lists the platforms in presentation order.
var All = []Platform{WhatsApp, Telegram, Discord}

// String returns the display name.
func (p Platform) String() string {
	switch p {
	case WhatsApp:
		return "WhatsApp"
	case Telegram:
		return "Telegram"
	case Discord:
		return "Discord"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// ParsePlatform maps a case-sensitive display name back to a Platform.
func ParsePlatform(s string) (Platform, error) {
	switch s {
	case "WhatsApp":
		return WhatsApp, nil
	case "Telegram":
		return Telegram, nil
	case "Discord":
		return Discord, nil
	}
	return 0, fmt.Errorf("platform: unknown platform %q", s)
}

// MessageType classifies in-group messages (Figure 8).
type MessageType int

// Message types across all platforms. Service covers Telegram's
// join/leave/edit notices (the paper's "other" slice).
const (
	Text MessageType = iota
	Image
	Video
	Audio
	Sticker
	Document
	Contact
	Location
	Service
)

// MessageTypes lists all message types in presentation order.
var MessageTypes = []MessageType{Text, Image, Video, Audio, Sticker, Document, Contact, Location, Service}

// String returns the display name.
func (t MessageType) String() string {
	switch t {
	case Text:
		return "text"
	case Image:
		return "image"
	case Video:
		return "video"
	case Audio:
		return "audio"
	case Sticker:
		return "sticker"
	case Document:
		return "document"
	case Contact:
		return "contact"
	case Location:
		return "location"
	case Service:
		return "other"
	default:
		return fmt.Sprintf("MessageType(%d)", int(t))
	}
}

// Characteristic is one row of Table 1 for a single platform.
type Characteristic struct {
	InitialRelease     string
	UserBase           string
	Clients            string
	Registration       string
	PublicChatOptions  string
	MaxMembers         string
	ContentTypes       string
	DataCollectionAPI  string
	MessageForwarding  string
	EndToEndEncryption string
}

// Characteristics returns the paper's Table 1, keyed by platform.
func Characteristics() map[Platform]Characteristic {
	return map[Platform]Characteristic{
		WhatsApp: {
			InitialRelease:     "January 2009",
			UserBase:           "2 Billion",
			Clients:            "Mobile, Desktop, Web",
			Registration:       "Phone",
			PublicChatOptions:  "Groups",
			MaxMembers:         "256",
			ContentTypes:       "Text, Sticker, Image, Video, Audio, Location, Document, Contact",
			DataCollectionAPI:  "No (only Business API)",
			MessageForwarding:  "Yes (up to 5 groups)",
			EndToEndEncryption: "Yes",
		},
		Telegram: {
			InitialRelease:     "August 2013",
			UserBase:           "400 Million",
			Clients:            "Mobile, Desktop, Web",
			Registration:       "Phone",
			PublicChatOptions:  "Groups and Channels",
			MaxMembers:         "200,000 for groups (unlimited for channels)",
			ContentTypes:       "Text, Sticker, Image, Video, Audio, Location, Document, Contact",
			DataCollectionAPI:  "Yes",
			MessageForwarding:  "Yes",
			EndToEndEncryption: "Only for \"secret\" chats",
		},
		Discord: {
			InitialRelease:     "May 2015",
			UserBase:           "250 Million",
			Clients:            "Mobile, Desktop, Web",
			Registration:       "Email",
			PublicChatOptions:  "Server",
			MaxMembers:         "250,000 (500,000 for verified servers)",
			ContentTypes:       "Text, Sticker, Image, Video, Audio, Location, Document, Contact",
			DataCollectionAPI:  "Yes",
			MessageForwarding:  "Only available via link and only for members",
			EndToEndEncryption: "No",
		},
	}
}

// Limits captures the per-platform operational constraints the collection
// pipeline must respect.
type Limits struct {
	// MaxGroupMembers is the hard cap on members per public group
	// (WhatsApp 257 per the paper's text; Telegram groups 200k; Discord
	// default 250k).
	MaxGroupMembers int
	// MaxJoinedGroups is how many groups a single collection account can
	// join before being banned or blocked (WA ~250-300, DC 100; TG is
	// rate- rather than count-limited, modeled as a high cap).
	MaxJoinedGroups int
	// HistoryFromJoin reports whether a joining member only sees messages
	// posted after the join (true for WhatsApp).
	HistoryFromJoin bool
}

// LimitsFor returns the operational limits of a platform.
func LimitsFor(p Platform) Limits {
	switch p {
	case WhatsApp:
		return Limits{MaxGroupMembers: 257, MaxJoinedGroups: 250, HistoryFromJoin: true}
	case Telegram:
		return Limits{MaxGroupMembers: 200000, MaxJoinedGroups: 500, HistoryFromJoin: false}
	case Discord:
		return Limits{MaxGroupMembers: 250000, MaxJoinedGroups: 100, HistoryFromJoin: false}
	default:
		panic(fmt.Sprintf("platform: no limits for %v", p))
	}
}
