package telegram

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"msgscope/internal/faults"
	"msgscope/internal/httpx"
	"msgscope/internal/ids"
	"msgscope/internal/jsonx"
	"msgscope/internal/retry"
)

// Preview is the metadata scraped from a t.me web page without joining:
// title, member/online counts, and whether the chat is a channel.
type Preview struct {
	Alive     bool
	Title     string
	Members   int
	Online    int
	IsChannel bool
}

// Sentinel errors.
var (
	ErrExpired    = errors.New("telegram: invite expired or chat deleted")
	ErrNotFound   = errors.New("telegram: not found")
	ErrHiddenList = errors.New("telegram: member list hidden by admins")
	ErrNotMember  = errors.New("telegram: not a member")
	ErrFloodWait  = errors.New("telegram: FLOOD_WAIT")
)

// Client scrapes web previews and drives the API for one account.
type Client struct {
	BaseURL string
	Account string
	HTTP    *http.Client
	// Retry is the shared retry policy: FLOOD_WAITs wait out the
	// advertised retry_after through the policy's Waiter, transient
	// failures back off, sentinels surface immediately.
	Retry *retry.Policy
	// interner deduplicates per-message vocabulary (message types,
	// member names) for this client's lifetime.
	interner *ids.Interner
}

// NewClient returns a client bound to an account name. The retry jitter
// seed derives from the account so accounts decorrelate.
func NewClient(baseURL, account string) *Client {
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		Account:  account,
		HTTP:     httpx.NewClient(),
		Retry:    retry.New(accountSeed(account)),
		interner: ids.NewInterner(),
	}
}

// accountSeed hashes the account name (FNV-1a) into a jitter seed.
func accountSeed(account string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(account); i++ {
		h ^= uint64(account[i])
		h *= 1099511628211
	}
	return h
}

// ProbePreview fetches and scrapes the public web preview.
func (c *Client) ProbePreview(ctx context.Context, code string) (Preview, error) {
	path := "/web/" + code
	var p Preview
	err := c.Retry.Do("GET "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			httpx.Drain(resp)
			return retry.Fail(ErrNotFound)
		case resp.StatusCode == http.StatusOK:
			body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if err != nil {
				return retry.Retry(err)
			}
			p, err = scrapePreview(string(body))
			if err != nil {
				// A half-rendered page (e.g. injected truncation) is
				// transient; the next attempt re-fetches.
				return retry.Retry(err)
			}
			return retry.Ok()
		case resp.StatusCode == 420:
			return retry.Throttled(floodWaitOf(resp), ErrFloodWait)
		case resp.StatusCode >= 500:
			httpx.Drain(resp)
			return retry.Retry(fmt.Errorf("telegram: preview status %d", resp.StatusCode))
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return retry.Fail(fmt.Errorf("telegram: preview status %d: %s", resp.StatusCode, body))
		}
	})
	return p, err
}

func scrapePreview(page string) (Preview, error) {
	if strings.Contains(page, "tgme_page_invalid") {
		return Preview{Alive: false}, nil
	}
	p := Preview{Alive: true}
	title, ok := htmlAttr(page, `property="og:title"`, "content")
	if !ok {
		return Preview{}, fmt.Errorf("telegram: preview missing title")
	}
	p.Title = title
	if v, ok := htmlAttr(page, `class="tgme_page"`, "data-kind"); ok {
		p.IsChannel = v == "channel"
	}
	if v, ok := htmlAttr(page, `class="tgme_page"`, "data-members"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Preview{}, fmt.Errorf("telegram: bad member count %q", v)
		}
		p.Members = n
	}
	if v, ok := htmlAttr(page, `class="tgme_page"`, "data-online"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Preview{}, fmt.Errorf("telegram: bad online count %q", v)
		}
		p.Online = n
	}
	return p, nil
}

// htmlAttr finds key="value" after the first occurrence of marker.
func htmlAttr(page, marker, key string) (string, bool) {
	i := strings.Index(page, marker)
	if i < 0 {
		return "", false
	}
	rest := page[i:]
	// Look in the surrounding tag and the preceding head section.
	if j := strings.Index(rest, key+`="`); j >= 0 {
		rest = rest[j+len(key)+2:]
		if k := strings.IndexByte(rest, '"'); k >= 0 {
			return unescape(rest[:k]), true
		}
	}
	// og:title has content after the property marker on the same tag.
	return "", false
}

// htmlUnescaper is hoisted to package scope: strings.NewReplacer builds
// a generic replacement trie on construction, which profiling showed as
// a per-probe allocation hotspot when it lived inside unescape.
var htmlUnescaper = strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'")

func unescape(s string) string {
	return htmlUnescaper.Replace(s)
}

// floodWaitOf reads the advertised retry_after from a 420 body, draining
// and closing it (0 when absent so the policy falls back to its base pad).
func floodWaitOf(resp *http.Response) time.Duration {
	var e struct {
		RetryAfter float64 `json:"retry_after"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	httpx.Drain(resp)
	return time.Duration(e.RetryAfter * float64(time.Second))
}

// apiDoParse performs one authenticated API call against path through
// the shared retry policy, mapping Telegram error codes to sentinel
// errors. FLOOD_WAITs wait out the advertised retry_after; transient
// failures (transport errors, 5xx, undecodable bodies) back off; the
// retry key is the method + path, never the host (random test ports).
// On 200 the body is read into a pooled buffer and handed to parse;
// parse must not retain the slice (it is reused by other requests), and
// a parse error makes the attempt transient.
func (c *Client) apiDoParse(ctx context.Context, method, path string, parse func(body []byte) error) error {
	return c.Retry.Do(method+" "+path, func(attempt int) retry.Outcome {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, nil)
		if err != nil {
			return retry.Fail(err)
		}
		req.Header.Set("X-TG-Account", c.Account)
		faults.Mark(req, attempt)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return retry.Retry(err)
		}
		if resp.StatusCode == 420 {
			return retry.Throttled(floodWaitOf(resp), ErrFloodWait)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			if parse == nil {
				io.Copy(io.Discard, resp.Body)
				return retry.Ok()
			}
			bp := jsonx.GetBuf()
			body, err := jsonx.ReadInto(bp, io.LimitReader(resp.Body, 16<<20))
			if err != nil {
				jsonx.PutBuf(bp)
				return retry.Retry(fmt.Errorf("telegram: reading response: %w", err))
			}
			err = parse(body)
			jsonx.PutBuf(bp)
			if err != nil {
				return retry.Retry(fmt.Errorf("telegram: decoding response: %w", err))
			}
			return retry.Ok()
		case resp.StatusCode == http.StatusForbidden:
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			if e.Error == "CHAT_ADMIN_REQUIRED" {
				return retry.Fail(ErrHiddenList)
			}
			return retry.Fail(ErrNotMember)
		case resp.StatusCode == http.StatusBadRequest:
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			if strings.HasPrefix(e.Error, "INVITE_HASH") {
				return retry.Fail(ErrExpired)
			}
			return retry.Fail(fmt.Errorf("telegram: api error %s", e.Error))
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, resp.Body)
			return retry.Retry(fmt.Errorf("telegram: status %d", resp.StatusCode))
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return retry.Fail(fmt.Errorf("telegram: status %d: %s", resp.StatusCode, body))
		}
	})
}

// apiDo is the encoding/json convenience wrapper over apiDoParse for
// the cold endpoints (join, chat info).
func (c *Client) apiDo(ctx context.Context, method, path string, v any) error {
	if v == nil {
		return c.apiDoParse(ctx, method, path, nil)
	}
	return c.apiDoParse(ctx, method, path, func(body []byte) error {
		return json.Unmarshal(body, v)
	})
}

// Join joins a group or channel by its invite code or public name.
func (c *Client) Join(ctx context.Context, code string) (time.Time, error) {
	var out struct {
		JoinedAtMS int64 `json:"joined_at_ms"`
	}
	if err := c.apiDo(ctx, http.MethodPost, "/api/join/"+code, &out); err != nil {
		return time.Time{}, err
	}
	return time.UnixMilli(out.JoinedAtMS).UTC(), nil
}

// Message is one history message.
type Message struct {
	FromID uint64
	SentAt time.Time
	Type   string
	Text   string
}

// HistoryPager walks a chat's history backwards page by page. Its cursor
// survives FLOOD_WAIT errors, so the caller can wait (or, in simulation,
// advance the clock) and call Next again without losing position.
type HistoryPager struct {
	c      *Client
	code   string
	offset int64
	done   bool
}

// HistoryPager returns a pager over the chat's full history.
func (c *Client) HistoryPager(code string) *HistoryPager {
	return &HistoryPager{c: c, code: code}
}

// HistoryPagerAt returns a pager whose first page is anchored at until
// instead of the service's current clock. Collectors running concurrently
// advance virtual time (flood waits on other chats), so an unanchored pager
// would see a history window that depends on scheduling; an anchored one is
// a pure function of (chat, until).
func (c *Client) HistoryPagerAt(code string, until time.Time) *HistoryPager {
	return &HistoryPager{c: c, code: code, offset: until.UnixMilli()}
}

// Done reports whether the history is exhausted.
func (p *HistoryPager) Done() bool { return p.done }

// Next fetches one page (newest remaining first). It returns an empty page
// with Done()==true at the end of history.
func (p *HistoryPager) Next(ctx context.Context) ([]Message, error) {
	if p.done {
		return nil, nil
	}
	u := "/api/history/" + p.code + "?limit=1000"
	if p.offset != 0 {
		u += "&offset_date_ms=" + strconv.FormatInt(p.offset, 10)
	}
	var out []Message
	var next int64
	err := p.c.apiDoParse(ctx, http.MethodGet, u, func(body []byte) error {
		var perr error
		out, next, perr = parseHistoryPage(body, p.c.interner)
		return perr
	})
	if err != nil {
		return nil, err
	}
	if next == 0 {
		p.done = true
	} else {
		p.offset = next
	}
	return out, nil
}

// parseHistoryPage decodes one /api/history page. Message types are
// interned (a handful of distinct values across millions of messages);
// only text bodies are copied.
func parseHistoryPage(body []byte, in *ids.Interner) ([]Message, int64, error) {
	var d jsonx.Dec
	d.Reset(body)
	var msgs []Message
	var next int64
	err := d.Obj(func(key []byte) error {
		switch string(key) {
		case "messages":
			return d.Arr(func() error {
				var m Message
				var dateMS int64
				if err := d.Obj(func(k2 []byte) error {
					switch string(k2) {
					case "from_id":
						v, err := d.Uint()
						m.FromID = v
						return err
					case "date_ms":
						v, err := d.Int()
						dateMS = v
						return err
					case "type":
						b, err := d.StrBytes()
						if err != nil {
							return err
						}
						m.Type = in.InternBytes(b)
						return nil
					case "text":
						s, err := d.Str()
						m.Text = s
						return err
					}
					return d.Skip()
				}); err != nil {
					return err
				}
				m.SentAt = time.UnixMilli(dateMS).UTC()
				msgs = append(msgs, m)
				return nil
			})
		case "next_offset_date_ms":
			v, err := d.Int()
			next = v
			return err
		}
		return d.Skip()
	})
	if err != nil {
		return nil, 0, err
	}
	return msgs, next, d.End()
}

// History pages backwards through the chat's entire history (since
// creation), up to maxMessages (0 = unlimited).
func (c *Client) History(ctx context.Context, code string, maxMessages int) ([]Message, error) {
	var out []Message
	p := c.HistoryPager(code)
	for !p.Done() {
		page, err := p.Next(ctx)
		if err != nil {
			return out, err
		}
		for _, m := range page {
			out = append(out, m)
			if maxMessages > 0 && len(out) >= maxMessages {
				return out, nil
			}
		}
	}
	return out, nil
}

// Participant is one member profile; Phone is empty unless the user opted
// into phone visibility.
type Participant struct {
	ID    uint64
	Name  string
	Phone string
}

// Participants lists the chat's members; admins may hide the list, in
// which case ErrHiddenList is returned.
func (c *Client) Participants(ctx context.Context, code string) ([]Participant, error) {
	var ps []Participant
	err := c.apiDoParse(ctx, http.MethodGet, "/api/participants/"+code, func(body []byte) error {
		var d jsonx.Dec
		d.Reset(body)
		ps = ps[:0]
		err := d.Obj(func(key []byte) error {
			if string(key) != "participants" {
				return d.Skip()
			}
			return d.Arr(func() error {
				var p Participant
				if err := d.Obj(func(k2 []byte) error {
					switch string(k2) {
					case "id":
						v, err := d.Uint()
						p.ID = v
						return err
					case "name":
						// Names draw from a small syllable pool; intern.
						b, err := d.StrBytes()
						if err != nil {
							return err
						}
						p.Name = c.interner.InternBytes(b)
						return nil
					case "phone":
						s, err := d.Str()
						p.Phone = s
						return err
					}
					return d.Skip()
				}); err != nil {
					return err
				}
				ps = append(ps, p)
				return nil
			})
		})
		if err != nil {
			return err
		}
		return d.End()
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// ChatInfo is member-visible chat metadata.
type ChatInfo struct {
	Title         string
	CreatedAt     time.Time
	IsChannel     bool
	Members       int
	HiddenMembers bool
	CreatorID     int
}

// Info fetches member-visible chat metadata including the creation date
// and the creator's user ID.
func (c *Client) Info(ctx context.Context, code string) (ChatInfo, error) {
	var out struct {
		Title         string `json:"title"`
		CreatedMS     int64  `json:"created_ms"`
		IsChannel     bool   `json:"is_channel"`
		Members       int    `json:"members"`
		HiddenMembers bool   `json:"hidden_members"`
		CreatorID     int    `json:"creator_id"`
	}
	if err := c.apiDo(ctx, http.MethodGet, "/api/chatinfo/"+code, &out); err != nil {
		return ChatInfo{}, err
	}
	return ChatInfo{
		Title:         out.Title,
		CreatedAt:     time.UnixMilli(out.CreatedMS).UTC(),
		IsChannel:     out.IsChannel,
		Members:       out.Members,
		HiddenMembers: out.HiddenMembers,
		CreatorID:     out.CreatorID,
	}, nil
}
