// Package telegram simulates the two Telegram surfaces the study used: the
// t.me web previews (title, member and online counts, channel-vs-group,
// readable without an account) and the data API (join, full message history
// since creation, participant lists that admins may hide, FLOOD_WAIT rate
// limiting, and phone numbers visible only for the ~0.68% of users who
// opted in).
package telegram

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"msgscope/internal/checkpoint"
	"msgscope/internal/faults"
	"msgscope/internal/jsonx"
	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// ServiceConfig tunes the simulated API's rate limiting.
type ServiceConfig struct {
	// APIBudget requests are allowed per APIWindow per account before the
	// API answers 420 FLOOD_WAIT.
	APIBudget int
	APIWindow time.Duration
	// FloodWaitSeconds is the advertised wait on a 420.
	FloodWaitSeconds int
}

// DefaultServiceConfig approximates Telegram's flood limits.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{APIBudget: 120, APIWindow: time.Minute, FloodWaitSeconds: 30}
}

// Service simulates Telegram.
type Service struct {
	cfg   ServiceConfig
	world *simworld.World
	clock simclock.Clock

	// Faults, when set, injects failures into every surface.
	Faults *faults.Injector

	mu       sync.Mutex
	accounts map[string]*account

	// floodBody is the 420 FLOOD_WAIT response body, rendered once —
	// floods are frequent enough under fault injection that re-encoding
	// the same two-field object per rejection showed up in profiles.
	floodBody []byte
}

type account struct {
	joined     map[string]time.Time
	budget     float64
	lastRefill time.Time
}

// NewService builds the service over the world.
func NewService(world *simworld.World, clock simclock.Clock, cfg ServiceConfig) *Service {
	flood, _ := json.Marshal(map[string]any{
		"error":       fmt.Sprintf("FLOOD_WAIT_%d", cfg.FloodWaitSeconds),
		"retry_after": cfg.FloodWaitSeconds,
	})
	flood = append(flood, '\n')
	return &Service{cfg: cfg, world: world, clock: clock, accounts: map[string]*account{}, floodBody: flood}
}

// AccountStates snapshots every account's flood budget and memberships for
// a checkpoint, sorted by name (and joins by code) for stable output.
func (s *Service) AccountStates() []checkpoint.AccountState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]checkpoint.AccountState, 0, len(s.accounts))
	for name, a := range s.accounts {
		st := checkpoint.AccountState{
			Name:               name,
			Budget:             a.budget,
			LastRefillUnixNano: a.lastRefill.UnixNano(),
			Joined:             make([]checkpoint.AccountJoin, 0, len(a.joined)),
		}
		for code, at := range a.joined {
			st.Joined = append(st.Joined, checkpoint.AccountJoin{Code: code, AtUnixNano: at.UnixNano()})
		}
		sort.Slice(st.Joined, func(i, j int) bool { return st.Joined[i].Code < st.Joined[j].Code })
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreAccounts rebuilds account state from a checkpoint. Accounts are
// otherwise lazily created with a full budget on first sighting, so restore
// must pre-create them with their exact budget position.
func (s *Service) RestoreAccounts(states []checkpoint.AccountState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range states {
		a := &account{
			joined:     make(map[string]time.Time, len(st.Joined)),
			budget:     st.Budget,
			lastRefill: time.Unix(0, st.LastRefillUnixNano).UTC(),
		}
		for _, j := range st.Joined {
			a.joined[j.Code] = time.Unix(0, j.AtUnixNano).UTC()
		}
		s.accounts[st.Name] = a
	}
}

// Handler returns the HTTP mux. GET /web/{code...} serves the public
// preview; /api/* is the authenticated API (X-TG-Account header).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /web/{code...}", s.faulty(s.handlePreview))
	mux.HandleFunc("POST /api/join/{code...}", s.faulty(s.handleJoin))
	mux.HandleFunc("GET /api/history/{code...}", s.faulty(s.handleHistory))
	mux.HandleFunc("GET /api/participants/{code...}", s.faulty(s.handleParticipants))
	mux.HandleFunc("GET /api/chatinfo/{code...}", s.faulty(s.handleChatInfo))
	return mux
}

// faulty runs fault interception before the handler. Injected floods use
// Telegram's native 420 FLOOD_WAIT shape so the client's flood handling
// covers them identically to organic budget exhaustion.
func (s *Service) faulty(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Faults.Intercept(w, r, "X-TG-Account", func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(420)
			w.Write(s.floodBody)
		}) {
			return
		}
		h(w, r)
	}
}

func (s *Service) group(code string) *simworld.Group {
	return s.world.GroupByCode(platform.Telegram, code)
}

// handlePreview renders the t.me-style web preview.
func (s *Service) handlePreview(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if g == nil {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `<html><body>Page not found</body></html>`)
		return
	}
	if !s.world.AliveAt(g, now) {
		// Dead invite links render a generic "join Telegram" page with no
		// group details — the revocation marker the monitor keys on.
		fmt.Fprint(w, `<html><body><div class="tgme_page_invalid">`+
			`This invite link has expired or the group was deleted.</div></body></html>`)
		return
	}
	kind := "group"
	if g.IsChannel {
		kind = "channel"
	}
	members := s.world.MembersAt(g, now)
	online := s.world.OnlineAt(g, now)
	extra := fmt.Sprintf("%d members, %d online", members, online)
	if g.IsChannel {
		extra = fmt.Sprintf("%d subscribers", members)
	}
	fmt.Fprintf(w, `<html><head><meta property="og:title" content="%s"/></head><body>
<div class="tgme_page" data-kind="%s" data-members="%d" data-online="%d">
<span class="tgme_page_title">%s</span>
<div class="tgme_page_extra">%s</div>
<a class="tgme_action_button">%s</a>
</div></body></html>`,
		html.EscapeString(g.Title), kind, members, online,
		html.EscapeString(g.Title), extra, joinLabel(g))
}

func joinLabel(g *simworld.Group) string {
	if g.IsChannel {
		return "Preview channel"
	}
	return "Join group"
}

// takeToken charges one API request against the account's flood budget.
func (s *Service) takeToken(a *account) bool {
	now := s.clock.Now()
	elapsed := now.Sub(a.lastRefill)
	if elapsed > 0 {
		a.budget += float64(s.cfg.APIBudget) * float64(elapsed) / float64(s.cfg.APIWindow)
		if a.budget > float64(s.cfg.APIBudget) {
			a.budget = float64(s.cfg.APIBudget)
		}
		a.lastRefill = now
	}
	if a.budget >= 1 {
		a.budget--
		return true
	}
	return false
}

// apiAuth authenticates and rate-limits one API call. It returns nil after
// writing an error response if the call may not proceed.
func (s *Service) apiAuth(w http.ResponseWriter, r *http.Request) *account {
	name := r.Header.Get("X-TG-Account")
	if name == "" {
		writeError(w, http.StatusUnauthorized, "AUTH_KEY_UNREGISTERED")
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[name]
	if !ok {
		a = &account{
			joined:     map[string]time.Time{},
			budget:     float64(s.cfg.APIBudget),
			lastRefill: s.clock.Now(),
		}
		s.accounts[name] = a
	}
	if !s.takeToken(a) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(420)
		w.Write(s.floodBody)
		return nil
	}
	return a
}

func writeError(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	a := s.apiAuth(w, r)
	if a == nil {
		return
	}
	code := r.PathValue("code")
	g := s.group(code)
	now := s.clock.Now()
	if g == nil {
		writeError(w, http.StatusBadRequest, "INVITE_HASH_INVALID")
		return
	}
	if !s.world.AliveAt(g, now) {
		writeError(w, http.StatusBadRequest, "INVITE_HASH_EXPIRED")
		return
	}
	s.mu.Lock()
	a.joined[code] = now
	s.mu.Unlock()
	writeJSON(w, map[string]any{"ok": true, "joined_at_ms": now.UnixMilli()})
}

func (s *Service) requireMember(w http.ResponseWriter, a *account, code string) bool {
	s.mu.Lock()
	_, ok := a.joined[code]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusForbidden, "CHANNEL_PRIVATE")
		return false
	}
	return true
}

// messageJSON is one history message on the wire.
type messageJSON struct {
	FromID uint64 `json:"from_id"`
	DateMS int64  `json:"date_ms"`
	Type   string `json:"type"`
	Text   string `json:"text,omitempty"`
}

// handleHistory pages backwards through a chat's full history (Telegram
// exposes messages since the chat was created). Pagination mirrors
// messages.getHistory: offset_date_ms walks toward older messages, limit
// caps the page size.
func (s *Service) handleHistory(w http.ResponseWriter, r *http.Request) {
	a := s.apiAuth(w, r)
	if a == nil {
		return
	}
	code := r.PathValue("code")
	if !s.requireMember(w, a, code) {
		return
	}
	g := s.group(code)
	if g == nil {
		writeError(w, http.StatusBadRequest, "CHANNEL_INVALID")
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = min(n, 1000)
		}
	}
	until := s.clock.Now()
	if v := r.URL.Query().Get("offset_date_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			until = time.UnixMilli(ms).UTC()
		}
	}
	// Generate backwards day by day until the page fills.
	var page []simworld.Message
	cursor := until
	for len(page) < limit && cursor.After(g.CreatedAt) {
		from := cursor.Add(-24 * time.Hour)
		if from.Before(g.CreatedAt) {
			from = g.CreatedAt
		}
		msgs := s.world.Messages(g, from, cursor)
		// Newest first within the page.
		for i := len(msgs) - 1; i >= 0; i-- {
			page = append(page, msgs[i])
			if len(page) == limit {
				break
			}
		}
		cursor = from
	}
	out := make([]messageJSON, len(page))
	for i, m := range page {
		u := s.world.UserByIdx(platform.Telegram, m.AuthorIdx)
		out[i] = messageJSON{FromID: u.ID, DateMS: m.SentAt.UnixMilli(), Type: m.Type.String(), Text: m.Text}
	}
	var next int64
	hasNext := false
	if len(page) == limit && len(page) > 0 {
		next = page[len(page)-1].SentAt.UnixMilli()
		hasNext = true
	}
	bp := jsonx.GetBuf()
	buf := appendHistoryResponse((*bp)[:0], out, next, hasNext)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendHistoryResponse renders the history page byte-identically to
// json.NewEncoder(w).Encode(map[string]any{"messages": out, ...}) —
// encoding/json sorts map keys, so "messages" precedes
// "next_offset_date_ms", and Encode appends a newline.
func appendHistoryResponse(dst []byte, msgs []messageJSON, next int64, hasNext bool) []byte {
	dst = append(dst, `{"messages":[`...)
	for i := range msgs {
		if i > 0 {
			dst = append(dst, ',')
		}
		m := &msgs[i]
		dst = append(dst, `{"from_id":`...)
		dst = jsonx.AppendUint(dst, m.FromID)
		dst = append(dst, `,"date_ms":`...)
		dst = jsonx.AppendInt(dst, m.DateMS)
		dst = append(dst, `,"type":`...)
		dst = jsonx.AppendString(dst, m.Type)
		if m.Text != "" {
			dst = append(dst, `,"text":`...)
			dst = jsonx.AppendString(dst, m.Text)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	if hasNext {
		dst = append(dst, `,"next_offset_date_ms":`...)
		dst = jsonx.AppendInt(dst, next)
	}
	return append(dst, '}', '\n')
}

// userJSON is one participant profile; Phone is present only for opt-in
// users — the paper's 0.68%.
type userJSON struct {
	ID    uint64 `json:"id"`
	Name  string `json:"name"`
	Phone string `json:"phone,omitempty"`
}

func (s *Service) handleParticipants(w http.ResponseWriter, r *http.Request) {
	a := s.apiAuth(w, r)
	if a == nil {
		return
	}
	code := r.PathValue("code")
	if !s.requireMember(w, a, code) {
		return
	}
	g := s.group(code)
	if g == nil {
		writeError(w, http.StatusBadRequest, "CHANNEL_INVALID")
		return
	}
	if g.HiddenMembers {
		writeError(w, http.StatusForbidden, "CHAT_ADMIN_REQUIRED")
		return
	}
	idxs := s.world.MemberIdx(g, s.clock.Now())
	out := make([]userJSON, len(idxs))
	for i, idx := range idxs {
		u := s.world.UserByIdx(platform.Telegram, idx)
		j := userJSON{ID: u.ID, Name: u.Name}
		if u.PhoneVisible {
			j.Phone = u.Phone
		}
		out[i] = j
	}
	bp := jsonx.GetBuf()
	buf := appendParticipantsResponse((*bp)[:0], out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	*bp = buf
	jsonx.PutBuf(bp)
}

// appendParticipantsResponse renders the participant list
// byte-identically to the former writeJSON(map[string]any{...}) call.
func appendParticipantsResponse(dst []byte, users []userJSON) []byte {
	dst = append(dst, `{"participants":[`...)
	for i := range users {
		if i > 0 {
			dst = append(dst, ',')
		}
		u := &users[i]
		dst = append(dst, `{"id":`...)
		dst = jsonx.AppendUint(dst, u.ID)
		dst = append(dst, `,"name":`...)
		dst = jsonx.AppendString(dst, u.Name)
		if u.Phone != "" {
			dst = append(dst, `,"phone":`...)
			dst = jsonx.AppendString(dst, u.Phone)
		}
		dst = append(dst, '}')
	}
	return append(dst, ']', '}', '\n')
}

func (s *Service) handleChatInfo(w http.ResponseWriter, r *http.Request) {
	a := s.apiAuth(w, r)
	if a == nil {
		return
	}
	code := r.PathValue("code")
	if !s.requireMember(w, a, code) {
		return
	}
	g := s.group(code)
	if g == nil {
		writeError(w, http.StatusBadRequest, "CHANNEL_INVALID")
		return
	}
	writeJSON(w, map[string]any{
		"title":          g.Title,
		"created_ms":     g.CreatedAt.UnixMilli(),
		"is_channel":     g.IsChannel,
		"members":        s.world.MembersAt(g, s.clock.Now()),
		"hidden_members": g.HiddenMembers,
		"creator_id":     g.CreatorIdx + 1,
	})
}
