package telegram

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	srv   *httptest.Server
	cfg   ServiceConfig
}

func newFixture(t *testing.T, cfg ServiceConfig) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(4, 0.01))
	clock := simclock.New(w.Cfg.Start)
	clock.Advance(10 * 24 * time.Hour)
	svc := NewService(w, clock, cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &fixture{world: w, clock: clock, srv: srv, cfg: cfg}
}

func (f *fixture) pick(t *testing.T, pred func(*simworld.Group) bool) *simworld.Group {
	t.Helper()
	for _, g := range f.world.Groups[platform.Telegram] {
		if pred(g) {
			return g
		}
	}
	t.Fatal("no matching Telegram group in fixture")
	return nil
}

func (f *fixture) alive(g *simworld.Group) bool {
	return f.world.AliveAt(g, f.clock.Now().Add(48*time.Hour)) &&
		g.FirstShareAt.Before(f.clock.Now())
}

func TestPreviewScrape(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool { return f.alive(g) && !g.IsChannel })
	c := NewClient(f.srv.URL, "acct")
	p, err := c.ProbePreview(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Alive || p.Title != g.Title || p.IsChannel {
		t.Fatalf("preview wrong: %+v (want title %q)", p, g.Title)
	}
	now := f.clock.Now()
	if p.Members != f.world.MembersAt(g, now) || p.Online != f.world.OnlineAt(g, now) {
		t.Fatalf("counts wrong: %+v", p)
	}
}

func TestPreviewChannelFlag(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool { return f.alive(g) && g.IsChannel })
	c := NewClient(f.srv.URL, "acct")
	p, err := c.ProbePreview(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsChannel {
		t.Fatal("channel not flagged")
	}
}

func TestPreviewDead(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		return !g.RevokedAt.IsZero() && g.RevokedAt.Before(f.clock.Now())
	})
	c := NewClient(f.srv.URL, "acct")
	p, err := c.ProbePreview(context.Background(), g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alive {
		t.Fatal("dead invite reported alive")
	}
}

func TestJoinAndHistorySinceCreation(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		// A young group so the full history is cheap to page.
		return f.alive(g) && f.clock.Now().Sub(g.CreatedAt) < 12*24*time.Hour
	})
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	if _, err := c.Join(ctx, g.Code); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(ctx, g.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CreatedAt.Equal(g.CreatedAt.Truncate(time.Millisecond)) {
		t.Fatalf("creation date %v, want %v", info.CreatedAt, g.CreatedAt)
	}
	msgs, err := c.History(ctx, g.Code, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := f.world.Messages(g, g.CreatedAt, f.clock.Now())
	// History pagination can drop same-millisecond boundary collisions;
	// allow a sliver of slack.
	if len(msgs) < len(want)-3 || len(msgs) > len(want) {
		t.Fatalf("history %d messages, world has %d", len(msgs), len(want))
	}
	// Unlike WhatsApp, pre-"join" history IS visible.
	pre := 0
	for _, m := range msgs {
		if m.SentAt.Before(f.clock.Now().Add(-24 * time.Hour)) {
			pre++
		}
	}
	if len(want) > 20 && pre == 0 {
		t.Fatal("no pre-join history returned")
	}
}

func TestJoinExpired(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, func(g *simworld.Group) bool {
		return !g.RevokedAt.IsZero() && g.RevokedAt.Before(f.clock.Now())
	})
	c := NewClient(f.srv.URL, "acct")
	if _, err := c.Join(context.Background(), g.Code); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestParticipantsHiddenVsVisible(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	ctx := context.Background()
	c := NewClient(f.srv.URL, "acct")

	hidden := f.pick(t, func(g *simworld.Group) bool { return f.alive(g) && g.HiddenMembers })
	if _, err := c.Join(ctx, hidden.Code); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Participants(ctx, hidden.Code); !errors.Is(err, ErrHiddenList) {
		t.Fatalf("hidden list err = %v, want ErrHiddenList", err)
	}

	visible := f.pick(t, func(g *simworld.Group) bool { return f.alive(g) && !g.HiddenMembers })
	if _, err := c.Join(ctx, visible.Code); err != nil {
		t.Fatal(err)
	}
	parts, err := c.Participants(ctx, visible.Code)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) == 0 {
		t.Fatal("no participants")
	}
	withPhone := 0
	for _, p := range parts {
		if p.Phone != "" {
			withPhone++
		}
	}
	// Phone opt-in is ~0.68%: most participants must hide their phone.
	if frac := float64(withPhone) / float64(len(parts)); frac > 0.05 {
		t.Fatalf("%.3f of participants expose phones, want <0.05", frac)
	}
}

func TestUnauthenticatedAPI(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	c := NewClient(f.srv.URL, "")
	if _, err := c.Join(context.Background(), "whatever"); err == nil {
		t.Fatal("missing account should fail")
	}
}

func TestNotMemberHistory(t *testing.T) {
	f := newFixture(t, DefaultServiceConfig())
	g := f.pick(t, f.alive)
	c := NewClient(f.srv.URL, "acct")
	if _, err := c.History(context.Background(), g.Code, 0); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v, want ErrNotMember", err)
	}
}

func TestFloodWait(t *testing.T) {
	f := newFixture(t, ServiceConfig{APIBudget: 3, APIWindow: time.Minute, FloodWaitSeconds: 30})
	g := f.pick(t, f.alive)
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	if _, err := c.Join(ctx, g.Code); err != nil {
		t.Fatal(err)
	}
	var floodErr error
	for i := 0; i < 10; i++ {
		if _, err := c.Info(ctx, g.Code); err != nil {
			floodErr = err
			break
		}
	}
	if !errors.Is(floodErr, ErrFloodWait) {
		t.Fatalf("err = %v, want ErrFloodWait", floodErr)
	}
	// Advancing virtual time refills the budget.
	f.clock.Advance(2 * time.Minute)
	if _, err := c.Info(ctx, g.Code); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestHistoryPagerResumesAcrossFloodWait(t *testing.T) {
	f := newFixture(t, ServiceConfig{APIBudget: 5, APIWindow: time.Minute, FloodWaitSeconds: 5})
	g := f.pick(t, func(g *simworld.Group) bool {
		if !f.alive(g) {
			return false
		}
		n := len(f.world.Messages(g, g.CreatedAt, f.clock.Now()))
		return n > 1500 && n < 30000 // needs multiple pages
	})
	c := NewClient(f.srv.URL, "acct")
	ctx := context.Background()
	if _, err := c.Join(ctx, g.Code); err != nil {
		t.Fatal(err)
	}
	pager := c.HistoryPager(g.Code)
	var got int
	for !pager.Done() {
		page, err := pager.Next(ctx)
		if errors.Is(err, ErrFloodWait) {
			f.clock.Advance(time.Minute)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got += len(page)
	}
	want := len(f.world.Messages(g, g.CreatedAt, f.clock.Now()))
	if got < want-10 || got > want {
		t.Fatalf("paged %d messages, world has %d", got, want)
	}
}
