package telegram

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"msgscope/internal/ids"
)

// TestAppendHistoryResponseMatchesEncodingJSON holds the append encoder
// byte-identical to the json.NewEncoder rendering of the former
// map[string]any response shape.
func TestAppendHistoryResponseMatchesEncodingJSON(t *testing.T) {
	cases := []struct {
		msgs    []messageJSON
		next    int64
		hasNext bool
	}{
		{msgs: []messageJSON{}},
		{msgs: []messageJSON{
			{FromID: 1, DateMS: 1554087000123, Type: "text", Text: "hello <world> & \"co\""},
			{FromID: 18446744073709551615, DateMS: 0, Type: "url", Text: "https://t.me/x?a=1&b=2"},
			{FromID: 7, DateMS: -12, Type: "join"},
		}},
		{msgs: []messageJSON{{FromID: 2, DateMS: 5, Type: "text", Text: "tab\there"}}, next: 1554000000000, hasNext: true},
	}
	for _, tc := range cases {
		resp := map[string]any{"messages": tc.msgs}
		if tc.hasNext {
			resp["next_offset_date_ms"] = tc.next
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(resp); err != nil {
			t.Fatal(err)
		}
		got := appendHistoryResponse(nil, tc.msgs, tc.next, tc.hasNext)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("history response:\n got %s\nwant %s", got, want.Bytes())
		}
	}
}

func TestAppendParticipantsResponseMatchesEncodingJSON(t *testing.T) {
	cases := [][]userJSON{
		{},
		{{ID: 1, Name: "ana maria"}, {ID: 2, Name: "joão", Phone: "+55 11 91234-0001"}},
	}
	for _, users := range cases {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(map[string]any{"participants": users}); err != nil {
			t.Fatal(err)
		}
		got := appendParticipantsResponse(nil, users)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("participants response:\n got %s\nwant %s", got, want.Bytes())
		}
	}
}

// TestParseHistoryPageRoundTrip runs the fast client parser over the
// fast service encoder's output and checks the decoded messages match.
func TestParseHistoryPageRoundTrip(t *testing.T) {
	msgs := []messageJSON{
		{FromID: 42, DateMS: 1554087000123, Type: "text", Text: "oi pessoal"},
		{FromID: 43, DateMS: 1554087000456, Type: "url", Text: "http://a.b/c"},
		{FromID: 44, DateMS: 1554087000789, Type: "join"},
	}
	body := appendHistoryResponse(nil, msgs, 1554000000000, true)
	in := ids.NewInterner()
	got, next, err := parseHistoryPage(body, in)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1554000000000 {
		t.Fatalf("next = %d", next)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		want := Message{
			FromID: msgs[i].FromID,
			SentAt: time.UnixMilli(msgs[i].DateMS).UTC(),
			Type:   msgs[i].Type,
			Text:   msgs[i].Text,
		}
		if m != want {
			t.Errorf("message %d:\n got %+v\nwant %+v", i, m, want)
		}
	}
	// Last page: no next_offset_date_ms.
	body = appendHistoryResponse(nil, msgs[:1], 0, false)
	if _, next, err = parseHistoryPage(body, in); err != nil || next != 0 {
		t.Fatalf("last page: next=%d err=%v", next, err)
	}
}

// TestParseHistoryPageMalformed: the fault injector's truncated bodies
// must surface as errors so the retry layer re-fetches.
func TestParseHistoryPageMalformed(t *testing.T) {
	in := ids.NewInterner()
	for _, body := range []string{
		`{"truncated`,
		`{"messages":[{"from_id":1`,
		`{"messages":[]} extra`,
		``,
	} {
		if _, _, err := parseHistoryPage([]byte(body), in); err == nil {
			t.Errorf("body %q parsed without error", body)
		}
	}
}
