package textgen

import (
	"strings"
	"testing"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

func gen() *Generator { return New(ids.Fork(5, "test")) }

func TestTweetEmbedsURLAndFeatures(t *testing.T) {
	g := gen()
	topics := TopicsFor(platform.Telegram)
	spec := TweetSpec{
		Lang:       "en",
		Topic:      topics[0],
		URL:        "https://t.me/abc",
		NumHashtag: 2,
		NumMention: 3,
		Retweet:    true,
	}
	text := g.Tweet(spec)
	if !strings.Contains(text, spec.URL) {
		t.Fatalf("tweet %q missing URL", text)
	}
	if !strings.HasPrefix(text, "RT @") {
		t.Fatalf("retweet %q missing RT prefix", text)
	}
	if got := strings.Count(text, "#"); got != 2 {
		t.Fatalf("tweet %q has %d hashtags, want 2", text, got)
	}
	// 3 mentions + 1 RT handle.
	if got := strings.Count(text, "@"); got != 4 {
		t.Fatalf("tweet %q has %d @, want 4", text, got)
	}
}

func TestTweetPlain(t *testing.T) {
	g := gen()
	text := g.Tweet(TweetSpec{Lang: "en", Topic: ControlTopics()[0]})
	if strings.Contains(text, "#") || strings.Contains(text, "@") || strings.Contains(text, "http") {
		t.Fatalf("plain tweet has features: %q", text)
	}
	if len(strings.Fields(text)) < 5 {
		t.Fatalf("tweet too short: %q", text)
	}
}

func TestTweetUsesTopicTerms(t *testing.T) {
	g := gen()
	topic := Topic{Key: "x", Label: "X", Weight: 1, Terms: []string{"zyxwv"}}
	text := g.Tweet(TweetSpec{Lang: "en", Topic: topic})
	if !strings.Contains(text, "zyxwv") {
		t.Fatalf("tweet %q missing topic term", text)
	}
}

func TestNonEnglishUsesLexicon(t *testing.T) {
	g := gen()
	topic := TopicsFor(platform.Discord)[0]
	hits := 0
	for i := 0; i < 20; i++ {
		text := g.Tweet(TweetSpec{Lang: "ja", Topic: topic})
		for _, w := range lexicons["ja"] {
			if strings.Contains(text, w) {
				hits++
				break
			}
		}
	}
	if hits < 15 {
		t.Fatalf("only %d/20 Japanese tweets contained Japanese filler", hits)
	}
}

func TestGroupTitleNonEmpty(t *testing.T) {
	g := gen()
	for _, lang := range Languages() {
		for _, topic := range TopicsFor(platform.WhatsApp) {
			title := g.GroupTitle(lang, topic)
			if strings.TrimSpace(title) == "" {
				t.Fatalf("empty title for %s/%s", lang, topic.Key)
			}
		}
	}
}

func TestMessageNonEmpty(t *testing.T) {
	g := gen()
	msg := g.Message("en", TopicsFor(platform.Telegram)[0])
	if len(strings.Fields(msg)) < 3 {
		t.Fatalf("message too short: %q", msg)
	}
}

func TestPickTopicRespectsWeights(t *testing.T) {
	g := gen()
	topics := []Topic{
		{Key: "a", Weight: 0.001, Terms: []string{"a"}},
		{Key: "b", Weight: 100, Terms: []string{"b"}},
	}
	bCount := 0
	for i := 0; i < 200; i++ {
		if g.PickTopic(topics).Key == "b" {
			bCount++
		}
	}
	if bCount < 195 {
		t.Fatalf("heavy topic picked only %d/200", bCount)
	}
}

func TestTopicMixturesCoverPaperLabels(t *testing.T) {
	wants := map[platform.Platform][]string{
		platform.WhatsApp: {"Cryptocurrencies", "WhatsApp group advertisement", "Earn money from home"},
		platform.Telegram: {"Sex", "Cryptocurrencies", "Advertising Telegram groups"},
		platform.Discord:  {"Gaming", "Hentai", "Advertising Discord groups"},
	}
	for p, labels := range wants {
		topics := TopicsFor(p)
		for _, want := range labels {
			found := false
			for _, tp := range topics {
				if tp.Label == want {
					found = true
					if len(tp.Terms) < 5 {
						t.Errorf("%v topic %q has only %d terms", p, want, len(tp.Terms))
					}
				}
			}
			if !found {
				t.Errorf("%v missing paper topic %q", p, want)
			}
		}
	}
}

func TestStopwordsContainBasics(t *testing.T) {
	stop := Stopwords()
	set := map[string]bool{}
	for _, w := range stop {
		set[w] = true
	}
	for _, w := range []string{"the", "and", "rt", "https"} {
		if !set[w] {
			t.Errorf("stopword list missing %q", w)
		}
	}
}

func TestLexiconWordsCopy(t *testing.T) {
	a := LexiconWords("en")
	if len(a) == 0 {
		t.Fatal("no English lexicon")
	}
	a[0] = "MUTATED"
	b := LexiconWords("en")
	if b[0] == "MUTATED" {
		t.Fatal("LexiconWords returned shared slice")
	}
	if got := LexiconWords("nope"); got != nil {
		t.Fatalf("unknown language returned %v", got)
	}
}

func TestLanguagesHaveLexicons(t *testing.T) {
	for _, lang := range Languages() {
		if len(lexicons[lang]) == 0 {
			t.Errorf("language %s has no lexicon", lang)
		}
	}
}
