package textgen

// Per-language filler lexicons. Each language gets a small vocabulary used
// to pad tweets and messages so that (a) the character-n-gram language
// classifier has signal and (b) LDA sees realistic function-word noise.
// Non-Latin-script languages use native-script tokens.
var lexicons = map[string][]string{
	"en": {
		"the", "and", "for", "you", "with", "this", "that", "have", "from",
		"they", "will", "what", "about", "which", "when", "make", "like",
		"time", "just", "know", "people", "into", "good", "some", "could",
		"them", "other", "than", "then", "look", "only", "come", "over",
		"think", "also", "back", "after", "work", "first", "well", "even",
	},
	"es": {
		"que", "para", "los", "una", "por", "con", "las", "del", "este",
		"como", "pero", "sus", "más", "hasta", "hay", "donde", "quien",
		"desde", "todo", "nos", "durante", "todos", "uno", "les", "contra",
		"otros", "ese", "eso", "ante", "ellos", "grupo", "nuevo", "gratis",
	},
	"pt": {
		"que", "não", "uma", "com", "para", "mais", "como", "mas", "foi",
		"ele", "das", "tem", "seu", "sua", "ser", "quando", "muito", "nos",
		"já", "eu", "também", "pelo", "pela", "até", "isso", "ela", "entre",
		"depois", "sem", "mesmo", "aos", "grupo", "entre", "vem", "aqui",
	},
	"ar": {
		"في", "من", "على", "إلى", "عن", "مع", "هذا", "هذه", "التي", "الذي",
		"كان", "لقد", "قد", "كل", "بعد", "غير", "حتى", "إذا", "ليس", "منذ",
		"عند", "لها", "كما", "فيه", "وهو", "وهي", "ذلك", "أن", "مجموعة", "انضم",
	},
	"tr": {
		"bir", "bu", "da", "de", "için", "ile", "çok", "daha", "gibi",
		"kadar", "ama", "veya", "sonra", "önce", "şimdi", "yeni", "grup",
		"katıl", "ücretsiz", "herkes", "bugün", "yarın", "iyi", "güzel",
		"var", "yok", "ben", "sen", "biz", "siz",
	},
	"ja": {
		"です", "ます", "こと", "これ", "それ", "ある", "いる", "する", "なる",
		"ない", "また", "ので", "から", "まで", "など", "よう", "ください",
		"さん", "みんな", "参加", "募集", "今日", "明日", "楽しい", "新しい",
		"サーバー", "ゲーム", "一緒", "歓迎", "気軽",
	},
	"hi": {
		"है", "के", "में", "की", "को", "से", "का", "और", "पर", "यह",
		"भी", "हो", "कर", "तो", "ही", "था", "कि", "लिए", "साथ", "समूह",
		"आज", "नया", "सब", "लोग", "बहुत", "अच्छा", "करें", "जुड़ें",
	},
	"id": {
		"yang", "dan", "di", "itu", "dengan", "untuk", "tidak", "ini",
		"dari", "dalam", "akan", "pada", "juga", "saya", "kita", "ada",
		"mereka", "sudah", "atau", "bisa", "grup", "gabung", "gratis",
		"baru", "semua", "hari", "besok", "bagus",
	},
	"fr": {
		"les", "des", "est", "pour", "dans", "que", "une", "sur", "avec",
		"pas", "plus", "par", "mais", "nous", "vous", "sont", "tout",
		"comme", "être", "fait", "groupe", "rejoindre", "gratuit", "nouveau",
	},
	"de": {
		"der", "die", "und", "das", "ist", "nicht", "mit", "auf", "für",
		"ein", "eine", "den", "von", "sich", "auch", "aber", "nach", "bei",
		"gruppe", "beitreten", "kostenlos", "neu", "heute", "alle",
	},
	"ru": {
		"это", "как", "его", "она", "они", "мы", "что", "все", "так",
		"уже", "или", "если", "для", "при", "есть", "был", "группа",
		"новый", "сегодня", "бесплатно", "присоединяйся", "канал", "чат",
	},
	"ko": {
		"입니다", "있는", "하는", "있다", "그리고", "하지만", "우리", "오늘",
		"내일", "새로운", "모두", "함께", "참여", "무료", "서버", "게임",
		"환영", "채널", "그룹", "좋아요",
	},
	"und": {
		"ok", "hmm", "yes", "no", "lol", "hey", "hi", "wow", "omg", "plz",
	},
}

// LexiconWords returns the filler lexicon of a language (copy; empty for
// unknown languages). The language classifier trains its trigram profiles
// from these.
func LexiconWords(lang string) []string {
	return append([]string(nil), lexicons[lang]...)
}

// Languages returns the set of languages the generator can emit.
func Languages() []string {
	return []string{"en", "es", "pt", "ar", "tr", "ja", "hi", "id", "fr", "de", "ru", "ko", "und"}
}

// englishStop is a compact English stopword list used by the analysis
// pipeline (exported via Stopwords) — it mirrors the preprocessing the paper
// applies before LDA.
var englishStop = []string{
	"a", "an", "the", "and", "or", "but", "if", "then", "else", "when",
	"at", "by", "for", "with", "about", "against", "between", "into",
	"through", "during", "before", "after", "above", "below", "to", "from",
	"up", "down", "in", "out", "on", "off", "over", "under", "again",
	"further", "once", "here", "there", "all", "any", "both", "each",
	"few", "more", "most", "other", "some", "such", "no", "nor", "not",
	"only", "own", "same", "so", "than", "too", "very", "s", "t", "can",
	"will", "just", "don", "should", "now", "i", "me", "my", "myself",
	"we", "our", "ours", "ourselves", "you", "your", "yours", "yourself",
	"yourselves", "he", "him", "his", "himself", "she", "her", "hers",
	"herself", "it", "its", "itself", "they", "them", "their", "theirs",
	"themselves", "what", "which", "who", "whom", "this", "that", "these",
	"those", "am", "is", "are", "was", "were", "be", "been", "being",
	"have", "has", "had", "having", "do", "does", "did", "doing", "would",
	"could", "ought", "of", "as", "until", "while", "rt", "https", "http",
	"via", "amp",
}

// Stopwords returns the English stopword list (copy).
func Stopwords() []string {
	return append([]string(nil), englishStop...)
}
