package textgen

import "msgscope/internal/platform"

// Topic is one generative tweet theme. Terms is the keyword pool the
// generator draws from; Label matches the paper's manual labels in Table 3;
// Weight is the fraction of a platform's tweets drawn from this topic
// (calibrated to Table 3's per-topic percentages).
type Topic struct {
	Key    string
	Label  string
	Weight float64
	Terms  []string
}

// Table 3 calibration: per-platform topic mixtures. Term pools reuse the
// paper's extracted topic terms so the LDA stage can rediscover them.
var (
	whatsappTopics = []Topic{
		{Key: "forex", Label: "Forex training", Weight: 6, Terms: []string{
			"learn", "free", "forex", "training", "join", "trading", "text",
			"mini", "class", "animation", "signals", "market", "broker",
		}},
		{Key: "earnmoney", Label: "Earn money from home", Weight: 21, Terms: []string{
			"home", "earn", "money", "using", "start", "stay", "google",
			"make", "daily", "cash", "market", "income", "online", "extra",
			"paid", "work",
		}},
		{Key: "igboost", Label: "Instagram followers boosting", Weight: 9, Terms: []string{
			"join", "followers", "instagram", "gain", "want", "money",
			"online", "group", "learn", "make", "boost", "grow", "likes",
		}},
		{Key: "crypto", Label: "Cryptocurrencies", Weight: 18, Terms: []string{
			"bitcoin", "ethereum", "crypto", "currency", "ads", "year",
			"line", "people", "new", "learn", "cryptocurrency", "days",
			"period", "accumulate", "business", "smart", "skills", "eth",
			"million", "webinar", "wallet", "profit",
		}},
		{Key: "groupads", Label: "WhatsApp group advertisement", Weight: 30, Terms: []string{
			"join", "group", "whatsapp", "link", "follow", "click",
			"please", "chat", "open", "twitter", "invite", "added", "new",
		}},
		{Key: "makingmoney", Label: "Making money", Weight: 9, Terms: []string{
			"get", "never", "time", "actually", "income", "chat", "best",
			"taking", "account", "full", "rich", "hustle",
		}},
		{Key: "nigeria", Label: "Nigeria-related", Weight: 6, Terms: []string{
			"will", "new", "retweet", "capital", "people", "now",
			"interested", "writing", "nigerian", "online", "lagos", "naira",
		}},
		{Key: "general", Label: "General chat", Weight: 1, Terms: []string{
			"hello", "friends", "welcome", "everyone", "nice", "day",
		}},
	}

	telegramTopics = []Topic{
		{Key: "crypto", Label: "Cryptocurrencies", Weight: 18, Terms: []string{
			"bitcoin", "join", "sats", "get", "winners", "hours", "chat",
			"nice", "come", "usdt", "giveaways", "enter", "btc", "trc",
			"trx", "crypto", "coin", "pump", "moon",
		}},
		{Key: "socialact", Label: "Social network activity", Weight: 11, Terms: []string{
			"follow", "like", "retweet", "giveaway", "tag", "join", "win",
			"twitter", "friends", "friend", "share", "comment",
		}},
		{Key: "ama", Label: "Ask me anything / quiz", Weight: 8, Terms: []string{
			"ama", "may", "will", "utc", "quiz", "someone", "wallet",
			"today", "answer", "question", "session", "live",
		}},
		{Key: "tgads", Label: "Advertising Telegram groups", Weight: 25, Terms: []string{
			"free", "join", "just", "telegram", "money", "day", "channel",
			"group", "now", "below", "link", "get", "available", "opened",
		}},
		{Key: "sex", Label: "Sex", Weight: 23, Terms: []string{
			"new", "worth", "user", "brand", "xpro", "performer",
			"smartphones", "girls", "boobs", "price", "fuck", "want",
			"girl", "click", "show", "pussy", "cum", "hot", "video",
			"nude", "onlyfans",
		}},
		{Key: "giveaways", Label: "Giveaways", Weight: 7, Terms: []string{
			"giving", "away", "will", "tmn", "link", "honor", "full",
			"video", "get", "prize", "lucky", "winner",
		}},
		{Key: "referral", Label: "Referral marketing", Weight: 8, Terms: []string{
			"airdrop", "open", "tokens", "wink", "referral", "token",
			"earn", "new", "good", "bonus", "invite", "reward",
		}},
	}

	discordTopics = []Topic{
		{Key: "gaming", Label: "Gaming", Weight: 12, Terms: []string{
			"patreon", "free", "get", "today", "mystery", "public",
			"gaming", "gamedev", "indiegames", "alongside", "like",
			"alpha", "deal", "daily", "art", "lots", "battle", "raffle",
			"nintendo", "play", "game", "stream",
		}},
		{Key: "events", Label: "Organizing online events", Weight: 7, Terms: []string{
			"will", "may", "hosting", "week", "one", "time", "tonight",
			"night", "last", "event", "call", "movie", "party",
		}},
		{Key: "dcads", Label: "Advertising Discord groups", Weight: 47, Terms: []string{
			"discord", "join", "server", "link", "can", "visit", "want",
			"just", "new", "hey", "giveaway", "follow", "retweet",
			"friends", "tag", "enter", "fast", "winners", "make", "sure",
			"ends", "chat", "token", "music", "community",
		}},
		{Key: "pokemon", Label: "Pokemon", Weight: 7, Terms: []string{
			"united", "states", "venonat", "bite", "quick", "bug", "full",
			"fortnite", "pikachu", "confusion", "raid", "shiny", "catch",
		}},
		{Key: "tournaments", Label: "Tournaments", Weight: 9, Terms: []string{
			"good", "live", "launching", "now", "tournament", "open",
			"next", "will", "free", "prize", "bracket", "team", "scrim",
		}},
		{Key: "giveaways", Label: "Giveaways", Weight: 8, Terms: []string{
			"giving", "est", "away", "awp", "will", "saturday", "friday",
			"coins", "many", "competition", "nitro", "winner",
		}},
		{Key: "hentai", Label: "Hentai", Weight: 9, Terms: []string{
			"join", "discord", "server", "come", "hentai", "now", "new",
			"paradise", "tenshi", "official", "anime", "nsfw", "waifu",
		}},
		{Key: "general", Label: "General chat", Weight: 1, Terms: []string{
			"hello", "welcome", "everyone", "cool", "nice",
		}},
	}

	// Control-stream topics: generic Twitter chatter, no invite URLs.
	controlTopics = []Topic{
		{Key: "news", Label: "News", Weight: 30, Terms: []string{
			"breaking", "news", "report", "today", "world", "says",
			"government", "update", "covid", "cases", "health",
		}},
		{Key: "life", Label: "Daily life", Weight: 40, Terms: []string{
			"morning", "coffee", "love", "weekend", "feeling", "happy",
			"tired", "school", "family", "home", "food",
		}},
		{Key: "sports", Label: "Sports", Weight: 15, Terms: []string{
			"game", "team", "goal", "match", "season", "player", "win",
			"league", "final",
		}},
		{Key: "music", Label: "Music", Weight: 15, Terms: []string{
			"song", "album", "listen", "music", "artist", "tour", "video",
			"single", "release",
		}},
	}
)

// TopicsFor returns the generative topic mixture for a platform (copies of
// the calibration tables).
func TopicsFor(p platform.Platform) []Topic {
	switch p {
	case platform.WhatsApp:
		return whatsappTopics
	case platform.Telegram:
		return telegramTopics
	case platform.Discord:
		return discordTopics
	default:
		return nil
	}
}

// ControlTopics returns the topic mixture for the 1% control stream.
func ControlTopics() []Topic { return controlTopics }
