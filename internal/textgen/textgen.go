// Package textgen generates the synthetic multilingual text of the
// simulated ecosystem: tweet bodies around invite URLs (with hashtags,
// mentions, and retweet markers), control-stream chatter, group titles, and
// in-group chat messages. Topic vocabularies are calibrated to the paper's
// Table 3 so the downstream LDA stage can rediscover them.
package textgen

import (
	"math/rand/v2"
	"strconv"
	"strings"

	"msgscope/internal/dist"
)

// Generator produces text deterministically from its own RNG. It is not
// safe for concurrent use (its callers already serialize on the RNG);
// that lets it keep reusable scratch buffers across calls.
type Generator struct {
	rng *rand.Rand

	words []string // scratch word list, reused across compositions
	buf   []byte   // scratch byte buffer, reused across compositions

	// Single-entry cache for PickTopic: callers pass the same topics
	// slice for thousands of draws, so the categorical is rebuilt only
	// when the slice identity changes.
	topicKey *Topic
	topicLen int
	topicCat *dist.Categorical
}

// New returns a Generator drawing from rng.
func New(rng *rand.Rand) *Generator { return &Generator{rng: rng} }

// TweetSpec describes the tweet to compose.
type TweetSpec struct {
	Lang       string // BCP-47-ish code from Languages()
	Topic      Topic  // generative topic; Terms must be non-empty
	URL        string // invite URL to embed ("" for control tweets)
	NumHashtag int
	NumMention int
	Retweet    bool
}

// Tweet composes a tweet body per the spec. English tweets lean on topic
// terms (so LDA has signal); other languages mix topic terms with
// native-lexicon filler.
func (g *Generator) Tweet(spec TweetSpec) string {
	var sb strings.Builder
	if spec.Retweet {
		sb.WriteString("RT @")
		sb.WriteString(g.handle())
		sb.WriteString(": ")
	}
	for i := 0; i < spec.NumMention; i++ {
		sb.WriteString("@")
		sb.WriteString(g.handle())
		sb.WriteString(" ")
	}
	nTopic := 5 + g.rng.IntN(5)
	nFiller := 2 + g.rng.IntN(4)
	if spec.Lang != "en" {
		nTopic = 2 + g.rng.IntN(3)
		nFiller = 5 + g.rng.IntN(5)
	}
	words := g.words[:0]
	for i := 0; i < nTopic; i++ {
		words = append(words, spec.Topic.Terms[g.rng.IntN(len(spec.Topic.Terms))])
	}
	lex := lexicons[spec.Lang]
	if len(lex) == 0 {
		lex = lexicons["und"]
	}
	for i := 0; i < nFiller; i++ {
		words = append(words, lex[g.rng.IntN(len(lex))])
	}
	g.words = words
	g.shuffle(words)
	for i, w := range words {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(w)
	}
	if spec.URL != "" {
		sb.WriteString(" ")
		sb.WriteString(spec.URL)
	}
	for i := 0; i < spec.NumHashtag; i++ {
		sb.WriteString(" #")
		sb.WriteString(spec.Topic.Terms[g.rng.IntN(len(spec.Topic.Terms))])
	}
	return sb.String()
}

// GroupTitle composes a short group title for the given topic and language.
func (g *Generator) GroupTitle(lang string, topic Topic) string {
	t1 := topic.Terms[g.rng.IntN(len(topic.Terms))]
	t2 := topic.Terms[g.rng.IntN(len(topic.Terms))]
	lex := lexicons[lang]
	if len(lex) == 0 {
		lex = lexicons["en"]
	}
	fill := lex[g.rng.IntN(len(lex))]
	switch g.rng.IntN(3) {
	case 0:
		return title(t1) + " " + title(t2)
	case 1:
		return title(t1) + " " + fill
	default:
		return title(t1) + " " + title(t2) + " " + strconv.Itoa(1+g.rng.IntN(999))
	}
}

// Message composes one in-group chat message body.
func (g *Generator) Message(lang string, topic Topic) string {
	n := 3 + g.rng.IntN(12)
	buf := g.buf[:0]
	lex := lexicons[lang]
	if len(lex) == 0 {
		lex = lexicons["en"]
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		if g.rng.Float64() < 0.4 && len(topic.Terms) > 0 {
			buf = append(buf, topic.Terms[g.rng.IntN(len(topic.Terms))]...)
		} else {
			buf = append(buf, lex[g.rng.IntN(len(lex))]...)
		}
	}
	g.buf = buf
	return string(buf)
}

// PickTopic samples a topic from the mixture proportionally to Weight.
func (g *Generator) PickTopic(topics []Topic) Topic {
	if g.topicKey != &topics[0] || g.topicLen != len(topics) {
		ws := make([]float64, len(topics))
		for i, t := range topics {
			ws[i] = t.Weight
		}
		g.topicKey = &topics[0]
		g.topicLen = len(topics)
		g.topicCat = dist.NewCategorical(ws)
	}
	return topics[g.topicCat.Sample(g.rng)]
}

var handleSyllables = []string{
	"ali", "ben", "cat", "dev", "eli", "fox", "gia", "hak", "ivy", "jay",
	"kim", "leo", "mia", "nat", "oli", "pat", "ray", "sam", "tom", "uma",
	"vic", "wen", "xan", "yas", "zoe",
}

func (g *Generator) handle() string {
	a := handleSyllables[g.rng.IntN(len(handleSyllables))]
	b := handleSyllables[g.rng.IntN(len(handleSyllables))]
	n := g.rng.IntN(1000)
	buf := make([]byte, 0, len(a)+len(b)+3)
	buf = append(buf, a...)
	buf = append(buf, b...)
	buf = strconv.AppendInt(buf, int64(n), 10)
	return string(buf)
}

func (g *Generator) shuffle(words []string) {
	g.rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
}

func title(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}
