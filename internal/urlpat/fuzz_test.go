package urlpat

import (
	"strings"
	"testing"
)

// checkRoundTrip asserts the core extraction invariant: an accepted URL
// carries a non-empty code and its canonical form re-parses to the same
// identity (canonicalization is idempotent).
func checkRoundTrip(t *testing.T, gu GroupURL) {
	t.Helper()
	if gu.Code == "" {
		t.Fatalf("accepted URL with empty code: %+v", gu)
	}
	if !strings.HasPrefix(gu.Canonical, "https://") {
		t.Fatalf("canonical URL not https: %q", gu.Canonical)
	}
	again, ok := Parse(gu.Canonical)
	if !ok {
		t.Fatalf("canonical form %q does not re-parse", gu.Canonical)
	}
	if again.Platform != gu.Platform || again.Code != gu.Code || again.Canonical != gu.Canonical {
		t.Fatalf("canonicalization not idempotent: %+v -> %+v", gu, again)
	}
}

func FuzzParse(f *testing.F) {
	f.Add("https://chat.whatsapp.com/AbC123xyz")
	f.Add("http://t.me/joinchat/QQQQ")
	f.Add("https://telegram.me/publicroom")
	f.Add("https://discord.gg/abc123")
	f.Add("https://discord.com/invite/xyz?ref=tw")
	f.Add("https://www.t.me/room/.,!)")
	f.Add("https://t.me/")
	f.Add("t.me/noscheme")
	f.Add("https://discord.com/channels/123/456")
	f.Fuzz(func(t *testing.T, raw string) {
		gu, ok := Parse(raw)
		if !ok {
			return
		}
		checkRoundTrip(t, gu)
	})
}

func FuzzExtract(f *testing.F) {
	f.Add("join us https://chat.whatsapp.com/AbC123 and https://t.me/room!")
	f.Add("nothing to see here")
	f.Add("https://discord.gg/a https://discord.gg/a dupes preserved")
	f.Add("trailing https://t.me/x?utm=1#frag.")
	f.Add("<a href=\"https://discord.com/invite/q\">x</a>")
	f.Fuzz(func(t *testing.T, text string) {
		for _, gu := range Extract(text) {
			checkRoundTrip(t, gu)
		}
	})
}
