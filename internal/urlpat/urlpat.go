// Package urlpat implements the study's six invite-URL patterns and the
// extraction of group URLs from tweet text. The patterns are exactly the
// prefixes Section 3.1 enumerates: chat.whatsapp.com/, t.me/, telegram.me/,
// telegram.org/, discord.gg/, and discord.com/.
package urlpat

import (
	"strings"

	"msgscope/internal/platform"
)

// Pattern is one invite-URL host pattern tied to its platform.
type Pattern struct {
	Host     string
	Platform platform.Platform
	// PathPrefix, when non-empty, must prefix the URL path for a match
	// (discord.com links are invites only under /invite/).
	PathPrefix string
}

// Patterns returns the six study patterns in documentation order.
func Patterns() []Pattern {
	return []Pattern{
		{Host: "chat.whatsapp.com", Platform: platform.WhatsApp},
		{Host: "t.me", Platform: platform.Telegram},
		{Host: "telegram.me", Platform: platform.Telegram},
		{Host: "telegram.org", Platform: platform.Telegram},
		{Host: "discord.gg", Platform: platform.Discord},
		{Host: "discord.com", Platform: platform.Discord, PathPrefix: "invite/"},
	}
}

// TrackTerms returns the filter terms handed to the Twitter streaming API —
// one per pattern host.
func TrackTerms() []string {
	ps := Patterns()
	terms := make([]string, len(ps))
	for i, p := range ps {
		terms[i] = p.Host
	}
	return terms
}

// GroupURL is one extracted, canonicalized invite URL.
type GroupURL struct {
	Platform platform.Platform
	// Code is the canonical group identifier: the invite code for
	// WhatsApp/Discord, and the path (including a joinchat/ prefix when
	// present) for Telegram.
	Code string
	// Canonical is the normalized URL: https, canonical host, no
	// trailing slash or query.
	Canonical string
}

// urlStop reports whether c terminates a URL candidate. The set matches the
// former regexp `https?://[^\s<>"']+` exactly: Go's \s is the ASCII class
// [\t\n\f\r ] (note: no \v), plus the explicit <>"' delimiters.
func urlStop(c byte) bool {
	switch c {
	case '\t', '\n', '\f', '\r', ' ', '<', '>', '"', '\'':
		return true
	}
	return false
}

// Extract returns all group URLs found in text, in order of appearance.
// Duplicates within one text are preserved; callers dedupe across tweets.
//
// The scan is a hand-rolled equivalent of the regexp
// `https?://[^\s<>"']+` (see TestExtractMatchesRegexp for the differential
// proof): every tweet and social post passes through here, and the manual
// scan avoids the regexp engine's per-call machinery and match-slice
// allocations. Candidates failing Parse cost nothing.
func Extract(text string) []GroupURL {
	var out []GroupURL
	for i := 0; i+8 <= len(text); {
		if text[i] != 'h' || !strings.HasPrefix(text[i:], "http") {
			i++
			continue
		}
		j := i + 4
		if j < len(text) && text[j] == 's' {
			j++
		}
		if !strings.HasPrefix(text[j:], "://") {
			i++
			continue
		}
		j += 3
		end := j
		for end < len(text) && !urlStop(text[end]) {
			end++
		}
		if end == j { // the regexp required at least one char after ://
			i = j
			continue
		}
		if gu, ok := Parse(text[i:end]); ok {
			out = append(out, gu)
		}
		i = end
	}
	return out
}

// Parse canonicalizes a single URL string. It reports ok=false for URLs
// that match none of the six patterns or carry no group identifier (e.g. a
// bare "https://t.me/").
func Parse(raw string) (GroupURL, bool) {
	rest, ok := strings.CutPrefix(raw, "https://")
	if !ok {
		rest, ok = strings.CutPrefix(raw, "http://")
		if !ok {
			return GroupURL{}, false
		}
	}
	host, path, _ := strings.Cut(rest, "/")
	host = strings.ToLower(host)
	host = strings.TrimPrefix(host, "www.")
	// Strip query/fragment and trailing punctuation a tweet may append.
	if i := strings.IndexAny(path, "?#"); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimRight(path, "/.,!)('\"")

	for _, p := range Patterns() {
		if host != p.Host {
			continue
		}
		code := path
		if p.PathPrefix != "" {
			code, ok = strings.CutPrefix(path, p.PathPrefix)
			if !ok {
				return GroupURL{}, false
			}
		}
		if code == "" {
			return GroupURL{}, false
		}
		// Host aliases collapse here: telegram.me/X and t.me/X name the
		// same room; discord.com/invite/X and discord.gg/X the same
		// invite. The code alone is the canonical identity.
		return GroupURL{
			Platform:  p.Platform,
			Code:      code,
			Canonical: canonicalURL(p.Platform, code),
		}, true
	}
	return GroupURL{}, false
}

// canonicalURL renders the canonical form of a group URL.
func canonicalURL(p platform.Platform, code string) string {
	switch p {
	case platform.WhatsApp:
		return "https://chat.whatsapp.com/" + code
	case platform.Telegram:
		return "https://t.me/" + code
	case platform.Discord:
		return "https://discord.gg/" + code
	default:
		return code
	}
}

// Matches reports whether the text contains at least one of the six
// patterns (the predicate the Twitter search queries use).
func Matches(text string) bool {
	for _, p := range Patterns() {
		if strings.Contains(text, p.Host+"/") {
			return true
		}
	}
	return false
}
