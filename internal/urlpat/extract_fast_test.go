package urlpat

import (
	"regexp"
	"testing"
)

// referenceRe is the regexp Extract's manual scan replaced; the tests here
// hold the scanner differentially equal to it.
var referenceRe = regexp.MustCompile(`https?://[^\s<>"']+`)

func referenceExtract(text string) []GroupURL {
	var out []GroupURL
	for _, raw := range referenceRe.FindAllString(text, -1) {
		if gu, ok := Parse(raw); ok {
			out = append(out, gu)
		}
	}
	return out
}

func TestExtractMatchesRegexp(t *testing.T) {
	cases := []string{
		"",
		"nothing to see here",
		"join us https://chat.whatsapp.com/AbC123 and https://t.me/room!",
		"https://discord.gg/a https://discord.gg/a dupes preserved",
		"trailing https://t.me/x?utm=1#frag.",
		`<a href="https://discord.com/invite/q">x</a>`,
		"http://t.me/joinchat/QQQQ",
		"https://", // scheme only, no candidate
		"https:// https://t.me/after-empty-candidate",
		"http://http://t.me/nested",
		"httphttps://t.me/overlap",
		"hhttp://t.me/leading-h",
		"HTTPS://T.ME/upper (scheme is case-sensitive, as in the regexp)",
		"https://t.me/tab\tsplit",
		"https://t.me/vtab\vkept", // \v is NOT \s in Go regexp
		"https://t.me/a'quote",
		"ends with scheme https",
		"https://t.me/x",
		"multibyte ação https://t.me/grupo-ação e mais",
		"https://telegram.org/room https://www.t.me/room/.,!)",
		"t.me/noscheme stays unmatched",
	}
	for _, text := range cases {
		got, want := Extract(text), referenceExtract(text)
		if len(got) != len(want) {
			t.Errorf("%q: got %d URLs, want %d (%v vs %v)", text, len(got), len(want), got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q: url %d = %+v, want %+v", text, i, got[i], want[i])
			}
		}
	}
}

func FuzzExtractMatchesRegexp(f *testing.F) {
	f.Add("join https://chat.whatsapp.com/AbC123 now")
	f.Add("https:// https://t.me/x")
	f.Add("httphttp://t.me/a")
	f.Fuzz(func(t *testing.T, text string) {
		got, want := Extract(text), referenceExtract(text)
		if len(got) != len(want) {
			t.Fatalf("%q: got %d URLs, want %d", text, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: url %d = %+v, want %+v", text, i, got[i], want[i])
			}
		}
	})
}

// TestExtractAllocBounds is a hard allocation gate on the discovery hot
// path: every collected tweet passes through Extract.
func TestExtractAllocBounds(t *testing.T) {
	noURL := "check out this totally normal tweet about http servers and such"
	if allocs := testing.AllocsPerRun(100, func() { Extract(noURL) }); allocs > 0 {
		t.Errorf("Extract(no URL) allocated %.1f objects/op, want 0", allocs)
	}

	// One invite URL: the result slice, the canonical string, and nothing
	// else (the code is a substring of the input, not a copy).
	oneURL := "entrem no grupo https://chat.whatsapp.com/AbC123xyz galera"
	if allocs := testing.AllocsPerRun(100, func() { Extract(oneURL) }); allocs > 2 {
		t.Errorf("Extract(one URL) allocated %.1f objects/op, want <= 2", allocs)
	}
}
