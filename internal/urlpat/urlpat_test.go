package urlpat

import (
	"testing"
	"testing/quick"

	"msgscope/internal/platform"
)

func TestParseCanonicalization(t *testing.T) {
	cases := []struct {
		raw      string
		platform platform.Platform
		code     string
		ok       bool
	}{
		{"https://chat.whatsapp.com/AbCdEf123", platform.WhatsApp, "AbCdEf123", true},
		{"http://chat.whatsapp.com/AbCdEf123", platform.WhatsApp, "AbCdEf123", true},
		{"https://t.me/somegroup", platform.Telegram, "somegroup", true},
		{"https://t.me/joinchat/XYZ123", platform.Telegram, "joinchat/XYZ123", true},
		{"https://telegram.me/somegroup", platform.Telegram, "somegroup", true},
		{"https://telegram.org/somegroup", platform.Telegram, "somegroup", true},
		{"https://discord.gg/abc123", platform.Discord, "abc123", true},
		{"https://discord.com/invite/abc123", platform.Discord, "abc123", true},
		{"https://www.t.me/somegroup", platform.Telegram, "somegroup", true},
		{"https://t.me/group?start=1", platform.Telegram, "group", true},
		{"https://t.me/group/", platform.Telegram, "group", true},
		{"https://t.me/group).", platform.Telegram, "group", true},
		// Non-invites.
		{"https://discord.com/channels/123/456", 0, "", false},
		{"https://example.com/x", 0, "", false},
		{"https://t.me/", 0, "", false},
		{"ftp://t.me/x", 0, "", false},
		{"t.me/group", 0, "", false}, // bare host without scheme
	}
	for _, c := range cases {
		gu, ok := Parse(c.raw)
		if ok != c.ok {
			t.Errorf("Parse(%q) ok=%v, want %v", c.raw, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if gu.Platform != c.platform || gu.Code != c.code {
			t.Errorf("Parse(%q) = %v/%q, want %v/%q", c.raw, gu.Platform, gu.Code, c.platform, c.code)
		}
	}
}

func TestHostAliasesCollapse(t *testing.T) {
	a, _ := Parse("https://t.me/mygroup")
	b, _ := Parse("https://telegram.me/mygroup")
	if a.Code != b.Code || a.Canonical != b.Canonical {
		t.Fatalf("aliases did not collapse: %+v vs %+v", a, b)
	}
	c, _ := Parse("https://discord.gg/xyz")
	d, _ := Parse("https://discord.com/invite/xyz")
	if c.Code != d.Code || c.Canonical != d.Canonical {
		t.Fatalf("discord aliases did not collapse: %+v vs %+v", c, d)
	}
}

func TestExtractFromTweetText(t *testing.T) {
	text := "join us now https://chat.whatsapp.com/Abc123 and also https://discord.gg/xyz9 #fun"
	got := Extract(text)
	if len(got) != 2 {
		t.Fatalf("extracted %d URLs, want 2: %+v", len(got), got)
	}
	if got[0].Platform != platform.WhatsApp || got[1].Platform != platform.Discord {
		t.Fatalf("wrong platforms: %+v", got)
	}
}

func TestExtractNone(t *testing.T) {
	if got := Extract("no urls here, not even example.com"); len(got) != 0 {
		t.Fatalf("extracted from plain text: %+v", got)
	}
	if got := Extract("mentions t.me but no scheme"); len(got) != 0 {
		t.Fatalf("bare host should not extract: %+v", got)
	}
}

func TestMatches(t *testing.T) {
	if !Matches("see https://t.me/x") {
		t.Fatal("Matches missed t.me")
	}
	if Matches("nothing here") {
		t.Fatal("Matches false positive")
	}
}

func TestTrackTermsCoverAllPatterns(t *testing.T) {
	terms := TrackTerms()
	if len(terms) != 6 {
		t.Fatalf("want 6 track terms, got %d", len(terms))
	}
	for i, p := range Patterns() {
		if terms[i] != p.Host {
			t.Fatalf("term %d = %q, want %q", i, terms[i], p.Host)
		}
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	// Canonical output must re-parse to the same identity.
	f := func(seed uint8) bool {
		raws := []string{
			"https://chat.whatsapp.com/Code",
			"https://telegram.me/joinchat/Hash",
			"https://discord.com/invite/xy",
		}
		raw := raws[int(seed)%len(raws)]
		a, ok := Parse(raw)
		if !ok {
			return false
		}
		b, ok := Parse(a.Canonical)
		return ok && a.Platform == b.Platform && a.Code == b.Code && a.Canonical == b.Canonical
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPreservesOrder(t *testing.T) {
	text := "https://discord.gg/a https://discord.gg/b https://discord.gg/a"
	got := Extract(text)
	if len(got) != 3 || got[0].Code != "a" || got[1].Code != "b" || got[2].Code != "a" {
		t.Fatalf("order not preserved: %+v", got)
	}
}
