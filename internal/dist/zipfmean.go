package dist

import "math"

// ZipfWithMean builds a Zipf sampler over [1, n] whose expected value is as
// close as possible to target, by bisecting on the exponent. The mean of a
// bounded Zipf is strictly decreasing in the exponent, so bisection
// converges. target must lie in (1, (n+1)/2]; values outside are clamped to
// the achievable range.
func ZipfWithMean(target float64, n int) *Zipf {
	if n < 1 {
		panic("dist: ZipfWithMean needs n >= 1")
	}
	lo, hi := -2.0, 8.0 // exponent range; negative favors large values
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if zipfMean(mid, n) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return NewZipf((lo+hi)/2, n)
}

func zipfMean(s float64, n int) float64 {
	var norm, mean float64
	for k := 1; k <= n; k++ {
		p := math.Pow(float64(k), -s)
		norm += p
		mean += float64(k) * p
	}
	return mean / norm
}
