// Package dist provides the random samplers the world generator draws from:
// weighted categorical choices, discrete power laws (Zipf), log-normals,
// exponentials, and bounded random walks. All samplers take an explicit
// *rand.Rand so the simulation stays deterministic under a single seed.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Categorical samples indexes proportionally to the given non-negative
// weights. Construct with NewCategorical.
type Categorical struct {
	cum []float64 // cumulative weights
}

// NewCategorical builds a sampler over weights. It panics if no weight is
// positive or any weight is negative: a silently empty categorical would
// skew every calibrated share downstream.
func NewCategorical(weights []float64) *Categorical {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: negative or NaN weight %v at %d", w, i))
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("dist: categorical with no positive weight")
	}
	return &Categorical{cum: cum}
}

// Sample returns a weighted random index.
func (c *Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64() * c.cum[len(c.cum)-1]
	return sort.SearchFloat64s(c.cum, math.Nextafter(u, math.Inf(1)))
}

// WeightedString pairs a label with a weight, for calibrated share tables
// (languages, countries, topics, linked platforms).
type WeightedString struct {
	Key    string
	Weight float64
}

// StringSampler samples labels proportionally to their weights.
type StringSampler struct {
	keys []string
	cat  *Categorical
}

// NewStringSampler builds a StringSampler from entries.
func NewStringSampler(entries []WeightedString) *StringSampler {
	keys := make([]string, len(entries))
	ws := make([]float64, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
		ws[i] = e.Weight
	}
	return &StringSampler{keys: keys, cat: NewCategorical(ws)}
}

// Sample returns a weighted random label.
func (s *StringSampler) Sample(rng *rand.Rand) string {
	return s.keys[s.cat.Sample(rng)]
}

// Keys returns the labels in declaration order.
func (s *StringSampler) Keys() []string { return s.keys }

// Zipf samples integers in [1, n] with P(k) ∝ 1/k^s. It precomputes the
// cumulative distribution, so sampling is O(log n).
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf sampler with exponent s over support [1, n].
func NewZipf(s float64, n int) *Zipf {
	if n < 1 {
		panic("dist: zipf needs n >= 1")
	}
	cum := make([]float64, n)
	var total float64
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	return &Zipf{cum: cum}
}

// Sample returns a value in [1, n].
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, math.Nextafter(u, math.Inf(1))) + 1
}

// LogNormal samples exp(N(mu, sigma^2)).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// LogNormalInt samples a log-normal rounded to an int, clamped to [lo, hi].
func LogNormalInt(rng *rand.Rand, mu, sigma float64, lo, hi int) int {
	v := int(math.Round(LogNormal(rng, mu, sigma)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Exponential samples an exponential with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Poisson samples a Poisson random variable with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; adequate for
		// workload generation at this scale.
		v := int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence (support {0,1,2,...}). p must be in (0, 1].
func Geometric(rng *rand.Rand, p float64) int {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("dist: geometric p=%v out of range", p))
	}
	if p == 1 {
		return 0
	}
	u := rng.Float64()
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
