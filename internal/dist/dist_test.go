package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestCategoricalShares(t *testing.T) {
	c := NewCategorical([]float64{1, 3, 6})
	r := rng()
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: share %.3f, want %.3f", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, ws := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%v) did not panic", ws)
				}
			}()
			NewCategorical(ws)
		}()
	}
}

func TestStringSampler(t *testing.T) {
	s := NewStringSampler([]WeightedString{{Key: "a", Weight: 1}, {Key: "b", Weight: 0}})
	r := rng()
	for i := 0; i < 1000; i++ {
		if s.Sample(r) != "a" {
			t.Fatal("zero-weight key sampled")
		}
	}
}

func TestZipfSupport(t *testing.T) {
	z := NewZipf(1.2, 50)
	r := rng()
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 50 {
			t.Fatalf("zipf sample %d outside [1,50]", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1.5, 1000)
	r := rng()
	ones := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if z.Sample(r) == 1 {
			ones++
		}
	}
	// With s=1.5 over [1,1000], P(1) ~ 1/zeta(1.5 truncated) ~ 0.38.
	if frac := float64(ones) / n; frac < 0.30 || frac > 0.48 {
		t.Errorf("P(X=1) = %.3f, want ~0.38", frac)
	}
}

func TestZipfWithMeanHitsTarget(t *testing.T) {
	r := rng()
	for _, tc := range []struct {
		target float64
		n      int
	}{
		{2.5, 100}, {9.5, 4000}, {29.4, 29999}, {7.4, 3000},
	} {
		z := ZipfWithMean(tc.target, tc.n)
		var sum float64
		const n = 300000
		for i := 0; i < n; i++ {
			sum += float64(z.Sample(r))
		}
		mean := sum / n
		if mean < tc.target*0.8 || mean > tc.target*1.25 {
			t.Errorf("ZipfWithMean(%v, %d): empirical mean %.2f", tc.target, tc.n, mean)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := rng()
	for _, mean := range []float64{0.5, 4, 30, 200} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(r, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v): empirical mean %.2f", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := rng()
	f := func(m uint8) bool {
		return Poisson(r, float64(m)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := rng()
	for _, p := range []float64{0.12, 0.5, 0.9} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += float64(Geometric(r, p))
		}
		want := (1 - p) / p
		got := sum / n
		if math.Abs(got-want) > want*0.05+0.02 {
			t.Errorf("Geometric(%v): empirical mean %.3f, want %.3f", p, got, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := rng()
	for i := 0; i < 100; i++ {
		if Geometric(r, 1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestLogNormalIntClamps(t *testing.T) {
	r := rng()
	for i := 0; i < 10000; i++ {
		v := LogNormalInt(r, 5, 2, 2, 257)
		if v < 2 || v > 257 {
			t.Fatalf("LogNormalInt out of range: %d", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := rng()
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5, 1, 3) != 3 || ClampInt(-5, 1, 3) != 1 || ClampInt(2, 1, 3) != 2 {
		t.Fatal("ClampInt wrong")
	}
}
