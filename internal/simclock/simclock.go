// Package simclock provides a virtual clock for driving the simulated
// 38-day measurement study in-process. Every component that needs the
// current time takes a Clock, so tests and benchmarks advance time
// explicitly instead of sleeping.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the pipeline.
type Clock interface {
	// Now returns the current (virtual) time.
	Now() time.Time
}

// Sim is a manually advanced clock. The zero value is not usable; construct
// one with New. Sim is safe for concurrent use: platform services read it
// from HTTP handler goroutines while the driver advances it.
type Sim struct {
	mu  sync.RWMutex
	now time.Time

	// waiters are callbacks fired (in registration order) whenever the
	// clock crosses their deadline. Used for scheduled events such as
	// invite expiry sweeps.
	waiters []waiter
}

type waiter struct {
	at time.Time
	fn func(time.Time)
}

// New returns a Sim starting at the given instant.
func New(start time.Time) *Sim {
	return &Sim{now: start}
}

// StudyStart is the first day of the paper's collection window
// (April 8, 2020, 00:00 UTC).
var StudyStart = time.Date(2020, time.April, 8, 0, 0, 0, 0, time.UTC)

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d, firing any waiters whose deadline is
// crossed. Advancing by a negative duration panics: virtual time is
// monotonic by construction and a rewind would corrupt every time series
// derived from it.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	var fire []waiter
	rest := s.waiters[:0]
	for _, w := range s.waiters {
		if !w.at.After(now) {
			fire = append(fire, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	s.mu.Unlock()
	for _, w := range fire {
		w.fn(now)
	}
}

// AdvanceTo moves the clock to t. It panics if t is before the current time.
func (s *Sim) AdvanceTo(t time.Time) {
	s.Advance(t.Sub(s.Now()))
}

// At registers fn to run once the clock reaches or passes t. If t is already
// in the past, fn runs immediately.
func (s *Sim) At(t time.Time, fn func(time.Time)) {
	s.mu.Lock()
	if !t.After(s.now) {
		now := s.now
		s.mu.Unlock()
		fn(now)
		return
	}
	s.waiters = append(s.waiters, waiter{at: t, fn: fn})
	s.mu.Unlock()
}

// Day returns the zero-based study day index of t relative to start.
// Times before start map to negative days.
func Day(start, t time.Time) int {
	d := t.Sub(start)
	day := int(d / (24 * time.Hour))
	if d < 0 && d%(24*time.Hour) != 0 {
		day--
	}
	return day
}

// DayStart returns the instant at which the given zero-based study day
// begins.
func DayStart(start time.Time, day int) time.Time {
	return start.Add(time.Duration(day) * 24 * time.Hour)
}

// Fixed is a Clock frozen at a single instant, handy in unit tests.
type Fixed time.Time

// Now returns the frozen instant.
func (f Fixed) Now() time.Time { return time.Time(f) }

// Scaled maps real time onto virtual time at a speedup factor: each real
// second advances the virtual clock by Speedup seconds. Used by the
// interactive `msgscope serve` mode so a 38-day study elapses while a human
// pokes at the simulated services.
type Scaled struct {
	VirtualStart time.Time
	RealStart    time.Time
	Speedup      float64
}

// NewScaled starts a scaled clock at virtualStart, anchored to the current
// real time.
func NewScaled(virtualStart time.Time, speedup float64) *Scaled {
	if speedup <= 0 {
		speedup = 1
	}
	return &Scaled{VirtualStart: virtualStart, RealStart: time.Now(), Speedup: speedup}
}

// Now returns the current virtual time.
func (s *Scaled) Now() time.Time {
	elapsed := time.Since(s.RealStart)
	return s.VirtualStart.Add(time.Duration(float64(elapsed) * s.Speedup))
}
