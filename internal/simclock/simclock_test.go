package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvance(t *testing.T) {
	s := New(StudyStart)
	s.Advance(90 * time.Minute)
	want := StudyStart.Add(90 * time.Minute)
	if !s.Now().Equal(want) {
		t.Fatalf("Now=%v want %v", s.Now(), want)
	}
}

func TestAdvanceToAndNegativePanic(t *testing.T) {
	s := New(StudyStart)
	s.AdvanceTo(StudyStart.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	s.Advance(-time.Second)
}

func TestAtFiresOnCross(t *testing.T) {
	s := New(StudyStart)
	var fired []time.Time
	s.At(StudyStart.Add(2*time.Hour), func(now time.Time) { fired = append(fired, now) })
	s.Advance(time.Hour)
	if len(fired) != 0 {
		t.Fatal("waiter fired early")
	}
	s.Advance(90 * time.Minute)
	if len(fired) != 1 {
		t.Fatalf("waiter fired %d times, want 1", len(fired))
	}
	if !fired[0].Equal(StudyStart.Add(150 * time.Minute)) {
		t.Fatalf("waiter got %v", fired[0])
	}
	s.Advance(time.Hour)
	if len(fired) != 1 {
		t.Fatal("waiter fired again")
	}
}

func TestAtInPastFiresImmediately(t *testing.T) {
	s := New(StudyStart)
	s.Advance(time.Hour)
	fired := false
	s.At(StudyStart, func(time.Time) { fired = true })
	if !fired {
		t.Fatal("past waiter did not fire immediately")
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := New(StudyStart)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Now()
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		s.Advance(time.Minute)
	}
	close(stop)
	wg.Wait()
	if got := s.Now().Sub(StudyStart); got != 1000*time.Minute {
		t.Fatalf("advanced %v, want 1000m", got)
	}
}

func TestDayMath(t *testing.T) {
	cases := []struct {
		offset time.Duration
		day    int
	}{
		{0, 0}, {23 * time.Hour, 0}, {24 * time.Hour, 1},
		{36 * time.Hour, 1}, {48 * time.Hour, 2}, {-1 * time.Hour, -1},
	}
	for _, c := range cases {
		if got := Day(StudyStart, StudyStart.Add(c.offset)); got != c.day {
			t.Errorf("Day(+%v) = %d, want %d", c.offset, got, c.day)
		}
	}
	if !DayStart(StudyStart, 3).Equal(StudyStart.Add(72 * time.Hour)) {
		t.Fatal("DayStart wrong")
	}
}

func TestFixed(t *testing.T) {
	f := Fixed(StudyStart)
	if !f.Now().Equal(StudyStart) {
		t.Fatal("Fixed clock drifted")
	}
}
