package report

import (
	"sync"
	"time"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
	"msgscope/internal/privacy"
	"msgscope/internal/store"
)

// AggCache memoizes one dataset's Aggregates. The study attaches a cache
// to the Dataset it hands out, so the engine's figure/table fan-out —
// however many experiments it computes, from however many goroutines —
// shares a single aggregation pass. Hand-built Datasets without a cache
// keep working: each builder call aggregates on the fly.
type AggCache struct {
	once sync.Once
	agg  *Aggregates
}

// Aggregates carries every reduction the numbered figures and the
// data-driven tables take from the dataset. Aggregate fills it with one
// walk over each record class — tweets, control tweets, groups, messages,
// users — instead of the nine figure-private scans the builders used to
// run. The figure result types and their Render output are unchanged;
// only the scan structure is.
type Aggregates struct {
	fig1 Fig1Result
	fig2 Fig2Result
	fig3 Fig3Result
	fig4 Fig4Result
	fig5 Fig5Result
	fig6 Fig6Result
	fig7 Fig7Result
	fig8 Fig8Result
	fig9 Fig9Result

	// spanDays carries Figure 9's per-joined-group collection windows from
	// the groups walk to the messages walk.
	spanDays map[platform.Platform]map[string]float64

	table2 Table2Result
	// privacyReport is shared by Table 4 and Table 5, which used to run
	// the PII analysis once each.
	privacyReport privacy.Report
}

// aggregates returns the dataset's Aggregates: computed once per AggCache,
// or on the fly for cache-less datasets.
func (d Dataset) aggregates() *Aggregates {
	if d.Agg == nil {
		return Aggregate(d)
	}
	d.Agg.once.Do(func() { d.Agg.agg = Aggregate(d) })
	return d.Agg.agg
}

// Aggregate runs the single-pass reduction over the dataset. Every
// accumulation below is order-independent (counter increments, set
// inserts, running minima) or visits records in the same per-platform
// order as the original per-figure scans, so the results are identical to
// computing each figure independently.
func Aggregate(ds Dataset) *Aggregates {
	if ds.Prof != nil {
		defer ds.Prof.StartStage("aggregate")()
	}
	a := &Aggregates{}
	a.walkTweets(ds)
	a.walkControl(ds)
	a.walkGroups(ds)
	a.walkMessages(ds)
	a.walkUsers(ds)
	return a
}

// walkTweets fills Figure 1 (discovery series), Figure 3's platform rows
// (tweet features), and Figure 4 (languages) from one pass over the
// collected tweets.
func (a *Aggregates) walkTweets(ds Dataset) {
	a.fig1 = Fig1Result{
		All:    map[platform.Platform]*stats.Series{},
		Unique: map[platform.Platform]*stats.Series{},
		New:    map[platform.Platform]*stats.Series{},
	}
	a.fig4 = Fig4Result{Langs: map[platform.Platform]*stats.Histogram{}}
	type daySet map[string]struct{}
	uniq := map[platform.Platform]map[int]daySet{}
	seen := map[platform.Platform]map[string]int{} // code -> first day
	feats := map[platform.Platform]*FeatureShares{}
	for _, p := range platform.All {
		a.fig1.All[p] = stats.NewSeries(ds.Days)
		a.fig1.Unique[p] = stats.NewSeries(ds.Days)
		a.fig1.New[p] = stats.NewSeries(ds.Days)
		a.fig4.Langs[p] = stats.NewHistogram()
		uniq[p] = map[int]daySet{}
		seen[p] = map[string]int{}
		feats[p] = &FeatureShares{Name: p.String()}
	}

	tweets := ds.Tweets()
	for i, n := 0, tweets.Len(); i < n; i++ {
		t := tweets.At(i)
		p := t.Platform
		accumulate(feats[p], t.Hashtags, t.Mentions, t.Retweet)
		a.fig4.Langs[p].Inc(t.Lang)
		day := ds.dayOf(t.CreatedAt)
		if day < 0 || day >= ds.Days {
			continue
		}
		a.fig1.All[p].Inc(day, 1)
		if uniq[p][day] == nil {
			uniq[p][day] = daySet{}
		}
		uniq[p][day][t.GroupCode] = struct{}{}
		if first, ok := seen[p][t.GroupCode]; !ok || day < first {
			seen[p][t.GroupCode] = day
		}
	}
	for _, p := range platform.All {
		for day, set := range uniq[p] {
			a.fig1.Unique[p].Inc(day, float64(len(set)))
		}
		for _, firstDay := range seen[p] {
			a.fig1.New[p].Inc(firstDay, 1)
		}
		finalize(feats[p])
		a.fig3.Rows = append(a.fig3.Rows, *feats[p])
	}
}

// walkControl appends Figure 3's control row.
func (a *Aggregates) walkControl(ds Dataset) {
	ctl := FeatureShares{Name: "Control"}
	control := ds.Control()
	for i, n := 0, control.Len(); i < n; i++ {
		t := control.At(i)
		accumulate(&ctl, t.Hashtags, t.Mentions, t.Retweet)
	}
	finalize(&ctl)
	a.fig3.Rows = append(a.fig3.Rows, ctl)
}

// walkGroups fills Figure 2 (tweets per URL), Figure 5 (staleness),
// Figure 6 (revocation), Figure 7 (membership), and Figure 9's joined-group
// collection spans from one pass over each platform's groups.
func (a *Aggregates) walkGroups(ds Dataset) {
	a.fig2 = Fig2Result{
		CDF:        map[platform.Platform]*stats.ECDF{},
		SharedOnce: map[platform.Platform]float64{},
	}
	a.fig5 = Fig5Result{
		CDF:     map[platform.Platform]*stats.ECDF{},
		SameDay: map[platform.Platform]float64{},
		OverYr:  map[platform.Platform]float64{},
	}
	a.fig6 = Fig6Result{
		LifetimeDays:  map[platform.Platform]*stats.ECDF{},
		RevokedPerDay: map[platform.Platform]*stats.Series{},
		RevokedShare:  map[platform.Platform]float64{},
		DeadAtFirst:   map[platform.Platform]float64{},
	}
	a.fig7 = Fig7Result{
		Members:    map[platform.Platform]*stats.ECDF{},
		OnlineFrac: map[platform.Platform]*stats.ECDF{},
		Growth:     map[platform.Platform]*stats.ECDF{},
		Grew:       map[platform.Platform]float64{},
		Shrank:     map[platform.Platform]float64{},
	}
	a.spanDays = map[platform.Platform]map[string]float64{}

	for _, p := range platform.All {
		shareCDF := stats.NewECDF(nil)
		sharedOnce, nGroups := 0, 0

		staleCDF := stats.NewECDF(nil)
		sameDay, overYr, nStale := 0, 0, 0

		life := stats.NewECDF(nil)
		perDay := stats.NewSeries(ds.Days)
		revoked, deadFirst, nObserved := 0, 0, 0

		mem := stats.NewECDF(nil)
		onl := stats.NewECDF(nil)
		gro := stats.NewECDF(nil)
		grew, shrank, nGrowth := 0, 0, 0

		spans := map[string]float64{}

		list := ds.GroupsOf(p)
		for gi, gn := 0, list.Len(); gi < gn; gi++ {
			g := list.At(gi)
			obs := list.Obs(gi)

			// Figure 2: share multiplicity.
			shareCDF.AddInt(g.Tweets)
			nGroups++
			if g.Tweets == 1 {
				sharedOnce++
			}

			// Figure 5: staleness where a creation date is known — the join
			// metadata, or the first observation reporting one (Discord
			// snowflakes).
			created := g.CreatedAt
			if created.IsZero() {
				created = obs.FirstCreatedAt()
			}
			if !created.IsZero() {
				stale := g.FirstSeen.Sub(created)
				if stale < 0 {
					stale = 0
				}
				days := stale.Hours() / 24
				staleCDF.Add(days)
				nStale++
				if days < 1 {
					sameDay++
				}
				if days > 365 {
					overYr++
				}
			}

			// Figure 9: the message-collection window of joined groups.
			if g.Joined {
				if span := messageSpanDays(ds, g); span > 0 {
					spans[g.Code] = span
				}
			}

			if obs.Len() == 0 {
				continue
			}

			// Figures 6 and 7 in one fused pass over the series. Figure 6
			// reads the series only up to the first revocation (lastAlive,
			// revokedAt stop updating once revokedAt is set — the former
			// loop's break); Figure 7 tracks the first and last alive
			// observations over the whole series.
			nObserved++
			var lastAlive, revokedAt time.Time
			firstSeen := false
			var firstMembers, firstOnline, lastMembers, aliveCount int
			obs.Each(func(o store.Observation) bool {
				if o.Alive {
					if revokedAt.IsZero() {
						lastAlive = o.At
					}
					if !firstSeen {
						firstSeen = true
						firstMembers, firstOnline = o.Members, o.Online
					}
					lastMembers = o.Members
					aliveCount++
				} else if revokedAt.IsZero() {
					revokedAt = o.At
				}
				return true
			})
			if !revokedAt.IsZero() {
				revoked++
				perDay.Inc(ds.dayOf(revokedAt), 1)
				if lastAlive.IsZero() {
					deadFirst++
					life.Add(0)
				} else {
					life.Add(lastAlive.Sub(g.FirstSeen).Hours() / 24)
				}
			}

			// Figure 7: membership at first alive observation and growth
			// to the last.
			if !firstSeen {
				continue
			}
			mem.AddInt(firstMembers)
			if firstMembers > 0 && (p == platform.Telegram || p == platform.Discord) {
				onl.Add(float64(firstOnline) / float64(firstMembers))
			}
			if aliveCount >= 2 {
				delta := lastMembers - firstMembers
				gro.AddInt(delta)
				nGrowth++
				if delta > 0 {
					grew++
				}
				if delta < 0 {
					shrank++
				}
			}
		}

		a.fig2.CDF[p] = shareCDF
		if nGroups > 0 {
			a.fig2.SharedOnce[p] = float64(sharedOnce) / float64(nGroups)
		}
		a.fig5.CDF[p] = staleCDF
		if nStale > 0 {
			a.fig5.SameDay[p] = float64(sameDay) / float64(nStale)
			a.fig5.OverYr[p] = float64(overYr) / float64(nStale)
		}
		a.fig6.LifetimeDays[p] = life
		a.fig6.RevokedPerDay[p] = perDay
		if nObserved > 0 {
			a.fig6.RevokedShare[p] = float64(revoked) / float64(nObserved)
			a.fig6.DeadAtFirst[p] = float64(deadFirst) / float64(nObserved)
		}
		a.fig7.Members[p] = mem
		a.fig7.OnlineFrac[p] = onl
		a.fig7.Growth[p] = gro
		if nGrowth > 0 {
			a.fig7.Grew[p] = float64(grew) / float64(nGrowth)
			a.fig7.Shrank[p] = float64(shrank) / float64(nGrowth)
		}
		a.spanDays[p] = spans
	}
}

// walkMessages fills Figure 8 (message types) and Figure 9's per-group and
// per-user counts from one pass over the collected messages, then
// finalizes Figure 9 against the spans of walkGroups.
func (a *Aggregates) walkMessages(ds Dataset) {
	a.fig8 = Fig8Result{Types: map[platform.Platform]*stats.Histogram{}}
	counts := map[platform.Platform]map[string]int{} // group -> msgs
	users := map[platform.Platform]map[uint64]int{}  // user -> msgs
	for _, p := range platform.All {
		a.fig8.Types[p] = stats.NewHistogram()
		counts[p] = map[string]int{}
		users[p] = map[uint64]int{}
	}
	msgs := ds.Messages()
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		a.fig8.Types[m.Platform].Inc(m.Type.String())
		counts[m.Platform][m.GroupCode]++
		users[m.Platform][m.AuthorKey]++
	}

	a.fig9.PerGroupDay = map[platform.Platform]*stats.ECDF{}
	a.fig9.PerUser = map[platform.Platform]*stats.ECDF{}
	a.fig9.Top1Share = map[platform.Platform]float64{}
	a.fig9.UpTo10Share = map[platform.Platform]float64{}
	a.fig9.ActiveUsers = map[platform.Platform]int{}
	for _, p := range platform.All {
		e := stats.NewECDF(nil)
		for code, n := range counts[p] {
			if span, ok := a.spanDays[p][code]; ok {
				e.Add(float64(n) / span)
			}
		}
		a.fig9.PerGroupDay[p] = e

		ue := stats.NewECDF(nil)
		var perUser []float64
		upto10 := 0
		for _, n := range users[p] {
			ue.AddInt(n)
			perUser = append(perUser, float64(n))
			if n <= 10 {
				upto10++
			}
		}
		a.fig9.PerUser[p] = ue
		a.fig9.ActiveUsers[p] = len(users[p])
		a.fig9.Top1Share[p] = stats.TopShare(perUser, 0.01)
		if len(users[p]) > 0 {
			a.fig9.UpTo10Share[p] = float64(upto10) / float64(len(users[p]))
		}
	}
}

// walkUsers fills Table 2 (with the store's per-platform counters) and
// runs the PII analysis once for Tables 4 and 5.
func (a *Aggregates) walkUsers(ds Dataset) {
	us := ds.Users()

	memberUsers := map[platform.Platform]int{}
	for _, u := range us {
		if !u.Creator {
			memberUsers[u.Platform]++
		}
	}
	for _, p := range platform.All {
		c := ds.CountsFor(p)
		row := Table2Row{
			Platform:     p,
			Tweets:       c.Tweets,
			TweetUsers:   c.TweetUsers,
			GroupURLs:    c.GroupURLs,
			JoinedGroups: c.JoinedGroups,
			Messages:     c.Messages,
			MessageUsers: memberUsers[p],
		}
		a.table2.Rows = append(a.table2.Rows, row)
		a.table2.Total.Tweets += row.Tweets
		a.table2.Total.TweetUsers += row.TweetUsers
		a.table2.Total.GroupURLs += row.GroupURLs
		a.table2.Total.JoinedGroups += row.JoinedGroups
		a.table2.Total.Messages += row.Messages
		a.table2.Total.MessageUsers += row.MessageUsers
	}

	a.privacyReport = privacy.AnalyzeUsers(us)
}

// messageSpanDays returns the window over which a joined group's messages
// were collected: since the join for WhatsApp, since creation otherwise.
func messageSpanDays(ds Dataset, g store.GroupRecord) float64 {
	end := ds.Start.Add(time.Duration(ds.Days) * 24 * time.Hour)
	var from time.Time
	if g.Platform == platform.WhatsApp {
		from = g.JoinedAt
	} else {
		from = g.CreatedAt
	}
	if from.IsZero() || !end.After(from) {
		return 0
	}
	return end.Sub(from).Hours() / 24
}
