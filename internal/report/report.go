// Package report regenerates every table and figure of the paper's
// evaluation from a collected dataset. Each experiment has a typed result
// carrying the numbers plus a Render method that prints the same rows or
// series the paper reports. DESIGN.md §4 maps experiment IDs to these
// functions; EXPERIMENTS.md records paper-vs-measured values.
package report

import (
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/prof"
	"msgscope/internal/store"
)

// Dataset is the input to every experiment: the collected store plus the
// study window. When Snap is set (the study driver takes one frozen,
// indexed snapshot after collection) the experiments read the snapshot's
// pre-sorted slices and per-platform partitions instead of re-deriving
// them from the store's maps on every call; without it they fall back to
// store scans, so hand-built Datasets keep working.
type Dataset struct {
	Store *store.Store
	Start time.Time
	Days  int
	Snap  *store.Snapshot
	// Agg, when set, memoizes the single-pass figure/table aggregation so
	// every experiment computed from this dataset shares one scan per
	// record class (see aggregate.go).
	Agg *AggCache
	// Prof, when set, receives per-analysis-stage wall timings ("lda",
	// "aggregate", "figures") as experiments are computed.
	Prof *prof.Recorder
}

// dayOf maps an instant to a zero-based study day.
func (d Dataset) dayOf(t time.Time) int {
	return int(t.Sub(d.Start) / (24 * time.Hour))
}

// Tweets returns a view of the collected platform tweets.
func (d Dataset) Tweets() store.TweetList {
	if d.Snap != nil {
		return d.Snap.Tweets
	}
	return d.Store.Tweets()
}

// Control returns a view of the control-stream tweets.
func (d Dataset) Control() store.ControlList {
	if d.Snap != nil {
		return d.Snap.Control
	}
	return d.Store.Control()
}

// Messages returns a view of the collected in-group messages.
func (d Dataset) Messages() store.MessageList {
	if d.Snap != nil {
		return d.Snap.Messages
	}
	return d.Store.Messages()
}

// Groups returns the view of all discovered groups, sorted by platform
// then code.
func (d Dataset) Groups() store.GroupList {
	if d.Snap != nil {
		return d.Snap.Groups
	}
	return d.Store.Groups()
}

// GroupsOf returns the view of one platform's groups, sorted by code.
func (d Dataset) GroupsOf(p platform.Platform) store.GroupList {
	if d.Snap != nil {
		return d.Snap.GroupsOf(p)
	}
	return d.Store.GroupsOf(p)
}

// JoinedOf returns the view of one platform's joined groups, sorted by
// code.
func (d Dataset) JoinedOf(p platform.Platform) store.GroupList {
	if d.Snap != nil {
		return d.Snap.JoinedOf(p)
	}
	return d.Store.GroupsOf(p).Where(func(g store.GroupRecord) bool {
		return g.Joined
	})
}

// Users returns all observed users, sorted by platform then key.
func (d Dataset) Users() []*store.UserRecord {
	if d.Snap != nil {
		return d.Snap.Users
	}
	return d.Store.Users()
}

// CountsFor returns one platform's Table 2 counts.
func (d Dataset) CountsFor(p platform.Platform) store.Counts {
	if d.Snap != nil {
		return d.Snap.CountsFor(p)
	}
	return d.Store.CountsFor(p)
}

// TweetsOf returns a view of one platform's tweets, in collection order.
func (d Dataset) TweetsOf(p platform.Platform) store.TweetList {
	if d.Snap != nil {
		return d.Snap.TweetsOf(p)
	}
	return d.Store.Tweets().Where(func(t store.TweetRecord) bool {
		return t.Platform == p
	})
}

// TweetDayBuckets returns the tweets partitioned by zero-based study day;
// tweets outside the window appear in no bucket.
func (d Dataset) TweetDayBuckets() []store.TweetList {
	if d.Snap != nil {
		return d.Snap.TweetsByDay()
	}
	return d.Store.Tweets().ByDay(d.Start, d.Days)
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}
