// Package report regenerates every table and figure of the paper's
// evaluation from a collected dataset. Each experiment has a typed result
// carrying the numbers plus a Render method that prints the same rows or
// series the paper reports. DESIGN.md §4 maps experiment IDs to these
// functions; EXPERIMENTS.md records paper-vs-measured values.
package report

import (
	"time"

	"msgscope/internal/store"
)

// Dataset is the input to every experiment: the collected store plus the
// study window.
type Dataset struct {
	Store *store.Store
	Start time.Time
	Days  int
}

// dayOf maps an instant to a zero-based study day.
func (d Dataset) dayOf(t time.Time) int {
	return int(t.Sub(d.Start) / (24 * time.Hour))
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}
