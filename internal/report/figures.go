package report

import (
	"fmt"
	"strings"
	"time"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
	"msgscope/internal/store"
)

// --- Figure 1: group URLs discovered per day ---

// Fig1Result carries the three per-day series of Figure 1 for each
// platform: all shares, unique URLs, and never-seen-before URLs.
type Fig1Result struct {
	All    map[platform.Platform]*stats.Series
	Unique map[platform.Platform]*stats.Series
	New    map[platform.Platform]*stats.Series
}

// Fig1 computes the discovery series.
func Fig1(ds Dataset) Fig1Result {
	res := Fig1Result{
		All:    map[platform.Platform]*stats.Series{},
		Unique: map[platform.Platform]*stats.Series{},
		New:    map[platform.Platform]*stats.Series{},
	}
	type daySet map[string]struct{}
	uniq := map[platform.Platform]map[int]daySet{}
	seen := map[platform.Platform]map[string]int{} // code -> first day
	for _, p := range platform.All {
		res.All[p] = stats.NewSeries(ds.Days)
		res.Unique[p] = stats.NewSeries(ds.Days)
		res.New[p] = stats.NewSeries(ds.Days)
		uniq[p] = map[int]daySet{}
		seen[p] = map[string]int{}
	}
	for day, bucket := range ds.TweetDayBuckets() {
		for _, t := range bucket {
			res.All[t.Platform].Inc(day, 1)
			if uniq[t.Platform][day] == nil {
				uniq[t.Platform][day] = daySet{}
			}
			uniq[t.Platform][day][t.GroupCode] = struct{}{}
			if first, ok := seen[t.Platform][t.GroupCode]; !ok || day < first {
				seen[t.Platform][t.GroupCode] = day
			}
		}
	}
	for _, p := range platform.All {
		for day, set := range uniq[p] {
			res.Unique[p].Inc(day, float64(len(set)))
		}
		for _, firstDay := range seen[p] {
			res.New[p].Inc(firstDay, 1)
		}
	}
	return res
}

// Render prints the per-day medians, the headline numbers of Section 4.
func (f Fig1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: group URLs discovered per day (medians over days)\n")
	sb.WriteString("platform  | all/day  unique/day  new/day  | totals\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | %8.0f %10.0f %8.0f | all=%.0f new=%.0f\n", p,
			f.All[p].Median(), f.Unique[p].Median(), f.New[p].Median(),
			f.All[p].Total(), f.New[p].Total())
	}
	return sb.String()
}

// --- Figure 2: tweets per group URL ---

// Fig2Result is the CDF of tweet counts per group URL.
type Fig2Result struct {
	CDF        map[platform.Platform]*stats.ECDF
	SharedOnce map[platform.Platform]float64 // fraction of URLs tweeted once
}

// Fig2 computes the share-multiplicity distribution.
func Fig2(ds Dataset) Fig2Result {
	res := Fig2Result{
		CDF:        map[platform.Platform]*stats.ECDF{},
		SharedOnce: map[platform.Platform]float64{},
	}
	for _, p := range platform.All {
		e := stats.NewECDF(nil)
		once, n := 0, 0
		for _, g := range ds.GroupsOf(p) {
			e.AddInt(g.Tweets)
			n++
			if g.Tweets == 1 {
				once++
			}
		}
		res.CDF[p] = e
		if n > 0 {
			res.SharedOnce[p] = float64(once) / float64(n)
		}
	}
	return res
}

// Render prints the CDF summary.
func (f Fig2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: tweets per group URL\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | shared-once=%.0f%% mean=%.1f max=%.0f | %s\n", p,
			f.SharedOnce[p]*100, f.CDF[p].Mean(), f.CDF[p].Max(), f.CDF[p].Render())
	}
	return sb.String()
}

// --- Figure 3: hashtags, mentions, retweets ---

// FeatureShares is one population's tweet-feature prevalence.
type FeatureShares struct {
	Name         string
	Tweets       int
	Hashtag      float64 // >=1 hashtag
	MultiHashtag float64 // >1 hashtag
	Mention      float64
	MultiMention float64
	Retweet      float64
}

// Fig3Result holds per-platform and control feature shares.
type Fig3Result struct {
	Rows []FeatureShares // WhatsApp, Telegram, Discord, Control
}

// Fig3 computes feature prevalence for the platform tweets and the control.
func Fig3(ds Dataset) Fig3Result {
	var res Fig3Result
	for _, p := range platform.All {
		fs := FeatureShares{Name: p.String()}
		for _, t := range ds.TweetsOf(p) {
			accumulate(&fs, t.Hashtags, t.Mentions, t.Retweet)
		}
		finalize(&fs)
		res.Rows = append(res.Rows, fs)
	}
	ctl := FeatureShares{Name: "Control"}
	for _, t := range ds.Control() {
		accumulate(&ctl, t.Hashtags, t.Mentions, t.Retweet)
	}
	finalize(&ctl)
	res.Rows = append(res.Rows, ctl)
	return res
}

func accumulate(fs *FeatureShares, hashtags, mentions int, retweet bool) {
	fs.Tweets++
	if hashtags >= 1 {
		fs.Hashtag++
	}
	if hashtags > 1 {
		fs.MultiHashtag++
	}
	if mentions >= 1 {
		fs.Mention++
	}
	if mentions > 1 {
		fs.MultiMention++
	}
	if retweet {
		fs.Retweet++
	}
}

func finalize(fs *FeatureShares) {
	if fs.Tweets == 0 {
		return
	}
	n := float64(fs.Tweets)
	fs.Hashtag /= n
	fs.MultiHashtag /= n
	fs.Mention /= n
	fs.MultiMention /= n
	fs.Retweet /= n
}

// Render prints the bar heights of Figure 3.
func (f Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: tweet features (% of tweets)\n")
	sb.WriteString("population | hashtag >1tag mention >1mention retweet\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-10s | %6.1f%% %4.1f%% %6.1f%% %8.1f%% %6.1f%%\n",
			r.Name, r.Hashtag*100, r.MultiHashtag*100, r.Mention*100,
			r.MultiMention*100, r.Retweet*100)
	}
	return sb.String()
}

// --- Figure 4: languages ---

// Fig4Result is the language mix per platform.
type Fig4Result struct {
	Langs map[platform.Platform]*stats.Histogram
}

// Fig4 computes language shares from the platform-provided lang field.
func Fig4(ds Dataset) Fig4Result {
	res := Fig4Result{Langs: map[platform.Platform]*stats.Histogram{}}
	for _, p := range platform.All {
		res.Langs[p] = stats.NewHistogram()
	}
	tweets := ds.Tweets()
	for i := range tweets {
		res.Langs[tweets[i].Platform].Inc(tweets[i].Lang)
	}
	return res
}

// Render prints the top languages per platform.
func (f Fig4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: tweet languages per platform\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s |", p)
		for i, kv := range f.Langs[p].Sorted() {
			if i >= 6 {
				break
			}
			fmt.Fprintf(&sb, " %s=%.0f%%", kv.K, f.Langs[p].Share(kv.K)*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// --- Figure 5: staleness ---

// Fig5Result is the staleness CDF (days between group creation and first
// share on Twitter) per platform.
type Fig5Result struct {
	CDF     map[platform.Platform]*stats.ECDF
	SameDay map[platform.Platform]float64
	OverYr  map[platform.Platform]float64
}

// Fig5 computes staleness where creation dates are known: all observed
// Discord groups (snowflakes) and the joined WhatsApp/Telegram groups.
func Fig5(ds Dataset) Fig5Result {
	res := Fig5Result{
		CDF:     map[platform.Platform]*stats.ECDF{},
		SameDay: map[platform.Platform]float64{},
		OverYr:  map[platform.Platform]float64{},
	}
	for _, p := range platform.All {
		e := stats.NewECDF(nil)
		sameDay, overYr, n := 0, 0, 0
		for _, g := range ds.GroupsOf(p) {
			created := creationOf(g)
			if created.IsZero() {
				continue
			}
			stale := g.FirstSeen.Sub(created)
			if stale < 0 {
				stale = 0
			}
			days := stale.Hours() / 24
			e.Add(days)
			n++
			if days < 1 {
				sameDay++
			}
			if days > 365 {
				overYr++
			}
		}
		res.CDF[p] = e
		if n > 0 {
			res.SameDay[p] = float64(sameDay) / float64(n)
			res.OverYr[p] = float64(overYr) / float64(n)
		}
	}
	return res
}

// creationOf returns the best-known creation date of a group: the join-time
// metadata if joined, else the Discord snowflake date from observations.
func creationOf(g *store.GroupRecord) time.Time {
	if !g.CreatedAt.IsZero() {
		return g.CreatedAt
	}
	for _, o := range g.Observations {
		if !o.CreatedAt.IsZero() {
			return o.CreatedAt
		}
	}
	return time.Time{}
}

// Render prints the staleness summary.
func (f Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: staleness (days from creation to first share)\n")
	for _, p := range platform.All {
		if f.CDF[p].N() == 0 {
			fmt.Fprintf(&sb, "%-9s | (no creation dates)\n", p)
			continue
		}
		fmt.Fprintf(&sb, "%-9s | same-day=%.0f%% >1yr=%.1f%% n=%d | %s\n", p,
			f.SameDay[p]*100, f.OverYr[p]*100, f.CDF[p].N(), f.CDF[p].Render())
	}
	return sb.String()
}

// --- Figure 6: revocation ---

// Fig6Result covers both panels: accessibility time of revoked URLs and
// revocations per day.
type Fig6Result struct {
	LifetimeDays  map[platform.Platform]*stats.ECDF // revoked URLs only
	RevokedPerDay map[platform.Platform]*stats.Series
	RevokedShare  map[platform.Platform]float64 // of all URLs
	DeadAtFirst   map[platform.Platform]float64 // revoked before first probe
}

// Fig6 computes revocation behaviour from the daily observation series.
func Fig6(ds Dataset) Fig6Result {
	res := Fig6Result{
		LifetimeDays:  map[platform.Platform]*stats.ECDF{},
		RevokedPerDay: map[platform.Platform]*stats.Series{},
		RevokedShare:  map[platform.Platform]float64{},
		DeadAtFirst:   map[platform.Platform]float64{},
	}
	for _, p := range platform.All {
		life := stats.NewECDF(nil)
		perDay := stats.NewSeries(ds.Days)
		revoked, deadFirst, n := 0, 0, 0
		for _, g := range ds.GroupsOf(p) {
			if len(g.Observations) == 0 {
				continue
			}
			n++
			var lastAlive, revokedAt time.Time
			for _, o := range g.Observations {
				if o.Alive {
					lastAlive = o.At
				} else {
					revokedAt = o.At
					break
				}
			}
			if revokedAt.IsZero() {
				continue // survived the window
			}
			revoked++
			perDay.Inc(ds.dayOf(revokedAt), 1)
			if lastAlive.IsZero() {
				deadFirst++
				life.Add(0)
			} else {
				life.Add(lastAlive.Sub(g.FirstSeen).Hours() / 24)
			}
		}
		res.LifetimeDays[p] = life
		res.RevokedPerDay[p] = perDay
		if n > 0 {
			res.RevokedShare[p] = float64(revoked) / float64(n)
			res.DeadAtFirst[p] = float64(deadFirst) / float64(n)
		}
	}
	return res
}

// Render prints the revocation summary.
func (f Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: group URL revocation\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | revoked=%.1f%% dead-at-first-obs=%.1f%% | lifetime(d): %s\n",
			p, f.RevokedShare[p]*100, f.DeadAtFirst[p]*100, f.LifetimeDays[p].Render())
	}
	return sb.String()
}

// --- Figure 7: members, online share, growth ---

// Fig7Result covers the three panels of Figure 7.
type Fig7Result struct {
	Members    map[platform.Platform]*stats.ECDF // at first alive observation
	OnlineFrac map[platform.Platform]*stats.ECDF // online/members, first obs
	Growth     map[platform.Platform]*stats.ECDF // last - first members
	Grew       map[platform.Platform]float64
	Shrank     map[platform.Platform]float64
}

// Fig7 computes membership distributions from the daily observations.
func Fig7(ds Dataset) Fig7Result {
	res := Fig7Result{
		Members:    map[platform.Platform]*stats.ECDF{},
		OnlineFrac: map[platform.Platform]*stats.ECDF{},
		Growth:     map[platform.Platform]*stats.ECDF{},
		Grew:       map[platform.Platform]float64{},
		Shrank:     map[platform.Platform]float64{},
	}
	for _, p := range platform.All {
		mem := stats.NewECDF(nil)
		onl := stats.NewECDF(nil)
		gro := stats.NewECDF(nil)
		grew, shrank, n := 0, 0, 0
		for _, g := range ds.GroupsOf(p) {
			first, last := -1, -1
			for i, o := range g.Observations {
				if o.Alive {
					if first < 0 {
						first = i
					}
					last = i
				}
			}
			if first < 0 {
				continue
			}
			fo := g.Observations[first]
			mem.AddInt(fo.Members)
			if fo.Members > 0 && (p == platform.Telegram || p == platform.Discord) {
				onl.Add(float64(fo.Online) / float64(fo.Members))
			}
			if last > first {
				delta := g.Observations[last].Members - fo.Members
				gro.AddInt(delta)
				n++
				if delta > 0 {
					grew++
				}
				if delta < 0 {
					shrank++
				}
			}
		}
		res.Members[p] = mem
		res.OnlineFrac[p] = onl
		res.Growth[p] = gro
		if n > 0 {
			res.Grew[p] = float64(grew) / float64(n)
			res.Shrank[p] = float64(shrank) / float64(n)
		}
	}
	return res
}

// Render prints the three panels' summaries.
func (f Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: group members, online share, growth\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | members: %s\n", p, f.Members[p].Render())
		if f.OnlineFrac[p].N() > 0 {
			over50 := 1 - f.OnlineFrac[p].P(0.5)
			fmt.Fprintf(&sb, "          | online>50%%: %.1f%% of groups | online frac: %s\n",
				over50*100, f.OnlineFrac[p].Render())
		}
		if f.Growth[p].N() > 0 {
			fmt.Fprintf(&sb, "          | grew=%.0f%% shrank=%.0f%% | growth: %s\n",
				f.Grew[p]*100, f.Shrank[p]*100, f.Growth[p].Render())
		}
	}
	return sb.String()
}

// --- Figure 8: message types ---

// Fig8Result is the message-type mix per platform.
type Fig8Result struct {
	Types map[platform.Platform]*stats.Histogram
}

// Fig8 computes message-type shares over the joined groups' messages.
func Fig8(ds Dataset) Fig8Result {
	res := Fig8Result{Types: map[platform.Platform]*stats.Histogram{}}
	for _, p := range platform.All {
		res.Types[p] = stats.NewHistogram()
	}
	msgs := ds.Messages()
	for i := range msgs {
		res.Types[msgs[i].Platform].Inc(msgs[i].Type.String())
	}
	return res
}

// Render prints the type shares.
func (f Fig8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: message types (% of messages)\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s |", p)
		for _, kv := range f.Types[p].Sorted() {
			fmt.Fprintf(&sb, " %s=%.1f%%", kv.K, f.Types[p].Share(kv.K)*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// --- Figure 9: message volumes ---

// Fig9Result covers messages per group per day and per user.
type Fig9Result struct {
	PerGroupDay map[platform.Platform]*stats.ECDF
	PerUser     map[platform.Platform]*stats.ECDF
	Top1Share   map[platform.Platform]float64 // share of messages by top 1% users
	UpTo10Share map[platform.Platform]float64 // users with <=10 messages
	ActiveUsers map[platform.Platform]int
}

// Fig9 computes in-group activity distributions.
func Fig9(ds Dataset) Fig9Result {
	res := Fig9Result{
		PerGroupDay: map[platform.Platform]*stats.ECDF{},
		PerUser:     map[platform.Platform]*stats.ECDF{},
		Top1Share:   map[platform.Platform]float64{},
		UpTo10Share: map[platform.Platform]float64{},
		ActiveUsers: map[platform.Platform]int{},
	}
	counts := map[platform.Platform]map[string]int{} // group -> msgs
	users := map[platform.Platform]map[uint64]int{}  // user -> msgs
	spanDays := map[platform.Platform]map[string]float64{}
	for _, p := range platform.All {
		counts[p] = map[string]int{}
		users[p] = map[uint64]int{}
		spanDays[p] = map[string]float64{}
	}
	msgs := ds.Messages()
	for i := range msgs {
		counts[msgs[i].Platform][msgs[i].GroupCode]++
		users[msgs[i].Platform][msgs[i].AuthorKey]++
	}
	for _, p := range platform.All {
		for _, g := range ds.JoinedOf(p) {
			span := messageSpanDays(ds, g)
			if span > 0 {
				spanDays[p][g.Code] = span
			}
		}
		e := stats.NewECDF(nil)
		for code, n := range counts[p] {
			if span, ok := spanDays[p][code]; ok {
				e.Add(float64(n) / span)
			}
		}
		res.PerGroupDay[p] = e

		ue := stats.NewECDF(nil)
		var perUser []float64
		upto10 := 0
		for _, n := range users[p] {
			ue.AddInt(n)
			perUser = append(perUser, float64(n))
			if n <= 10 {
				upto10++
			}
		}
		res.PerUser[p] = ue
		res.ActiveUsers[p] = len(users[p])
		res.Top1Share[p] = stats.TopShare(perUser, 0.01)
		if len(users[p]) > 0 {
			res.UpTo10Share[p] = float64(upto10) / float64(len(users[p]))
		}
	}
	return res
}

// messageSpanDays returns the window over which a joined group's messages
// were collected: since the join for WhatsApp, since creation otherwise.
func messageSpanDays(ds Dataset, g *store.GroupRecord) float64 {
	end := ds.Start.Add(time.Duration(ds.Days) * 24 * time.Hour)
	var from time.Time
	if g.Platform == platform.WhatsApp {
		from = g.JoinedAt
	} else {
		from = g.CreatedAt
	}
	if from.IsZero() || !end.After(from) {
		return 0
	}
	return end.Sub(from).Hours() / 24
}

// Render prints the activity summaries.
func (f Fig9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: message volumes\n")
	for _, p := range platform.All {
		over10 := 0.0
		if f.PerGroupDay[p].N() > 0 {
			over10 = 1 - f.PerGroupDay[p].P(10)
		}
		fmt.Fprintf(&sb, "%-9s | groups>10msg/day=%.0f%% | msgs/group/day: %s\n",
			p, over10*100, f.PerGroupDay[p].Render())
		fmt.Fprintf(&sb, "          | active-users=%d top1%%-share=%.0f%% <=10msgs=%.0f%% | msgs/user: %s\n",
			f.ActiveUsers[p], f.Top1Share[p]*100, f.UpTo10Share[p]*100, f.PerUser[p].Render())
	}
	return sb.String()
}
