package report

import (
	"fmt"
	"strings"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
)

// The nine figure builders below all read the dataset through one shared
// Aggregates value (see aggregate.go): a single pass over each record
// class fills every figure's reductions at once, and a Dataset carrying an
// AggCache — as the study's does — pays for that pass exactly once no
// matter how many figures are computed.

// --- Figure 1: group URLs discovered per day ---

// Fig1Result carries the three per-day series of Figure 1 for each
// platform: all shares, unique URLs, and never-seen-before URLs.
type Fig1Result struct {
	All    map[platform.Platform]*stats.Series
	Unique map[platform.Platform]*stats.Series
	New    map[platform.Platform]*stats.Series
}

// Fig1 computes the discovery series.
func Fig1(ds Dataset) Fig1Result { return ds.aggregates().fig1 }

// Render prints the per-day medians, the headline numbers of Section 4.
func (f Fig1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: group URLs discovered per day (medians over days)\n")
	sb.WriteString("platform  | all/day  unique/day  new/day  | totals\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | %8.0f %10.0f %8.0f | all=%.0f new=%.0f\n", p,
			f.All[p].Median(), f.Unique[p].Median(), f.New[p].Median(),
			f.All[p].Total(), f.New[p].Total())
	}
	return sb.String()
}

// --- Figure 2: tweets per group URL ---

// Fig2Result is the CDF of tweet counts per group URL.
type Fig2Result struct {
	CDF        map[platform.Platform]*stats.ECDF
	SharedOnce map[platform.Platform]float64 // fraction of URLs tweeted once
}

// Fig2 computes the share-multiplicity distribution.
func Fig2(ds Dataset) Fig2Result { return ds.aggregates().fig2 }

// Render prints the CDF summary.
func (f Fig2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: tweets per group URL\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | shared-once=%.0f%% mean=%.1f max=%.0f | %s\n", p,
			f.SharedOnce[p]*100, f.CDF[p].Mean(), f.CDF[p].Max(), f.CDF[p].Render())
	}
	return sb.String()
}

// --- Figure 3: hashtags, mentions, retweets ---

// FeatureShares is one population's tweet-feature prevalence.
type FeatureShares struct {
	Name         string
	Tweets       int
	Hashtag      float64 // >=1 hashtag
	MultiHashtag float64 // >1 hashtag
	Mention      float64
	MultiMention float64
	Retweet      float64
}

// Fig3Result holds per-platform and control feature shares.
type Fig3Result struct {
	Rows []FeatureShares // WhatsApp, Telegram, Discord, Control
}

// Fig3 computes feature prevalence for the platform tweets and the control.
func Fig3(ds Dataset) Fig3Result { return ds.aggregates().fig3 }

func accumulate(fs *FeatureShares, hashtags, mentions int, retweet bool) {
	fs.Tweets++
	if hashtags >= 1 {
		fs.Hashtag++
	}
	if hashtags > 1 {
		fs.MultiHashtag++
	}
	if mentions >= 1 {
		fs.Mention++
	}
	if mentions > 1 {
		fs.MultiMention++
	}
	if retweet {
		fs.Retweet++
	}
}

func finalize(fs *FeatureShares) {
	if fs.Tweets == 0 {
		return
	}
	n := float64(fs.Tweets)
	fs.Hashtag /= n
	fs.MultiHashtag /= n
	fs.Mention /= n
	fs.MultiMention /= n
	fs.Retweet /= n
}

// Render prints the bar heights of Figure 3.
func (f Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: tweet features (% of tweets)\n")
	sb.WriteString("population | hashtag >1tag mention >1mention retweet\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-10s | %6.1f%% %4.1f%% %6.1f%% %8.1f%% %6.1f%%\n",
			r.Name, r.Hashtag*100, r.MultiHashtag*100, r.Mention*100,
			r.MultiMention*100, r.Retweet*100)
	}
	return sb.String()
}

// --- Figure 4: languages ---

// Fig4Result is the language mix per platform.
type Fig4Result struct {
	Langs map[platform.Platform]*stats.Histogram
}

// Fig4 computes language shares from the platform-provided lang field.
func Fig4(ds Dataset) Fig4Result { return ds.aggregates().fig4 }

// Render prints the top languages per platform.
func (f Fig4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: tweet languages per platform\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s |", p)
		for i, kv := range f.Langs[p].Sorted() {
			if i >= 6 {
				break
			}
			fmt.Fprintf(&sb, " %s=%.0f%%", kv.K, f.Langs[p].Share(kv.K)*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// --- Figure 5: staleness ---

// Fig5Result is the staleness CDF (days between group creation and first
// share on Twitter) per platform.
type Fig5Result struct {
	CDF     map[platform.Platform]*stats.ECDF
	SameDay map[platform.Platform]float64
	OverYr  map[platform.Platform]float64
}

// Fig5 computes staleness where creation dates are known: all observed
// Discord groups (snowflakes) and the joined WhatsApp/Telegram groups.
func Fig5(ds Dataset) Fig5Result { return ds.aggregates().fig5 }

// Render prints the staleness summary.
func (f Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: staleness (days from creation to first share)\n")
	for _, p := range platform.All {
		if f.CDF[p].N() == 0 {
			fmt.Fprintf(&sb, "%-9s | (no creation dates)\n", p)
			continue
		}
		fmt.Fprintf(&sb, "%-9s | same-day=%.0f%% >1yr=%.1f%% n=%d | %s\n", p,
			f.SameDay[p]*100, f.OverYr[p]*100, f.CDF[p].N(), f.CDF[p].Render())
	}
	return sb.String()
}

// --- Figure 6: revocation ---

// Fig6Result covers both panels: accessibility time of revoked URLs and
// revocations per day.
type Fig6Result struct {
	LifetimeDays  map[platform.Platform]*stats.ECDF // revoked URLs only
	RevokedPerDay map[platform.Platform]*stats.Series
	RevokedShare  map[platform.Platform]float64 // of all URLs
	DeadAtFirst   map[platform.Platform]float64 // revoked before first probe
}

// Fig6 computes revocation behaviour from the daily observation series.
func Fig6(ds Dataset) Fig6Result { return ds.aggregates().fig6 }

// Render prints the revocation summary.
func (f Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: group URL revocation\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | revoked=%.1f%% dead-at-first-obs=%.1f%% | lifetime(d): %s\n",
			p, f.RevokedShare[p]*100, f.DeadAtFirst[p]*100, f.LifetimeDays[p].Render())
	}
	return sb.String()
}

// --- Figure 7: members, online share, growth ---

// Fig7Result covers the three panels of Figure 7.
type Fig7Result struct {
	Members    map[platform.Platform]*stats.ECDF // at first alive observation
	OnlineFrac map[platform.Platform]*stats.ECDF // online/members, first obs
	Growth     map[platform.Platform]*stats.ECDF // last - first members
	Grew       map[platform.Platform]float64
	Shrank     map[platform.Platform]float64
}

// Fig7 computes membership distributions from the daily observations.
func Fig7(ds Dataset) Fig7Result { return ds.aggregates().fig7 }

// Render prints the three panels' summaries.
func (f Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: group members, online share, growth\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | members: %s\n", p, f.Members[p].Render())
		if f.OnlineFrac[p].N() > 0 {
			over50 := 1 - f.OnlineFrac[p].P(0.5)
			fmt.Fprintf(&sb, "          | online>50%%: %.1f%% of groups | online frac: %s\n",
				over50*100, f.OnlineFrac[p].Render())
		}
		if f.Growth[p].N() > 0 {
			fmt.Fprintf(&sb, "          | grew=%.0f%% shrank=%.0f%% | growth: %s\n",
				f.Grew[p]*100, f.Shrank[p]*100, f.Growth[p].Render())
		}
	}
	return sb.String()
}

// --- Figure 8: message types ---

// Fig8Result is the message-type mix per platform.
type Fig8Result struct {
	Types map[platform.Platform]*stats.Histogram
}

// Fig8 computes message-type shares over the joined groups' messages.
func Fig8(ds Dataset) Fig8Result { return ds.aggregates().fig8 }

// Render prints the type shares.
func (f Fig8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: message types (% of messages)\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s |", p)
		for _, kv := range f.Types[p].Sorted() {
			fmt.Fprintf(&sb, " %s=%.1f%%", kv.K, f.Types[p].Share(kv.K)*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// --- Figure 9: message volumes ---

// Fig9Result covers messages per group per day and per user.
type Fig9Result struct {
	PerGroupDay map[platform.Platform]*stats.ECDF
	PerUser     map[platform.Platform]*stats.ECDF
	Top1Share   map[platform.Platform]float64 // share of messages by top 1% users
	UpTo10Share map[platform.Platform]float64 // users with <=10 messages
	ActiveUsers map[platform.Platform]int
}

// Fig9 computes in-group activity distributions.
func Fig9(ds Dataset) Fig9Result { return ds.aggregates().fig9 }

// Render prints the activity summaries.
func (f Fig9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: message volumes\n")
	for _, p := range platform.All {
		over10 := 0.0
		if f.PerGroupDay[p].N() > 0 {
			over10 = 1 - f.PerGroupDay[p].P(10)
		}
		fmt.Fprintf(&sb, "%-9s | groups>10msg/day=%.0f%% | msgs/group/day: %s\n",
			p, over10*100, f.PerGroupDay[p].Render())
		fmt.Fprintf(&sb, "          | active-users=%d top1%%-share=%.0f%% <=10msgs=%.0f%% | msgs/user: %s\n",
			f.ActiveUsers[p], f.Top1Share[p]*100, f.UpTo10Share[p]*100, f.PerUser[p].Render())
	}
	return sb.String()
}
