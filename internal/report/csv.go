package report

import (
	"encoding/csv"
	"io"
	"strconv"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
)

// The CSV emitters render each figure's underlying data in a plot-ready
// form (one row per point, long format), so the reproduced figures can be
// drawn with any external plotting tool. `msgscope run -csv DIR` writes one
// file per figure.

// WriteCSV emits the figure's series as CSV.
func (f Fig1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "day", "all", "unique", "new"}); err != nil {
		return err
	}
	for _, p := range platform.All {
		for d := 0; d < f.All[p].Len(); d++ {
			rec := []string{
				p.String(), strconv.Itoa(d),
				fmtF(f.All[p].At(d)), fmtF(f.Unique[p].At(d)), fmtF(f.New[p].At(d)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the CDF points of tweets-per-URL.
func (f Fig2Result) WriteCSV(w io.Writer) error {
	return writeCDFCSV(w, f.CDF, "tweets_per_url")
}

// WriteCSV emits the feature shares.
func (f Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"population", "tweets", "hashtag", "multi_hashtag", "mention", "multi_mention", "retweet"}); err != nil {
		return err
	}
	for _, r := range f.Rows {
		rec := []string{
			r.Name, strconv.Itoa(r.Tweets),
			fmtF(r.Hashtag), fmtF(r.MultiHashtag), fmtF(r.Mention),
			fmtF(r.MultiMention), fmtF(r.Retweet),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits language shares.
func (f Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "lang", "tweets", "share"}); err != nil {
		return err
	}
	for _, p := range platform.All {
		for _, kv := range f.Langs[p].Sorted() {
			rec := []string{p.String(), kv.K, strconv.Itoa(kv.V), fmtF(f.Langs[p].Share(kv.K))}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the staleness CDF.
func (f Fig5Result) WriteCSV(w io.Writer) error {
	return writeCDFCSV(w, f.CDF, "staleness_days")
}

// WriteCSV emits the revoked-URL lifetime CDF and per-day revocations.
func (f Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "kind", "x", "y"}); err != nil {
		return err
	}
	for _, p := range platform.All {
		for _, pt := range f.LifetimeDays[p].Points(200) {
			if err := cw.Write([]string{p.String(), "lifetime_cdf", fmtF(pt.X), fmtF(pt.Y)}); err != nil {
				return err
			}
		}
		for d := 0; d < f.RevokedPerDay[p].Len(); d++ {
			if err := cw.Write([]string{p.String(), "revoked_per_day",
				strconv.Itoa(d), fmtF(f.RevokedPerDay[p].At(d))}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the three member panels as CDF points.
func (f Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "panel", "x", "y"}); err != nil {
		return err
	}
	panels := []struct {
		name string
		data map[platform.Platform]*stats.ECDF
	}{
		{"members", f.Members}, {"online_frac", f.OnlineFrac}, {"growth", f.Growth},
	}
	for _, panel := range panels {
		for _, p := range platform.All {
			for _, pt := range panel.data[p].Points(200) {
				if err := cw.Write([]string{p.String(), panel.name, fmtF(pt.X), fmtF(pt.Y)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits message-type shares.
func (f Fig8Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "type", "messages", "share"}); err != nil {
		return err
	}
	for _, p := range platform.All {
		for _, kv := range f.Types[p].Sorted() {
			rec := []string{p.String(), kv.K, strconv.Itoa(kv.V), fmtF(f.Types[p].Share(kv.K))}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the two activity panels as CDF points.
func (f Fig9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "panel", "x", "y"}); err != nil {
		return err
	}
	panels := []struct {
		name string
		data map[platform.Platform]*stats.ECDF
	}{
		{"msgs_per_group_day", f.PerGroupDay}, {"msgs_per_user", f.PerUser},
	}
	for _, panel := range panels {
		for _, p := range platform.All {
			for _, pt := range panel.data[p].Points(200) {
				if err := cw.Write([]string{p.String(), panel.name, fmtF(pt.X), fmtF(pt.Y)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeCDFCSV(w io.Writer, cdfs map[platform.Platform]*stats.ECDF, metric string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "metric", "x", "y"}); err != nil {
		return err
	}
	for _, p := range platform.All {
		for _, pt := range cdfs[p].Points(200) {
			if err := cw.Write([]string{p.String(), metric, fmtF(pt.X), fmtF(pt.Y)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSVWriter is implemented by figure results that can dump plot data.
type CSVWriter interface {
	WriteCSV(io.Writer) error
}

// FigureCSVs computes every figure and returns the CSV writers keyed by
// figure ID.
func FigureCSVs(ds Dataset) map[string]CSVWriter {
	out := make(map[string]CSVWriter, len(figureBuilders))
	for id, build := range figureBuilders {
		out[id] = build(ds)
	}
	return out
}

// Ensure every figure result satisfies CSVWriter.
var (
	_ CSVWriter = Fig1Result{}
	_ CSVWriter = Fig2Result{}
	_ CSVWriter = Fig3Result{}
	_ CSVWriter = Fig4Result{}
	_ CSVWriter = Fig5Result{}
	_ CSVWriter = Fig6Result{}
	_ CSVWriter = Fig7Result{}
	_ CSVWriter = Fig8Result{}
	_ CSVWriter = Fig9Result{}
)
