package report

import (
	"fmt"
	"sort"
	"strings"

	"msgscope/internal/analysis/toxicity"
	"msgscope/internal/platform"
)

// ToxicityResult is the future-work extension the paper sketches in
// Section 8: score the collected messages for toxic content (the paper
// proposes Google's Perspective API; this reproduction substitutes a
// lexicon scorer) and compare prevalence across platforms.
type ToxicityResult struct {
	MessagesScored map[platform.Platform]int
	ToxicShare     map[platform.Platform]float64
	MeanScore      map[platform.Platform]float64
	// TopGroups lists the most toxic groups (>= 20 scored messages).
	TopGroups []GroupToxicity
	// TextAvailable is false when the run collected no message bodies.
	TextAvailable bool
}

// GroupToxicity is one group's aggregate.
type GroupToxicity struct {
	Platform   platform.Platform
	GroupCode  string
	Messages   int
	ToxicShare float64
}

// Toxicity scores every collected text message.
func Toxicity(ds Dataset) ToxicityResult {
	res := ToxicityResult{
		MessagesScored: map[platform.Platform]int{},
		ToxicShare:     map[platform.Platform]float64{},
		MeanScore:      map[platform.Platform]float64{},
	}
	scorer := toxicity.NewScorer()
	type agg struct {
		n, toxic int
		sum      float64
	}
	perPlatform := map[platform.Platform]*agg{}
	perGroup := map[string]*agg{}
	groupPlatform := map[string]platform.Platform{}
	for _, p := range platform.All {
		perPlatform[p] = &agg{}
	}
	msgs := ds.Messages()
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		if m.Text == "" {
			continue
		}
		res.TextAvailable = true
		score := scorer.Score(m.Text)
		pa := perPlatform[m.Platform]
		pa.n++
		pa.sum += score
		gk := m.Platform.String() + "/" + m.GroupCode
		ga := perGroup[gk]
		if ga == nil {
			ga = &agg{}
			perGroup[gk] = ga
			groupPlatform[gk] = m.Platform
		}
		ga.n++
		ga.sum += score
		if scorer.Toxic(m.Text) {
			pa.toxic++
			ga.toxic++
		}
	}
	for _, p := range platform.All {
		a := perPlatform[p]
		res.MessagesScored[p] = a.n
		if a.n > 0 {
			res.ToxicShare[p] = float64(a.toxic) / float64(a.n)
			res.MeanScore[p] = a.sum / float64(a.n)
		}
	}
	for gk, a := range perGroup {
		if a.n < 20 {
			continue
		}
		_, code, _ := strings.Cut(gk, "/")
		res.TopGroups = append(res.TopGroups, GroupToxicity{
			Platform:   groupPlatform[gk],
			GroupCode:  code,
			Messages:   a.n,
			ToxicShare: float64(a.toxic) / float64(a.n),
		})
	}
	sort.Slice(res.TopGroups, func(i, j int) bool {
		if res.TopGroups[i].ToxicShare != res.TopGroups[j].ToxicShare {
			return res.TopGroups[i].ToxicShare > res.TopGroups[j].ToxicShare
		}
		return res.TopGroups[i].GroupCode < res.TopGroups[j].GroupCode
	})
	if len(res.TopGroups) > 10 {
		res.TopGroups = res.TopGroups[:10]
	}
	return res
}

// Render prints the per-platform toxicity summary.
func (t ToxicityResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Toxicity of collected messages (Section 8 future work, lexicon scorer)\n")
	if !t.TextAvailable {
		sb.WriteString("  (run with message-text collection enabled to score toxicity)\n")
		return sb.String()
	}
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | %6d scored | toxic=%.2f%% mean-score=%.4f\n",
			p, t.MessagesScored[p], t.ToxicShare[p]*100, t.MeanScore[p])
	}
	if len(t.TopGroups) > 0 {
		sb.WriteString("most toxic groups (>=20 messages):\n")
		for _, g := range t.TopGroups[:min(3, len(t.TopGroups))] {
			fmt.Fprintf(&sb, "  %v %s: %.1f%% of %d messages\n",
				g.Platform, g.GroupCode, g.ToxicShare*100, g.Messages)
		}
	}
	return sb.String()
}
