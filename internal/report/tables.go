package report

import (
	"fmt"
	"strings"

	"msgscope/internal/analysis/lda"
	"msgscope/internal/analysis/textproc"
	"msgscope/internal/platform"
	"msgscope/internal/privacy"
)

// --- Table 1 ---

// Table1 renders the static platform-characteristics table.
func Table1() string {
	chars := platform.Characteristics()
	var sb strings.Builder
	sb.WriteString("Table 1: platform characteristics\n")
	rows := []struct {
		name string
		get  func(platform.Characteristic) string
	}{
		{"Initial release", func(c platform.Characteristic) string { return c.InitialRelease }},
		{"User base", func(c platform.Characteristic) string { return c.UserBase }},
		{"Clients", func(c platform.Characteristic) string { return c.Clients }},
		{"Registration", func(c platform.Characteristic) string { return c.Registration }},
		{"Public chats", func(c platform.Characteristic) string { return c.PublicChatOptions }},
		{"Max members", func(c platform.Characteristic) string { return c.MaxMembers }},
		{"Collection API", func(c platform.Characteristic) string { return c.DataCollectionAPI }},
		{"Forwarding", func(c platform.Characteristic) string { return c.MessageForwarding }},
		{"E2E encryption", func(c platform.Characteristic) string { return c.EndToEndEncryption }},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s | WA: %-28s | TG: %-42s | DC: %s\n",
			r.name, r.get(chars[platform.WhatsApp]), r.get(chars[platform.Telegram]),
			r.get(chars[platform.Discord]))
	}
	return sb.String()
}

// --- Table 2 ---

// Table2Row is one platform's dataset overview.
type Table2Row struct {
	Platform     platform.Platform
	Tweets       int
	TweetUsers   int
	GroupURLs    int
	JoinedGroups int
	Messages     int
	MessageUsers int // distinct users observed in joined groups
}

// Table2Result is the dataset-overview table.
type Table2Result struct {
	Rows  []Table2Row
	Total Table2Row
}

// Table2 computes the dataset overview (the paper's Table 2).
func Table2(ds Dataset) Table2Result { return ds.aggregates().table2 }

// Render prints the table.
func (t Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 2: dataset overview\n")
	sb.WriteString("platform  | #tweets   #users   #groupURLs | #joined #messages #users\n")
	row := func(name string, r Table2Row) {
		fmt.Fprintf(&sb, "%-9s | %8d %8d %10d | %7d %9d %7d\n",
			name, r.Tweets, r.TweetUsers, r.GroupURLs, r.JoinedGroups, r.Messages, r.MessageUsers)
	}
	for _, r := range t.Rows {
		row(r.Platform.String(), r)
	}
	row("Total", t.Total)
	return sb.String()
}

// --- Table 3 ---

// Table3Result holds the per-platform LDA topics.
type Table3Result struct {
	Topics map[platform.Platform][]lda.Summary
	// EnglishTweets counts the inputs per platform.
	EnglishTweets map[platform.Platform]int
}

// Table3Config tunes the topic extraction.
type Table3Config struct {
	Topics     int // per platform (paper: 10)
	TopWords   int // terms shown per topic (paper: 10)
	Iterations int
	Seed       uint64
	// MaxTweets bounds the LDA input per platform (0 = all); Gibbs is
	// quadratic-ish in corpus size and the shape is stable on samples.
	MaxTweets int
	// Sampler picks the Gibbs kernel (dense, sparse, alias); the zero
	// value keeps lda's default routing, so existing goldens are pinned
	// to the exact-conditional chain.
	Sampler lda.Sampler
}

// Table3 extracts LDA topics from the English tweets of each platform.
func Table3(ds Dataset, cfg Table3Config) Table3Result {
	if cfg.Topics <= 0 {
		cfg.Topics = 10
	}
	if cfg.TopWords <= 0 {
		cfg.TopWords = 10
	}
	res := Table3Result{
		Topics:        map[platform.Platform][]lda.Summary{},
		EnglishTweets: map[platform.Platform]int{},
	}
	tok := textproc.NewTokenizer()
	for _, p := range platform.All {
		var texts []string
		tweets := ds.TweetsOf(p)
		for i, n := 0, tweets.Len(); i < n; i++ {
			t := tweets.At(i)
			if t.Lang != "en" {
				continue
			}
			if cfg.MaxTweets > 0 && len(texts) >= cfg.MaxTweets {
				break
			}
			texts = append(texts, t.Text)
		}
		res.EnglishTweets[p] = len(texts)
		if len(texts) == 0 {
			continue
		}
		corpus := textproc.NewCorpus(tok, texts)
		done := func() {}
		if ds.Prof != nil {
			done = ds.Prof.StartStage("lda")
		}
		model := lda.Fit(corpus, lda.Config{
			Topics:     cfg.Topics,
			Iterations: cfg.Iterations,
			Seed:       cfg.Seed,
			Sampler:    cfg.Sampler,
		})
		done()
		res.Topics[p] = model.Summaries(cfg.TopWords)
	}
	return res
}

// Render prints the topic table.
func (t Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: LDA topics from English tweets\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%s (%d English tweets):\n", p, t.EnglishTweets[p])
		for _, s := range t.Topics[p] {
			fmt.Fprintf(&sb, "  %s\n", s)
		}
	}
	return sb.String()
}

// --- Tables 4 and 5 ---

// Table4Result wraps the privacy exposure analysis.
type Table4Result struct {
	Report privacy.Report
}

// Table4 computes the PII-exposure statistics. It shares one PII analysis
// with Table 5 through the dataset's aggregation pass.
func Table4(ds Dataset) Table4Result {
	return Table4Result{Report: ds.aggregates().privacyReport}
}

// Render prints Table 4.
func (t Table4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4: exposed PII per platform\n")
	sb.WriteString("platform  | members creators | phones (share) | linked (share)\n")
	for _, e := range t.Report.Exposures {
		fmt.Fprintf(&sb, "%-9s | %7d %8d | %6d (%5.2f%%) | %6d (%5.2f%%)\n",
			e.Platform, e.MembersSeen, e.CreatorsSeen,
			e.PhonesExposed, e.PhoneShare*100, e.LinkedExposed, e.LinkedShare*100)
	}
	return sb.String()
}

// Table5Result is the Discord linked-account breakdown.
type Table5Result struct {
	Rows []privacy.LinkedCount
}

// Table5 computes the linked-account breakdown, sharing Table 4's PII
// analysis.
func Table5(ds Dataset) Table5Result {
	return Table5Result{Rows: ds.aggregates().privacyReport.Linked}
}

// Render prints Table 5.
func (t Table5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 5: Discord users' linked accounts\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-18s %6d (%5.2f%%)\n", r.Platform, r.Users, r.Share*100)
	}
	return sb.String()
}
