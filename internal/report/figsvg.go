package report

import (
	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
	"msgscope/internal/plot"
)

// The SVG emitters render each figure as a chart resembling the paper's
// own: CDF step plots for the distribution figures, grouped bars for the
// share figures, and per-day lines for discovery. `msgscope run -svg DIR`
// writes one .svg per figure.

func cdfSeries(cdfs map[platform.Platform]*stats.ECDF) []plot.Series {
	var out []plot.Series
	for _, p := range platform.All {
		e := cdfs[p]
		if e == nil || e.N() == 0 {
			continue
		}
		pts := e.Points(200)
		s := plot.Series{Name: p.String(), Points: make([]plot.Point, len(pts))}
		for i, pt := range pts {
			s.Points[i] = plot.Point{X: pt.X, Y: pt.Y}
		}
		out = append(out, s)
	}
	return out
}

// SVG renders Figure 1 (new URLs per day).
func (f Fig1Result) SVG() string {
	var series []plot.Series
	for _, p := range platform.All {
		s := plot.Series{Name: p.String()}
		for d := 0; d < f.New[p].Len(); d++ {
			s.Points = append(s.Points, plot.Point{X: float64(d), Y: f.New[p].At(d)})
		}
		series = append(series, s)
	}
	return plot.Chart{
		Title: "Figure 1c: new group URLs per day", XLabel: "study day", YLabel: "new URLs",
	}.LineSVG(series)
}

// SVG renders Figure 2 (CDF of tweets per URL, log x).
func (f Fig2Result) SVG() string {
	return plot.Chart{
		Title: "Figure 2: tweets per group URL", XLabel: "tweets (log)", YLabel: "CDF",
		LogX: true, Step: true,
	}.LineSVG(cdfSeries(f.CDF))
}

// SVG renders Figure 3 (feature shares as grouped bars).
func (f Fig3Result) SVG() string {
	names := []string{"hashtag", "mention", "retweet"}
	var groups []plot.BarGroup
	for _, r := range f.Rows {
		groups = append(groups, plot.BarGroup{
			Label:  r.Name,
			Values: []float64{r.Hashtag * 100, r.Mention * 100, r.Retweet * 100},
		})
	}
	return plot.Chart{
		Title: "Figure 3: tweet features", YLabel: "% of tweets",
	}.BarSVG(names, groups)
}

// SVG renders Figure 4 (top language shares per platform).
func (f Fig4Result) SVG() string {
	// The union of each platform's top-4 languages.
	langSet := map[string]bool{}
	for _, p := range platform.All {
		for i, kv := range f.Langs[p].Sorted() {
			if i >= 4 {
				break
			}
			langSet[kv.K] = true
		}
	}
	var langs []string
	for _, p := range platform.All {
		for _, kv := range f.Langs[p].Sorted() {
			if langSet[kv.K] {
				langs = append(langs, kv.K)
				delete(langSet, kv.K)
			}
		}
	}
	names := make([]string, 0, len(platform.All))
	for _, p := range platform.All {
		names = append(names, p.String())
	}
	var groups []plot.BarGroup
	for _, lang := range langs {
		g := plot.BarGroup{Label: lang}
		for _, p := range platform.All {
			g.Values = append(g.Values, f.Langs[p].Share(lang)*100)
		}
		groups = append(groups, g)
	}
	return plot.Chart{
		Title: "Figure 4: tweet languages", YLabel: "% of tweets",
	}.BarSVG(names, groups)
}

// SVG renders Figure 5 (staleness CDF, log x).
func (f Fig5Result) SVG() string {
	return plot.Chart{
		Title: "Figure 5: staleness", XLabel: "days since creation (log)", YLabel: "CDF",
		LogX: true, Step: true,
	}.LineSVG(cdfSeries(f.CDF))
}

// SVG renders Figure 6a (lifetime CDF of revoked URLs).
func (f Fig6Result) SVG() string {
	return plot.Chart{
		Title: "Figure 6a: accessibility of revoked URLs", XLabel: "days accessible", YLabel: "CDF",
		Step: true,
	}.LineSVG(cdfSeries(f.LifetimeDays))
}

// SVG renders Figure 7a (members CDF, log x).
func (f Fig7Result) SVG() string {
	return plot.Chart{
		Title: "Figure 7a: group members", XLabel: "members (log)", YLabel: "CDF",
		LogX: true, Step: true,
	}.LineSVG(cdfSeries(f.Members))
}

// SVG renders Figure 8 (message-type shares).
func (f Fig8Result) SVG() string {
	types := []string{"text", "image", "video", "audio", "sticker", "other"}
	names := make([]string, 0, len(platform.All))
	for _, p := range platform.All {
		names = append(names, p.String())
	}
	var groups []plot.BarGroup
	for _, typ := range types {
		g := plot.BarGroup{Label: typ}
		for _, p := range platform.All {
			g.Values = append(g.Values, f.Types[p].Share(typ)*100)
		}
		groups = append(groups, g)
	}
	return plot.Chart{
		Title: "Figure 8: message types", YLabel: "% of messages",
	}.BarSVG(names, groups)
}

// SVG renders Figure 9a (messages per group per day, log x).
func (f Fig9Result) SVG() string {
	return plot.Chart{
		Title: "Figure 9a: messages per group per day", XLabel: "messages/day (log)", YLabel: "CDF",
		LogX: true, Step: true,
	}.LineSVG(cdfSeries(f.PerGroupDay))
}

// SVGRenderer is implemented by figures that can draw themselves.
type SVGRenderer interface {
	SVG() string
}

// FigureSVGs computes every figure and returns the SVG renderers keyed by
// figure ID.
func FigureSVGs(ds Dataset) map[string]SVGRenderer {
	out := make(map[string]SVGRenderer, len(figureBuilders))
	for id, build := range figureBuilders {
		out[id] = build(ds)
	}
	return out
}
