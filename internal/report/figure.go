package report

// FigureResult is the full contract every reproduced figure satisfies: it
// renders a textual summary, dumps its plot data as CSV, and draws itself
// as an SVG chart. The engine layer caches one FigureResult per figure and
// serves all three outputs from it.
type FigureResult interface {
	Renderer
	CSVWriter
	SVGRenderer
}

// figureBuilders maps figure IDs to their compute functions. All outputs
// (text, CSV, SVG) derive from the one value a builder returns, so callers
// that need several outputs compute the figure once.
var figureBuilders = map[string]func(Dataset) FigureResult{
	"fig1": func(ds Dataset) FigureResult { return Fig1(ds) },
	"fig2": func(ds Dataset) FigureResult { return Fig2(ds) },
	"fig3": func(ds Dataset) FigureResult { return Fig3(ds) },
	"fig4": func(ds Dataset) FigureResult { return Fig4(ds) },
	"fig5": func(ds Dataset) FigureResult { return Fig5(ds) },
	"fig6": func(ds Dataset) FigureResult { return Fig6(ds) },
	"fig7": func(ds Dataset) FigureResult { return Fig7(ds) },
	"fig8": func(ds Dataset) FigureResult { return Fig8(ds) },
	"fig9": func(ds Dataset) FigureResult { return Fig9(ds) },
}

// figureIDs lists the figures in presentation order.
var figureIDs = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
}

// FigureIDs returns the figure identifiers in presentation order. The
// returned slice is caller-owned.
func FigureIDs() []string {
	return append([]string(nil), figureIDs...)
}

// HasFigure reports whether id names a reproduced figure.
func HasFigure(id string) bool {
	_, ok := figureBuilders[id]
	return ok
}

// Figure computes the named figure. The second return is false for unknown
// IDs.
func Figure(ds Dataset, id string) (FigureResult, bool) {
	build, ok := figureBuilders[id]
	if !ok {
		return nil, false
	}
	if ds.Prof != nil {
		defer ds.Prof.StartStage("figures")()
	}
	return build(ds), true
}
