package report

import (
	"fmt"
	"strings"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
)

// CreatorsResult reproduces Section 5's "Group Creators" analysis: how many
// distinct users created the observed groups, how many created more than
// one, and the most prolific creator. Creator identity comes from landing
// pages on WhatsApp (phone hash), the invite's inviter on Discord, and the
// member-visible creator on joined Telegram rooms.
type CreatorsResult struct {
	Creators    map[platform.Platform]int
	SingleShare map[platform.Platform]float64 // creators with exactly one group
	MultiShare  map[platform.Platform]float64 // creators with >= 2 groups
	MaxGroups   map[platform.Platform]int
	GroupsKnown map[platform.Platform]int // groups with a known creator
}

// Creators computes the creator statistics.
func Creators(ds Dataset) CreatorsResult {
	res := CreatorsResult{
		Creators:    map[platform.Platform]int{},
		SingleShare: map[platform.Platform]float64{},
		MultiShare:  map[platform.Platform]float64{},
		MaxGroups:   map[platform.Platform]int{},
		GroupsKnown: map[platform.Platform]int{},
	}
	for _, p := range platform.All {
		perCreator := map[string]int{}
		list := ds.GroupsOf(p)
		for i, n := 0, list.Len(); i < n; i++ {
			// Creator identity from the best available surface: the join
			// metadata, else the first observation exposing one.
			key := list.At(i).CreatorKey
			if key == "" {
				key = list.Obs(i).FirstCreatorKey()
			}
			if key == "" {
				continue
			}
			perCreator[key]++
			res.GroupsKnown[p]++
		}
		res.Creators[p] = len(perCreator)
		single, max := 0, 0
		for _, n := range perCreator {
			if n == 1 {
				single++
			}
			if n > max {
				max = n
			}
		}
		if len(perCreator) > 0 {
			res.SingleShare[p] = float64(single) / float64(len(perCreator))
			res.MultiShare[p] = 1 - res.SingleShare[p]
		}
		res.MaxGroups[p] = max
	}
	return res
}

// Render prints the creator summary.
func (c CreatorsResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Group creators (Section 5)\n")
	for _, p := range platform.All {
		if c.Creators[p] == 0 {
			fmt.Fprintf(&sb, "%-9s | (no creator data)\n", p)
			continue
		}
		fmt.Fprintf(&sb, "%-9s | %d creators for %d groups | single=%.1f%% multi=%.1f%% max=%d\n",
			p, c.Creators[p], c.GroupsKnown[p],
			c.SingleShare[p]*100, c.MultiShare[p]*100, c.MaxGroups[p])
	}
	return sb.String()
}

// CountriesResult reproduces Section 5's "Group Countries": the country
// mix of WhatsApp group creators, read off the landing-page phone numbers.
type CountriesResult struct {
	Countries *stats.Histogram // WhatsApp creator countries, by group
}

// Countries computes the creator-country histogram.
func Countries(ds Dataset) CountriesResult {
	h := stats.NewHistogram()
	list := ds.GroupsOf(platform.WhatsApp)
	for i, n := 0, list.Len(); i < n; i++ {
		// One vote per group: its first observed creator country.
		if c := list.Obs(i).FirstCreatorCountry(); c != "" {
			h.Inc(c)
		}
	}
	return CountriesResult{Countries: h}
}

// Render prints the top creator countries.
func (c CountriesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("WhatsApp group creator countries (Section 5)\n")
	for i, kv := range c.Countries.Sorted() {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&sb, "  %-6s %6d groups (%.1f%%)\n", kv.K, kv.V, c.Countries.Share(kv.K)*100)
	}
	if c.Countries.Total() == 0 {
		sb.WriteString("  (no creator countries observed)\n")
	}
	return sb.String()
}
