package report

import (
	"strings"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/store"
)

var start = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

// buildDataset constructs a small store with exactly known answers.
func buildDataset() Dataset {
	st := store.New()
	at := func(day int, h int) time.Time { return start.Add(time.Duration(day*24+h) * time.Hour) }

	// WhatsApp: group "wa1" shared twice (days 0, 1), group "wa2" once.
	st.AddTweet(store.TweetRecord{ID: 1, UserID: "u1", CreatedAt: at(0, 10), Lang: "en",
		Hashtags: 1, Mentions: 2, Retweet: false, Platform: platform.WhatsApp, GroupCode: "wa1",
		Text: "earn money from home https://chat.whatsapp.com/wa1", Source: store.SourceSearch})
	st.AddTweet(store.TweetRecord{ID: 2, UserID: "u2", CreatedAt: at(1, 11), Lang: "es",
		Platform: platform.WhatsApp, GroupCode: "wa1", Source: store.SourceStream})
	st.AddTweet(store.TweetRecord{ID: 3, UserID: "u1", CreatedAt: at(1, 12), Lang: "en",
		Retweet: true, Platform: platform.WhatsApp, GroupCode: "wa2",
		Text: "bitcoin crypto trading https://chat.whatsapp.com/wa2", Source: store.SourceSearch})

	// Telegram: one group, one tweet.
	st.AddTweet(store.TweetRecord{ID: 4, UserID: "u3", CreatedAt: at(0, 5), Lang: "ar",
		Mentions: 1, Platform: platform.Telegram, GroupCode: "tg1", Source: store.SourceSearch})

	// Discord: one group, one tweet.
	st.AddTweet(store.TweetRecord{ID: 5, UserID: "u4", CreatedAt: at(2, 8), Lang: "ja",
		Hashtags: 2, Platform: platform.Discord, GroupCode: "dc1", Source: store.SourceStream})

	// Control tweets.
	st.AddControl(store.ControlRecord{ID: 9, UserID: "c1", CreatedAt: at(0, 1), Lang: "en", Hashtags: 1})
	st.AddControl(store.ControlRecord{ID: 10, UserID: "c2", CreatedAt: at(0, 2), Lang: "pt", Retweet: true})

	// Observations: wa1 alive then revoked; wa2 alive throughout with
	// growth; tg1 alive with online counts; dc1 dead at first probe.
	st.AddObservation(platform.WhatsApp, "wa1", store.Observation{At: at(0, 23), Alive: true, Title: "T1", Members: 50})
	st.AddObservation(platform.WhatsApp, "wa1", store.Observation{At: at(1, 23), Alive: true, Title: "T1", Members: 60})
	st.AddObservation(platform.WhatsApp, "wa1", store.Observation{At: at(2, 23), Alive: false})
	st.AddObservation(platform.WhatsApp, "wa2", store.Observation{At: at(1, 23), Alive: true, Title: "T2", Members: 100})
	st.AddObservation(platform.WhatsApp, "wa2", store.Observation{At: at(3, 23), Alive: true, Title: "T2", Members: 90})
	st.AddObservation(platform.Telegram, "tg1", store.Observation{At: at(0, 23), Alive: true, Title: "T3", Members: 1000, Online: 100, IsChannel: true})
	st.AddObservation(platform.Discord, "dc1", store.Observation{At: at(2, 23), Alive: false})

	// Join data: wa1 joined day 1 (created day 0), tg1 joined (created
	// long ago), dc1 has a creation date from its snowflake.
	st.MarkJoined(platform.WhatsApp, "wa1", func(g *store.GroupRecord) {
		g.JoinedAt = at(1, 0)
		g.CreatedAt = at(0, 9) // one hour before first share
		g.MemberCount = 50
		g.Channels = 1
	})
	st.MarkJoined(platform.Telegram, "tg1", func(g *store.GroupRecord) {
		g.JoinedAt = at(1, 0)
		g.CreatedAt = start.Add(-400 * 24 * time.Hour) // >1yr stale
		g.MemberCount = 1000
		g.IsChannel = true
		g.Channels = 1
	})

	// Messages: wa1 has 4 messages by 2 users (3 text, 1 sticker);
	// tg1 has 2 by 1 user.
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 1, SentAt: at(1, 2), Type: platform.Text})
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 1, SentAt: at(1, 3), Type: platform.Text})
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 2, SentAt: at(1, 4), Type: platform.Sticker})
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 2, SentAt: at(2, 4), Type: platform.Text})
	st.AddMessage(store.MessageRecord{Platform: platform.Telegram, GroupCode: "tg1", AuthorKey: 5, SentAt: at(1, 1), Type: platform.Text})
	st.AddMessage(store.MessageRecord{Platform: platform.Telegram, GroupCode: "tg1", AuthorKey: 5, SentAt: at(1, 2), Type: platform.Service})

	// Users.
	st.UpsertUser(store.UserRecord{Platform: platform.WhatsApp, Key: 1, PhoneHash: "h1", Country: "BR"})
	st.UpsertUser(store.UserRecord{Platform: platform.WhatsApp, Key: 2, PhoneHash: "h2", Country: "NG"})
	st.UpsertUser(store.UserRecord{Platform: platform.WhatsApp, Key: 99, PhoneHash: "h3", Country: "BR", Creator: true})
	st.UpsertUser(store.UserRecord{Platform: platform.Telegram, Key: 5})
	st.UpsertUser(store.UserRecord{Platform: platform.Discord, Key: 7, Linked: []string{"Twitch"}})

	return Dataset{Store: st, Start: start, Days: 5}
}

func TestTable2Exact(t *testing.T) {
	res := Table2(buildDataset())
	wa := res.Rows[0]
	if wa.Tweets != 3 || wa.TweetUsers != 2 || wa.GroupURLs != 2 || wa.JoinedGroups != 1 ||
		wa.Messages != 4 || wa.MessageUsers != 2 {
		t.Fatalf("WhatsApp row wrong: %+v", wa)
	}
	if res.Total.Tweets != 5 || res.Total.GroupURLs != 4 {
		t.Fatalf("totals wrong: %+v", res.Total)
	}
	if !strings.Contains(res.Render(), "WhatsApp") {
		t.Fatal("render missing platform name")
	}
}

func TestFig1Exact(t *testing.T) {
	res := Fig1(buildDataset())
	if res.All[platform.WhatsApp].At(0) != 1 || res.All[platform.WhatsApp].At(1) != 2 {
		t.Fatalf("WhatsApp all/day wrong: %v", res.All[platform.WhatsApp].Values())
	}
	if res.Unique[platform.WhatsApp].At(1) != 2 {
		t.Fatalf("unique day1 wrong")
	}
	if res.New[platform.WhatsApp].At(0) != 1 || res.New[platform.WhatsApp].At(1) != 1 {
		t.Fatalf("new/day wrong: %v", res.New[platform.WhatsApp].Values())
	}
	if res.New[platform.WhatsApp].Total() != 2 {
		t.Fatal("new total wrong")
	}
}

func TestFig2Exact(t *testing.T) {
	res := Fig2(buildDataset())
	if res.SharedOnce[platform.WhatsApp] != 0.5 {
		t.Fatalf("WhatsApp shared-once %v, want 0.5", res.SharedOnce[platform.WhatsApp])
	}
	if res.CDF[platform.WhatsApp].Max() != 2 {
		t.Fatal("max share count wrong")
	}
}

func TestFig3Exact(t *testing.T) {
	res := Fig3(buildDataset())
	wa := res.Rows[0]
	if wa.Hashtag != 1.0/3 || wa.Mention != 1.0/3 || wa.Retweet != 1.0/3 {
		t.Fatalf("WhatsApp features wrong: %+v", wa)
	}
	ctl := res.Rows[3]
	if ctl.Name != "Control" || ctl.Tweets != 2 || ctl.Hashtag != 0.5 || ctl.Retweet != 0.5 {
		t.Fatalf("control features wrong: %+v", ctl)
	}
}

func TestFig4Exact(t *testing.T) {
	res := Fig4(buildDataset())
	if res.Langs[platform.WhatsApp].Share("en") != 2.0/3 {
		t.Fatal("WhatsApp en share wrong")
	}
	if res.Langs[platform.Discord].Share("ja") != 1.0 {
		t.Fatal("Discord ja share wrong")
	}
}

func TestFig5Exact(t *testing.T) {
	res := Fig5(buildDataset())
	// wa1: created 1h before first share -> same-day. wa2: no creation
	// date (not joined) -> excluded.
	if res.CDF[platform.WhatsApp].N() != 1 || res.SameDay[platform.WhatsApp] != 1.0 {
		t.Fatalf("WhatsApp staleness wrong: n=%d same=%v",
			res.CDF[platform.WhatsApp].N(), res.SameDay[platform.WhatsApp])
	}
	// tg1: 400 days stale.
	if res.OverYr[platform.Telegram] != 1.0 {
		t.Fatal("Telegram >1yr wrong")
	}
}

func TestFig6Exact(t *testing.T) {
	res := Fig6(buildDataset())
	// WhatsApp: wa1 revoked (1 of 2 = 50%), wa2 alive. wa1 lived from
	// first-seen (day0 10:00) to last alive probe (day1 23:00).
	if res.RevokedShare[platform.WhatsApp] != 0.5 {
		t.Fatalf("WhatsApp revoked share %v", res.RevokedShare[platform.WhatsApp])
	}
	if res.DeadAtFirst[platform.WhatsApp] != 0 {
		t.Fatal("WhatsApp dead-at-first should be 0")
	}
	// Discord: dc1 dead at first probe.
	if res.DeadAtFirst[platform.Discord] != 1.0 || res.RevokedShare[platform.Discord] != 1.0 {
		t.Fatalf("Discord revocation wrong: %v %v",
			res.DeadAtFirst[platform.Discord], res.RevokedShare[platform.Discord])
	}
	if res.LifetimeDays[platform.Discord].Max() != 0 {
		t.Fatal("dead-at-first lifetime should be 0")
	}
	wantLife := at(1, 23).Sub(at(0, 10)).Hours() / 24
	if got := res.LifetimeDays[platform.WhatsApp].Max(); got != wantLife {
		t.Fatalf("wa1 lifetime %v, want %v", got, wantLife)
	}
}

func at(day, h int) time.Time { return start.Add(time.Duration(day*24+h) * time.Hour) }

func TestFig7Exact(t *testing.T) {
	res := Fig7(buildDataset())
	// Members at first alive obs: wa1=50, wa2=100.
	if res.Members[platform.WhatsApp].N() != 2 || res.Members[platform.WhatsApp].Max() != 100 {
		t.Fatalf("members wrong: %+v", res.Members[platform.WhatsApp])
	}
	// Growth: wa1 +10, wa2 -10 -> 50% grew, 50% shrank.
	if res.Grew[platform.WhatsApp] != 0.5 || res.Shrank[platform.WhatsApp] != 0.5 {
		t.Fatalf("growth wrong: grew=%v shrank=%v",
			res.Grew[platform.WhatsApp], res.Shrank[platform.WhatsApp])
	}
	// Online fraction: tg1 100/1000.
	if res.OnlineFrac[platform.Telegram].N() != 1 || res.OnlineFrac[platform.Telegram].Max() != 0.1 {
		t.Fatal("online fraction wrong")
	}
}

func TestFig8Exact(t *testing.T) {
	res := Fig8(buildDataset())
	if got := res.Types[platform.WhatsApp].Share("text"); got != 0.75 {
		t.Fatalf("WhatsApp text share %v, want 0.75", got)
	}
	if got := res.Types[platform.WhatsApp].Share("sticker"); got != 0.25 {
		t.Fatalf("WhatsApp sticker share %v", got)
	}
	if got := res.Types[platform.Telegram].Share("other"); got != 0.5 {
		t.Fatalf("Telegram service share %v, want 0.5", got)
	}
}

func TestFig9Exact(t *testing.T) {
	ds := buildDataset()
	res := Fig9(ds)
	// wa1: 4 messages over (end-join) = 4 days -> 1 msg/day.
	if res.PerGroupDay[platform.WhatsApp].N() != 1 {
		t.Fatalf("per-group-day n=%d", res.PerGroupDay[platform.WhatsApp].N())
	}
	if got := res.PerGroupDay[platform.WhatsApp].Max(); got != 1.0 {
		t.Fatalf("wa1 msgs/day %v, want 1.0", got)
	}
	// Users: wa has 2 posters with 2 msgs each.
	if res.ActiveUsers[platform.WhatsApp] != 2 {
		t.Fatalf("active users %d", res.ActiveUsers[platform.WhatsApp])
	}
	if res.UpTo10Share[platform.WhatsApp] != 1.0 {
		t.Fatal("<=10-messages share wrong")
	}
}

func TestTables4And5(t *testing.T) {
	ds := buildDataset()
	t4 := Table4(ds)
	if !strings.Contains(t4.Render(), "WhatsApp") {
		t.Fatal("table4 render broken")
	}
	t5 := Table5(ds)
	if len(t5.Rows) != 1 || t5.Rows[0].Platform != "Twitch" {
		t.Fatalf("table5 wrong: %+v", t5.Rows)
	}
}

func TestTable3OnSyntheticTweets(t *testing.T) {
	ds := buildDataset()
	res := Table3(ds, Table3Config{Topics: 2, Iterations: 30, Seed: 1})
	if res.EnglishTweets[platform.WhatsApp] != 2 {
		t.Fatalf("English tweet count %d, want 2", res.EnglishTweets[platform.WhatsApp])
	}
	if len(res.Topics[platform.WhatsApp]) != 2 {
		t.Fatalf("topic count %d", len(res.Topics[platform.WhatsApp]))
	}
	if !strings.Contains(res.Render(), "LDA topics") {
		t.Fatal("render broken")
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1()
	for _, want := range []string{"January 2009", "2 Billion", "E2E encryption"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q", want)
		}
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	ds := buildDataset()
	for _, r := range []Renderer{
		Table2(ds), Table4(ds), Table5(ds),
		Fig1(ds), Fig2(ds), Fig3(ds), Fig4(ds), Fig5(ds),
		Fig6(ds), Fig7(ds), Fig8(ds), Fig9(ds),
	} {
		if strings.TrimSpace(r.Render()) == "" {
			t.Fatalf("%T renders empty", r)
		}
	}
}

func TestFigureCSVsWellFormed(t *testing.T) {
	ds := buildDataset()
	csvs := FigureCSVs(ds)
	if len(csvs) != 9 {
		t.Fatalf("%d figure CSVs, want 9", len(csvs))
	}
	for id, w := range csvs {
		var buf strings.Builder
		if err := w.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no data rows", id)
		}
		cols := len(strings.Split(lines[0], ","))
		for i, row := range lines {
			if got := len(strings.Split(row, ",")); got != cols {
				t.Fatalf("%s row %d: %d columns, header has %d", id, i, got, cols)
			}
		}
	}
}

func TestFig1CSVExactValues(t *testing.T) {
	var buf strings.Builder
	if err := Fig1(buildDataset()).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "WhatsApp,1,2,2,1") {
		t.Fatalf("fig1 CSV missing expected WhatsApp day-1 row:\n%s", out)
	}
}

func TestFigureSVGsWellFormed(t *testing.T) {
	ds := buildDataset()
	svgs := FigureSVGs(ds)
	if len(svgs) != 9 {
		t.Fatalf("%d figure SVGs, want 9", len(svgs))
	}
	for id, r := range svgs {
		svg := r.SVG()
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s: malformed SVG", id)
		}
		if !strings.Contains(svg, "Figure") {
			t.Fatalf("%s: missing title", id)
		}
	}
}
