package report

import (
	"fmt"
	"strings"

	"msgscope/internal/platform"
)

// CrossSourceResult quantifies the future-work second discovery source:
// how many groups each source found, the overlap, and the gain from adding
// the secondary network to a Twitter-only study.
type CrossSourceResult struct {
	TwitterOnly map[platform.Platform]int
	SocialOnly  map[platform.Platform]int
	Both        map[platform.Platform]int
	// Gain is the fraction of all discovered groups a Twitter-only study
	// would have missed.
	Gain map[platform.Platform]float64
	// Enabled is false when the run had no secondary source configured.
	Enabled bool
}

// CrossSource computes the discovery-source breakdown.
func CrossSource(ds Dataset) CrossSourceResult {
	res := CrossSourceResult{
		TwitterOnly: map[platform.Platform]int{},
		SocialOnly:  map[platform.Platform]int{},
		Both:        map[platform.Platform]int{},
		Gain:        map[platform.Platform]float64{},
	}
	list := ds.Groups()
	for i, n := 0, list.Len(); i < n; i++ {
		g := list.At(i)
		switch {
		case g.SeenTwitter && g.SeenSocial:
			res.Both[g.Platform]++
			res.Enabled = true
		case g.SeenSocial:
			res.SocialOnly[g.Platform]++
			res.Enabled = true
		case g.SeenTwitter:
			res.TwitterOnly[g.Platform]++
		}
	}
	for _, p := range platform.All {
		total := res.TwitterOnly[p] + res.SocialOnly[p] + res.Both[p]
		if total > 0 {
			res.Gain[p] = float64(res.SocialOnly[p]) / float64(total)
		}
	}
	return res
}

// Render prints the breakdown.
func (c CrossSourceResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Cross-source discovery (Section 8 future work)\n")
	if !c.Enabled {
		sb.WriteString("  (run with the secondary discovery source enabled to compare sources)\n")
		return sb.String()
	}
	sb.WriteString("platform  | twitter-only social-only both | gain over Twitter-only\n")
	for _, p := range platform.All {
		fmt.Fprintf(&sb, "%-9s | %12d %11d %4d | +%.1f%%\n",
			p, c.TwitterOnly[p], c.SocialOnly[p], c.Both[p], c.Gain[p]*100)
	}
	return sb.String()
}
