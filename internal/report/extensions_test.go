package report

import (
	"strings"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/store"
)

func extDataset() Dataset {
	st := store.New()
	at := start.Add(6 * time.Hour)
	// Twitter-discovered group with an observed creator.
	st.AddTweet(store.TweetRecord{ID: 1, UserID: "u", CreatedAt: at, Lang: "en",
		Platform: platform.WhatsApp, GroupCode: "wa1", Source: store.SourceSearch})
	st.AddObservation(platform.WhatsApp, "wa1", store.Observation{
		At: at.Add(12 * time.Hour), Alive: true, Title: "T", Members: 5,
		CreatorPhoneH: "hash1", CreatorKey: "hash1", CreatorCountry: "BR",
	})
	// Second group by the same creator.
	st.AddTweet(store.TweetRecord{ID: 2, UserID: "u", CreatedAt: at, Lang: "en",
		Platform: platform.WhatsApp, GroupCode: "wa2", Source: store.SourceSearch})
	st.AddObservation(platform.WhatsApp, "wa2", store.Observation{
		At: at.Add(12 * time.Hour), Alive: true, Title: "T2", Members: 9,
		CreatorPhoneH: "hash1", CreatorKey: "hash1", CreatorCountry: "BR",
	})
	// Different creator, different country.
	st.AddTweet(store.TweetRecord{ID: 3, UserID: "u", CreatedAt: at, Lang: "en",
		Platform: platform.WhatsApp, GroupCode: "wa3", Source: store.SourceSearch})
	st.AddObservation(platform.WhatsApp, "wa3", store.Observation{
		At: at.Add(12 * time.Hour), Alive: true, Title: "T3", Members: 2,
		CreatorPhoneH: "hash2", CreatorKey: "hash2", CreatorCountry: "NG",
	})
	// Social-only discovery.
	st.AddPost(store.PostRecord{ID: 10, Author: "s", CreatedAt: at,
		Platform: platform.Discord, GroupCode: "dc1", Text: "x https://discord.gg/dc1"})
	// Seen by both sources.
	st.AddTweet(store.TweetRecord{ID: 4, UserID: "u", CreatedAt: at, Lang: "en",
		Platform: platform.Discord, GroupCode: "dc2", Source: store.SourceStream})
	st.AddPost(store.PostRecord{ID: 11, Author: "s", CreatedAt: at,
		Platform: platform.Discord, GroupCode: "dc2", Text: "y https://discord.gg/dc2"})
	// Messages with text for toxicity.
	st.AddMessage(store.MessageRecord{Platform: platform.Telegram, GroupCode: "tg1",
		AuthorKey: 1, SentAt: at, Type: platform.Text, Text: "fuck pussy cum nude"})
	st.AddMessage(store.MessageRecord{Platform: platform.Telegram, GroupCode: "tg1",
		AuthorKey: 1, SentAt: at, Type: platform.Text, Text: "hello there friends"})
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1",
		AuthorKey: 2, SentAt: at, Type: platform.Text, Text: "good morning group"})
	return Dataset{Store: st, Start: start, Days: 3}
}

func TestCreatorsExact(t *testing.T) {
	res := Creators(extDataset())
	if res.Creators[platform.WhatsApp] != 2 {
		t.Fatalf("creators=%d, want 2", res.Creators[platform.WhatsApp])
	}
	if res.GroupsKnown[platform.WhatsApp] != 3 {
		t.Fatalf("groups known=%d, want 3", res.GroupsKnown[platform.WhatsApp])
	}
	if res.SingleShare[platform.WhatsApp] != 0.5 || res.MaxGroups[platform.WhatsApp] != 2 {
		t.Fatalf("single=%v max=%d", res.SingleShare[platform.WhatsApp], res.MaxGroups[platform.WhatsApp])
	}
	if !strings.Contains(res.Render(), "2 creators for 3 groups") {
		t.Fatalf("render wrong:\n%s", res.Render())
	}
}

func TestCountriesExact(t *testing.T) {
	res := Countries(extDataset())
	if res.Countries.Count("BR") != 2 || res.Countries.Count("NG") != 1 {
		t.Fatalf("countries wrong: %v", res.Countries.Sorted())
	}
}

func TestToxicityExact(t *testing.T) {
	res := Toxicity(extDataset())
	if !res.TextAvailable {
		t.Fatal("text not seen")
	}
	if res.MessagesScored[platform.Telegram] != 2 {
		t.Fatalf("scored=%d", res.MessagesScored[platform.Telegram])
	}
	if res.ToxicShare[platform.Telegram] != 0.5 {
		t.Fatalf("TG toxic share=%v, want 0.5", res.ToxicShare[platform.Telegram])
	}
	if res.ToxicShare[platform.WhatsApp] != 0 {
		t.Fatalf("WA toxic share=%v, want 0", res.ToxicShare[platform.WhatsApp])
	}
}

func TestToxicityWithoutText(t *testing.T) {
	st := store.New()
	st.AddMessage(store.MessageRecord{Platform: platform.WhatsApp, GroupCode: "g",
		AuthorKey: 1, SentAt: start, Type: platform.Text})
	res := Toxicity(Dataset{Store: st, Start: start, Days: 1})
	if res.TextAvailable {
		t.Fatal("claimed text available without bodies")
	}
	if !strings.Contains(res.Render(), "message-text collection") {
		t.Fatal("render should explain missing text")
	}
}

func TestCrossSourceExact(t *testing.T) {
	res := CrossSource(extDataset())
	if !res.Enabled {
		t.Fatal("not enabled despite posts")
	}
	if res.TwitterOnly[platform.WhatsApp] != 3 {
		t.Fatalf("WA twitter-only=%d", res.TwitterOnly[platform.WhatsApp])
	}
	if res.SocialOnly[platform.Discord] != 1 || res.Both[platform.Discord] != 1 {
		t.Fatalf("DC split wrong: social=%d both=%d",
			res.SocialOnly[platform.Discord], res.Both[platform.Discord])
	}
	if res.Gain[platform.Discord] != 0.5 {
		t.Fatalf("DC gain=%v, want 0.5", res.Gain[platform.Discord])
	}
}

func TestCrossSourceDisabled(t *testing.T) {
	res := CrossSource(buildDataset())
	if res.Enabled {
		t.Fatal("twitter-only dataset reported as cross-source")
	}
	if !strings.Contains(res.Render(), "secondary discovery source") {
		t.Fatal("render should explain the missing source")
	}
}
