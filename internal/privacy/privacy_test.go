package privacy

import (
	"testing"

	"msgscope/internal/platform"
	"msgscope/internal/store"
)

func buildStore() *store.Store {
	st := store.New()
	// WhatsApp: 3 members with phones, 2 creators-only with phones.
	for i := uint64(1); i <= 3; i++ {
		st.UpsertUser(store.UserRecord{Platform: platform.WhatsApp, Key: i, PhoneHash: "h", Country: "BR"})
	}
	for i := uint64(10); i <= 11; i++ {
		st.UpsertUser(store.UserRecord{Platform: platform.WhatsApp, Key: i, PhoneHash: "h", Country: "NG", Creator: true})
	}
	// Telegram: 4 members, one opted into phone visibility.
	st.UpsertUser(store.UserRecord{Platform: platform.Telegram, Key: 1, PhoneHash: "h"})
	for i := uint64(2); i <= 4; i++ {
		st.UpsertUser(store.UserRecord{Platform: platform.Telegram, Key: i})
	}
	// Discord: 5 members; 2 with linked accounts.
	st.UpsertUser(store.UserRecord{Platform: platform.Discord, Key: 1, Linked: []string{"Twitch", "Steam"}})
	st.UpsertUser(store.UserRecord{Platform: platform.Discord, Key: 2, Linked: []string{"Twitch"}})
	for i := uint64(3); i <= 5; i++ {
		st.UpsertUser(store.UserRecord{Platform: platform.Discord, Key: i})
	}
	return st
}

func TestAnalyzeExposures(t *testing.T) {
	rep := Analyze(buildStore())
	if len(rep.Exposures) != 3 {
		t.Fatalf("%d exposures", len(rep.Exposures))
	}
	wa := rep.Exposures[0]
	if wa.Platform != platform.WhatsApp || wa.MembersSeen != 3 || wa.CreatorsSeen != 2 {
		t.Fatalf("WhatsApp exposure wrong: %+v", wa)
	}
	if wa.PhonesExposed != 5 || wa.PhoneShare != 1.0 {
		t.Fatalf("WhatsApp phones wrong: %+v", wa)
	}
	tg := rep.Exposures[1]
	if tg.PhonesExposed != 1 || tg.PhoneShare != 0.25 {
		t.Fatalf("Telegram phones wrong: %+v", tg)
	}
	dc := rep.Exposures[2]
	if dc.PhonesExposed != 0 {
		t.Fatalf("Discord should expose no phones: %+v", dc)
	}
	if dc.LinkedExposed != 2 || dc.LinkedShare != 0.4 {
		t.Fatalf("Discord linked wrong: %+v", dc)
	}
}

func TestAnalyzeLinkedBreakdown(t *testing.T) {
	rep := Analyze(buildStore())
	if len(rep.Linked) != 2 {
		t.Fatalf("%d linked rows", len(rep.Linked))
	}
	if rep.Linked[0].Platform != "Twitch" || rep.Linked[0].Users != 2 {
		t.Fatalf("top linked wrong: %+v", rep.Linked[0])
	}
	if rep.Linked[0].Share != 0.4 {
		t.Fatalf("Twitch share %v, want 0.4 of 5 Discord users", rep.Linked[0].Share)
	}
	if rep.Linked[1].Platform != "Steam" || rep.Linked[1].Users != 1 {
		t.Fatalf("second linked wrong: %+v", rep.Linked[1])
	}
}

func TestAnalyzeEmptyStore(t *testing.T) {
	rep := Analyze(store.New())
	for _, e := range rep.Exposures {
		if e.PhonesExposed != 0 || e.PhoneShare != 0 {
			t.Fatalf("empty store exposure nonzero: %+v", e)
		}
	}
	if len(rep.Linked) != 0 {
		t.Fatal("empty store has linked rows")
	}
}
