// Package privacy computes the PII-exposure analyses of Section 6: how
// many observed users had phone numbers exposed (WhatsApp: all members and
// even non-member-visible group creators; Telegram: only opt-in users) and
// how many Discord users exposed linked accounts on other platforms
// (Tables 4 and 5).
package privacy

import (
	"sort"

	"msgscope/internal/platform"
	"msgscope/internal/store"
)

// Exposure is one platform's row of Table 4.
type Exposure struct {
	Platform      platform.Platform
	MembersSeen   int // users observed in joined groups
	CreatorsSeen  int // users observed only as group creators (WhatsApp)
	PhonesExposed int
	PhoneShare    float64 // of all users observed
	LinkedExposed int     // users with >=1 linked account (Discord)
	LinkedShare   float64
}

// LinkedCount is one row of Table 5.
type LinkedCount struct {
	Platform string // the linked platform (Twitch, Steam, ...)
	Users    int
	Share    float64 // of all Discord users observed
}

// Report is the full privacy analysis.
type Report struct {
	Exposures []Exposure    // one per messaging platform
	Linked    []LinkedCount // Table 5, sorted by descending share
}

// Analyze computes the privacy report from the collected dataset.
func Analyze(st *store.Store) Report {
	return AnalyzeUsers(st.Users())
}

// AnalyzeUsers computes the privacy report from an already-materialized
// user list (e.g. a frozen store snapshot), avoiding a fresh store scan.
func AnalyzeUsers(users []*store.UserRecord) Report {
	var rep Report
	for _, p := range platform.All {
		e := Exposure{Platform: p}
		var total int
		for _, u := range users {
			if u.Platform != p {
				continue
			}
			total++
			if u.Creator {
				e.CreatorsSeen++
			} else {
				e.MembersSeen++
			}
			if u.PhoneHash != "" {
				e.PhonesExposed++
			}
			if len(u.Linked) > 0 {
				e.LinkedExposed++
			}
		}
		if total > 0 {
			e.PhoneShare = float64(e.PhonesExposed) / float64(total)
			e.LinkedShare = float64(e.LinkedExposed) / float64(total)
		}
		rep.Exposures = append(rep.Exposures, e)
	}

	// Table 5: linked-platform breakdown over observed Discord users.
	var dcTotal int
	counts := map[string]int{}
	for _, u := range users {
		if u.Platform != platform.Discord {
			continue
		}
		dcTotal++
		for _, l := range u.Linked {
			counts[l]++
		}
	}
	for name, n := range counts {
		lc := LinkedCount{Platform: name, Users: n}
		if dcTotal > 0 {
			lc.Share = float64(n) / float64(dcTotal)
		}
		rep.Linked = append(rep.Linked, lc)
	}
	sort.Slice(rep.Linked, func(i, j int) bool {
		if rep.Linked[i].Users != rep.Linked[j].Users {
			return rep.Linked[i].Users > rep.Linked[j].Users
		}
		return rep.Linked[i].Platform < rep.Linked[j].Platform
	})
	return rep
}
