package monitor

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/store"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	st    *store.Store
	mon   *Monitor
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(12, 0.004))
	clock := simclock.New(w.Cfg.Start)
	waSrv := httptest.NewServer(whatsapp.NewService(w, clock).Handler())
	tgSrv := httptest.NewServer(telegram.NewService(w, clock, telegram.DefaultServiceConfig()).Handler())
	dcSrv := httptest.NewServer(discord.NewService(w, clock, discord.DefaultServiceConfig()).Handler())
	t.Cleanup(waSrv.Close)
	t.Cleanup(tgSrv.Close)
	t.Cleanup(dcSrv.Close)
	st := store.New()
	mon := New(st,
		whatsapp.NewClient(waSrv.URL, "mon"),
		telegram.NewClient(tgSrv.URL, "mon"),
		discord.NewClient(dcSrv.URL, "mon"))
	return &fixture{world: w, clock: clock, st: st, mon: mon}
}

// discoverDay registers all groups first shared on the given day, as the
// collector would have.
func (f *fixture) discoverDay(day int) {
	for _, p := range platform.All {
		for _, g := range f.world.Groups[p] {
			d := int(g.FirstShareAt.Sub(f.world.Cfg.Start) / (24 * time.Hour))
			if d == day {
				f.st.AddTweet(store.TweetRecord{
					ID:        g.GuildID + uint64(day)<<40 + uint64(len(g.Code)) + hash(g.Code),
					CreatedAt: g.FirstShareAt, Platform: p, GroupCode: g.Code,
					Source: store.SourceStream,
				})
			}
		}
	}
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func TestDailySweepRecordsObservations(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for day := 0; day < 3; day++ {
		f.discoverDay(day)
		f.clock.Advance(24 * time.Hour)
		if err := f.mon.DailySweep(ctx, f.clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	var withObs, total int
	list := f.st.Groups()
	for gi := 0; gi < list.Len(); gi++ {
		g := list.Record(gi)
		total++
		if len(g.Observations) == 0 {
			t.Fatalf("group %v/%s has no observations", g.Platform, g.Code)
		}
		withObs++
		// Observation contents per platform.
		for _, o := range g.Observations {
			if !o.Alive {
				continue
			}
			if o.Title == "" {
				t.Fatalf("alive observation without title: %v/%s", g.Platform, g.Code)
			}
			if o.Members <= 0 {
				t.Fatalf("alive observation without members: %v/%s", g.Platform, g.Code)
			}
			switch g.Platform {
			case platform.WhatsApp:
				if o.CreatorPhoneH == "" || o.CreatorCountry == "" {
					t.Fatalf("WhatsApp observation missing creator PII: %+v", o)
				}
			case platform.Discord:
				if o.CreatedAt.IsZero() {
					t.Fatalf("Discord observation missing snowflake creation date")
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no groups discovered")
	}
	stats := f.mon.Stats()
	if stats.Probes == 0 || stats.AliveProbes == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}

func TestProbingStopsAfterRevocation(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for day := 0; day < 6; day++ {
		f.discoverDay(day)
		f.clock.Advance(24 * time.Hour)
		if err := f.mon.DailySweep(ctx, f.clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	sawDead := false
	list := f.st.Groups()
	for gi := 0; gi < list.Len(); gi++ {
		g := list.Record(gi)
		deadAt := -1
		for i, o := range g.Observations {
			if !o.Alive {
				deadAt = i
				break
			}
		}
		if deadAt >= 0 {
			sawDead = true
			if deadAt != len(g.Observations)-1 {
				t.Fatalf("group %v/%s observed after revocation", g.Platform, g.Code)
			}
		}
	}
	if !sawDead {
		t.Fatal("no revocations observed in 6 days (fixture too small?)")
	}
}

func TestCreatorPIIRecordedWithoutJoining(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	f.discoverDay(0)
	f.clock.Advance(24 * time.Hour)
	if err := f.mon.DailySweep(ctx, f.clock.Now()); err != nil {
		t.Fatal(err)
	}
	creators := 0
	for _, u := range f.st.Users() {
		if u.Platform == platform.WhatsApp && u.Creator {
			creators++
			if u.PhoneHash == "" {
				t.Fatal("creator without phone hash")
			}
			if u.Country == "" {
				t.Fatal("creator without country")
			}
		}
	}
	if creators == 0 {
		t.Fatal("no WhatsApp creators observed from landing pages")
	}
	// Phone hashes, never raw numbers, are stored.
	for _, u := range f.st.Users() {
		if len(u.PhoneHash) != 0 && len(u.PhoneHash) != 64 {
			t.Fatalf("suspicious phone hash %q", u.PhoneHash)
		}
	}
}

func TestSweepIsIdempotentPerDay(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	f.discoverDay(0)
	f.clock.Advance(24 * time.Hour)
	if err := f.mon.DailySweep(ctx, f.clock.Now()); err != nil {
		t.Fatal(err)
	}
	obs1 := countObs(f.st)
	// Re-sweeping at the same instant adds one more observation per live
	// group (the monitor does not dedupe by day; the driver calls it once
	// per day).
	if err := f.mon.DailySweep(ctx, f.clock.Now()); err != nil {
		t.Fatal(err)
	}
	obs2 := countObs(f.st)
	if obs2 <= obs1 {
		t.Fatalf("second sweep added nothing: %d -> %d", obs1, obs2)
	}
}

func countObs(st *store.Store) int {
	n := 0
	list := st.Groups()
	for i := 0; i < list.Len(); i++ {
		n += list.Obs(i).Len()
	}
	return n
}

// TestSweepToleratesPartialFailures kills one platform's service: its
// probes fail, but the sweep continues and still records the other
// platforms' observations.
func TestSweepToleratesPartialFailures(t *testing.T) {
	f := newFixture(t)
	// Point the Telegram client at a dead endpoint.
	f.mon.TG = telegram.NewClient("http://127.0.0.1:1", "mon")
	f.discoverDay(0)
	f.clock.Advance(24 * time.Hour)
	if err := f.mon.DailySweep(context.Background(), f.clock.Now()); err != nil {
		t.Fatalf("partial failure aborted the sweep: %v", err)
	}
	if f.mon.Stats().Errors == 0 {
		t.Fatal("no errors recorded for the dead platform")
	}
	obsWA := 0
	list := f.st.Groups()
	for i := 0; i < list.Len(); i++ {
		if list.At(i).Platform == platform.WhatsApp && list.Obs(i).Len() > 0 {
			obsWA++
		}
	}
	if obsWA == 0 {
		t.Fatal("healthy platforms yielded no observations")
	}
	// Telegram groups have no observation today but stay probeable.
	for i := 0; i < list.Len(); i++ {
		if list.At(i).Platform == platform.Telegram && list.Obs(i).Len() != 0 {
			t.Fatal("dead platform produced observations")
		}
	}
}

// TestSweepDefersOnSystematicFailure verifies that when every probe fails
// the sweep still completes — no group is silently dropped: each one is
// marked deferred with a stage reason and stays queued for the next sweep.
func TestSweepDefersOnSystematicFailure(t *testing.T) {
	f := newFixture(t)
	dead := "http://127.0.0.1:1"
	f.mon.WA = whatsapp.NewClient(dead, "mon")
	f.mon.TG = telegram.NewClient(dead, "mon")
	f.mon.DC = discord.NewClient(dead, "mon")
	f.discoverDay(0)
	f.clock.Advance(24 * time.Hour)
	if err := f.mon.DailySweep(context.Background(), f.clock.Now()); err != nil {
		t.Fatalf("all-probes-failed sweep aborted: %v", err)
	}
	stats := f.mon.Stats()
	if stats.Errors == 0 || stats.Deferred == 0 {
		t.Fatalf("no errors/deferrals recorded: %+v", stats)
	}
	total := 0
	list := f.st.Groups()
	for i := 0; i < list.Len(); i++ {
		g := list.At(i)
		total++
		if list.Obs(i).Len() != 0 {
			t.Fatalf("dead platforms produced observations: %v/%s", g.Platform, g.Code)
		}
		if !g.Deferred || g.DeferReason != "monitor" {
			t.Fatalf("group %v/%s not deferred with a stage reason: deferred=%v reason=%q",
				g.Platform, g.Code, g.Deferred, g.DeferReason)
		}
	}
	if total == 0 {
		t.Fatal("no groups discovered")
	}
	if stats.Deferred != total {
		t.Fatalf("Deferred=%d but %d groups swept", stats.Deferred, total)
	}
}
