// Package monitor implements the daily metadata crawler of Section 3.2:
// every discovered group URL is probed once per day — WhatsApp via its
// landing page, Telegram via its web preview, Discord via the public invite
// endpoint — recording title, member counts, online counts, creator
// details, and alive/revoked status. Probing of a URL starts at its
// discovery and stops once it is observed revoked.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/store"
)

// Stats counts monitoring events.
type Stats struct {
	Probes        int
	AliveProbes   int
	RevokedProbes int
	Errors        int
	// Deferred counts probes that exhausted their retry budget; the group
	// stays queued and is probed again on the next sweep.
	Deferred int
}

// counters is the lock-free mirror of Stats; probe workers bump them
// without touching the monitor mutex, which now guards only the dead set.
type counters struct {
	probes        atomic.Int64
	aliveProbes   atomic.Int64
	revokedProbes atomic.Int64
	errors        atomic.Int64
	deferred      atomic.Int64
}

// Monitor drives the daily probes.
type Monitor struct {
	Store *store.Store
	WA    *whatsapp.Client
	TG    *telegram.Client
	DC    *discord.Client
	// Workers is the probe parallelism (the daily sweep touches every
	// live URL).
	Workers int

	mu    sync.Mutex
	dead  map[string]bool // platform/code -> observed revoked
	stats counters
}

// New returns a Monitor writing observations into st.
func New(st *store.Store, wa *whatsapp.Client, tg *telegram.Client, dc *discord.Client) *Monitor {
	return &Monitor{Store: st, WA: wa, TG: tg, DC: dc, Workers: 16, dead: map[string]bool{}}
}

// DailySweep probes every discovered, not-yet-revoked group URL once.
func (m *Monitor) DailySweep(ctx context.Context, now time.Time) error {
	groups := m.Store.Groups()
	type job struct {
		p    platform.Platform
		code string
	}
	var jobs []job
	m.mu.Lock()
	for i := 0; i < groups.Len(); i++ {
		g := groups.At(i)
		key := g.Platform.String() + "/" + g.Code
		if !m.dead[key] {
			jobs = append(jobs, job{g.Platform, g.Code})
		}
	}
	m.mu.Unlock()

	workers := m.Workers
	if workers < 1 {
		workers = 1
	}
	// Workers take contiguous per-platform batches, not single groups: a
	// probe against the loopback services is cheap enough that an
	// unbuffered per-group handoff (channel rendezvous plus scheduler
	// wakeup per probe) used to make the parallel sweep slower than the
	// serial one. Batches amortize that handoff and keep each worker on
	// one platform's client for a whole slice. See DESIGN.md §11 for the
	// worker-count sensitivity.
	batch := len(jobs) / (4 * workers)
	if batch < 8 {
		batch = 8
	}
	ch := make(chan []job, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for js := range ch {
				for _, j := range js {
					if err := m.probe(ctx, j.p, j.code, now); err != nil {
						// A failed probe — even a systematic outage — must not
						// abort the sweep: the group is marked deferred, has no
						// observation today, and is probed again on the next
						// sweep. Nothing is silently dropped.
						m.stats.deferred.Add(1)
						m.Store.MarkDeferred(j.p, j.code, "monitor")
					}
				}
			}
		}()
	}
	// Store.Groups is sorted by platform then code, so slicing at platform
	// changes keeps every batch single-platform.
	for start := 0; start < len(jobs); {
		end := start + batch
		if end > len(jobs) {
			end = len(jobs)
		}
		for e := start + 1; e < end; e++ {
			if jobs[e].p != jobs[start].p {
				end = e
				break
			}
		}
		ch <- jobs[start:end]
		start = end
	}
	close(ch)
	wg.Wait()
	return nil
}

// probe performs one platform-specific metadata fetch.
func (m *Monitor) probe(ctx context.Context, p platform.Platform, code string, now time.Time) error {
	var obs store.Observation
	obs.At = now
	var err error
	switch p {
	case platform.WhatsApp:
		err = m.probeWhatsApp(ctx, code, &obs)
	case platform.Telegram:
		err = m.probeTelegram(ctx, code, &obs)
	case platform.Discord:
		err = m.probeDiscord(ctx, code, &obs)
	default:
		return fmt.Errorf("monitor: unknown platform %v", p)
	}
	m.stats.probes.Add(1)
	if err != nil {
		m.stats.errors.Add(1)
		return err
	}
	if obs.Alive {
		m.stats.aliveProbes.Add(1)
	} else {
		m.stats.revokedProbes.Add(1)
		m.mu.Lock()
		m.dead[p.String()+"/"+code] = true
		m.mu.Unlock()
	}
	m.Store.AddObservation(p, code, obs)
	return nil
}

func (m *Monitor) probeWhatsApp(ctx context.Context, code string, obs *store.Observation) error {
	l, err := m.WA.ProbeInvite(ctx, code)
	if errors.Is(err, whatsapp.ErrNotFound) {
		obs.Alive = false
		return nil
	}
	if err != nil {
		return err
	}
	obs.Alive = l.Alive
	if !l.Alive {
		return nil
	}
	obs.Title = l.Title
	obs.Members = l.Members
	obs.CreatorCountry = l.CreatorCountry
	if l.CreatorPhone != "" {
		// Only the hash is stored (ethics: Section 3.4); the creator is
		// also recorded as an observed user whose phone leaked.
		obs.CreatorPhoneH = store.HashPhone(l.CreatorPhone)
		obs.CreatorKey = obs.CreatorPhoneH
		m.Store.UpsertUser(store.UserRecord{
			Platform:  platform.WhatsApp,
			Key:       store.PhoneKey(l.CreatorPhone),
			PhoneHash: obs.CreatorPhoneH,
			Country:   l.CreatorCountry,
			Creator:   true,
		})
	}
	return nil
}

func (m *Monitor) probeTelegram(ctx context.Context, code string, obs *store.Observation) error {
	pv, err := m.TG.ProbePreview(ctx, code)
	if errors.Is(err, telegram.ErrNotFound) {
		obs.Alive = false
		return nil
	}
	if err != nil {
		return err
	}
	obs.Alive = pv.Alive
	if !pv.Alive {
		return nil
	}
	obs.Title = pv.Title
	obs.Members = pv.Members
	obs.Online = pv.Online
	obs.IsChannel = pv.IsChannel
	return nil
}

func (m *Monitor) probeDiscord(ctx context.Context, code string, obs *store.Observation) error {
	inv, err := m.DC.ProbeInvite(ctx, code)
	if errors.Is(err, discord.ErrUnknownInvite) {
		obs.Alive = false
		return nil
	}
	if err != nil {
		return err
	}
	obs.Alive = true
	obs.Title = inv.GuildName
	obs.Members = inv.Members
	obs.Online = inv.Online
	obs.CreatedAt = inv.CreatedAt
	obs.CreatorKey = inv.InviterID
	return nil
}

// StatsMap snapshots the counters under stable names for a checkpoint.
func (m *Monitor) StatsMap() map[string]int64 {
	return map[string]int64{
		"probes":         m.stats.probes.Load(),
		"alive_probes":   m.stats.aliveProbes.Load(),
		"revoked_probes": m.stats.revokedProbes.Load(),
		"errors":         m.stats.errors.Load(),
		"deferred":       m.stats.deferred.Load(),
	}
}

// Restore reinstates counters from a checkpoint and re-derives the dead
// set from the store: a group whose latest observation reported it revoked
// is never probed again. The set is derived, not checkpointed — the
// observation log is the durable record.
func (m *Monitor) Restore(stats map[string]int64) {
	m.stats.probes.Store(stats["probes"])
	m.stats.aliveProbes.Store(stats["alive_probes"])
	m.stats.revokedProbes.Store(stats["revoked_probes"])
	m.stats.errors.Store(stats["errors"])
	m.stats.deferred.Store(stats["deferred"])
	groups := m.Store.Groups()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < groups.Len(); i++ {
		if last, ok := groups.Obs(i).Last(); ok && !last.Alive {
			g := groups.At(i)
			m.dead[g.Platform.String()+"/"+g.Code] = true
		}
	}
}

// Stats returns a snapshot of the counters. They are monotonic atomics;
// between sweeps (the only places the driver reads them) the snapshot is
// exact.
func (m *Monitor) Stats() Stats {
	return Stats{
		Probes:        int(m.stats.probes.Load()),
		AliveProbes:   int(m.stats.aliveProbes.Load()),
		RevokedProbes: int(m.stats.revokedProbes.Load()),
		Errors:        int(m.stats.errors.Load()),
		Deferred:      int(m.stats.deferred.Load()),
	}
}
