// Package toxicity is a self-contained stand-in for Google's Perspective
// API, which the paper names as future work for assessing toxic content in
// messaging-platform groups. It scores text with a weighted lexicon plus
// mild contextual boosts — crude next to a learned model, but it exercises
// the same pipeline: score every collected message, aggregate per group and
// per platform.
package toxicity

import (
	"math"
	"strings"
	"unicode"
)

// lexicon maps lowercase tokens to severity weights in (0, 1].
var lexicon = map[string]float64{
	// Sexual/explicit (the paper's Telegram sex topics, Discord hentai).
	"fuck": 0.9, "pussy": 0.9, "cum": 0.85, "boobs": 0.7, "nude": 0.6,
	"sex": 0.5, "porn": 0.7, "hentai": 0.6, "nsfw": 0.5, "xxx": 0.6,
	"onlyfans": 0.4, "girls": 0.15, "girl": 0.1, "waifu": 0.2,
	// Harassment/profanity.
	"bitch": 0.8, "asshole": 0.8, "idiot": 0.5, "stupid": 0.35,
	"loser": 0.4, "trash": 0.3, "hate": 0.4, "kill": 0.55, "die": 0.4,
	// Scam-adjacent aggression markers.
	"scam": 0.3, "fraud": 0.3,
}

// Scorer scores text toxicity in [0, 1].
type Scorer struct {
	weights map[string]float64
}

// NewScorer returns a scorer with the default lexicon.
func NewScorer() *Scorer { return &Scorer{weights: lexicon} }

// Score returns a toxicity estimate for the text: a saturating sum of
// lexicon hits normalized by length, so one slur in a long message scores
// lower than a string of them in a short one.
func (s *Scorer) Score(text string) float64 {
	var hit float64
	n := 0
	for _, raw := range strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	}) {
		n++
		if w, ok := s.weights[raw]; ok {
			hit += w
		}
	}
	if n == 0 {
		return 0
	}
	// Saturating normalization: score -> hit / (hit + sqrt(len)).
	den := hit + math.Sqrt(float64(n))
	if den == 0 {
		return 0
	}
	score := hit / den
	if score > 1 {
		score = 1
	}
	return score
}

// Toxic reports whether the text clears the default threshold (0.30,
// roughly Perspective's common moderation cut).
func (s *Scorer) Toxic(text string) bool { return s.Score(text) >= 0.30 }
