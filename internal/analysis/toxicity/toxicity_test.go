package toxicity

import "testing"

func TestScoreOrdering(t *testing.T) {
	s := NewScorer()
	clean := s.Score("join our group for forex trading signals today")
	mild := s.Score("this stupid market is trash today")
	explicit := s.Score("fuck pussy cum nude porn")
	if !(clean < mild && mild < explicit) {
		t.Fatalf("ordering violated: clean=%.3f mild=%.3f explicit=%.3f", clean, mild, explicit)
	}
	if clean != 0 {
		t.Fatalf("clean text scored %v", clean)
	}
}

func TestScoreBounds(t *testing.T) {
	s := NewScorer()
	for _, text := range []string{"", "   ", "hello world", "fuck fuck fuck fuck fuck"} {
		v := s.Score(text)
		if v < 0 || v > 1 {
			t.Fatalf("Score(%q) = %v out of [0,1]", text, v)
		}
	}
}

func TestLengthNormalization(t *testing.T) {
	s := NewScorer()
	short := s.Score("fuck this")
	long := s.Score("fuck this but here are another twenty perfectly ordinary words " +
		"that dilute the single profanity in a very long message about gaming")
	if long >= short {
		t.Fatalf("long diluted message (%.3f) should score below short one (%.3f)", long, short)
	}
}

func TestToxicThreshold(t *testing.T) {
	s := NewScorer()
	if s.Toxic("have a lovely day everyone") {
		t.Fatal("benign text flagged toxic")
	}
	if !s.Toxic("fuck pussy cum") {
		t.Fatal("explicit text not flagged")
	}
}

func TestCaseAndPunctuationInsensitive(t *testing.T) {
	s := NewScorer()
	if s.Score("FUCK!") == 0 {
		t.Fatal("case/punctuation defeated the lexicon")
	}
}
