package textproc

import (
	"reflect"
	"testing"
)

func TestTokensNormalization(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokens("Join FREE bitcoin! https://t.me/x @user #crypto now... 123")
	want := []string{"join", "free", "bitcoin", "crypto"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestTokensDropStopwords(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokens("the and a is was trading")
	if !reflect.DeepEqual(got, []string{"trading"}) {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestTokensDropShortAndNumeric(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Tokens("x 42 7e bb"); !reflect.DeepEqual(got, []string{"7e", "bb"}) {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestTokensUnicode(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokens("قناة جديدة")
	if len(got) != 2 {
		t.Fatalf("Arabic tokens = %v", got)
	}
}

func TestVocabInterning(t *testing.T) {
	v := NewVocab()
	a := v.ID("alpha")
	b := v.ID("beta")
	if a == b {
		t.Fatal("distinct tokens share an ID")
	}
	if v.ID("alpha") != a {
		t.Fatal("re-interning changed the ID")
	}
	if v.Token(a) != "alpha" {
		t.Fatal("Token lookup wrong")
	}
	if id, ok := v.Lookup("beta"); !ok || id != b {
		t.Fatal("Lookup wrong")
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Fatal("Lookup found unknown token")
	}
	if v.Size() != 2 {
		t.Fatalf("Size=%d", v.Size())
	}
}

func TestNewCorpusDropsEmptyDocs(t *testing.T) {
	tok := NewTokenizer()
	c := NewCorpus(tok, []string{
		"bitcoin trading signals",
		"the and a",         // all stopwords -> dropped
		"https://t.me/x @u", // no content tokens -> dropped
		"crypto bitcoin",
	})
	if len(c.Docs) != 2 {
		t.Fatalf("corpus has %d docs, want 2", len(c.Docs))
	}
	// Shared vocabulary: "bitcoin" has the same ID in both docs.
	id, ok := c.Vocab.Lookup("bitcoin")
	if !ok {
		t.Fatal("bitcoin not in vocab")
	}
	found := 0
	for _, doc := range c.Docs {
		for _, w := range doc {
			if w == id {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("bitcoin appears %d times, want 2", found)
	}
}
