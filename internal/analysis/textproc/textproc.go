// Package textproc prepares tweet text for topic modeling the way the
// paper does before LDA: tokenization, lowercasing, URL/mention/punctuation
// stripping, and English stopword removal.
package textproc

import (
	"strings"
	"unicode"

	"msgscope/internal/textgen"
)

// Tokenizer splits and normalizes text.
type Tokenizer struct {
	stop map[string]struct{}
}

// NewTokenizer returns a tokenizer with the default English stopword list.
func NewTokenizer() *Tokenizer {
	stop := map[string]struct{}{}
	for _, w := range textgen.Stopwords() {
		stop[w] = struct{}{}
	}
	return &Tokenizer{stop: stop}
}

// Tokens normalizes text into content tokens: lowercased words with URLs,
// mentions, hashtag markers, numbers, and stopwords removed.
func (t *Tokenizer) Tokens(text string) []string {
	var out []string
	for _, raw := range strings.Fields(text) {
		if strings.HasPrefix(raw, "http://") || strings.HasPrefix(raw, "https://") {
			continue
		}
		if strings.HasPrefix(raw, "@") {
			continue
		}
		w := strings.TrimFunc(strings.ToLower(raw), func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsNumber(r)
		})
		w = strings.TrimPrefix(w, "#")
		if w == "" || len(w) < 2 {
			continue
		}
		if isNumeric(w) {
			continue
		}
		if _, isStop := t.stop[w]; isStop {
			continue
		}
		out = append(out, w)
	}
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsNumber(r) {
			return false
		}
	}
	return true
}

// Vocab maps tokens to dense integer IDs.
type Vocab struct {
	byToken map[string]int
	tokens  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{byToken: map[string]int{}} }

// ID interns a token, assigning a new ID on first sight.
func (v *Vocab) ID(token string) int {
	if id, ok := v.byToken[token]; ok {
		return id
	}
	id := len(v.tokens)
	v.byToken[token] = id
	v.tokens = append(v.tokens, token)
	return id
}

// Lookup returns the ID of a known token.
func (v *Vocab) Lookup(token string) (int, bool) {
	id, ok := v.byToken[token]
	return id, ok
}

// Token returns the token for an ID.
func (v *Vocab) Token(id int) string { return v.tokens[id] }

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.tokens) }

// Corpus is a set of tokenized documents encoded against one vocabulary.
type Corpus struct {
	Vocab *Vocab
	Docs  [][]int // token IDs per document
}

// NewCorpus builds a corpus from raw texts using the tokenizer, dropping
// documents that end up empty.
func NewCorpus(t *Tokenizer, texts []string) *Corpus {
	c := &Corpus{Vocab: NewVocab()}
	for _, text := range texts {
		toks := t.Tokens(text)
		if len(toks) == 0 {
			continue
		}
		doc := make([]int, len(toks))
		for i, tok := range toks {
			doc[i] = c.Vocab.ID(tok)
		}
		c.Docs = append(c.Docs, doc)
	}
	return c
}
