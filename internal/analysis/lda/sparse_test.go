package lda

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"msgscope/internal/analysis/textproc"
)

// mixedCorpus builds a messier corpus than synthCorpus: overlapping word
// pools, varying document lengths, a few empty documents — the shapes the
// sparse bookkeeping has to survive.
func mixedCorpus(nDocs int) *textproc.Corpus {
	pools := [][]string{
		{"bitcoin", "crypto", "wallet", "trading", "profit", "signal"},
		{"anime", "server", "gaming", "nitro", "discord", "signal"},
		{"invite", "group", "link", "join", "telegram", "wallet"},
	}
	rng := rand.New(rand.NewPCG(7, 11))
	var texts []string
	for i := 0; i < nDocs; i++ {
		if i%17 == 0 {
			texts = append(texts, "")
			continue
		}
		pool := pools[i%len(pools)]
		n := 3 + rng.IntN(20)
		var words []string
		for j := 0; j < n; j++ {
			words = append(words, pool[rng.IntN(len(pool))])
		}
		texts = append(texts, strings.Join(words, " "))
	}
	return textproc.NewCorpus(textproc.NewTokenizer(), texts)
}

// denseConditional computes the collapsed Gibbs conditional the dense
// sampler uses, with the current token removed from all counts — the
// ground truth tokenMasses must reproduce.
func denseConditional(st *sparse, ndtRow []int32, w, kOld int, out []float64) {
	K, V := st.K, st.V
	for k := 0; k < K; k++ {
		nwt := st.m.nwt[w*K+k]
		nt := st.m.nt[k]
		if k == kOld {
			nwt--
			nt--
		}
		pw := (float64(nwt) + st.beta) / (float64(nt) + st.beta*float64(V))
		pd := float64(ndtRow[k]) + st.alpha
		out[k] = pw * pd
	}
}

// TestSparseExactConditional verifies, token by token mid-fit, that the
// s/r/q decomposition assigns every topic exactly the mass of the dense
// collapsed Gibbs conditional (up to float rounding).
func TestSparseExactConditional(t *testing.T) {
	c := mixedCorpus(120)
	cfg := Config{Topics: 7, Iterations: 1, Seed: 5}.withDefaults()
	m := newModel(c, cfg)
	st := newSparse(m)
	st.initAssignments()
	sc := newScratch(st.K)

	// Run a few real sweeps so counts are partially mixed, checking the
	// decomposition against the dense formula at every token.
	got := make([]float64, st.K)
	want := make([]float64, st.K)
	checked := 0
	for iter := 0; iter < 3; iter++ {
		st.refresh()
		for ci := range st.chunks {
			ck := &st.chunks[ci]
			for d := ck.lo; d < ck.hi; d++ {
				doc := m.docs[d]
				if len(doc) == 0 {
					continue
				}
				zd := st.z32[m.docOff[d]:]
				ndtRow := st.ndt[d*sparsePad : d*sparsePad+st.K]
				sc.enterDoc(st, ndtRow)
				for i, w := range doc {
					kOld := int(zd[i])
					st.detachToken(sc, ndtRow, kOld)
					st.tokenMasses(sc, ndtRow, w, kOld, got)
					denseConditional(st, ndtRow, w, kOld, want)
					for k := range got {
						if math.Abs(got[k]-want[k]) > 1e-9*math.Max(1, want[k]) {
							t.Fatalf("iter %d doc %d tok %d topic %d: sparse mass %g, dense %g", iter, d, i, k, got[k], want[k])
						}
					}
					checked++
					kNew, _ := st.sampleBuckets(sc, ndtRow, w, kOld, ck.rng.float64())
					st.attachToken(sc, ndtRow, kNew)
					if kNew != kOld {
						zd[i] = int32(kNew)
						ck.deltas = append(ck.deltas, tdelta{w: int32(w), from: uint8(kOld), to: uint8(kNew)})
					}
				}
			}
		}
		st.merge()
		st.syncNWT() // keep the dense-oracle table in step with the packed rows
	}
	if checked == 0 {
		t.Fatal("no tokens checked")
	}
}

// TestSparseMatchesDensePerplexity treats the dense sampler as the
// differential oracle: both samplers fit the same corpus and must land at
// comparable perplexity (the chains differ, the converged quality must
// not).
func TestSparseMatchesDensePerplexity(t *testing.T) {
	c := synthCorpus(200)
	cfg := Config{Topics: 2, Iterations: 80, Seed: 3}
	sp := Fit(c, cfg)
	cfgD := cfg
	cfgD.Dense = true
	dn := Fit(c, cfgD)
	ps, pd := sp.Perplexity(), dn.Perplexity()
	if ps <= 0 || pd <= 0 {
		t.Fatalf("non-positive perplexity: sparse %g dense %g", ps, pd)
	}
	if diff := math.Abs(ps-pd) / pd; diff > 0.10 {
		t.Fatalf("sparse perplexity %.3f vs dense %.3f (%.1f%% apart)", ps, pd, diff*100)
	}
}

// TestSparseWorkersByteIdentical pins the determinism contract: the fitted
// model is identical at 1, 4, and 16 workers.
func TestSparseWorkersByteIdentical(t *testing.T) {
	c := mixedCorpus(400)
	base := Fit(c, Config{Topics: 8, Iterations: 30, Seed: 42, Workers: 1})
	for _, workers := range []int{4, 16} {
		m := Fit(mixedCorpus(400), Config{Topics: 8, Iterations: 30, Seed: 42, Workers: workers})
		if !equalInts(base.z, m.z) || !equalInts(base.nwt, m.nwt) ||
			!equalInts(base.ndt, m.ndt) || !equalInts(base.nt, m.nt) {
			t.Fatalf("model state at %d workers differs from serial", workers)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSparseCountInvariants fits with the sparse sampler and re-derives
// every count array from the final assignments.
func TestSparseCountInvariants(t *testing.T) {
	c := mixedCorpus(150)
	m := Fit(c, Config{Topics: 6, Iterations: 25, Seed: 9, Workers: 4})
	K := m.cfg.Topics
	nwt := make([]int, len(m.nwt))
	ndt := make([]int, len(m.ndt))
	nt := make([]int, K)
	for d, doc := range m.docs {
		zd := m.z[m.docOff[d]:]
		for i, w := range doc {
			k := zd[i]
			nwt[w*K+k]++
			ndt[d*K+k]++
			nt[k]++
		}
	}
	if !equalInts(nwt, m.nwt) || !equalInts(ndt, m.ndt) || !equalInts(nt, m.nt) {
		t.Fatal("count arrays inconsistent with final assignments")
	}
}

// fitFactored mirrors fitSparse's iteration structure but drives every
// token through the factored enterDoc/detachToken/sampleBuckets/
// attachToken operations — the semantic reference the fused sweepChunk
// must match float for float.
func fitFactored(c *textproc.Corpus, cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := newModel(c, cfg)
	if len(m.z) == 0 {
		return m
	}
	st := newSparse(m)
	st.initAssignments()
	sc := newScratch(st.K)
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.refresh()
		for ci := range st.chunks {
			ck := &st.chunks[ci]
			for d := ck.lo; d < ck.hi; d++ {
				doc := m.docs[d]
				if len(doc) == 0 {
					continue
				}
				zd := st.z32[m.docOff[d]:]
				ndtRow := st.ndt[d*sparsePad : d*sparsePad+st.K]
				sc.enterDoc(st, ndtRow)
				for i, w := range doc {
					kOld := int(zd[i])
					st.detachToken(sc, ndtRow, kOld)
					kNew, _ := st.sampleBuckets(sc, ndtRow, w, kOld, ck.rng.float64())
					st.attachToken(sc, ndtRow, kNew)
					if kNew != kOld {
						zd[i] = int32(kNew)
						ck.deltas = append(ck.deltas, tdelta{w: int32(w), from: uint8(kOld), to: uint8(kNew)})
					}
				}
			}
		}
		st.merge()
	}
	st.finish()
	return m
}

// TestSparseFusedMatchesFactored pins the fused production sweep to the
// factored reference: identical models, token for token.
func TestSparseFusedMatchesFactored(t *testing.T) {
	cfg := Config{Topics: 6, Iterations: 40, Seed: 17, Workers: 1}
	fused := Fit(mixedCorpus(300), cfg)
	ref := fitFactored(mixedCorpus(300), cfg)
	if !equalInts(fused.z, ref.z) || !equalInts(fused.nwt, ref.nwt) ||
		!equalInts(fused.ndt, ref.ndt) || !equalInts(fused.nt, ref.nt) {
		t.Fatal("fused sweep diverges from factored reference")
	}
}

// TestSparseBucketNeverPicksZeroCount walks real sampling decisions across
// a dense grid of uniforms and asserts the structural invariant of each
// bucket: a q draw lands on a topic whose token-excluded word count is
// positive, an r draw on a topic with positive doc count.
func TestSparseBucketNeverPicksZeroCount(t *testing.T) {
	c := mixedCorpus(80)
	cfg := Config{Topics: 5, Iterations: 1, Seed: 13}.withDefaults()
	m := newModel(c, cfg)
	st := newSparse(m)
	st.initAssignments()
	st.refresh()
	sc := newScratch(st.K)

	us := []float64{0, 1e-12, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999999, 1 - 1e-15}
	for ci := range st.chunks {
		ck := &st.chunks[ci]
		for d := ck.lo; d < ck.hi; d++ {
			doc := m.docs[d]
			if len(doc) == 0 {
				continue
			}
			zd := st.z32[m.docOff[d]:]
			ndtRow := st.ndt[d*sparsePad : d*sparsePad+st.K]
			sc.enterDoc(st, ndtRow)
			for i, w := range doc {
				kOld := int(zd[i])
				st.detachToken(sc, ndtRow, kOld)
				for _, u := range us {
					assertBucketInvariant(t, st, sc, ndtRow, w, kOld, u)
				}
				st.attachToken(sc, ndtRow, kOld) // restore; no transition
			}
		}
	}
}

// assertBucketInvariant samples once and checks the chosen bucket's count
// invariant. Shared by the table test above and FuzzSparseBucket.
func assertBucketInvariant(t testing.TB, st *sparse, sc *scratch, ndtRow []int32, w, kOld int, u float64) {
	k, b := st.sampleBuckets(sc, ndtRow, w, kOld, u)
	if k < 0 || k >= st.K {
		t.Fatalf("picked topic %d out of range K=%d", k, st.K)
	}
	switch b {
	case bucketQ:
		cnt := st.m.nwt[w*st.K+k]
		if k == kOld {
			cnt--
		}
		if cnt <= 0 {
			t.Fatalf("q bucket picked topic %d with excluded word count %d (w=%d kOld=%d u=%g)", k, cnt, w, kOld, u)
		}
	case bucketR:
		if ndtRow[k] <= 0 {
			t.Fatalf("r bucket picked topic %d with doc count %d (u=%g)", k, ndtRow[k], u)
		}
	}
}

// FuzzSparseBucket drives bucket selection with fuzz-chosen corpora and
// uniforms: whatever the input, a q-bucket draw must land on a positive
// excluded word-topic count and an r-bucket draw on a positive doc-topic
// count.
func FuzzSparseBucket(f *testing.F) {
	f.Add(uint64(1), []byte("abc abd bcd\nbcd cde\nabc"), uint16(0), uint16(1<<15))
	f.Add(uint64(42), []byte("x y z\nx x x x\n\ny z"), uint16(9999), uint16(65535))
	f.Fuzz(func(t *testing.T, seed uint64, text []byte, uRaw uint16, pick uint16) {
		lines := strings.Split(string(text), "\n")
		if len(lines) > 64 {
			lines = lines[:64]
		}
		c := textproc.NewCorpus(textproc.NewTokenizer(), lines)
		tokens := 0
		for _, d := range c.Docs {
			tokens += len(d)
		}
		if tokens == 0 {
			return
		}
		cfg := Config{Topics: 1 + int(seed%9), Iterations: 1, Seed: seed}.withDefaults()
		m := newModel(c, cfg)
		st := newSparse(m)
		st.initAssignments()
		st.refresh()
		sc := newScratch(st.K)

		u := float64(uRaw) / 65536.0
		// Walk to the pick-th token (mod total) and sample it with u.
		target := int(pick) % tokens
		seen := 0
		for d, doc := range m.docs {
			if len(doc) == 0 {
				continue
			}
			if seen+len(doc) <= target {
				seen += len(doc)
				continue
			}
			i := target - seen
			w := doc[i]
			zd := st.z32[m.docOff[d]:]
			ndtRow := st.ndt[d*sparsePad : d*sparsePad+st.K]
			sc.enterDoc(st, ndtRow)
			kOld := int(zd[i])
			st.detachToken(sc, ndtRow, kOld)
			assertBucketInvariant(t, st, sc, ndtRow, w, kOld, u)
			return
		}
	})
}

// benchCorpus approximates the Table 3 workload: a few thousand short
// tweet-like documents over a vocabulary of thousands of words, with
// Zipf-skewed frequencies concentrated per latent topic. Vocabulary shape
// matters for this comparison — SparseLDA's q bucket walks a word's
// nonzero topics, so a toy corpus where every word occurs in every topic
// would hide the win.
func benchCorpus() *textproc.Corpus { return benchCorpusShape(400, 4000) }

// benchCorpusShape builds the tweet-shaped corpus at a chosen vocabulary
// (10 latent pools × poolSize words) and document count, so the sweep
// bench can vary vocabulary independently of the model's K.
func benchCorpusShape(poolSize, nDocs int) *textproc.Corpus {
	const latent = 10
	pools := make([][]string, latent)
	for t := range pools {
		pool := make([]string, poolSize)
		for j := range pool {
			pool[j] = fmt.Sprintf("tw%dx%d", t, j)
		}
		pools[t] = pool
	}
	rng := rand.New(rand.NewPCG(21, 4))
	texts := make([]string, nDocs)
	for i := range texts {
		pool := pools[i%latent]
		n := 8 + rng.IntN(13)
		words := make([]string, n)
		for j := range words {
			// A log-uniform rank draw approximates the Zipfian token
			// frequencies of real tweet text.
			r := rng.Float64()
			words[j] = pool[int(math.Exp(r*math.Log(float64(poolSize))))-1]
		}
		texts[i] = strings.Join(words, " ")
	}
	return textproc.NewCorpus(textproc.NewTokenizer(), texts)
}

// corpusTokens counts the token instances one Gibbs sweep visits.
func corpusTokens(c *textproc.Corpus) int {
	n := 0
	for _, d := range c.Docs {
		n += len(d)
	}
	return n
}

// benchFit times Fit and reports sampling throughput as a tok/s custom
// metric — token draws (tokens × iterations) per wall second — so
// cmd/benchjson's bench-compare gates throughput directly ("/s" metrics
// are higher-is-better there; a drop beyond tolerance fails the gate).
func benchFit(b *testing.B, c *textproc.Corpus, cfg Config) {
	b.Helper()
	draws := float64(corpusTokens(c)) * float64(cfg.withDefaults().Iterations)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(c, cfg)
	}
	b.ReportMetric(draws*float64(b.N)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkLDAFit compares the dense reference sampler against the sparse
// sampler (serially and in parallel) and the alias-table MH sampler at the
// paper's Table 3 config (K=10, 200 iterations). cmd/benchjson derives a
// serial-vs-parallel speedup from the sub-benchmark names, per GOMAXPROCS
// count when run under its -cpus matrix mode.
func BenchmarkLDAFit(b *testing.B) {
	c := benchCorpus()
	cfg := Config{Topics: 10, Iterations: 200, Seed: 42}
	b.Run("dense", func(b *testing.B) {
		d := cfg
		d.Dense = true
		benchFit(b, c, d)
	})
	b.Run("serial", func(b *testing.B) {
		s := cfg
		s.Workers = 1
		benchFit(b, c, s)
	})
	b.Run("parallel", func(b *testing.B) {
		benchFit(b, c, cfg)
	})
	b.Run("alias/serial", func(b *testing.B) {
		a := cfg
		a.Sampler = SamplerAlias
		a.Workers = 1
		benchFit(b, c, a)
	})
	b.Run("alias/parallel", func(b *testing.B) {
		a := cfg
		a.Sampler = SamplerAlias
		benchFit(b, c, a)
	})
}

// BenchmarkLDASweep scales the kernel comparison across K ∈ {10, 25, 50}
// and two vocabulary sizes (4K and 16K words). The dense chain's per-token
// cost is Θ(K) and vocabulary-independent; the alias sampler's draw is
// O(1), so its win should widen with K — the shape longitudinal corpora
// (TeleScope-scale) put on the kernel. Iterations are shortened: the
// sweep gates scaling ratios, not converged models.
func BenchmarkLDASweep(b *testing.B) {
	for _, shape := range []struct {
		pool int
		name string
	}{{400, "V4000"}, {1600, "V16000"}} {
		c := benchCorpusShape(shape.pool, 2000)
		for _, k := range []int{10, 25, 50} {
			cfg := Config{Topics: k, Iterations: 50, Seed: 42, Workers: 1}
			for _, s := range []Sampler{SamplerDense, SamplerAlias} {
				b.Run(fmt.Sprintf("K%d/%s/%s", k, shape.name, s), func(b *testing.B) {
					cc := cfg
					cc.Sampler = s
					benchFit(b, c, cc)
				})
			}
		}
	}
}
