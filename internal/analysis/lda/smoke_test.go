package lda

import (
	"math"
	"testing"
)

// TestLDASamplerParitySmoke is the `make bench-lda` CI gate: fit all three
// Gibbs kernels on a tiny corpus and require converged training perplexity
// within 10% of each other pairwise. Dense and sparse draw the same exact
// conditional and alias is an MH chain over the same posterior, so any
// kernel drifting out of the shared basin is a sampler bug, not noise —
// the corpus is seeded and small enough that 80 sweeps converge all three.
func TestLDASamplerParitySmoke(t *testing.T) {
	c := mixedCorpus(200)
	cfg := Config{Topics: 6, Iterations: 80, Seed: 42, Workers: 1}
	perp := map[Sampler]float64{}
	for _, s := range []Sampler{SamplerDense, SamplerSparse, SamplerAlias} {
		cc := cfg
		cc.Sampler = s
		perp[s] = Fit(c, cc).Perplexity()
		if perp[s] <= 1 || math.IsNaN(perp[s]) {
			t.Fatalf("%s sampler produced degenerate perplexity %v", s, perp[s])
		}
	}
	t.Logf("perplexity: dense %.2f sparse %.2f alias %.2f",
		perp[SamplerDense], perp[SamplerSparse], perp[SamplerAlias])
	for _, a := range []Sampler{SamplerDense, SamplerSparse, SamplerAlias} {
		for _, b := range []Sampler{SamplerDense, SamplerSparse, SamplerAlias} {
			if a >= b {
				continue
			}
			if rel := math.Abs(perp[a]-perp[b]) / perp[a]; rel > 0.10 {
				t.Errorf("%s vs %s perplexity diverges %.1f%%: %.2f vs %.2f",
					a, b, rel*100, perp[a], perp[b])
			}
		}
	}
}
