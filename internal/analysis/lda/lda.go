// Package lda implements Latent Dirichlet Allocation (Blei, Ng, Jordan
// 2003) with collapsed Gibbs sampling (Griffiths & Steyvers 2004) — the
// topic model the paper applies to English tweets to produce Table 3. Only
// the standard library is used.
package lda

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"msgscope/internal/analysis/textproc"
)

// Sampler names a Gibbs kernel. The empty string (SamplerAuto) picks the
// historical default: SparseLDA for K ≤ 15, the dense reference above.
type Sampler string

const (
	// SamplerAuto is the default routing: sparse for K ≤ sparseMaxK,
	// dense otherwise (Config.Dense still forces dense).
	SamplerAuto Sampler = ""
	// SamplerDense is the O(K)-per-token exact-conditional reference
	// chain — the differential oracle of the other two.
	SamplerDense Sampler = "dense"
	// SamplerSparse is the s/r/q bucket decomposition (sparse.go).
	SamplerSparse Sampler = "sparse"
	// SamplerAlias is the alias-table Metropolis–Hastings sampler
	// (alias.go): O(1) proposals from per-word alias tables, corrected by
	// an acceptance step.
	SamplerAlias Sampler = "alias"
)

// ParseSampler validates a sampler name from a flag or config file.
func ParseSampler(s string) (Sampler, error) {
	switch Sampler(s) {
	case SamplerAuto, SamplerDense, SamplerSparse, SamplerAlias:
		return Sampler(s), nil
	}
	return SamplerAuto, fmt.Errorf("lda: unknown sampler %q (want dense, sparse or alias)", s)
}

// Config parameterizes a model fit.
type Config struct {
	Topics     int     // K
	Alpha      float64 // document-topic prior (default 50/K)
	Beta       float64 // topic-word prior (default 0.01)
	Iterations int     // Gibbs sweeps (default 200)
	Seed       uint64
	// Workers bounds the sparse and alias samplers' sweep parallelism
	// (0 = GOMAXPROCS, 1 = serial). The fitted model is byte-identical at
	// any worker count: documents are partitioned into fixed-size chunks
	// with their own SplitMix64 streams, and count updates merge at an
	// iteration barrier (see sparse.go).
	Workers int
	// Sampler picks the Gibbs kernel; SamplerAuto (the zero value) keeps
	// the historical routing. Every sampler targets the same collapsed
	// posterior: dense and sparse draw the exact conditional (identical
	// converged quality, pinned float-for-float against each other in
	// tests), alias runs a Metropolis–Hastings chain whose stationary
	// distribution is that conditional (converged perplexity parity is
	// the gate instead of float identity).
	Sampler Sampler
	// Dense selects the reference O(K)-per-token sequential sampler
	// instead of the default SparseLDA sampler — shorthand for
	// Sampler: SamplerDense kept for existing callers; Workers is ignored
	// (the dense chain is inherently sequential). Topics above sparseMaxK
	// (15) also take this path under SamplerAuto — the sparse sweep
	// specializes small K.
	Dense bool
}

func (c Config) withDefaults() Config {
	if c.Topics <= 0 {
		c.Topics = 10
	}
	if c.Alpha <= 0 {
		c.Alpha = 50.0 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 200
	}
	return c
}

// Model is a fitted LDA model.
type Model struct {
	cfg   Config
	vocab *textproc.Vocab
	docs  [][]int
	// z holds the topic assignment per token, flattened into one
	// contiguous arena: document d's assignments live at
	// z[docOff[d] : docOff[d]+docLen[d]]. One allocation for the whole
	// corpus instead of one per document, and the Gibbs sweep walks it
	// sequentially.
	z      []int
	docOff []int
	nwt    []int // word-topic counts, [w*K+k]
	ndt    []int // doc-topic counts, [d*K+k]
	nt     []int // tokens per topic
	docLen []int
}

// Fit runs collapsed Gibbs sampling over the corpus. The default sampler
// is the SparseLDA s/r/q bucket decomposition (sparse.go), deterministic
// at any Config.Workers; Config.Sampler (or the legacy Config.Dense)
// selects the dense reference chain or the alias-table MH sampler
// (alias.go) instead. Configurations a kernel cannot represent — K above
// its topic ceiling, packed-count overflow — fall back to the dense path
// rather than failing.
func Fit(c *textproc.Corpus, cfg Config) *Model {
	cfg = cfg.withDefaults()
	switch cfg.Sampler {
	case SamplerDense:
		return fitDense(c, cfg)
	case SamplerSparse:
		if cfg.Topics > sparseMaxK {
			return fitDense(c, cfg)
		}
		return fitSparse(c, cfg)
	case SamplerAlias:
		if cfg.Topics > aliasMaxK {
			return fitDense(c, cfg)
		}
		return fitAlias(c, cfg)
	}
	if cfg.Dense || cfg.Topics > sparseMaxK {
		return fitDense(c, cfg)
	}
	return fitSparse(c, cfg)
}

// newModel allocates the count arrays shared by both samplers. Topic
// assignments are left at zero; each sampler runs its own random init.
func newModel(c *textproc.Corpus, cfg Config) *Model {
	K := cfg.Topics
	V := c.Vocab.Size()
	tokens := 0
	for _, doc := range c.Docs {
		tokens += len(doc)
	}
	m := &Model{
		cfg:    cfg,
		vocab:  c.Vocab,
		docs:   c.Docs,
		z:      make([]int, tokens),
		docOff: make([]int, len(c.Docs)),
		nwt:    make([]int, V*K),
		ndt:    make([]int, len(c.Docs)*K),
		nt:     make([]int, K),
		docLen: make([]int, len(c.Docs)),
	}
	off := 0
	for d, doc := range c.Docs {
		m.docOff[d] = off
		m.docLen[d] = len(doc)
		off += len(doc)
	}
	return m
}

// fitDense is the reference collapsed Gibbs sampler: one sequential chain,
// O(K) work and two divisions per topic per token.
func fitDense(c *textproc.Corpus, cfg Config) *Model {
	K := cfg.Topics
	V := c.Vocab.Size()
	m := newModel(c, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1DA))

	// Random initialization.
	for d, doc := range c.Docs {
		zd := m.z[m.docOff[d]:]
		for i, w := range doc {
			k := rng.IntN(K)
			zd[i] = k
			m.nwt[w*K+k]++
			m.ndt[d*K+k]++
			m.nt[k]++
		}
	}

	p := make([]float64, K)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, doc := range c.Docs {
			zd := m.z[m.docOff[d]:]
			for i, w := range doc {
				k := zd[i]
				m.nwt[w*K+k]--
				m.ndt[d*K+k]--
				m.nt[k]--

				var total float64
				for kk := 0; kk < K; kk++ {
					pw := (float64(m.nwt[w*K+kk]) + cfg.Beta) /
						(float64(m.nt[kk]) + cfg.Beta*float64(V))
					pd := float64(m.ndt[d*K+kk]) + cfg.Alpha
					total += pw * pd
					p[kk] = total
				}
				u := rng.Float64() * total
				k = sort.SearchFloat64s(p, u)
				if k >= K {
					k = K - 1
				}
				zd[i] = k
				m.nwt[w*K+k]++
				m.ndt[d*K+k]++
				m.nt[k]++
			}
		}
	}
	return m
}

// Topics returns K.
func (m *Model) Topics() int { return m.cfg.Topics }

// TopWords returns the n highest-probability words of a topic.
func (m *Model) TopWords(k, n int) []string {
	K := m.cfg.Topics
	type wc struct {
		w int
		c int
	}
	// Count first so the candidate slice is allocated exactly once.
	n2 := 0
	for w := 0; w < m.vocab.Size(); w++ {
		if m.nwt[w*K+k] > 0 {
			n2++
		}
	}
	ws := make([]wc, 0, n2)
	for w := 0; w < m.vocab.Size(); w++ {
		if c := m.nwt[w*K+k]; c > 0 {
			ws = append(ws, wc{w, c})
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].c != ws[j].c {
			return ws[i].c > ws[j].c
		}
		return ws[i].w < ws[j].w
	})
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = m.vocab.Token(ws[i].w)
	}
	return out
}

// DocTopic returns the dominant topic of document d.
func (m *Model) DocTopic(d int) int {
	K := m.cfg.Topics
	best, bestN := 0, -1
	for k := 0; k < K; k++ {
		if n := m.ndt[d*K+k]; n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// TopicShares returns, per topic, the fraction of documents whose dominant
// topic it is (the "% of tweets matching each topic" of Table 3).
func (m *Model) TopicShares() []float64 {
	K := m.cfg.Topics
	counts := make([]int, K)
	for d := range m.docs {
		counts[m.DocTopic(d)]++
	}
	out := make([]float64, K)
	if len(m.docs) == 0 {
		return out
	}
	for k := 0; k < K; k++ {
		out[k] = float64(counts[k]) / float64(len(m.docs))
	}
	return out
}

// TopicWordProb returns phi[k][w], the smoothed word distribution of topic
// k over the whole vocabulary.
func (m *Model) TopicWordProb(k, w int) float64 {
	K := m.cfg.Topics
	V := m.vocab.Size()
	return (float64(m.nwt[w*K+k]) + m.cfg.Beta) /
		(float64(m.nt[k]) + m.cfg.Beta*float64(V))
}

// Perplexity computes the training-set perplexity — a sanity metric used in
// tests to check that fitting actually improves over a random assignment.
func (m *Model) Perplexity() float64 {
	K := m.cfg.Topics
	var logLik float64
	var tokens int
	for d, doc := range m.docs {
		nd := float64(m.docLen[d])
		for _, w := range doc {
			var pw float64
			for k := 0; k < K; k++ {
				theta := (float64(m.ndt[d*K+k]) + m.cfg.Alpha) /
					(nd + m.cfg.Alpha*float64(K))
				pw += theta * m.TopicWordProb(k, w)
			}
			logLik += log(pw)
			tokens++
		}
	}
	if tokens == 0 {
		return 0
	}
	return exp(-logLik / float64(tokens))
}

// Summary is one topic rendered for reporting.
type Summary struct {
	Topic int
	Share float64
	Words []string
}

// Summaries returns all topics with their shares and top words, sorted by
// descending share.
func (m *Model) Summaries(topN int) []Summary {
	shares := m.TopicShares()
	out := make([]Summary, m.cfg.Topics)
	for k := range out {
		out[k] = Summary{Topic: k, Share: shares[k], Words: m.TopWords(k, topN)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("topic %d (%.0f%%): %v", s.Topic, s.Share*100, s.Words)
}

// log and exp are tiny wrappers so the hot loop above reads cleanly.
func log(x float64) float64 { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
