package lda

import (
	"math"
	"testing"

	"msgscope/internal/analysis/textproc"
)

// coherenceFixture builds a corpus with hand-countable document
// frequencies and a one-topic model whose TopWords order is pinned by
// synthetic counts: apple(5) > banana(4) > cherry(3).
//
// Document frequencies over the 5 docs: D(apple)=3, D(banana)=2,
// D(cherry)=1, D(apple,banana)=1, cherry co-occurs with nothing.
func coherenceFixture(t *testing.T) (*Model, *textproc.Corpus) {
	t.Helper()
	c := textproc.NewCorpus(textproc.NewTokenizer(), []string{
		"apple banana",
		"apple",
		"apple",
		"banana",
		"cherry",
	})
	m := &Model{
		cfg:   Config{Topics: 1}.withDefaults(),
		vocab: c.Vocab,
		docs:  c.Docs,
		nwt:   make([]int, c.Vocab.Size()),
	}
	for w, n := range map[string]int{"apple": 5, "banana": 4, "cherry": 3} {
		id, ok := c.Vocab.Lookup(w)
		if !ok {
			t.Fatalf("fixture word %q missing from vocab", w)
		}
		m.nwt[id] = n
	}
	return m, c
}

// TestCoherenceUMassHandComputed pins UMass coherence to values computed
// by hand from the fixture's document counts.
func TestCoherenceUMassHandComputed(t *testing.T) {
	m, c := coherenceFixture(t)

	// Top-2 words: one pair (banana|apple) = log((D(a,b)+1)/D(a)) = log(2/3).
	if got, want := m.Coherence(c, 0, 2), math.Log(2.0/3.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("UMass top-2 = %v, want %v", got, want)
	}
	// Top-3 adds the two zero-co-occurrence cherry pairs:
	// log(1/D(apple)) and log(1/D(banana)).
	want := (math.Log(2.0/3.0) + math.Log(1.0/3.0) + math.Log(1.0/2.0)) / 3
	if got := m.Coherence(c, 0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("UMass top-3 = %v, want %v", got, want)
	}
}

// TestCoherenceNPMIHandComputed pins NPMI coherence to hand-computed
// values: the (apple,banana) pair from its exact probabilities, and the
// never-co-occurring cherry pairs at the −1 limit.
func TestCoherenceNPMIHandComputed(t *testing.T) {
	m, c := coherenceFixture(t)

	// p(a,b)=1/5, p(a)=3/5, p(b)=2/5 over N=5 docs:
	// NPMI = log(p(a,b)/(p(a)p(b))) / −log p(a,b) = log(5/6)/log(5).
	npmiAB := math.Log(5.0/6.0) / math.Log(5.0)
	if got := m.NPMICoherence(c, 0, 2); math.Abs(got-npmiAB) > 1e-12 {
		t.Errorf("NPMI top-2 = %v, want %v", got, npmiAB)
	}
	// Cherry pairs never co-occur: each contributes exactly −1.
	want := (npmiAB - 2) / 3
	if got := m.NPMICoherence(c, 0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("NPMI top-3 = %v, want %v", got, want)
	}
	if got := m.NPMICoherence(c, 0, 3); got < -1 || got > 1 {
		t.Errorf("NPMI %v outside [-1,1]", got)
	}
}

// TestCoherenceNPMIPerfectPair: two words appearing in exactly the same
// (strict subset of) documents approach the +1 limit exactly under
// document-count estimation.
func TestCoherenceNPMIPerfectPair(t *testing.T) {
	c := textproc.NewCorpus(textproc.NewTokenizer(), []string{
		"apple banana", "apple banana", "apple banana", "cherry",
	})
	m := &Model{
		cfg:   Config{Topics: 1}.withDefaults(),
		vocab: c.Vocab,
		docs:  c.Docs,
		nwt:   make([]int, c.Vocab.Size()),
	}
	for w, n := range map[string]int{"apple": 5, "banana": 4} {
		id, _ := c.Vocab.Lookup(w)
		m.nwt[id] = n
	}
	// p(a)=p(b)=p(a,b)=3/4: PMI = log(4/3) = −log p(a,b) exactly.
	if got := m.NPMICoherence(c, 0, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("NPMI of a perfectly co-occurring pair = %v, want 1", got)
	}
}

// TestCoherenceDegenerateNPMI mirrors the UMass degenerate cases.
func TestCoherenceDegenerateNPMI(t *testing.T) {
	m, c := coherenceFixture(t)
	if got := m.NPMICoherence(c, 0, 1); got != 0 {
		t.Errorf("single-word topic NPMI = %v, want 0", got)
	}
	empty := textproc.NewCorpus(textproc.NewTokenizer(), nil)
	me := &Model{cfg: Config{Topics: 1}.withDefaults(), vocab: empty.Vocab, nwt: []int{}}
	if got := me.NPMICoherence(empty, 0, 5); got != 0 {
		t.Errorf("empty-corpus NPMI = %v, want 0", got)
	}
}

// TestCoherenceParitySparseAlias is the topic-quality half of the alias
// gate: on the seed-42 paper-shaped corpus, converged sparse and alias
// fits must land in the same coherence basin under both measures — the
// MH chain may differ float-for-float, but not in topic quality.
func TestCoherenceParitySparseAlias(t *testing.T) {
	c := mixedCorpus(400)
	cfg := Config{Topics: 8, Iterations: 120, Seed: 42}
	sp := cfg
	sp.Sampler = SamplerSparse
	al := cfg
	al.Sampler = SamplerAlias
	ms, ma := Fit(c, sp), Fit(c, al)

	// One-sided gates: the MH chain may land in a different (even better)
	// local mode, but must not lose topic quality against the exact
	// conditional. Both scores are higher-is-better.
	us, ua := ms.MeanCoherence(c, 8), ma.MeanCoherence(c, 8)
	t.Logf("UMass: sparse %.4f alias %.4f", us, ua)
	if ua < us-0.25*math.Abs(us) {
		t.Errorf("alias UMass coherence worse than sparse: sparse %.4f alias %.4f", us, ua)
	}
	ns, na := ms.MeanNPMICoherence(c, 8), ma.MeanNPMICoherence(c, 8)
	t.Logf("NPMI: sparse %.4f alias %.4f", ns, na)
	if na < ns-0.15 {
		t.Errorf("alias NPMI coherence worse than sparse: sparse %.4f alias %.4f", ns, na)
	}
}
