package lda

import (
	"math"
	"math/bits"
	"testing"

	"msgscope/internal/analysis/textproc"
)

// recountExcluding recomputes the word-topic, doc-topic and topic-total
// counts of the sampler's live state from the raw assignment array, with
// token zi removed — the from-scratch ground truth for the ⁻ⁱ
// superscripts in the MH acceptance ratio.
func recountExcluding(st *aliasSampler, d, zi int) (nwt []int, ndt []int, nt []int) {
	m := st.m
	K := st.K
	nwt = make([]int, st.V*K)
	ndt = make([]int, K)
	nt = make([]int, K)
	for i := range st.z32 {
		if i == zi {
			continue
		}
		k := int(st.z32[i])
		nwt[int(st.tok32[i])*K+k]++
		nt[k]++
	}
	for i := m.docOff[d]; i < m.docOff[d]+m.docLen[d]; i++ {
		if i == zi {
			continue
		}
		ndt[int(st.z32[i])]++
	}
	return nwt, ndt, nt
}

// oracleSampleToken replays one MH token update from first principles:
// the conditional masses come from recountExcluding (not the sampler's
// count rows or cached reciprocals), the proposal replays the same RNG
// stream, and the acceptance uses the textbook ratio
// π = p⁻ⁱ(t)·q(s) / (p⁻ⁱ(s)·q(t)) with a sure accept at π ≥ 1. Returns
// the chosen topic and whether the accept test landed too close to its
// threshold to compare float implementations meaningfully.
func oracleSampleToken(st *aliasSampler, rng *aliasRng, d, zi, w, s int,
	gNWT, gNDT, gNT []int, wordStep bool) (topic int, ambiguous bool) {
	K := st.K
	cond := func(k int) float64 {
		return (float64(gNDT[k]) + st.alpha) *
			(float64(gNWT[w*K+k]) + st.beta) /
			(float64(gNT[k]) + st.betaV)
	}
	// Each token consumes exactly one RNG draw; the proposal and the
	// acceptance uniform split its bits (see sampleToken). The proposal
	// mechanics replay the sampler's; the oracle's independence is in the
	// recounted conditional masses and the textbook division-form ratio.
	var t int
	var qS, qT, uAcc float64
	if wordStep {
		hi, lo := bits.Mul64(rng.next(), uint64(K))
		cell := st.aliasCell[w*K+int(hi)]
		t = int(hi)
		if uint32(lo>>40) >= cell&(aliasOne-1) {
			t = int(cell >> 24)
		}
		if t == s {
			return s, false
		}
		uAcc = float64(lo&(1<<40-1)) * 0x1p-40
		// q_w is the stale distribution the table was built from.
		qS, qT = float64(st.wProp[w*K+s]), float64(st.wProp[w*K+t])
	} else {
		// q_d over the live assignments, which still include token zi at s.
		nd := st.m.docLen[d]
		fnd := float64(nd)
		r := rng.next()
		u := float64(r>>32) * 0x1p-32 * (fnd + st.alphaK)
		if u < fnd {
			t = int(st.z32[st.m.docOff[d]+int(u)])
		} else {
			t = int((u - fnd) * st.invAlpha)
			if t >= K {
				t = K - 1
			}
		}
		if t == s {
			return s, false
		}
		uAcc = float64(uint32(r)) * 0x1p-32
		qS = float64(gNDT[s]) + st.alpha + 1
		qT = float64(gNDT[t]) + st.alpha
	}
	// The sampler's word weights are float32 (wProp) and it groups the
	// float64 products differently from the oracle's recount-based math,
	// so a decision within ~1e-7 relative of the threshold can
	// legitimately differ between the two. The ambiguity band is 1e-6 —
	// an order of magnitude of margin, still well under 1% of draws.
	lhs, rhs := cond(t)*qS, cond(s)*qT
	if closeRel(lhs, rhs, 1e-6) {
		ambiguous = true
	}
	if lhs >= rhs {
		return t, ambiguous
	}
	if closeRel(uAcc*rhs, lhs, 1e-6) {
		ambiguous = true
	}
	if uAcc*rhs < lhs {
		return t, ambiguous
	}
	return s, ambiguous
}

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return m > 0 && d/m < tol
}

// TestAliasAcceptanceOracle is the exact-acceptance-ratio unit oracle:
// token by token over a partially mixed state, sampleToken must land on
// the same topic as a from-first-principles replay whose conditional
// masses are recounted from the raw assignment array and whose acceptance
// uses the textbook division-form MH ratio. Covers both the packed-row
// and dense-row layouts.
func TestAliasAcceptanceOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		K    int
	}{{"K7", 7}, {"K20", 20}} {
		t.Run(tc.name, func(t *testing.T) {
			c := mixedCorpus(150)
			cfg := Config{Topics: tc.K, Iterations: 1, Seed: 11}.withDefaults()
			m := newModel(c, cfg)
			st := newAliasSampler(m)
			st.initAssignments()
			st.rebuildTables(true)
			st.refresh()

			// wProp must encode exactly the smoothed counts the tables were
			// built from — the acceptance ratio is only exact against the
			// distribution actually proposed.
			for w := 0; w < st.V; w++ {
				for k := 0; k < st.K; k++ {
					want := float32(float64(st.wtCount(w, k)) + st.beta)
					if got := st.wProp[w*st.K+k]; got != want {
						t.Fatalf("wProp[%d,%d] = %v, want %v", w, k, got, want)
					}
				}
			}

			checked, skipped := 0, 0
			for ci := range st.chunks {
				ck := &st.chunks[ci]
				for d := ck.lo; d < ck.hi; d++ {
					if len(m.docs[d]) == 0 {
						continue
					}
					off := m.docOff[d]
					ndtRow := st.ndt[d*st.K:]
					zd := st.z32[off:]
					for zi := off; zi < off+len(m.docs[d]); zi++ {
						w := int(st.tok32[zi])
						s := int(st.z32[zi])
						gNWT, gNDT, gNT := recountExcluding(st, d, zi)
						for _, wordStep := range []bool{true, false} {
							rngA, rngB := ck.rng, ck.rng
							ndtRow[s]--
							got := st.sampleToken(&rngA, zd, len(m.docs[d]), ndtRow, w, s, wordStep)
							ndtRow[s]++
							want, ambiguous := oracleSampleToken(st, &rngB, d, zi, w, s, gNWT, gNDT, gNT, wordStep)
							if ambiguous {
								skipped++
							} else if got != want {
								t.Fatalf("doc %d token %d (w=%d s=%d wordStep=%v): sampleToken=%d oracle=%d",
									d, zi-off, w, s, wordStep, got, want)
							}
							// Advance the real stream so each token sees fresh
							// randomness, leaving counts untouched.
							ck.rng = rngA
							checked++
						}
					}
				}
			}
			if checked < 500 {
				t.Fatalf("only %d tokens checked", checked)
			}
			if skipped > checked/100 {
				t.Fatalf("%d/%d accept tests ambiguous — oracle not discriminating", skipped, checked)
			}
		})
	}
}

// TestAliasFusedMatchesFactored pins the fused sweeps to the factored
// sampleToken reference float for float: a full fit driven through
// sampleToken must reproduce the production fit byte for byte, in both
// word-topic layouts.
func TestAliasFusedMatchesFactored(t *testing.T) {
	for _, K := range []int{6, 20} {
		c := mixedCorpus(300)
		cfg := Config{Topics: K, Iterations: 15, Seed: 3, Workers: 1, Sampler: SamplerAlias}
		base := Fit(c, cfg)
		m := fitAliasFactored(c, cfg.withDefaults())
		if !equalInts(base.z, m.z) || !equalInts(base.nwt, m.nwt) ||
			!equalInts(base.ndt, m.ndt) || !equalInts(base.nt, m.nt) {
			t.Errorf("K=%d: fused alias sweep diverges from factored sampleToken reference", K)
		}
	}
}

// fitAliasFactored mirrors fitAlias with the per-token work routed
// through the factored sampleToken instead of the fused sweeps.
func fitAliasFactored(c *textproc.Corpus, cfg Config) *Model {
	m := newModel(c, cfg)
	if len(m.z) == 0 {
		return m
	}
	st := newAliasSampler(m)
	st.initAssignments()
	st.rebuildTables(true)
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.refresh()
		wordStep := aliasWordStep(iter)
		for ci := range st.chunks {
			ck := &st.chunks[ci]
			for d := ck.lo; d < ck.hi; d++ {
				nd := len(m.docs[d])
				if nd == 0 {
					continue
				}
				off := m.docOff[d]
				ndtRow := st.ndt[d*st.K:]
				zd := st.z32[off:]
				for zi := off; zi < off+nd; zi++ {
					w := int(st.tok32[zi])
					s := int(st.z32[zi])
					ndtRow[s]--
					cur := st.sampleToken(&ck.rng, zd, nd, ndtRow, w, s, wordStep)
					ndtRow[cur]++
					if cur != s {
						st.z32[zi] = int32(cur)
						ck.deltas = append(ck.deltas, tdelta{w: int32(w), from: uint8(s), to: uint8(cur)})
					}
				}
			}
		}
		st.merge()
		if (iter+1)%aliasRebuildSweeps == 0 {
			st.rebuildTables(false)
		}
	}
	st.finish()
	return m
}

// TestAliasMatchesDensePerplexity is the convergence gate: alias-MH is a
// different Markov chain than the exact-conditional samplers, so instead
// of float identity the converged fit must reach the same perplexity
// basin as the dense oracle (same tolerance the sparse sampler is held
// to), in both layouts.
func TestAliasMatchesDensePerplexity(t *testing.T) {
	c := mixedCorpus(400)
	for _, K := range []int{8, 20} {
		cfg := Config{Topics: K, Iterations: 120, Seed: 42}
		dense := cfg
		dense.Sampler = SamplerDense
		alias := cfg
		alias.Sampler = SamplerAlias
		pd := Fit(c, dense).Perplexity()
		pa := Fit(c, alias).Perplexity()
		if math.Abs(pd-pa)/pd > 0.10 {
			t.Errorf("K=%d: converged perplexity diverges: dense %.2f alias %.2f", K, pd, pa)
		}
	}
}

// TestAliasWorkersByteIdentical is the determinism contract on the alias
// path: any worker count, byte-identical fitted model — in both layouts,
// including worker counts far above the chunk count.
func TestAliasWorkersByteIdentical(t *testing.T) {
	c := mixedCorpus(900) // 4 chunks
	for _, K := range []int{9, 20} {
		base := Fit(c, Config{Topics: K, Iterations: 25, Seed: 17, Workers: 1, Sampler: SamplerAlias})
		for _, workers := range []int{2, 3, 4, 16} {
			m := Fit(c, Config{Topics: K, Iterations: 25, Seed: 17, Workers: workers, Sampler: SamplerAlias})
			if !equalInts(base.z, m.z) || !equalInts(base.nwt, m.nwt) ||
				!equalInts(base.ndt, m.ndt) || !equalInts(base.nt, m.nt) {
				t.Errorf("K=%d workers=%d: fitted model diverges from serial fit", K, workers)
			}
		}
	}
}

// TestAliasCountInvariants refits and recounts: the model's count arrays
// must exactly reflect the final assignment array.
func TestAliasCountInvariants(t *testing.T) {
	c := mixedCorpus(250)
	for _, K := range []int{5, 20} {
		m := Fit(c, Config{Topics: K, Iterations: 10, Seed: 23, Sampler: SamplerAlias})
		nwt := make([]int, len(m.nwt))
		ndt := make([]int, len(m.ndt))
		nt := make([]int, K)
		for d, doc := range m.docs {
			zd := m.z[m.docOff[d]:]
			for i, w := range doc {
				k := zd[i]
				nwt[w*K+k]++
				ndt[d*K+k]++
				nt[k]++
			}
		}
		if !equalInts(nwt, m.nwt) || !equalInts(ndt, m.ndt) || !equalInts(nt, m.nt) {
			t.Errorf("K=%d: fitted counts do not match assignments", K)
		}
	}
}

// TestAliasStaleRebuild pins the stale-counter contract: immediately
// after a rebuild barrier, every word's wProp matches its live counts;
// between barriers it may drift (that's the point of staleness).
func TestAliasStaleRebuild(t *testing.T) {
	c := mixedCorpus(200)
	cfg := Config{Topics: 6, Iterations: 1, Seed: 9}.withDefaults()
	m := newModel(c, cfg)
	st := newAliasSampler(m)
	st.initAssignments()
	st.rebuildTables(true)
	for iter := 0; iter < 2*aliasRebuildSweeps; iter++ {
		st.refresh()
		for ci := range st.chunks {
			st.sweepChunk(&st.chunks[ci], aliasWordStep(iter))
		}
		st.merge()
		if (iter+1)%aliasRebuildSweeps == 0 {
			st.rebuildTables(false)
			for w := 0; w < st.V; w++ {
				if st.stale[w] != 0 {
					t.Fatalf("iter %d: word %d still stale after rebuild", iter, w)
				}
				for k := 0; k < st.K; k++ {
					want := float32(float64(st.wtCount(w, k)) + st.beta)
					if got := st.wProp[w*st.K+k]; got != want {
						t.Fatalf("iter %d: wProp[%d,%d]=%v want %v after rebuild", iter, w, k, got, want)
					}
				}
			}
		}
	}
}

// TestAliasTopicCeiling: K above aliasMaxK must fall back to the dense
// reference rather than overflow the uint8 delta encoding.
func TestAliasTopicCeiling(t *testing.T) {
	c := mixedCorpus(60)
	m := Fit(c, Config{Topics: aliasMaxK + 1, Iterations: 2, Seed: 1, Sampler: SamplerAlias})
	ref := Fit(c, Config{Topics: aliasMaxK + 1, Iterations: 2, Seed: 1, Sampler: SamplerDense})
	if !equalInts(m.z, ref.z) {
		t.Error("K > aliasMaxK should route to the dense sampler")
	}
}

// FuzzAliasTable fuzzes the Vose construction: for arbitrary positive
// weight vectors, the implied per-topic probability of the built table
// must match the normalized input distribution within float32 rounding,
// every alias index must stay in range, and a batch of real draws must
// never index out of bounds.
func FuzzAliasTable(f *testing.F) {
	f.Add(uint64(1), []byte{1})
	f.Add(uint64(42), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(7), []byte{255, 1, 255, 1, 0, 0, 128})
	f.Add(uint64(99), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		// aliasMaxK bounds the cell's 8-bit alias field; weight vectors
		// longer than a real table can never be built.
		if len(raw) == 0 || len(raw) > aliasMaxK {
			t.Skip()
		}
		n := len(raw)
		p := make([]float64, n)
		total := 0.0
		for i, b := range raw {
			p[i] = float64(b) + 0.01 // strictly positive, β-smoothed shape
			total += p[i]
		}
		want := make([]float64, n)
		for i := range p {
			want[i] = p[i] / total
		}

		cells := make([]uint32, n)
		voseBuild(p, cells, make([]int32, n), make([]int32, n))

		implied := make([]float64, n)
		for j := 0; j < n; j++ {
			aliasIdx := int(cells[j] >> 24)
			thresh := cells[j] & (aliasOne - 1)
			if aliasIdx >= n {
				t.Fatalf("alias[%d] = %d out of range (n=%d)", j, aliasIdx, n)
			}
			prob := float64(thresh) / aliasOne
			implied[j] += prob / float64(n)
			implied[aliasIdx] += (1 - prob) / float64(n)
		}
		// Each cell contributes one 24-bit fixed-point rounding of at most
		// 2⁻²⁵; n cells plus the normalization give the bound.
		tol := float64(n+2) * 7e-8
		for k := range want {
			if math.Abs(implied[k]-want[k]) > tol {
				t.Fatalf("implied[%d] = %v, want %v (n=%d, |Δ|=%.3g > %.3g)",
					k, implied[k], want[k], n, math.Abs(implied[k]-want[k]), tol)
			}
		}

		// Draws must stay in range for any RNG stream.
		st := &aliasSampler{K: n, aliasCell: cells}
		rng := newAliasRng(seed)
		for i := 0; i < 200; i++ {
			if k := st.drawAlias(&rng, 0); k < 0 || k >= n {
				t.Fatalf("draw %d: topic %d out of range", i, k)
			}
		}
	})
}
