// The alias-table Metropolis–Hastings sampler (LightLDA-style: Yuan et
// al., WWW 2015). Instead of computing the collapsed Gibbs conditional
//
//	p(z=k | ·) ∝ (ndt[d][k]+α)(nwt[w][k]+β) / (nt[k]+βV)
//
// per token (O(K) dense, O(nonzero) sparse), each token draws a proposal
// from a cheap distribution covering one factor of the conditional and
// corrects it with a Metropolis–Hastings acceptance step:
//
//   - doc proposal  q_d(k) ∝ ndt[d][k]+α — drawn in O(1) by picking a
//     uniform token of the document and taking its current topic (the
//     ndt[d] part), mixed with a uniform topic (the α part);
//   - word proposal q_w(k) ∝ nwt[w][k]+β — drawn in O(1) from a per-word
//     alias table (Vose 1991) built over the word's topic counts.
//
// Sweeps alternate which proposal they use (word on even iterations, doc
// on odd), cycling the MH kernel across the corpus — each proposal mixes
// the factor it covers, and the acceptance ratio keeps every step exact
// against the full conditional. One proposal per token per sweep instead
// of two halves the per-token cost; the chain needs both kinds of sweep
// to mix, and the convergence gates (perplexity and coherence parity
// against the dense oracle) hold at the iteration counts the repo runs.
//
// Per-token cost is O(1) in K: one RNG draw for the proposal, and — only
// when the proposal differs from the current topic — two conditional
// masses (four array loads, a handful of multiplications, no divisions:
// the acceptance cross-multiplies and the only reciprocals, 1/(nt[k]+βV),
// are cached per sweep). The acceptance ratio for proposal t against
// current topic s, with the token excluded from all counts (⁻ⁱ), is
//
//	π = p⁻ⁱ(t)·q(s) / (p⁻ⁱ(s)·q(t))
//
// accepted when u·p⁻ⁱ(s)·q(t) < p⁻ⁱ(t)·q(s) for uniform u — drawn only
// when the ratio is below one (an uphill move accepts surely, no draw).
// q is the proposal actually drawn from: the doc proposal includes the
// current token in its counts, because the token trick samples the live
// assignment array; the word proposal is the stale table distribution.
//
// The alias tables are deliberately stale: a rebuild costs O(K) per word,
// so tables rebuild only every aliasRebuildSweeps iterations, and only
// for words whose counts actually moved (a per-word stale counter fed by
// the merge). MH stays exact under a stale proposal as long as the
// acceptance ratio uses the same stale weights the table was built from —
// wProp keeps them. Word-topic counts live in dense int32 rows rather
// than the sparse sampler's packed rows: the MH acceptance needs random
// O(1) count lookups, not nonzero enumeration, and at the paper's K a
// dense row still fits one cache line (the packed scan measured ~40%
// slower here; DESIGN.md §15 records the experiment).
//
// Parallelism reuses the sparse sampler's determinism machinery
// unchanged (sparse.go): fixed 256-document chunks with per-chunk
// SplitMix64 streams, frozen global counts during a sweep, and a serial
// iteration-barrier delta merge — so the fitted model is byte-identical
// at any Config.Workers. Alias tables rebuild only at the barrier, on a
// schedule depending only on the iteration index and merged counts.
// Unlike dense/sparse, the alias chain is a *different* Markov chain over
// the same stationary distribution: tests gate it on converged
// perplexity/coherence parity against the dense oracle plus an
// exact-acceptance-ratio unit oracle, not on float identity.
package lda

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"msgscope/internal/analysis/textproc"
)

// aliasMaxK bounds the alias path's topic count: merge deltas pack topics
// into a uint8 (tdelta), so 256 topics is the ceiling. Larger K falls
// back to the dense reference sampler.
const aliasMaxK = 256

// aliasRebuildSweeps is how many sweeps a word's alias table may serve
// before the stale counter is honored and the table rebuilt. Rebuilding
// every sweep would cost O(V·K) per sweep — comparable to the sweep
// itself on a tweet-shaped corpus, where V·K is within a small factor of
// the token count; every 4th sweep amortizes the build to noise while
// the acceptance step keeps the chain exact under the staleness. Part of
// the determinism contract: the rebuild schedule depends only on the
// iteration index and the merged counts, never on worker scheduling.
const aliasRebuildSweeps = 4

// aliasRng is the alias chain's per-chunk generator: a 128-bit
// multiplicative Lehmer generator — state *= M, return the high half.
// Two multiplies and an add per draw, ~4 cycles of latency against
// SplitMix64's ~12: every token's proposal sits on the serial RNG
// dependency chain, so draw latency is sweep throughput. A separate type
// from the sparse sampler's rngState keeps the sparse chain (and every
// golden output derived from it) byte-identical to before.
type aliasRng struct{ lo, hi uint64 }

const lehmerMul = 0xda942042e4dd58b5

// newAliasRng expands a 64-bit stream seed into Lehmer state through
// SplitMix64, forcing the low word odd (the generator is multiplicative
// mod 2^128; odd state keeps it on the maximal orbit).
func newAliasRng(seed uint64) aliasRng {
	s := rngState(seed)
	lo := s.next() | 1
	return aliasRng{lo: lo, hi: s.next()}
}

func (r *aliasRng) next() uint64 {
	hi1, lo1 := bits.Mul64(r.lo, lehmerMul)
	r.hi = r.hi*lehmerMul + hi1
	r.lo = lo1
	return r.hi
}

func (r *aliasRng) float64() float64 { return float64(r.next()>>11) * 0x1p-53 }

func (r *aliasRng) intN(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// aliasChunk is one fixed 256-document span with its own RNG stream and
// transition log — the alias twin of sparse.go's chunkState.
type aliasChunk struct {
	lo, hi int
	rng    aliasRng
	deltas []tdelta
}

// aliasSampler is the sampler state layered over a Model's count arrays.
type aliasSampler struct {
	m    *Model
	K, V int

	alpha, beta   float64
	alphaK, betaV float64
	invAlpha      float64

	ndt   []int32 // chunk-owned doc-topic counts, [d*K+k]
	z32   []int32 // topic assignments, flattened doc-major
	tok32 []int32 // corpus word ids, flattened doc-major
	nwt32 []int32 // dense word-topic rows, [w*K+k]; frozen during a sweep

	invDenom   []float64 // 1/(nt[k]+βV), refreshed per iteration
	invDenomM1 []float64 // 1/(nt[k]-1+βV); only valid where nt[k] ≥ 1

	// The alias tables, one packed cell per [w*K+topic] (Vose
	// construction): the low 24 bits are the cell's acceptance threshold
	// in fixed point (2^24 = keep surely), the top 8 the alias topic —
	// aliasMaxK is 256 exactly so the alias index fits, and the whole
	// cell is 4 bytes, halving the table footprint a random draw has to
	// keep cache-resident. The keep/alias test is a single integer
	// compare against the draw's spare low bits (no int→float conversion
	// on the hot path). A draw picks cell j uniformly, keeps j when the
	// 24-bit fraction is below the threshold and takes the alias
	// otherwise. wProp holds the stale weights (count+β at build time)
	// the table encodes — the acceptance ratio must use the distribution
	// actually proposed from, not the fresh counts.
	aliasCell []uint32
	wProp     []float32
	stale     []int32 // per-word count moves since the last table build

	// Vose construction scratch, reused across builds.
	voseP     []float64
	voseSmall []int32
	voseLarge []int32

	chunks []aliasChunk
}

func newAliasSampler(m *Model) *aliasSampler {
	K := m.cfg.Topics
	V := m.vocab.Size()
	st := &aliasSampler{
		m:          m,
		K:          K,
		V:          V,
		alpha:      m.cfg.Alpha,
		beta:       m.cfg.Beta,
		alphaK:     m.cfg.Alpha * float64(K),
		betaV:      m.cfg.Beta * float64(V),
		invAlpha:   1 / m.cfg.Alpha,
		ndt:        make([]int32, len(m.docs)*K),
		z32:        make([]int32, len(m.z)),
		tok32:      make([]int32, len(m.z)),
		nwt32:      make([]int32, V*K),
		invDenom:   make([]float64, K),
		invDenomM1: make([]float64, K),
		aliasCell:  make([]uint32, V*K),
		wProp:      make([]float32, V*K),
		stale:      make([]int32, V),
		voseP:      make([]float64, K),
		voseSmall:  make([]int32, K),
		voseLarge:  make([]int32, K),
	}
	for d, doc := range m.docs {
		off := m.docOff[d]
		for i, w := range doc {
			st.tok32[off+i] = int32(w)
		}
	}
	nChunks := (len(m.docs) + sparseChunkDocs - 1) / sparseChunkDocs
	st.chunks = make([]aliasChunk, nChunks)
	for ci := range st.chunks {
		lo := ci * sparseChunkDocs
		hi := lo + sparseChunkDocs
		if hi > len(m.docs) {
			hi = len(m.docs)
		}
		toks := m.docOff[hi-1] + m.docLen[hi-1] - m.docOff[lo]
		st.chunks[ci] = aliasChunk{
			lo: lo, hi: hi,
			rng:    newAliasRng(m.cfg.Seed*0xD1342543DE82EF95 ^ chunkStream(ci)),
			deltas: make([]tdelta, 0, toks),
		}
	}
	return st
}

// initAssignments draws the initial topic of every token from its chunk's
// own stream — worker-count independent, like the sweeps.
func (st *aliasSampler) initAssignments() {
	K, m := st.K, st.m
	for ci := range st.chunks {
		ck := &st.chunks[ci]
		for d := ck.lo; d < ck.hi; d++ {
			zd := st.z32[m.docOff[d]:]
			for i, w := range m.docs[d] {
				k := ck.rng.intN(K)
				zd[i] = int32(k)
				st.nwt32[w*K+k]++
				st.ndt[d*K+k]++
				m.nt[k]++
			}
		}
	}
}

// refresh recomputes the cached inverse denominators from the per-topic
// totals. Called once per iteration, between the merge and the next
// sweep; O(K). (A per-sweep O(V·K) precompute of the full word factors
// (nwt+β)·inv was tried here and lost: on a tweet-shaped corpus V·K is
// within a small factor of the per-sweep token count, so the refresh
// cost rivals the sweep and the doubled table footprint evicts the alias
// cells; DESIGN.md §15 records the experiment.)
func (st *aliasSampler) refresh() {
	for k := 0; k < st.K; k++ {
		den := float64(st.m.nt[k]) + st.betaV
		st.invDenom[k] = 1 / den
		st.invDenomM1[k] = 1 / (den - 1)
	}
}

// wtCount returns the frozen word-topic count.
func (st *aliasSampler) wtCount(w, k int) int32 { return st.nwt32[w*st.K+k] }

// rebuildTables rebuilds the per-word alias tables — all words when all
// is set (the initial build), otherwise only words whose stale counter
// shows merged count moves since their last build. Runs serially at the
// iteration barrier, so the tables every chunk samples from next sweep
// are identical at any worker count.
func (st *aliasSampler) rebuildTables(all bool) {
	for w := 0; w < st.V; w++ {
		if !all && st.stale[w] == 0 {
			continue
		}
		st.stale[w] = 0
		st.buildWord(w)
	}
}

// buildWord gathers word w's smoothed topic weights and runs the Vose
// construction into the word's alias cells, recording the weights in
// wProp for the acceptance ratio.
func (st *aliasSampler) buildWord(w int) {
	K := st.K
	p := st.voseP
	off := w * K
	wp := st.wProp[off : off+K]
	for k := 0; k < K; k++ {
		p[k] = float64(st.nwt32[off+k]) + st.beta
		wp[k] = float32(p[k])
	}
	voseBuild(p, st.aliasCell[off:off+K], st.voseSmall, st.voseLarge)
}

// aliasOne is the 24-bit fixed-point "keep surely" threshold. It is
// representable in a cell (the threshold field is the low 24 bits, and a
// cell whose threshold saturates keeps itself, so its alias field is its
// own index and the 25th bit can safely carry into it — but aliasThresh
// clamps so it never does for a non-self alias).
const aliasOne = 1 << 24

// aliasThresh rounds a cell probability in [0,1) to its 24-bit
// fixed-point acceptance threshold, clamped below the saturating value so
// the alias field stays intact.
func aliasThresh(p float64) uint32 {
	t := uint32(p*aliasOne + 0.5)
	if t >= aliasOne {
		t = aliasOne - 1
	}
	return t
}

// voseBuild runs Vose's O(K) alias construction over the (unnormalized,
// strictly positive) weights in p, filling each 32-bit cell with its
// packed (8-bit alias index, 24-bit fixed-point threshold) pair. p is
// consumed as scratch. small and large are caller-provided worklists of
// len(p). The implied per-cell distribution matches p/Σp to fixed-point
// rounding — FuzzAliasTable pins the bound.
func voseBuild(p []float64, cells []uint32, small, large []int32) {
	n := len(p)
	total := 0.0
	for _, v := range p {
		total += v
	}
	scale := float64(n) / total
	nS, nL := 0, 0
	for k, v := range p {
		p[k] = v * scale
		if p[k] < 1 {
			small[nS] = int32(k)
			nS++
		} else {
			large[nL] = int32(k)
			nL++
		}
	}
	for nS > 0 && nL > 0 {
		nS--
		nL--
		s, l := small[nS], large[nL]
		cells[s] = uint32(l)<<24 | aliasThresh(p[s])
		p[l] -= 1 - p[s]
		if p[l] < 1 {
			small[nS] = l
			nS++
		} else {
			large[nL] = l
			nL++
		}
	}
	// Leftovers are 1 up to rounding: they keep their own cell — the
	// saturated threshold's 2⁻²⁴ leak lands on the self-alias, so the
	// keep is still sure.
	for nL > 0 {
		nL--
		cells[large[nL]] = uint32(large[nL])<<24 | (aliasOne - 1)
	}
	for nS > 0 {
		nS--
		cells[small[nS]] = uint32(small[nS])<<24 | (aliasOne - 1)
	}
}

// drawAlias draws a topic from word w's alias table with one RNG draw:
// the high bits of a fixed-point multiply pick the cell, and the top 24
// of the remainder of that same multiply are the uniform fraction tested
// against the cell's threshold (uniform conditional on the cell by
// construction) — one integer compare, no float conversion.
func (st *aliasSampler) drawAlias(rng *aliasRng, w int) int {
	hi, lo := bits.Mul64(rng.next(), uint64(st.K))
	cell := st.aliasCell[w*st.K+int(hi)]
	if uint32(lo>>40) < cell&(aliasOne-1) {
		return int(hi)
	}
	return int(cell >> 24)
}

// condMass is p⁻ⁱ(k): the collapsed conditional's unnormalized mass for
// topic k with the current token (assigned s in the frozen counts)
// excluded. The factored reference the fused sweep must match float for
// float, and the surface the acceptance-ratio oracle tests drive.
func (st *aliasSampler) condMass(ndtRow []int32, w, s, k int) float64 {
	cnt := float64(st.wtCount(w, k))
	inv := st.invDenom[k]
	if k == s {
		cnt--
		inv = st.invDenomM1[k]
	}
	return (float64(ndtRow[k]) + st.alpha) * (cnt + st.beta) * inv
}

// sampleToken runs one MH step for a detached token (ndtRow excludes it;
// the frozen global counts still include its assignment s): a word
// proposal when wordStep, a doc proposal otherwise, accepted by the exact
// ratio. Factored reference of the fused sweep.
//
// Each token consumes exactly one RNG draw: the proposal and the
// acceptance uniform come from disjoint bit ranges of the same 64-bit
// output (word step: top 24 spare bits of the cell multiply's remainder
// pick keep/alias, the low 40 are the acceptance uniform; doc step: the
// high 32 bits drive the token trick, the low 32 are the acceptance
// uniform). Disjoint bit ranges of one uniform word are independent
// uniforms, and one unconditional draw per token keeps the serial RNG
// recurrence free of control dependence — the chain runs ahead of the
// acceptance branches instead of stalling on them.
func (st *aliasSampler) sampleToken(rng *aliasRng, zd []int32, nd int, ndtRow []int32, w, s int, wordStep bool) int {
	K := st.K
	var lhs, rhs float64
	var uAcc float64
	var t int
	if wordStep {
		hi, lo := bits.Mul64(rng.next(), uint64(K))
		cell := st.aliasCell[w*K+int(hi)]
		t = int(hi)
		if uint32(lo>>40) >= cell&(aliasOne-1) {
			t = int(cell >> 24)
		}
		if t == s {
			return s
		}
		uAcc = float64(lo&(1<<40-1)) * 0x1p-40
		wp := st.wProp[w*K:]
		pS := st.condMass(ndtRow, w, s, s)
		pT := st.condMass(ndtRow, w, s, t)
		lhs, rhs = pT*float64(wp[s]), pS*float64(wp[t])
		if lhs >= rhs || uAcc*rhs < lhs {
			return t
		}
		return s
	}
	// q_d(k) ∝ ndt⁺ⁱ[k]+α, drawn via the token trick over the live
	// assignments (which still include this token at s).
	r := rng.next()
	fnd := float64(nd)
	u := float64(r>>32) * 0x1p-32 * (fnd + st.alphaK)
	if u < fnd {
		t = int(zd[int(u)])
	} else {
		t = int((u - fnd) * st.invAlpha)
		if t >= K {
			t = K - 1
		}
	}
	if t == s {
		return s
	}
	uAcc = float64(uint32(r)) * 0x1p-32
	// The doc factor ndt⁻ⁱ[t]+α appears in both p⁻ⁱ(t) and q_d(t), and
	// cancels out of the ratio — the t entry of the doc-topic row is
	// never read. With A = ndt⁻ⁱ[s]+α:
	//
	//	π = (nwt[t]+β)·inv[t]·(A+1) / (A·(nwt⁻ⁱ[s]+β)·invM1[s])
	A := float64(ndtRow[s]) + st.alpha
	lhs = (float64(st.nwt32[w*K+t]) + st.beta) * st.invDenom[t] * (A + 1)
	rhs = A * (float64(st.nwt32[w*K+s]) - 1 + st.beta) * st.invDenomM1[s]
	if lhs >= rhs || uAcc*rhs < lhs {
		return t
	}
	return s
}

// sweepChunk resamples every token of one chunk against the frozen global
// counts, recording transitions for the barrier merge. The production
// loops are fused: float-for-float they perform exactly the detach →
// sampleToken → attach sequence above (pinned by
// TestAliasFusedMatchesFactored), with hot fields hoisted, the
// detach/attach folded into the accept path, the conditional masses
// computed only when the proposal differs from the current topic (an
// equal proposal is a no-op, and once the chain concentrates most word
// proposals land on the current topic — the early-out runs before any
// word-row load), and the word/doc steps split into separate loops so
// neither pays the other's branch or register pressure.
// aliasWordStep picks the proposal kind for a sweep: two word-proposal
// sweeps for every doc-proposal sweep. On tweet-length documents the doc
// proposal is weakly informative — with α = 50/K and nd ≈ 14 tokens,
// αK ≫ nd, so most doc-proposal draws land in the smoothing mass and
// propose a uniform topic. The word proposal carries nearly all the
// mixing, so it gets the extra turn; the cycle still visits both
// proposals, which the cycling-MH correctness argument requires.
func aliasWordStep(iter int) bool { return iter%3 != 2 }

func (st *aliasSampler) sweepChunk(ck *aliasChunk, wordStep bool) {
	if wordStep {
		st.sweepChunkWord(ck)
	} else {
		st.sweepChunkDoc(ck)
	}
}

// sweepChunkWord is the word-proposal (even-iteration) sweep: one alias
// draw per token, acceptance against the stale table weights.
func (st *aliasSampler) sweepChunkWord(ck *aliasChunk) {
	K := st.K
	alpha, beta := st.alpha, st.beta
	invDenom, invDenomM1 := st.invDenom, st.invDenomM1
	nwt32 := st.nwt32
	aliasCell, wProp := st.aliasCell, st.wProp
	ndt, z32, tok32 := st.ndt, st.z32, st.tok32
	rng := &ck.rng
	m := st.m

	for d := ck.lo; d < ck.hi; d++ {
		nd := len(m.docs[d])
		if nd == 0 {
			continue
		}
		off := m.docOff[d]
		ndtRow := ndt[d*K : d*K+K]
		zd := z32[off : off+nd]
		tk := tok32[off : off+nd : off+nd]
		for i, sv := range zd {
			w := int(tk[i])
			s := int(sv)
			base := w * K
			hi, lo := bits.Mul64(rng.next(), uint64(K))
			cell := aliasCell[base+int(hi)]
			t := int(hi)
			if uint32(lo>>40) >= cell&(aliasOne-1) {
				t = int(cell >> 24)
			}
			if t == s {
				continue
			}
			// p⁻ⁱ: detach the token from the s entries inline. The
			// acceptance uniform is the proposal draw's spare low bits
			// (see sampleToken).
			wRow := nwt32[base : base+K]
			wpRow := wProp[base : base+K]
			pS := (float64(ndtRow[s]) - 1 + alpha) * (float64(wRow[s]) - 1 + beta) * invDenomM1[s]
			pT := (float64(ndtRow[t]) + alpha) * (float64(wRow[t]) + beta) * invDenom[t]
			lhs, rhs := pT*float64(wpRow[s]), pS*float64(wpRow[t])
			if lhs >= rhs || float64(lo&(1<<40-1))*0x1p-40*rhs < lhs {
				ndtRow[s]--
				ndtRow[t]++
				zd[i] = int32(t)
				ck.deltas = append(ck.deltas, tdelta{w: int32(w), from: uint8(s), to: uint8(t)})
			}
		}
	}
}

// sweepChunkDoc is the doc-proposal (odd-iteration) sweep: the token
// trick over the live assignment array, acceptance with the doc factor
// cancelled.
func (st *aliasSampler) sweepChunkDoc(ck *aliasChunk) {
	K := st.K
	alpha, beta := st.alpha, st.beta
	alphaK, invAlpha := st.alphaK, st.invAlpha
	invDenom, invDenomM1 := st.invDenom, st.invDenomM1
	nwt32 := st.nwt32
	ndt, z32, tok32 := st.ndt, st.z32, st.tok32
	rng := &ck.rng
	m := st.m

	for d := ck.lo; d < ck.hi; d++ {
		nd := len(m.docs[d])
		if nd == 0 {
			continue
		}
		off := m.docOff[d]
		ndtRow := ndt[d*K : d*K+K]
		zd := z32[off : off+nd]
		tk := tok32[off : off+nd : off+nd]
		fnd := float64(nd)
		for i, sv := range zd {
			s := int(sv)
			// Load the word's s count before the proposal draw: nwt32 is
			// frozen during the sweep, so the value is the same either
			// side, and issuing the load here overlaps its cache miss
			// with the RNG dependency chain below.
			w := int(tk[i])
			base := w * K
			cwS := nwt32[base+s]
			r := rng.next()
			u := float64(r>>32) * 0x1p-32 * (fnd + alphaK)
			var t int
			if u < fnd {
				t = int(zd[int(u)])
			} else {
				t = int((u - fnd) * invAlpha)
				if t >= K {
					t = K - 1
				}
			}
			if t == s {
				continue
			}
			// Cancelled doc ratio (see sampleToken): ndtRow[t] is never
			// read. ndtRow still holds the token here, so A = ndt⁻ⁱ[s]+α
			// detaches inline — float-identical to the factored order.
			// The acceptance uniform is the draw's low 32 bits.
			A := float64(ndtRow[s]) - 1 + alpha
			lhs := (float64(nwt32[base+t]) + beta) * invDenom[t] * (A + 1)
			rhs := A * (float64(cwS) - 1 + beta) * invDenomM1[s]
			if lhs >= rhs || float64(uint32(r))*0x1p-32*rhs < lhs {
				ndtRow[s]--
				ndtRow[t]++
				zd[i] = int32(t)
				ck.deltas = append(ck.deltas, tdelta{w: int32(w), from: uint8(s), to: uint8(t)})
			}
		}
	}
}

// merge folds every chunk's transitions into the frozen global state,
// serially in fixed chunk order, bumping the per-word stale counters.
func (st *aliasSampler) merge() {
	for ci := range st.chunks {
		ck := &st.chunks[ci]
		for _, dl := range ck.deltas {
			st.m.nt[dl.from]--
			st.m.nt[dl.to]++
			w := int(dl.w)
			st.nwt32[w*st.K+int(dl.from)]--
			st.nwt32[w*st.K+int(dl.to)]++
			st.stale[w]++
		}
		ck.deltas = ck.deltas[:0]
	}
}

// finish copies the sampler's private state back into the Model.
func (st *aliasSampler) finish() {
	for i, v := range st.nwt32 {
		st.m.nwt[i] = int(v)
	}
	for i, v := range st.z32 {
		st.m.z[i] = int(v)
	}
	for i, v := range st.ndt {
		st.m.ndt[i] = int(v)
	}
}

// fitAlias runs the deterministically parallel alias-table MH fit. Even
// iterations sweep with the word proposal, odd with the doc proposal.
func fitAlias(c *textproc.Corpus, cfg Config) *Model {
	m := newModel(c, cfg)
	if len(m.z) == 0 {
		return m
	}
	st := newAliasSampler(m)
	st.initAssignments()
	st.rebuildTables(true)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(st.chunks) {
		workers = len(st.chunks)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		st.refresh()
		wordStep := aliasWordStep(iter)
		if workers == 1 {
			for ci := range st.chunks {
				st.sweepChunk(&st.chunks[ci], wordStep)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						ci := int(next.Add(1)) - 1
						if ci >= len(st.chunks) {
							return
						}
						st.sweepChunk(&st.chunks[ci], wordStep)
					}
				}()
			}
			wg.Wait()
		}
		st.merge()
		if (iter+1)%aliasRebuildSweeps == 0 {
			st.rebuildTables(false)
		}
	}
	st.finish()
	return m
}
