package lda

import (
	"math/rand/v2"
	"strings"
	"testing"

	"msgscope/internal/analysis/textproc"
)

// synthCorpus builds documents from two disjoint vocabularies so the model
// has a clean planted structure to recover.
func synthCorpus(nDocs int) *textproc.Corpus {
	topicA := []string{"bitcoin", "crypto", "wallet", "trading", "profit"}
	topicB := []string{"hentai", "anime", "server", "gaming", "nitro"}
	rng := rand.New(rand.NewPCG(1, 9))
	var texts []string
	for i := 0; i < nDocs; i++ {
		pool := topicA
		if i%2 == 1 {
			pool = topicB
		}
		var words []string
		for j := 0; j < 12; j++ {
			words = append(words, pool[rng.IntN(len(pool))])
		}
		texts = append(texts, strings.Join(words, " "))
	}
	return textproc.NewCorpus(textproc.NewTokenizer(), texts)
}

func TestFitRecoversPlantedTopics(t *testing.T) {
	c := synthCorpus(200)
	m := Fit(c, Config{Topics: 2, Iterations: 80, Seed: 3})
	// Each topic's top words must come from a single planted vocabulary.
	aSet := map[string]bool{"bitcoin": true, "crypto": true, "wallet": true, "trading": true, "profit": true}
	for k := 0; k < 2; k++ {
		top := m.TopWords(k, 3)
		inA := 0
		for _, w := range top {
			if aSet[w] {
				inA++
			}
		}
		if inA != 0 && inA != len(top) {
			t.Fatalf("topic %d mixes planted vocabularies: %v", k, top)
		}
	}
	// Shares should be roughly balanced.
	shares := m.TopicShares()
	for k, s := range shares {
		if s < 0.3 || s > 0.7 {
			t.Fatalf("topic %d share %.2f, want ~0.5", k, s)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	c1 := synthCorpus(60)
	c2 := synthCorpus(60)
	m1 := Fit(c1, Config{Topics: 2, Iterations: 30, Seed: 7})
	m2 := Fit(c2, Config{Topics: 2, Iterations: 30, Seed: 7})
	for k := 0; k < 2; k++ {
		a := strings.Join(m1.TopWords(k, 5), ",")
		b := strings.Join(m2.TopWords(k, 5), ",")
		if a != b {
			t.Fatalf("topic %d differs across identical fits: %q vs %q", k, a, b)
		}
	}
}

func TestFitCountInvariants(t *testing.T) {
	c := synthCorpus(50)
	m := Fit(c, Config{Topics: 3, Iterations: 20, Seed: 1})
	K := m.cfg.Topics
	var total int
	for _, doc := range c.Docs {
		total += len(doc)
	}
	// Sum of topic counts equals total tokens.
	var nt int
	for k := 0; k < K; k++ {
		nt += m.nt[k]
	}
	if nt != total {
		t.Fatalf("topic counts %d != tokens %d", nt, total)
	}
	// Per-document counts match document lengths.
	for d, doc := range c.Docs {
		var nd int
		for k := 0; k < K; k++ {
			nd += m.ndt[d*K+k]
		}
		if nd != len(doc) {
			t.Fatalf("doc %d counts %d != len %d", d, nd, len(doc))
		}
	}
	// Per-word counts match word frequencies.
	freq := map[int]int{}
	for _, doc := range c.Docs {
		for _, w := range doc {
			freq[w]++
		}
	}
	for w, want := range freq {
		var got int
		for k := 0; k < K; k++ {
			got += m.nwt[w*K+k]
		}
		if got != want {
			t.Fatalf("word %d counts %d != freq %d", w, got, want)
		}
	}
}

func TestPerplexityImprovesOverUntrained(t *testing.T) {
	c := synthCorpus(150)
	trained := Fit(c, Config{Topics: 2, Iterations: 60, Seed: 2})
	untrained := Fit(synthCorpus(150), Config{Topics: 2, Iterations: 0, Seed: 2})
	// Iterations=0 falls back to the default (200); build a truly
	// untrained model with 1 iteration instead.
	almostUntrained := Fit(synthCorpus(150), Config{Topics: 2, Iterations: 1, Seed: 2})
	if trained.Perplexity() >= almostUntrained.Perplexity() {
		t.Fatalf("training did not reduce perplexity: %.2f vs %.2f",
			trained.Perplexity(), almostUntrained.Perplexity())
	}
	_ = untrained
}

func TestTopicWordProbNormalized(t *testing.T) {
	c := synthCorpus(40)
	m := Fit(c, Config{Topics: 2, Iterations: 10, Seed: 4})
	for k := 0; k < 2; k++ {
		var sum float64
		for w := 0; w < c.Vocab.Size(); w++ {
			sum += m.TopicWordProb(k, w)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("topic %d word probs sum to %v", k, sum)
		}
	}
}

func TestSummariesSortedByShare(t *testing.T) {
	c := synthCorpus(80)
	m := Fit(c, Config{Topics: 4, Iterations: 20, Seed: 5})
	sums := m.Summaries(5)
	if len(sums) != 4 {
		t.Fatalf("got %d summaries", len(sums))
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].Share > sums[i-1].Share {
			t.Fatal("summaries not sorted by share")
		}
	}
	if !strings.Contains(sums[0].String(), "topic") {
		t.Fatal("summary String() malformed")
	}
}

func TestEmptyCorpus(t *testing.T) {
	c := textproc.NewCorpus(textproc.NewTokenizer(), nil)
	m := Fit(c, Config{Topics: 2, Iterations: 5, Seed: 6})
	if m.Perplexity() != 0 {
		t.Fatal("empty corpus perplexity should be 0")
	}
	if shares := m.TopicShares(); shares[0] != 0 || shares[1] != 0 {
		t.Fatal("empty corpus shares should be 0")
	}
}

func TestCoherencePrefersRealTopics(t *testing.T) {
	c := synthCorpus(200)
	good := Fit(c, Config{Topics: 2, Iterations: 80, Seed: 3})
	// A barely-trained model has scrambled topics mixing both vocabularies.
	bad := Fit(synthCorpus(200), Config{Topics: 2, Iterations: 1, Seed: 4})
	gc := good.MeanCoherence(c, 5)
	bc := bad.MeanCoherence(c, 5)
	if gc <= bc {
		t.Fatalf("trained coherence %.3f not better than untrained %.3f", gc, bc)
	}
	if gc > 0 {
		t.Fatalf("UMass coherence must be <= 0, got %.3f", gc)
	}
}

func TestCoherenceDegenerate(t *testing.T) {
	c := synthCorpus(10)
	m := Fit(c, Config{Topics: 2, Iterations: 5, Seed: 1})
	if got := m.Coherence(c, 0, 1); got != 0 {
		t.Fatalf("single-word coherence = %v, want 0", got)
	}
	empty := textproc.NewCorpus(textproc.NewTokenizer(), nil)
	me := Fit(empty, Config{Topics: 2, Iterations: 2, Seed: 1})
	if got := me.MeanCoherence(empty, 5); got != 0 {
		t.Fatalf("empty-corpus coherence = %v, want 0", got)
	}
}
