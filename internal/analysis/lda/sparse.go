// The SparseLDA sampler (Yao, Mimno & McCallum, KDD 2009): the collapsed
// Gibbs conditional
//
//	p(z=k | ·) ∝ (nwt[w][k]+β)(ndt[d][k]+α) / (nt[k]+βV)
//
// is decomposed into three buckets sharing the cached inverse denominator
// invDenom[k] = 1/(nt[k]+βV):
//
//	s = Σ_k αβ·invDenom[k]                  (smoothing; topic-count only)
//	r = Σ_k β·ndt[d][k]·invDenom[k]         (sparse in the doc's topics)
//	q = Σ_k nwt[w][k]·(α+ndt[d][k])·invDenom[k]  (sparse in the word's topics)
//
// s is shared by every token, r is maintained incrementally per document,
// and q walks only the word's nonzero topics via a packed count index — so
// once the chain concentrates (typical rows shrink to one or two topics)
// a token costs a couple of multiplications and no divisions, against the
// dense sampler's O(K) with a division per topic.
//
// Parallel determinism: documents are split into fixed-size chunks that do
// not depend on the worker count. Each chunk owns a persistent SplitMix64
// stream (seeded from Config.Seed and the chunk index) and its documents'
// ndt rows; global nwt/nt stay frozen during a sweep and every chunk
// records its (w, kOld, kNew) transitions, which merge at the iteration
// barrier. Integer count updates commute, every float input is either
// frozen-global or chunk-local, and each chunk's RNG consumption depends
// only on its own tokens — so the fitted model is byte-identical at 1, 4,
// or 16 workers.
//
// Exactness of the current-token exclusion: the frozen counts always
// include the current token's own (unchanged-this-sweep) assignment, so
// nwt[w][kOld] ≥ 1 and nt[kOld] ≥ 1 are guaranteed, and the exclusion is
// applied exactly — cnt-1 for kOld in the q walk and an O(1) correction
// swapping invDenom[kOld] for invDenomM1[kOld] = 1/(nt[kOld]-1+βV) in the
// s and r buckets.
//
// The production sweep (sweepChunk) is a fused loop; the factored
// per-token operations below it (enterDoc/detachToken/sampleBuckets/
// attachToken/tokenMasses) define the semantics, are float-for-float
// identical to the fused path (TestSparseFusedMatchesFactored pins this),
// and carry the exact-conditional, bucket-invariant, and fuzz tests.
package lda

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"msgscope/internal/analysis/textproc"
)

// sparseChunkDocs is the fixed document-chunk size. It is part of the
// determinism contract: changing it changes which RNG stream samples which
// document, i.e. the fitted model.
const sparseChunkDocs = 256

// sparseMaxK bounds the sparse path's topic count: the fused sweep pads
// every per-topic array to 16 entries and masks topic indices with &15,
// which lets the compiler drop all bounds checks from the token loop.
// Larger K (unused in the reproduction — the paper's Table 3 uses K=10)
// falls back to the dense reference sampler.
const sparseMaxK = 15

// sparsePad is the padded per-document stride of the sampler's private
// doc-topic table: 16 int32 counts = exactly one cache line per document.
// Padding entries stay zero; the branchless doc-bucket refresh adds an
// exact +0 for them, so sums are float-identical to the K-length walks of
// the factored reference ops.
const sparsePad = 16

// wtShift packs a word-topic entry as count<<wtShift | topic in a uint32,
// one word per entry so the q walk streams a single cache line per row (the
// 16-slot uint32 row is exactly 64 bytes, halving the randomly accessed
// footprint vs 64-bit entries). Topic indices fit easily (K <= sparseMaxK);
// counts up to 2^24 cover any corpus the sparse path accepts — fitSparse
// routes larger ones to the dense sampler.
const wtShift = 8

// tdelta is one recorded topic transition, merged into the global counts
// at the iteration barrier. pos is the row slot (1..15) where the sweep
// saw `from` in word w's frozen row — a hint that usually lets the merge
// skip its decrement scan; 0 means "no hint" and a stale hint (the row
// changed under an earlier delta) fails its guard and falls back to the
// scan, so hints never affect the merged state.
type tdelta struct {
	w        int32
	pos      uint8
	from, to uint8
}

// rngState is a SplitMix64 stream (Steele, Lea & Flood 2014): one uint64
// of state, six cheap fully-inlined ops per draw. The sampler defines its
// own determinism contract, so the generator only has to be deterministic
// and well-mixed, not match any external stream.
type rngState uint64

func (s *rngState) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4B09B
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// float64 returns a uniform draw in [0, 1).
func (s *rngState) float64() float64 { return float64(s.next()>>11) * 0x1p-53 }

// intN returns a uniform draw in [0, n) via a fixed-point multiply. The
// modulo bias is ~n/2^64 — irrelevant for topic counts.
func (s *rngState) intN(n int) int {
	hi, _ := bits.Mul64(s.next(), uint64(n))
	return int(hi)
}

// chunkState is the per-chunk mutable state: its document range, its
// private RNG stream, and the transitions of the current sweep.
type chunkState struct {
	lo, hi int // document range [lo, hi)
	rng    rngState
	deltas []tdelta
}

// bucket identifies which of the three decomposition buckets a draw landed
// in (exposed for the bucket-selection tests and fuzz target).
type bucket uint8

const (
	bucketQ bucket = iota // word-topic bucket
	bucketR               // doc-topic bucket
	bucketS               // smoothing bucket
)

// scratch is per-worker sampling state, re-entered per document. Only the
// doc bucket mass r is maintained incrementally; the (rare) r walk scans
// the dense ndt row directly, and the q walk computes its coefficients
// from the packed word rows in place — at the paper's K=10 both beat
// maintaining per-token sparse doc-topic structures.
type scratch struct {
	r float64 // doc bucket mass (uncorrected)
}

func newScratch(k int) *scratch {
	_ = k
	return &scratch{}
}

// sparse is the sampler state layered over a Model's count arrays. It owns
// a private int32 doc-topic table and topic-assignment arena during the
// fit (half the cache footprint of the Model's []int versions, which are
// filled in at the end).
type sparse struct {
	m          *Model
	K, V       int
	alpha      float64
	beta       float64
	alphaBeta  float64
	betaV      float64
	ndt        []int32   // doc-topic counts, [d*sparsePad+k]; copied to m.ndt after the fit
	z32        []int32   // topic assignments; copied to m.z after the fit
	tok32      []int32   // the corpus word ids, flattened doc-major like z32
	invDenom   []float64 // 1/(nt[k]+βV), refreshed per iteration
	invDenomM1 []float64 // 1/(nt[k]-1+βV); only valid where nt[k] ≥ 1
	sCache     float64   // Σ αβ·invDenom[k]
	// Per-topic caches turning hot-loop multiplies into loads, refreshed
	// with the denominators: betaInv = β·invDenom, betaDD = β·(invDenomM1
	// − invDenom), sAdjK = sCache + αβ·(invDenomM1 − invDenom).
	betaInv []float64
	betaDD  []float64
	sAdjK   []float64
	// Sparse index over the frozen word-topic counts: word w's row is the
	// 16 slots wtRow[w*16 : w*16+16] — slot 0 holds the entry count n and
	// slots 1..n the packed entries, so one random access reaches both the
	// length and the data (a separate length array would cost a second
	// cache line per token). Built once after init and then maintained
	// incrementally from the merge deltas — the serial merge applies them
	// in fixed chunk order, so row entry order stays deterministic.
	wtRow  []uint32
	chunks []chunkState
}

func newSparse(m *Model) *sparse {
	K := m.cfg.Topics
	V := m.vocab.Size()
	st := &sparse{
		m:          m,
		K:          K,
		V:          V,
		alpha:      m.cfg.Alpha,
		beta:       m.cfg.Beta,
		alphaBeta:  m.cfg.Alpha * m.cfg.Beta,
		betaV:      m.cfg.Beta * float64(V),
		ndt:        make([]int32, len(m.docs)*sparsePad),
		z32:        make([]int32, len(m.z)),
		tok32:      make([]int32, len(m.z)),
		invDenom:   make([]float64, sparsePad),
		invDenomM1: make([]float64, sparsePad),
		betaInv:    make([]float64, sparsePad),
		betaDD:     make([]float64, sparsePad),
		sAdjK:      make([]float64, sparsePad),
		wtRow:      make([]uint32, V*sparsePad),
	}
	for d, doc := range m.docs {
		off := m.docOff[d]
		for i, w := range doc {
			st.tok32[off+i] = int32(w)
		}
	}
	nChunks := (len(m.docs) + sparseChunkDocs - 1) / sparseChunkDocs
	st.chunks = make([]chunkState, nChunks)
	for ci := range st.chunks {
		lo := ci * sparseChunkDocs
		hi := lo + sparseChunkDocs
		if hi > len(m.docs) {
			hi = len(m.docs)
		}
		toks := m.docOff[hi-1] + m.docLen[hi-1] - m.docOff[lo]
		st.chunks[ci] = chunkState{
			lo: lo, hi: hi,
			rng:    rngState(m.cfg.Seed*0xD1342543DE82EF95 ^ chunkStream(ci)),
			deltas: make([]tdelta, 0, toks),
		}
	}
	return st
}

// chunkStream derives a chunk's RNG stream offset. Any injective map
// works; the golden-ratio multiply spreads consecutive indices across the
// seed space.
func chunkStream(ci int) uint64 {
	return 0x51DA<<32 ^ uint64(ci)*0x9E3779B97F4A7C15
}

// initAssignments draws the initial topic of every token from its chunk's
// own stream, so the init — like the sweeps — is worker-count independent.
// It then builds the packed word-topic rows from the fresh counts.
func (st *sparse) initAssignments() {
	K, m := st.K, st.m
	for ci := range st.chunks {
		ck := &st.chunks[ci]
		for d := ck.lo; d < ck.hi; d++ {
			zd := st.z32[m.docOff[d]:]
			for i, w := range m.docs[d] {
				k := ck.rng.intN(K)
				zd[i] = int32(k)
				m.nwt[w*K+k]++
				st.ndt[d*sparsePad+k]++
				m.nt[k]++
			}
		}
	}
	buildRowsFromNWT(st.wtRow, m.nwt, st.V, K)
}

// buildRowsFromNWT packs a dense [w*K+k] count table into the sparse row
// index (slot 0 = entry count, slots 1..n = count<<wtShift|topic).
func buildRowsFromNWT(wtRow []uint32, nwt []int, V, K int) {
	for w := 0; w < V; w++ {
		n := 0
		for k, cnt := range nwt[w*K : w*K+K] {
			if cnt > 0 {
				n++
				wtRow[w*sparsePad+n] = uint32(cnt)<<wtShift | uint32(k)
			}
		}
		wtRow[w*sparsePad] = uint32(n)
	}
}

// refresh recomputes everything derived from the per-topic totals: the
// inverse denominators, the smoothing bucket, and the per-topic caches.
// Called once per iteration, between the merge and the next sweep; O(K).
func (st *sparse) refresh() {
	K := st.K
	s := 0.0
	for k := 0; k < K; k++ {
		den := float64(st.m.nt[k]) + st.betaV
		st.invDenom[k] = 1 / den
		st.invDenomM1[k] = 1 / (den - 1)
		s += st.alphaBeta * st.invDenom[k]
	}
	st.sCache = s
	for k := 0; k < K; k++ {
		dd := st.invDenomM1[k] - st.invDenom[k]
		st.betaInv[k] = st.beta * st.invDenom[k]
		st.betaDD[k] = st.beta * dd
		st.sAdjK[k] = s + st.alphaBeta*dd
	}
}

// merge folds every chunk's recorded transitions into the per-topic
// totals and the packed word rows. m.nwt is deliberately not touched
// here: nothing reads it during the fit, and skipping it halves the
// merge's random memory traffic (finish rebuilds it from the packed
// rows).
func (st *sparse) merge() {
	mergePacked(st.chunks, st.m.nt, st.wtRow)
}

// mergePacked folds every chunk's recorded transitions into the per-topic
// totals and the packed word rows. Integer count updates commute, so any
// application order yields the same counts; the row entry order does
// depend on application order (zeroed entries swap-remove), so the merge
// runs serially in fixed chunk order — part of the determinism contract.
func mergePacked(chunks []chunkState, nt []int, wtRow []uint32) {
	mask := uint32(1<<wtShift - 1)
	one := uint32(1) << wtShift
	for ci := range chunks {
		ck := &chunks[ci]
		for _, dl := range ck.deltas {
			nt[dl.from]--
			nt[dl.to]++

			row := (*[sparsePad]uint32)(wtRow[int(dl.w)*sparsePad:])
			n := int(row[0])
			from, to := uint32(dl.from), uint32(dl.to)
			j := int(dl.pos)
			if j < 1 || j > n || row[j&15]&mask != from {
				j = 1
				for ; j <= n; j++ {
					if row[j&15]&mask == from {
						break
					}
				}
			}
			if j <= n {
				if row[j&15] < one<<1 { // count was 1: remove entry
					row[j&15] = row[n&15]
					n--
				} else {
					row[j&15] -= one
				}
			}
			found := false
			for j := 1; j <= n; j++ {
				if row[j&15]&mask == to {
					row[j&15] += one
					found = true
					break
				}
			}
			if !found {
				n++
				row[n&15] = one | to
			}
			row[0] = uint32(n)
		}
		ck.deltas = ck.deltas[:0]
	}
}

// enterDoc initializes the scratch for a document: the doc bucket r. The
// loop is branchless — zero counts contribute an exact +0.
func (sc *scratch) enterDoc(st *sparse, ndtRow []int32) {
	r := 0.0
	for k, n := range ndtRow {
		r += float64(n) * st.betaInv[k]
	}
	sc.r = r
}

// detachToken removes the current token's assignment from the document
// side: ndt[d][kOld] is decremented and r follows. The global counts stay
// frozen; their exclusion is applied inside the draw.
func (st *sparse) detachToken(sc *scratch, ndtRow []int32, kOld int) {
	ndtRow[kOld]--
	sc.r -= st.betaInv[kOld]
}

// attachToken records the token's new assignment on the document side.
func (st *sparse) attachToken(sc *scratch, ndtRow []int32, kNew int) {
	ndtRow[kNew]++
	sc.r += st.betaInv[kNew]
}

// sampleBuckets draws the token's new topic. u01 ∈ [0,1) is the uniform
// draw; the returned bucket says which part of the decomposition the draw
// landed in (the fuzz target asserts the bucket's count invariant). Must
// be called after detachToken: ndtRow[kOld] excludes the current token.
func (st *sparse) sampleBuckets(sc *scratch, ndtRow []int32, w, kOld int, u01 float64) (int, bucket) {
	// O(1) corrections swap in the token-excluded denominator at kOld.
	sAdj := st.sAdjK[kOld]
	fn0 := float64(ndtRow[kOld])
	rAdj := sc.r + fn0*st.betaDD[kOld]

	// Pass 1, branchless: the generic term for every entry, kOld included.
	// The exclusion correction is applied once afterwards — kOld is always
	// present in the row (the frozen counts include this very token).
	alpha, invDenom := st.alpha, st.invDenom
	wRow := st.wtRow[w*sparsePad:]
	row := wRow[1 : 1+wRow[0]]
	qAll := 0.0
	jOld := 0
	for j, v := range row {
		k := int(v & (1<<wtShift - 1))
		b := float64(v>>wtShift) * invDenom[k]
		qAll += b * (alpha + float64(ndtRow[k]))
		if k == kOld {
			jOld = j
		}
	}
	vOld := row[jOld]
	bOld := float64(vOld>>wtShift) * invDenom[kOld]
	bM1 := float64((vOld>>wtShift)-1) * st.invDenomM1[kOld]
	q := qAll - bOld*(alpha+fn0) + bM1*(alpha+fn0)

	u := u01 * (sAdj + rAdj + q)
	if u < q {
		// Pass 2: walk the corrected terms until the draw lands. A last-ulp
		// rounding gap falls back to the last positive-term topic.
		cum := 0.0
		last := -1
		for _, v := range row {
			k := int(v & (1<<wtShift - 1))
			var term float64
			if k != kOld {
				b := float64(v>>wtShift) * invDenom[k]
				term = b * (alpha + float64(ndtRow[k]))
			} else {
				cnt := int(v>>wtShift) - 1
				if cnt == 0 {
					continue
				}
				b := float64(cnt) * st.invDenomM1[k]
				term = b * (alpha + fn0)
			}
			cum += term
			last = k
			if u < cum {
				return k, bucketQ
			}
		}
		if last >= 0 {
			return last, bucketQ
		}
		// Row was only this token's own singleton entry; q was pure
		// rounding noise.
	}
	return st.sampleTail(ndtRow, kOld, u-q, rAdj)
}

// sampleTail handles the rarely-hit r and s buckets; u arrives with the q
// mass already subtracted.
func (st *sparse) sampleTail(ndtRow []int32, kOld int, u, rAdj float64) (int, bucket) {
	if u < rAdj {
		acc := 0.0
		last := -1
		for k, n := range ndtRow {
			if n == 0 {
				continue
			}
			inv := st.invDenom[k]
			if k == kOld {
				inv = st.invDenomM1[k]
			}
			acc += st.beta * float64(n) * inv
			if u < acc {
				return k, bucketR
			}
			last = k
		}
		if last >= 0 {
			return last, bucketR
		}
		// Doc has no other tokens and rAdj was pure rounding noise; fall
		// through to the smoothing walk.
	}
	u -= rAdj
	acc := 0.0
	for k := 0; k < st.K; k++ {
		inv := st.invDenom[k]
		if k == kOld {
			inv = st.invDenomM1[k]
		}
		acc += st.alphaBeta * inv
		if u < acc {
			return k, bucketS
		}
	}
	return st.K - 1, bucketS
}

// tokenMasses fills out[k] with the unnormalized conditional mass the
// decomposition assigns to topic k, term by term — the oracle surface of
// the exact-conditional test and the fuzz target. Same calling point as
// sampleBuckets: after detachToken.
func (st *sparse) tokenMasses(sc *scratch, ndtRow []int32, w, kOld int, out []float64) {
	for k := range out {
		inv := st.invDenom[k]
		if k == kOld {
			inv = st.invDenomM1[k]
		}
		mass := st.alphaBeta * inv
		if n := ndtRow[k]; n > 0 {
			mass += st.beta * float64(n) * inv
		}
		out[k] = mass
	}
	wRow := st.wtRow[w*sparsePad:]
	for _, v := range wRow[1 : 1+wRow[0]] {
		k := int(v & (1<<wtShift - 1))
		cnt := int(v >> wtShift)
		inv := st.invDenom[k]
		if k == kOld {
			cnt--
			inv = st.invDenomM1[k]
		}
		if cnt == 0 {
			continue
		}
		b := float64(cnt) * inv
		out[k] += b * (st.alpha + float64(ndtRow[k]))
	}
}

// sweepChunk resamples every token of one chunk against the frozen global
// counts, recording transitions for the barrier merge. This is the fused
// production loop: float-for-float it performs exactly the factored
// enterDoc → detachToken → sampleBuckets → attachToken sequence above,
// with every hot field hoisted into locals.
func (st *sparse) sweepChunk(ck *chunkState, sc *scratch) {
	K := st.K
	alpha := st.alpha
	invDenom := (*[sparsePad]float64)(st.invDenom)
	invDenomM1 := (*[sparsePad]float64)(st.invDenomM1)
	betaInv := (*[sparsePad]float64)(st.betaInv)
	betaDD := (*[sparsePad]float64)(st.betaDD)
	sAdjK := (*[sparsePad]float64)(st.sAdjK)
	wtRow := st.wtRow
	ndt, z32, tok32 := st.ndt, st.z32, st.tok32
	rng := &ck.rng
	m := st.m

	for d := ck.lo; d < ck.hi; d++ {
		doc := m.docs[d]
		if len(doc) == 0 {
			continue
		}
		ndtRow := (*[sparsePad]int32)(ndt[d*sparsePad:])
		// Branchless doc-bucket init: zero counts add an exact +0, same as
		// the factored enterDoc.
		r := 0.0
		// fA caches alpha+ndt per topic so the q walk skips a convert and
		// an add per entry; every store uses the direct formula, so values
		// are bit-identical to the factored path's recomputation.
		var fA [sparsePad]float64
		for k, n := range ndtRow[:K] {
			r += float64(n) * betaInv[k]
			fA[k] = alpha + float64(n)
		}
		for zi := m.docOff[d]; zi < m.docOff[d]+len(doc); zi++ {
			w := int(tok32[zi])
			kOld := int(z32[zi]) & 15
			n0 := ndtRow[kOld] - 1
			ndtRow[kOld] = n0
			r -= betaInv[kOld]

			sAdj := sAdjK[kOld]
			fn0 := float64(n0)
			fA[kOld] = alpha + fn0
			rAdj := r + fn0*betaDD[kOld]

			row := (*[sparsePad]uint32)(wtRow[w*sparsePad:])
			rn := int(row[0])
			kNew := -1
			jOld := 1
			var q, u float64
			if rn == 1 {
				// Single-entry row: the entry is necessarily kOld (the
				// frozen counts include this token), so q reduces to the
				// corrected term alone — float-identical to the general
				// path, whose qAll − generic(kOld) cancels exactly here.
				bM1 := float64((row[1]>>wtShift)-1) * invDenomM1[kOld]
				q = bM1 * fA[kOld&15]
				u = rng.float64() * (sAdj + rAdj + q)
				if u < q {
					kNew = kOld
				}
			} else {
				qAll := 0.0
				for j := 1; j <= rn; j++ {
					v := row[j&15]
					k := int(v) & 15
					b := float64(v>>wtShift) * invDenom[k]
					qAll += b * fA[k&15]
					if k == kOld {
						jOld = j
					}
				}
				vOld := row[jOld&15]
				bOld := float64(vOld>>wtShift) * invDenom[kOld]
				bM1 := float64((vOld>>wtShift)-1) * invDenomM1[kOld]
				fA0 := fA[kOld&15]
				q = qAll - bOld*fA0 + bM1*fA0

				u = rng.float64() * (sAdj + rAdj + q)
				if u < q {
					cum := 0.0
					for j := 1; j <= rn; j++ {
						v := row[j&15]
						k := int(v) & 15
						var b float64
						if k != kOld {
							b = float64(v>>wtShift) * invDenom[k]
						} else {
							cnt := int(v>>wtShift) - 1
							if cnt == 0 {
								continue
							}
							b = float64(cnt) * invDenomM1[k]
						}
						cum += b * fA[k&15]
						kNew = k
						if u < cum {
							break
						}
					}
				}
			}
			if kNew < 0 {
				kNew, _ = st.sampleTail(ndt[d*sparsePad:d*sparsePad+K], kOld, u-q, rAdj)
			}
			kNew &= 15

			ndtRow[kNew]++
			fA[kNew] = alpha + float64(ndtRow[kNew])
			r += betaInv[kNew]
			if kNew != kOld {
				z32[zi] = int32(kNew)
				ck.deltas = append(ck.deltas, tdelta{w: int32(w), pos: uint8(jOld), from: uint8(kOld), to: uint8(kNew)})
			}
		}
	}
}

// fitSparse runs the deterministically parallel SparseLDA fit.
func fitSparse(c *textproc.Corpus, cfg Config) *Model {
	m := newModel(c, cfg)
	if len(m.z) == 0 {
		return m
	}
	if len(m.z) >= 1<<(32-wtShift) {
		// A packed word-topic count could overflow its 24 bits; corpora
		// this large (16M+ tokens) take the dense reference path.
		return fitDense(c, cfg)
	}
	st := newSparse(m)
	st.initAssignments()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(st.chunks) {
		workers = len(st.chunks)
	}
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = newScratch(st.K)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		st.refresh()
		if workers == 1 {
			for ci := range st.chunks {
				st.sweepChunk(&st.chunks[ci], scratches[0])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for _, sc := range scratches {
				wg.Add(1)
				go func(sc *scratch) {
					defer wg.Done()
					for {
						ci := int(next.Add(1)) - 1
						if ci >= len(st.chunks) {
							return
						}
						st.sweepChunk(&st.chunks[ci], sc)
					}
				}(sc)
			}
			wg.Wait()
		}
		st.merge()
	}
	st.finish()
	return m
}

// syncNWT rebuilds the Model's dense word-topic table from the packed
// rows (the authoritative word-topic counts once the fit is running).
func (st *sparse) syncNWT() {
	syncNWTFromRows(st.m.nwt, st.wtRow, st.V, st.K)
}

// syncNWTFromRows expands packed word rows back into a dense [w*K+k]
// count table at the end of a sparse fit.
func syncNWTFromRows(nwt []int, wtRow []uint32, V, K int) {
	for i := range nwt {
		nwt[i] = 0
	}
	for w := 0; w < V; w++ {
		wRow := wtRow[w*sparsePad:]
		for _, v := range wRow[1 : 1+wRow[0]] {
			nwt[w*K+int(v&(1<<wtShift-1))] = int(v >> wtShift)
		}
	}
}

// finish copies the sampler's private state back into the Model: the
// topic assignments, the doc-topic counts, and the dense word-topic
// table.
func (st *sparse) finish() {
	K := st.K
	st.syncNWT()
	for i, v := range st.z32 {
		st.m.z[i] = int(v)
	}
	for d := range st.m.docs {
		for k := 0; k < K; k++ {
			st.m.ndt[d*K+k] = int(st.ndt[d*sparsePad+k])
		}
	}
}
