package lda

import (
	"math"

	"msgscope/internal/analysis/textproc"
)

// Coherence computes the UMass topic-coherence score of topic k over its
// top-n words (Mimno et al. 2011): the average of log((D(wi,wj)+1)/D(wj))
// over ordered word pairs, where D counts document (co-)occurrences in the
// training corpus. Scores are negative; closer to zero means the topic's
// top words genuinely co-occur, i.e. the topic is interpretable rather than
// an artifact of the sampler. Used by tests and the LDA-K ablation to
// compare topic quality across K.
func (m *Model) Coherence(c *textproc.Corpus, k, n int) float64 {
	words := m.TopWords(k, n)
	if len(words) < 2 {
		return 0
	}
	ids := make([]int, 0, len(words))
	for _, w := range words {
		if id, ok := c.Vocab.Lookup(w); ok {
			ids = append(ids, id)
		}
	}
	if len(ids) < 2 {
		return 0
	}
	df, codf := docCooccur(c, ids)

	var score float64
	var pairs int
	for i := 1; i < len(ids); i++ {
		for j := 0; j < i; j++ {
			dj := df[ids[j]]
			if dj == 0 {
				continue
			}
			co := codf[[2]int{ids[j], ids[i]}] + codf[[2]int{ids[i], ids[j]}]
			score += math.Log(float64(co+1) / float64(dj))
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return score / float64(pairs)
}

// NPMICoherence computes the normalized-PMI coherence of topic k over its
// top-n words (Bouma 2009; Lau et al. 2014): the average over unordered
// word pairs of NPMI(wi,wj) = PMI(wi,wj) / −log p(wi,wj), with all
// probabilities estimated from document (co-)occurrence counts over the
// training corpus. Unlike UMass, the score is bounded: −1 for a pair that
// never co-occurs, +1 as two words approach perfect co-occurrence, so
// scores are comparable across corpora of different sizes.
func (m *Model) NPMICoherence(c *textproc.Corpus, k, n int) float64 {
	words := m.TopWords(k, n)
	if len(words) < 2 || len(c.Docs) == 0 {
		return 0
	}
	ids := make([]int, 0, len(words))
	for _, w := range words {
		if id, ok := c.Vocab.Lookup(w); ok {
			ids = append(ids, id)
		}
	}
	if len(ids) < 2 {
		return 0
	}
	df, codf := docCooccur(c, ids)

	nDocs := float64(len(c.Docs))
	var score float64
	var pairs int
	for i := 1; i < len(ids); i++ {
		for j := 0; j < i; j++ {
			di, dj := df[ids[i]], df[ids[j]]
			if di == 0 || dj == 0 {
				continue
			}
			co := codf[[2]int{ids[j], ids[i]}] + codf[[2]int{ids[i], ids[j]}]
			pairs++
			switch co {
			case 0:
				score-- // the never-co-occur limit of NPMI
			case len(c.Docs):
				// p(wi,wj)=1 forces p(wi)=p(wj)=1: PMI and its normalizer
				// both vanish, and the pair carries no information.
			default:
				pij := float64(co) / nDocs
				pmi := math.Log(pij * nDocs * nDocs / (float64(di) * float64(dj)))
				score += pmi / -math.Log(pij)
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return score / float64(pairs)
}

// docCooccur counts, over the corpus, the documents containing each of
// ids (df) and each unordered pair of ids (codf, keyed by ids order).
func docCooccur(c *textproc.Corpus, ids []int) (df map[int]int, codf map[[2]int]int) {
	df = make(map[int]int, len(ids))
	codf = make(map[[2]int]int)
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for _, doc := range c.Docs {
		present := map[int]bool{}
		for _, w := range doc {
			if want[w] {
				present[w] = true
			}
		}
		for w := range present {
			df[w]++
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if present[ids[i]] && present[ids[j]] {
					codf[[2]int{ids[i], ids[j]}]++
				}
			}
		}
	}
	return df, codf
}

// MeanCoherence averages Coherence over all topics.
func (m *Model) MeanCoherence(c *textproc.Corpus, topN int) float64 {
	if m.cfg.Topics == 0 {
		return 0
	}
	var sum float64
	for k := 0; k < m.cfg.Topics; k++ {
		sum += m.Coherence(c, k, topN)
	}
	return sum / float64(m.cfg.Topics)
}

// MeanNPMICoherence averages NPMICoherence over all topics.
func (m *Model) MeanNPMICoherence(c *textproc.Corpus, topN int) float64 {
	if m.cfg.Topics == 0 {
		return 0
	}
	var sum float64
	for k := 0; k < m.cfg.Topics; k++ {
		sum += m.NPMICoherence(c, k, topN)
	}
	return sum / float64(m.cfg.Topics)
}
