// Package langid is a character n-gram language classifier. The paper uses
// the lang field Twitter's API provides; this package exists to cross-check
// that field (and to keep the analysis self-contained when a corpus has no
// language metadata). Profiles are trained at startup from the same
// per-language lexicons the generator uses, via trigram frequency ranks
// (Cavnar & Trenkle 1994, simplified to cosine over trigram counts).
package langid

import (
	"math"
	"sort"
	"strings"

	"msgscope/internal/textgen"
)

// Classifier scores text against per-language trigram profiles.
type Classifier struct {
	langs    []string
	profiles []map[string]float64 // normalized trigram weights
}

// New trains a classifier over the generator's languages.
func New() *Classifier {
	c := &Classifier{}
	for _, lang := range textgen.Languages() {
		if lang == "und" {
			continue
		}
		prof := trigramProfile(strings.Join(sampleText(lang), " "))
		if len(prof) == 0 {
			continue
		}
		c.langs = append(c.langs, lang)
		c.profiles = append(c.profiles, prof)
	}
	return c
}

// sampleText returns training text for a language: its lexicon words.
func sampleText(lang string) []string {
	return textgen.LexiconWords(lang)
}

// trigramProfile computes L2-normalized trigram counts.
func trigramProfile(text string) map[string]float64 {
	counts := map[string]float64{}
	runes := []rune(" " + strings.ToLower(text) + " ")
	for i := 0; i+3 <= len(runes); i++ {
		counts[string(runes[i:i+3])]++
	}
	var norm float64
	for _, v := range counts {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return nil
	}
	for k := range counts {
		counts[k] /= norm
	}
	return counts
}

// Classify returns the best-scoring language and its cosine similarity.
// Texts with no signal (too short, unknown script) return ("und", 0).
func (c *Classifier) Classify(text string) (string, float64) {
	// Strip URLs and mentions; they are language-neutral.
	var parts []string
	for _, f := range strings.Fields(text) {
		if strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://") ||
			strings.HasPrefix(f, "@") || strings.HasPrefix(f, "#") {
			continue
		}
		parts = append(parts, f)
	}
	prof := trigramProfile(strings.Join(parts, " "))
	if len(prof) == 0 {
		return "und", 0
	}
	bestLang, bestScore := "und", 0.0
	for i, lp := range c.profiles {
		var dot float64
		// Iterate the smaller profile.
		a, b := prof, lp
		if len(b) < len(a) {
			a, b = b, a
		}
		for k, v := range a {
			dot += v * b[k]
		}
		if dot > bestScore {
			bestScore = dot
			bestLang = c.langs[i]
		}
	}
	if bestScore < 0.05 {
		return "und", bestScore
	}
	return bestLang, bestScore
}

// Languages returns the trained language codes, sorted.
func (c *Classifier) Languages() []string {
	out := append([]string(nil), c.langs...)
	sort.Strings(out)
	return out
}
