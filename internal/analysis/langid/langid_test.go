package langid

import (
	"strings"
	"testing"

	"msgscope/internal/textgen"
)

func TestClassifyLexiconText(t *testing.T) {
	c := New()
	cases := map[string]string{
		"en": "the people will make good time with other work first",
		"es": "que para los una por con las del este como pero",
		"pt": "que não uma com para mais como quando muito também",
		"ja": "です ます こと これ 参加 募集 サーバー ゲーム 一緒",
		"ar": "في من على إلى عن مع هذا هذه التي الذي",
		"ru": "это как его она они что все так уже группа",
		"tr": "bir bu için ile çok daha gibi kadar ama sonra",
	}
	for want, text := range cases {
		got, score := c.Classify(text)
		if got != want {
			t.Errorf("Classify(%s text) = %s (%.3f), want %s", want, got, score, want)
		}
	}
}

func TestClassifyIgnoresURLsAndMentions(t *testing.T) {
	c := New()
	got, _ := c.Classify("@user1 https://t.me/xyz です ます 参加 サーバー #tag")
	if got != "ja" {
		t.Fatalf("got %s, want ja", got)
	}
}

func TestClassifyEmptyIsUnd(t *testing.T) {
	c := New()
	for _, text := range []string{"", "https://t.me/x", "@a @b", "  "} {
		got, score := c.Classify(text)
		if got != "und" || score != 0 {
			t.Errorf("Classify(%q) = %s/%.3f, want und/0", text, got, score)
		}
	}
}

func TestClassifyGeneratedTweets(t *testing.T) {
	// End-to-end against the generator: language stamped on the tweet
	// should usually match the classifier's verdict for scripts with
	// distinctive trigrams.
	gen := textgen.New(testRand())
	c := New()
	correct, total := 0, 0
	for _, lang := range []string{"en", "ja", "ar", "ru", "tr"} {
		for i := 0; i < 30; i++ {
			text := gen.Tweet(textgen.TweetSpec{
				Lang:  lang,
				Topic: textgen.ControlTopics()[0],
			})
			got, _ := c.Classify(text)
			total++
			if got == lang {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.55 {
		t.Fatalf("classifier accuracy %.2f on generated tweets, want >= 0.55", acc)
	}
}

func TestLanguagesSorted(t *testing.T) {
	c := New()
	langs := c.Languages()
	if len(langs) < 8 {
		t.Fatalf("trained only %d languages", len(langs))
	}
	if !strings.Contains(strings.Join(langs, ","), "en") {
		t.Fatal("English profile missing")
	}
	for i := 1; i < len(langs); i++ {
		if langs[i] < langs[i-1] {
			t.Fatal("Languages() not sorted")
		}
	}
}
