package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.N() != 4 {
		t.Fatalf("N=%d", e.N())
	}
	if got := e.P(2); got != 0.5 {
		t.Fatalf("P(2)=%v, want 0.5", got)
	}
	if got := e.P(0.5); got != 0 {
		t.Fatalf("P(0.5)=%v, want 0", got)
	}
	if got := e.P(4); got != 1 {
		t.Fatalf("P(4)=%v, want 1", got)
	}
	if e.Median() != 2 {
		t.Fatalf("median=%v", e.Median())
	}
	if e.Min() != 1 || e.Max() != 4 {
		t.Fatalf("min/max wrong: %v %v", e.Min(), e.Max())
	}
	if e.Mean() != 2.5 {
		t.Fatalf("mean=%v", e.Mean())
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		e := NewECDF(xs)
		if a > b {
			a, b = b, a
		}
		return e.P(a) <= e.P(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantileIsSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	e := NewECDF(xs)
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		v := e.Quantile(q)
		found := false
		for _, x := range xs {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("quantile %v = %v is not a sample", q, v)
		}
	}
	// Quantiles are monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := e.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestECDFQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty quantile should panic")
		}
	}()
	(&ECDF{}).Quantile(0.5)
}

func TestECDFAddThenQuery(t *testing.T) {
	var e ECDF
	for i := 1; i <= 10; i++ {
		e.AddInt(i)
	}
	if e.P(5) != 0.5 {
		t.Fatalf("P(5)=%v", e.P(5))
	}
	e.AddInt(0) // adding after query must re-sort
	if e.Min() != 0 {
		t.Fatal("min after late add wrong")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	pts := e.Points(3)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 5 {
		t.Fatalf("points do not span extremes: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
}

func TestTopShare(t *testing.T) {
	// 100 users: one posts 900, the rest 1 each.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 1
	}
	xs[42] = 901
	got := TopShare(xs, 0.01)
	if math.Abs(got-0.901) > 1e-9 {
		t.Fatalf("TopShare=%v, want 0.901", got)
	}
	if TopShare(nil, 0.01) != 0 {
		t.Fatal("empty TopShare should be 0")
	}
	if TopShare(xs, 1) != 1 {
		t.Fatal("TopShare(all) should be 1")
	}
}

func TestGini(t *testing.T) {
	equal := []float64{5, 5, 5, 5}
	if g := Gini(equal); math.Abs(g) > 1e-9 {
		t.Fatalf("Gini(equal)=%v", g)
	}
	concentrated := append(make([]float64, 99), 100)
	if g := Gini(concentrated); g < 0.9 {
		t.Fatalf("Gini(concentrated)=%v, want near 1", g)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(3)
	s.Inc(0, 2)
	s.Inc(2, 5)
	s.Inc(5, 1)  // grows
	s.Inc(-1, 9) // ignored
	if s.Len() != 6 {
		t.Fatalf("len=%d", s.Len())
	}
	if s.At(2) != 5 || s.At(99) != 0 {
		t.Fatal("At wrong")
	}
	if s.Total() != 8 {
		t.Fatalf("total=%v", s.Total())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Inc("a")
	h.IncBy("b", 3)
	if h.Share("b") != 0.75 {
		t.Fatalf("share=%v", h.Share("b"))
	}
	sorted := h.Sorted()
	if sorted[0].K != "b" || sorted[0].V != 3 {
		t.Fatalf("sorted=%v", sorted)
	}
	if h.Total() != 4 || h.Count("a") != 1 {
		t.Fatal("counts wrong")
	}
}

func TestHistogramTieBreak(t *testing.T) {
	h := NewHistogram()
	h.Inc("z")
	h.Inc("a")
	sorted := h.Sorted()
	if sorted[0].K != "a" {
		t.Fatal("ties should sort by key")
	}
}

func TestKSIdenticalAndDisjoint(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3, 4, 5})
	b := NewECDF([]float64{1, 2, 3, 4, 5})
	if d := KS(a, b); d != 0 {
		t.Fatalf("KS(identical) = %v", d)
	}
	c := NewECDF([]float64{100, 200, 300})
	if d := KS(a, c); d != 1 {
		t.Fatalf("KS(disjoint) = %v", d)
	}
}

func TestKSSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 400)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for i := range ys {
		ys[i] = rng.NormFloat64() + 0.5
	}
	a, b := NewECDF(xs), NewECDF(ys)
	d1, d2 := KS(a, b), KS(b, a)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
	}
	if d1 <= 0 || d1 >= 1 {
		t.Fatalf("KS out of (0,1): %v", d1)
	}
	// Shifted normals by 0.5 sigma: KS should be noticeable but far from 1.
	if d1 < 0.08 || d1 > 0.45 {
		t.Fatalf("KS(shifted normals) = %v, implausible", d1)
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if d := KS(NewECDF(xs), NewECDF(ys)); d > 0.09 {
		t.Fatalf("KS(same uniform) = %v, want small", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if d := KS(NewECDF(nil), NewECDF([]float64{1})); d != 1 {
		t.Fatalf("KS with empty sample = %v, want 1", d)
	}
}
