// Package stats implements the descriptive statistics the paper's figures
// are built from: empirical CDFs, quantiles, histograms, per-day time
// series, and concentration measures (top-k contribution shares).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is empty; add samples with Add or build one with
// NewECDF. Building (Add) is single-goroutine, but once built an ECDF is
// safe for concurrent reads: the lazy sort the read paths trigger is
// guarded, so cached figure results can be served to many readers at once.
type ECDF struct {
	mu     sync.Mutex // guards the lazy sort only
	sorted bool
	xs     []float64
}

// NewECDF builds an ECDF from the given samples (copied).
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{xs: append([]float64(nil), samples...)}
	e.sort()
	return e
}

// Add appends one sample.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// AddInt appends one integer sample.
func (e *ECDF) AddInt(x int) { e.Add(float64(x)) }

func (e *ECDF) sort() {
	e.mu.Lock()
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
	e.mu.Unlock()
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.xs) }

// P returns the empirical P(X <= x), i.e. the CDF evaluated at x.
// It returns 0 for an empty ECDF.
func (e *ECDF) P(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.sort()
	// Count of samples <= x.
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty ECDF or out-of-range q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		panic("stats: quantile of empty ECDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	e.sort()
	if q == 0 {
		return e.xs[0]
	}
	i := int(math.Ceil(q*float64(len(e.xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i]
}

// Median is Quantile(0.5).
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min returns the smallest sample; panics if empty.
func (e *ECDF) Min() float64 {
	e.sort()
	return e.xs[0]
}

// Max returns the largest sample; panics if empty.
func (e *ECDF) Max() float64 {
	e.sort()
	return e.xs[len(e.xs)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty ECDF.
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range e.xs {
		s += x
	}
	return s / float64(len(e.xs))
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF curve, always including the extremes.
func (e *ECDF) Points(n int) []Point {
	if len(e.xs) == 0 || n <= 0 {
		return nil
	}
	e.sort()
	if n > len(e.xs) {
		n = len(e.xs)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Sample rank evenly from first to last.
		idx := i * (len(e.xs) - 1) / max(1, n-1)
		x := e.xs[idx]
		pts = append(pts, Point{X: x, Y: float64(idx+1) / float64(len(e.xs))})
	}
	return pts
}

// Point is one (x, y) pair of a rendered curve.
type Point struct{ X, Y float64 }

// Render returns a compact textual CDF summary of the form
// "p10=.. p25=.. p50=.. p75=.. p90=.. p99=.." used by the report package.
func (e *ECDF) Render() string {
	if e.N() == 0 {
		return "(empty)"
	}
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	var sb strings.Builder
	sb.Grow(len(qs) * 16)
	for i, q := range qs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "p%02.0f=%.4g", q*100, e.Quantile(q))
	}
	return sb.String()
}

// TopShare returns the fraction of the total mass contributed by the top
// `frac` proportion of samples (e.g. frac=0.01 gives the paper's "top 1% of
// members account for X% of messages"). It returns 0 for empty input.
func TopShare(samples []float64, frac float64) float64 {
	if len(samples) == 0 || frac <= 0 {
		return 0
	}
	xs := append([]float64(nil), samples...)
	sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
	k := int(math.Ceil(frac * float64(len(xs))))
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	var top, total float64
	for i, x := range xs {
		total += x
		if i < k {
			top += x
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// Gini returns the Gini coefficient of the samples (0 = perfectly equal,
// →1 = maximally concentrated). Negative samples are not supported.
func Gini(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// KS computes the two-sample Kolmogorov-Smirnov statistic between the two
// ECDFs: the maximum vertical distance between the empirical CDFs. 0 means
// identical distributions, 1 disjoint supports. Used to quantify how close
// a measured distribution tracks its calibration target.
func KS(a, b *ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return 1
	}
	a.sort()
	b.sort()
	var d float64
	i, j := 0, 0
	for i < len(a.xs) && j < len(b.xs) {
		var x float64
		if a.xs[i] <= b.xs[j] {
			x = a.xs[i]
			i++
		} else {
			x = b.xs[j]
			j++
		}
		// Advance past duplicates of x in both samples.
		for i < len(a.xs) && a.xs[i] <= x {
			i++
		}
		for j < len(b.xs) && b.xs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(a.xs))
		fb := float64(j) / float64(len(b.xs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// Series is a per-day counter, indexed by zero-based study day.
type Series struct {
	days []float64
}

// NewSeries returns a Series with capacity for n days.
func NewSeries(n int) *Series { return &Series{days: make([]float64, n)} }

// Inc adds v to the counter of the given day, growing as needed; negative
// days are ignored (events before the study window).
func (s *Series) Inc(day int, v float64) {
	if day < 0 {
		return
	}
	for day >= len(s.days) {
		s.days = append(s.days, 0)
	}
	s.days[day] += v
}

// Len returns the number of tracked days.
func (s *Series) Len() int { return len(s.days) }

// At returns the counter for the given day (0 if out of range).
func (s *Series) At(day int) float64 {
	if day < 0 || day >= len(s.days) {
		return 0
	}
	return s.days[day]
}

// Values returns the underlying per-day values (not a copy).
func (s *Series) Values() []float64 { return s.days }

// Median returns the median per-day value, or 0 if the series is empty.
func (s *Series) Median() float64 {
	if len(s.days) == 0 {
		return 0
	}
	return NewECDF(s.days).Median()
}

// Total returns the sum over all days.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.days {
		t += v
	}
	return t
}

// Histogram counts string-keyed occurrences and reports shares.
type Histogram struct {
	counts map[string]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: map[string]int{}} }

// Inc increments key by one.
func (h *Histogram) Inc(key string) { h.IncBy(key, 1) }

// IncBy increments key by n.
func (h *Histogram) IncBy(key string, n int) {
	h.counts[key] += n
	h.total += n
}

// Count returns the count for key.
func (h *Histogram) Count(key string) int { return h.counts[key] }

// Total returns the total count across keys.
func (h *Histogram) Total() int { return h.total }

// Share returns the fraction of the total carried by key (0 if empty).
func (h *Histogram) Share(key string) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[key]) / float64(h.total)
}

// Sorted returns (key, count) pairs sorted by descending count, ties broken
// by key for determinism.
func (h *Histogram) Sorted() []KV {
	out := make([]KV, 0, len(h.counts))
	for k, v := range h.counts {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].V != out[j].V {
			return out[i].V > out[j].V
		}
		return out[i].K < out[j].K
	})
	return out
}

// KV is one histogram entry.
type KV struct {
	K string
	V int
}
