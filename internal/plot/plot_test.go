package plot

import (
	"fmt"
	"strings"
	"testing"
)

func sampleSeries() []Series {
	return []Series{
		{Name: "WhatsApp", Points: []Point{{1, 0.2}, {10, 0.6}, {100, 1.0}}},
		{Name: "Telegram", Points: []Point{{1, 0.1}, {50, 0.5}, {1000, 1.0}}},
	}
}

func TestLineSVGWellFormed(t *testing.T) {
	svg := Chart{Title: "T", XLabel: "x", YLabel: "y"}.LineSVG(sampleSeries())
	for _, want := range []string{"<svg", "</svg>", "WhatsApp", "Telegram", "<path", "T"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg[:200])
		}
	}
	if strings.Count(svg, "<path") != 2 {
		t.Fatalf("want 2 paths, got %d", strings.Count(svg, "<path"))
	}
}

func TestLineSVGLogXAndStep(t *testing.T) {
	svg := Chart{LogX: true, Step: true}.LineSVG(sampleSeries())
	if !strings.Contains(svg, "<path") {
		t.Fatal("no path in log/step chart")
	}
	// Log decade ticks: 1, 10, 100, 1000 should appear as tick labels.
	for _, tick := range []string{">1<", ">10<", ">100<"} {
		if !strings.Contains(svg, tick) {
			t.Fatalf("missing log tick %s", tick)
		}
	}
}

func TestLineSVGEmptyAndDegenerate(t *testing.T) {
	if svg := (Chart{}).LineSVG(nil); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart not closed")
	}
	// A single point and zero x values under LogX must not panic.
	svg := Chart{LogX: true}.LineSVG([]Series{{Name: "s", Points: []Point{{0, 0.5}}}})
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("degenerate chart not closed")
	}
}

func TestBarSVG(t *testing.T) {
	svg := Chart{Title: "bars", YLabel: "%"}.BarSVG(
		[]string{"a", "b"},
		[]BarGroup{{Label: "g1", Values: []float64{10, 20}}, {Label: "g2", Values: []float64{5, 0}}},
	)
	if strings.Count(svg, "<rect") < 5 { // frame + bg + 4 bars + legend swatches
		t.Fatalf("too few rects:\n%s", svg[:200])
	}
	for _, want := range []string{"g1", "g2", "bars"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestEscape(t *testing.T) {
	svg := Chart{Title: `<&">`}.LineSVG(sampleSeries())
	if strings.Contains(svg, `<&">`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "&lt;&amp;&quot;&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0: "0", 0.25: "0.25", 5: "5", 250: "250", 25000: "25K", 2500000: "2.5M",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestAppendPathCmdMatchesFmt(t *testing.T) {
	cases := []struct{ x, y float64 }{
		{0, 0}, {-0.04, 0.05}, {123.456, -789.05}, {56.0, 344.0},
		{0.25, 0.35}, {1e6, -1e-6},
	}
	for _, tc := range cases {
		want := fmt.Sprintf("M%.1f,%.1f", tc.x, tc.y)
		if got := string(appendPathCmd(nil, "M", tc.x, tc.y)); got != want {
			t.Errorf("appendPathCmd(%v, %v) = %q, want %q", tc.x, tc.y, got, want)
		}
	}
}
