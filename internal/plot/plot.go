// Package plot renders simple publication-style charts as SVG using only
// the standard library: multi-series line/step charts (for the paper's CDF
// figures) and grouped bar charts (for the share figures). The goal is not
// a general plotting system but faithful, dependency-free renderings of the
// reproduced figures.
package plot

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) pair.
type Point struct{ X, Y float64 }

// Chart configures a line/step chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX uses a log10 x-axis (x values must be > 0; zeros are clamped
	// to the smallest positive value).
	LogX bool
	// Step draws staircase segments (proper empirical CDFs).
	Step   bool
	Width  int // default 640
	Height int // default 400
}

// palette holds distinguishable stroke colors (colorblind-safe-ish).
var palette = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00"}

const margin = 56.0

func (c Chart) dims() (w, h float64) {
	if c.Width <= 0 {
		c.Width = 640
	}
	if c.Height <= 0 {
		c.Height = 400
	}
	return float64(c.Width), float64(c.Height)
}

// LineSVG renders the series as an SVG document.
func (c Chart) LineSVG(series []Series) string {
	w, h := c.dims()
	var sb strings.Builder
	svgHeader(&sb, w, h)

	minX, maxX, minY, maxY := bounds(series)
	if c.LogX {
		if minX <= 0 {
			minX = smallestPositiveX(series, maxX)
		}
		minX, maxX = math.Log10(minX), math.Log10(math.Max(maxX, minX*10))
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	sx := func(x float64) float64 {
		if c.LogX {
			if x <= 0 {
				x = math.Pow(10, minX)
			}
			x = math.Log10(x)
		}
		return margin + (x-minX)/(maxX-minX)*(w-2*margin)
	}
	sy := func(y float64) float64 {
		return h - margin - (y-minY)/(maxY-minY)*(h-2*margin)
	}

	c.frame(&sb, w, h)
	c.xTicks(&sb, w, h, minX, maxX, sx)
	c.yTicks(&sb, w, h, minY, maxY, sy)

	// Path data is the bulk of a CDF chart's output (hundreds of points per
	// series), so it is built in one pass with strconv appends instead of a
	// fmt call per point.
	var path []byte
	for i, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		color := palette[i%len(palette)]
		path = path[:0]
		for j, p := range s.Points {
			x, y := sx(p.X), sy(p.Y)
			switch {
			case j == 0:
				path = appendPathCmd(path, "M", x, y)
			case c.Step:
				prevY := sy(s.Points[j-1].Y)
				path = appendPathCmd(path, " L", x, prevY)
				path = appendPathCmd(path, " L", x, y)
			default:
				path = appendPathCmd(path, " L", x, y)
			}
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			path, color)
		// Legend entry.
		lx := margin + 10
		ly := margin + 16 + float64(i)*16
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		text(&sb, lx+24, ly, "start", escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// BarGroup is one cluster of bars sharing an x label.
type BarGroup struct {
	Label  string
	Values []float64 // one per series
}

// BarSVG renders grouped bars; seriesNames labels the bars within a group.
func (c Chart) BarSVG(seriesNames []string, groups []BarGroup) string {
	w, h := c.dims()
	var sb strings.Builder
	svgHeader(&sb, w, h)

	maxY := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	sy := func(y float64) float64 {
		return h - margin - y/maxY*(h-2*margin)
	}
	c.frame(&sb, w, h)
	c.yTicks(&sb, w, h, 0, maxY, sy)

	groupW := (w - 2*margin) / float64(max(1, len(groups)))
	barW := groupW * 0.8 / float64(max(1, len(seriesNames)))
	for gi, g := range groups {
		gx := margin + float64(gi)*groupW + groupW*0.1
		for si, v := range g.Values {
			color := palette[si%len(palette)]
			x := gx + float64(si)*barW
			y := sy(v)
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, (h-margin)-y, color)
		}
		text(&sb, gx+groupW*0.4, h-margin+16, "middle", escape(g.Label))
	}
	for si, name := range seriesNames {
		lx := margin + 10
		ly := margin + 16 + float64(si)*16
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly-10, palette[si%len(palette)])
		text(&sb, lx+18, ly, "start", escape(name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// appendPathCmd appends `<cmd>X,Y` with the coordinates rendered exactly as
// fmt's %.1f would (strconv.AppendFloat 'f'/prec 1 is the same formatter
// fmt delegates to).
func appendPathCmd(dst []byte, cmd string, x, y float64) []byte {
	dst = append(dst, cmd...)
	dst = strconv.AppendFloat(dst, x, 'f', 1, 64)
	dst = append(dst, ',')
	return strconv.AppendFloat(dst, y, 'f', 1, 64)
}

func svgHeader(sb *strings.Builder, w, h float64) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" `+
		`viewBox="0 0 %.0f %.0f" font-family="sans-serif" font-size="11">`+"\n", w, h, w, h)
	fmt.Fprintf(sb, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
}

func (c Chart) frame(sb *strings.Builder, w, h float64) {
	fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		margin, margin, w-2*margin, h-2*margin)
	if c.Title != "" {
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="14">%s</text>`+"\n",
			w/2, margin-20, escape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			w/2, h-14, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(sb, `<text x="16" y="%.1f" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			h/2, h/2, escape(c.YLabel))
	}
}

func (c Chart) xTicks(sb *strings.Builder, w, h, minX, maxX float64, sx func(float64) float64) {
	if c.LogX {
		// minX/maxX are exponents here; tick each decade.
		for e := math.Ceil(minX); e <= math.Floor(maxX)+1e-9; e++ {
			v := math.Pow(10, e)
			x := sx(v)
			tickLineX(sb, x, h)
			text(sb, x, h-margin+16, "middle", formatTick(v))
		}
		return
	}
	for i := 0; i <= 5; i++ {
		v := minX + (maxX-minX)*float64(i)/5
		x := sx(v)
		tickLineX(sb, x, h)
		text(sb, x, h-margin+16, "middle", formatTick(v))
	}
}

func (c Chart) yTicks(sb *strings.Builder, w, h, minY, maxY float64, sy func(float64) float64) {
	for i := 0; i <= 5; i++ {
		v := minY + (maxY-minY)*float64(i)/5
		y := sy(v)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			margin-4, y, margin, y)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n",
			margin, y, w-margin, y)
		text(sb, margin-8, y+4, "end", formatTick(v))
	}
}

func tickLineX(sb *strings.Builder, x, h float64) {
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
		x, h-margin, x, h-margin+4)
}

func text(sb *strings.Builder, x, y float64, anchor, s string) {
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`+"\n", x, y, anchor, s)
}

func bounds(series []Series) (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 1, 0, 1
	}
	return minX, maxX, minY, maxY
}

func smallestPositiveX(series []Series, fallback float64) float64 {
	small := math.Inf(1)
	for _, s := range series {
		for _, p := range s.Points {
			if p.X > 0 && p.X < small {
				small = p.X
			}
		}
	}
	if math.IsInf(small, 1) {
		if fallback > 0 {
			return fallback / 10
		}
		return 0.1
	}
	return small
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fK", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// xmlEscaper is hoisted to package scope so the replacement trie is
// built once, not per escaped attribute.
var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escape(s string) string {
	return xmlEscaper.Replace(s)
}
