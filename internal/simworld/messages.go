package simworld

import (
	"math/rand/v2"
	"slices"
	"time"

	"msgscope/internal/dist"
	"msgscope/internal/platform"
)

// memberListCap bounds how many member identities a group materializes —
// real platform APIs page member lists and cut off far below the largest
// channel sizes, so a 2M-member Telegram channel never yields 2M profiles.
const memberListCap = 10000

// MemberIdx returns the deterministic member identity pool of the group:
// indices into the platform's user pool. The creator is always members[0]'s
// author space; overlap across groups arises from the shared pool.
func (w *World) MemberIdx(g *Group, at time.Time) []int {
	n := w.MembersAt(g, at)
	if n > memberListCap {
		n = memberListCap
	}
	pool := w.userPoolSize[g.Platform]
	if n > pool {
		n = pool
	}
	rng := rand.New(rand.NewPCG(g.noiseSeed, 0x6D656D62)) // "memb"
	// Partial Fisher-Yates via a sparse permutation map: O(n) regardless
	// of how close n is to the pool size.
	perm := make(map[int]int, n)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + rng.IntN(pool-i)
		vj, ok := perm[j]
		if !ok {
			vj = j
		}
		vi, ok := perm[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		perm[j] = vi
	}
	return out
}

// msgModel is the per-group message-generation model, cached because
// history paging calls Messages many times per group.
type msgModel struct {
	active      []int
	authorZipf  *dist.Zipf
	typeSampler *dist.StringSampler
}

func (w *World) msgModelFor(g *Group) *msgModel {
	w.msgModelMu.Lock()
	defer w.msgModelMu.Unlock()
	if w.msgModels == nil {
		w.msgModels = map[*Group]*msgModel{}
	}
	if m, ok := w.msgModels[g]; ok {
		return m
	}
	cfg := w.platformCfg(g.Platform)
	members := w.MemberIdx(g, g.FirstShareAt)
	nActive := int(float64(len(members)) * cfg.ActiveMemberP)
	if nActive < 1 {
		nActive = 1
	}
	m := &msgModel{
		active:      members[:nActive],
		authorZipf:  dist.NewZipf(cfg.PosterZipfS, nActive),
		typeSampler: dist.NewStringSampler(cfg.MessageTypes),
	}
	w.msgModels[g] = m
	return m
}

// Messages generates the group's messages in [from, to), deterministic in
// the group. Message authors are drawn from the active subset of the member
// pool with the platform's posting skew, so per-user volumes reproduce the
// paper's concentration (top 1% of members post 31-63% of messages).
func (w *World) Messages(g *Group, from, to time.Time) []Message {
	if !to.After(from) {
		return nil
	}
	model := w.msgModelFor(g)
	active, authorZipf, typeSampler := model.active, model.authorZipf, model.typeSampler

	// For determinism independent of the queried window, messages are
	// generated day by day from the group's creation, with a per-day RNG.
	genStart := g.CreatedAt
	if genStart.Before(from) {
		// Fast-forward: day streams are independent, so skip directly to
		// the first requested day.
		genStart = from
	}
	dayStart := genStart.Truncate(24 * time.Hour)
	// Pre-size the output to the expected volume of the generated days so
	// the append loop does not regrow: sum of per-channel rates times the
	// day count, capped to keep a pathological window from over-reserving.
	var rateSum float64
	for _, r := range g.MsgRates {
		rateSum += r
	}
	days := int(to.Sub(dayStart)/(24*time.Hour)) + 1
	est := int(rateSum*float64(days)) + 16
	out := make([]Message, 0, min(est, 1<<20))
	// One PCG reused across all day x channel streams: Seed resets it to
	// the exact state NewPCG would produce, so the draw sequences are
	// identical to the per-stream construction this replaces.
	var pcg rand.PCG
	dayRng := rand.New(&pcg)
	for !dayStart.After(to) {
		dayEnd := dayStart.Add(24 * time.Hour)
		dayIdx := uint64(dayStart.Unix() / 86400)
		for c := 0; c < g.Channels; c++ {
			pcg.Seed(g.noiseSeed^uint64(c)<<32, dayIdx)
			n := dist.Poisson(dayRng, g.MsgRates[c])
			for i := 0; i < n; i++ {
				// All draws happen unconditionally so the RNG stream stays
				// aligned no matter how the requested window slices the
				// day — history paging must see identical messages.
				at := dayStart.Add(time.Duration(dayRng.Int64N(int64(24 * time.Hour))))
				author := active[authorZipf.Sample(dayRng)-1]
				typ := parseMsgType(typeSampler.Sample(dayRng))
				if at.Before(from) || !at.Before(to) || at.Before(g.CreatedAt) {
					continue
				}
				m := Message{
					GroupCode: g.Code,
					Channel:   c,
					AuthorIdx: author,
					SentAt:    at,
					Type:      typ,
					Seq:       uint32(c)<<18 | uint32(i)&0x3FFFF,
				}
				if w.Cfg.GenerateMessageText && m.Type == platform.Text {
					// Serialized: the per-platform text generator has its
					// own RNG and platform services handle requests
					// concurrently.
					w.msgModelMu.Lock()
					m.Text = w.msgTextGen[g.Platform].Message(g.Lang, g.Topic)
					w.msgModelMu.Unlock()
				}
				out = append(out, m)
			}
		}
		dayStart = dayEnd
	}
	// Time-ordered, as every platform's history API serves them. Seq
	// breaks same-millisecond ties deterministically; the key is a total
	// order, so the unstable sort has a unique result.
	slices.SortFunc(out, func(a, b Message) int {
		if c := a.SentAt.Compare(b.SentAt); c != 0 {
			return c
		}
		if a.Channel != b.Channel {
			return a.Channel - b.Channel
		}
		return int(a.Seq) - int(b.Seq)
	})
	return out
}

func parseMsgType(s string) platform.MessageType {
	switch s {
	case "text":
		return platform.Text
	case "image":
		return platform.Image
	case "video":
		return platform.Video
	case "audio":
		return platform.Audio
	case "sticker":
		return platform.Sticker
	case "document":
		return platform.Document
	case "contact":
		return platform.Contact
	case "location":
		return platform.Location
	default:
		return platform.Service
	}
}

// UserByIdx materializes the user identity at a pool index, deterministic
// in (platform, idx, world seed). PII attributes follow the platform's
// calibration: WhatsApp members always expose phones, Telegram members only
// on opt-in, Discord members expose linked accounts.
//
// Identities are pure functions of their inputs, so results are memoized
// for the world's lifetime; callers must treat the returned User
// (including the shared Linked slice) as read-only.
func (w *World) UserByIdx(p platform.Platform, idx int) User {
	key := uint64(p)<<32 | uint64(uint32(idx))
	if v, ok := w.userCache.Load(key); ok {
		return v.(User)
	}
	u := w.buildUser(p, idx)
	w.userCache.Store(key, u)
	return u
}

func (w *World) buildUser(p platform.Platform, idx int) User {
	cfg := w.platformCfg(p)
	rng := rand.New(rand.NewPCG(w.Cfg.Seed^uint64(idx)<<20, uint64(p)+0x75736572)) // "user"
	u := User{
		Platform: p,
		Idx:      idx,
		ID:       uint64(idx)*2654435761 + uint64(p) + 1,
		Name:     userName(rng),
	}
	switch p {
	case platform.WhatsApp:
		u.Country = w.waMemberCountry(rng, cfg)
		u.Phone = phoneFor(u.Country, uint64(idx)+1_000_000)
		u.PhoneVisible = true
	case platform.Telegram:
		u.PhoneVisible = dist.Bernoulli(rng, cfg.PhoneVisibleP)
		if u.PhoneVisible {
			u.Country = "OTHER"
			u.Phone = phoneFor(u.Country, uint64(idx)+2_000_000)
		}
	case platform.Discord:
		if dist.Bernoulli(rng, cfg.LinkedAccountP) {
			u.Linked = sampleLinked(rng, w.linkedSamplerFor(p, cfg))
		}
	}
	return u
}

func (w *World) linkedSamplerFor(p platform.Platform, cfg *PlatformConfig) *dist.StringSampler {
	if s := w.linkedSamplers[p]; s != nil {
		return s
	}
	return dist.NewStringSampler(cfg.LinkedAccounts)
}

// sampleLinked draws the connected-account set of a "linker" Discord user:
// one guaranteed account plus extras, proportional to the Table 5 mix.
func sampleLinked(rng *rand.Rand, sampler *dist.StringSampler) []string {
	seen := map[string]struct{}{}
	first := sampler.Sample(rng)
	seen[first] = struct{}{}
	out := []string{first}
	// Conditional extras: linkers average ~2.5 distinct connections so
	// the per-platform marginals land near Table 5 (sum of shares ~0.75
	// per observed user / 30% linkers).
	extra := dist.Poisson(rng, 2.2)
	for i := 0; i < extra; i++ {
		s := sampler.Sample(rng)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

func (w *World) waMemberCountry(rng *rand.Rand, cfg *PlatformConfig) string {
	if len(cfg.Countries) == 0 {
		return "OTHER"
	}
	cat := w.countryCats[platform.WhatsApp]
	if cat == nil {
		cat = dist.NewCategorical(countryWeights(cfg))
	}
	return cfg.Countries[cat.Sample(rng)].Key
}

func countryWeights(cfg *PlatformConfig) []float64 {
	ws := make([]float64, len(cfg.Countries))
	for i, c := range cfg.Countries {
		ws[i] = c.Weight
	}
	return ws
}

var nameParts = []string{
	"ada", "bel", "cam", "dor", "eva", "fin", "gus", "hal", "ina", "jon",
	"kat", "lua", "mel", "nia", "oto", "pia", "qui", "rok", "sol", "tam",
}

func userName(rng *rand.Rand) string {
	return nameParts[rng.IntN(len(nameParts))] + nameParts[rng.IntN(len(nameParts))]
}
