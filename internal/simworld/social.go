package simworld

import (
	"fmt"
	"time"

	"msgscope/internal/dist"
	"msgscope/internal/ids"
	"msgscope/internal/textgen"
)

// Post is one public post on the secondary social network ("the lens the
// paper's future work adds": discovering invite URLs shared outside
// Twitter, e.g. on Facebook or Instagram).
type Post struct {
	ID        uint64
	AuthorID  string
	CreatedAt time.Time
	Text      string
	Group     *Group
}

// genSocial generates the secondary network's post stream: crossposts of
// Twitter-shared groups plus the posts of social-only groups (whose invite
// URLs never appear on Twitter at all — the population a Twitter-only
// study can never see).
func (w *World) genSocial() {
	rng := ids.Fork(w.Cfg.Seed, "world/social")
	tg := textgen.New(ids.Fork(w.Cfg.Seed, "text/social"))
	postSeq := ids.NewSequence(ids.TwitterEpochMS)
	w.PostsByDay = make([][]*Post, w.Cfg.Days)
	windowEnd := w.Cfg.Start.Add(time.Duration(w.Cfg.Days) * 24 * time.Hour)

	for _, groups := range w.Groups {
		for _, g := range groups {
			cfg := w.platformCfg(g.Platform)
			crosspost := dist.Bernoulli(rng, cfg.CrosspostP)
			if !g.SocialOnly && !crosspost {
				continue
			}
			n := 1 + dist.Geometric(rng, 0.5)
			for i := 0; i < n; i++ {
				// Posts cluster around the group's first share; social
				// posts can precede the first tweet by up to a day, so the
				// second source sometimes discovers a group first.
				offset := time.Duration(rng.Int64N(int64(72*time.Hour))) - 24*time.Hour
				at := g.FirstShareAt.Add(offset)
				if at.Before(w.Cfg.Start) || !at.Before(windowEnd) {
					continue
				}
				day := w.DayOf(at)
				post := &Post{
					AuthorID:  fmt.Sprintf("social-u%d", rng.IntN(100000)),
					CreatedAt: at,
					Group:     g,
				}
				post.Text = tg.Tweet(textgen.TweetSpec{
					Lang:  g.Lang,
					Topic: g.Topic,
					URL:   g.URL,
				})
				w.PostsByDay[day] = append(w.PostsByDay[day], post)
			}
		}
	}
	// IDs are assigned in feed order (time-sorted), so they are monotone
	// and the feed's since_id cursor is sound.
	for d := range w.PostsByDay {
		day := w.PostsByDay[d]
		sortPostsByTime(day)
		for _, p := range day {
			p.ID = postSeq.Next(p.CreatedAt)
		}
	}
}

func sortPostsByTime(posts []*Post) {
	// Insertion sort: per-day post counts are small and mostly ordered.
	for i := 1; i < len(posts); i++ {
		for j := i; j > 0 && posts[j].CreatedAt.Before(posts[j-1].CreatedAt); j-- {
			posts[j], posts[j-1] = posts[j-1], posts[j]
		}
	}
}
