// Package simworld generates the synthetic ground-truth ecosystem the study
// measures: group URLs with full lifecycles (creation, Twitter share
// schedule, membership dynamics, revocation), the tweets that carry them, a
// control tweet stream, per-platform user populations with PII attributes,
// and in-group message streams. Platform and Twitter services serve this
// world over HTTP; the collection pipeline never reads it directly.
package simworld

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"msgscope/internal/dist"
	"msgscope/internal/ids"
	"msgscope/internal/platform"
	"msgscope/internal/textgen"
)

// Group is the ground truth behind one invite URL.
type Group struct {
	Platform platform.Platform
	Code     string // invite code or public name (the URL path component)
	URL      string // canonical URL as shared in tweets
	Title    string
	Lang     string
	Topic    textgen.Topic

	CreatedAt    time.Time // group creation (staleness anchor)
	FirstShareAt time.Time // first tweet carrying the URL
	RevokedAt    time.Time // zero value: never revoked in the window

	IsChannel     bool // Telegram: channel rather than group
	HiddenMembers bool // Telegram: admins hide the member list
	SocialOnly    bool // shared only on the secondary network, never tweeted

	CreatorIdx     int    // index into the platform's creator pool
	CreatorPhone   string // WhatsApp: exposed on the landing page
	CreatorCountry string // WhatsApp: phone country code

	GuildID uint64 // Discord: snowflake encoding CreatedAt

	BaseMembers int     // size at first share
	Drift       float64 // members/day (signed)
	OnlineFrac  float64 // expected online fraction

	Channels int       // rooms per unit (Discord servers have several)
	MsgRates []float64 // expected messages/day per room

	noiseSeed uint64
	shares    []time.Time // full share schedule (including FirstShareAt)
}

// Tweet is one synthetic tweet. Group is nil for control-stream tweets.
type Tweet struct {
	ID        uint64
	AuthorID  string
	CreatedAt time.Time
	Text      string
	Lang      string
	Hashtags  int
	Mentions  int
	Retweet   bool
	Group     *Group
}

// Message is one in-group message of a joined group.
type Message struct {
	GroupCode string
	Channel   int
	AuthorIdx int // index into the platform user pool
	SentAt    time.Time
	Type      platform.MessageType
	Text      string // empty unless Config.GenerateMessageText
	// Seq disambiguates messages sharing a millisecond: channel index in
	// the high bits, the per-(day, channel) generation index below. The
	// Discord service packs it into message snowflakes.
	Seq uint32
}

// User is one messaging-platform user with their PII attributes.
type User struct {
	Platform     platform.Platform
	Idx          int
	ID           uint64
	Name         string
	Phone        string // E.164-ish; empty if the platform never exposes it
	Country      string
	PhoneVisible bool
	Linked       []string // Discord connected accounts (Table 5 platforms)
}

// groupKey is the comparable invite-code index key; a struct key keeps the
// per-request GroupByCode lookups on the service hot path allocation-free.
type groupKey struct {
	p    platform.Platform
	code string
}

// World holds the generated ground truth.
type World struct {
	Cfg Config

	Groups       map[platform.Platform][]*Group
	byKey        map[groupKey]*Group
	TweetsByDay  [][]*Tweet        // per study day, sorted by CreatedAt
	ControlByDay [][]*Tweet
	PostsByDay   [][]*Post // secondary social network

	userPoolSize map[platform.Platform]int
	msgTextGen   map[platform.Platform]*textgen.Generator

	msgModelMu sync.Mutex
	msgModels  map[*Group]*msgModel

	// userCache memoizes UserByIdx: user identities are pure functions of
	// (platform, idx, seed) and the history/participant paths resolve the
	// same authors for every page. Entries live as long as the world.
	userCache sync.Map // uint64(p)<<32|idx -> User

	// Samplers that UserByIdx would otherwise rebuild per call.
	countryCats    map[platform.Platform]*dist.Categorical
	linkedSamplers map[platform.Platform]*dist.StringSampler
}

// New generates a world from cfg. Generation is deterministic in cfg.Seed.
func New(cfg Config) *World {
	if cfg.Days <= 0 {
		cfg.Days = 38
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2020, time.April, 8, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	w := &World{
		Cfg:          cfg,
		Groups:       map[platform.Platform][]*Group{},
		byKey:        map[groupKey]*Group{},
		TweetsByDay:  make([][]*Tweet, cfg.Days),
		ControlByDay: make([][]*Tweet, cfg.Days),
		userPoolSize: map[platform.Platform]int{},
		msgTextGen:   map[platform.Platform]*textgen.Generator{},
	}
	// Pool sizes are set so member overlap across joined groups matches the
	// paper: WhatsApp's 416 joined groups held 20,906 distinct members for
	// ~21K member slots — essentially no overlap.
	w.userPoolSize[platform.WhatsApp] = scaleCount(600000, cfg.Scale, 20000)
	w.userPoolSize[platform.Telegram] = scaleCount(900000, cfg.Scale, 20000)
	w.userPoolSize[platform.Discord] = scaleCount(70000, cfg.Scale, 5000)
	w.countryCats = map[platform.Platform]*dist.Categorical{}
	w.linkedSamplers = map[platform.Platform]*dist.StringSampler{}
	for _, p := range platform.All {
		pcfg := w.platformCfg(p)
		if len(pcfg.Countries) > 0 {
			w.countryCats[p] = dist.NewCategorical(countryWeights(pcfg))
		}
		if len(pcfg.LinkedAccounts) > 0 {
			w.linkedSamplers[p] = dist.NewStringSampler(pcfg.LinkedAccounts)
		}
	}
	for _, p := range platform.All {
		w.msgTextGen[p] = textgen.New(ids.Fork(cfg.Seed, "msgtext/"+p.String()))
		w.genPlatform(p)
	}
	w.genControl()
	w.genSocial()
	for d := range w.TweetsByDay {
		sort.Slice(w.TweetsByDay[d], func(i, j int) bool {
			a, b := w.TweetsByDay[d][i], w.TweetsByDay[d][j]
			if !a.CreatedAt.Equal(b.CreatedAt) {
				return a.CreatedAt.Before(b.CreatedAt)
			}
			return a.ID < b.ID
		})
	}
	return w
}

func scaleCount(full int, scale float64, floor int) int {
	n := int(math.Round(float64(full) * scale))
	if n < floor {
		n = floor
	}
	return n
}

func (w *World) platformCfg(p platform.Platform) *PlatformConfig {
	switch p {
	case platform.WhatsApp:
		return &w.Cfg.WhatsApp
	case platform.Telegram:
		return &w.Cfg.Telegram
	case platform.Discord:
		return &w.Cfg.Discord
	}
	panic(fmt.Sprintf("simworld: unknown platform %v", p))
}

// GroupByCode resolves an invite code to its ground-truth group, or nil.
func (w *World) GroupByCode(p platform.Platform, code string) *Group {
	return w.byKey[groupKey{p, code}]
}

// UserPoolSize returns the size of a platform's member identity pool.
func (w *World) UserPoolSize(p platform.Platform) int { return w.userPoolSize[p] }

// DayOf maps an instant to a zero-based study day (negative before start).
func (w *World) DayOf(t time.Time) int {
	return int(t.Sub(w.Cfg.Start) / (24 * time.Hour))
}

// genPlatform generates all groups and their tweets for one platform.
func (w *World) genPlatform(p platform.Platform) {
	cfg := w.platformCfg(p)
	rng := ids.Fork(w.Cfg.Seed, "world/"+p.String())
	tg := textgen.New(ids.Fork(w.Cfg.Seed, "text/"+p.String()))
	topics := textgen.TopicsFor(p)
	langs := dist.NewStringSampler(cfg.Languages)
	authorZipf := dist.NewZipf(cfg.AuthorZipfS, scaleCount(cfg.AuthorPool, w.Cfg.Scale, 500))
	shareTail := dist.ZipfWithMean(cfg.TailMeanShares-1, cfg.MaxShares-1)
	countries := countrySampler(cfg)
	guildSeq := ids.NewSequence(ids.DiscordEpochMS)
	tweetSeq := ids.NewSequence(ids.TwitterEpochMS)
	cs := &creatorState{}

	dayLen := 24 * time.Hour
	// NewURLsPerDay calibrates the *Twitter-discoverable* population;
	// social-only groups come on top of it.
	dailyGroups := cfg.NewURLsPerDay * w.Cfg.Scale / (1 - cfg.SocialOnlyP)
	for day := 0; day < w.Cfg.Days; day++ {
		nNew := dist.Poisson(rng, dailyGroups)
		dayStart := w.Cfg.Start.Add(time.Duration(day) * dayLen)
		for i := 0; i < nNew; i++ {
			g := w.genGroup(p, cfg, rng, tg, topics, langs, countries, guildSeq, cs, dayStart)
			w.genShares(g, cfg, rng, shareTail, dayStart)
			w.Groups[p] = append(w.Groups[p], g)
			w.byKey[groupKey{p, g.Code}] = g
			w.genTweets(g, cfg, rng, tg, langs, authorZipf, tweetSeq, p)
		}
	}
}

// creatorState tracks the per-platform creator population: one country per
// creator (the identity must be stable across their groups) and the
// group-creator history used for preferential attachment (a few users
// create dozens of groups — the paper's 28-group WhatsApp user and
// 61-group Discord user).
type creatorState struct {
	countries     []string
	groupCreators []int // creator index of each group, in creation order
}

// genGroup builds one group with its full lifecycle.
func (w *World) genGroup(p platform.Platform, cfg *PlatformConfig, rng *rand.Rand,
	tg *textgen.Generator, topics []textgen.Topic, langs *dist.StringSampler,
	countries *dist.StringSampler, guildSeq *ids.Sequence, cs *creatorState,
	dayStart time.Time) *Group {

	firstShare := dayStart.Add(time.Duration(rng.Int64N(int64(24 * time.Hour))))
	g := &Group{
		Platform:     p,
		Topic:        tg.PickTopic(topics),
		Lang:         langs.Sample(rng),
		FirstShareAt: firstShare,
		noiseSeed:    rng.Uint64(),
	}
	g.Title = tg.GroupTitle(g.Lang, g.Topic)

	// Invite code / URL shape per platform.
	switch p {
	case platform.WhatsApp:
		g.Code = ids.Code(rng, 22)
		g.URL = "https://chat.whatsapp.com/" + g.Code
	case platform.Telegram:
		if dist.Bernoulli(rng, 0.55) {
			g.Code = "joinchat/" + ids.Code(rng, 16)
		} else {
			g.Code = "grp" + ids.Code(rng, 10)
		}
		host := "t.me"
		r := rng.Float64()
		switch {
		case r < 0.08:
			host = "telegram.me"
		case r < 0.10:
			host = "telegram.org"
		}
		g.URL = "https://" + host + "/" + g.Code
	case platform.Discord:
		g.Code = ids.Code(rng, 8)
		if dist.Bernoulli(rng, 0.15) {
			g.URL = "https://discord.com/invite/" + g.Code
		} else {
			g.URL = "https://discord.gg/" + g.Code
		}
	}

	// Staleness (Figure 5): creation date relative to the first share.
	switch {
	case dist.Bernoulli(rng, cfg.SameDayCreationP):
		back := time.Duration(rng.Int64N(int64(20 * time.Hour)))
		g.CreatedAt = firstShare.Add(-back)
		if g.CreatedAt.Before(dayStart) {
			g.CreatedAt = dayStart
		}
	case dist.Bernoulli(rng, cfg.OldGroupP/(1-cfg.SameDayCreationP)):
		years := 1 + rng.Float64()*3.5 // 1 to ~4.5 years, rare 6-year tail
		if rng.Float64() < 0.02 {
			years += rng.Float64() * 2
		}
		g.CreatedAt = firstShare.Add(-time.Duration(years * 365 * 24 * float64(time.Hour)))
	default:
		days := dist.Exponential(rng, cfg.MidAgeMeanDays)
		if days > 364 {
			days = 364
		}
		if days < 1 {
			days = 1
		}
		g.CreatedAt = firstShare.Add(-time.Duration(days * 24 * float64(time.Hour)))
	}

	// Revocation fate (Figure 6).
	windowEnd := w.Cfg.Start.Add(time.Duration(w.Cfg.Days) * 24 * time.Hour)
	switch {
	case dist.Bernoulli(rng, cfg.QuickDeathP):
		// Dead within 0.2-2.5 hours of the first share, i.e. (almost
		// always) before the end-of-day monitoring sweep first probes it.
		g.RevokedAt = firstShare.Add(time.Duration(12+rng.Int64N(138)) * time.Minute)
	case dist.Bernoulli(rng, cfg.SlowDeathP/math.Max(1e-9, 1-cfg.QuickDeathP)):
		rest := windowEnd.Sub(firstShare)
		if rest > 24*time.Hour {
			g.RevokedAt = firstShare.Add(24*time.Hour +
				time.Duration(rng.Int64N(int64(rest-24*time.Hour))))
		} else {
			g.RevokedAt = firstShare.Add(rest / 2)
		}
	}

	// Telegram structure.
	if p == platform.Telegram {
		g.IsChannel = dist.Bernoulli(rng, cfg.ChannelP)
		g.HiddenMembers = dist.Bernoulli(rng, cfg.HiddenMembersP)
	}

	// A slice of the population is shared only on the secondary social
	// network and never tweeted.
	g.SocialOnly = dist.Bernoulli(rng, cfg.SocialOnlyP)

	// Creator: either a fresh user or, with CreatorMultiP, an existing
	// creator chosen by preferential attachment (proportional to the
	// groups they already created), which yields the paper's heavy tail
	// of multi-group creators.
	if dist.Bernoulli(rng, cfg.CreatorMultiP) && len(cs.groupCreators) > 0 {
		g.CreatorIdx = cs.groupCreators[rng.IntN(len(cs.groupCreators))]
	} else {
		g.CreatorIdx = len(cs.countries)
		cs.countries = append(cs.countries, countries.Sample(rng))
	}
	cs.groupCreators = append(cs.groupCreators, g.CreatorIdx)
	if p == platform.WhatsApp {
		g.CreatorCountry = cs.countries[g.CreatorIdx]
		g.CreatorPhone = phoneFor(g.CreatorCountry, uint64(g.CreatorIdx))
	}
	if p == platform.Discord {
		g.GuildID = guildSeq.Next(g.CreatedAt)
	}

	// Membership dynamics (Figure 7).
	g.BaseMembers = dist.LogNormalInt(rng, cfg.MemberMu, cfg.MemberSigma, 2, cfg.MemberCap)
	dir := 0.0
	r := rng.Float64()
	switch {
	case r < cfg.GrowP:
		dir = 1
	case r < cfg.GrowP+cfg.ShrinkP:
		dir = -1
	}
	g.Drift = dir * float64(g.BaseMembers) * cfg.DriftFracPerDay * (0.2 + rng.Float64()*1.8)
	if cfg.HasOnlineCount {
		g.OnlineFrac = sigmoid(rng.NormFloat64()*cfg.OnlineLogitSigma + cfg.OnlineLogitMu)
	}

	// Messaging shape (Figures 8, 9).
	g.Channels = cfg.ChannelsMin
	if cfg.ChannelsMax > cfg.ChannelsMin {
		g.Channels += rng.IntN(cfg.ChannelsMax - cfg.ChannelsMin + 1)
	}
	g.MsgRates = make([]float64, g.Channels)
	for c := range g.MsgRates {
		g.MsgRates[c] = dist.LogNormal(rng, cfg.MsgPerDayMu, cfg.MsgPerDaySigma)
		if g.MsgRates[c] > 4000 {
			g.MsgRates[c] = 4000
		}
	}
	return g
}

// genShares samples the share schedule: total share count S (single-share
// mass plus Zipf tail) spread over days with geometric gaps.
func (w *World) genShares(g *Group, cfg *PlatformConfig, rng *rand.Rand,
	tail *dist.Zipf, dayStart time.Time) {

	shares := 1
	switch {
	case cfg.ViralP > 0 && dist.Bernoulli(rng, cfg.ViralP):
		shares = cfg.ViralMinShares + rng.IntN(cfg.ViralMaxShares-cfg.ViralMinShares+1)
	case !dist.Bernoulli(rng, cfg.SingleShareP):
		shares = 1 + tail.Sample(rng)
	}
	g.shares = make([]time.Time, 0, min(shares, 1<<16))
	g.shares = append(g.shares, g.FirstShareAt)
	windowEnd := w.Cfg.Start.Add(time.Duration(w.Cfg.Days) * 24 * time.Hour)
	if shares >= 40 {
		// Heavily shared URLs are re-shared continuously for the rest of
		// the window (the paper's >10K-tweet Telegram URLs appear every
		// day); scheduling them uniformly also keeps the share counts a
		// collector can observe close to the calibrated means instead of
		// truncating long geometric-gap chains at the window edge.
		span := windowEnd.Sub(g.FirstShareAt)
		for i := 1; i < shares; i++ {
			g.shares = append(g.shares, g.FirstShareAt.Add(time.Duration(rng.Int64N(int64(span)))))
		}
		return
	}
	t := g.FirstShareAt
	for i := 1; i < shares; i++ {
		gapDays := dist.Geometric(rng, cfg.ShareSpreadP)
		// Re-shares of heavily shared URLs cluster: most land on the same
		// day, advancing by fractions of a day.
		t = t.Add(time.Duration(float64(gapDays)*24*float64(time.Hour)) +
			time.Duration(rng.Int64N(int64(6*time.Hour))))
		if !t.Before(windowEnd) {
			break
		}
		g.shares = append(g.shares, t)
	}
}

// genTweets materializes the group's share schedule as tweets.
func (w *World) genTweets(g *Group, cfg *PlatformConfig, rng *rand.Rand,
	tg *textgen.Generator, langs *dist.StringSampler, authorZipf *dist.Zipf,
	tweetSeq *ids.Sequence, p platform.Platform) {

	if g.SocialOnly {
		return
	}
	for _, at := range g.shares {
		day := w.DayOf(at)
		if day < 0 || day >= w.Cfg.Days {
			continue
		}
		// Sharers mostly tweet in the group's language; heavily shared URLs
		// are re-shared far beyond their community, so their tweet languages
		// follow the platform mix instead of multiplying one group's
		// language thousands of times.
		resampleP := 0.25
		if len(g.shares) >= 40 {
			resampleP = 1
		}
		lang := g.Lang
		if rng.Float64() < resampleP {
			lang = langs.Sample(rng)
		}
		tw := &Tweet{
			ID:        tweetSeq.Next(at),
			AuthorID:  fmt.Sprintf("%s-u%d", p, authorZipf.Sample(rng)),
			CreatedAt: at,
			Lang:      lang,
			Hashtags:  featureCount(rng, cfg.HashtagP, cfg.MultiHashtagP),
			Mentions:  featureCount(rng, cfg.MentionP, cfg.MultiMentionP),
			Retweet:   dist.Bernoulli(rng, cfg.RetweetP),
			Group:     g,
		}
		tw.Text = tg.Tweet(textgen.TweetSpec{
			Lang:       lang,
			Topic:      g.Topic,
			URL:        g.URL,
			NumHashtag: tw.Hashtags,
			NumMention: tw.Mentions,
			Retweet:    tw.Retweet,
		})
		w.TweetsByDay[day] = append(w.TweetsByDay[day], tw)
	}
}

// genControl generates the 1% sample control stream.
func (w *World) genControl() {
	cfg := w.Cfg.Control
	rng := ids.Fork(w.Cfg.Seed, "world/control")
	tg := textgen.New(ids.Fork(w.Cfg.Seed, "text/control"))
	topics := textgen.ControlTopics()
	langs := dist.NewStringSampler(cfg.Languages)
	tweetSeq := ids.NewSequence(ids.TwitterEpochMS)
	authorZipf := dist.NewZipf(1.05, scaleCount(1_200_000, w.Cfg.Scale, 2000))

	for day := 0; day < w.Cfg.Days; day++ {
		n := dist.Poisson(rng, cfg.TweetsPerDay*w.Cfg.Scale)
		dayStart := w.Cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		for i := 0; i < n; i++ {
			at := dayStart.Add(time.Duration(rng.Int64N(int64(24 * time.Hour))))
			lang := langs.Sample(rng)
			topic := tg.PickTopic(topics)
			tw := &Tweet{
				ID:        tweetSeq.Next(at),
				AuthorID:  fmt.Sprintf("ctl-u%d", authorZipf.Sample(rng)),
				CreatedAt: at,
				Lang:      lang,
				Hashtags:  featureCount(rng, cfg.HashtagP, cfg.MultiHashtagP),
				Mentions:  featureCount(rng, cfg.MentionP, cfg.MultiMentionP),
				Retweet:   dist.Bernoulli(rng, cfg.RetweetP),
			}
			tw.Text = tg.Tweet(textgen.TweetSpec{
				Lang:       lang,
				Topic:      topic,
				NumHashtag: tw.Hashtags,
				NumMention: tw.Mentions,
				Retweet:    tw.Retweet,
			})
			w.ControlByDay[day] = append(w.ControlByDay[day], tw)
		}
		sort.Slice(w.ControlByDay[day], func(i, j int) bool {
			return w.ControlByDay[day][i].CreatedAt.Before(w.ControlByDay[day][j].CreatedAt)
		})
	}
}

// featureCount samples 0 (1-p), 1 (p-pMulti), or 2+geometric (pMulti).
func featureCount(rng *rand.Rand, p, pMulti float64) int {
	u := rng.Float64()
	switch {
	case u >= p:
		return 0
	case u >= pMulti:
		return 1
	default:
		return 2 + dist.Geometric(rng, 0.6)
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func countrySampler(cfg *PlatformConfig) *dist.StringSampler {
	if len(cfg.Countries) == 0 {
		return dist.NewStringSampler([]dist.WeightedString{{Key: "US", Weight: 1}})
	}
	return dist.NewStringSampler(cfg.Countries)
}

var countryCallingCodes = map[string]string{
	"BR": "55", "NG": "234", "ID": "62", "IN": "91", "SA": "966",
	"MX": "52", "AR": "54", "US": "1", "PK": "92", "EG": "20",
	"TR": "90", "KE": "254", "ZA": "27", "CO": "57", "ES": "34",
	"KW": "965", "OTHER": "44",
}

// phoneFor builds a deterministic E.164-ish phone number for a creator or
// member identity.
func phoneFor(country string, idx uint64) string {
	cc, ok := countryCallingCodes[country]
	if !ok {
		cc = "44"
	}
	// Mix the index so consecutive users don't get consecutive numbers.
	x := idx*2654435761 + 0x9E3779B9
	return fmt.Sprintf("+%s%09d", cc, x%1_000_000_000)
}
