package simworld

import (
	"math"
	"time"
)

// AliveAt reports whether the group URL still resolves at t (i.e. the group
// exists and the invite has not been revoked or expired).
func (w *World) AliveAt(g *Group, t time.Time) bool {
	return g.RevokedAt.IsZero() || t.Before(g.RevokedAt)
}

// MembersAt returns the member count at t: a random walk around the base
// size with the group's drift, deterministic in (group, day) so repeated
// probes agree.
func (w *World) MembersAt(g *Group, t time.Time) int {
	days := t.Sub(g.FirstShareAt).Hours() / 24
	if days < 0 {
		days = 0
	}
	m := float64(g.BaseMembers) + g.Drift*days
	// Bounded daily noise, ±3% of base. Zero-drift groups stay exactly
	// flat — the paper observes a sizable no-change population (e.g. 23%
	// of Telegram groups), which per-day noise would otherwise erase.
	if g.Drift != 0 {
		day := int64(t.Sub(w.Cfg.Start) / (24 * time.Hour))
		m += hashUnit(g.noiseSeed, uint64(day)) * 0.03 * float64(g.BaseMembers)
	}
	cap := w.platformCfg(g.Platform).MemberCap
	if m > float64(cap) {
		m = float64(cap)
	}
	if m < 1 {
		m = 1
	}
	return int(math.Round(m))
}

// OnlineAt returns the number of members shown online at t (0 on platforms
// without an online indicator).
func (w *World) OnlineAt(g *Group, t time.Time) int {
	if !w.platformCfg(g.Platform).HasOnlineCount {
		return 0
	}
	members := w.MembersAt(g, t)
	day := int64(t.Sub(w.Cfg.Start) / (24 * time.Hour))
	frac := g.OnlineFrac * (1 + 0.2*hashUnit(g.noiseSeed^0xABCD, uint64(day)))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(members)))
	if n > members {
		n = members
	}
	return n
}

// hashUnit maps (seed, x) to a deterministic value in [-1, 1].
func hashUnit(seed, x uint64) float64 {
	h := seed ^ x*0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return float64(h)/float64(math.MaxUint64)*2 - 1
}
