package simworld

import (
	"time"

	"msgscope/internal/dist"
	"msgscope/internal/simclock"
)

// Config parameterizes the synthetic ecosystem. DefaultConfig returns the
// calibration to the paper's reported distributions; Scale multiplies every
// volume knob so the 38-day study can run quickly at reduced size.
type Config struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed uint64
	// Scale multiplies daily tweet/URL volumes (1.0 = paper scale).
	Scale float64
	// Days is the length of the collection window (paper: 38).
	Days int
	// Start is the first instant of day 0 (paper: 2020-04-08 UTC).
	Start time.Time
	// GenerateMessageText controls whether in-group messages carry bodies.
	// The paper's figures only need type/author/time, so tests leave this
	// off to save memory; examples that display messages turn it on.
	GenerateMessageText bool

	WhatsApp PlatformConfig
	Telegram PlatformConfig
	Discord  PlatformConfig
	Control  ControlConfig
}

// PlatformConfig calibrates one messaging platform's synthetic population.
// All *PerDay volumes are at Scale=1.
type PlatformConfig struct {
	// Tweet volume.
	TweetsPerDay  float64 // mean tweets/day carrying this platform's URLs
	NewURLsPerDay float64 // mean never-seen-before group URLs per day
	AuthorPool    int     // distinct Twitter users tweeting these URLs
	AuthorZipfS   float64 // author activity skew

	// Per-URL share multiplicity: P(S=1) mass, a moderate Zipf tail whose
	// exponent is solved from TailMeanShares at world construction, and a
	// rare "viral" component (the paper's 14 Telegram URLs shared in more
	// than 10K tweets each). Keeping the extreme mass in an explicit rare
	// component keeps sample means stable at reduced Scale.
	SingleShareP   float64
	TailMeanShares float64 // E[extra shares | tail, not viral]
	MaxShares      int     // tail support cap
	ViralP         float64 // probability of a viral URL
	ViralMinShares int
	ViralMaxShares int
	ShareSpreadP   float64 // geometric(p) day gaps between re-shares

	// Tweet features (Figure 3).
	HashtagP      float64 // tweets with >=1 hashtag
	MultiHashtagP float64 // tweets with >1 hashtag
	MentionP      float64
	MultiMentionP float64
	RetweetP      float64

	// Language mix (Figure 4).
	Languages []dist.WeightedString

	// Group staleness: creation date vs first tweet (Figure 5).
	SameDayCreationP float64 // created the day they are first shared
	OldGroupP        float64 // older than one year
	MidAgeMeanDays   float64 // exponential mean for the in-between mass

	// Revocation (Figure 6). QuickDeathP groups die before the first
	// daily observation; SlowDeathP die at a uniform later day.
	QuickDeathP float64
	SlowDeathP  float64

	// Membership (Figure 7): log-normal size at discovery, capped.
	MemberMu, MemberSigma float64
	MemberCap             int
	GrowP, ShrinkP        float64 // direction of the size random walk
	DriftFracPerDay       float64 // |drift| as a fraction of size, mean
	OnlineLogitMu         float64 // logit-normal online fraction
	OnlineLogitSigma      float64
	HasOnlineCount        bool // platform exposes online counts (TG, DC)

	// Telegram-specific structure; zero elsewhere.
	ChannelP       float64 // chat rooms that are channels, not groups
	HiddenMembersP float64 // groups whose admins hide the member list

	// In-group messaging (Figures 8, 9), for joined groups.
	MsgPerDayMu, MsgPerDaySigma float64 // per room (per channel for Discord)
	ChannelsMin, ChannelsMax    int     // rooms per joined unit (Discord servers)
	ActiveMemberP               float64 // members who post at least once
	PosterZipfS                 float64 // per-author message skew
	MessageTypes                []dist.WeightedString

	// Secondary-network sharing (the future-work "discover groups shared
	// on other social networks"). CrosspostP groups are shared on both
	// Twitter and the secondary network; SocialOnlyP groups appear ONLY on
	// the secondary network — invisible to a Twitter-only study.
	CrosspostP  float64
	SocialOnlyP float64

	// PII attributes.
	PhoneVisibleP  float64               // members with visible phone (TG opt-in)
	LinkedAccountP float64               // users with >=1 linked account (DC)
	LinkedAccounts []dist.WeightedString // linked-platform mix (Table 5)
	CreatorMultiP  float64               // groups created by an already-seen creator
	Countries      []dist.WeightedString // creator phone country mix (WA)
}

// ControlConfig calibrates the 1% sample stream (the control dataset).
type ControlConfig struct {
	TweetsPerDay  float64
	HashtagP      float64
	MultiHashtagP float64
	MentionP      float64
	MultiMentionP float64
	RetweetP      float64
	Languages     []dist.WeightedString
}

// DefaultConfig returns the paper-calibrated world at the given scale.
// Every constant below is traceable to a number in the paper; see DESIGN.md
// §2 and EXPERIMENTS.md for the mapping.
func DefaultConfig(seed uint64, scale float64) Config {
	return Config{
		Seed:  seed,
		Scale: scale,
		Days:  38,
		Start: simclock.StudyStart,

		WhatsApp: PlatformConfig{
			// 239,807 tweets and 45,718 URLs over 38 days.
			TweetsPerDay:  6310,
			NewURLsPerDay: 1203,
			AuthorPool:    88119,
			AuthorZipfS:   1.05,

			SingleShareP:   0.50,
			TailMeanShares: 9.3, // E[S]=5.25 overall
			MaxShares:      400,
			ViralP:         0.0001,
			ViralMinShares: 1000,
			ViralMaxShares: 4000,
			ShareSpreadP:   0.80, // re-share gaps ~0.25 days: fresh URLs burn out fast
			CrosspostP:     0.15,
			SocialOnlyP:    0.05,

			HashtagP:      0.13,
			MultiHashtagP: 0.04,
			MentionP:      0.73,
			MultiMentionP: 0.20,
			RetweetP:      0.33,

			Languages: []dist.WeightedString{
				{Key: "en", Weight: 26}, {Key: "es", Weight: 16},
				{Key: "pt", Weight: 14}, {Key: "hi", Weight: 9},
				{Key: "id", Weight: 8}, {Key: "ar", Weight: 7},
				{Key: "tr", Weight: 4}, {Key: "fr", Weight: 4},
				{Key: "de", Weight: 2}, {Key: "und", Weight: 10},
			},

			SameDayCreationP: 0.76,
			OldGroupP:        0.10,
			MidAgeMeanDays:   55,

			// Ground truth sits slightly above the paper's *measured*
			// dead-at-first-observation share (6.4%): late-in-day shares
			// get one live probe before dying.
			QuickDeathP: 0.071,
			SlowDeathP:  0.206, // measured total revoked ~27.3%

			MemberMu:    4.09, // ln 60; ~5% of groups hit the 257 cap
			MemberSigma: 0.90,
			MemberCap:   257,
			// Slightly above the paper's measured splits (51/38): groups
			// whose small drift rounds to zero land in the no-change bin.
			GrowP:            0.55,
			ShrinkP:          0.41,
			DriftFracPerDay:  0.010,
			OnlineLogitMu:    0,
			OnlineLogitSigma: 0,
			HasOnlineCount:   false,

			MsgPerDayMu:    2.55, // ~60% of groups >10 msgs/day
			MsgPerDaySigma: 1.30,
			ChannelsMin:    1,
			ChannelsMax:    1,
			ActiveMemberP:  0.594,
			PosterZipfS:    1.00,
			MessageTypes: []dist.WeightedString{
				// Figure 8: text 78%, stickers 10%, rest split.
				{Key: "text", Weight: 78}, {Key: "sticker", Weight: 10},
				{Key: "image", Weight: 6}, {Key: "video", Weight: 3},
				{Key: "audio", Weight: 2}, {Key: "document", Weight: 0.6},
				{Key: "contact", Weight: 0.2}, {Key: "location", Weight: 0.2},
			},

			PhoneVisibleP: 1.0, // WhatsApp exposes every member's phone
			CreatorMultiP: 0.073,
			Countries: []dist.WeightedString{
				// Creator phone country codes, Section 5.
				{Key: "BR", Weight: 7718}, {Key: "NG", Weight: 4719},
				{Key: "ID", Weight: 3430}, {Key: "IN", Weight: 2731},
				{Key: "SA", Weight: 2574}, {Key: "MX", Weight: 2081},
				{Key: "AR", Weight: 1366}, {Key: "US", Weight: 1100},
				{Key: "PK", Weight: 950}, {Key: "EG", Weight: 900},
				{Key: "TR", Weight: 800}, {Key: "KE", Weight: 700},
				{Key: "ZA", Weight: 650}, {Key: "CO", Weight: 600},
				{Key: "ES", Weight: 500}, {Key: "OTHER", Weight: 3259},
			},
		},

		Telegram: PlatformConfig{
			// 1,224,540 tweets and 78,105 URLs over 38 days.
			TweetsPerDay:  32225,
			NewURLsPerDay: 2055,
			AuthorPool:    398816,
			AuthorZipfS:   1.10,

			SingleShareP:   0.50,
			TailMeanShares: 25.4, // E[S]=15.7 with the viral component below
			MaxShares:      300,
			ViralP:         0.0002, // ~14 URLs >10K tweets at paper scale
			ViralMinShares: 10000,
			ViralMaxShares: 25000,
			ShareSpreadP:   0.80, // heavy URLs re-shared across ~a week
			CrosspostP:     0.20,
			SocialOnlyP:    0.08,

			HashtagP:      0.24,
			MultiHashtagP: 0.10,
			MentionP:      0.84,
			MultiMentionP: 0.14,
			RetweetP:      0.76,

			Languages: []dist.WeightedString{
				{Key: "en", Weight: 35}, {Key: "ar", Weight: 15},
				{Key: "tr", Weight: 8}, {Key: "ru", Weight: 7},
				{Key: "es", Weight: 6},
				{Key: "hi", Weight: 5}, {Key: "id", Weight: 5},
				{Key: "pt", Weight: 4}, {Key: "de", Weight: 3},
				{Key: "und", Weight: 12},
			},

			SameDayCreationP: 0.28,
			OldGroupP:        0.29,
			MidAgeMeanDays:   120,

			QuickDeathP: 0.180, // measured dead-at-first-obs ~16.3%
			SlowDeathP:  0.030, // measured total revoked ~20.4%

			MemberMu:         5.01, // ln 150; 40% of rooms <100 members
			MemberSigma:      2.00,
			MemberCap:        2_000_000, // channels effectively unbounded
			GrowP:            0.56,
			ShrinkP:          0.26,
			DriftFracPerDay:  0.012,
			OnlineLogitMu:    -2.8,
			OnlineLogitSigma: 0.8,
			HasOnlineCount:   true,

			ChannelP:       0.35,
			HiddenMembersP: 0.76, // member list visible in only 24/100 joined rooms

			MsgPerDayMu:    1.25, // ln 3.5; ~25% of rooms >10 msgs/day
			MsgPerDaySigma: 1.90,
			ChannelsMin:    1,
			ChannelsMax:    1,
			ActiveMemberP:  0.146,
			PosterZipfS:    1.20,
			MessageTypes: []dist.WeightedString{
				// Figure 8: text 85%, service messages ("other") present.
				{Key: "text", Weight: 85}, {Key: "image", Weight: 5},
				{Key: "video", Weight: 3}, {Key: "sticker", Weight: 2},
				{Key: "audio", Weight: 1}, {Key: "document", Weight: 1},
				{Key: "other", Weight: 3},
			},

			PhoneVisibleP: 0.0068,
			CreatorMultiP: 0.0,
		},

		Discord: PlatformConfig{
			// 779,685 tweets and 227,712 URLs over 38 days.
			TweetsPerDay:  20518,
			NewURLsPerDay: 5992,
			AuthorPool:    340702,
			AuthorZipfS:   1.05,

			SingleShareP:   0.62,
			TailMeanShares: 7.4, // E[S]=3.42
			MaxShares:      300,
			ViralP:         0.0001,
			ViralMinShares: 800,
			ViralMaxShares: 3000,
			ShareSpreadP:   0.90, // invites die fast; re-shares cluster same-day
			CrosspostP:     0.25,
			SocialOnlyP:    0.06,

			HashtagP:      0.14,
			MultiHashtagP: 0.07,
			MentionP:      0.68,
			MultiMentionP: 0.15,
			RetweetP:      0.50,

			Languages: []dist.WeightedString{
				{Key: "en", Weight: 47}, {Key: "ja", Weight: 27},
				{Key: "es", Weight: 6}, {Key: "fr", Weight: 4},
				{Key: "pt", Weight: 3}, {Key: "de", Weight: 3},
				{Key: "ko", Weight: 2}, {Key: "ru", Weight: 2},
				{Key: "und", Weight: 6},
			},

			SameDayCreationP: 0.28,
			OldGroupP:        0.256,
			MidAgeMeanDays:   100,

			QuickDeathP: 0.700, // 1-day invite expiry; measured dead-at-first ~67%
			SlowDeathP:  0.008, // measured total revoked ~68.4%

			MemberMu:         4.25, // ln 70; 60% of servers <100 members
			MemberSigma:      1.80,
			MemberCap:        250000,
			GrowP:            0.58,
			ShrinkP:          0.21,
			DriftFracPerDay:  0.012,
			OnlineLogitMu:    -1.0, // ~15% of servers >50% online
			OnlineLogitSigma: 1.0,
			HasOnlineCount:   true,

			MsgPerDayMu:    0.9, // ~2.5 msgs/day per channel; servers have many
			MsgPerDaySigma: 1.40,
			ChannelsMin:    1,
			ChannelsMax:    12,
			ActiveMemberP:  0.658,
			PosterZipfS:    1.45,
			MessageTypes: []dist.WeightedString{
				// Figure 8: text 96%.
				{Key: "text", Weight: 96}, {Key: "image", Weight: 2.5},
				{Key: "video", Weight: 0.8}, {Key: "sticker", Weight: 0.4},
				{Key: "document", Weight: 0.3},
			},

			LinkedAccountP: 0.30,
			LinkedAccounts: []dist.WeightedString{
				// Table 5, weights are % of all Discord users observed.
				{Key: "Twitch", Weight: 20.4}, {Key: "Steam", Weight: 12.2},
				{Key: "Twitter", Weight: 8.9}, {Key: "Spotify", Weight: 8.0},
				{Key: "YouTube", Weight: 6.6}, {Key: "Battlenet", Weight: 5.2},
				{Key: "Xbox", Weight: 3.7}, {Key: "Reddit", Weight: 3.0},
				{Key: "League of Legends", Weight: 2.4},
				{Key: "Skype", Weight: 0.6}, {Key: "Facebook", Weight: 0.5},
			},
			// Ground truth above the paper's observed 3.6%: two-thirds of
			// Discord groups die before their inviter is ever observed.
			CreatorMultiP: 0.11,
		},

		Control: ControlConfig{
			// 1,797,914 tweets over 38 days in the 1% sample.
			TweetsPerDay:  47313,
			HashtagP:      0.13,
			MultiHashtagP: 0.05,
			MentionP:      0.76,
			MultiMentionP: 0.12,
			RetweetP:      0.40,
			Languages: []dist.WeightedString{
				{Key: "en", Weight: 34}, {Key: "ja", Weight: 16},
				{Key: "es", Weight: 10}, {Key: "pt", Weight: 8},
				{Key: "ar", Weight: 6}, {Key: "tr", Weight: 4},
				{Key: "fr", Weight: 3}, {Key: "id", Weight: 4},
				{Key: "hi", Weight: 3}, {Key: "ko", Weight: 3},
				{Key: "und", Weight: 9},
			},
		},
	}
}
