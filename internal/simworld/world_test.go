package simworld

import (
	"testing"
	"time"

	"msgscope/internal/platform"
)

func testWorld(t testing.TB, scale float64) *World {
	t.Helper()
	return New(DefaultConfig(42, scale))
}

func TestWorldDeterminism(t *testing.T) {
	a := New(DefaultConfig(7, 0.01))
	b := New(DefaultConfig(7, 0.01))
	for _, p := range platform.All {
		if len(a.Groups[p]) != len(b.Groups[p]) {
			t.Fatalf("%v: group counts differ: %d vs %d", p, len(a.Groups[p]), len(b.Groups[p]))
		}
		for i := range a.Groups[p] {
			ga, gb := a.Groups[p][i], b.Groups[p][i]
			if ga.Code != gb.Code || ga.Title != gb.Title || !ga.CreatedAt.Equal(gb.CreatedAt) ||
				!ga.RevokedAt.Equal(gb.RevokedAt) || ga.BaseMembers != gb.BaseMembers {
				t.Fatalf("%v group %d differs: %+v vs %+v", p, i, ga, gb)
			}
		}
	}
	for d := range a.TweetsByDay {
		if len(a.TweetsByDay[d]) != len(b.TweetsByDay[d]) {
			t.Fatalf("day %d tweet counts differ", d)
		}
		for i := range a.TweetsByDay[d] {
			if a.TweetsByDay[d][i].Text != b.TweetsByDay[d][i].Text {
				t.Fatalf("day %d tweet %d text differs", d, i)
			}
		}
	}
}

func TestWorldSeedsDiffer(t *testing.T) {
	a := New(DefaultConfig(1, 0.01))
	b := New(DefaultConfig(2, 0.01))
	if len(a.Groups[platform.WhatsApp]) > 0 && len(b.Groups[platform.WhatsApp]) > 0 &&
		a.Groups[platform.WhatsApp][0].Code == b.Groups[platform.WhatsApp][0].Code {
		t.Fatal("different seeds produced identical first group codes")
	}
}

func TestGroupVolumesScaleWithConfig(t *testing.T) {
	w := testWorld(t, 0.02)
	cfg := w.Cfg
	for _, p := range platform.All {
		pc := *w.platformCfg(p)
		want := pc.NewURLsPerDay * cfg.Scale * float64(cfg.Days)
		got := float64(len(w.Groups[p]))
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%v: got %v groups, want about %v", p, got, want)
		}
	}
}

func TestRevocationCalibration(t *testing.T) {
	w := testWorld(t, 0.05)
	for _, p := range platform.All {
		pc := w.platformCfg(p)
		var revoked, quick int
		for _, g := range w.Groups[p] {
			if g.RevokedAt.IsZero() {
				continue
			}
			revoked++
			if g.RevokedAt.Sub(g.FirstShareAt) < 24*time.Hour {
				quick++
			}
		}
		n := float64(len(w.Groups[p]))
		wantTotal := pc.QuickDeathP + pc.SlowDeathP
		gotTotal := float64(revoked) / n
		if gotTotal < wantTotal-0.05 || gotTotal > wantTotal+0.05 {
			t.Errorf("%v: revoked fraction %.3f, want about %.3f", p, gotTotal, wantTotal)
		}
		gotQuick := float64(quick) / n
		if gotQuick < pc.QuickDeathP-0.05 || gotQuick > pc.QuickDeathP+0.05 {
			t.Errorf("%v: quick-death fraction %.3f, want about %.3f", p, gotQuick, pc.QuickDeathP)
		}
	}
}

func TestTweetsEmbedGroupURL(t *testing.T) {
	w := testWorld(t, 0.01)
	checked := 0
	for _, day := range w.TweetsByDay {
		for _, tw := range day {
			if tw.Group == nil {
				t.Fatal("platform tweet without group")
			}
			if !contains(tw.Text, tw.Group.URL) {
				t.Fatalf("tweet text %q does not embed URL %q", tw.Text, tw.Group.URL)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no tweets generated")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMembersAtBounds(t *testing.T) {
	w := testWorld(t, 0.01)
	for _, p := range platform.All {
		cap := w.platformCfg(p).MemberCap
		for _, g := range w.Groups[p] {
			for d := 0; d < w.Cfg.Days; d += 7 {
				at := w.Cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
				m := w.MembersAt(g, at)
				if m < 1 || m > cap {
					t.Fatalf("%v group %s members %d out of [1,%d]", p, g.Code, m, cap)
				}
				o := w.OnlineAt(g, at)
				if o < 0 || o > m {
					t.Fatalf("%v group %s online %d out of [0,%d]", p, g.Code, o, m)
				}
			}
		}
	}
}

func TestMembersAtDeterministic(t *testing.T) {
	w := testWorld(t, 0.01)
	g := w.Groups[platform.Discord][0]
	at := w.Cfg.Start.Add(5 * 24 * time.Hour)
	if w.MembersAt(g, at) != w.MembersAt(g, at) {
		t.Fatal("MembersAt not deterministic for same instant")
	}
}

func TestMessagesDeterministicAndWindowed(t *testing.T) {
	w := testWorld(t, 0.01)
	g := w.Groups[platform.WhatsApp][0]
	from := w.Cfg.Start
	to := from.Add(5 * 24 * time.Hour)
	a := w.Messages(g, from, to)
	b := w.Messages(g, from, to)
	if len(a) != len(b) {
		t.Fatalf("message counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d differs", i)
		}
		if a[i].SentAt.Before(from) || !a[i].SentAt.Before(to) {
			t.Fatalf("message %d at %v outside [%v, %v)", i, a[i].SentAt, from, to)
		}
	}
}

func TestMessagesSubWindowIsSubset(t *testing.T) {
	w := testWorld(t, 0.01)
	g := w.Groups[platform.Discord][0]
	from := w.Cfg.Start
	mid := from.Add(3 * 24 * time.Hour)
	to := from.Add(6 * 24 * time.Hour)
	full := w.Messages(g, from, to)
	first := w.Messages(g, from, mid)
	second := w.Messages(g, mid, to)
	if len(first)+len(second) != len(full) {
		t.Fatalf("window split changes totals: %d + %d != %d", len(first), len(second), len(full))
	}
}

func TestUserByIdxStable(t *testing.T) {
	w := testWorld(t, 0.01)
	for _, p := range platform.All {
		u1 := w.UserByIdx(p, 17)
		u2 := w.UserByIdx(p, 17)
		if u1.ID != u2.ID || u1.Phone != u2.Phone || u1.Name != u2.Name {
			t.Fatalf("%v: UserByIdx not stable: %+v vs %+v", p, u1, u2)
		}
	}
}

func TestWhatsAppPIIAlwaysExposed(t *testing.T) {
	w := testWorld(t, 0.01)
	for i := 0; i < 50; i++ {
		u := w.UserByIdx(platform.WhatsApp, i)
		if u.Phone == "" || !u.PhoneVisible {
			t.Fatalf("WhatsApp user %d lacks exposed phone: %+v", i, u)
		}
	}
	for _, g := range w.Groups[platform.WhatsApp] {
		if g.CreatorPhone == "" || g.CreatorCountry == "" {
			t.Fatalf("WhatsApp group %s lacks creator phone/country", g.Code)
		}
	}
}

func TestTelegramPhoneOptInRare(t *testing.T) {
	w := testWorld(t, 0.01)
	visible := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if w.UserByIdx(platform.Telegram, i).PhoneVisible {
			visible++
		}
	}
	frac := float64(visible) / n
	if frac > 0.03 {
		t.Fatalf("Telegram visible-phone fraction %.4f too high (want ~0.0068)", frac)
	}
}

func TestDiscordLinkedAccounts(t *testing.T) {
	w := testWorld(t, 0.01)
	linked := 0
	const n = 4000
	for i := 0; i < n; i++ {
		u := w.UserByIdx(platform.Discord, i)
		if len(u.Linked) > 0 {
			linked++
		}
		if u.Phone != "" {
			t.Fatalf("Discord user %d has a phone number", i)
		}
	}
	frac := float64(linked) / n
	if frac < 0.22 || frac > 0.38 {
		t.Fatalf("Discord linked fraction %.3f, want about 0.30", frac)
	}
}

func TestStalenessCalibration(t *testing.T) {
	w := testWorld(t, 0.05)
	for _, p := range platform.All {
		pc := w.platformCfg(p)
		var sameDay, old int
		for _, g := range w.Groups[p] {
			stale := g.FirstShareAt.Sub(g.CreatedAt)
			if stale < 24*time.Hour {
				sameDay++
			}
			if stale > 365*24*time.Hour {
				old++
			}
		}
		n := float64(len(w.Groups[p]))
		if got := float64(sameDay) / n; got < pc.SameDayCreationP-0.06 || got > pc.SameDayCreationP+0.06 {
			t.Errorf("%v: same-day fraction %.3f, want about %.3f", p, got, pc.SameDayCreationP)
		}
		if got := float64(old) / n; got < pc.OldGroupP-0.05 || got > pc.OldGroupP+0.05 {
			t.Errorf("%v: old-group fraction %.3f, want about %.3f", p, got, pc.OldGroupP)
		}
	}
}

func TestWhatsAppGroupSizesUnderCap(t *testing.T) {
	w := testWorld(t, 0.05)
	atCap := 0
	gs := w.Groups[platform.WhatsApp]
	for _, g := range gs {
		if g.BaseMembers > 257 {
			t.Fatalf("WhatsApp group %s has %d members (> 257 cap)", g.Code, g.BaseMembers)
		}
		if g.BaseMembers >= 257 {
			atCap++
		}
	}
	frac := float64(atCap) / float64(len(gs))
	if frac > 0.12 {
		t.Errorf("too many WhatsApp groups at the cap: %.3f", frac)
	}
}

// TestEmergentTweetVolume checks that the per-day tweet volume emerging
// from NewURLsPerDay × share multiplicity lands near the configured
// TweetsPerDay calibration target (wide band: the share distribution is
// heavy-tailed).
func TestEmergentTweetVolume(t *testing.T) {
	w := testWorld(t, 0.05)
	perPlatform := map[platform.Platform]float64{}
	for _, day := range w.TweetsByDay {
		for _, tw := range day {
			perPlatform[tw.Group.Platform]++
		}
	}
	for _, p := range platform.All {
		want := w.platformCfg(p).TweetsPerDay * w.Cfg.Scale * float64(w.Cfg.Days)
		got := perPlatform[p]
		if got < want*0.45 || got > want*2.0 {
			t.Errorf("%v: %v tweets over window, calibration target %v", p, got, want)
		}
	}
}

// TestShareMultiplicityShape checks Figure 2's anchors: the single-share
// fraction per platform.
func TestShareMultiplicityShape(t *testing.T) {
	w := testWorld(t, 0.05)
	for _, p := range platform.All {
		pc := w.platformCfg(p)
		once, n := 0, 0
		for _, g := range w.Groups[p] {
			// Count only shares within the window (what a collector sees).
			if len(g.shares) == 1 {
				once++
			}
			n++
		}
		got := float64(once) / float64(n)
		if got < pc.SingleShareP-0.08 || got > pc.SingleShareP+0.12 {
			t.Errorf("%v: single-share fraction %.3f, config %.3f", p, got, pc.SingleShareP)
		}
	}
}

// TestCreatorIdentityStable verifies creators keep one country and phone
// across all their groups (the dedup key of the creators analysis).
func TestCreatorIdentityStable(t *testing.T) {
	w := testWorld(t, 0.05)
	byIdx := map[int]*Group{}
	for _, g := range w.Groups[platform.WhatsApp] {
		if prev, ok := byIdx[g.CreatorIdx]; ok {
			if prev.CreatorPhone != g.CreatorPhone || prev.CreatorCountry != g.CreatorCountry {
				t.Fatalf("creator %d has two identities: %s/%s vs %s/%s",
					g.CreatorIdx, prev.CreatorPhone, prev.CreatorCountry,
					g.CreatorPhone, g.CreatorCountry)
			}
		} else {
			byIdx[g.CreatorIdx] = g
		}
	}
}

// TestCreatorHeavyTail verifies the preferential-attachment reuse yields
// multi-group creators with a heavy tail (the paper: one user created 28
// WhatsApp groups, another 61 Discord groups).
func TestCreatorHeavyTail(t *testing.T) {
	w := testWorld(t, 0.05)
	for _, p := range []platform.Platform{platform.WhatsApp, platform.Discord} {
		counts := map[int]int{}
		for _, g := range w.Groups[p] {
			counts[g.CreatorIdx]++
		}
		single, max := 0, 0
		for _, n := range counts {
			if n == 1 {
				single++
			}
			if n > max {
				max = n
			}
		}
		singleShare := float64(single) / float64(len(counts))
		if singleShare < 0.85 || singleShare > 0.995 {
			t.Errorf("%v: single-group creator share %.3f, want ~0.93-0.96", p, singleShare)
		}
		if max < 3 {
			t.Errorf("%v: max groups per creator %d, want a heavy tail", p, max)
		}
	}
}

// TestSocialOnlyGroupsNeverTweet verifies the secondary-network-only slice
// really is invisible on Twitter.
func TestSocialOnlyGroupsNeverTweet(t *testing.T) {
	w := testWorld(t, 0.01)
	socialOnly := map[string]bool{}
	for _, p := range platform.All {
		for _, g := range w.Groups[p] {
			if g.SocialOnly {
				socialOnly[g.Code] = true
			}
		}
	}
	if len(socialOnly) == 0 {
		t.Fatal("no social-only groups generated")
	}
	for _, day := range w.TweetsByDay {
		for _, tw := range day {
			if socialOnly[tw.Group.Code] {
				t.Fatalf("social-only group %s appeared in a tweet", tw.Group.Code)
			}
		}
	}
	// But they do appear in the secondary network's feed.
	posted := map[string]bool{}
	for _, day := range w.PostsByDay {
		for _, p := range day {
			posted[p.Group.Code] = true
		}
	}
	found := 0
	for code := range socialOnly {
		if posted[code] {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no social-only group has posts")
	}
}
