package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var ran atomic.Int64
		tasks := make([]func() error, 37)
		for i := range tasks {
			tasks[i] = func() error { ran.Add(1); return nil }
		}
		if err := Do(workers, tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 37 {
			t.Fatalf("workers=%d: ran %d of 37", workers, ran.Load())
		}
	}
}

func TestDoReturnsFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := []func() error{
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return boom },
		func() error { ran.Add(1); return nil },
	}
	if err := Do(2, tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("a failure stopped the pool: ran %d of 3", ran.Load())
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(4, nil); err != nil {
		t.Fatal(err)
	}
}
