// Package par provides the bounded worker pool the report engine uses to
// fan experiment rendering out across CPUs.
package par

import (
	"runtime"
	"sync"
)

// Do runs every task, using at most workers goroutines (workers <= 0 means
// GOMAXPROCS), and returns the first error encountered. All tasks run even
// after a failure; errors after the first are dropped.
func Do(workers int, tasks []func() error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		var first error
		for _, t := range tasks {
			if err := t(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	queue := make(chan func() error)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if err := t(); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		queue <- t
	}
	close(queue)
	wg.Wait()
	return first
}
