package join

import (
	"context"
	"errors"
	"fmt"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/store"
)

// CollectMessages gathers in-group data for every joined group: WhatsApp
// messages since the join (the platform exposes nothing earlier), Telegram
// and Discord full history since group creation. Message authors are
// recorded as observed users; on Discord, profiles of users who posted are
// fetched to capture linked accounts.
func (j *Joiner) CollectMessages(ctx context.Context) error {
	for _, g := range j.joined[platform.WhatsApp] {
		if err := j.collectWhatsApp(ctx, g); err != nil {
			return fmt.Errorf("join: collecting WhatsApp %s: %w", g.Code, err)
		}
	}
	for _, g := range j.joined[platform.Telegram] {
		if err := j.collectTelegram(ctx, g); err != nil {
			return fmt.Errorf("join: collecting Telegram %s: %w", g.Code, err)
		}
	}
	for _, g := range j.joined[platform.Discord] {
		if err := j.collectDiscord(ctx, g); err != nil {
			return fmt.Errorf("join: collecting Discord %s: %w", g.Code, err)
		}
	}
	return nil
}

// waClientFor finds the account that joined the group (any member account
// can sync; the joiner only ever joins with one).
func (j *Joiner) waClientFor(ctx context.Context, code string) (int, error) {
	for i, c := range j.WAClients {
		if _, err := c.Info(ctx, code); err == nil {
			return i, nil
		}
	}
	return 0, errors.New("no member account for group")
}

func (j *Joiner) collectWhatsApp(ctx context.Context, g *store.GroupRecord) error {
	ci, err := j.waClientFor(ctx, g.Code)
	if err != nil {
		return err
	}
	msgs, err := j.WAClients[ci].Messages(ctx, g.Code, time.Time{})
	if err != nil {
		return err
	}
	if j.MaxMessagesPerGroup > 0 && len(msgs) > j.MaxMessagesPerGroup {
		msgs = msgs[:j.MaxMessagesPerGroup]
	}
	for _, m := range msgs {
		j.Store.AddMessage(store.MessageRecord{
			Platform:  platform.WhatsApp,
			GroupCode: g.Code,
			AuthorKey: store.PhoneKey(m.AuthorPhone),
			SentAt:    m.SentAt,
			Type:      parseType(m.Type),
			Text:      m.Text,
		})
		j.Store.UpsertUser(store.UserRecord{
			Platform:  platform.WhatsApp,
			Key:       store.PhoneKey(m.AuthorPhone),
			PhoneHash: store.HashPhone(m.AuthorPhone),
		})
		j.stats.MessagesRead++
	}
	return nil
}

func (j *Joiner) collectTelegram(ctx context.Context, g *store.GroupRecord) error {
	pager := j.TG.HistoryPager(g.Code)
	count := 0
	for !pager.Done() {
		var page []telegram.Message
		err := j.tgCall(func() error {
			var err error
			page, err = pager.Next(ctx)
			return err
		})
		if err != nil {
			return err
		}
		for _, m := range page {
			j.Store.AddMessage(store.MessageRecord{
				Platform:  platform.Telegram,
				GroupCode: g.Code,
				AuthorKey: m.FromID,
				SentAt:    m.SentAt,
				Type:      parseType(m.Type),
				Text:      m.Text,
			})
			j.Store.UpsertUser(store.UserRecord{Platform: platform.Telegram, Key: m.FromID})
			j.stats.MessagesRead++
			count++
		}
		if j.MaxMessagesPerGroup > 0 && count >= j.MaxMessagesPerGroup {
			break
		}
	}
	return nil
}

func (j *Joiner) collectDiscord(ctx context.Context, g *store.GroupRecord) error {
	// Re-resolve the guild and channels from the invite.
	var inv discord.Invite
	if err := j.dcCall(func() error {
		var err error
		inv, err = j.DC.ProbeInvite(ctx, g.Code)
		return err
	}); err != nil {
		if errors.Is(err, discord.ErrUnknownInvite) {
			// Invite died after we joined; we are still a member, but the
			// simulation keys access by invite, so skip its history.
			return nil
		}
		return err
	}
	chs, err := j.dcChannels(ctx, inv.GuildID)
	if err != nil {
		return err
	}
	authors := map[uint64]struct{}{}
	count := 0
	for _, ch := range chs {
		pager := j.DC.MessagePager(ch.ID)
		for !pager.Done() {
			var page []discord.Message
			err := j.dcCall(func() error {
				var err error
				page, err = pager.Next(ctx)
				return err
			})
			if err != nil {
				return err
			}
			for _, m := range page {
				j.Store.AddMessage(store.MessageRecord{
					Platform:  platform.Discord,
					GroupCode: g.Code,
					AuthorKey: m.AuthorID,
					SentAt:    m.SentAt,
					Type:      parseType(m.Type),
					Text:      m.Content,
				})
				authors[m.AuthorID] = struct{}{}
				j.stats.MessagesRead++
				count++
			}
			if j.MaxMessagesPerGroup > 0 && count >= j.MaxMessagesPerGroup {
				break
			}
		}
		if j.MaxMessagesPerGroup > 0 && count >= j.MaxMessagesPerGroup {
			break
		}
	}
	// Profile fetches: users who posted at least one message (Section 6).
	for aid := range authors {
		var prof discord.Profile
		err := j.dcCall(func() error {
			var err error
			prof, err = j.DC.UserProfile(ctx, aid)
			return err
		})
		if err != nil {
			return err
		}
		j.Store.UpsertUser(store.UserRecord{
			Platform: platform.Discord,
			Key:      aid,
			Linked:   prof.Linked,
		})
	}
	return nil
}

func parseType(s string) platform.MessageType {
	for _, t := range platform.MessageTypes {
		if t.String() == s {
			return t
		}
	}
	return platform.Service
}
