package join

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/par"
	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/store"
)

// defaultCollectWorkers bounds the per-group fan-out when Workers is unset.
// The pool stays narrow on purpose: every worker draws on the same
// per-account flood budgets, so past a handful of workers the extra
// concurrency only converts useful requests into FLOOD_WAIT retries. The
// GOMAXPROCS benchmark matrix (BENCH_6.json) also caps it from below the
// other direction: on a 1–2 core machine two workers per core already
// overlaps the request latency, so the pool follows the core count up to
// the flood-budget ceiling of 8.
func defaultCollectWorkers() int {
	return max(2, min(8, 2*runtime.GOMAXPROCS(0)))
}

// gathered is one group's collection output, buffered locally by a worker
// and ingested afterwards in deterministic group order.
type gathered struct {
	msgs  []store.MessageRecord
	users []store.UserRecord
}

// CollectMessages gathers in-group data for every joined group: WhatsApp
// messages since the join (the platform exposes nothing earlier), Telegram
// and Discord full history since group creation. Message authors are
// recorded as observed users; on Discord, profiles of users who posted are
// fetched to capture linked accounts.
//
// The per-group fetches run concurrently on a bounded pool. Two things keep
// the collected dataset identical to a serial run:
//
//   - The collection horizon is frozen up front. Flood waits advance the
//     shared virtual clock, so an unpinned pager's first page would see a
//     window that depends on worker scheduling; every pager here is anchored
//     at the horizon instead, making each group's message set a pure
//     function of (group, horizon).
//   - Workers buffer into local slices; the results are ingested via the
//     store's batch APIs in joined-group order (WhatsApp, then Telegram,
//     then Discord), so the store's message slice matches the serial order.
//
// Discord invite re-resolution stays serial: invites expire as virtual time
// passes, so probing them must happen in a deterministic clock sequence.
func (j *Joiner) CollectMessages(ctx context.Context) error {
	horizon := j.Clock.Now()

	var waGroups []store.GroupRecord
	var waAccounts []int
	for _, g := range j.joined[platform.WhatsApp] {
		ci, err := j.waClientFor(ctx, g.Code)
		if err != nil {
			// Cannot even resolve a member account: defer the group rather
			// than abort the whole collection pass.
			j.stats.deferred.Add(1)
			j.Store.MarkDeferred(platform.WhatsApp, g.Code, "collect")
			continue
		}
		waGroups = append(waGroups, g)
		waAccounts = append(waAccounts, ci)
	}

	type dcPrep struct {
		g   store.GroupRecord
		chs []discord.Channel
	}
	var dcPreps []dcPrep
	for _, g := range j.joined[platform.Discord] {
		// Re-resolve the guild and channels from the invite.
		inv, err := j.DC.ProbeInvite(ctx, g.Code)
		if err != nil {
			if errors.Is(err, discord.ErrUnknownInvite) {
				// Invite died after we joined; we are still a member, but
				// the simulation keys access by invite, so skip its history.
				continue
			}
			j.stats.deferred.Add(1)
			j.Store.MarkDeferred(platform.Discord, g.Code, "collect")
			continue
		}
		chs, err := j.DC.Channels(ctx, inv.GuildID)
		if err != nil {
			j.stats.deferred.Add(1)
			j.Store.MarkDeferred(platform.Discord, g.Code, "collect")
			continue
		}
		dcPreps = append(dcPreps, dcPrep{g: g, chs: chs})
	}

	tgGroups := j.joined[platform.Telegram]
	results := make([]gathered, len(waGroups)+len(tgGroups)+len(dcPreps))
	tasks := make([]func() error, 0, len(results))
	slot := 0
	// A fetch that exhausts its retry budget defers the group (dropping its
	// partially gathered batch so reruns stay deterministic) instead of
	// failing the pass; the group is re-collected on the next join round.
	for i, g := range waGroups {
		out := &results[slot]
		ci := waAccounts[i]
		tasks = append(tasks, func() error {
			got, err := j.fetchWhatsApp(ctx, g, ci, horizon)
			if err != nil {
				j.stats.deferred.Add(1)
				j.Store.MarkDeferred(platform.WhatsApp, g.Code, "collect")
				return nil
			}
			*out = got
			return nil
		})
		slot++
	}
	for _, g := range tgGroups {
		out := &results[slot]
		tasks = append(tasks, func() error {
			got, err := j.fetchTelegram(ctx, g, horizon)
			if err != nil {
				j.stats.deferred.Add(1)
				j.Store.MarkDeferred(platform.Telegram, g.Code, "collect")
				return nil
			}
			*out = got
			return nil
		})
		slot++
	}
	for _, p := range dcPreps {
		out := &results[slot]
		tasks = append(tasks, func() error {
			got, err := j.fetchDiscord(ctx, p.g, p.chs, horizon)
			if err != nil {
				j.stats.deferred.Add(1)
				j.Store.MarkDeferred(platform.Discord, p.g.Code, "collect")
				return nil
			}
			*out = got
			return nil
		})
		slot++
	}

	workers := j.Workers
	if workers <= 0 {
		workers = defaultCollectWorkers()
	}
	if err := par.Do(workers, tasks); err != nil {
		return err
	}

	for i := range results {
		j.Store.AddMessageBatch(results[i].msgs)
		j.Store.UpsertUserBatch(results[i].users)
	}
	return nil
}

// waClientFor finds the account that joined the group (any member account
// can sync; the joiner only ever joins with one).
func (j *Joiner) waClientFor(ctx context.Context, code string) (int, error) {
	for i, c := range j.WAClients {
		if _, err := c.Info(ctx, code); err == nil {
			return i, nil
		}
	}
	return 0, errors.New("no member account for group")
}

func (j *Joiner) fetchWhatsApp(ctx context.Context, g store.GroupRecord, account int, horizon time.Time) (gathered, error) {
	msgs, err := j.WAClients[account].MessagesUntil(ctx, g.Code, time.Time{}, horizon)
	if err != nil {
		return gathered{}, err
	}
	if j.MaxMessagesPerGroup > 0 && len(msgs) > j.MaxMessagesPerGroup {
		msgs = msgs[:j.MaxMessagesPerGroup]
	}
	var out gathered
	for _, m := range msgs {
		out.msgs = append(out.msgs, store.MessageRecord{
			Platform:  platform.WhatsApp,
			GroupCode: g.Code,
			AuthorKey: store.PhoneKey(m.AuthorPhone),
			SentAt:    m.SentAt,
			Type:      parseType(m.Type),
			Text:      m.Text,
		})
		out.users = append(out.users, store.UserRecord{
			Platform:  platform.WhatsApp,
			Key:       store.PhoneKey(m.AuthorPhone),
			PhoneHash: store.HashPhone(m.AuthorPhone),
		})
	}
	j.stats.messagesRead.Add(int64(len(out.msgs)))
	return out, nil
}

func (j *Joiner) fetchTelegram(ctx context.Context, g store.GroupRecord, horizon time.Time) (gathered, error) {
	pager := j.TG.HistoryPagerAt(g.Code, horizon)
	var out gathered
	for !pager.Done() {
		page, err := pager.Next(ctx)
		if err != nil {
			return gathered{}, err
		}
		for _, m := range page {
			out.msgs = append(out.msgs, store.MessageRecord{
				Platform:  platform.Telegram,
				GroupCode: g.Code,
				AuthorKey: m.FromID,
				SentAt:    m.SentAt,
				Type:      parseType(m.Type),
				Text:      m.Text,
			})
			out.users = append(out.users, store.UserRecord{Platform: platform.Telegram, Key: m.FromID})
		}
		if j.MaxMessagesPerGroup > 0 && len(out.msgs) >= j.MaxMessagesPerGroup {
			break
		}
	}
	j.stats.messagesRead.Add(int64(len(out.msgs)))
	return out, nil
}

func (j *Joiner) fetchDiscord(ctx context.Context, g store.GroupRecord, chs []discord.Channel, horizon time.Time) (gathered, error) {
	before := ids.Snowflake(ids.DiscordEpochMS, horizon, 0)
	authors := map[uint64]struct{}{}
	var out gathered
	count := 0
	for _, ch := range chs {
		pager := j.DC.MessagePagerBefore(ch.ID, before)
		for !pager.Done() {
			page, err := pager.Next(ctx)
			if err != nil {
				return gathered{}, err
			}
			for _, m := range page {
				out.msgs = append(out.msgs, store.MessageRecord{
					Platform:  platform.Discord,
					GroupCode: g.Code,
					AuthorKey: m.AuthorID,
					SentAt:    m.SentAt,
					Type:      parseType(m.Type),
					Text:      m.Content,
				})
				authors[m.AuthorID] = struct{}{}
				count++
			}
			if j.MaxMessagesPerGroup > 0 && count >= j.MaxMessagesPerGroup {
				break
			}
		}
		if j.MaxMessagesPerGroup > 0 && count >= j.MaxMessagesPerGroup {
			break
		}
	}
	j.stats.messagesRead.Add(int64(len(out.msgs)))
	// Profile fetches: users who posted at least one message (Section 6),
	// in sorted-ID order so the request sequence is deterministic.
	authorIDs := make([]uint64, 0, len(authors))
	for aid := range authors {
		authorIDs = append(authorIDs, aid)
	}
	sort.Slice(authorIDs, func(a, b int) bool { return authorIDs[a] < authorIDs[b] })
	for _, aid := range authorIDs {
		prof, err := j.DC.UserProfile(ctx, aid)
		if err != nil {
			return gathered{}, err
		}
		out.users = append(out.users, store.UserRecord{
			Platform: platform.Discord,
			Key:      aid,
			Linked:   prof.Linked,
		})
	}
	return out, nil
}

func parseType(s string) platform.MessageType {
	for _, t := range platform.MessageTypes {
		if t.String() == s {
			return t
		}
	}
	return platform.Service
}
