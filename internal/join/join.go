// Package join implements Section 3.3: joining a uniform random sample of
// discovered groups and collecting in-group data, under each platform's
// real constraints — WhatsApp's per-account group caps (hence multiple
// accounts), message history only from the join time, Telegram's FLOOD_WAIT
// rate limits and hideable member lists, and Discord's 100-guild cap with
// full history since creation across every channel.
package join

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"

	"msgscope/internal/checkpoint"
	"msgscope/internal/ids"
	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/retry"
	"msgscope/internal/simclock"
	"msgscope/internal/store"
)

// Targets sets how many groups to join per platform (paper: 416 WhatsApp,
// 100 Telegram, 100 Discord).
type Targets struct {
	WhatsApp int
	Telegram int
	Discord  int
}

// Stats counts join-phase events.
type Stats struct {
	Attempted   int
	Joined      int
	DeadInvites int
	// FloodWaits counts rate-limit waits absorbed by the clients' retry
	// policies (FLOOD_WAITs, 429s) across the join and collect phases.
	FloodWaits  int
	HiddenLists int
	// Deferred counts groups whose join or collection exhausted the retry
	// budget; they stay in the store marked deferred and are retried on the
	// next join round instead of being silently dropped.
	Deferred     int
	MessagesRead int
}

// counters is the lock-free mirror of Stats: MessagesRead is bumped from
// concurrent collection workers, so every field is an atomic and Stats()
// materializes a snapshot.
type counters struct {
	attempted    atomic.Int64
	joined       atomic.Int64
	deadInvites  atomic.Int64
	hiddenLists  atomic.Int64
	deferred     atomic.Int64
	messagesRead atomic.Int64
}

// Joiner drives the join phase.
type Joiner struct {
	Store *store.Store
	// WAClients is the WhatsApp account pool; each account can join only
	// ~250 groups before being banned, so several accounts ("SIM cards")
	// cover larger samples.
	WAClients []*whatsapp.Client
	TG        *telegram.Client
	DC        *discord.Client
	// Clock lets the joiner wait out FLOOD_WAITs by advancing virtual
	// time, standing in for the real study's wall-clock waits.
	Clock *simclock.Sim
	// Seed drives the uniform random group sampling.
	Seed uint64
	// MaxMessagesPerGroup bounds history collection (0 = unlimited).
	MaxMessagesPerGroup int
	// TitleKeywords, when non-empty, restricts the join sample to groups
	// whose monitored title contains one of the keywords
	// (case-insensitive) — the paper's future-work "focused data
	// collection within groups related to specific topics".
	TitleKeywords []string
	// Workers bounds the per-group fan-out of CollectMessages (0 = default
	// bound, 1 = serial). The pool is kept narrow because all workers share
	// each platform account's flood budget.
	Workers int

	waCursor  int // joins on the current WhatsApp account
	waAccount int

	// joined holds scalar value copies of the sampled records (the join
	// flow only reads Platform and Code off them); the authoritative state
	// lives in the store's columns.
	joined map[platform.Platform][]store.GroupRecord
	stats  counters
}

// New returns a Joiner. Every client's retry policy is switched to wait by
// advancing the shared virtual clock — the simulation's stand-in for the
// real study's wall-clock FLOOD_WAIT sleeps.
func New(st *store.Store, wa []*whatsapp.Client, tg *telegram.Client, dc *discord.Client,
	clock *simclock.Sim, seed uint64) *Joiner {
	waiter := retry.AdvanceWaiter{Clock: clock}
	for _, c := range wa {
		c.Retry.Waiter = waiter
	}
	if tg != nil {
		tg.Retry.Waiter = waiter
	}
	if dc != nil {
		dc.Retry.Waiter = waiter
	}
	return &Joiner{
		Store:     st,
		WAClients: wa,
		TG:        tg,
		DC:        dc,
		Clock:     clock,
		Seed:      seed,
		joined:    map[platform.Platform][]store.GroupRecord{},
	}
}

// Joined returns the groups joined on a platform (scalar records, in join
// order).
func (j *Joiner) Joined(p platform.Platform) []store.GroupRecord { return j.joined[p] }

// Stats returns a snapshot of the join-phase counters; between pipeline
// phases (the only places the driver reads them) the snapshot is exact.
// FloodWaits is read off the clients' retry policies, which absorb the
// rate-limit waits that the joiner used to count itself.
func (j *Joiner) Stats() Stats {
	var floods int64
	for _, c := range j.WAClients {
		floods += c.Retry.Stats().Throttles
	}
	if j.TG != nil {
		floods += j.TG.Retry.Stats().Throttles
	}
	if j.DC != nil {
		floods += j.DC.Retry.Stats().Throttles
	}
	return Stats{
		Attempted:    int(j.stats.attempted.Load()),
		Joined:       int(j.stats.joined.Load()),
		DeadInvites:  int(j.stats.deadInvites.Load()),
		FloodWaits:   int(floods),
		HiddenLists:  int(j.stats.hiddenLists.Load()),
		Deferred:     int(j.stats.deferred.Load()),
		MessagesRead: int(j.stats.messagesRead.Load()),
	}
}

// State snapshots the joined sample (per-platform codes in join order), the
// WhatsApp account rotation, and the counters for a checkpoint.
func (j *Joiner) State() checkpoint.JoinerState {
	st := checkpoint.JoinerState{
		Joined:    map[string][]string{},
		WACursor:  j.waCursor,
		WAAccount: j.waAccount,
		Stats: map[string]int64{
			"attempted":     j.stats.attempted.Load(),
			"joined":        j.stats.joined.Load(),
			"dead_invites":  j.stats.deadInvites.Load(),
			"hidden_lists":  j.stats.hiddenLists.Load(),
			"deferred":      j.stats.deferred.Load(),
			"messages_read": j.stats.messagesRead.Load(),
		},
	}
	for p, gs := range j.joined {
		codes := make([]string, len(gs))
		for i, g := range gs {
			codes[i] = g.Code
		}
		st.Joined[p.String()] = codes
	}
	return st
}

// Restore reinstates the joined sample from a checkpoint, re-resolving each
// code against the store (which the caller has already replayed). Only
// Platform and Code are read off these scalar copies downstream, so the
// post-replay records are interchangeable with the ones SelectAndJoin kept.
// Join order is preserved — CollectMessages ingests results in that order.
func (j *Joiner) Restore(st checkpoint.JoinerState) error {
	j.waCursor = st.WACursor
	j.waAccount = st.WAAccount
	j.stats.attempted.Store(st.Stats["attempted"])
	j.stats.joined.Store(st.Stats["joined"])
	j.stats.deadInvites.Store(st.Stats["dead_invites"])
	j.stats.hiddenLists.Store(st.Stats["hidden_lists"])
	j.stats.deferred.Store(st.Stats["deferred"])
	j.stats.messagesRead.Store(st.Stats["messages_read"])
	for ps, codes := range st.Joined {
		p, err := platform.ParsePlatform(ps)
		if err != nil {
			return fmt.Errorf("join: restoring sample: %w", err)
		}
		gs := make([]store.GroupRecord, len(codes))
		for i, code := range codes {
			g, ok := j.Store.Group(p, code)
			if !ok {
				return fmt.Errorf("join: restoring sample: %s/%s not in store", ps, code)
			}
			gs[i] = g
		}
		j.joined[p] = gs
	}
	return nil
}

// SelectAndJoin samples discovered groups uniformly at random per platform
// and joins them until each target is met or candidates run out (dead
// invites are skipped, mirroring the paper's random sampling of *public,
// accessible* groups). A join whose retry budget is exhausted does not
// abort the phase: the group is marked deferred and the sample moves on.
func (j *Joiner) SelectAndJoin(ctx context.Context, t Targets) error {
	rng := ids.Fork(j.Seed, "join")
	for _, p := range platform.All {
		target := map[platform.Platform]int{
			platform.WhatsApp: t.WhatsApp,
			platform.Telegram: t.Telegram,
			platform.Discord:  t.Discord,
		}[p]
		if target <= 0 {
			continue
		}
		candidates := j.filterByTitle(j.Store.GroupsOf(p))
		shuffle(rng, candidates)
		for _, g := range candidates {
			if len(j.joined[p]) >= target {
				break
			}
			j.stats.attempted.Add(1)
			ok, err := j.joinOne(ctx, g)
			if err != nil {
				j.stats.deferred.Add(1)
				j.Store.MarkDeferred(p, g.Code, "join")
				continue
			}
			if ok {
				j.joined[p] = append(j.joined[p], g)
				j.stats.joined.Add(1)
			}
		}
	}
	return nil
}

func shuffle(rng *rand.Rand, gs []store.GroupRecord) {
	rng.Shuffle(len(gs), func(a, b int) { gs[a], gs[b] = gs[b], gs[a] })
}

// filterByTitle materializes the candidate sample as scalar records,
// keeping (with keywords configured) only groups whose last observed title
// matches one of them.
func (j *Joiner) filterByTitle(gs store.GroupList) []store.GroupRecord {
	out := make([]store.GroupRecord, 0, gs.Len())
	for i := 0; i < gs.Len(); i++ {
		if len(j.TitleKeywords) > 0 {
			low := strings.ToLower(gs.Obs(i).LastTitle())
			match := false
			for _, kw := range j.TitleKeywords {
				if kw != "" && strings.Contains(low, strings.ToLower(kw)) {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, gs.At(i))
	}
	return out
}

// joinOne attempts one join, returning ok=false for recoverable skips
// (revoked invites, caps) and an error only for unexpected failures.
func (j *Joiner) joinOne(ctx context.Context, g store.GroupRecord) (bool, error) {
	switch g.Platform {
	case platform.WhatsApp:
		return j.joinWhatsApp(ctx, g)
	case platform.Telegram:
		return j.joinTelegram(ctx, g)
	case platform.Discord:
		return j.joinDiscord(ctx, g)
	}
	return false, fmt.Errorf("unknown platform %v", g.Platform)
}

// waClient returns the active WhatsApp account, rotating before the ban
// threshold.
func (j *Joiner) waClient() *whatsapp.Client {
	if j.waCursor >= 240 && j.waAccount < len(j.WAClients)-1 {
		j.waAccount++
		j.waCursor = 0
	}
	return j.WAClients[j.waAccount]
}

func (j *Joiner) joinWhatsApp(ctx context.Context, g store.GroupRecord) (bool, error) {
	if len(j.WAClients) == 0 {
		return false, errors.New("no WhatsApp accounts")
	}
	c := j.waClient()
	joinedAt, err := c.Join(ctx, g.Code)
	switch {
	case errors.Is(err, whatsapp.ErrRevoked), errors.Is(err, whatsapp.ErrNotFound):
		j.stats.deadInvites.Add(1)
		return false, nil
	case errors.Is(err, whatsapp.ErrBanned):
		// Account exhausted; rotate and retry once.
		if j.waAccount >= len(j.WAClients)-1 {
			return false, nil
		}
		j.waAccount++
		j.waCursor = 0
		return j.joinWhatsApp(ctx, g)
	case err != nil:
		return false, err
	}
	j.waCursor++
	info, err := c.Info(ctx, g.Code)
	if err != nil {
		return false, err
	}
	members, err := c.Members(ctx, g.Code)
	if err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = joinedAt
		rec.CreatedAt = info.CreatedAt
		rec.MemberCount = len(members)
		rec.Channels = 1
	})
	for _, m := range members {
		j.Store.UpsertUser(store.UserRecord{
			Platform:  platform.WhatsApp,
			Key:       store.PhoneKey(m.Phone),
			PhoneHash: store.HashPhone(m.Phone),
			Country:   m.Country,
		})
	}
	return true, nil
}

func (j *Joiner) joinTelegram(ctx context.Context, g store.GroupRecord) (bool, error) {
	joinedAt, err := j.TG.Join(ctx, g.Code)
	switch {
	case errors.Is(err, telegram.ErrExpired), errors.Is(err, telegram.ErrNotFound):
		j.stats.deadInvites.Add(1)
		return false, nil
	case err != nil:
		return false, err
	}
	info, err := j.TG.Info(ctx, g.Code)
	if err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = joinedAt
		rec.CreatedAt = info.CreatedAt
		rec.IsChannel = info.IsChannel
		rec.HiddenMembers = info.HiddenMembers
		rec.MemberCount = info.Members
		rec.Channels = 1
		rec.CreatorKey = fmt.Sprintf("tg-creator-%d", info.CreatorID)
	})
	// Member lists are available only where admins did not hide them
	// (24 of 100 joined rooms in the paper).
	parts, err := j.TG.Participants(ctx, g.Code)
	switch {
	case errors.Is(err, telegram.ErrHiddenList):
		j.stats.hiddenLists.Add(1)
	case err != nil:
		return false, err
	default:
		for _, p := range parts {
			u := store.UserRecord{Platform: platform.Telegram, Key: p.ID}
			if p.Phone != "" {
				u.PhoneHash = store.HashPhone(p.Phone)
			}
			j.Store.UpsertUser(u)
		}
	}
	return true, nil
}

func (j *Joiner) joinDiscord(ctx context.Context, g store.GroupRecord) (bool, error) {
	inv, err := j.DC.Join(ctx, g.Code)
	switch {
	case errors.Is(err, discord.ErrUnknownInvite):
		j.stats.deadInvites.Add(1)
		return false, nil
	case errors.Is(err, discord.ErrGuildCap):
		// The hard 100-guild limit: no more Discord joins possible.
		return false, nil
	case err != nil:
		return false, err
	}
	chs, err := j.DC.Channels(ctx, inv.GuildID)
	if err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = j.Clock.Now()
		rec.CreatedAt = inv.CreatedAt
		rec.Channels = len(chs)
		rec.MemberCount = inv.Members
	})
	return true, nil
}
