// Package join implements Section 3.3: joining a uniform random sample of
// discovered groups and collecting in-group data, under each platform's
// real constraints — WhatsApp's per-account group caps (hence multiple
// accounts), message history only from the join time, Telegram's FLOOD_WAIT
// rate limits and hideable member lists, and Discord's 100-guild cap with
// full history since creation across every channel.
package join

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/simclock"
	"msgscope/internal/store"
)

// Targets sets how many groups to join per platform (paper: 416 WhatsApp,
// 100 Telegram, 100 Discord).
type Targets struct {
	WhatsApp int
	Telegram int
	Discord  int
}

// Stats counts join-phase events.
type Stats struct {
	Attempted    int
	Joined       int
	DeadInvites  int
	FloodWaits   int
	HiddenLists  int
	MessagesRead int
}

// counters is the lock-free mirror of Stats: FloodWaits and MessagesRead
// are bumped from concurrent collection workers, so every field is an
// atomic and Stats() materializes a snapshot.
type counters struct {
	attempted    atomic.Int64
	joined       atomic.Int64
	deadInvites  atomic.Int64
	floodWaits   atomic.Int64
	hiddenLists  atomic.Int64
	messagesRead atomic.Int64
}

// Joiner drives the join phase.
type Joiner struct {
	Store *store.Store
	// WAClients is the WhatsApp account pool; each account can join only
	// ~250 groups before being banned, so several accounts ("SIM cards")
	// cover larger samples.
	WAClients []*whatsapp.Client
	TG        *telegram.Client
	DC        *discord.Client
	// Clock lets the joiner wait out FLOOD_WAITs by advancing virtual
	// time, standing in for the real study's wall-clock waits.
	Clock *simclock.Sim
	// Seed drives the uniform random group sampling.
	Seed uint64
	// MaxMessagesPerGroup bounds history collection (0 = unlimited).
	MaxMessagesPerGroup int
	// MaxFloodRetries bounds waits per API call before giving up on a
	// group.
	MaxFloodRetries int
	// TitleKeywords, when non-empty, restricts the join sample to groups
	// whose monitored title contains one of the keywords
	// (case-insensitive) — the paper's future-work "focused data
	// collection within groups related to specific topics".
	TitleKeywords []string
	// Workers bounds the per-group fan-out of CollectMessages (0 = default
	// bound, 1 = serial). The pool is kept narrow because all workers share
	// each platform account's flood budget.
	Workers int

	waCursor  int // joins on the current WhatsApp account
	waAccount int

	joined map[platform.Platform][]*store.GroupRecord
	stats  counters
}

// New returns a Joiner.
func New(st *store.Store, wa []*whatsapp.Client, tg *telegram.Client, dc *discord.Client,
	clock *simclock.Sim, seed uint64) *Joiner {
	return &Joiner{
		Store:           st,
		WAClients:       wa,
		TG:              tg,
		DC:              dc,
		Clock:           clock,
		Seed:            seed,
		MaxFloodRetries: 200,
		joined:          map[platform.Platform][]*store.GroupRecord{},
	}
}

// Joined returns the groups joined on a platform.
func (j *Joiner) Joined(p platform.Platform) []*store.GroupRecord { return j.joined[p] }

// Stats returns a snapshot of the join-phase counters; between pipeline
// phases (the only places the driver reads them) the snapshot is exact.
func (j *Joiner) Stats() Stats {
	return Stats{
		Attempted:    int(j.stats.attempted.Load()),
		Joined:       int(j.stats.joined.Load()),
		DeadInvites:  int(j.stats.deadInvites.Load()),
		FloodWaits:   int(j.stats.floodWaits.Load()),
		HiddenLists:  int(j.stats.hiddenLists.Load()),
		MessagesRead: int(j.stats.messagesRead.Load()),
	}
}

// SelectAndJoin samples discovered groups uniformly at random per platform
// and joins them until each target is met or candidates run out (dead
// invites are skipped, mirroring the paper's random sampling of *public,
// accessible* groups).
func (j *Joiner) SelectAndJoin(ctx context.Context, t Targets) error {
	rng := ids.Fork(j.Seed, "join")
	for _, p := range platform.All {
		target := map[platform.Platform]int{
			platform.WhatsApp: t.WhatsApp,
			platform.Telegram: t.Telegram,
			platform.Discord:  t.Discord,
		}[p]
		if target <= 0 {
			continue
		}
		candidates := j.filterByTitle(j.Store.GroupsOf(p))
		shuffle(rng, candidates)
		for _, g := range candidates {
			if len(j.joined[p]) >= target {
				break
			}
			j.stats.attempted.Add(1)
			ok, err := j.joinOne(ctx, g)
			if err != nil {
				return fmt.Errorf("join: %v %s: %w", p, g.Code, err)
			}
			if ok {
				j.joined[p] = append(j.joined[p], g)
				j.stats.joined.Add(1)
			}
		}
	}
	return nil
}

func shuffle(rng *rand.Rand, gs []*store.GroupRecord) {
	rng.Shuffle(len(gs), func(a, b int) { gs[a], gs[b] = gs[b], gs[a] })
}

// filterByTitle keeps groups whose last observed title matches one of the
// configured keywords; with no keywords it returns the input unchanged.
func (j *Joiner) filterByTitle(gs []*store.GroupRecord) []*store.GroupRecord {
	if len(j.TitleKeywords) == 0 {
		return gs
	}
	var out []*store.GroupRecord
	for _, g := range gs {
		title := ""
		for _, o := range g.Observations {
			if o.Title != "" {
				title = o.Title
			}
		}
		low := strings.ToLower(title)
		for _, kw := range j.TitleKeywords {
			if kw != "" && strings.Contains(low, strings.ToLower(kw)) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// joinOne attempts one join, returning ok=false for recoverable skips
// (revoked invites, caps) and an error only for unexpected failures.
func (j *Joiner) joinOne(ctx context.Context, g *store.GroupRecord) (bool, error) {
	switch g.Platform {
	case platform.WhatsApp:
		return j.joinWhatsApp(ctx, g)
	case platform.Telegram:
		return j.joinTelegram(ctx, g)
	case platform.Discord:
		return j.joinDiscord(ctx, g)
	}
	return false, fmt.Errorf("unknown platform %v", g.Platform)
}

// waClient returns the active WhatsApp account, rotating before the ban
// threshold.
func (j *Joiner) waClient() *whatsapp.Client {
	if j.waCursor >= 240 && j.waAccount < len(j.WAClients)-1 {
		j.waAccount++
		j.waCursor = 0
	}
	return j.WAClients[j.waAccount]
}

func (j *Joiner) joinWhatsApp(ctx context.Context, g *store.GroupRecord) (bool, error) {
	if len(j.WAClients) == 0 {
		return false, errors.New("no WhatsApp accounts")
	}
	c := j.waClient()
	joinedAt, err := c.Join(ctx, g.Code)
	switch {
	case errors.Is(err, whatsapp.ErrRevoked), errors.Is(err, whatsapp.ErrNotFound):
		j.stats.deadInvites.Add(1)
		return false, nil
	case errors.Is(err, whatsapp.ErrBanned):
		// Account exhausted; rotate and retry once.
		if j.waAccount >= len(j.WAClients)-1 {
			return false, nil
		}
		j.waAccount++
		j.waCursor = 0
		return j.joinWhatsApp(ctx, g)
	case err != nil:
		return false, err
	}
	j.waCursor++
	info, err := c.Info(ctx, g.Code)
	if err != nil {
		return false, err
	}
	members, err := c.Members(ctx, g.Code)
	if err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = joinedAt
		rec.CreatedAt = info.CreatedAt
		rec.MemberCount = len(members)
		rec.Channels = 1
	})
	for _, m := range members {
		j.Store.UpsertUser(store.UserRecord{
			Platform:  platform.WhatsApp,
			Key:       store.PhoneKey(m.Phone),
			PhoneHash: store.HashPhone(m.Phone),
			Country:   m.Country,
		})
	}
	return true, nil
}

// floodWait advances virtual time to wait out a Telegram FLOOD_WAIT.
func (j *Joiner) floodWait() {
	j.stats.floodWaits.Add(1)
	j.Clock.Advance(31 * time.Second)
}

// tgCall runs fn, waiting out FLOOD_WAITs up to the retry budget.
func (j *Joiner) tgCall(fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if !errors.Is(err, telegram.ErrFloodWait) {
			return err
		}
		if attempt >= j.MaxFloodRetries {
			return err
		}
		j.floodWait()
	}
}

func (j *Joiner) joinTelegram(ctx context.Context, g *store.GroupRecord) (bool, error) {
	var joinedAt time.Time
	err := j.tgCall(func() error {
		var err error
		joinedAt, err = j.TG.Join(ctx, g.Code)
		return err
	})
	switch {
	case errors.Is(err, telegram.ErrExpired), errors.Is(err, telegram.ErrNotFound):
		j.stats.deadInvites.Add(1)
		return false, nil
	case err != nil:
		return false, err
	}
	var info telegram.ChatInfo
	if err := j.tgCall(func() error {
		var err error
		info, err = j.TG.Info(ctx, g.Code)
		return err
	}); err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = joinedAt
		rec.CreatedAt = info.CreatedAt
		rec.IsChannel = info.IsChannel
		rec.HiddenMembers = info.HiddenMembers
		rec.MemberCount = info.Members
		rec.Channels = 1
		rec.CreatorKey = fmt.Sprintf("tg-creator-%d", info.CreatorID)
	})
	// Member lists are available only where admins did not hide them
	// (24 of 100 joined rooms in the paper).
	var parts []telegram.Participant
	err = j.tgCall(func() error {
		var err error
		parts, err = j.TG.Participants(ctx, g.Code)
		return err
	})
	switch {
	case errors.Is(err, telegram.ErrHiddenList):
		j.stats.hiddenLists.Add(1)
	case err != nil:
		return false, err
	default:
		for _, p := range parts {
			u := store.UserRecord{Platform: platform.Telegram, Key: p.ID}
			if p.Phone != "" {
				u.PhoneHash = store.HashPhone(p.Phone)
			}
			j.Store.UpsertUser(u)
		}
	}
	return true, nil
}

func (j *Joiner) joinDiscord(ctx context.Context, g *store.GroupRecord) (bool, error) {
	var inv discord.Invite
	err := j.dcCall(func() error {
		var err error
		inv, err = j.DC.Join(ctx, g.Code)
		return err
	})
	switch {
	case errors.Is(err, discord.ErrUnknownInvite):
		j.stats.deadInvites.Add(1)
		return false, nil
	case errors.Is(err, discord.ErrGuildCap):
		// The hard 100-guild limit: no more Discord joins possible.
		return false, nil
	case err != nil:
		return false, err
	}
	chs, err := j.dcChannels(ctx, inv.GuildID)
	if err != nil {
		return false, err
	}
	j.Store.MarkJoined(g.Platform, g.Code, func(rec *store.GroupRecord) {
		rec.JoinedAt = j.Clock.Now()
		rec.CreatedAt = inv.CreatedAt
		rec.Channels = len(chs)
		rec.MemberCount = inv.Members
	})
	return true, nil
}

// dcCall runs fn, waiting out Discord 429s by advancing virtual time.
func (j *Joiner) dcCall(fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if !errors.Is(err, discord.ErrRateLimited) {
			return err
		}
		if attempt >= j.MaxFloodRetries {
			return err
		}
		j.stats.floodWaits.Add(1)
		j.Clock.Advance(2 * time.Second)
	}
}

func (j *Joiner) dcChannels(ctx context.Context, guildID uint64) ([]discord.Channel, error) {
	var chs []discord.Channel
	err := j.dcCall(func() error {
		var err error
		chs, err = j.DC.Channels(ctx, guildID)
		return err
	})
	return chs, err
}
