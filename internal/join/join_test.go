package join

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/store"
)

type fixture struct {
	world  *simworld.World
	clock  *simclock.Sim
	st     *store.Store
	joiner *Joiner
}

func newFixture(t *testing.T, tgCfg telegram.ServiceConfig) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(13, 0.004))
	clock := simclock.New(w.Cfg.Start)
	clock.Advance(3 * 24 * time.Hour)
	waSrv := httptest.NewServer(whatsapp.NewService(w, clock).Handler())
	tgSrv := httptest.NewServer(telegram.NewService(w, clock, tgCfg).Handler())
	dcSrv := httptest.NewServer(discord.NewService(w, clock, discord.DefaultServiceConfig()).Handler())
	t.Cleanup(waSrv.Close)
	t.Cleanup(tgSrv.Close)
	t.Cleanup(dcSrv.Close)

	st := store.New()
	// Register every group shared so far as discovered.
	var id uint64
	for _, p := range platform.All {
		for _, g := range w.Groups[p] {
			if g.FirstShareAt.After(clock.Now()) {
				continue
			}
			id++
			st.AddTweet(store.TweetRecord{
				ID: id, CreatedAt: g.FirstShareAt, Platform: p, GroupCode: g.Code,
				Source: store.SourceSearch,
			})
		}
	}
	joiner := New(st,
		[]*whatsapp.Client{whatsapp.NewClient(waSrv.URL, "j0"), whatsapp.NewClient(waSrv.URL, "j1")},
		telegram.NewClient(tgSrv.URL, "jt"),
		discord.NewClient(dcSrv.URL, "jd"),
		clock, 77)
	return &fixture{world: w, clock: clock, st: st, joiner: joiner}
}

func TestSelectAndJoinMeetsTargets(t *testing.T) {
	f := newFixture(t, telegram.DefaultServiceConfig())
	targets := Targets{WhatsApp: 4, Telegram: 3, Discord: 3}
	if err := f.joiner.SelectAndJoin(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	if got := len(f.joiner.Joined(platform.WhatsApp)); got != 4 {
		t.Fatalf("joined %d WhatsApp groups, want 4", got)
	}
	if got := len(f.joiner.Joined(platform.Telegram)); got != 3 {
		t.Fatalf("joined %d Telegram groups, want 3", got)
	}
	if got := len(f.joiner.Joined(platform.Discord)); got != 3 {
		t.Fatalf("joined %d Discord groups, want 3", got)
	}
	// Join metadata recorded on the store.
	for _, p := range platform.All {
		for _, g := range f.joiner.Joined(p) {
			rec, _ := f.st.Group(p, g.Code)
			if !rec.Joined || rec.CreatedAt.IsZero() {
				t.Fatalf("join metadata missing for %v/%s: %+v", p, g.Code, rec)
			}
			if p == platform.Discord && rec.Channels == 0 {
				t.Fatal("Discord channels not recorded")
			}
		}
	}
}

func TestJoinSkipsDeadInvites(t *testing.T) {
	f := newFixture(t, telegram.DefaultServiceConfig())
	// Push the clock far so Discord's quick-death invites are mostly dead.
	f.clock.Advance(10 * 24 * time.Hour)
	if err := f.joiner.SelectAndJoin(context.Background(), Targets{Discord: 3}); err != nil {
		t.Fatal(err)
	}
	if f.joiner.Stats().DeadInvites == 0 {
		t.Fatal("no dead invites encountered on Discord after 13 days")
	}
	for _, g := range f.joiner.Joined(platform.Discord) {
		rec, _ := f.st.Group(platform.Discord, g.Code)
		if !rec.Joined {
			t.Fatal("joined group not marked")
		}
	}
}

func TestCollectMessagesAllPlatforms(t *testing.T) {
	f := newFixture(t, telegram.DefaultServiceConfig())
	ctx := context.Background()
	if err := f.joiner.SelectAndJoin(ctx, Targets{WhatsApp: 2, Telegram: 2, Discord: 2}); err != nil {
		t.Fatal(err)
	}
	// Let some post-join WhatsApp activity accumulate.
	f.clock.Advance(5 * 24 * time.Hour)
	if err := f.joiner.CollectMessages(ctx); err != nil {
		t.Fatal(err)
	}
	counts := map[platform.Platform]int{}
	msgs := f.st.Messages()
	for i, n := 0, msgs.Len(); i < n; i++ {
		counts[msgs.At(i).Platform]++
	}
	for _, p := range platform.All {
		if counts[p] == 0 {
			t.Errorf("%v: no messages collected", p)
		}
	}
	// WhatsApp messages never predate the join.
	joinAt := map[string]time.Time{}
	for _, g := range f.joiner.Joined(platform.WhatsApp) {
		rec, _ := f.st.Group(platform.WhatsApp, g.Code)
		joinAt[g.Code] = rec.JoinedAt
	}
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		if m.Platform == platform.WhatsApp && m.SentAt.Before(joinAt[m.GroupCode]) {
			t.Fatal("WhatsApp message predates join")
		}
	}
	// Telegram/Discord history reaches back before the join.
	preJoin := false
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		if m.Platform != platform.WhatsApp && m.SentAt.Before(f.world.Cfg.Start) {
			preJoin = true
			break
		}
	}
	if !preJoin {
		t.Error("no pre-study history collected from Telegram/Discord")
	}
	// Discord posters got profile fetches; some should expose links.
	dcUsers := 0
	for _, u := range f.st.Users() {
		if u.Platform == platform.Discord {
			dcUsers++
		}
	}
	if dcUsers == 0 {
		t.Error("no Discord users observed")
	}
}

func TestFloodWaitAdvancesClockAndSucceeds(t *testing.T) {
	f := newFixture(t, telegram.ServiceConfig{APIBudget: 4, APIWindow: time.Minute, FloodWaitSeconds: 30})
	ctx := context.Background()
	before := f.clock.Now()
	if err := f.joiner.SelectAndJoin(ctx, Targets{Telegram: 3}); err != nil {
		t.Fatal(err)
	}
	if f.joiner.Stats().FloodWaits == 0 {
		t.Fatal("tight budget produced no flood waits")
	}
	if !f.clock.Now().After(before) {
		t.Fatal("flood waits did not advance the virtual clock")
	}
	if got := len(f.joiner.Joined(platform.Telegram)); got != 3 {
		t.Fatalf("joined %d, want 3 despite flood waits", got)
	}
}

func TestMaxMessagesPerGroupCap(t *testing.T) {
	f := newFixture(t, telegram.DefaultServiceConfig())
	f.joiner.MaxMessagesPerGroup = 50
	ctx := context.Background()
	if err := f.joiner.SelectAndJoin(ctx, Targets{Telegram: 2, Discord: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.joiner.CollectMessages(ctx); err != nil {
		t.Fatal(err)
	}
	perGroup := map[string]int{}
	msgs := f.st.Messages()
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		perGroup[m.Platform.String()+"/"+m.GroupCode]++
	}
	for k, n := range perGroup {
		// Caps are applied per page flush, so allow one page of slack.
		if n > 50+1000 {
			t.Fatalf("group %s collected %d messages beyond cap", k, n)
		}
	}
}

func TestHiddenMemberListsCounted(t *testing.T) {
	f := newFixture(t, telegram.DefaultServiceConfig())
	if err := f.joiner.SelectAndJoin(context.Background(), Targets{Telegram: 8}); err != nil {
		t.Fatal(err)
	}
	st := f.joiner.Stats()
	// With HiddenMembersP=0.76, 8 joins should nearly surely hit one.
	if st.HiddenLists == 0 {
		t.Skip("no hidden member lists among sampled groups (unlucky draw)")
	}
}
