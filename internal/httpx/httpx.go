// Package httpx provides the one tuned http.Transport shared by every
// platform client in the pipeline. Go's default transport keeps only two
// idle connections per host, so the 16-worker daily sweep and the parallel
// search/join fan-outs spend most of their time re-dialing the loopback
// services; a shared transport with a deep idle pool lets every worker
// reuse warm connections instead.
package httpx

import (
	"io"
	"net/http"
	"time"
)

// Transport is the shared transport. MaxIdleConnsPerHost must stay at or
// above the widest worker pool that hits one service (the daily sweep's
// default 16 workers, the search fan-out, and the join-phase collection
// all talk to a single host each).
var Transport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// NewClient returns an http.Client on the shared transport. Clients are
// cheap (they carry no state beyond the transport pointer), so every
// platform client constructs its own.
func NewClient() *http.Client {
	return &http.Client{Transport: Transport}
}

// Drain discards the rest of a response body and closes it, so the
// underlying connection returns to the shared idle pool. Retry paths use
// it on every response they abandon: dropping a half-read body would
// force a re-dial on the next attempt.
func Drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
