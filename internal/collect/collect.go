// Package collect implements the discovery pipeline of Section 3.1: hourly
// Search API queries for the six URL patterns, a continuous filtered
// stream, and the 1% sample stream as the control dataset. Results from
// both APIs are merged and deduplicated into the store; each API alone is
// incomplete (the service simulates index misses and stream drops), which
// is why the paper merges them.
package collect

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"msgscope/internal/checkpoint"
	"msgscope/internal/par"
	"msgscope/internal/social"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
	"msgscope/internal/urlpat"
)

// Stats counts collection-side events.
type Stats struct {
	SearchTweets  int // tweets returned by search (pre-dedup)
	StreamTweets  int // tweets delivered by the filter stream
	ControlTweets int
	RateLimitHits int
	NoURLTweets   int // matched the pattern text but carried no invite URL
	NewGroups     int
	SocialPosts   int // posts ingested from the secondary network
	SocialNew     int // groups first discovered via the secondary network
	// SearchDeferred counts hourly queries that exhausted the retry
	// budget; the partial batch is kept and the cursor stays put, so the
	// next round re-covers the window (search has seven days of slack).
	SearchDeferred int
}

// counters is the lock-free mirror of Stats. Each field is a monotonic
// atomic, so the hourly search workers increment without sharing a mutex;
// Stats() materializes a snapshot that is exact whenever the pipeline is
// between phases (every call site in the driver).
type counters struct {
	searchTweets   atomic.Int64
	streamTweets   atomic.Int64
	controlTweets  atomic.Int64
	rateLimitHits  atomic.Int64
	noURLTweets    atomic.Int64
	newGroups      atomic.Int64
	socialPosts    atomic.Int64
	socialNew      atomic.Int64
	searchDeferred atomic.Int64
}

// Collector drives discovery against one Twitter client.
type Collector struct {
	Store  *store.Store
	Client *twitter.Client
	// Social, when set, is polled alongside the Twitter sources — the
	// future-work second discovery source.
	Social *social.Client
	// MaxPagesPerQuery bounds search pagination per hourly query.
	MaxPagesPerQuery int
	// SearchWorkers bounds the per-pattern fan-out of HourlySearch
	// (0 = one worker per tracked pattern, 1 = serial).
	SearchWorkers int

	stats counters

	// sinceID holds one cursor per tracked term. The map itself is
	// immutable after New (keys are exactly urlpat.TrackTerms()), so
	// concurrent per-term workers touch only their own atomic.
	sinceID  map[string]*atomic.Uint64
	socialID atomic.Uint64 // feed cursor

	filter *twitter.Stream
	sample *twitter.Stream

	// Reusable ingest buffers. The store copies records out of a batch
	// before AddTweetBatch/AddControlBatch return, so the collector can
	// recycle the backing arrays across rounds instead of allocating a
	// fresh batch per term per hour. termBatches is indexed like
	// urlpat.TrackTerms(): each concurrent search worker owns exactly one
	// slot, and the driver runs rounds serially, so no slot is ever shared.
	termBatches  [][]store.TweetIngest
	streamBatch  []store.TweetIngest
	controlBatch []store.ControlRecord
}

// New returns a Collector writing into st.
func New(st *store.Store, client *twitter.Client) *Collector {
	c := &Collector{
		Store:            st,
		Client:           client,
		MaxPagesPerQuery: 50,
		sinceID:          map[string]*atomic.Uint64{},
	}
	for _, term := range urlpat.TrackTerms() {
		c.sinceID[term] = &atomic.Uint64{}
	}
	return c
}

// Open connects the filter stream (tracking all six patterns) and the 1%
// sample stream.
func (c *Collector) Open(ctx context.Context) error {
	f, err := c.Client.OpenFilterStream(ctx, urlpat.TrackTerms())
	if err != nil {
		return fmt.Errorf("collect: opening filter stream: %w", err)
	}
	s, err := c.Client.OpenSampleStream(ctx)
	if err != nil {
		f.Close()
		return fmt.Errorf("collect: opening sample stream: %w", err)
	}
	c.filter, c.sample = f, s
	return nil
}

// Close tears down the streams.
func (c *Collector) Close() {
	if c.filter != nil {
		c.filter.Close()
	}
	if c.sample != nil {
		c.sample.Close()
	}
}

// FilterStream exposes the filter stream (for driver quiescing).
func (c *Collector) FilterStream() *twitter.Stream { return c.filter }

// SampleStream exposes the sample stream (for driver quiescing).
func (c *Collector) SampleStream() *twitter.Stream { return c.sample }

// HourlySearch runs one round of Search API queries, one per URL pattern,
// with since_id cursors so each round only pulls new tweets. Rate-limit
// errors are counted, not fatal: the seven-day search window means the next
// round recovers anything missed.
//
// The per-pattern query+paginate chains run concurrently on a bounded pool;
// ingest then applies the gathered batches in fixed pattern order, so the
// store's tweet slice is byte-for-byte the order the serial pipeline
// produced (the LDA experiment subsamples a collection-order prefix, so
// slice order is observable in report output). The expensive part — the
// HTTP round-trips and pagination — is what parallelizes; the in-memory
// batch append is negligible.
func (c *Collector) HourlySearch(ctx context.Context) error {
	terms := urlpat.TrackTerms()
	if c.termBatches == nil {
		c.termBatches = make([][]store.TweetIngest, len(terms))
	}
	tasks := make([]func() error, len(terms))
	for i, term := range terms {
		tasks[i] = func() error {
			batch, err := c.searchTerm(ctx, term, c.termBatches[i][:0])
			c.termBatches[i] = batch
			return err
		}
	}
	workers := c.SearchWorkers
	if workers <= 0 {
		// The GOMAXPROCS benchmark matrix (BENCH_6.json) shows the search
		// fan-out saturates around two workers per core: the work is
		// request-latency-bound, so a little oversubscription overlaps
		// waits, but one goroutine per pattern on a small machine only
		// adds scheduling churn. Results are identical either way —
		// ingestion happens in fixed pattern order after the fan-out.
		workers = min(len(terms), 2*runtime.GOMAXPROCS(0))
	}
	err := par.Do(workers, tasks)
	for _, batch := range c.termBatches {
		c.stats.newGroups.Add(int64(c.Store.AddTweetBatch(batch)))
	}
	return err
}

// searchTerm runs one pattern's query+paginate chain and returns its batch
// of extracted tweets appended to batch, advancing the pattern's since_id
// cursor.
func (c *Collector) searchTerm(ctx context.Context, term string, batch []store.TweetIngest) ([]store.TweetIngest, error) {
	cur := c.cursor(term)
	since := cur.Load()
	statuses, err := c.Client.Search(ctx, term, since, c.MaxPagesPerQuery)
	deferred := false
	if err != nil {
		if errors.Is(err, twitter.ErrRateLimited) {
			c.stats.rateLimitHits.Add(1)
		} else {
			// Retry budget exhausted mid-query: keep the pages already
			// fetched but leave the cursor where it was, so the next hourly
			// round re-covers this window instead of silently skipping it.
			c.stats.searchDeferred.Add(1)
			deferred = true
		}
	}
	c.stats.searchTweets.Add(int64(len(statuses)))
	maxID := since
	for _, st := range statuses {
		if st.ID > maxID {
			maxID = st.ID
		}
		if ing, ok := c.toIngest(st, store.SourceSearch); ok {
			batch = append(batch, ing)
		}
	}
	if !deferred {
		for {
			old := cur.Load()
			if maxID <= old || cur.CompareAndSwap(old, maxID) {
				break
			}
		}
	}
	return batch, nil
}

// cursor returns the term's since_id cell, creating one for untracked
// terms (only possible for callers bypassing TrackTerms).
func (c *Collector) cursor(term string) *atomic.Uint64 {
	if cur, ok := c.sinceID[term]; ok {
		return cur
	}
	// The shared map is never mutated after New, so an unknown term gets a
	// private cursor: correctness over cross-call persistence for a case
	// the pipeline never exercises.
	return &atomic.Uint64{}
}

// DrainStreams ingests everything buffered on both streams, as one batch
// per stream.
func (c *Collector) DrainStreams() {
	if c.filter != nil {
		statuses := c.filter.Drain()
		c.stats.streamTweets.Add(int64(len(statuses)))
		batch := c.streamBatch[:0]
		for _, st := range statuses {
			if ing, ok := c.toIngest(st, store.SourceStream); ok {
				batch = append(batch, ing)
			}
		}
		c.stats.newGroups.Add(int64(c.Store.AddTweetBatch(batch)))
		c.streamBatch = batch
	}
	if c.sample != nil {
		statuses := c.sample.Drain()
		batch := c.controlBatch[:0]
		for _, st := range statuses {
			batch = append(batch, store.ControlRecord{
				ID:        st.ID,
				UserID:    st.UserID,
				CreatedAt: st.CreatedAt,
				Lang:      st.Lang,
				Hashtags:  st.Hashtags,
				Mentions:  st.Mentions,
				Retweet:   st.IsRetweet,
			})
		}
		c.Store.AddControlBatch(batch)
		c.stats.controlTweets.Add(int64(len(batch)))
		c.controlBatch = batch
	}
}

// toIngest extracts the group URL from a status; ok is false when the
// status matched a pattern's text but carried no invite URL.
func (c *Collector) toIngest(st twitter.Status, src store.TweetSource) (store.TweetIngest, bool) {
	urls := urlpat.Extract(st.Text)
	if len(urls) == 0 {
		c.stats.noURLTweets.Add(1)
		return store.TweetIngest{}, false
	}
	gu := urls[0]
	return store.TweetIngest{
		Tweet: store.TweetRecord{
			ID:        st.ID,
			UserID:    st.UserID,
			CreatedAt: st.CreatedAt,
			Lang:      st.Lang,
			Hashtags:  st.Hashtags,
			Mentions:  st.Mentions,
			Retweet:   st.IsRetweet,
			Text:      st.Text,
			Platform:  gu.Platform,
			GroupCode: gu.Code,
			Source:    src,
		},
		Canonical: gu.Canonical,
	}, true
}

// PollSocial drains the secondary network's feed since the last cursor.
// No-op when no social client is configured.
func (c *Collector) PollSocial(ctx context.Context) error {
	if c.Social == nil {
		return nil
	}
	since := c.socialID.Load()
	posts, cursor, err := c.Social.Poll(ctx, since)
	if err != nil {
		return fmt.Errorf("collect: polling social feed: %w", err)
	}
	for _, p := range posts {
		urls := urlpat.Extract(p.Text)
		if len(urls) == 0 {
			c.stats.noURLTweets.Add(1)
			continue
		}
		gu := urls[0]
		isNew := c.Store.AddPost(store.PostRecord{
			ID:        p.ID,
			Author:    p.Author,
			CreatedAt: p.CreatedAt,
			Text:      p.Text,
			Platform:  gu.Platform,
			GroupCode: gu.Code,
		})
		c.stats.socialPosts.Add(1)
		if isNew {
			c.stats.socialNew.Add(1)
			c.stats.newGroups.Add(1)
			c.Store.SetCanonical(gu.Platform, gu.Code, gu.Canonical)
		}
	}
	if cursor > c.socialID.Load() {
		c.socialID.Store(cursor)
	}
	return nil
}

// State snapshots the collector's cursors and counters for a checkpoint.
// Only called between phases, where the atomics are quiescent.
func (c *Collector) State() checkpoint.CollectorState {
	st := checkpoint.CollectorState{
		SinceIDs: make(map[string]uint64, len(c.sinceID)),
		SocialID: c.socialID.Load(),
		Stats: map[string]int64{
			"search_tweets":   c.stats.searchTweets.Load(),
			"stream_tweets":   c.stats.streamTweets.Load(),
			"control_tweets":  c.stats.controlTweets.Load(),
			"rate_limit_hits": c.stats.rateLimitHits.Load(),
			"no_url_tweets":   c.stats.noURLTweets.Load(),
			"new_groups":      c.stats.newGroups.Load(),
			"social_posts":    c.stats.socialPosts.Load(),
			"social_new":      c.stats.socialNew.Load(),
			"search_deferred": c.stats.searchDeferred.Load(),
		},
	}
	for term, cur := range c.sinceID {
		st.SinceIDs[term] = cur.Load()
	}
	return st
}

// Restore reinstates cursors and counters from a checkpoint. Cursors for
// terms the current build does not track are dropped — the options hash
// upstream guarantees the term set matches in practice.
func (c *Collector) Restore(st checkpoint.CollectorState) {
	for term, v := range st.SinceIDs {
		if cur, ok := c.sinceID[term]; ok {
			cur.Store(v)
		}
	}
	c.socialID.Store(st.SocialID)
	c.stats.searchTweets.Store(st.Stats["search_tweets"])
	c.stats.streamTweets.Store(st.Stats["stream_tweets"])
	c.stats.controlTweets.Store(st.Stats["control_tweets"])
	c.stats.rateLimitHits.Store(st.Stats["rate_limit_hits"])
	c.stats.noURLTweets.Store(st.Stats["no_url_tweets"])
	c.stats.newGroups.Store(st.Stats["new_groups"])
	c.stats.socialPosts.Store(st.Stats["social_posts"])
	c.stats.socialNew.Store(st.Stats["social_new"])
	c.stats.searchDeferred.Store(st.Stats["search_deferred"])
}

// Stats returns a snapshot of collection counters. Counters are monotonic
// atomics; between pipeline phases (the only places the driver reads them)
// the snapshot is exact.
func (c *Collector) Stats() Stats {
	return Stats{
		SearchTweets:   int(c.stats.searchTweets.Load()),
		StreamTweets:   int(c.stats.streamTweets.Load()),
		ControlTweets:  int(c.stats.controlTweets.Load()),
		RateLimitHits:  int(c.stats.rateLimitHits.Load()),
		NoURLTweets:    int(c.stats.noURLTweets.Load()),
		NewGroups:      int(c.stats.newGroups.Load()),
		SocialPosts:    int(c.stats.socialPosts.Load()),
		SocialNew:      int(c.stats.socialNew.Load()),
		SearchDeferred: int(c.stats.searchDeferred.Load()),
	}
}
