// Package collect implements the discovery pipeline of Section 3.1: hourly
// Search API queries for the six URL patterns, a continuous filtered
// stream, and the 1% sample stream as the control dataset. Results from
// both APIs are merged and deduplicated into the store; each API alone is
// incomplete (the service simulates index misses and stream drops), which
// is why the paper merges them.
package collect

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"msgscope/internal/social"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
	"msgscope/internal/urlpat"
)

// Stats counts collection-side events.
type Stats struct {
	SearchTweets  int // tweets returned by search (pre-dedup)
	StreamTweets  int // tweets delivered by the filter stream
	ControlTweets int
	RateLimitHits int
	NoURLTweets   int // matched the pattern text but carried no invite URL
	NewGroups     int
	SocialPosts   int // posts ingested from the secondary network
	SocialNew     int // groups first discovered via the secondary network
}

// Collector drives discovery against one Twitter client.
type Collector struct {
	Store  *store.Store
	Client *twitter.Client
	// Social, when set, is polled alongside the Twitter sources — the
	// future-work second discovery source.
	Social *social.Client
	// MaxPagesPerQuery bounds search pagination per hourly query.
	MaxPagesPerQuery int

	mu       sync.Mutex
	stats    Stats
	sinceID  map[string]uint64
	socialID uint64 // feed cursor

	filter *twitter.Stream
	sample *twitter.Stream
}

// New returns a Collector writing into st.
func New(st *store.Store, client *twitter.Client) *Collector {
	return &Collector{
		Store:            st,
		Client:           client,
		MaxPagesPerQuery: 50,
		sinceID:          map[string]uint64{},
	}
}

// Open connects the filter stream (tracking all six patterns) and the 1%
// sample stream.
func (c *Collector) Open(ctx context.Context) error {
	f, err := c.Client.OpenFilterStream(ctx, urlpat.TrackTerms())
	if err != nil {
		return fmt.Errorf("collect: opening filter stream: %w", err)
	}
	s, err := c.Client.OpenSampleStream(ctx)
	if err != nil {
		f.Close()
		return fmt.Errorf("collect: opening sample stream: %w", err)
	}
	c.filter, c.sample = f, s
	return nil
}

// Close tears down the streams.
func (c *Collector) Close() {
	if c.filter != nil {
		c.filter.Close()
	}
	if c.sample != nil {
		c.sample.Close()
	}
}

// FilterStream exposes the filter stream (for driver quiescing).
func (c *Collector) FilterStream() *twitter.Stream { return c.filter }

// SampleStream exposes the sample stream (for driver quiescing).
func (c *Collector) SampleStream() *twitter.Stream { return c.sample }

// HourlySearch runs one round of Search API queries, one per URL pattern,
// with since_id cursors so each round only pulls new tweets. Rate-limit
// errors are counted, not fatal: the seven-day search window means the next
// round recovers anything missed.
func (c *Collector) HourlySearch(ctx context.Context) error {
	for _, term := range urlpat.TrackTerms() {
		c.mu.Lock()
		since := c.sinceID[term]
		c.mu.Unlock()
		statuses, err := c.Client.Search(ctx, term, since, c.MaxPagesPerQuery)
		if err != nil {
			if errors.Is(err, twitter.ErrRateLimited) {
				c.mu.Lock()
				c.stats.RateLimitHits++
				c.mu.Unlock()
			} else {
				return fmt.Errorf("collect: search %q: %w", term, err)
			}
		}
		maxID := since
		for _, st := range statuses {
			if st.ID > maxID {
				maxID = st.ID
			}
			c.ingest(st, store.SourceSearch)
			c.mu.Lock()
			c.stats.SearchTweets++
			c.mu.Unlock()
		}
		c.mu.Lock()
		if maxID > c.sinceID[term] {
			c.sinceID[term] = maxID
		}
		c.mu.Unlock()
	}
	return nil
}

// DrainStreams ingests everything buffered on both streams.
func (c *Collector) DrainStreams() {
	if c.filter != nil {
		for _, st := range c.filter.Drain() {
			c.ingest(st, store.SourceStream)
			c.mu.Lock()
			c.stats.StreamTweets++
			c.mu.Unlock()
		}
	}
	if c.sample != nil {
		for _, st := range c.sample.Drain() {
			c.Store.AddControl(store.ControlRecord{
				ID:        st.ID,
				UserID:    st.UserID,
				CreatedAt: st.CreatedAt,
				Lang:      st.Lang,
				Hashtags:  st.Hashtags,
				Mentions:  st.Mentions,
				Retweet:   st.IsRetweet,
			})
			c.mu.Lock()
			c.stats.ControlTweets++
			c.mu.Unlock()
		}
	}
}

// ingest extracts the group URL from a status and merges it into the store.
func (c *Collector) ingest(st twitter.Status, src store.TweetSource) {
	urls := urlpat.Extract(st.Text)
	if len(urls) == 0 {
		c.mu.Lock()
		c.stats.NoURLTweets++
		c.mu.Unlock()
		return
	}
	gu := urls[0]
	rec := store.TweetRecord{
		ID:        st.ID,
		UserID:    st.UserID,
		CreatedAt: st.CreatedAt,
		Lang:      st.Lang,
		Hashtags:  st.Hashtags,
		Mentions:  st.Mentions,
		Retweet:   st.IsRetweet,
		Text:      st.Text,
		Platform:  gu.Platform,
		GroupCode: gu.Code,
		Source:    src,
	}
	if c.Store.AddTweet(rec) {
		c.Store.SetCanonical(gu.Platform, gu.Code, gu.Canonical)
		c.mu.Lock()
		c.stats.NewGroups++
		c.mu.Unlock()
	}
}

// PollSocial drains the secondary network's feed since the last cursor.
// No-op when no social client is configured.
func (c *Collector) PollSocial(ctx context.Context) error {
	if c.Social == nil {
		return nil
	}
	c.mu.Lock()
	since := c.socialID
	c.mu.Unlock()
	posts, cursor, err := c.Social.Poll(ctx, since)
	if err != nil {
		return fmt.Errorf("collect: polling social feed: %w", err)
	}
	for _, p := range posts {
		urls := urlpat.Extract(p.Text)
		if len(urls) == 0 {
			c.mu.Lock()
			c.stats.NoURLTweets++
			c.mu.Unlock()
			continue
		}
		gu := urls[0]
		isNew := c.Store.AddPost(store.PostRecord{
			ID:        p.ID,
			Author:    p.Author,
			CreatedAt: p.CreatedAt,
			Text:      p.Text,
			Platform:  gu.Platform,
			GroupCode: gu.Code,
		})
		c.mu.Lock()
		c.stats.SocialPosts++
		if isNew {
			c.stats.SocialNew++
			c.stats.NewGroups++
		}
		c.mu.Unlock()
		if isNew {
			c.Store.SetCanonical(gu.Platform, gu.Code, gu.Canonical)
		}
	}
	c.mu.Lock()
	if cursor > c.socialID {
		c.socialID = cursor
	}
	c.mu.Unlock()
	return nil
}

// Stats returns a snapshot of collection counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
