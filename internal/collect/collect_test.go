package collect

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/social"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	svc   *twitter.Service
	col   *Collector
	st    *store.Store
}

func newFixture(t *testing.T, cfg twitter.ServiceConfig) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(9, 0.01))
	clock := simclock.New(w.Cfg.Start)
	svc := twitter.NewService(w, clock, cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	st := store.New()
	col := New(st, twitter.NewClient(srv.URL))
	t.Cleanup(col.Close)
	return &fixture{world: w, clock: clock, svc: svc, col: col, st: st}
}

func perfect() twitter.ServiceConfig {
	cfg := twitter.DefaultServiceConfig()
	cfg.SearchMissP = 0
	cfg.StreamDropP = 0
	return cfg
}

// runDays drives the collector the way the study does: hourly searches,
// then a daily stream drain.
func (f *fixture) runDays(t *testing.T, days int) {
	t.Helper()
	ctx := context.Background()
	if err := f.col.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			f.clock.Advance(time.Hour)
			f.svc.PublishUpTo(f.clock.Now())
			if err := f.col.HourlySearch(ctx); err != nil {
				t.Fatal(err)
			}
		}
		f.quiesce(t)
		f.col.DrainStreams()
	}
}

func (f *fixture) quiesce(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, s := range []*twitter.Stream{f.col.FilterStream(), f.col.SampleStream()} {
		for s.Received() < f.svc.QueuedFor(s.SubID()) {
			if time.Now().After(deadline) {
				t.Fatal("stream quiesce timeout")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestPerfectAPIsCollectEverything(t *testing.T) {
	f := newFixture(t, perfect())
	f.runDays(t, 2)
	published, control := f.svc.PublishedCounts()
	if got := f.st.Tweets().Len(); got != published {
		t.Fatalf("collected %d tweets, world published %d", got, published)
	}
	if got := f.st.Control().Len(); got != control {
		t.Fatalf("collected %d control tweets, world published %d", got, control)
	}
	stats := f.col.Stats()
	if stats.NoURLTweets != 0 {
		t.Fatalf("%d pattern matches without URLs", stats.NoURLTweets)
	}
}

func TestLossyAPIsStillMergeWell(t *testing.T) {
	cfg := perfect()
	cfg.SearchMissP = 0.12
	cfg.StreamDropP = 0.12
	f := newFixture(t, cfg)
	f.runDays(t, 2)
	published, _ := f.svc.PublishedCounts()
	got := f.st.Tweets().Len()
	// Each source alone misses ~10%; merged should miss ~1%.
	if float64(got) < 0.95*float64(published) {
		t.Fatalf("merged recall %d/%d too low", got, published)
	}
	// And each source alone really is lossy.
	var searchOnly, streamOnly int
	tweets := f.st.Tweets()
	for i, n := 0, tweets.Len(); i < n; i++ {
		tw := tweets.At(i)
		if tw.Source == store.SourceSearch {
			searchOnly++
		}
		if tw.Source == store.SourceStream {
			streamOnly++
		}
	}
	if searchOnly == 0 || streamOnly == 0 {
		t.Fatalf("no single-source tweets (search-only=%d stream-only=%d); merge untested",
			searchOnly, streamOnly)
	}
}

func TestDiscoveryCountsGroups(t *testing.T) {
	f := newFixture(t, perfect())
	f.runDays(t, 1)
	stats := f.col.Stats()
	list := f.st.Groups()
	groups := list.Len()
	if groups == 0 || stats.NewGroups != groups {
		t.Fatalf("NewGroups=%d, store has %d groups", stats.NewGroups, groups)
	}
	for i := 0; i < list.Len(); i++ {
		g := list.At(i)
		if g.Canonical == "" {
			t.Fatalf("group %s has no canonical URL", g.Code)
		}
		if g.Tweets == 0 {
			t.Fatalf("group %s has no tweets", g.Code)
		}
	}
}

func TestIngestSkipsURLlessMatches(t *testing.T) {
	f := newFixture(t, perfect())
	if _, ok := f.col.toIngest(twitter.Status{
		ID:   1,
		Text: "talking about t.me without a link",
	}, store.SourceSearch); ok {
		t.Fatal("URL-less status produced an ingest record")
	}
	if got := f.col.Stats().NoURLTweets; got != 1 {
		t.Fatalf("NoURLTweets=%d, want 1", got)
	}
	if f.st.Tweets().Len() != 0 {
		t.Fatal("URL-less status stored")
	}
}

func TestRateLimitedSearchIsCountedNotFatal(t *testing.T) {
	cfg := perfect()
	cfg.SearchRateLimit = 2
	cfg.SearchRateWindow = 15 * time.Minute
	f := newFixture(t, cfg)
	ctx := context.Background()
	f.clock.Advance(24 * time.Hour)
	f.svc.PublishUpTo(f.clock.Now())
	if err := f.col.HourlySearch(ctx); err != nil {
		t.Fatalf("rate limit should not be fatal: %v", err)
	}
	if f.col.Stats().RateLimitHits == 0 {
		t.Fatal("rate-limit hits not counted")
	}
}

func TestPollSocialDiscoversGroups(t *testing.T) {
	f := newFixture(t, perfect())
	socialSrv := httptest.NewServer(social.NewService(f.world, f.clock).Handler())
	t.Cleanup(socialSrv.Close)
	f.col.Social = social.NewClient(socialSrv.URL)

	ctx := context.Background()
	f.clock.Advance(4 * 24 * time.Hour)
	f.svc.PublishUpTo(f.clock.Now())
	if err := f.col.PollSocial(ctx); err != nil {
		t.Fatal(err)
	}
	stats := f.col.Stats()
	if stats.SocialPosts == 0 || stats.SocialNew == 0 {
		t.Fatalf("social polling found nothing: %+v", stats)
	}
	if len(f.st.Posts()) != stats.SocialPosts {
		t.Fatalf("posts stored %d != polled %d", len(f.st.Posts()), stats.SocialPosts)
	}
	// Re-polling immediately adds nothing (cursor).
	if err := f.col.PollSocial(ctx); err != nil {
		t.Fatal(err)
	}
	if got := f.col.Stats().SocialPosts; got != stats.SocialPosts {
		t.Fatalf("re-poll ingested %d more posts", got-stats.SocialPosts)
	}
	// Social-only groups must be discoverable only via the feed.
	socialOnly := 0
	all := f.st.Groups()
	for i := 0; i < all.Len(); i++ {
		if g := all.At(i); g.SeenSocial && !g.SeenTwitter {
			socialOnly++
		}
	}
	if socialOnly == 0 {
		t.Fatal("no social-only discoveries")
	}
}

func TestPollSocialWithoutClientIsNoop(t *testing.T) {
	f := newFixture(t, perfect())
	if err := f.col.PollSocial(context.Background()); err != nil {
		t.Fatalf("nil social client: %v", err)
	}
}
