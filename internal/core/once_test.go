package core

import "sync"

// Shared small-study fixture: the end-to-end run is the expensive part, so
// every test in this package reuses one run.
var (
	smallOnce  sync.Once
	smallStudy *Study
	smallErr   error
)
