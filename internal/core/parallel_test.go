package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPipelineRaceHammer drives the three store-writing phases —
// hourly searches, stream drains, and daily metadata sweeps — concurrently
// against one store. The pipeline never overlaps these phases itself; the
// hammer exists so `go test -race` exercises the striped store locks and
// the atomic stat counters under genuine contention.
func TestPipelineRaceHammer(t *testing.T) {
	s, err := NewStudy(Config{Seed: 5, Scale: 0.004, Days: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if err := s.collector.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Two serial discovery days first, so the sweep has groups to probe.
	for day := 0; day < 2; day++ {
		if err := s.runDay(ctx, day, ""); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			s.Clock.Advance(time.Hour)
			s.TwitterSvc.PublishUpTo(s.Clock.Now())
			if err := s.collector.HourlySearch(ctx); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			s.collector.DrainStreams()
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := s.monitor.DailySweep(ctx, s.Clock.Now()); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The store must still be internally consistent: every family readable,
	// stats coherent.
	if got := s.Store.Tweets().Len(); got == 0 {
		t.Fatal("hammer left no tweets in the store")
	}
	if s.collector.Stats().SearchTweets == 0 {
		t.Fatal("search counters did not advance")
	}
	if s.monitor.Stats().Probes == 0 {
		t.Fatal("monitor counters did not advance")
	}
}
