// End-to-end pipeline benchmarks. BenchmarkStudyRun is the headline
// number: the same study at the same seed with the fan-outs disabled
// (serial) versus enabled (parallel) — the collected dataset is identical
// in both modes, only wall-clock time differs. `make bench-json` records
// these in BENCH_2.json.
package core

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"msgscope/internal/collect"
	"msgscope/internal/monitor"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/report"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
)

// benchModes are the two pipeline configurations under comparison. Worker
// count 1 forces the pre-fan-out serial behavior; 0 picks the defaults
// (one search worker per URL pattern, the bounded join-collection pool).
var benchModes = []struct {
	name           string
	searchWorkers  int
	collectWorkers int
}{
	{"serial", 1, 1},
	{"parallel", 0, 0},
}

// BenchmarkStudyRun measures a full study — world generation, loopback
// services, hourly searches, stream drains, daily sweeps, join phase, and
// message collection — at 2% of paper volume over a shortened window. The
// checkpoint mode reruns the parallel configuration with a checkpoint
// directory, so `make bench-compare` gates the cost of persisting a
// manifest plus the record-log deltas at every boundary (target: under 5%
// over the plain parallel run).
func BenchmarkStudyRun(b *testing.B) {
	modes := []struct {
		name           string
		searchWorkers  int
		collectWorkers int
		checkpoint     bool
	}{
		{"serial", 1, 1, false},
		{"parallel", 0, 0, false},
		{"checkpoint", 0, 0, true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := Config{
					Seed:           42,
					Scale:          0.02,
					Days:           8,
					SearchWorkers:  mode.searchWorkers,
					CollectWorkers: mode.collectWorkers,
				}
				if mode.checkpoint {
					cfg.CheckpointDir = b.TempDir()
				}
				s, err := NewStudy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(context.Background()); err != nil {
					s.Close()
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}

// benchStudy is a completed 2%-scale study shared by the analysis-phase
// benchmarks; its dataset is frozen after Run.
var (
	benchStudyOnce sync.Once
	benchStudy     *Study
	benchStudyErr  error
)

func sharedBenchStudy(b *testing.B) *Study {
	b.Helper()
	benchStudyOnce.Do(func() {
		s, err := NewStudy(Config{Seed: 42, Scale: 0.02, Days: 8})
		if err != nil {
			benchStudyErr = err
			return
		}
		if err := s.Run(context.Background()); err != nil {
			s.Close()
			benchStudyErr = err
			return
		}
		benchStudy = s
	})
	if benchStudyErr != nil {
		b.Fatal(benchStudyErr)
	}
	return benchStudy
}

// BenchmarkRenderAll measures the cold analysis path: every figure and
// every aggregation-backed table re-derived from the raw dataset through
// a fresh Aggregates (Table 3 is excluded — its LDA fit is measured by
// BenchmarkLDAFit in internal/analysis/lda). Since the single-pass
// rewrite this cost is one walk per record class plus rendering, however
// many figures consume it.
func BenchmarkRenderAll(b *testing.B) {
	s := sharedBenchStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := s.Dataset()
		ds.Agg = &report.AggCache{} // discard the study's memoized pass
		_ = report.Fig1(ds).Render()
		_ = report.Fig2(ds).Render()
		_ = report.Fig3(ds).Render()
		_ = report.Fig4(ds).Render()
		_ = report.Fig5(ds).Render()
		_ = report.Fig6(ds).Render()
		_ = report.Fig7(ds).Render()
		_ = report.Fig8(ds).Render()
		_ = report.Fig9(ds).Render()
		_ = report.Table2(ds).Render()
		_ = report.Table4(ds).Render()
		_ = report.Table5(ds).Render()
	}
}

// benchWorld is the shared 2%-scale world; generating it dominates fixture
// setup, and the services built on it never mutate it.
var (
	benchWorldOnce sync.Once
	benchWorld     *simworld.World
)

func sharedBenchWorld() *simworld.World {
	benchWorldOnce.Do(func() {
		benchWorld = simworld.New(simworld.DefaultConfig(42, 0.02))
	})
	return benchWorld
}

// searchFixture is one Twitter service + collector pair over the shared
// world, starting at the world's first hour.
type searchFixture struct {
	clock *simclock.Sim
	svc   *twitter.Service
	col   *collect.Collector
}

func newSearchFixture(b *testing.B, workers int) *searchFixture {
	b.Helper()
	w := sharedBenchWorld()
	clock := simclock.New(w.Cfg.Start)
	svc := twitter.NewService(w, clock, twitter.DefaultServiceConfig())
	srv := httptest.NewServer(svc.Handler())
	b.Cleanup(srv.Close)
	col := collect.New(store.New(), twitter.NewClient(srv.URL))
	col.SearchWorkers = workers
	return &searchFixture{clock: clock, svc: svc, col: col}
}

// BenchmarkHourlySearch measures one hourly round: advance the clock an
// hour, publish the world's new tweets, and run the per-pattern search
// fan-out. The fixture is rebuilt when the world's window is exhausted so
// every timed iteration searches a live hour.
func BenchmarkHourlySearch(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			maxHours := sharedBenchWorld().Cfg.Days * 24
			var f *searchFixture
			hours := maxHours
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if hours >= maxHours {
					b.StopTimer()
					f = newSearchFixture(b, mode.searchWorkers)
					hours = 0
					b.StartTimer()
				}
				f.clock.Advance(time.Hour)
				f.svc.PublishUpTo(f.clock.Now())
				if err := f.col.HourlySearch(ctx); err != nil {
					b.Fatal(err)
				}
				hours++
			}
		})
	}
}

// sweepFixture holds a store populated by two days of discovery plus a
// monitor wired to all three platform services, shared by every
// BenchmarkDailySweep mode (observations simply keep accumulating).
var (
	sweepOnce    sync.Once
	sweepErr     error
	sweepMonitor *monitor.Monitor
	sweepClock   *simclock.Sim
	sweepServers []*httptest.Server
)

func sweepFixture(b *testing.B) (*monitor.Monitor, *simclock.Sim) {
	b.Helper()
	sweepOnce.Do(func() {
		w := sharedBenchWorld()
		clock := simclock.New(w.Cfg.Start)
		twSvc := twitter.NewService(w, clock, twitter.DefaultServiceConfig())
		twSrv := httptest.NewServer(twSvc.Handler())
		waSrv := httptest.NewServer(whatsapp.NewService(w, clock).Handler())
		tgSrv := httptest.NewServer(telegram.NewService(w, clock, telegram.DefaultServiceConfig()).Handler())
		dcSrv := httptest.NewServer(discord.NewService(w, clock, discord.DefaultServiceConfig()).Handler())
		sweepServers = []*httptest.Server{twSrv, waSrv, tgSrv, dcSrv}

		st := store.New()
		col := collect.New(st, twitter.NewClient(twSrv.URL))
		ctx := context.Background()
		for hour := 0; hour < 48; hour++ {
			clock.Advance(time.Hour)
			twSvc.PublishUpTo(clock.Now())
			if sweepErr = col.HourlySearch(ctx); sweepErr != nil {
				return
			}
		}
		sweepMonitor = monitor.New(st,
			whatsapp.NewClient(waSrv.URL, "monitor"),
			telegram.NewClient(tgSrv.URL, "monitor"),
			discord.NewClient(dcSrv.URL, "monitor"))
		sweepClock = clock
	})
	if sweepErr != nil {
		b.Fatalf("building sweep fixture: %v", sweepErr)
	}
	return sweepMonitor, sweepClock
}

// BenchmarkDailySweep measures one metadata sweep over every discovered
// group URL, at the sweep's default 16 probe workers versus a single
// worker. The shared tuned transport is what keeps the 16-worker mode from
// spending its time re-dialing the loopback services.
func BenchmarkDailySweep(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 16}} {
		b.Run(mode.name, func(b *testing.B) {
			m, clock := sweepFixture(b)
			m.Workers = mode.workers
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.DailySweep(ctx, clock.Now()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
