package core

// Checkpoint-resume orchestration. Run persists a checkpoint at every
// pipeline boundary: the store's append-only record logs grow by exactly
// the records added since the previous boundary, and manifest.json is
// atomically replaced with the full cursor/counter state of every
// subsystem. ResumeStudy rebuilds a study from the manifest and continues
// Run from the recorded boundary; because every pipeline phase is a pure
// function of (seed, store state, cursors, clock), the resumed run's final
// output is byte-identical to an uninterrupted run's. See DESIGN.md §14.

import (
	"fmt"
	"time"

	"msgscope/internal/checkpoint"
	"msgscope/internal/retry"
	"msgscope/internal/twitter"
)

// hook invokes the configured StepHook, if any.
func (s *Study) hook(day int, step string) error {
	if s.Cfg.StepHook == nil {
		return nil
	}
	return s.Cfg.StepHook(day, step)
}

// checkpoint makes the boundary (day, step) durable — log deltas first,
// then the manifest naming their new offsets — and runs the step hook. A
// crash between the two leaves the previous manifest pointing at a valid
// log prefix; the extra appended records are truncated away on resume.
func (s *Study) checkpoint(day int, step string) error {
	// Seal before capture: the capture below writes every present row into
	// the logs, so any segment sealed by now — here or at an earlier hourly
	// check — holds only rows the manifest's log prefixes also carry. That
	// is what lets a resume re-map pinned segments and skip (or
	// idempotently re-merge) their rows during replay.
	if err := s.Store.SpillCheck(); err != nil {
		return fmt.Errorf("core: spill check %s day %d: %w", step, day, err)
	}
	if s.ckpt != nil {
		logs, err := s.ckpt.Checkpoint()
		if err != nil {
			return fmt.Errorf("core: checkpoint %s day %d: %w", step, day, err)
		}
		if err := checkpoint.Write(s.Cfg.CheckpointDir, s.manifest(day, step, logs)); err != nil {
			return fmt.Errorf("core: checkpoint %s day %d: %w", step, day, err)
		}
	}
	return s.hook(day, step)
}

// manifest assembles the full resume state at a boundary.
func (s *Study) manifest(day int, step string, logs map[string]checkpoint.LogState) *checkpoint.Manifest {
	s.ckSeq++
	tw := s.TwitterSvc.RequestState()
	m := &checkpoint.Manifest{
		Version:               checkpoint.Version,
		OptionsHash:           s.Cfg.OptionsHash,
		Options:               s.Cfg.OptionsPayload,
		Seq:                   s.ckSeq,
		Day:                   day,
		Step:                  step,
		ClockUnixNano:         s.Clock.Now().UnixNano(),
		PublishedUpToUnixNano: s.pubHorizon.UnixNano(),
		Logs:                  logs,
		Spill:                 s.Store.SpillManifest(),
		Collector:             s.collector.State(),
		MonitorStats:          s.monitor.StatsMap(),
		Joiner:                s.joiner.State(),
		Twitter: checkpoint.TwitterState{
			RateTokens:           tw.RateTokens,
			RateLastFillUnixNano: tw.RateLastFill.UnixNano(),
			ReqSeq:               tw.ReqSeq,
		},
		Accounts: map[string][]checkpoint.AccountState{
			"whatsapp": s.waSvc.AccountStates(),
			"telegram": s.tgSvc.AccountStates(),
			"discord":  s.dcSvc.AccountStates(),
		},
		FaultEpoch:  s.injector.Epoch(),
		FaultCounts: s.injector.CountsMap(),
		Breakers:    map[string]map[string]int64{},
		Policies:    map[string]map[string]int64{},
	}
	for host, b := range s.breakers {
		m.Breakers[host] = b.CountersMap()
	}
	for name, p := range s.policies() {
		m.Policies[name] = p.StatsMap()
	}
	return m
}

// policies names every retry policy in the pipeline. The counters feed
// reported statistics (the join phase's FloodWaits sums its clients'
// throttle counts), so they are carried across a resume like any other
// counter.
func (s *Study) policies() map[string]*retry.Policy {
	m := map[string]*retry.Policy{
		"collector":        s.collector.Client.Retry,
		"monitor-whatsapp": s.monitor.WA.Retry,
		"monitor-telegram": s.monitor.TG.Retry,
		"monitor-discord":  s.monitor.DC.Retry,
		"join-telegram":    s.joiner.TG.Retry,
		"join-discord":     s.joiner.DC.Retry,
	}
	for i, c := range s.joiner.WAClients {
		m[fmt.Sprintf("join-whatsapp-%d", i)] = c.Retry
	}
	return m
}

// ResumeStudy rebuilds a study from the checkpoint in dir and prepares it
// to continue from the manifest's boundary: NewStudy wires fresh services
// over the same deterministic world, then the store is replayed from the
// record logs and every subsystem's cursors and counters are restored.
// Call Run to continue the study; cfg must be the configuration of the
// checkpointed run (callers rebuild it from the manifest's Options
// payload, validating OptionsHash).
func ResumeStudy(cfg Config, dir string, m *checkpoint.Manifest) (*Study, error) {
	s, err := NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.restore(dir, m); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// restore replays the checkpoint into the freshly built study.
func (s *Study) restore(dir string, m *checkpoint.Manifest) error {
	if s.Cfg.OptionsHash != m.OptionsHash {
		return fmt.Errorf("%w: manifest %q, configuration %q",
			checkpoint.ErrOptionsMismatch, m.OptionsHash, s.Cfg.OptionsHash)
	}
	if m.Day < 0 || m.Day >= s.Cfg.Days {
		return fmt.Errorf("%w: day %d outside the %d-day study",
			checkpoint.ErrCorrupt, m.Day, s.Cfg.Days)
	}

	// Publish — without stream fan-out, the streams are not open yet — up
	// to the horizon the interrupted run had already delivered, then move
	// the clock to the boundary (the join phase can leave it ahead of the
	// publish horizon). When Run reopens the streams they receive exactly
	// the tweets published after this horizon, as the original ones did.
	pub := time.Unix(0, m.PublishedUpToUnixNano).UTC()
	s.Clock.AdvanceTo(pub)
	s.TwitterSvc.PublishUpTo(pub)
	s.Clock.AdvanceTo(time.Unix(0, m.ClockUnixNano).UTC())
	s.pubHorizon = pub
	s.TwitterSvc.RestoreRequestState(twitter.RequestState{
		RateTokens:   m.Twitter.RateTokens,
		RateLastFill: time.Unix(0, m.Twitter.RateLastFillUnixNano).UTC(),
		ReqSeq:       m.Twitter.ReqSeq,
	})

	// Re-map the manifest's pinned segments first (deleting orphans a crash
	// left behind), so the log replay below finds the sealed prefixes in
	// place: the control and message logs skip exactly the sealed rows, and
	// the tweet log's sealed rows land on the idempotent duplicate path.
	if spCfg, ok := s.Store.SpillConfigured(); ok {
		if err := s.Store.RestoreSpill(spCfg, m.Spill); err != nil {
			return err
		}
	}
	// Replay the record logs into the store (truncating any post-crash
	// tail), then reopen the checkpoint writer so its incremental marks
	// baseline against the replayed state.
	if err := s.Store.LoadCheckpoint(dir, m.Logs); err != nil {
		return err
	}
	w, err := s.Store.ResumeCheckpointWriter(dir, m.Logs)
	if err != nil {
		return err
	}
	s.ckpt = w

	s.collector.Restore(m.Collector)
	s.monitor.Restore(m.MonitorStats)
	if err := s.joiner.Restore(m.Joiner); err != nil {
		return err
	}
	s.injector.Restore(m.FaultEpoch, m.FaultCounts)
	for host, b := range s.breakers {
		b.RestoreCounters(m.Breakers[host])
	}
	for name, p := range s.policies() {
		p.RestoreStats(m.Policies[name])
	}
	s.waSvc.RestoreAccounts(m.Accounts["whatsapp"])
	s.tgSvc.RestoreAccounts(m.Accounts["telegram"])
	s.dcSvc.RestoreAccounts(m.Accounts["discord"])

	s.ckSeq = m.Seq
	s.resumeDay, s.resumeStep = m.Day, m.Step
	return nil
}
