// Package core orchestrates the full 38-day methodology end-to-end over
// real HTTP: it stands up the simulated Twitter and messaging-platform
// services on loopback listeners, drives the virtual clock hour by hour,
// runs hourly searches and continuous streams (Section 3.1), the daily
// metadata sweeps (Section 3.2), the join phase with message collection
// (Section 3.3), and hands the resulting dataset to the report package.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"msgscope/internal/analysis/lda"
	"msgscope/internal/collect"
	"msgscope/internal/faults"
	"msgscope/internal/join"
	"msgscope/internal/monitor"
	"msgscope/internal/platform/discord"
	"msgscope/internal/platform/telegram"
	"msgscope/internal/platform/whatsapp"
	"msgscope/internal/prof"
	"msgscope/internal/report"
	"msgscope/internal/retry"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/social"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
)

// Config parameterizes one study run.
type Config struct {
	// Seed drives the entire simulation deterministically.
	Seed uint64
	// Scale multiplies workload volumes (1.0 = paper scale). The default
	// join targets (paper: 416/100/100) scale with it too unless Join is
	// set explicitly.
	Scale float64
	// Days is the collection window (default 38).
	Days int
	// JoinDay is the study day on which the join phase runs (default 2;
	// groups must first be discovered).
	JoinDay int
	// Join overrides the per-platform join targets; zero means scaled
	// paper defaults.
	Join join.Targets
	// SearchEveryHours is the Search API polling cadence (paper: 1).
	SearchEveryHours int
	// MaxMessagesPerGroup bounds per-group history collection
	// (0 = unlimited).
	MaxMessagesPerGroup int
	// GenerateMessageText makes in-group messages carry bodies.
	GenerateMessageText bool
	// Twitter tunes the simulated API's imperfections; zero value means
	// twitter.DefaultServiceConfig.
	Twitter *twitter.ServiceConfig
	// World overrides the full world configuration; nil means the
	// paper-calibrated simworld.DefaultConfig(Seed, Scale).
	World *simworld.Config
	// MonitorWorkers sets daily-sweep parallelism (default 16).
	MonitorWorkers int
	// SearchWorkers bounds the hourly Search API fan-out (0 = one worker
	// per tracked URL pattern, 1 = serial). Results are ingested in fixed
	// pattern order either way, so the collected dataset is identical.
	SearchWorkers int
	// CollectWorkers bounds the join-phase per-group message collection
	// fan-out (0 = default bound, 1 = serial). Collection is pinned to a
	// frozen horizon either way, so the collected dataset is identical.
	CollectWorkers int
	// MonitorEveryDays sets the metadata probe cadence in days (default
	// 1, i.e. daily, as in the paper). The probe-cadence ablation sweeps
	// this: sparser probing inflates the dead-at-first-observation share.
	MonitorEveryDays int
	// JoinTitleKeywords restricts the join sample to groups whose
	// monitored title matches a keyword — the paper's future-work focused
	// collection (e.g. only COVID or politics groups).
	JoinTitleKeywords []string
	// EnableSocialDiscovery turns on the future-work second discovery
	// source: a secondary social network's public feed is polled hourly
	// alongside the Twitter APIs.
	EnableSocialDiscovery bool
	// LDASampler picks the Gibbs kernel for the Table 3 topic extraction
	// (dense, sparse, alias); empty keeps the lda package's default
	// routing. Collection is unaffected — the sampler only matters when
	// experiments are derived from the finished dataset.
	LDASampler lda.Sampler
	// Faults, when non-nil, injects deterministic failures (500s, aborted
	// connections, malformed bodies, rate-limit bursts, outage windows)
	// into every simulated service. Fault decisions are pure functions of
	// (plan seed, phase epoch, request key, attempt), so a faulted run is
	// as reproducible as a clean one.
	Faults *faults.Plan
	// Prof, when non-nil, records per-phase allocation deltas: the study
	// calls Prof.Capture at each phase boundary. Nil (the default) adds
	// zero overhead to the pipeline.
	Prof *prof.Recorder
	// CheckpointDir, when non-empty, persists a resumable checkpoint there
	// at every pipeline boundary: append-only record logs plus an
	// atomically replaced manifest. ResumeStudy picks a killed run back up
	// from the last durable boundary with byte-identical final output.
	CheckpointDir string
	// MemBudget, when positive, caps the spillable column families' live
	// heap bytes: once the measured total crosses it, the store seals older
	// rows into immutable mmap-backed segment files and drops the heap
	// copies (DESIGN.md §16). The final output is byte-identical with or
	// without a budget — only the storage tier of cold rows changes.
	MemBudget int64
	// SpillDir overrides where segment files live. Empty means
	// CheckpointDir/segments for a checkpointed run (segments and manifest
	// share a filesystem and crash story), else a fresh temp directory.
	SpillDir string
	// OptionsHash fingerprints the caller's determinism-relevant options;
	// it is stored in the manifest and must match on resume.
	OptionsHash string
	// OptionsPayload is the caller's serialized options, stored verbatim
	// in the manifest (opaque to core) so a resume needs no other input.
	OptionsPayload json.RawMessage
	// StepHook, when set, runs after every completed pipeline step —
	// each hourly search ("search-NN") and each checkpointed boundary
	// ("init", "drain", "monitor", "join", "done"). A non-nil return
	// aborts the run with that error; the crash-kill tests return
	// ErrHalted to stop a study at an exact step.
	StepHook func(day int, step string) error
}

// ErrHalted is the conventional error a StepHook returns to stop a run at
// a chosen step; Run surfaces it unchanged.
var ErrHalted = errors.New("core: halted by step hook")

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Days <= 0 {
		c.Days = 38
	}
	if c.JoinDay <= 0 {
		c.JoinDay = 2
	}
	if c.SearchEveryHours <= 0 {
		c.SearchEveryHours = 1
	}
	if c.Join == (join.Targets{}) {
		c.Join = join.Targets{
			WhatsApp: scaleTarget(416, c.Scale),
			Telegram: scaleTarget(100, c.Scale),
			Discord:  scaleTarget(100, c.Scale),
		}
	}
	if c.MonitorWorkers <= 0 {
		c.MonitorWorkers = 16
	}
	if c.MonitorEveryDays <= 0 {
		c.MonitorEveryDays = 1
	}
	return c
}

func scaleTarget(full int, scale float64) int {
	n := int(math.Round(float64(full) * scale))
	if n < 3 {
		n = 3
	}
	return n
}

// spillDir resolves where a budgeted run's segment files live: the explicit
// override, the checkpoint directory (so segments and manifest share a
// filesystem and crash story), or a fresh temp directory for an
// uncheckpointed run.
func spillDir(cfg Config) (string, error) {
	if cfg.SpillDir != "" {
		return cfg.SpillDir, nil
	}
	if cfg.CheckpointDir != "" {
		return filepath.Join(cfg.CheckpointDir, "segments"), nil
	}
	return os.MkdirTemp("", "msgscope-spill-")
}

// Study is one fully wired simulation run.
type Study struct {
	Cfg   Config
	World *simworld.World
	Clock *simclock.Sim
	Store *store.Store

	TwitterSvc *twitter.Service

	servers   []*httptest.Server
	collector *collect.Collector
	monitor   *monitor.Monitor
	joiner    *join.Joiner

	// The messaging services, kept for checkpointing their account state.
	waSvc *whatsapp.Service
	tgSvc *telegram.Service
	dcSvc *discord.Service

	// Checkpointing state (all zero when Cfg.CheckpointDir is empty).
	// pubHorizon is the time through which tweets have been published and
	// fanned out to the streams; resumeDay/resumeStep locate the boundary
	// a restored study continues from.
	ckpt       *store.CheckpointWriter
	ckSeq      int
	pubHorizon time.Time
	resumeDay  int
	resumeStep string

	// injector is shared by all four services (nil when Cfg.Faults is nil);
	// breakers holds one circuit breaker per platform host, shared by every
	// client of that host. Both are reset at phase boundaries so each
	// pipeline phase starts from the same state regardless of how the
	// previous phase's requests interleaved.
	injector *faults.Injector
	breakers map[string]*retry.Breaker

	ran      bool
	snapOnce sync.Once
	snap     *store.Snapshot
	agg      report.AggCache
}

// NewStudy builds the world, starts the services on loopback HTTP, and
// wires the pipeline. Call Run, then Dataset; Close when done.
func NewStudy(cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	wcfg := simworld.DefaultConfig(cfg.Seed, cfg.Scale)
	if cfg.World != nil {
		wcfg = *cfg.World
	}
	wcfg.Days = cfg.Days
	wcfg.GenerateMessageText = cfg.GenerateMessageText

	world := simworld.New(wcfg)
	clock := simclock.New(wcfg.Start)
	st := store.New()
	if cfg.MemBudget > 0 {
		dir, err := spillDir(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: resolving spill dir: %w", err)
		}
		if err := st.EnableSpill(store.SpillConfig{Dir: dir, Budget: cfg.MemBudget}); err != nil {
			return nil, fmt.Errorf("core: enabling spill: %w", err)
		}
	}

	tcfg := twitter.DefaultServiceConfig()
	if cfg.Twitter != nil {
		tcfg = *cfg.Twitter
	}
	twSvc := twitter.NewService(world, clock, tcfg)
	waSvc := whatsapp.NewService(world, clock)
	tgSvc := telegram.NewService(world, clock, telegram.DefaultServiceConfig())
	dcSvc := discord.NewService(world, clock, discord.DefaultServiceConfig())

	injector := faults.NewInjector(cfg.Faults, clock)
	twSvc.Faults = injector
	waSvc.Faults = injector
	tgSvc.Faults = injector
	dcSvc.Faults = injector

	s := &Study{
		Cfg:        cfg,
		World:      world,
		Clock:      clock,
		Store:      st,
		TwitterSvc: twSvc,
		waSvc:      waSvc,
		tgSvc:      tgSvc,
		dcSvc:      dcSvc,
		pubHorizon: clock.Now(),
		injector:   injector,
		breakers: map[string]*retry.Breaker{
			"twitter":  retry.NewBreaker(5, 30*time.Second),
			"whatsapp": retry.NewBreaker(5, 30*time.Second),
			"telegram": retry.NewBreaker(5, 30*time.Second),
			"discord":  retry.NewBreaker(5, 30*time.Second),
		},
	}
	twSrv := httptest.NewServer(twSvc.Handler())
	waSrv := httptest.NewServer(waSvc.Handler())
	tgSrv := httptest.NewServer(tgSvc.Handler())
	dcSrv := httptest.NewServer(dcSvc.Handler())
	s.servers = []*httptest.Server{twSrv, waSrv, tgSrv, dcSrv}

	twClient := twitter.NewClient(twSrv.URL)
	twClient.Retry.Breaker = s.breakers["twitter"]
	s.collector = collect.New(st, twClient)
	s.collector.SearchWorkers = cfg.SearchWorkers
	if cfg.EnableSocialDiscovery {
		socialSrv := httptest.NewServer(social.NewService(world, clock).Handler())
		s.servers = append(s.servers, socialSrv)
		s.collector.Social = social.NewClient(socialSrv.URL)
	}

	waMonitorClient := whatsapp.NewClient(waSrv.URL, "monitor")
	tgMonitorClient := telegram.NewClient(tgSrv.URL, "monitor")
	dcMonitorClient := discord.NewClient(dcSrv.URL, "monitor")
	// The monitor never advances the virtual clock, so a flood burst that
	// spans "now" would never end for it: cap its rate-limit waits low and
	// let the deferral path re-queue the group for the next sweep.
	for host, p := range map[string]*retry.Policy{
		"whatsapp": waMonitorClient.Retry,
		"telegram": tgMonitorClient.Retry,
		"discord":  dcMonitorClient.Retry,
	} {
		p.MaxWaits = 3
		p.Breaker = s.breakers[host]
	}
	s.monitor = monitor.New(st, waMonitorClient, tgMonitorClient, dcMonitorClient)
	s.monitor.Workers = cfg.MonitorWorkers

	// WhatsApp join accounts: one per ~240 groups ("phones and SIM
	// cards").
	nAccounts := cfg.Join.WhatsApp/240 + 1
	waClients := make([]*whatsapp.Client, nAccounts)
	for i := range waClients {
		waClients[i] = whatsapp.NewClient(waSrv.URL, fmt.Sprintf("join-%d", i))
		waClients[i].Retry.Breaker = s.breakers["whatsapp"]
	}
	tgJoinClient := telegram.NewClient(tgSrv.URL, "join-tg")
	tgJoinClient.Retry.Breaker = s.breakers["telegram"]
	dcJoinClient := discord.NewClient(dcSrv.URL, "join-dc")
	dcJoinClient.Retry.Breaker = s.breakers["discord"]
	s.joiner = join.New(st, waClients, tgJoinClient, dcJoinClient, clock, cfg.Seed)
	s.joiner.MaxMessagesPerGroup = cfg.MaxMessagesPerGroup
	s.joiner.TitleKeywords = cfg.JoinTitleKeywords
	s.joiner.Workers = cfg.CollectWorkers
	return s, nil
}

// Close shuts the services down.
func (s *Study) Close() {
	if s.ckpt != nil {
		s.ckpt.Close()
		s.ckpt = nil
	}
	if s.collector != nil {
		s.collector.Close()
	}
	for _, srv := range s.servers {
		srv.Close()
	}
}

// Run executes the whole study: discovery, daily monitoring, joining, and
// message collection. On a study restored by ResumeStudy, Run continues
// from the checkpointed boundary instead of day zero.
func (s *Study) Run(ctx context.Context) error {
	if s.ran {
		return fmt.Errorf("core: study already ran")
	}
	s.ran = true
	s.Cfg.Prof.Reset()
	if s.resumeStep == "done" {
		// The checkpoint covers the complete run: everything is already
		// replayed into the store, nothing is left to execute.
		return nil
	}
	if err := s.collector.Open(ctx); err != nil {
		return err
	}
	s.Cfg.Prof.Capture("setup")
	startDay, skip := 0, ""
	switch s.resumeStep {
	case "", "init":
		// Fresh run (or a resume from the pre-day-zero checkpoint): clear
		// any previous run's segment files, then open the checkpoint writer
		// and make the empty state durable, so a kill at any later point has
		// a boundary to resume from. A resume never resets the spill dir —
		// restore already re-mapped the manifest's pinned segments from it.
		if s.resumeStep == "" {
			if err := s.Store.ResetSpillDir(); err != nil {
				return fmt.Errorf("core: resetting spill dir: %w", err)
			}
			if s.Cfg.CheckpointDir != "" {
				w, err := s.Store.OpenCheckpointWriter(s.Cfg.CheckpointDir)
				if err != nil {
					return fmt.Errorf("core: opening checkpoint: %w", err)
				}
				s.ckpt = w
				if err := s.checkpoint(0, "init"); err != nil {
					return err
				}
			}
		}
	case "drain", "monitor":
		startDay, skip = s.resumeDay, s.resumeStep
	case "join":
		startDay = s.resumeDay + 1
	default:
		return fmt.Errorf("core: unknown resume step %q", s.resumeStep)
	}
	for day := startDay; day < s.Cfg.Days; day++ {
		if err := s.runDay(ctx, day, skip); err != nil {
			return fmt.Errorf("core: day %d: %w", day, err)
		}
		skip = ""
	}
	// Final message collection over the joined groups.
	s.phaseBoundary()
	if err := s.joiner.CollectMessages(ctx); err != nil {
		return err
	}
	s.Cfg.Prof.Capture("collect")
	return s.checkpoint(s.Cfg.Days-1, "done")
}

// phaseBoundary marks the start of a pipeline phase: the fault injector
// advances its epoch (so repeated request keys draw fresh fault decisions
// instead of failing forever) and every circuit breaker is force-closed,
// making each phase's starting state independent of how the previous
// phase's requests interleaved across workers.
func (s *Study) phaseBoundary() {
	s.injector.NextEpoch()
	for _, b := range s.breakers {
		b.Reset()
	}
}

// runDay executes one study day. resumeFrom names the last step of this
// day a checkpoint already covers ("" on the normal path): "drain" skips
// the hour loop and stream drain, "monitor" additionally skips the sweep —
// the replayed store and restored cursors stand in for the skipped work.
func (s *Study) runDay(ctx context.Context, day int, resumeFrom string) error {
	if resumeFrom == "" {
		for hour := 1; hour <= 24; hour++ {
			s.Clock.Advance(time.Hour)
			s.TwitterSvc.PublishUpTo(s.Clock.Now())
			s.pubHorizon = s.Clock.Now()
			if hour%s.Cfg.SearchEveryHours == 0 {
				s.phaseBoundary()
				if err := s.collector.HourlySearch(ctx); err != nil {
					return err
				}
				if err := s.collector.PollSocial(ctx); err != nil {
					return err
				}
				// Hourly budget check: waiting for the day boundary would
				// let a busy discovery day overshoot the budget by a full
				// day's ingest. Sealing never renumbers rows, so the live
				// streams keep appending unaffected.
				if err := s.Store.SpillCheck(); err != nil {
					return err
				}
				s.Cfg.Prof.Capture("search")
				if err := s.hook(day, fmt.Sprintf("search-%02d", hour)); err != nil {
					return err
				}
			}
		}
		if err := s.quiesceStreams(); err != nil {
			return err
		}
		s.collector.DrainStreams()
		s.Cfg.Prof.Capture("stream")
		if err := s.checkpoint(day, "drain"); err != nil {
			return err
		}
	}

	if resumeFrom != "monitor" && (day+1)%s.Cfg.MonitorEveryDays == 0 {
		s.phaseBoundary()
		if err := s.monitor.DailySweep(ctx, s.Clock.Now()); err != nil {
			return err
		}
		// Observation pruning: groups that ended dead more than two sweeps
		// ago will never grow their series again, so their chains can be
		// sealed eagerly instead of waiting for the budget to force it.
		if err := s.Store.PruneObservations(s.Clock.Now().Add(-2 * 24 * time.Hour)); err != nil {
			return err
		}
		s.Cfg.Prof.Capture("monitor")
		if err := s.checkpoint(day, "monitor"); err != nil {
			return err
		}
	}
	if day == s.Cfg.JoinDay {
		s.phaseBoundary()
		if err := s.joiner.SelectAndJoin(ctx, s.Cfg.Join); err != nil {
			return err
		}
		s.Cfg.Prof.Capture("join")
		if err := s.checkpoint(day, "join"); err != nil {
			return err
		}
	}
	return nil
}

// quiesceStreams waits (in wall time) until the streaming clients have
// consumed everything the service enqueued for them — the virtual clock
// advances in bursts, so the driver must let the real goroutines catch up
// before draining. It blocks on each stream's progress notification rather
// than polling: the stream posts a coalesced signal per consumed status, so
// the driver sleeps until there is something new to check.
func (s *Study) quiesceStreams() error {
	for _, st := range []*twitter.Stream{s.collector.FilterStream(), s.collector.SampleStream()} {
		if st == nil {
			continue
		}
		// Each stream gets its own deadline: with one shared timer a slow
		// first stream would eat the whole budget and leave the second
		// stream with an already-fired (and drained) timer.
		timer := time.NewTimer(30 * time.Second)
		for {
			if st.Received() >= s.TwitterSvc.QueuedFor(st.SubID()) {
				break
			}
			if err := st.Err(); err != nil {
				timer.Stop()
				return fmt.Errorf("core: stream error: %w", err)
			}
			select {
			case <-st.Progress():
				// Recheck the counters; the signal is coalesced.
			case <-st.Done():
				if err := st.Err(); err != nil {
					timer.Stop()
					return fmt.Errorf("core: stream error: %w", err)
				}
				// Recheck against a fresh queue count, not the one read
				// before blocking: deliveries racing the close would make a
				// stale count report a phantom shortfall.
				if queued := s.TwitterSvc.QueuedFor(st.SubID()); st.Received() < queued {
					timer.Stop()
					return fmt.Errorf("core: stream closed early: received %d of %d",
						st.Received(), queued)
				}
			case <-timer.C:
				// Same fresh recheck: the last delivery may have raced the
				// timer, in which case the stream is in fact caught up.
				if queued := s.TwitterSvc.QueuedFor(st.SubID()); st.Received() < queued {
					return fmt.Errorf("core: stream quiesce timeout: received %d of %d",
						st.Received(), queued)
				}
			}
		}
		timer.Stop()
	}
	return nil
}

// Dataset returns the collected dataset for the report package. After Run
// has completed, the store is frozen and the dataset carries a one-time
// snapshot with pre-sorted slices and per-platform/per-day indexes, so
// every experiment reads shared indexes instead of re-scanning the store.
func (s *Study) Dataset() report.Dataset {
	ds := report.Dataset{Store: s.Store, Start: s.World.Cfg.Start, Days: s.Cfg.Days, Prof: s.Cfg.Prof}
	if s.ran {
		s.snapOnce.Do(func() {
			s.snap = s.Store.Snapshot(ds.Start, ds.Days)
		})
		ds.Snap = s.snap
		// The frozen dataset also shares one figure/table aggregation
		// pass across every experiment (see report.Aggregate).
		ds.Agg = &s.agg
	}
	return ds
}

// ProfilePhases returns the per-phase allocation stats recorded during
// Run (nil unless Config.Prof was set). Window semantics: each phase's
// numbers cover everything since the previous capture, so the "search"
// window also includes the hourly clock advance and tweet publishing
// that precede it.
func (s *Study) ProfilePhases() []prof.PhaseStat { return s.Cfg.Prof.Phases() }

// ProfileStages returns the per-analysis-stage wall timings ("lda",
// "aggregate", "figures") recorded while experiments were computed from
// the dataset (nil unless Config.Prof was set).
func (s *Study) ProfileStages() []prof.StageStat { return s.Cfg.Prof.Stages() }

// CollectorStats exposes discovery counters.
func (s *Study) CollectorStats() collect.Stats { return s.collector.Stats() }

// MonitorStats exposes daily-sweep counters.
func (s *Study) MonitorStats() monitor.Stats { return s.monitor.Stats() }

// JoinStats exposes join-phase counters.
func (s *Study) JoinStats() join.Stats { return s.joiner.Stats() }

// FaultCounts exposes how many faults the injector served (zero value when
// no fault plan is configured). The counts are approximate across runs:
// Go's HTTP transport transparently re-sends a request whose reused
// connection died mid-flight (the timeout fault), and the re-sent request
// draws — and counts — the same fault again. Data outcomes are unaffected
// (the duplicate draw is identical), but the totals can differ between
// otherwise identical runs; don't assert exact values.
func (s *Study) FaultCounts() faults.Counts { return s.injector.Counts() }

// FaultEpoch exposes the injector's phase epoch (zero when no fault plan
// is configured). Unlike the raw counts it is exact: the epoch advances
// once per phase boundary, so an uninterrupted run and a resumed run must
// end on the same value.
func (s *Study) FaultEpoch() uint64 { return s.injector.Epoch() }

// BreakerStats reports circuit-breaker open/close transitions per platform
// host. Reset at phase boundaries does not zero these counters, so they
// reflect the whole run.
type BreakerStats struct {
	Opens  int64
	Closes int64
}

// BreakerStats returns per-host breaker transition counts, keyed by
// "twitter", "whatsapp", "telegram", "discord".
func (s *Study) BreakerStats() map[string]BreakerStats {
	out := make(map[string]BreakerStats, len(s.breakers))
	for host, b := range s.breakers {
		out[host] = BreakerStats{Opens: b.Opens(), Closes: b.Closes()}
	}
	return out
}
