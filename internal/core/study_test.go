package core

import (
	"context"
	"testing"
	"time"

	"msgscope/internal/analysis/stats"
	"msgscope/internal/platform"
	"msgscope/internal/report"
	"msgscope/internal/simworld"
	"msgscope/internal/store"
	"msgscope/internal/twitter"
)

// runSmallStudy runs a tiny end-to-end study once per test binary.
func runSmallStudy(t *testing.T) *Study {
	t.Helper()
	smallOnce.Do(func() {
		s, err := NewStudy(Config{
			Seed:  11,
			Scale: 0.004,
			Days:  10,
		})
		if err != nil {
			smallErr = err
			return
		}
		if err := s.Run(context.Background()); err != nil {
			s.Close()
			smallErr = err
			return
		}
		smallStudy = s
	})
	if smallErr != nil {
		t.Fatalf("study run failed: %v", smallErr)
	}
	return smallStudy
}

func TestStudyEndToEnd(t *testing.T) {
	s := runSmallStudy(t)
	ds := s.Dataset()

	t2 := report.Table2(ds)
	if t2.Total.Tweets == 0 {
		t.Fatal("no tweets collected")
	}
	if t2.Total.GroupURLs == 0 {
		t.Fatal("no group URLs discovered")
	}
	if t2.Total.JoinedGroups == 0 {
		t.Fatal("no groups joined")
	}
	if t2.Total.Messages == 0 {
		t.Fatal("no messages collected")
	}
	for _, row := range t2.Rows {
		if row.Tweets == 0 {
			t.Errorf("%v: no tweets", row.Platform)
		}
		if row.GroupURLs == 0 {
			t.Errorf("%v: no group URLs", row.Platform)
		}
	}
	t.Logf("\n%s", t2.Render())
}

func TestStudyDiscoveryMergesBothSources(t *testing.T) {
	s := runSmallStudy(t)
	stats := s.CollectorStats()
	if stats.SearchTweets == 0 {
		t.Error("search API contributed nothing")
	}
	if stats.StreamTweets == 0 {
		t.Error("streaming API contributed nothing")
	}
	if stats.ControlTweets == 0 {
		t.Error("control stream contributed nothing")
	}
	// Both APIs are lossy on their own; the merged set should exceed the
	// stream-only count divided by overlap (a weak but meaningful bound:
	// dedup must have actually happened).
	tweets := s.Dataset().Store.Tweets().Len()
	if tweets >= stats.SearchTweets+stats.StreamTweets {
		t.Errorf("dedup did not collapse duplicates: %d stored vs %d+%d ingested",
			tweets, stats.SearchTweets, stats.StreamTweets)
	}
}

func TestStudyCollectedTweetsMatchWorld(t *testing.T) {
	s := runSmallStudy(t)
	published, _ := s.TwitterSvc.PublishedCounts()
	stored := s.Dataset().Store.Tweets().Len()
	if stored == 0 || published == 0 {
		t.Fatalf("stored=%d published=%d", stored, published)
	}
	// The merge of both lossy sources should recover nearly everything.
	frac := float64(stored) / float64(published)
	if frac < 0.95 {
		t.Errorf("merged recall %.3f too low (stored %d of %d)", frac, stored, published)
	}
	if stored > published {
		t.Errorf("stored %d exceeds published %d", stored, published)
	}
}

func TestStudyObservationsRecorded(t *testing.T) {
	s := runSmallStudy(t)
	withObs := 0
	list := s.Store.Groups()
	total := list.Len()
	for i := 0; i < list.Len(); i++ {
		if list.Obs(i).Len() > 0 {
			withObs++
		}
	}
	if withObs == 0 {
		t.Fatal("no groups have daily observations")
	}
	if float64(withObs)/float64(total) < 0.95 {
		t.Errorf("only %d of %d groups have observations", withObs, total)
	}
}

func TestStudyObservationsStopAfterRevocation(t *testing.T) {
	s := runSmallStudy(t)
	list := s.Store.Groups()
	for i := 0; i < list.Len(); i++ {
		g := list.At(i)
		deadSeen := false
		list.Obs(i).Each(func(o store.Observation) bool {
			if deadSeen {
				t.Fatalf("%v %s probed after observed revoked", g.Platform, g.Code)
			}
			if !o.Alive {
				deadSeen = true
			}
			return true
		})
	}
}

func TestStudyJoinRespectsDiscordCap(t *testing.T) {
	s := runSmallStudy(t)
	joined := s.Store.GroupsOf(platform.Discord).Where(func(g store.GroupRecord) bool {
		return g.Joined
	}).Len()
	if joined > 100 {
		t.Errorf("joined %d Discord guilds, beyond the 100-guild cap", joined)
	}
}

func TestStudyWhatsAppMessagesOnlyAfterJoin(t *testing.T) {
	s := runSmallStudy(t)
	joinAt := map[string]int64{}
	wa := s.Store.GroupsOf(platform.WhatsApp)
	for i := 0; i < wa.Len(); i++ {
		if g := wa.At(i); g.Joined {
			joinAt[g.Code] = g.JoinedAt.UnixMilli()
		}
	}
	msgs := s.Store.Messages()
	for i, n := 0, msgs.Len(); i < n; i++ {
		m := msgs.At(i)
		if m.Platform != platform.WhatsApp {
			continue
		}
		if at, ok := joinAt[m.GroupCode]; ok && m.SentAt.UnixMilli() < at {
			t.Fatalf("WhatsApp message in %s predates join", m.GroupCode)
		}
	}
}

func TestStudyPrivacyShapes(t *testing.T) {
	s := runSmallStudy(t)
	t4 := report.Table4(s.Dataset())
	for _, e := range t4.Report.Exposures {
		switch e.Platform {
		case platform.WhatsApp:
			if e.PhoneShare < 0.999 {
				t.Errorf("WhatsApp phone exposure %.3f, want ~1.0", e.PhoneShare)
			}
			if e.CreatorsSeen == 0 {
				t.Error("no WhatsApp creators observed from landing pages")
			}
		case platform.Telegram:
			if e.PhoneShare > 0.05 {
				t.Errorf("Telegram phone exposure %.4f, want <0.05", e.PhoneShare)
			}
		case platform.Discord:
			if e.PhonesExposed != 0 {
				t.Errorf("Discord exposed %d phones, want 0", e.PhonesExposed)
			}
			if e.LinkedShare < 0.10 || e.LinkedShare > 0.55 {
				t.Errorf("Discord linked share %.3f, want around 0.30", e.LinkedShare)
			}
		}
	}
	t.Logf("\n%s", t4.Render())
}

// TestPipelineRecoversGroundTruthDistributions compares distributions the
// pipeline measured through the HTTP services against the world's ground
// truth, using the Kolmogorov-Smirnov distance. Verifies the measurement
// path (scraping, APIs, daily cadence) does not distort the planted shapes.
func TestPipelineRecoversGroundTruthDistributions(t *testing.T) {
	s := runSmallStudy(t)
	f7 := report.Fig7(s.Dataset())
	for _, p := range platform.All {
		truth := stats.NewECDF(nil)
		for _, g := range s.World.Groups[p] {
			// Only groups the pipeline could observe alive.
			if !s.World.AliveAt(g, g.FirstShareAt.Add(24*time.Hour)) {
				continue
			}
			truth.AddInt(s.World.MembersAt(g, g.FirstShareAt.Add(24*time.Hour)))
		}
		measured := f7.Members[p]
		if measured.N() < 20 || truth.N() < 20 {
			continue
		}
		if d := stats.KS(truth, measured); d > 0.15 {
			t.Errorf("%v: KS(ground truth members, measured) = %.3f, want < 0.15", p, d)
		}
	}
}

// TestStudyConfigOverrides exercises the World/Twitter override paths and a
// sparser monitoring cadence.
func TestStudyConfigOverrides(t *testing.T) {
	wcfg := simworld.DefaultConfig(3, 0.002)
	tcfg := twitter.DefaultServiceConfig()
	tcfg.SearchMissP = 0
	tcfg.StreamDropP = 0
	s, err := NewStudy(Config{
		Seed:             3,
		Scale:            0.002,
		Days:             6,
		World:            &wcfg,
		Twitter:          &tcfg,
		MonitorEveryDays: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Perfect APIs: everything published is collected.
	published, _ := s.TwitterSvc.PublishedCounts()
	if got := s.Store.Tweets().Len(); got != published {
		t.Fatalf("perfect APIs collected %d of %d", got, published)
	}
	// Every-2-days probing: at most ceil(6/2)=3 observations per group.
	gl := s.Store.Groups()
	for i := 0; i < gl.Len(); i++ {
		if n := gl.Obs(i).Len(); n > 3 {
			t.Fatalf("group %s has %d observations with cadence 2 over 6 days",
				gl.At(i).Code, n)
		}
	}
}

// TestStudyCannotRunTwice guards the one-shot contract.
func TestStudyCannotRunTwice(t *testing.T) {
	s := runSmallStudy(t)
	if err := s.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
}
