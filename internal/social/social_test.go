package social

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
	"msgscope/internal/urlpat"
)

type fixture struct {
	world *simworld.World
	clock *simclock.Sim
	cli   *Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := simworld.New(simworld.DefaultConfig(14, 0.01))
	clock := simclock.New(w.Cfg.Start)
	srv := httptest.NewServer(NewService(w, clock).Handler())
	t.Cleanup(srv.Close)
	return &fixture{world: w, clock: clock, cli: NewClient(srv.URL)}
}

func (f *fixture) postsUpTo(days int) int {
	n := 0
	cutoff := f.world.Cfg.Start.Add(time.Duration(days) * 24 * time.Hour)
	for _, day := range f.world.PostsByDay {
		for _, p := range day {
			if p.CreatedAt.Before(cutoff) {
				n++
			}
		}
	}
	return n
}

func TestPollDrainsEverything(t *testing.T) {
	f := newFixture(t)
	f.clock.Advance(5 * 24 * time.Hour)
	posts, cursor, err := f.cli.Poll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := f.postsUpTo(5)
	if want == 0 {
		t.Fatal("fixture generated no social posts")
	}
	if len(posts) != want {
		t.Fatalf("polled %d posts, world has %d", len(posts), want)
	}
	if cursor == 0 {
		t.Fatal("cursor not advanced")
	}
	for _, p := range posts {
		if len(urlpat.Extract(p.Text)) == 0 {
			t.Fatalf("post %d carries no invite URL: %q", p.ID, p.Text)
		}
	}
}

func TestPollCursorIsIncremental(t *testing.T) {
	f := newFixture(t)
	f.clock.Advance(3 * 24 * time.Hour)
	first, cursor, err := f.cli.Poll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	again, cursor2, err := f.cli.Poll(context.Background(), cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("re-poll returned %d posts, want 0", len(again))
	}
	if cursor2 != cursor {
		t.Fatalf("cursor moved without new posts: %d -> %d", cursor, cursor2)
	}
	f.clock.Advance(2 * 24 * time.Hour)
	more, _, err := f.cli.Poll(context.Background(), cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(first)+len(more) != f.postsUpTo(5) {
		t.Fatalf("incremental polls missed posts: %d + %d != %d",
			len(first), len(more), f.postsUpTo(5))
	}
}

func TestFeedIDsMonotone(t *testing.T) {
	f := newFixture(t)
	f.clock.Advance(6 * 24 * time.Hour)
	posts, _, err := f.cli.Poll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(posts); i++ {
		if posts[i].ID <= posts[i-1].ID {
			t.Fatalf("feed IDs not monotone at %d: %d <= %d", i, posts[i].ID, posts[i-1].ID)
		}
	}
}

func TestSocialOnlyGroupsExist(t *testing.T) {
	f := newFixture(t)
	socialOnly, withPosts := 0, 0
	for _, groups := range f.world.Groups {
		for _, g := range groups {
			if g.SocialOnly {
				socialOnly++
			}
		}
	}
	for _, day := range f.world.PostsByDay {
		for _, p := range day {
			if p.Group.SocialOnly {
				withPosts++
				break
			}
		}
		if withPosts > 0 {
			break
		}
	}
	if socialOnly == 0 {
		t.Fatal("no social-only groups generated")
	}
	if withPosts == 0 {
		t.Fatal("social-only groups have no posts")
	}
}

func TestBadSinceID(t *testing.T) {
	f := newFixture(t)
	srv := httptest.NewServer(NewService(f.world, f.clock).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/feed?since_id=garbage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad since_id got status %d", resp.StatusCode)
	}
}
