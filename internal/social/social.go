// Package social simulates a secondary social network with a public,
// cursorable post feed — the stand-in for the paper's future-work plan to
// discover invite URLs shared on networks other than Twitter (Facebook,
// Instagram). Unlike the Twitter simulation there is no search or stream:
// the collector polls the public feed with a since_id cursor, the way
// public-page scrapers work.
package social

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"msgscope/internal/httpx"
	"msgscope/internal/simclock"
	"msgscope/internal/simworld"
)

// Service serves the simulated feed.
type Service struct {
	world *simworld.World
	clock simclock.Clock
}

// NewService builds the service over the world.
func NewService(world *simworld.World, clock simclock.Clock) *Service {
	return &Service{world: world, clock: clock}
}

// Handler returns the HTTP mux: GET /api/feed?since_id=N&limit=M.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/feed", s.handleFeed)
	return mux
}

type postJSON struct {
	ID        uint64 `json:"id"`
	Author    string `json:"author"`
	CreatedMS int64  `json:"created_ms"`
	Text      string `json:"text"`
}

// handleFeed serves posts with CreatedAt <= now and ID > since_id, oldest
// first, up to limit.
func (s *Service) handleFeed(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if v := r.URL.Query().Get("since_id"); v != "" {
		var err error
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, `{"error":"bad since_id"}`, http.StatusBadRequest)
			return
		}
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = min(n, 500)
		}
	}
	now := s.clock.Now()
	var out []postJSON
	for day := 0; day < s.world.Cfg.Days && len(out) < limit; day++ {
		dayStart := s.world.Cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		if dayStart.After(now) {
			break
		}
		for _, p := range s.world.PostsByDay[day] {
			if p.CreatedAt.After(now) || p.ID <= since {
				continue
			}
			out = append(out, postJSON{
				ID:        p.ID,
				Author:    p.AuthorID,
				CreatedMS: p.CreatedAt.UnixMilli(),
				Text:      p.Text,
			})
			if len(out) == limit {
				break
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"posts": out})
}

// Post is a decoded feed post.
type Post struct {
	ID        uint64
	Author    string
	CreatedAt time.Time
	Text      string
}

// Client polls the feed.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a feed client.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: httpx.NewClient()}
}

// Poll fetches all posts newer than sinceID, following the cursor until
// the feed is drained. It returns the posts and the new cursor.
func (c *Client) Poll(ctx context.Context, sinceID uint64) ([]Post, uint64, error) {
	var out []Post
	cursor := sinceID
	for {
		u := fmt.Sprintf("%s/api/feed?since_id=%d&limit=500", c.BaseURL, cursor)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return out, cursor, err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return out, cursor, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return out, cursor, fmt.Errorf("social: feed status %d: %s", resp.StatusCode, body)
		}
		var page struct {
			Posts []postJSON `json:"posts"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return out, cursor, err
		}
		if len(page.Posts) == 0 {
			return out, cursor, nil
		}
		for _, p := range page.Posts {
			out = append(out, Post{
				ID:        p.ID,
				Author:    p.Author,
				CreatedAt: time.UnixMilli(p.CreatedMS).UTC(),
				Text:      p.Text,
			})
			if p.ID > cursor {
				cursor = p.ID
			}
		}
	}
}
