package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"msgscope/internal/checkpoint"
	"msgscope/internal/platform"
)

// Segment spilling (DESIGN.md §16): when the columnar families' live heap
// bytes cross a configured budget, the older portion of each family is
// sealed into an immutable on-disk segment and the heap copies dropped;
// reads are served through the mmap-backed segment views in segment.go.
// Sealing never renumbers rows, so the dedup indexes, checkpoint marks,
// and observation chain links that hold global row numbers stay valid.
//
// What spills: the tweet, control, and message families (pinned by the
// checkpoint manifest and re-mapped on resume) and the observation columns
// (sealed per-run, rebuilt from the event log on resume). What stays
// resident by design: the dedup indexes (seenTweets/seenPosts — every
// ingest probes them), the group scalar columns (every sweep touches every
// group), the user stripes (merge semantics rewrite rows in place), the
// posts slice, and the interning tables. SpillStats reports both sides so
// the floor is an honest number, not a hidden one.
//
// Concurrency: SpillCheck and PruneObservations are driven from the study
// engine's single core goroutine at quiesced boundaries, taking each
// family's lock one at a time — never two family locks at once — so they
// compose with the store's lock order trivially. The spill bookkeeping
// itself is only touched under those calls plus single-threaded restore.

// Spill family names, also the segment file-name prefixes.
const (
	famTweets   = "tweets"
	famControl  = "control"
	famMessages = "messages"
	famObs      = "obs"
)

// pinnedFams are the families the checkpoint manifest pins; famObs is
// deliberately absent (rebuilt from the event log on resume).
var pinnedFams = []string{famTweets, famControl, famMessages}

// SpillConfig configures segment spilling.
type SpillConfig struct {
	// Dir holds the segment files. For a checkpointed run this lives
	// inside the checkpoint directory, so segments and manifest share a
	// filesystem and crash story.
	Dir string
	// Budget is the live-heap byte target for the spillable families;
	// SpillCheck seals when the measured total exceeds it.
	Budget int64
	// PruneMinRows is the minimum observation heap-row count before
	// PruneObservations considers an eager seal (default 4096).
	PruneMinRows int
}

// spillSeg is one sealed segment's bookkeeping entry.
type spillSeg struct {
	name  string
	rows  int64
	bytes int64
}

// spillState is the store's spilling driver; nil when no budget is set.
// mu guards the bookkeeping (seq, fams, files, err) — the message family
// self-seals from concurrent ingest workers (see AddMessageBatch), so the
// bookkeeping cannot lean on the single-threaded boundary checks alone.
type spillState struct {
	cfg SpillConfig

	mu    sync.Mutex
	seq   map[string]int
	fams  map[string][]spillSeg
	files []*segFile // keeps mappings reachable for tooling/debuggers
	err   error      // first seal failure from a path that cannot return it
}

func (sp *spillState) nextName(fam string) string {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	name := fmt.Sprintf("%s-%06d.seg", fam, sp.seq[fam])
	sp.seq[fam]++
	return name
}

// note records one sealed or restored segment and keeps the name sequence
// ahead of every name seen, so a resumed run never reuses a pinned name.
func (sp *spillState) note(fam, name string, rows, bytes int64, f *segFile) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.fams[fam] = append(sp.fams[fam], spillSeg{name: name, rows: rows, bytes: bytes})
	sp.files = append(sp.files, f)
	var q int
	if _, err := fmt.Sscanf(name, fam+"-%d.seg", &q); err == nil && q >= sp.seq[fam] {
		sp.seq[fam] = q + 1
	}
}

// fail stashes the first error from a seal path that cannot surface one
// (mid-ingest self-seal); the next SpillCheck returns it.
func (sp *spillState) fail(err error) {
	sp.mu.Lock()
	if sp.err == nil {
		sp.err = err
	}
	sp.mu.Unlock()
}

func (sp *spillState) takeErr() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	err := sp.err
	sp.err = nil
	return err
}

// EnableSpill arms segment spilling. Call before ingestion starts (the
// engine does, right after constructing the store).
func (s *Store) EnableSpill(cfg SpillConfig) error {
	if cfg.Dir == "" {
		return errors.New("store: spill directory not set")
	}
	if cfg.PruneMinRows <= 0 {
		cfg.PruneMinRows = 4096
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return err
	}
	s.spill = &spillState{cfg: cfg, seq: map[string]int{}, fams: map[string][]spillSeg{}}
	return nil
}

// SpillConfigured reports the active spill configuration, if any.
func (s *Store) SpillConfigured() (SpillConfig, bool) {
	if s.spill == nil {
		return SpillConfig{}, false
	}
	return s.spill.cfg, true
}

// ResetSpillDir deletes every segment and temp file in the spill
// directory — a fresh (non-resume) run must not map a previous run's
// leftovers.
func (s *Store) ResetSpillDir() error {
	if s.spill == nil {
		return nil
	}
	return removeSegFiles(s.spill.cfg.Dir, nil)
}

func removeSegFiles(dir string, keep map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// SpillCheck measures the spillable families' heap bytes and, when the
// total exceeds the budget, seals every family whose share is worth a
// segment. Sealing everything over-budget in one pass (rather than just
// the largest family) keeps the check O(families) and the steady state
// simple: after a seal the spillable heap restarts near zero.
func (s *Store) SpillCheck() error {
	sp := s.spill
	if sp == nil || sp.cfg.Budget <= 0 {
		return nil
	}
	if err := sp.takeErr(); err != nil {
		return err
	}
	s.tweetMu.Lock()
	tw, ctl := s.tweets.heapBytes(), s.control.heapBytes()
	s.tweetMu.Unlock()
	s.msgMu.Lock()
	mg := s.msgs.heapBytes()
	s.msgMu.Unlock()
	var ob int64
	for i := range s.groups.stripes {
		st := &s.groups.stripes[i]
		st.mu.Lock()
		ob += st.obs.heapBytes()
		st.mu.Unlock()
	}
	if tw+ctl+mg+ob <= sp.cfg.Budget {
		return nil
	}
	// A family below minSeal stays in heap: sealing it would buy little
	// and cost a file per check.
	minSeal := min(int64(1<<20), sp.cfg.Budget/8)
	if tw >= minSeal {
		if err := s.sealTweets(); err != nil {
			return err
		}
	}
	if ctl >= minSeal {
		if err := s.sealControl(); err != nil {
			return err
		}
	}
	if mg >= minSeal {
		if err := s.sealMessages(); err != nil {
			return err
		}
	}
	if ob >= minSeal {
		if err := s.sealObs(); err != nil {
			return err
		}
	}
	return nil
}

// PruneObservations eagerly seals the observation heap when at least a
// quarter of it belongs to groups whose series ended dead before horizon —
// their rows will never be appended to again, so holding them in heap buys
// nothing. Cheap shared-prefix approximation: a dead group's whole series
// (obsCount) is counted against the heap even if part of it was already
// sealed, which only makes the trigger more conservative.
func (s *Store) PruneObservations(horizon time.Time) error {
	sp := s.spill
	if sp == nil {
		return nil
	}
	h := timeToNano(horizon)
	s.groups.lockAll()
	defer s.groups.unlockAll()
	heapRows, deadRows := 0, 0
	for i := range s.groups.stripes {
		st := &s.groups.stripes[i]
		heapRows += len(st.obs.at)
		for _, row := range st.m {
			tail := st.obsTail[row]
			if tail == 0 || int(tail-1) < st.obs.frozen {
				continue // no series, or its tail is already sealed
			}
			j := int(tail - 1)
			if st.obs.flagsAt(j)&ofAlive == 0 && st.obs.atNano(j) < h {
				deadRows += int(st.obsCount[row])
			}
		}
	}
	if heapRows < sp.cfg.PruneMinRows || deadRows*4 < heapRows {
		return nil
	}
	return s.sealObsLocked()
}

// sealTweets seals the tweet family's entire heap tail into one segment.
func (s *Store) sealTweets() error {
	sp := s.spill
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	c := &s.tweets
	n := len(c.ids)
	if n == 0 {
		return nil
	}
	name := sp.nextName(famTweets)
	w, err := newSegWriter(sp.cfg.Dir, name, famTweets)
	if err != nil {
		return err
	}
	users := newDictBuilder(c.userTab)
	langs := newDictBuilder(c.langTab)
	groups := newDictBuilder(c.groupTab)
	local := make([]uint32, n)
	w.section("ids", castBytes(c.ids))
	for i, h := range c.user {
		local[i] = users.local(h)
	}
	w.section("user", castBytes(local))
	w.section("created", castBytes(c.created))
	for i, h := range c.lang {
		local[i] = langs.local(h)
	}
	w.section("lang", castBytes(local))
	w.section("hashtags", castBytes(c.hashtags))
	w.section("mentions", castBytes(c.mentions))
	w.section("flags", c.flags)
	w.section("plat", c.plat)
	for i, h := range c.group {
		local[i] = groups.local(h)
	}
	w.section("group", castBytes(local))
	writeTextCols(w, &c.text, n)
	users.writeTo(w, "users")
	langs.writeTo(w, "langs")
	groups.writeTo(w, "groups")
	path, size, err := w.finish(int64(n), nil)
	if err != nil {
		return err
	}
	f, err := openSegFile(path, famTweets)
	if err != nil {
		return err
	}
	seg, err := bindTweetSeg(f, c.frozen)
	if err != nil {
		return err
	}
	// At seal time the local→live handle maps are exactly the dictionary
	// builders' first-use orders.
	seg.userMap, seg.langMap, seg.groupMap = users.globals, langs.globals, groups.globals
	c.segs = append(c.segs, seg)
	c.frozen += n
	c.ids, c.user, c.created, c.lang = nil, nil, nil, nil
	c.hashtags, c.mentions, c.flags, c.plat, c.group = nil, nil, nil, nil, nil
	c.text = textArena{}
	sp.note(famTweets, name, int64(n), size, f)
	return nil
}

// writeTextCols writes a text arena as an n+1 prefix-offset column plus a
// contiguous blob.
func writeTextCols(w *segWriter, a *textArena, n int) {
	off := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + uint64(len(a.at(i)))
	}
	w.section("text.off", castBytes(off))
	w.begin("text.blob")
	for i := 0; i < n; i++ {
		w.writeString(a.at(i))
	}
	w.end()
}

// sealControl seals the control family's heap tail.
func (s *Store) sealControl() error {
	sp := s.spill
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	c := &s.control
	n := len(c.ids)
	if n == 0 {
		return nil
	}
	name := sp.nextName(famControl)
	w, err := newSegWriter(sp.cfg.Dir, name, famControl)
	if err != nil {
		return err
	}
	users := newDictBuilder(c.userTab)
	langs := newDictBuilder(c.langTab)
	local := make([]uint32, n)
	w.section("ids", castBytes(c.ids))
	for i, h := range c.user {
		local[i] = users.local(h)
	}
	w.section("user", castBytes(local))
	w.section("created", castBytes(c.created))
	for i, h := range c.lang {
		local[i] = langs.local(h)
	}
	w.section("lang", castBytes(local))
	w.section("hashtags", castBytes(c.hashtags))
	w.section("mentions", castBytes(c.mentions))
	w.section("flags", c.flags)
	users.writeTo(w, "users")
	langs.writeTo(w, "langs")
	path, size, err := w.finish(int64(n), nil)
	if err != nil {
		return err
	}
	f, err := openSegFile(path, famControl)
	if err != nil {
		return err
	}
	seg, err := bindControlSeg(f, c.frozen)
	if err != nil {
		return err
	}
	seg.userMap, seg.langMap = users.globals, langs.globals
	c.segs = append(c.segs, seg)
	c.frozen += n
	c.ids, c.user, c.created, c.lang = nil, nil, nil, nil
	c.hashtags, c.mentions, c.flags = nil, nil, nil
	sp.note(famControl, name, int64(n), size, f)
	return nil
}

// sealMessages seals the message family's heap tail.
func (s *Store) sealMessages() error {
	s.msgMu.Lock()
	defer s.msgMu.Unlock()
	return s.sealMessagesLocked()
}

// sealMessagesLocked is sealMessages under a held msgMu — the mid-ingest
// self-seal in AddMessageBatch already owns the lock.
func (s *Store) sealMessagesLocked() error {
	sp := s.spill
	c := &s.msgs
	n := len(c.plat)
	if n == 0 {
		return nil
	}
	name := sp.nextName(famMessages)
	w, err := newSegWriter(sp.cfg.Dir, name, famMessages)
	if err != nil {
		return err
	}
	groups := newDictBuilder(c.groupTab)
	local := make([]uint32, n)
	w.section("plat", c.plat)
	for i, h := range c.group {
		local[i] = groups.local(h)
	}
	w.section("group", castBytes(local))
	w.section("author", castBytes(c.author))
	w.section("sent", castBytes(c.sent))
	w.section("typ", c.typ)
	writeTextCols(w, &c.text, n)
	groups.writeTo(w, "groups")
	path, size, err := w.finish(int64(n), nil)
	if err != nil {
		return err
	}
	f, err := openSegFile(path, famMessages)
	if err != nil {
		return err
	}
	seg, err := bindMsgSeg(f, c.frozen)
	if err != nil {
		return err
	}
	seg.groupMap = groups.globals
	c.segs = append(c.segs, seg)
	c.frozen += n
	c.plat, c.group, c.author, c.sent, c.typ = nil, nil, nil, nil, nil
	c.text = textArena{}
	sp.note(famMessages, name, int64(n), size, f)
	return nil
}

// sealObs seals every stripe's observation heap tail into one shared
// segment file (64 per-stripe section groups). Handle columns keep their
// stripe-table handles — the file is never re-mapped under a different
// table (resume rebuilds observations from the event log instead), so no
// dictionaries are needed.
func (s *Store) sealObs() error {
	s.groups.lockAll()
	defer s.groups.unlockAll()
	return s.sealObsLocked()
}

// sealObsLocked does the work of sealObs; the caller holds every group
// stripe lock (the store's documented lock order).
func (s *Store) sealObsLocked() error {
	sp := s.spill
	total := 0
	for i := range s.groups.stripes {
		total += len(s.groups.stripes[i].obs.at)
	}
	if total == 0 {
		return nil
	}
	name := sp.nextName(famObs)
	w, err := newSegWriter(sp.cfg.Dir, name, famObs)
	if err != nil {
		return err
	}
	stripeRows := make([]int64, numStripes)
	for i := range s.groups.stripes {
		c := &s.groups.stripes[i].obs
		stripeRows[i] = int64(len(c.at))
		if len(c.at) == 0 {
			continue
		}
		pre := fmt.Sprintf("s%02d.", i)
		w.section(pre+"at", castBytes(c.at))
		w.section(pre+"createdAt", castBytes(c.createdAt))
		w.section(pre+"title", castBytes(c.title))
		w.section(pre+"phoneH", castBytes(c.phoneH))
		w.section(pre+"country", castBytes(c.country))
		w.section(pre+"creator", castBytes(c.creator))
		w.section(pre+"members", castBytes(c.members))
		w.section(pre+"online", castBytes(c.online))
		w.section(pre+"flags", c.flags)
		w.section(pre+"next", castBytes(c.next))
	}
	path, size, err := w.finish(int64(total), stripeRows)
	if err != nil {
		return err
	}
	f, err := openSegFile(path, famObs)
	if err != nil {
		return err
	}
	for i := range s.groups.stripes {
		n := int(stripeRows[i])
		if n == 0 {
			continue
		}
		c := &s.groups.stripes[i].obs
		seg, err := bindObsSeg(f, i, c.frozen, n)
		if err != nil {
			return err
		}
		c.segs = append(c.segs, seg)
		c.frozen += n
		c.at, c.createdAt, c.title, c.phoneH, c.country = nil, nil, nil, nil, nil
		c.creator, c.members, c.online, c.flags, c.next = nil, nil, nil, nil, nil
	}
	sp.note(famObs, name, int64(total), size, f)
	return nil
}

// SpillManifest returns the checkpoint-pinnable spill state: the sealed
// segments of the append-only families (observation segments are per-run
// and excluded). Nil when spilling is off.
func (s *Store) SpillManifest() *checkpoint.SpillState {
	sp := s.spill
	if sp == nil {
		return nil
	}
	out := &checkpoint.SpillState{Budget: sp.cfg.Budget}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, fam := range pinnedFams {
		segs := sp.fams[fam]
		if len(segs) == 0 {
			continue
		}
		var f checkpoint.SpillFamily
		for _, sg := range segs {
			f.Rows += sg.rows
			f.Segments = append(f.Segments, checkpoint.SpillSegment{
				Name: sg.name, Rows: sg.rows, Bytes: sg.bytes,
			})
		}
		if out.Families == nil {
			out.Families = map[string]checkpoint.SpillFamily{}
		}
		out.Families[fam] = f
	}
	return out
}

// RestoreSpill re-maps a manifest's pinned segments into an empty store,
// before LoadCheckpoint replays the logs on top. It deletes every segment
// file the manifest does not reference (a crash mid-seal or between a seal
// and the next manifest leaves orphans whose rows the logs still carry),
// maps each pinned family's segments in order, re-interns their
// dictionaries into the live tables, and rebuilds the derived state the
// sealed rows would have produced through live ingestion: the tweet dedup
// index and the tweet-derived group skeletons. LoadCheckpoint then replays
// the tweet log in full (sealed rows hit the dedup path and idempotently
// re-merge their source bits) and skips the sealed prefix of the control
// and message logs.
func (s *Store) RestoreSpill(cfg SpillConfig, m *checkpoint.SpillState) error {
	if err := s.EnableSpill(cfg); err != nil {
		return err
	}
	keep := map[string]bool{}
	if m != nil {
		for _, fam := range m.Families {
			for _, sg := range fam.Segments {
				keep[sg.Name] = true
			}
		}
	}
	if err := removeSegFiles(cfg.Dir, keep); err != nil {
		return err
	}
	if m == nil {
		return nil
	}
	if err := s.restoreTweetSegs(m.Families[famTweets]); err != nil {
		return err
	}
	if err := s.restoreControlSegs(m.Families[famControl]); err != nil {
		return err
	}
	return s.restoreMsgSegs(m.Families[famMessages])
}

// openPinned maps one pinned segment and verifies it against the manifest
// entry.
func (sp *spillState) openPinned(fam string, pin checkpoint.SpillSegment) (*segFile, error) {
	f, err := openSegFile(filepath.Join(sp.cfg.Dir, pin.Name), fam)
	if err != nil {
		return nil, err
	}
	if f.foot.Rows != pin.Rows || int64(len(f.data)) != pin.Bytes {
		unmapFile(f.data)
		return nil, fmt.Errorf("store: segment %s: %d rows / %d bytes, manifest pinned %d / %d",
			pin.Name, f.foot.Rows, len(f.data), pin.Rows, pin.Bytes)
	}
	return f, nil
}

func (s *Store) restoreTweetSegs(fam checkpoint.SpillFamily) error {
	sp := s.spill
	for _, pin := range fam.Segments {
		f, err := sp.openPinned(famTweets, pin)
		if err != nil {
			return err
		}
		seg, err := bindTweetSeg(f, s.tweets.frozen)
		if err != nil {
			return err
		}
		seg.userMap = seg.users.remap(s.tweets.userTab)
		seg.langMap = seg.langs.remap(s.tweets.langTab)
		seg.groupMap = seg.groups.remap(s.tweets.groupTab)
		// Rebuild what live ingestion derived from these rows, in row
		// order: the dedup index entry and the group skeleton (exactly
		// AddTweetBatch's non-duplicate path; canonical URLs arrive later,
		// from the replayed "grp" events, as on any resume).
		base := s.tweets.frozen
		for j := 0; j < seg.n; j++ {
			s.seenTweets.Put(seg.ids[j], uint32(base+j))
			p := platform.Platform(seg.plat[j])
			code := s.tweets.groupTab.Lookup(seg.groupMap[seg.group[j]])
			_, st := s.groups.stripeFor(p, code)
			st.mu.Lock()
			row, _ := s.groups.upsertLocked(st, p, code, nanoToTime(seg.created[j]))
			st.flags[row] |= gfSeenTwitter
			st.tweets[row]++
			st.mu.Unlock()
		}
		s.tweets.segs = append(s.tweets.segs, seg)
		s.tweets.frozen += seg.n
		sp.note(famTweets, pin.Name, pin.Rows, pin.Bytes, f)
	}
	return nil
}

func (s *Store) restoreControlSegs(fam checkpoint.SpillFamily) error {
	sp := s.spill
	for _, pin := range fam.Segments {
		f, err := sp.openPinned(famControl, pin)
		if err != nil {
			return err
		}
		seg, err := bindControlSeg(f, s.control.frozen)
		if err != nil {
			return err
		}
		seg.userMap = seg.users.remap(s.control.userTab)
		seg.langMap = seg.langs.remap(s.control.langTab)
		s.control.segs = append(s.control.segs, seg)
		s.control.frozen += seg.n
		sp.note(famControl, pin.Name, pin.Rows, pin.Bytes, f)
	}
	return nil
}

func (s *Store) restoreMsgSegs(fam checkpoint.SpillFamily) error {
	sp := s.spill
	for _, pin := range fam.Segments {
		f, err := sp.openPinned(famMessages, pin)
		if err != nil {
			return err
		}
		seg, err := bindMsgSeg(f, s.msgs.frozen)
		if err != nil {
			return err
		}
		seg.groupMap = seg.groups.remap(s.msgs.groupTab)
		s.msgs.segs = append(s.msgs.segs, seg)
		s.msgs.frozen += seg.n
		sp.note(famMessages, pin.Name, pin.Rows, pin.Bytes, f)
	}
	return nil
}

// SpillStats summarizes the spill tier and the heap floor for logging and
// benchmarks.
type SpillStats struct {
	Segments int   // sealed segment files
	SegBytes int64 // bytes on disk (mapped, not resident)
	// SpillableHeapBytes is the hot tail of the families that can spill.
	SpillableHeapBytes int64
	// ResidentHeapBytes is the floor that stays in heap by design: dedup
	// indexes, group scalar columns, user stripes (DESIGN.md §16).
	ResidentHeapBytes int64
}

// SpillStats measures the current split. Safe at quiesced boundaries
// (takes each family lock one at a time, like SpillCheck).
func (s *Store) SpillStats() SpillStats {
	var out SpillStats
	if sp := s.spill; sp != nil {
		sp.mu.Lock()
		for _, segs := range sp.fams {
			out.Segments += len(segs)
			for _, sg := range segs {
				out.SegBytes += sg.bytes
			}
		}
		sp.mu.Unlock()
	}
	s.tweetMu.Lock()
	out.SpillableHeapBytes += s.tweets.heapBytes() + s.control.heapBytes()
	out.ResidentHeapBytes += s.seenTweets.HeapBytes() + s.seenPosts.HeapBytes()
	s.tweetMu.Unlock()
	s.msgMu.Lock()
	out.SpillableHeapBytes += s.msgs.heapBytes()
	s.msgMu.Unlock()
	for i := range s.groups.stripes {
		st := &s.groups.stripes[i]
		st.mu.Lock()
		out.SpillableHeapBytes += st.obs.heapBytes()
		out.ResidentHeapBytes += st.scalarHeapBytes()
		st.mu.Unlock()
	}
	for i := range s.users.stripes {
		st := &s.users.stripes[i]
		st.mu.Lock()
		out.ResidentHeapBytes += st.heapBytes()
		st.mu.Unlock()
	}
	return out
}
