//go:build !unix

package store

import (
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the file into the heap.
// Spilling then bounds nothing (the "mapping" is resident), but the
// segment machinery keeps working so studies stay portable; the memory
// budget is only honored on unix.
func mapFile(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}

func unmapFile(data []byte) error { return nil }
