package store

// Immutable on-disk column segments — the spill tier's file format and the
// typed views the columnar families serve frozen rows from (DESIGN.md §16).
//
// A segment file holds one sealed batch of rows for one family, columns
// written contiguously as raw slice memory:
//
//	[8]   magic "MSGSEG01"
//	[...] sections, each 8-byte aligned: one column (or dictionary part)
//	      dumped as native-endian memory
//	[...] JSON footer (segFooter): family, row count, section directory
//	[24]  trailer: footerOff u64 | footerLen u64 | crc32(footer) u32 | "MSEG"
//
// Readers locate the footer from the fixed-size trailer, then bind each
// section as a typed slice pointing straight into the mapping — no decode
// step, no per-row allocation. Because columns are raw memory, segment
// files are only portable across processes of the same GOARCH; that is
// fine for a spill tier whose files never outlive the checkpoint directory
// that pins them.
//
// String columns are segment-local: handle columns index a per-segment
// dictionary (a prefix-offset column plus a contiguous blob), so a segment
// is self-contained and can be re-mapped by a resumed process whose live
// interning tables assign different handles. unsafe.String views into the
// blob serve reads zero-copy, exactly as the textArena does for hot rows.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"

	"msgscope/internal/ids"
)

const (
	segMagic        = "MSGSEG01"
	segTrailerMagic = "MSEG"
	segTrailerLen   = 24
)

type segSection struct {
	Name string `json:"n"`
	Off  int64  `json:"o"`
	Len  int64  `json:"l"`
}

type segFooter struct {
	Family   string       `json:"family"`
	Rows     int64        `json:"rows"`
	Sections []segSection `json:"sections"`
	// StripeRows is set for the observation family only: rows per stripe,
	// in stripe order (the stripes' sections share one file).
	StripeRows []int64 `json:"stripeRows,omitempty"`
}

// castBytes reinterprets a typed column as its raw memory.
func castBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// castSlice reinterprets a mapped section as a typed column. The writer
// 8-byte aligns every section, so the cast never misaligns.
func castSlice[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var z T
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(z)))
}

var segPad [8]byte

// segWriter streams one segment file: sections in order, then footer and
// trailer, written to a temp name and renamed into place so a crash
// mid-seal never leaves a half-written .seg behind.
type segWriter struct {
	dir, name string
	tmp       string
	f         *os.File
	bw        *bufio.Writer
	off       int64
	foot      segFooter
	err       error
}

func newSegWriter(dir, name, family string) (*segWriter, error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := &segWriter{
		dir: dir, name: name, tmp: tmp, f: f,
		bw:   bufio.NewWriterSize(f, 1<<20),
		foot: segFooter{Family: family},
	}
	w.writeRaw([]byte(segMagic))
	return w, nil
}

func (w *segWriter) writeRaw(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.bw.Write(p)
	w.off += int64(n)
	w.err = err
}

func (w *segWriter) writeString(s string) {
	if w.err != nil {
		return
	}
	n, err := w.bw.WriteString(s)
	w.off += int64(n)
	w.err = err
}

// begin opens a named section at the next 8-byte boundary.
func (w *segWriter) begin(name string) {
	if pad := int(-w.off & 7); pad > 0 {
		w.writeRaw(segPad[:pad])
	}
	w.foot.Sections = append(w.foot.Sections, segSection{Name: name, Off: w.off})
}

func (w *segWriter) end() {
	s := &w.foot.Sections[len(w.foot.Sections)-1]
	s.Len = w.off - s.Off
}

func (w *segWriter) section(name string, p []byte) {
	w.begin(name)
	w.writeRaw(p)
	w.end()
}

// finish writes the footer and trailer, syncs, and renames the temp file
// to its final name, returning the final path and the file size.
func (w *segWriter) finish(rows int64, stripeRows []int64) (string, int64, error) {
	w.foot.Rows = rows
	w.foot.StripeRows = stripeRows
	fj, err := json.Marshal(&w.foot)
	if err != nil {
		w.abort()
		return "", 0, err
	}
	footOff := w.off
	w.writeRaw(fj)
	var tr [segTrailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(footOff))
	binary.LittleEndian.PutUint64(tr[8:], uint64(len(fj)))
	binary.LittleEndian.PutUint32(tr[16:], crc32.ChecksumIEEE(fj))
	copy(tr[20:], segTrailerMagic)
	w.writeRaw(tr[:])
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		os.Remove(w.tmp)
		return "", 0, fmt.Errorf("store: writing segment %s: %w", w.name, w.err)
	}
	final := filepath.Join(w.dir, w.name)
	if err := os.Rename(w.tmp, final); err != nil {
		os.Remove(w.tmp)
		return "", 0, err
	}
	if err := syncSegDir(w.dir); err != nil {
		return "", 0, err
	}
	return final, w.off, nil
}

func (w *segWriter) abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

func syncSegDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// segFile is one mapped segment: the raw mapping plus the parsed section
// directory. The mapping lives as long as the owning store does — views
// handed out by the lists alias it, so it is never unmapped mid-run.
type segFile struct {
	path string
	data []byte
	foot segFooter
	sect map[string][]byte
}

func openSegFile(path, family string) (*segFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+segTrailerLen {
		return nil, fmt.Errorf("store: segment %s: truncated (%d bytes)", path, size)
	}
	data, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("store: mapping segment %s: %w", path, err)
	}
	corrupt := func(what string) error {
		unmapFile(data)
		return fmt.Errorf("store: segment %s: %s", path, what)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, corrupt("bad magic")
	}
	tr := data[size-segTrailerLen:]
	if string(tr[20:24]) != segTrailerMagic {
		return nil, corrupt("bad trailer magic")
	}
	footOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	footLen := int64(binary.LittleEndian.Uint64(tr[8:]))
	if footOff < int64(len(segMagic)) || footLen <= 0 || footOff+footLen > size-segTrailerLen {
		return nil, corrupt("footer out of bounds")
	}
	fj := data[footOff : footOff+footLen]
	if crc32.ChecksumIEEE(fj) != binary.LittleEndian.Uint32(tr[16:]) {
		return nil, corrupt("footer checksum mismatch")
	}
	sf := &segFile{path: path, data: data}
	if err := json.Unmarshal(fj, &sf.foot); err != nil {
		return nil, corrupt("footer: " + err.Error())
	}
	if sf.foot.Family != family {
		return nil, corrupt(fmt.Sprintf("family %q, want %q", sf.foot.Family, family))
	}
	sf.sect = make(map[string][]byte, len(sf.foot.Sections))
	for _, s := range sf.foot.Sections {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > footOff || s.Off&7 != 0 {
			return nil, corrupt("section " + s.Name + " out of bounds")
		}
		sf.sect[s.Name] = data[s.Off : s.Off : s.Off+s.Len][:s.Len]
	}
	return sf, nil
}

func (f *segFile) sec(name string) []byte { return f.sect[name] }

// segStrs is a segment-local string dictionary: dense handles index a
// prefix-offset column over a contiguous blob, both mmap-backed.
type segStrs struct {
	off  []uint64 // len = entries+1
	blob []byte
}

func (d segStrs) count() int {
	if len(d.off) == 0 {
		return 0
	}
	return len(d.off) - 1
}

func (d segStrs) str(h uint32) string {
	lo, hi := d.off[h], d.off[h+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&d.blob[lo], int(hi-lo))
}

// remap interns every dictionary string into tab and returns the
// local-handle → live-handle map, used on resume when the live tables'
// numbering no longer matches the one the segment was sealed under. The
// caller holds whatever lock guards writes to tab.
func (d segStrs) remap(tab *ids.Table) []uint32 {
	m := make([]uint32, d.count())
	for i := range m {
		m[i] = tab.Handle(d.str(uint32(i)))
	}
	return m
}

func bindStrs(f *segFile, name string) segStrs {
	return segStrs{off: castSlice[uint64](f.sec(name + ".off")), blob: f.sec(name + ".blob")}
}

// dictBuilder assigns segment-local handles in first-use order while a
// seal walks a live handle column.
type dictBuilder struct {
	tab     *ids.Table
	localOf []uint32 // live handle -> local+1 (0 = unseen)
	globals []uint32 // local -> live handle
}

func newDictBuilder(tab *ids.Table) *dictBuilder {
	return &dictBuilder{tab: tab, localOf: make([]uint32, tab.Len())}
}

func (d *dictBuilder) local(h uint32) uint32 {
	if v := d.localOf[h]; v != 0 {
		return v - 1
	}
	l := uint32(len(d.globals))
	d.globals = append(d.globals, h)
	d.localOf[h] = l + 1
	return l
}

func (d *dictBuilder) writeTo(w *segWriter, name string) {
	off := make([]uint64, len(d.globals)+1)
	for i, h := range d.globals {
		off[i+1] = off[i] + uint64(len(d.tab.Lookup(h)))
	}
	w.section(name+".off", castBytes(off))
	w.begin(name + ".blob")
	for _, h := range d.globals {
		w.writeString(d.tab.Lookup(h))
	}
	w.end()
}

// segCheck accumulates column-length validation when binding a segment.
type segCheck struct {
	f   *segFile
	err error
}

func (c *segCheck) want(name string, got, n int) {
	if c.err == nil && got != n {
		c.err = fmt.Errorf("store: segment %s: column %s has %d rows, want %d",
			c.f.path, name, got, n)
	}
}

// tweetSeg serves one sealed run of tweet rows [start, start+n).
type tweetSeg struct {
	start, n int
	file     *segFile

	ids      []uint64
	user     []uint32 // handle into users
	created  []int64
	lang     []uint32 // handle into langs
	hashtags []int32
	mentions []int32
	flags    []uint8 // COW-mutable: late source-bit merges land here
	plat     []uint8
	group    []uint32 // handle into groups
	textOff  []uint64 // n+1 prefix offsets into textBlob
	textBlob []byte

	users, langs, groups segStrs

	// Local handle → live-table handle, heap-resident: identity joins
	// (distinct-user counts) need frozen and hot rows to agree on one
	// handle space.
	userMap, langMap, groupMap []uint32
}

func (s *tweetSeg) text(j int) string {
	lo, hi := s.textOff[j], s.textOff[j+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&s.textBlob[lo], int(hi-lo))
}

func bindTweetSeg(f *segFile, start int) (tweetSeg, error) {
	n := int(f.foot.Rows)
	s := tweetSeg{
		start: start, n: n, file: f,
		ids:      castSlice[uint64](f.sec("ids")),
		user:     castSlice[uint32](f.sec("user")),
		created:  castSlice[int64](f.sec("created")),
		lang:     castSlice[uint32](f.sec("lang")),
		hashtags: castSlice[int32](f.sec("hashtags")),
		mentions: castSlice[int32](f.sec("mentions")),
		flags:    f.sec("flags"),
		plat:     f.sec("plat"),
		group:    castSlice[uint32](f.sec("group")),
		textOff:  castSlice[uint64](f.sec("text.off")),
		textBlob: f.sec("text.blob"),
		users:    bindStrs(f, "users"),
		langs:    bindStrs(f, "langs"),
		groups:   bindStrs(f, "groups"),
	}
	c := segCheck{f: f}
	c.want("ids", len(s.ids), n)
	c.want("user", len(s.user), n)
	c.want("created", len(s.created), n)
	c.want("lang", len(s.lang), n)
	c.want("hashtags", len(s.hashtags), n)
	c.want("mentions", len(s.mentions), n)
	c.want("flags", len(s.flags), n)
	c.want("plat", len(s.plat), n)
	c.want("group", len(s.group), n)
	c.want("text.off", len(s.textOff), n+1)
	return s, c.err
}

// controlSeg serves sealed control-tweet rows.
type controlSeg struct {
	start, n int
	file     *segFile

	ids      []uint64
	user     []uint32
	created  []int64
	lang     []uint32
	hashtags []int32
	mentions []int32
	flags    []uint8

	users, langs segStrs

	userMap, langMap []uint32
}

func bindControlSeg(f *segFile, start int) (controlSeg, error) {
	n := int(f.foot.Rows)
	s := controlSeg{
		start: start, n: n, file: f,
		ids:      castSlice[uint64](f.sec("ids")),
		user:     castSlice[uint32](f.sec("user")),
		created:  castSlice[int64](f.sec("created")),
		lang:     castSlice[uint32](f.sec("lang")),
		hashtags: castSlice[int32](f.sec("hashtags")),
		mentions: castSlice[int32](f.sec("mentions")),
		flags:    f.sec("flags"),
		users:    bindStrs(f, "users"),
		langs:    bindStrs(f, "langs"),
	}
	c := segCheck{f: f}
	c.want("ids", len(s.ids), n)
	c.want("user", len(s.user), n)
	c.want("created", len(s.created), n)
	c.want("lang", len(s.lang), n)
	c.want("hashtags", len(s.hashtags), n)
	c.want("mentions", len(s.mentions), n)
	c.want("flags", len(s.flags), n)
	return s, c.err
}

// msgSeg serves sealed message rows.
type msgSeg struct {
	start, n int
	file     *segFile

	plat     []uint8
	group    []uint32
	author   []uint64
	sent     []int64
	typ      []uint8
	textOff  []uint64
	textBlob []byte

	groups segStrs

	groupMap []uint32
}

func (s *msgSeg) text(j int) string {
	lo, hi := s.textOff[j], s.textOff[j+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&s.textBlob[lo], int(hi-lo))
}

func bindMsgSeg(f *segFile, start int) (msgSeg, error) {
	n := int(f.foot.Rows)
	s := msgSeg{
		start: start, n: n, file: f,
		plat:     f.sec("plat"),
		group:    castSlice[uint32](f.sec("group")),
		author:   castSlice[uint64](f.sec("author")),
		sent:     castSlice[int64](f.sec("sent")),
		typ:      f.sec("typ"),
		textOff:  castSlice[uint64](f.sec("text.off")),
		textBlob: f.sec("text.blob"),
		groups:   bindStrs(f, "groups"),
	}
	c := segCheck{f: f}
	c.want("plat", len(s.plat), n)
	c.want("group", len(s.group), n)
	c.want("author", len(s.author), n)
	c.want("sent", len(s.sent), n)
	c.want("typ", len(s.typ), n)
	c.want("text.off", len(s.textOff), n+1)
	return s, c.err
}

// obsSeg serves one stripe's sealed observation rows. Handle columns
// (title/phoneH/country/creator) keep the stripe's live-table handles —
// observation segments are rebuilt rather than pinned across a resume
// (DESIGN.md §16), so the stripe table is always the one they were sealed
// under. next is COW-mutable: a chain whose tail was sealed is extended by
// welding the frozen tail's next pointer to the new heap row.
type obsSeg struct {
	start, n int

	at        []int64
	createdAt []int64
	title     []uint32
	phoneH    []uint32
	country   []uint32
	creator   []uint32
	members   []int32
	online    []int32
	flags     []uint8
	next      []uint32
}

func bindObsSeg(f *segFile, stripe, start, n int) (obsSeg, error) {
	pre := fmt.Sprintf("s%02d.", stripe)
	s := obsSeg{
		start: start, n: n,
		at:        castSlice[int64](f.sec(pre + "at")),
		createdAt: castSlice[int64](f.sec(pre + "createdAt")),
		title:     castSlice[uint32](f.sec(pre + "title")),
		phoneH:    castSlice[uint32](f.sec(pre + "phoneH")),
		country:   castSlice[uint32](f.sec(pre + "country")),
		creator:   castSlice[uint32](f.sec(pre + "creator")),
		members:   castSlice[int32](f.sec(pre + "members")),
		online:    castSlice[int32](f.sec(pre + "online")),
		flags:     f.sec(pre + "flags"),
		next:      castSlice[uint32](f.sec(pre + "next")),
	}
	c := segCheck{f: f}
	c.want(pre+"at", len(s.at), n)
	c.want(pre+"createdAt", len(s.createdAt), n)
	c.want(pre+"title", len(s.title), n)
	c.want(pre+"phoneH", len(s.phoneH), n)
	c.want(pre+"country", len(s.country), n)
	c.want(pre+"creator", len(s.creator), n)
	c.want(pre+"members", len(s.members), n)
	c.want(pre+"online", len(s.online), n)
	c.want(pre+"flags", len(s.flags), n)
	c.want(pre+"next", len(s.next), n)
	return s, c.err
}
