package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"msgscope/internal/checkpoint"
	"msgscope/internal/jsonx"
	"msgscope/internal/platform"
)

// Checkpoint record logs. The store is the durable record stream of a
// resumable study: every phase boundary appends the records ingested since
// the previous boundary to these JSONL logs and fsyncs them, and the run
// manifest (internal/checkpoint) pins the durable byte/record prefix of
// each. On resume the logs are truncated to the manifest's offsets and
// replayed through the same ingestion paths the live run used, which
// rebuilds not just the record families but every derived index and
// counter (dedup tables, group skeletons, discovery bookkeeping).
//
// Five logs cover the six record families:
//
//   - log.tweets.jsonl / log.control.jsonl / log.posts.jsonl /
//     log.messages.jsonl: the append-only families, written incrementally
//     (rows past a per-family mark). A tweet first seen before the last
//     checkpoint can still change afterwards — the other API merges its
//     source bits — so such rows are tracked in a dirty set and
//     re-appended; replay re-merges them idempotently.
//   - log.events.jsonl: the keyed families' deltas. New observations are
//     walked off each group's chain past a per-group tail mark;
//     mutation-owned group scalars (join data, deferrals, canonical URL)
//     are re-emitted when their fingerprint changes; users are emitted
//     when new or when a merge actually changed their row.
//
// Replay order is tweets, control, posts, messages, then events. Derived
// group state (first/last-seen, tweet and social-post counts, seen-source
// bits) is rebuilt by the record replay and never applied from events;
// event replay applies observations in per-group series order and then
// asserts the mutation-owned scalars, so a deferral cleared by a later
// observation and re-asserted by a later deferral lands in the recorded
// final state regardless of how the two interleaved between boundaries.
//
// The writer assumes observation chains are not compacted while it is
// open (compaction only runs under Snapshot, after the run), and that
// captures happen at quiesced phase boundaries (no concurrent writers).
const (
	logTweets   = "log.tweets.jsonl"
	logControl  = "log.control.jsonl"
	logPosts    = "log.posts.jsonl"
	logMessages = "log.messages.jsonl"
	logEvents   = "log.events.jsonl"
)

var logNames = []string{logTweets, logControl, logPosts, logMessages, logEvents}

// ckEvent is one keyed-family delta in log.events.jsonl.
type ckEvent struct {
	Kind  string            `json:"k"` // "obs" | "grp" | "usr"
	Plat  platform.Platform `json:"p,omitempty"`
	Code  string            `json:"c,omitempty"`
	Obs   *Observation      `json:"o,omitempty"`
	Group *GroupRecord      `json:"g,omitempty"` // scalars only, Observations nil
	User  *UserRecord       `json:"u,omitempty"`
}

// gfMutOwned are the group flag bits owned by mutation APIs (MarkJoined,
// MarkDeferred, observation deferral-clearing) rather than rebuilt by
// record replay; event replay overwrites exactly these.
const gfMutOwned = gfJoined | gfHiddenMembers | gfIsChannel | gfDeferred

// grpFP fingerprints a group's mutation-owned scalars so the writer emits
// a "grp" event only when one of them changed since the last checkpoint.
// Handles compare exactly (they are stable for the writer's lifetime);
// derived fields are deliberately absent so per-mention churn (last-seen,
// tweet counts) does not re-emit every active group daily.
type grpFP struct {
	flags       uint8
	canonical   uint32
	creatorKey  uint32
	deferReason uint32
	joinedAt    int64
	createdAt   int64
	members     int32
	channels    int32
}

func (st *groupStripe) fpLocked(row uint32) grpFP {
	return grpFP{
		flags:       st.flags[row] & gfMutOwned,
		canonical:   st.canonical[row],
		creatorKey:  st.creatorKey[row],
		deferReason: st.deferReason[row],
		joinedAt:    st.joinedAt[row],
		createdAt:   st.createdAt[row],
		members:     st.members[row],
		channels:    st.channels[row],
	}
}

// ckLog is one append log: a buffered file plus durable offset counters.
type ckLog struct {
	f       *os.File
	bw      *bufio.Writer
	bytes   int64
	records int64
	synced  int64 // bytes at last fsync
}

func (l *ckLog) appendLine(line []byte) error {
	if _, err := l.bw.Write(line); err != nil {
		return err
	}
	if err := l.bw.WriteByte('\n'); err != nil {
		return err
	}
	l.bytes += int64(len(line)) + 1
	l.records++
	return nil
}

func (l *ckLog) sync() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if l.bytes == l.synced {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.synced = l.bytes
	return nil
}

func (l *ckLog) state() checkpoint.LogState {
	return checkpoint.LogState{Bytes: l.bytes, Records: l.records}
}

// grpMarks is the writer's per-stripe capture state: the observation-chain
// tail and scalar fingerprint of each row at the last checkpoint. Rows at
// or past len(fp) are new since then.
type grpMarks struct {
	obsTail []uint32
	fp      []grpFP
}

// CheckpointWriter appends a store's record deltas to the checkpoint logs
// of one directory. Captures must run at quiesced phase boundaries; the
// writer itself is not safe for concurrent use.
type CheckpointWriter struct {
	s    *Store
	dir  string
	logs map[string]*ckLog

	ctlMark  int
	postMark int
	msgMark  int
	grp      [numStripes]grpMarks
}

// OpenCheckpointWriter creates (or truncates) the record logs under dir,
// enables the store's dirty tracking, and takes the current store contents
// as the already-captured baseline. For a fresh run the store is empty and
// the first Checkpoint captures everything.
func (s *Store) OpenCheckpointWriter(dir string) (*CheckpointWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &CheckpointWriter{s: s, dir: dir, logs: map[string]*ckLog{}}
	for _, name := range logNames {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.logs[name] = &ckLog{f: f, bw: bufio.NewWriter(f)}
	}
	w.enableTracking()
	if err := w.capture(false); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// ResumeCheckpointWriter reopens dir's record logs for appending after
// LoadCheckpoint restored the store from them. Each log is truncated to
// the manifest's durable prefix (dropping anything a crash appended past
// the last checkpoint), and the restored store contents become the
// baseline.
func (s *Store) ResumeCheckpointWriter(dir string, logs map[string]checkpoint.LogState) (*CheckpointWriter, error) {
	w := &CheckpointWriter{s: s, dir: dir, logs: map[string]*ckLog{}}
	for _, name := range logNames {
		st, ok := logs[name]
		if !ok {
			w.Close()
			return nil, fmt.Errorf("store: manifest missing log state for %s", name)
		}
		path := filepath.Join(dir, name)
		if err := truncateLog(path, st.Bytes); err != nil {
			w.Close()
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.logs[name] = &ckLog{f: f, bw: bufio.NewWriter(f), bytes: st.Bytes, records: st.Records, synced: st.Bytes}
	}
	w.enableTracking()
	if err := w.capture(false); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

func truncateLog(path string, size int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() < size {
		return fmt.Errorf("store: %s is %d bytes, shorter than the %d the manifest recorded", path, fi.Size(), size)
	}
	if fi.Size() == size {
		return nil
	}
	return os.Truncate(path, size)
}

// enableTracking arms the store's cross-checkpoint dirty sets (merged
// tweet sources, re-merged users). Called before any concurrent ingestion
// starts, so the plain fields publish via the run's startup ordering.
func (w *CheckpointWriter) enableTracking() {
	s := w.s
	s.tweetMu.Lock()
	s.ckDirtyTweets = map[uint32]struct{}{}
	s.ckTweetMark = 0
	s.tweetMu.Unlock()
	for i := range s.users.stripes {
		st := &s.users.stripes[i]
		st.mu.Lock()
		st.ckDirty = map[uint32]struct{}{}
		st.mu.Unlock()
	}
}

// Checkpoint appends every record ingested or changed since the previous
// capture to the logs, fsyncs them, and returns the durable log states for
// the manifest.
func (w *CheckpointWriter) Checkpoint() (map[string]checkpoint.LogState, error) {
	if err := w.capture(true); err != nil {
		return nil, err
	}
	out := make(map[string]checkpoint.LogState, len(w.logs))
	for name, l := range w.logs {
		if err := l.sync(); err != nil {
			return nil, fmt.Errorf("store: syncing %s: %w", name, err)
		}
		out[name] = l.state()
	}
	return out, nil
}

// capture walks each family's delta since the last capture. With emit set
// it appends the records to the logs; without, it only advances the marks
// (the open/resume baseline).
func (w *CheckpointWriter) capture(emit bool) error {
	s := w.s
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)

	// Tweet-family logs (tweets, control, posts) under tweetMu.
	s.tweetMu.Lock()
	err := func() error {
		if emit {
			for i := s.ckTweetMark; i < s.tweets.len(); i++ {
				t := s.tweets.at(i)
				*buf = t.appendJSON((*buf)[:0])
				if err := w.logs[logTweets].appendLine(*buf); err != nil {
					return err
				}
			}
			// Rows merged across the boundary are re-appended with their
			// final source bits; replay ORs them back in.
			dirty := make([]uint32, 0, len(s.ckDirtyTweets))
			for row := range s.ckDirtyTweets {
				dirty = append(dirty, row)
			}
			slices.Sort(dirty)
			for _, row := range dirty {
				t := s.tweets.at(int(row))
				*buf = t.appendJSON((*buf)[:0])
				if err := w.logs[logTweets].appendLine(*buf); err != nil {
					return err
				}
			}
			for i := w.ctlMark; i < s.control.len(); i++ {
				c := s.control.at(i)
				*buf = c.appendJSON((*buf)[:0])
				if err := w.logs[logControl].appendLine(*buf); err != nil {
					return err
				}
			}
			for i := w.postMark; i < len(s.posts); i++ {
				b, err := json.Marshal(&s.posts[i])
				if err != nil {
					return err
				}
				if err := w.logs[logPosts].appendLine(b); err != nil {
					return err
				}
			}
		}
		s.ckTweetMark = s.tweets.len()
		clear(s.ckDirtyTweets)
		w.ctlMark = s.control.len()
		w.postMark = len(s.posts)
		return nil
	}()
	s.tweetMu.Unlock()
	if err != nil {
		return err
	}

	s.msgMu.Lock()
	err = func() error {
		if emit {
			for i := w.msgMark; i < s.msgs.len(); i++ {
				m := s.msgs.at(i)
				*buf = m.appendJSON((*buf)[:0])
				if err := w.logs[logMessages].appendLine(*buf); err != nil {
					return err
				}
			}
		}
		w.msgMark = s.msgs.len()
		return nil
	}()
	s.msgMu.Unlock()
	if err != nil {
		return err
	}

	if err := w.captureGroups(emit); err != nil {
		return err
	}
	return w.captureUsers(emit)
}

// captureGroups emits new observations (chain rows past each group's tail
// mark, immediately followed by that group's scalar event if its
// fingerprint moved) for every stripe.
func (w *CheckpointWriter) captureGroups(emit bool) error {
	events := w.logs[logEvents]
	for si := range w.s.groups.stripes {
		st := &w.s.groups.stripes[si]
		marks := &w.grp[si]
		st.mu.Lock()
		err := func() error {
			n := st.len()
			for row := 0; row < n; row++ {
				r := uint32(row)
				isNew := row >= len(marks.fp)
				var tail uint32
				if !isNew {
					tail = marks.obsTail[row]
				}
				if emit {
					// Walk the chain from the marked tail (or the head for
					// new groups) and emit the rows appended since.
					next := st.obsHead[r]
					if tail != 0 {
						next = st.obs.nextAt(int(tail - 1))
					}
					p, code := platform.Platform(st.plat[r]), st.tab.Lookup(st.code[r])
					for i := next; i != 0; i = st.obs.nextAt(int(i - 1)) {
						o := st.obs.recordAt(i-1, st.tab)
						if err := w.appendEvent(events, &ckEvent{Kind: "obs", Plat: p, Code: code, Obs: &o}); err != nil {
							return err
						}
					}
					if fp := st.fpLocked(r); isNew || fp != marks.fp[row] {
						g := st.scalarsLocked(r)
						if err := w.appendEvent(events, &ckEvent{Kind: "grp", Group: &g}); err != nil {
							return err
						}
					}
				}
				if isNew {
					marks.obsTail = append(marks.obsTail, st.obsTail[r])
					marks.fp = append(marks.fp, st.fpLocked(r))
				} else {
					marks.obsTail[row] = st.obsTail[r]
					marks.fp[row] = st.fpLocked(r)
				}
			}
			return nil
		}()
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// captureUsers emits new rows past each stripe's mark plus rows whose
// merge actually changed state since the last capture.
func (w *CheckpointWriter) captureUsers(emit bool) error {
	events := w.logs[logEvents]
	ut := w.s.users
	for si := range ut.stripes {
		st := &ut.stripes[si]
		st.mu.Lock()
		err := func() error {
			n := uint32(len(st.key))
			if emit {
				rows := make([]uint32, 0, int(n)-int(st.ckMark)+len(st.ckDirty))
				for row := range st.ckDirty {
					rows = append(rows, row)
				}
				for row := st.ckMark; row < n; row++ {
					rows = append(rows, row)
				}
				slices.Sort(rows)
				for _, row := range rows {
					u := UserRecord{
						Platform:  platform.Platform(st.plat[row]),
						Key:       st.key[row],
						PhoneHash: st.phoneAt(row),
						Country:   ut.countries.t.Lookup(st.country[row]),
						Linked:    st.linked[row],
						Creator:   st.creator[row],
					}
					if err := w.appendEvent(events, &ckEvent{Kind: "usr", User: &u}); err != nil {
						return err
					}
				}
			}
			st.ckMark = n
			clear(st.ckDirty)
			return nil
		}()
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *CheckpointWriter) appendEvent(l *ckLog, e *ckEvent) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return l.appendLine(b)
}

// Close flushes and closes the log files and disarms the store's dirty
// tracking. It does not fsync: only Checkpoint makes state durable.
func (w *CheckpointWriter) Close() error {
	var first error
	for _, l := range w.logs {
		if l == nil {
			continue
		}
		if err := l.bw.Flush(); err != nil && first == nil {
			first = err
		}
		if err := l.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s := w.s
	s.tweetMu.Lock()
	s.ckDirtyTweets = nil
	s.ckTweetMark = 0
	s.tweetMu.Unlock()
	for i := range s.users.stripes {
		st := &s.users.stripes[i]
		st.mu.Lock()
		st.ckDirty = nil
		st.ckMark = 0
		st.mu.Unlock()
	}
	return first
}

// LoadCheckpoint replays dir's record logs into the (empty) store, exactly
// up to the durable prefixes the manifest recorded: each log is truncated
// to its manifest offset first, and the number of replayed records is
// verified against the manifest's count. Replay goes through the live
// ingestion paths, so every derived index (dedup tables, group skeletons,
// discovery bookkeeping, per-group series) is rebuilt as a side effect.
func (s *Store) LoadCheckpoint(dir string, logs map[string]checkpoint.LogState) error {
	prep := func(name string) (checkpoint.LogState, string, error) {
		st, ok := logs[name]
		if !ok {
			return st, "", fmt.Errorf("store: manifest missing log state for %s", name)
		}
		path := filepath.Join(dir, name)
		if err := truncateLog(path, st.Bytes); err != nil {
			return st, "", err
		}
		return st, path, nil
	}
	replay := func(name string, run func(path string) (int64, error)) error {
		st, path, err := prep(name)
		if err != nil {
			return err
		}
		n, err := run(path)
		if err != nil {
			return fmt.Errorf("store: replaying %s: %w", name, err)
		}
		if n != st.Records {
			return fmt.Errorf("store: %s replayed %d records, manifest recorded %d", name, n, st.Records)
		}
		return nil
	}

	ingest := make([]TweetIngest, jsonlBatchSize)
	if err := replay(logTweets, func(path string) (int64, error) {
		var n int64
		err := loadFileStream(path, make([]TweetRecord, jsonlBatchSize), func(batch []TweetRecord) error {
			for i := range batch {
				ingest[i] = TweetIngest{Tweet: batch[i]}
			}
			s.AddTweetBatch(ingest[:len(batch)])
			n += int64(len(batch))
			return nil
		})
		return n, err
	}); err != nil {
		return err
	}
	// Control and message rows restored from pinned segments (RestoreSpill)
	// occupy the first `frozen` rows of their families and are exactly the
	// first `frozen` log records: both families are plain appends with no
	// dedup and no cross-checkpoint re-emission, so log order equals row
	// order. Skip that prefix instead of re-appending it. The skipped
	// records still count toward the manifest's record total.
	ctlSkip := int64(s.control.frozen)
	if err := replay(logControl, func(path string) (int64, error) {
		var n int64
		err := loadFileStream(path, make([]ControlRecord, jsonlBatchSize), func(batch []ControlRecord) error {
			b := skipPrefix(batch, &n, ctlSkip)
			if len(b) > 0 {
				s.AddControlBatch(b)
			}
			n += int64(len(b))
			return nil
		})
		return n, err
	}); err != nil {
		return err
	}
	// Posts replay through AddPost for its side effects (dedup index,
	// seen-social bits, social-post counts) — unlike Save/Load, there is
	// no authoritative groups.jsonl carrying them.
	if err := replay(logPosts, func(path string) (int64, error) {
		var n int64
		err := loadFileStream(path, make([]PostRecord, jsonlBatchSize), func(batch []PostRecord) error {
			for i := range batch {
				s.AddPost(batch[i])
			}
			n += int64(len(batch))
			return nil
		})
		return n, err
	}); err != nil {
		return err
	}
	msgSkip := int64(s.msgs.frozen)
	if err := replay(logMessages, func(path string) (int64, error) {
		var n int64
		err := loadFileStream(path, make([]MessageRecord, jsonlBatchSize), func(batch []MessageRecord) error {
			b := skipPrefix(batch, &n, msgSkip)
			if len(b) > 0 {
				s.AddMessageBatch(b)
			}
			n += int64(len(b))
			return nil
		})
		return n, err
	}); err != nil {
		return err
	}
	return replay(logEvents, func(path string) (int64, error) {
		var n int64
		err := loadFileStream(path, make([]ckEvent, jsonlBatchSize), func(batch []ckEvent) error {
			for i := range batch {
				if err := s.applyEvent(&batch[i]); err != nil {
					return err
				}
			}
			n += int64(len(batch))
			return nil
		})
		return n, err
	})
}

// skipPrefix trims the leading records of one replay batch that fall
// inside the already-restored prefix [0, skip), advancing *n past the
// trimmed records so the caller's total still counts them.
func skipPrefix[T any](batch []T, n *int64, skip int64) []T {
	if *n >= skip {
		return batch
	}
	drop := skip - *n
	if drop >= int64(len(batch)) {
		*n += int64(len(batch))
		return nil
	}
	*n = skip
	return batch[drop:]
}

// applyEvent replays one keyed-family delta.
func (s *Store) applyEvent(e *ckEvent) error {
	switch e.Kind {
	case "obs":
		if e.Obs == nil {
			return fmt.Errorf("obs event without observation")
		}
		_, st := s.groups.stripeFor(e.Plat, e.Code)
		st.mu.Lock()
		row, ok := st.m[groupKey{e.Plat, e.Code}]
		if ok {
			st.appendObsLocked(row, e.Obs)
			st.flags[row] &^= gfDeferred
			st.deferReason[row] = 0
		}
		st.mu.Unlock()
		if !ok {
			return fmt.Errorf("observation for unknown group %v/%s", e.Plat, e.Code)
		}
	case "grp":
		if e.Group == nil {
			return fmt.Errorf("grp event without record")
		}
		g := e.Group
		_, st := s.groups.stripeFor(g.Platform, g.Code)
		st.mu.Lock()
		row, ok := st.m[groupKey{g.Platform, g.Code}]
		if ok {
			// Overwrite exactly the mutation-owned scalars; derived state
			// (first/last-seen, counts, seen-source bits) was rebuilt by
			// the record replay and may already be ahead of this event.
			var f uint8
			if g.Joined {
				f |= gfJoined
			}
			if g.HiddenMembers {
				f |= gfHiddenMembers
			}
			if g.IsChannel {
				f |= gfIsChannel
			}
			if g.Deferred {
				f |= gfDeferred
			}
			st.flags[row] = st.flags[row]&^gfMutOwned | f
			st.canonical[row] = st.tab.Handle(g.Canonical)
			st.creatorKey[row] = st.tab.Handle(g.CreatorKey)
			st.deferReason[row] = st.tab.Handle(g.DeferReason)
			st.joinedAt[row] = timeToNano(g.JoinedAt)
			st.createdAt[row] = timeToNano(g.CreatedAt)
			st.members[row] = int32(g.MemberCount)
			st.channels[row] = int32(g.Channels)
		}
		st.mu.Unlock()
		if !ok {
			return fmt.Errorf("scalar event for unknown group %v/%s", g.Platform, g.Code)
		}
	case "usr":
		if e.User == nil {
			return fmt.Errorf("usr event without record")
		}
		s.users.upsert(e.User)
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}
